package gpssn

import (
	"errors"
	"math"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"gpssn/internal/core"
	"gpssn/internal/socialnet"
)

func stressNetwork(t testing.TB) *Network {
	t.Helper()
	net, err := GenerateSynthetic(SyntheticOptions{
		Name: "stress", Seed: 7,
		RoadVertices: 120, Users: 60, POIs: 40, Topics: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestDBConcurrentMixedLoad is the facade-level stress test of the
// concurrency contract (docs/CONCURRENCY.md): many goroutines issue Query
// and QueryTopK while another interleaves dynamic updates and a Compact.
// Every answer must be well-formed, and after the dust settles the DB must
// agree with the brute-force Baseline oracle on the final network. Run
// under -race this is the primary whole-stack data-race check.
func TestDBConcurrentMixedLoad(t *testing.T) {
	net := stressNetwork(t)
	db, err := Open(net, Config{
		RoadPivots: 3, SocialPivots: 3, LeafSize: 16, Fanout: 4,
		CacheSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{GroupSize: 2, Gamma: 0.2, Theta: 0.3, Radius: 2}
	users := []int{0, 5, 11, 23, 37, 52}

	var wg sync.WaitGroup
	var failures atomic.Int64
	const queriers = 6
	const iters = 12
	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				u := users[(g+it)%len(users)]
				if it%2 == 0 {
					ans, st, err := db.Query(u, q)
					if err != nil && !errors.Is(err, ErrNoAnswer) {
						t.Errorf("Query(%d): %v", u, err)
						failures.Add(1)
						return
					}
					if err == nil && (len(ans.Users) != q.GroupSize || ans.MaxDistance < 0) {
						t.Errorf("Query(%d): malformed answer %+v", u, ans)
						failures.Add(1)
						return
					}
					if st != nil && st.PageReads < 0 {
						t.Errorf("Query(%d): negative page reads", u)
						failures.Add(1)
						return
					}
				} else {
					answers, _, err := db.QueryTopK(u, q, 3)
					if err != nil {
						t.Errorf("QueryTopK(%d): %v", u, err)
						failures.Add(1)
						return
					}
					for i := 1; i < len(answers); i++ {
						if answers[i].MaxDistance < answers[i-1].MaxDistance {
							t.Errorf("QueryTopK(%d): results out of order", u)
							failures.Add(1)
							return
						}
					}
				}
			}
		}(g)
	}
	// One updater mixing all three update kinds plus a mid-flight Compact.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if _, err := db.AddPOI(float64(i), 0.5, i%net.NumTopics()); err != nil {
				t.Errorf("AddPOI: %v", err)
				return
			}
			interests := make([]float64, net.NumTopics())
			interests[i%net.NumTopics()] = 0.9
			u, err := db.AddUser(0.5, float64(i), interests)
			if err != nil {
				t.Errorf("AddUser: %v", err)
				return
			}
			if _, err := db.AddFriendship(users[i], u); err != nil {
				t.Errorf("AddFriendship: %v", err)
				return
			}
			if i == 2 {
				if err := db.Compact(); err != nil {
					t.Errorf("Compact: %v", err)
					return
				}
			}
		}
	}()
	wg.Wait()
	if failures.Load() > 0 {
		t.FailNow()
	}

	// Quiesced: the DB must agree with the oracle on the final network.
	oracle := &core.Baseline{DS: db.Network().Dataset()}
	p := core.Params{Gamma: q.Gamma, Tau: q.GroupSize, Theta: q.Theta, R: q.Radius}
	for _, u := range users {
		ans, _, err := db.Query(u, q)
		want, _ := oracle.Query(socialnet.UserID(u), p)
		if errors.Is(err, ErrNoAnswer) {
			if want.Found {
				t.Errorf("user %d: DB found nothing, oracle found cost %v", u, want.MaxDist)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if !want.Found {
			t.Errorf("user %d: DB found an answer the oracle says is infeasible", u)
			continue
		}
		if math.Abs(ans.MaxDistance-want.MaxDist) > 1e-6 {
			t.Errorf("user %d: cost %v != oracle %v", u, ans.MaxDistance, want.MaxDist)
		}
	}
}

// TestDBParallelismDeterministic pins the facade-level determinism
// guarantee: Parallelism 1 and Parallelism 8 DBs over the same network
// return deep-equal answers for both Query and QueryTopK.
func TestDBParallelismDeterministic(t *testing.T) {
	net := stressNetwork(t)
	cfg := Config{RoadPivots: 3, SocialPivots: 3, LeafSize: 16, Fanout: 4}
	cfgSeq := cfg
	cfgSeq.Parallelism = 1
	cfgPar := cfg
	cfgPar.Parallelism = 8
	seq, err := Open(net, cfgSeq)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Open(net, cfgPar)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{GroupSize: 3, Gamma: 0.2, Theta: 0.3, Radius: 2}
	for _, u := range []int{0, 13, 41} {
		a, _, errA := seq.Query(u, q)
		b, _, errB := par.Query(u, q)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("user %d: error mismatch: %v vs %v", u, errA, errB)
		}
		if errA == nil && !reflect.DeepEqual(a, b) {
			t.Fatalf("user %d: answers differ across parallelism:\n  P=1: %+v\n  P=8: %+v", u, a, b)
		}
		ak, _, err := seq.QueryTopK(u, q, 3)
		if err != nil {
			t.Fatal(err)
		}
		bk, _, err := par.QueryTopK(u, q, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ak, bk) {
			t.Fatalf("user %d: top-k differs across parallelism", u)
		}
	}
}

// TestDBConcurrentCacheHits checks the answer cache under concurrency:
// repeated identical queries from many goroutines must all see the same
// answer, and the cache get path must never alias cache-owned slices
// (mutating a returned answer must not poison later hits).
func TestDBConcurrentCacheHits(t *testing.T) {
	net := stressNetwork(t)
	db, err := Open(net, Config{
		RoadPivots: 3, SocialPivots: 3, LeafSize: 16, Fanout: 4,
		CacheSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{GroupSize: 2, Gamma: 0.2, Theta: 0.3, Radius: 2}
	first, _, err := db.Query(0, q)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				ans, _, err := db.Query(0, q)
				if err != nil {
					t.Errorf("cached Query: %v", err)
					return
				}
				if !reflect.DeepEqual(ans, first) {
					t.Errorf("cache returned a different answer: %+v vs %+v", ans, first)
					return
				}
				// Scribble on the returned answer; the cache must not care.
				if len(ans.Users) > 0 {
					ans.Users[0] = -1
				}
			}
		}()
	}
	wg.Wait()
}
