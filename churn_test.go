package gpssn

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gpssn/internal/core"
	"gpssn/internal/failpoint"
	"gpssn/internal/roadnet"
	"gpssn/internal/socialnet"
)

// churnNetwork generates the road-churn test network. Each caller gets a
// fresh copy because Open attaches the oracle to the network's road graph.
func churnNetwork(t testing.TB) *Network {
	t.Helper()
	net, err := GenerateSynthetic(SyntheticOptions{
		Name: "churn", Seed: 11,
		RoadVertices: 140, Users: 60, POIs: 40, Topics: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// compareVsFreshTwin is the churn equality gate: every query answer of the
// live DB — whose oracle is the delta-overlay composition over the
// pre-churn static base — must match a DB freshly Opened over a clone of
// the mutated dataset, whose oracle was contracted from scratch on the
// final topology. Group, POI set, and anchor must agree exactly; the cost
// up to floating-point association order (sameCost), because shortcut
// weights are build-time sums. It also cross-checks found/cost against the
// brute-force Baseline.
func compareVsFreshTwin(t *testing.T, db *DB, label string) {
	t.Helper()
	db.mu.RLock()
	snap := cloneDataset(db.net.ds)
	cfg := db.cfg
	db.mu.RUnlock()
	twin, err := Open(&Network{ds: snap}, cfg)
	if err != nil {
		t.Fatalf("%s: fresh twin Open: %v", label, err)
	}
	oracle := &core.Baseline{DS: snap}
	queries := []Query{
		{GroupSize: 2, Gamma: 0.2, Theta: 0.3, Radius: 2},
		{GroupSize: 3, Gamma: 0.3, Theta: 0.4, Radius: 2.5},
	}
	for _, q := range queries {
		for user := 0; user < 60; user += 6 {
			liveAns, _, liveErr := db.Query(user, q)
			twinAns, _, twinErr := twin.Query(user, q)
			if (liveErr == nil) != (twinErr == nil) {
				t.Fatalf("%s user=%d q=%+v: err mismatch (live=%v twin=%v)",
					label, user, q, liveErr, twinErr)
			}
			p := core.Params{Gamma: q.Gamma, Tau: q.GroupSize, Theta: q.Theta, R: q.Radius}
			want, _ := oracle.Query(socialnet.UserID(user), p)
			if liveErr != nil {
				if !errors.Is(liveErr, ErrNoAnswer) {
					t.Fatalf("%s user=%d: unexpected error %v", label, user, liveErr)
				}
				if want.Found {
					t.Fatalf("%s user=%d: DB found nothing, Baseline found cost %v",
						label, user, want.MaxDist)
				}
				continue
			}
			if !sameAnswer(liveAns, twinAns) {
				t.Fatalf("%s user=%d q=%+v:\n live (overlay) %s maxdist=%x\n twin (rebuilt) %s maxdist=%x",
					label, user, q, answerKey(liveAns), liveAns.MaxDistance,
					answerKey(twinAns), twinAns.MaxDistance)
			}
			if !want.Found {
				t.Fatalf("%s user=%d: DB answered, Baseline says infeasible", label, user)
			}
			if !sameCost(liveAns.MaxDistance, want.MaxDist) {
				t.Fatalf("%s user=%d: cost %v != Baseline %v",
					label, user, liveAns.MaxDistance, want.MaxDist)
			}
		}
	}
}

// churnScript applies a deterministic mixed-mutation script: new road
// vertices stitched into the network, shortcut edges between existing
// vertices, POIs, and friendships. Returns after the road topology has
// genuinely changed (the overlay is active for oracle-backed DBs).
func churnScript(t *testing.T, db *DB, rounds int) {
	t.Helper()
	n0 := db.Network().Dataset().Road.NumVertices()
	for i := 0; i < rounds; i++ {
		// A new intersection near an existing one, wired in with two edges.
		base := db.Network().Dataset().Road.Vertex(roadnet.VertexID(socialVertex(i, n0)))
		v, err := db.AddRoadVertex(base.X+0.05+0.01*float64(i), base.Y+0.03)
		if err != nil {
			t.Fatalf("AddRoadVertex: %v", err)
		}
		if _, err := db.AddRoadEdge(socialVertex(i, n0), v); err != nil {
			t.Fatalf("AddRoadEdge (attach): %v", err)
		}
		if _, err := db.AddRoadEdge(v, socialVertex(i+3, n0)); err != nil {
			t.Fatalf("AddRoadEdge (stitch): %v", err)
		}
		// A shortcut between two existing vertices, skipping duplicates.
		a, b := socialVertex(i*5, n0), socialVertex(i*5+17, n0)
		if a != b && !db.Network().Dataset().Road.HasEdge(roadnet.VertexID(a), roadnet.VertexID(b)) {
			if _, err := db.AddRoadEdge(a, b); err != nil {
				t.Fatalf("AddRoadEdge (shortcut): %v", err)
			}
		}
		if _, err := db.AddPOI(base.X+0.1, base.Y+0.1, i%db.Network().NumTopics()); err != nil {
			t.Fatalf("AddPOI: %v", err)
		}
		if _, err := db.AddFriendship(i%20, 20+i%20); err != nil && !errors.Is(err, ErrInvalidInput) {
			t.Fatalf("AddFriendship: %v", err)
		}
	}
}

func socialVertex(i, n int) int { return (i*13 + 7) % n }

// TestRoadChurnEqualityGates is the tentpole equality gate for the
// delta-overlay: under a mixed churn script the live DB must keep agreeing
// with a freshly rebuilt twin and with the brute-force Baseline, for every
// oracle backend, before, during, and after a background Compact.
func TestRoadChurnEqualityGates(t *testing.T) {
	for _, kind := range []string{"hl", "ch", "dijkstra"} {
		for _, par := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/P%d", kind, par), func(t *testing.T) {
				testRoadChurnEqualityGates(t, kind, par)
			})
		}
	}
}

func testRoadChurnEqualityGates(t *testing.T, kind string, par int) {
	net := churnNetwork(t)
	cfg := DefaultConfig()
	cfg.RoadPivots = 3
	cfg.SocialPivots = 3
	cfg.DistanceOracle = kind
	cfg.Parallelism = par
	db, err := Open(net, cfg)
	if err != nil {
		t.Fatal(err)
	}

	churnScript(t, db, 3)
	if kind != "dijkstra" {
		ov := db.RoadOverlayStats()
		if !ov.Active || ov.NewEdges == 0 {
			t.Fatalf("overlay should be active after road churn: %+v", ov)
		}
	}
	compareVsFreshTwin(t, db, kind+"/pre-compact")

	// During: queries race the background re-contraction. Answers
	// must stay well-formed and the swap must not tear anything.
	done := make(chan error, 1)
	go func() { done <- db.Compact() }()
	q := Query{GroupSize: 2, Gamma: 0.2, Theta: 0.3, Radius: 2}
	for i := 0; i < 50; i++ {
		if _, _, err := db.Query(i%60, q); err != nil && !errors.Is(err, ErrNoAnswer) {
			t.Fatalf("query during Compact: %v", err)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if ov := db.RoadOverlayStats(); ov.Active {
		t.Fatalf("Compact should drain the overlay: %+v", ov)
	}
	compareVsFreshTwin(t, db, kind+"/post-compact")

	// Churn again on the compacted world: the overlay must re-arm
	// over the freshly contracted base and stay exact.
	churnScript(t, db, 2)
	compareVsFreshTwin(t, db, kind+"/post-compact-churn")
}

// TestAddFriendshipInvalidInput pins the facade panic-guard regression:
// out-of-range ids and self-friendships used to panic inside the social
// graph; they must now return an error matching ErrInvalidInput.
func TestAddFriendshipInvalidInput(t *testing.T) {
	net := figure1Network(t)
	db, err := Open(net, Config{RoadPivots: 2, SocialPivots: 2, LeafSize: 2, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range [][2]int{{0, 999}, {999, 0}, {-1, 0}, {0, -1}, {2, 2}} {
		added, err := db.AddFriendship(tc[0], tc[1])
		if !errors.Is(err, ErrInvalidInput) {
			t.Errorf("AddFriendship(%d, %d): want ErrInvalidInput, got %v", tc[0], tc[1], err)
		}
		if added {
			t.Errorf("AddFriendship(%d, %d): invalid input reported as added", tc[0], tc[1])
		}
	}
}

// TestDuplicateFriendshipNoOp pins the no-op contract: re-adding an
// existing friendship returns (false, nil), leaves no pending-update
// residue, and — because it cannot change any answer — does not flush the
// answer cache.
func TestDuplicateFriendshipNoOp(t *testing.T) {
	net := figure1Network(t)
	db, err := Open(net, Config{
		RoadPivots: 2, SocialPivots: 2, LeafSize: 2, Fanout: 2, CacheSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Users 0 and 1 are friends in the figure-1 network.
	q := Query{GroupSize: 2, Gamma: 0.1, Theta: 0.1, Radius: 1.5}
	if _, _, err := db.Query(0, q); err != nil && !errors.Is(err, ErrNoAnswer) {
		t.Fatal(err)
	}
	warm := db.cache.len()
	if warm == 0 {
		t.Fatal("cache not warmed")
	}
	added, err := db.AddFriendship(0, 1)
	if err != nil {
		t.Fatalf("duplicate AddFriendship: %v", err)
	}
	if added {
		t.Error("duplicate friendship reported as added")
	}
	if got := db.cache.len(); got != warm {
		t.Errorf("duplicate friendship flushed the cache: %d -> %d entries", warm, got)
	}
	if n := db.PendingUpdates(); n != 0 {
		t.Errorf("duplicate friendship left %d pending updates", n)
	}
	// A genuinely new friendship still invalidates.
	added, err = db.AddFriendship(0, 4)
	if err != nil {
		t.Fatalf("AddFriendship: %v", err)
	}
	if !added {
		t.Error("new friendship reported as no-op")
	}
	if db.cache.len() != 0 {
		t.Error("new friendship did not flush the cache")
	}
}

// TestRoadMutationValidation covers the typed-error surface of the new
// road mutations and their per-kind invalidation contract: an isolated
// vertex flushes nothing, an edge flushes everything.
func TestRoadMutationValidation(t *testing.T) {
	net := figure1Network(t)
	db, err := Open(net, Config{
		RoadPivots: 2, SocialPivots: 2, LeafSize: 2, Fanout: 2, CacheSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddRoadVertex(math.NaN(), 0); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("NaN road vertex: want ErrInvalidInput, got %v", err)
	}
	if _, err := db.AddRoadVertex(math.Inf(1), 0); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("Inf road vertex: want ErrInvalidInput, got %v", err)
	}
	n := db.Network().Dataset().Road.NumVertices()
	if _, err := db.AddRoadEdge(0, n+5); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("out-of-range road edge: want ErrInvalidInput, got %v", err)
	}
	if _, err := db.AddRoadEdge(-1, 0); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("negative road edge endpoint: want ErrInvalidInput, got %v", err)
	}
	if _, err := db.AddRoadEdge(0, 0); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("self-loop road edge: want ErrInvalidInput, got %v", err)
	}

	q := Query{GroupSize: 2, Gamma: 0.1, Theta: 0.1, Radius: 1.5}
	warm := func() int {
		t.Helper()
		if _, _, err := db.Query(0, q); err != nil && !errors.Is(err, ErrNoAnswer) {
			t.Fatal(err)
		}
		n := db.cache.len()
		if n == 0 {
			t.Fatal("cache not warmed")
		}
		return n
	}

	// Isolated vertex: provably answer-preserving, cache survives.
	n0 := warm()
	v, err := db.AddRoadVertex(0.5, 0.5)
	if err != nil {
		t.Fatalf("AddRoadVertex: %v", err)
	}
	if got := db.cache.len(); got != n0 {
		t.Errorf("AddRoadVertex flushed the cache: %d -> %d entries", n0, got)
	}

	// Duplicate of an existing segment is rejected before any state change.
	if _, err := db.AddRoadEdge(0, v); err != nil {
		t.Fatalf("AddRoadEdge: %v", err)
	}
	if _, err := db.AddRoadEdge(v, 0); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("duplicate road edge: want ErrInvalidInput, got %v", err)
	}

	// Edge: can shorten any distance, cache must be flushed.
	warm()
	if _, err := db.AddRoadEdge(v, 1); err != nil {
		t.Fatalf("AddRoadEdge: %v", err)
	}
	if db.cache.len() != 0 {
		t.Error("AddRoadEdge did not flush the cache")
	}
}

// TestRoadOverlayStatsLifecycle walks the overlay through its lifecycle:
// inactive on a fresh DB, active with accurate counters under churn, and
// drained (inactive again) by Compact.
func TestRoadOverlayStatsLifecycle(t *testing.T) {
	net := churnNetwork(t)
	cfg := DefaultConfig()
	cfg.RoadPivots = 3
	cfg.SocialPivots = 3
	db, err := Open(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ov := db.RoadOverlayStats(); ov.Active {
		t.Fatalf("fresh DB should have no overlay: %+v", ov)
	}
	n0 := db.Network().Dataset().Road.NumVertices()
	v, err := db.AddRoadVertex(0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ov := db.RoadOverlayStats()
	if !ov.Active || ov.BaseN != n0 || ov.NewVerts != 1 || ov.NewEdges != 0 {
		t.Fatalf("after AddRoadVertex: %+v (want BaseN=%d NewVerts=1)", ov, n0)
	}
	if _, err := db.AddRoadEdge(0, v); err != nil {
		t.Fatal(err)
	}
	ov = db.RoadOverlayStats()
	if ov.NewEdges != 1 || ov.Portals < 2 {
		t.Fatalf("after AddRoadEdge: %+v (want NewEdges=1, Portals>=2)", ov)
	}
	q := Query{GroupSize: 2, Gamma: 0.2, Theta: 0.3, Radius: 2}
	if _, _, err := db.Query(0, q); err != nil && !errors.Is(err, ErrNoAnswer) {
		t.Fatal(err)
	}
	if ov = db.RoadOverlayStats(); ov.Queries == 0 {
		t.Error("overlay served no composed queries")
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if ov = db.RoadOverlayStats(); ov.Active {
		t.Fatalf("Compact should detach the overlay: %+v", ov)
	}
}

// TestCompactBackgroundFailure pins the rebuild-failure fallback
// (docs/ROBUSTNESS.md): when the background re-contraction fails, Compact
// returns the error, the previous engine — overlay included — keeps
// serving exact answers, Rebuilding is cleared, and the failure is
// recorded as a Health note.
func TestCompactBackgroundFailure(t *testing.T) {
	net := churnNetwork(t)
	cfg := DefaultConfig()
	cfg.RoadPivots = 3
	cfg.SocialPivots = 3
	cfg.DistanceOracle = "hl"
	cfg.StrictOracle = true
	db, err := Open(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	churnScript(t, db, 2)
	pending := db.PendingUpdates()

	boom := errors.New("injected oracle build failure")
	failpoint.Arm("oracle.build.hl", failpoint.Failure{Mode: failpoint.ModeError, Err: boom})
	err = db.Compact()
	failpoint.Reset()
	if err == nil {
		t.Fatal("Compact should surface the injected build failure")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("Compact error should wrap the cause, got %v", err)
	}
	h := db.Health()
	if h.Rebuilding {
		t.Error("Rebuilding flag stuck after failed Compact")
	}
	found := false
	for _, n := range h.Notes {
		if strings.Contains(n, "re-contraction failed") {
			found = true
		}
	}
	if !found {
		t.Errorf("failed Compact left no health note: %v", h.Notes)
	}
	if got := db.PendingUpdates(); got != pending {
		t.Errorf("failed Compact changed pending updates: %d -> %d", pending, got)
	}
	if ov := db.RoadOverlayStats(); !ov.Active {
		t.Error("failed Compact detached the overlay")
	}
	// The previous engine must keep serving exactly.
	compareVsFreshTwin(t, db, "after-failed-compact")

	// And a later, healthy Compact still drains everything.
	if err := db.Compact(); err != nil {
		t.Fatalf("recovery Compact: %v", err)
	}
	if ov := db.RoadOverlayStats(); ov.Active {
		t.Error("recovery Compact did not drain the overlay")
	}
}

// TestCompactRebuildingObserved checks that the Rebuilding health flag is
// visible to concurrent readers while the background re-contraction runs,
// and that queries keep succeeding the whole time.
func TestCompactRebuildingObserved(t *testing.T) {
	// Big enough that the background re-contraction takes >100ms even on
	// one core — the poll loop below needs a real window to observe.
	net, err := GenerateSynthetic(SyntheticOptions{
		Name: "rebuild", Seed: 13,
		RoadVertices: 8000, Users: 40, POIs: 30, Topics: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.DistanceOracle = "hl"
	db, err := Open(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddRoadVertex(0.5, 0.5); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- db.Compact() }()

	sawRebuilding := false
	finished := false
	q := Query{GroupSize: 2, Gamma: 0.2, Theta: 0.3, Radius: 2}
	deadline := time.Now().Add(30 * time.Second)
	for !sawRebuilding && !finished && time.Now().Before(deadline) {
		if db.Health().Rebuilding {
			sawRebuilding = true
			// Queries must be served mid-rebuild.
			if _, _, err := db.Query(0, q); err != nil && !errors.Is(err, ErrNoAnswer) {
				t.Fatalf("query mid-rebuild: %v", err)
			}
			break
		}
		select {
		case err := <-done:
			finished = true
			if err != nil {
				t.Fatalf("Compact: %v", err)
			}
		default:
			// On GOMAXPROCS=1 the rebuild goroutine only runs when this
			// loop yields.
			runtime.Gosched()
		}
	}
	if !finished {
		if err := <-done; err != nil {
			t.Fatalf("Compact: %v", err)
		}
	}
	if !sawRebuilding {
		// The rebuild finished between polls; the flag's lifecycle is
		// still pinned deterministically by TestCompactBackgroundFailure.
		t.Skip("rebuild too fast to observe; flag lifecycle covered elsewhere")
	}
	if db.Health().Rebuilding {
		t.Error("Rebuilding flag stuck after successful Compact")
	}
}

// TestDBConcurrentRoadChurn is the -race interleaving suite for the
// delta-overlay: many goroutines query while one mutates the road network
// (vertices and edges), one adds POIs, and a background Compact swaps the
// engine mid-flight. Answers must stay well-formed throughout; afterwards
// every worker must have drained and the quiesced DB must agree with a
// freshly rebuilt twin and the Baseline on the final network.
func TestDBConcurrentRoadChurn(t *testing.T) {
	net := churnNetwork(t)
	cfg := DefaultConfig()
	cfg.RoadPivots = 3
	cfg.SocialPivots = 3
	cfg.CacheSize = 8
	cfg.Parallelism = 4
	db, err := Open(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{GroupSize: 2, Gamma: 0.2, Theta: 0.3, Radius: 2}
	users := []int{0, 5, 11, 23, 37, 52}
	n0 := db.Network().Dataset().Road.NumVertices()

	baseline := runtime.NumGoroutine()
	var wg sync.WaitGroup
	var failures atomic.Int64
	const queriers = 6
	const iters = 12
	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				u := users[(g+it)%len(users)]
				ans, _, err := db.Query(u, q)
				if err != nil && !errors.Is(err, ErrNoAnswer) {
					t.Errorf("Query(%d): %v", u, err)
					failures.Add(1)
					return
				}
				if err == nil && (len(ans.Users) != q.GroupSize || ans.MaxDistance < 0) {
					t.Errorf("Query(%d): malformed answer %+v", u, ans)
					failures.Add(1)
					return
				}
			}
		}(g)
	}
	// Road mutator: stitch new intersections in while queries fly.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			v, err := db.AddRoadVertex(0.3+0.1*float64(i), 0.7)
			if err != nil {
				t.Errorf("AddRoadVertex: %v", err)
				return
			}
			if _, err := db.AddRoadEdge(socialVertex(i, n0), v); err != nil {
				t.Errorf("AddRoadEdge: %v", err)
				return
			}
		}
	}()
	// POI mutator.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if _, err := db.AddPOI(float64(i)*0.3, 0.5, i%net.NumTopics()); err != nil {
				t.Errorf("AddPOI: %v", err)
				return
			}
		}
	}()
	// Background re-contraction racing both mutators and all queriers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := db.Compact(); err != nil {
			t.Errorf("Compact: %v", err)
		}
	}()
	wg.Wait()
	if failures.Load() > 0 {
		t.FailNow()
	}

	// Every refinement worker and the rebuild goroutine must have drained.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		t.Errorf("goroutine leak: %d running, baseline %d", n, baseline)
	}
	if db.Health().Rebuilding {
		t.Error("Rebuilding flag stuck after concurrent churn")
	}

	// Quiesced: bit-identical replay against a rebuilt twin and Baseline.
	compareVsFreshTwin(t, db, "concurrent-churn-quiesced")
}
