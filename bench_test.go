package gpssn

// One testing.B benchmark per table and figure of the paper's evaluation
// (Section 6 + Appendix P) plus the DESIGN.md ablations. Each benchmark
// drives the same experiment code as cmd/gpssn-bench at a reduced scale so
// `go test -bench=.` finishes in minutes; run
//
//	go run ./cmd/gpssn-bench -exp all -scale 1
//
// for paper-scale numbers. Experiment environments are cached across
// iterations, so b.N > 1 re-runs queries against warm indexes.

import (
	"io"
	"testing"

	"gpssn/internal/bench"
	"gpssn/internal/core"
)

// benchCfg is the reduced-scale configuration used by the benchmarks.
func benchCfg() bench.RunConfig {
	return bench.RunConfig{Scale: 0.02, Queries: 3, Seed: 1, BaselineSamples: 3}
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	exp, ok := bench.Find(name)
	if !ok {
		b.Fatalf("experiment %q not registered", name)
	}
	cfg := benchCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := exp.Run(io.Discard, cfg); err != nil {
			b.Fatalf("%s: %v", name, err)
		}
	}
}

func BenchmarkTable2Stats(b *testing.B)          { runExperiment(b, "table2") }
func BenchmarkFig7a(b *testing.B)                { runExperiment(b, "fig7a") }
func BenchmarkFig7b(b *testing.B)                { runExperiment(b, "fig7b") }
func BenchmarkFig7c(b *testing.B)                { runExperiment(b, "fig7c") }
func BenchmarkFig7d(b *testing.B)                { runExperiment(b, "fig7d") }
func BenchmarkFig8(b *testing.B)                 { runExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)                 { runExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)                { runExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)                { runExperiment(b, "fig11") }
func BenchmarkAppPGamma(b *testing.B)            { runExperiment(b, "appP-gamma") }
func BenchmarkAppPTheta(b *testing.B)            { runExperiment(b, "appP-theta") }
func BenchmarkAppPR(b *testing.B)                { runExperiment(b, "appP-r") }
func BenchmarkAppPPivots(b *testing.B)           { runExperiment(b, "appP-pivots") }
func BenchmarkAppPVs(b *testing.B)               { runExperiment(b, "appP-vs") }
func BenchmarkAblationRandomPivots(b *testing.B) { runExperiment(b, "ablation-pivots") }
func BenchmarkAblationNoIndexPruning(b *testing.B) {
	runExperiment(b, "ablation-indexpruning")
}
func BenchmarkAblationNoPivots(b *testing.B)   { runExperiment(b, "ablation-distance") }
func BenchmarkAblationRTreeSplit(b *testing.B) { runExperiment(b, "ablation-rtree") }
func BenchmarkAblationSampling(b *testing.B)   { runExperiment(b, "ablation-sampling") }
func BenchmarkAblationChOracle(b *testing.B)   { runExperiment(b, "ablation-choracle") }

// BenchmarkQueryDefault measures one GP-SSN query at the Table 3 defaults
// against a cached environment (the per-query cost the paper's Figures
// 8-11 report).
func BenchmarkQueryDefault(b *testing.B) {
	env, err := bench.GetEnv(bench.EnvSpec{Kind: bench.UNI, Scale: 0.1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	users := env.QueryUsers(16, 5)
	p := core.Params{Gamma: 0.5, Tau: 5, Theta: 0.5, R: 2, Metric: core.MetricDotProduct}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := env.Engine.Query(users[i%len(users)], p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryTopK measures the top-k extension.
func BenchmarkQueryTopK(b *testing.B) {
	env, err := bench.GetEnv(bench.EnvSpec{Kind: bench.UNI, Scale: 0.1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	users := env.QueryUsers(16, 6)
	p := core.Params{Gamma: 0.5, Tau: 3, Theta: 0.5, R: 2, Metric: core.MetricDotProduct}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := env.Engine.QueryTopK(users[i%len(users)], p, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexBuild measures I_R + I_S construction (dataset generation
// excluded via env caching of the dataset-only spec is not possible, so
// the dataset is rebuilt; treat this as an upper bound).
func BenchmarkIndexBuild(b *testing.B) {
	net, err := GenerateSynthetic(SyntheticOptions{
		Seed: 9, RoadVertices: 2000, Users: 2000, POIs: 800,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Open(net, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtMetrics(b *testing.B) { runExperiment(b, "ext-metrics") }
func BenchmarkExtTopK(b *testing.B)    { runExperiment(b, "ext-topk") }

// BenchmarkParallelSpeedup measures per-query wall time at refinement
// worker counts 1 and GOMAXPROCS on one shared environment (run with
// `go test -bench=ParallelSpeedup`; sub-benchmark names carry the worker
// count). Speedup is capped by min(workers, GOMAXPROCS) — see the
// "parallel" experiment and EXPERIMENTS.md for recorded numbers.
func BenchmarkParallelSpeedup(b *testing.B) {
	p := core.Params{Gamma: 0.5, Tau: 5, Theta: 0.5, R: 2, Metric: core.MetricDotProduct}
	for _, par := range []int{1, 0} {
		name := "workers=auto"
		if par == 1 {
			name = "workers=1"
		}
		b.Run(name, func(b *testing.B) {
			env, err := bench.GetEnv(bench.EnvSpec{
				Kind: bench.UNI, Scale: 0.1, Seed: 1, Parallelism: par,
			})
			if err != nil {
				b.Fatal(err)
			}
			users := env.QueryUsers(16, 5)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := env.Engine.Query(users[i%len(users)], p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
