package gpssn

import (
	"fmt"

	"gpssn/internal/snap"
	"gpssn/internal/wal"
)

// Durability: when Config.WALPath is set, every successful dynamic update
// is framed as a WAL record and appended — and fsynced per Config.WALSync
// — *before* it is applied to the in-memory state (append-before-apply,
// under the same db.upd/db.mu critical section as the apply, so LSN order
// is apply order). Open and OpenSnapshot replay the surviving log on top
// of the loaded base state; because each record stores the mutation's
// *inputs* and every apply step is deterministic given the state it runs
// against, replay in LSN order reconstructs the exact pre-crash state —
// gated bit-identical against a never-crashed twin by the crash matrix in
// wal_crash_test.go. Snapshot doubles as the checkpoint: it persists the
// applied LSN, then truncates the log. docs/ROBUSTNESS.md §7 is the full
// contract.

// Record payload codecs. Payloads reuse the snapshot codec (little-endian,
// length-prefixed slices) and store exactly the public mutation's
// arguments: replay re-enters the same validate+apply path the original
// call took, so derived state (snapped locations, assigned ids, overlay
// patches) is recomputed, not trusted from disk.

func encodeAddPOI(x, y float64, keywords []int) []byte {
	var e snap.Enc
	e.F64(x)
	e.F64(y)
	ks := make([]int32, len(keywords))
	for i, k := range keywords {
		ks[i] = int32(k)
	}
	e.I32s(ks)
	return e.B
}

func decodeAddPOI(p []byte) (x, y float64, keywords []int, err error) {
	d := &snap.Dec{B: p}
	x, y = d.F64(), d.F64()
	ks := d.I32s()
	if err := payloadErr(d); err != nil {
		return 0, 0, nil, err
	}
	keywords = make([]int, len(ks))
	for i, k := range ks {
		keywords[i] = int(k)
	}
	return x, y, keywords, nil
}

func encodeAddUser(x, y float64, interests []float64) []byte {
	var e snap.Enc
	e.F64(x)
	e.F64(y)
	e.F64s(interests)
	return e.B
}

func decodeAddUser(p []byte) (x, y float64, interests []float64, err error) {
	d := &snap.Dec{B: p}
	x, y = d.F64(), d.F64()
	interests = d.F64s()
	if err := payloadErr(d); err != nil {
		return 0, 0, nil, err
	}
	return x, y, interests, nil
}

func encodePair(a, b int) []byte {
	var e snap.Enc
	e.U64(uint64(a))
	e.U64(uint64(b))
	return e.B
}

func decodePair(p []byte) (a, b int, err error) {
	d := &snap.Dec{B: p}
	a, b = int(d.U64()), int(d.U64())
	if err := payloadErr(d); err != nil {
		return 0, 0, err
	}
	return a, b, nil
}

func encodePoint(x, y float64) []byte {
	var e snap.Enc
	e.F64(x)
	e.F64(y)
	return e.B
}

func decodePoint(p []byte) (x, y float64, err error) {
	d := &snap.Dec{B: p}
	x, y = d.F64(), d.F64()
	if err := payloadErr(d); err != nil {
		return 0, 0, err
	}
	return x, y, nil
}

// payloadErr finishes a payload decode: a decoder error or trailing bytes
// mean the record body — though its checksum passed — is not a payload
// this version wrote.
func payloadErr(d *snap.Dec) error {
	if err := d.Err(); err != nil {
		return err
	}
	if !d.Done() {
		return fmt.Errorf("trailing bytes after payload")
	}
	return nil
}

// openWAL opens (or creates) the log at c.WALPath against a base state
// whose applied LSN is base, replays every surviving record past base
// onto db, and attaches the log for subsequent appends. Called by
// Open/OpenSnapshot before the DB is published, so no locking.
func (db *DB) openWAL(c Config, base uint64) error {
	pol, err := wal.ParseSyncPolicy(c.WALSync)
	if err != nil {
		return invalidf("%v", err)
	}
	l, recs, err := wal.Open(c.WALPath, base+1, wal.Options{Sync: pol, FlushWindow: c.WALFlushWindow})
	if err != nil {
		return walErr(err)
	}
	if st := l.StartLSN(); st > base+1 {
		l.Close()
		return &WALError{Path: c.WALPath, LSN: base,
			Reason: fmt.Sprintf("log starts at LSN %d but the base state is at LSN %d; open the checkpoint this log pairs with", st, base)}
	}
	applied, replayed := base, 0
	for _, rec := range recs {
		if rec.LSN <= base {
			// The checkpoint already holds this record: a crash landed
			// between the snapshot rename and the log truncation.
			continue
		}
		if err := db.replayRecord(rec); err != nil {
			l.Close()
			return &WALError{Path: c.WALPath, LSN: rec.LSN,
				Reason: fmt.Sprintf("replaying %s: %v (log does not pair with this base state?)", rec.Kind, err)}
		}
		applied = rec.LSN
		replayed++
	}
	if st := l.Stats(); replayed > 0 || st.TornBytesDropped > 0 {
		note := fmt.Sprintf("wal: replayed %d update(s) to LSN %d", replayed, applied)
		if st.TornBytesDropped > 0 {
			note += fmt.Sprintf("; dropped %d-byte torn tail", st.TornBytesDropped)
		}
		db.health.Notes = append(db.health.Notes, note)
		c.logf("gpssn: %s", note)
	}
	db.wal = l
	db.appliedLSN = applied
	return nil
}

// replayRecord re-runs one logged mutation through the same checked apply
// path the original call took. Any failure means the log and the base
// state do not belong together.
func (db *DB) replayRecord(rec wal.Record) error {
	switch rec.Kind {
	case wal.KindAddPOI:
		x, y, kws, err := decodeAddPOI(rec.Payload)
		if err != nil {
			return err
		}
		if err := db.checkAddPOI(x, y, kws); err != nil {
			return err
		}
		_, err = db.applyAddPOI(x, y, kws)
		return err
	case wal.KindAddUser:
		x, y, in, err := decodeAddUser(rec.Payload)
		if err != nil {
			return err
		}
		if err := db.checkAddUser(x, y, in); err != nil {
			return err
		}
		_, err = db.applyAddUser(x, y, in)
		return err
	case wal.KindAddFriendship:
		a, b, err := decodePair(rec.Payload)
		if err != nil {
			return err
		}
		if err := db.checkAddFriendship(a, b); err != nil {
			return err
		}
		return db.applyAddFriendship(a, b)
	case wal.KindAddRoadVertex:
		x, y, err := decodePoint(rec.Payload)
		if err != nil {
			return err
		}
		if err := db.checkAddRoadVertex(x, y); err != nil {
			return err
		}
		_, err = db.applyAddRoadVertex(x, y)
		return err
	case wal.KindAddRoadEdge:
		u, v, err := decodePair(rec.Payload)
		if err != nil {
			return err
		}
		if err := db.checkAddRoadEdge(u, v); err != nil {
			return err
		}
		_, err = db.applyAddRoadEdge(u, v)
		return err
	}
	return fmt.Errorf("unknown record kind %d", rec.Kind)
}

// walAppend frames and appends one record ahead of its apply. Called with
// db.mu held exclusively. With no WAL attached it is a no-op returning
// lsn 0.
func (db *DB) walAppend(kind wal.Kind, payload []byte) (uint64, error) {
	if db.wal == nil {
		return 0, nil
	}
	lsn, err := db.wal.Append(kind, payload)
	if err != nil {
		return 0, fmt.Errorf("gpssn: wal: %w", err)
	}
	return lsn, nil
}

// walCommit marks one appended record applied. Called with db.mu held
// exclusively, after the apply step succeeded.
func (db *DB) walCommit(lsn uint64) {
	if db.wal != nil {
		db.appliedLSN = lsn
	}
}

// walRollback physically undoes the most recent append after its apply
// step failed, so the log never replays a mutation the live DB rejected.
// Rollback can itself fail (the log is poisoned as a crash would leave
// it); the apply error is what the caller reports either way, with the
// rollback failure recorded as a health note.
func (db *DB) walRollback(lsn uint64) {
	if db.wal == nil {
		return
	}
	if err := db.wal.Rollback(lsn); err != nil {
		db.health.Notes = append(db.health.Notes,
			fmt.Sprintf("wal: rollback of LSN %d failed (%v); log needs recovery on next open", lsn, err))
	}
}

// WALStats is an observable snapshot of the attached write-ahead log:
// the LSN window the file covers, the applied LSN, pending (logged but
// not yet checkpointed) record count, and lifetime append/fsync counters.
// Enabled is false — and everything else zero — when the DB was opened
// without Config.WALPath. gpssn-serve surfaces it under /statsz.
type WALStats struct {
	Enabled bool
	// Path and Sync echo the configuration.
	Path string
	Sync string
	// StartLSN/LastLSN bound the records the file currently holds;
	// AppliedLSN is the newest record applied to the in-memory state.
	StartLSN, LastLSN, AppliedLSN uint64
	// Pending is the record count awaiting the next checkpoint; Bytes the
	// file size. Auto-checkpoint triggers on Bytes (Config.WALAutoCheckpointBytes).
	Pending, Bytes int64
	// Appends and Fsyncs count this process's lifetime log activity.
	Appends, Fsyncs int64
	// TornBytesDropped is the torn tail discarded at open (0 = clean).
	TornBytesDropped int64
}

// WALStats snapshots the write-ahead log counters. Safe for concurrent
// use.
func (db *DB) WALStats() WALStats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.wal == nil {
		return WALStats{}
	}
	st := db.wal.Stats()
	return WALStats{
		Enabled:          true,
		Path:             st.Path,
		Sync:             st.Sync,
		StartLSN:         st.StartLSN,
		LastLSN:          st.LastLSN,
		AppliedLSN:       db.appliedLSN,
		Pending:          st.Records,
		Bytes:            st.Bytes,
		Appends:          st.Appends,
		Fsyncs:           st.Fsyncs,
		TornBytesDropped: st.TornBytesDropped,
	}
}

// Checkpoint makes the log's records redundant by snapshotting the full
// state to path and truncating the log: exactly Snapshot, which already
// performs the checkpoint protocol when a WAL is attached. Named here so
// the serving lifecycle (drain → checkpoint → exit) reads as what it is.
func (db *DB) Checkpoint(path string) error { return db.Snapshot(path) }

// Close shuts down the DB's background half: it waits out any in-flight
// auto-maintenance pass, permanently disables further ones, and closes
// the write-ahead log (flushing outstanding batched appends). After
// Close, queries keep working but dynamic updates on a WAL-backed DB
// fail — there is no log left to make them durable. Idempotent.
func (db *DB) Close() error {
	if db.closed.Swap(true) {
		return nil
	}
	// Acquiring the maintenance token waits for an in-flight pass (it may
	// be about to checkpoint the very log being closed); never releasing
	// it keeps any future pass from starting.
	db.maintTok <- struct{}{}

	db.upd.Lock()
	defer db.upd.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal == nil {
		return nil
	}
	if err := db.wal.Close(); err != nil {
		return fmt.Errorf("gpssn: wal: %w", err)
	}
	return nil
}

// maybeMaintain runs after every successful mutation, outside both locks:
// it checks the auto-maintenance triggers and, at most one at a time,
// runs the needed work in the background so the mutating caller never
// blocks on a re-contraction or a checkpoint.
//
//   - Config.OverlayCompactPortals: the road delta-overlay's portal patch
//     costs Portals² per composed distance, so when the portal count
//     crosses the bound, Compact re-contracts the oracle and drains the
//     overlay (the ROADMAP's "overlay compaction thresholds" item).
//   - Config.WALAutoCheckpointBytes: when the log outgrows the bound, a
//     checkpoint to Config.CheckpointPath absorbs it and truncates.
//
// A Compact triggered here is followed by a checkpoint when a WAL is
// attached: the rebuild proves the full state is reconstructible, and the
// checkpoint makes that durable so the log shrinks too.
func (db *DB) maybeMaintain() {
	needCompact := db.cfg.OverlayCompactPortals > 0 &&
		db.RoadOverlayStats().Portals > db.cfg.OverlayCompactPortals
	needCkpt := db.cfg.WALAutoCheckpointBytes > 0 && db.cfg.CheckpointPath != "" &&
		db.walSize() > db.cfg.WALAutoCheckpointBytes
	if !needCompact && !needCkpt {
		return
	}
	if db.closed.Load() {
		return
	}
	select {
	case db.maintTok <- struct{}{}:
	default:
		return // one maintenance pass at a time; the next mutation re-checks
	}
	db.maintaining.Store(true)
	go func() {
		defer func() {
			db.maintaining.Store(false)
			<-db.maintTok
		}()
		if needCompact {
			if err := db.Compact(); err == nil && db.cfg.CheckpointPath != "" && db.walSize() > 0 {
				needCkpt = true
			}
		}
		if needCkpt {
			if err := db.Snapshot(db.cfg.CheckpointPath); err != nil {
				db.mu.Lock()
				db.health.Notes = append(db.health.Notes,
					fmt.Sprintf("auto-checkpoint to %s failed (%v); will retry on the next trigger", db.cfg.CheckpointPath, err))
				db.mu.Unlock()
				db.cfg.logf("gpssn: auto-checkpoint failed: %v", err)
			}
		}
	}()
}

// walSize reads the log size without assuming any DB lock.
func (db *DB) walSize() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.wal == nil {
		return 0
	}
	return db.wal.Size()
}

// Maintaining reports whether a background auto-maintenance pass
// (auto-Compact or auto-checkpoint) is in flight. Tests and the serving
// layer use it to wait for the overlay to drain.
func (db *DB) Maintaining() bool { return db.maintaining.Load() }
