package gpssn

import (
	"errors"
	"testing"
)

func TestSuggestQuery(t *testing.T) {
	net, err := GenerateSynthetic(SyntheticOptions{
		Seed: 77, RoadVertices: 600, Users: 600, POIs: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	q, err := SuggestQuery(net, 3, 0.5)
	if err != nil {
		t.Fatalf("SuggestQuery: %v", err)
	}
	if q.GroupSize != 3 {
		t.Errorf("GroupSize = %d", q.GroupSize)
	}
	if q.Gamma <= 0 {
		t.Errorf("Gamma = %v, want positive (friends share interests)", q.Gamma)
	}
	if q.Theta < 0 {
		t.Errorf("Theta = %v", q.Theta)
	}
	if q.Radius <= 0 {
		t.Errorf("Radius = %v", q.Radius)
	}
	// Deterministic.
	q2, err := SuggestQuery(net, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if q != q2 {
		t.Errorf("SuggestQuery not deterministic: %+v vs %+v", q, q2)
	}
	// A stricter percentile must not loosen gamma.
	strict, err := SuggestQuery(net, 3, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if strict.Gamma < q.Gamma-1e-9 {
		t.Errorf("stricter percentile lowered gamma: %v < %v", strict.Gamma, q.Gamma)
	}
}

func TestSuggestQueryAnswersExist(t *testing.T) {
	net, err := GenerateSynthetic(SyntheticOptions{
		Seed: 78, RoadVertices: 800, Users: 800, POIs: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	q, err := SuggestQuery(net, 2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// Clamp radius into the index build range.
	cfg := DefaultConfig()
	if q.Radius > cfg.RMax {
		q.Radius = cfg.RMax
	}
	if q.Radius < cfg.RMin {
		q.Radius = cfg.RMin
	}
	db, err := Open(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for u := 0; u < 12; u++ {
		if _, _, err := db.Query(u, q); err == nil {
			found++
		} else if !errors.Is(err, ErrNoAnswer) {
			t.Fatalf("user %d: %v", u, err)
		}
	}
	if found == 0 {
		t.Error("median-percentile suggested parameters found no answers at all")
	}
}

func TestSuggestQueryValidation(t *testing.T) {
	net := figure1Network(t)
	if _, err := SuggestQuery(nil, 2, 0.5); err == nil {
		t.Error("nil network should fail")
	}
	if _, err := SuggestQuery(net, 0, 0.5); err == nil {
		t.Error("group size 0 should fail")
	}
	if _, err := SuggestQuery(net, 2, 0); err == nil {
		t.Error("percentile 0 should fail")
	}
	if _, err := SuggestQuery(net, 2, 1); err == nil {
		t.Error("percentile 1 should fail")
	}
}
