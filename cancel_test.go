package gpssn

import (
	"context"
	"errors"
	"math"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestQueryCtxAlreadyCancelled pins the fast-fail contract: a context that
// is already dead fails in well under 5ms — before the DB read lock, so a
// long-running Compact cannot stall the rejection — with an error matching
// both the typed sentinel and the context sentinel.
func TestQueryCtxAlreadyCancelled(t *testing.T) {
	net := figure1Network(t)
	db, err := Open(net, Config{RoadPivots: 2, SocialPivots: 2, LeafSize: 2, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{GroupSize: 2, Gamma: 0.5, Theta: 0.5, Radius: 1.5}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, _, err = db.QueryCtx(ctx, 0, q)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("errors.Is(err, context.Canceled) = false")
	}
	if elapsed >= 5*time.Millisecond {
		t.Errorf("already-cancelled QueryCtx took %s, want <5ms", elapsed)
	}

	// Expired deadlines map to the deadline sentinel instead.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, _, err := db.QueryCtx(dctx, 0, q); !errors.Is(err, ErrDeadlineExceeded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired deadline err = %v, want ErrDeadlineExceeded/context.DeadlineExceeded", err)
	}

	// QueryTopKCtx obeys the same contract.
	if _, _, err := db.QueryTopKCtx(ctx, 0, q, 3); !errors.Is(err, ErrCancelled) {
		t.Errorf("QueryTopKCtx err = %v, want ErrCancelled", err)
	}
}

// TestQueryCtxNeverPoisonsCache drives QueryCtx with deadlines scattered
// from "already expired" to "expires mid-query" and asserts the core cache
// invariant: a cancelled query never writes the answer cache, partial Stats
// survive cancellation, and afterwards the DB still answers exactly like a
// DB that never saw a cancellation.
func TestQueryCtxNeverPoisonsCache(t *testing.T) {
	net := stressNetwork(t)
	cfg := Config{RoadPivots: 3, SocialPivots: 3, LeafSize: 16, Fanout: 4, CacheSize: 16}
	db, err := Open(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{GroupSize: 2, Gamma: 0.2, Theta: 0.3, Radius: 2}
	users := []int{0, 5, 11, 23, 37, 52}

	sawCancel := false
	for i := 0; i < 60; i++ {
		u := users[i%len(users)]
		before := db.cache.len()
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%12)*20*time.Microsecond)
		ans, st, err := db.QueryCtx(ctx, u, q)
		cancel()
		switch {
		case err == nil:
			if len(ans.Users) != q.GroupSize {
				t.Fatalf("user %d: malformed answer %+v", u, ans)
			}
		case errors.Is(err, ErrNoAnswer):
			// feasibility outcome, cached like any other
		case errors.Is(err, ErrDeadlineExceeded) || errors.Is(err, ErrCancelled):
			sawCancel = true
			if st == nil {
				t.Fatal("cancelled query returned nil stats")
			}
			if got := db.cache.len(); got != before {
				t.Fatalf("cancelled query changed cache len %d -> %d", before, got)
			}
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if !sawCancel {
		t.Skip("no query was cancelled in time; nothing to assert (machine too fast)")
	}

	// After all that, answers must match a DB that never saw a cancellation.
	clean, err := Open(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range users {
		a, _, errA := db.Query(u, q)
		b, _, errB := clean.Query(u, q)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("user %d: error mismatch after cancellations: %v vs %v", u, errA, errB)
		}
		if errA == nil && !reflect.DeepEqual(a, b) {
			t.Fatalf("user %d: cancellations poisoned later answers:\n  got  %+v\n  want %+v", u, a, b)
		}
	}
}

// TestQueryBudgetTruncates pins the graceful-degradation contract of
// Query.Budget: a starved budget yields either a flagged-truncated answer
// whose cost is never better than the true optimum, or ErrNoAnswer with
// Stats.Raw.Truncated set — never an error and never a silently-wrong
// "optimal". Truncated outcomes must not enter the answer cache.
func TestQueryBudgetTruncates(t *testing.T) {
	net := stressNetwork(t)
	db, err := Open(net, Config{RoadPivots: 3, SocialPivots: 3, LeafSize: 16, Fanout: 4, CacheSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	base := Query{GroupSize: 2, Gamma: 0.2, Theta: 0.3, Radius: 2}
	users := []int{0, 5, 11, 23, 37, 52}

	// Reference optima with no budget.
	type ref struct {
		dist  float64
		found bool
	}
	want := map[int]ref{}
	for _, u := range users {
		ans, _, err := db.Query(u, base)
		if errors.Is(err, ErrNoAnswer) {
			want[u] = ref{found: false}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		want[u] = ref{dist: ans.MaxDistance, found: true}
	}
	db.cache.invalidate()

	for _, budget := range []Budget{
		{MaxSettledVertices: 1},
		{MaxSettledVertices: 2000},
		{MaxRefinedAnchors: 1},
	} {
		q := base
		q.Budget = budget
		for _, u := range users {
			before := db.cache.len()
			ans, st, err := db.QueryCtx(context.Background(), u, q)
			if err != nil && !errors.Is(err, ErrNoAnswer) {
				t.Fatalf("budget %+v user %d: unexpected error %v", budget, u, err)
			}
			truncated := st.Raw.Truncated || (ans != nil && ans.Truncated)
			if err == nil {
				if ans.Truncated != st.Raw.Truncated {
					t.Fatalf("budget %+v user %d: Answer.Truncated=%v disagrees with Stats.Raw.Truncated=%v",
						budget, u, ans.Truncated, st.Raw.Truncated)
				}
				w := want[u]
				if !w.found {
					t.Fatalf("budget %+v user %d: budgeted query found an answer the unbudgeted one did not", budget, u)
				}
				// Soundness: a truncated answer is the best fully-evaluated
				// candidate, so it can never beat the true optimum; an
				// untruncated one must BE the optimum.
				if ans.MaxDistance < w.dist-1e-9 {
					t.Fatalf("budget %+v user %d: budgeted cost %v beats optimum %v", budget, u, ans.MaxDistance, w.dist)
				}
				if !ans.Truncated && math.Abs(ans.MaxDistance-w.dist) > 1e-9 {
					t.Fatalf("budget %+v user %d: untruncated cost %v != optimum %v", budget, u, ans.MaxDistance, w.dist)
				}
			}
			if truncated {
				if got := db.cache.len(); got != before {
					t.Fatalf("budget %+v user %d: truncated outcome was cached (len %d -> %d)", budget, u, before, got)
				}
			}
			if budget.MaxSettledVertices > 0 && st.Raw.SettledWork == 0 && err == nil {
				t.Errorf("budget %+v user %d: SettledWork not accounted", budget, u)
			}
		}
	}

	// The budget participates in the cache key: an unbudgeted answer cached
	// first must not be served to a budgeted query or vice versa.
	db.cache.invalidate()
	if _, _, err := db.Query(users[0], base); err != nil && !errors.Is(err, ErrNoAnswer) {
		t.Fatal(err)
	}
	qb := base
	qb.Budget = Budget{MaxSettledVertices: 1}
	if _, st, err := db.QueryCtx(context.Background(), users[0], qb); err == nil || errors.Is(err, ErrNoAnswer) {
		if st.CacheHit {
			t.Error("budgeted query was served the unbudgeted cache entry")
		}
	}
}

// TestStatsCacheHit verifies the stale-stats fix: a cache hit reports
// CacheHit=true with zeroed cost counters (top-level and Raw), while the
// original miss keeps its real figures.
func TestStatsCacheHit(t *testing.T) {
	net := figure1Network(t)
	db, err := Open(net, Config{RoadPivots: 2, SocialPivots: 2, LeafSize: 2, Fanout: 2, CacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{GroupSize: 2, Gamma: 0.5, Theta: 0.5, Radius: 1.5}
	_, st1, err := db.Query(0, q)
	if err != nil {
		t.Fatal(err)
	}
	if st1.CacheHit || st1.Raw.CacheHit {
		t.Fatal("miss reported CacheHit")
	}
	_, st2, err := db.Query(0, q)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.CacheHit || !st2.Raw.CacheHit {
		t.Error("hit did not report CacheHit")
	}
	if st2.CPUTime != 0 || st2.PageReads != 0 || st2.Raw.CPUTime != 0 || st2.Raw.PageReads != 0 {
		t.Errorf("hit carried stale cost counters: %+v", st2)
	}

	// The "no answer" outcome reports hits the same way.
	hard := Query{GroupSize: 5, Gamma: 5, Theta: 0.5, Radius: 1}
	if _, _, err := db.Query(0, hard); !errors.Is(err, ErrNoAnswer) {
		t.Fatal("expected no answer")
	}
	_, st3, err := db.Query(0, hard)
	if !errors.Is(err, ErrNoAnswer) {
		t.Fatal("cached no-answer must repeat")
	}
	if !st3.CacheHit || st3.CPUTime != 0 || st3.PageReads != 0 {
		t.Errorf("cached no-answer hit carried stale stats: %+v", st3)
	}
}

// TestDBConcurrentCancelMixedLoad is the -race stress for the cancellation
// path: concurrent QueryCtx calls — some cancelled mid-refinement at
// Parallelism 8 under the hl oracle — interleave with dynamic updates and a
// Compact. All refinement workers must drain (no goroutine leak), no answer
// may be torn, and cancelled queries must never write the cache.
func TestDBConcurrentCancelMixedLoad(t *testing.T) {
	net := stressNetwork(t)
	db, err := Open(net, Config{
		RoadPivots: 3, SocialPivots: 3, LeafSize: 16, Fanout: 4,
		CacheSize: 8, Parallelism: 8, DistanceOracle: "hl",
	})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{GroupSize: 2, Gamma: 0.2, Theta: 0.3, Radius: 2}
	users := []int{0, 5, 11, 23, 37, 52}

	baseline := runtime.NumGoroutine()
	var wg sync.WaitGroup
	const queriers = 8
	const iters = 15
	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				u := users[(g+it)%len(users)]
				// Stagger deadlines from instant to comfortably-finishing so
				// some queries die mid-refinement and others complete.
				timeout := time.Duration((g*iters+it)%16) * 50 * time.Microsecond
				ctx, cancel := context.WithTimeout(context.Background(), timeout)
				ans, st, err := db.QueryCtx(ctx, u, q)
				cancel()
				switch {
				case err == nil:
					if len(ans.Users) != q.GroupSize || len(ans.POIs) == 0 || ans.MaxDistance < 0 {
						t.Errorf("torn answer for user %d: %+v", u, ans)
						return
					}
				case errors.Is(err, ErrNoAnswer):
				case errors.Is(err, ErrCancelled) || errors.Is(err, ErrDeadlineExceeded):
					if st == nil {
						t.Error("cancelled query returned nil stats")
						return
					}
				default:
					t.Errorf("unexpected error for user %d: %v", u, err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if _, err := db.AddPOI(float64(i), 0.5, i%net.NumTopics()); err != nil {
				t.Errorf("AddPOI: %v", err)
				return
			}
			if _, err := db.AddFriendship(users[i], users[i+1]); err != nil {
				t.Errorf("AddFriendship: %v", err)
				return
			}
			if i == 2 {
				if err := db.Compact(); err != nil {
					t.Errorf("Compact: %v", err)
					return
				}
			}
		}
	}()
	wg.Wait()

	// Every per-query refinement worker must have drained.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		t.Errorf("goroutine leak: %d running, baseline %d", n, baseline)
	}

	// Quiesced sanity: uncancelled queries still work and agree with a
	// fresh engine over the final network.
	for _, u := range users {
		if _, _, err := db.Query(u, q); err != nil && !errors.Is(err, ErrNoAnswer) {
			t.Fatalf("post-race Query(%d): %v", u, err)
		}
	}
}
