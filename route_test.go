package gpssn

import (
	"math"
	"testing"
)

func TestRouteBasics(t *testing.T) {
	net := figure1Network(t)
	for user := 0; user < net.NumUsers(); user++ {
		for poi := 0; poi < net.NumPOIs(); poi++ {
			dist, pts, err := net.Route(user, poi)
			if err != nil {
				t.Fatalf("Route(%d,%d): %v", user, poi, err)
			}
			if math.Abs(dist-net.RoadDistance(user, poi)) > 1e-9 {
				t.Fatalf("Route(%d,%d) dist %v != RoadDistance %v",
					user, poi, dist, net.RoadDistance(user, poi))
			}
			if len(pts) < 2 {
				t.Fatalf("Route(%d,%d) polyline too short: %v", user, poi, pts)
			}
			// Endpoints must be the home and the POI.
			ux, uy := net.UserLocation(user)
			px, py := net.POILocation(poi)
			if math.Hypot(pts[0].X-ux, pts[0].Y-uy) > 1e-9 {
				t.Fatalf("route does not start at home")
			}
			last := pts[len(pts)-1]
			if math.Hypot(last.X-px, last.Y-py) > 1e-9 {
				t.Fatalf("route does not end at the POI")
			}
		}
	}
}

// The polyline's length must be close to the reported distance: the path
// through the chosen endpoints may legitimately exceed the optimal
// attach-to-attach distance by at most one edge length (the partial-edge
// segments at both ends), and never undershoot it.
func TestRoutePolylineLength(t *testing.T) {
	net := figure1Network(t)
	for user := 0; user < net.NumUsers(); user++ {
		for poi := 0; poi < net.NumPOIs(); poi++ {
			dist, pts, err := net.Route(user, poi)
			if err != nil {
				t.Fatal(err)
			}
			length := 0.0
			for i := 1; i < len(pts); i++ {
				length += math.Hypot(pts[i].X-pts[i-1].X, pts[i].Y-pts[i-1].Y)
			}
			if length < dist-1e-6 {
				t.Fatalf("Route(%d,%d): polyline %v shorter than road distance %v",
					user, poi, length, dist)
			}
			if length > dist+2+1e-6 { // edges in figure1Network have length 1
				t.Fatalf("Route(%d,%d): polyline %v much longer than distance %v",
					user, poi, length, dist)
			}
		}
	}
}

func TestRouteValidation(t *testing.T) {
	net := figure1Network(t)
	if _, _, err := net.Route(-1, 0); err == nil {
		t.Error("negative user should error")
	}
	if _, _, err := net.Route(0, 99); err == nil {
		t.Error("missing POI should error")
	}
}

func TestFriendsOf(t *testing.T) {
	net := figure1Network(t)
	friends := net.FriendsOf(0)
	if len(friends) != 2 {
		t.Fatalf("FriendsOf(0) = %v", friends)
	}
	seen := map[int]bool{}
	for _, f := range friends {
		seen[f] = true
	}
	if !seen[1] || !seen[2] {
		t.Errorf("FriendsOf(0) = %v, want {1,2}", friends)
	}
	if len(net.FriendsOf(4)) != 1 {
		t.Errorf("FriendsOf(4) = %v", net.FriendsOf(4))
	}
}
