package gpssn

import (
	"errors"
	"math"
	"strings"
	"testing"

	"gpssn/internal/failpoint"
)

// TestInvalidInputTyped drives every facade input-validation path and
// requires errors.Is(err, ErrInvalidInput) — and that nothing panics on
// the NaN/Inf values that slip through naive range comparisons.
func TestInvalidInputTyped(t *testing.T) {
	db := openWithOracle(t, 1, false, "dijkstra", 1)
	nan := math.NaN()
	inf := math.Inf(1)
	good := Query{GroupSize: 2, Gamma: 0.3, Theta: 0.4, Radius: 2}

	queryCases := map[string]struct {
		user int
		q    Query
	}{
		"negative user":   {-1, good},
		"user past range": {db.Network().NumUsers(), good},
		"zero tau":        {0, Query{GroupSize: 0, Gamma: 0.3, Theta: 0.4, Radius: 2}},
		"negative tau":    {0, Query{GroupSize: -3, Gamma: 0.3, Theta: 0.4, Radius: 2}},
		"zero radius":     {0, Query{GroupSize: 2, Gamma: 0.3, Theta: 0.4, Radius: 0}},
		"negative radius": {0, Query{GroupSize: 2, Gamma: 0.3, Theta: 0.4, Radius: -1}},
		"NaN radius":      {0, Query{GroupSize: 2, Gamma: 0.3, Theta: 0.4, Radius: nan}},
		"NaN gamma":       {0, Query{GroupSize: 2, Gamma: nan, Theta: 0.4, Radius: 2}},
		"negative gamma":  {0, Query{GroupSize: 2, Gamma: -0.1, Theta: 0.4, Radius: 2}},
		"NaN theta":       {0, Query{GroupSize: 2, Gamma: 0.3, Theta: nan, Radius: 2}},
		"negative budget": {0, Query{GroupSize: 2, Gamma: 0.3, Theta: 0.4, Radius: 2,
			Budget: Budget{MaxRefinedAnchors: -1}}},
		// The engine's own rejection (r outside the index build range
		// [RMin, RMax]) must come back typed too, not as an untyped error
		// that downstream layers misclassify as internal.
		"radius above RMax": {0, Query{GroupSize: 2, Gamma: 0.3, Theta: 0.4, Radius: 99}},
		"radius below RMin": {0, Query{GroupSize: 2, Gamma: 0.3, Theta: 0.4, Radius: 0.01}},
	}
	for name, tc := range queryCases {
		if _, _, err := db.Query(tc.user, tc.q); !errors.Is(err, ErrInvalidInput) {
			t.Errorf("Query %s: err = %v, want ErrInvalidInput", name, err)
		}
		if _, _, err := db.QueryTopK(tc.user, tc.q, 3); !errors.Is(err, ErrInvalidInput) {
			t.Errorf("QueryTopK %s: err = %v, want ErrInvalidInput", name, err)
		}
	}

	if _, err := db.AddPOI(nan, 0, 1); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("AddPOI NaN x: err = %v", err)
	}
	if _, err := db.AddPOI(0, inf, 1); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("AddPOI Inf y: err = %v", err)
	}
	if _, err := db.AddPOI(0, 0); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("AddPOI no keywords: err = %v", err)
	}
	if _, err := db.AddPOI(0, 0, 99); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("AddPOI keyword out of vocabulary: err = %v", err)
	}
	if _, err := db.AddPOI(0, 0, -1); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("AddPOI negative keyword: err = %v", err)
	}
	topics := db.Network().NumTopics()
	if _, err := db.AddUser(nan, 0, make([]float64, topics)); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("AddUser NaN x: err = %v", err)
	}
	bad := make([]float64, topics)
	bad[0] = nan
	if _, err := db.AddUser(0, 0, bad); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("AddUser NaN interest: err = %v", err)
	}
	bad[0] = 1.5
	if _, err := db.AddUser(0, 0, bad); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("AddUser interest > 1: err = %v", err)
	}

	// A valid query still works after all the rejected input (no state was
	// harmed).
	if _, _, err := db.Query(0, good); err != nil && !errors.Is(err, ErrNoAnswer) {
		t.Fatalf("valid query after invalid input storm: %v", err)
	}
}

// requireEquivalentAnswers drives both DBs through the snapshot query set
// and demands the same answers up to floating-point association order
// (sameAnswer) — the right gate when the two sides run *different*
// oracles, where CH shortcut sums can differ from Dijkstra by 1 ULP.
func requireEquivalentAnswers(t *testing.T, want, got *DB, label string) {
	t.Helper()
	for _, q := range snapQueries {
		for user := 0; user < want.Network().NumUsers(); user += 7 {
			a1, _, err1 := want.Query(user, q)
			a2, _, err2 := got.Query(user, q)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%s: user %d %+v: err %v vs %v", label, user, q, err1, err2)
			}
			if err1 != nil {
				if !errors.Is(err1, ErrNoAnswer) || !errors.Is(err2, ErrNoAnswer) {
					t.Fatalf("%s: unexpected errors %v / %v", label, err1, err2)
				}
				continue
			}
			if !sameAnswer(a1, a2) {
				t.Fatalf("%s: user %d %+v:\n  want %s cost=%v\n  got  %s cost=%v",
					label, user, q, answerKey(a1), a1.MaxDistance, answerKey(a2), a2.MaxDistance)
			}
		}
	}
}

// TestOracleFallbackChain arms oracle-build failpoints and verifies Open
// degrades hl → ch → dijkstra, serving exact answers throughout, with
// the chain recorded in Health and never surfaced as an error.
func TestOracleFallbackChain(t *testing.T) {
	baseline := openWithOracle(t, 1, false, "dijkstra", 1)
	boom := errors.New("injected build failure")

	t.Run("hl-falls-to-ch", func(t *testing.T) {
		defer failpoint.Reset()
		failpoint.Arm("oracle.build.hl", failpoint.Failure{Mode: failpoint.ModeError, Err: boom})
		db := openWithOracle(t, 1, false, "hl", 1)
		h := db.Health()
		if !h.Degraded || h.OracleActive != "ch" || h.OracleRequested != "hl" {
			t.Fatalf("health = %+v, want degraded hl→ch", h)
		}
		if len(h.Notes) != 1 || !strings.Contains(h.Notes[0], "hl oracle build failed") {
			t.Fatalf("notes = %v", h.Notes)
		}
		requireEquivalentAnswers(t, baseline, db, "hl→ch")
	})

	t.Run("hl-falls-to-dijkstra", func(t *testing.T) {
		defer failpoint.Reset()
		failpoint.Arm("oracle.build.hl", failpoint.Failure{Mode: failpoint.ModeError, Err: boom})
		failpoint.Arm("oracle.build.ch", failpoint.Failure{Mode: failpoint.ModeError, Err: boom})
		var logged []string
		net, err := GenerateSynthetic(SyntheticOptions{
			Seed: 1, RoadVertices: 150, Users: 70, POIs: 45, Topics: 6,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Seed = 1
		cfg.RoadPivots = 4
		cfg.Parallelism = 1
		cfg.Logf = func(format string, args ...any) {
			logged = append(logged, format)
		}
		db, err := Open(net, cfg)
		if err != nil {
			t.Fatalf("Open must absorb oracle failures: %v", err)
		}
		h := db.Health()
		if !h.Degraded || h.OracleActive != "dijkstra" || len(h.Notes) != 2 {
			t.Fatalf("health = %+v, want degraded hl→ch→dijkstra", h)
		}
		if len(logged) == 0 {
			t.Fatal("Config.Logf saw no fallback lines")
		}
		requireIdenticalAnswers(t, baseline, db, "hl→dijkstra")
	})

	t.Run("strict-oracle-fails-open", func(t *testing.T) {
		defer failpoint.Reset()
		failpoint.Arm("oracle.build.hl", failpoint.Failure{Mode: failpoint.ModeError, Err: boom})
		net, err := GenerateSynthetic(SyntheticOptions{
			Seed: 1, RoadVertices: 60, Users: 20, POIs: 15, Topics: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.StrictOracle = true
		if _, err := Open(net, cfg); !errors.Is(err, boom) {
			t.Fatalf("strict open: err = %v, want the build failure", err)
		}
	})

	t.Run("healthy-open-reports-clean", func(t *testing.T) {
		db := openWithOracle(t, 1, false, "hl", 1)
		h := db.Health()
		if h.Degraded || h.OracleActive != "hl" || len(h.Notes) != 0 {
			t.Fatalf("healthy DB reports %+v", h)
		}
	})
}

// TestPanicBoundary injects a panic on a refinement worker goroutine and
// requires it to surface as a typed *InternalError carrying query
// context — with the DB still usable afterwards — at both sequential and
// parallel refinement.
func TestPanicBoundary(t *testing.T) {
	for _, par := range []int{1, 8} {
		defer failpoint.Reset()
		db := openWithOracle(t, 1, false, "dijkstra", par)
		q := Query{GroupSize: 2, Gamma: 0.1, Theta: 0.2, Radius: 2}
		failpoint.Arm("core.refine.panic", failpoint.Failure{Mode: failpoint.ModeError, Count: 1})
		_, _, err := db.Query(3, q)
		failpoint.Reset()
		if !errors.Is(err, ErrInternal) {
			t.Fatalf("par=%d: err = %v, want ErrInternal", par, err)
		}
		var ie *InternalError
		if !errors.As(err, &ie) {
			t.Fatalf("par=%d: error %v is not *InternalError", par, err)
		}
		if ie.Op != "Query" || ie.User != 3 || len(ie.Stack) == 0 {
			t.Fatalf("par=%d: InternalError context incomplete: op=%q user=%d stack=%d bytes",
				par, ie.Op, ie.User, len(ie.Stack))
		}
		// The DB survives: the same query without the failpoint answers
		// normally.
		if _, _, err := db.Query(3, q); err != nil && !errors.Is(err, ErrNoAnswer) {
			t.Fatalf("par=%d: DB unusable after recovered panic: %v", par, err)
		}
	}
}
