package gpssn

import (
	"container/list"
	"sync"
)

// answerCache is a small LRU cache of query answers, invalidated wholesale
// by any dynamic update (updates can change any answer). Only successful
// and "no answer" outcomes are cached; errors are not.
//
// Safe for concurrent use: every method locks mu, and get returns a
// snapshot (answers deep-copied under the lock) rather than the live
// entry, so a concurrent put refreshing the same entry cannot race with
// a reader.
type answerCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are cacheKey
	items map[cacheKey]*cacheEntry
}

type cacheKey struct {
	user int
	q    Query
	k    int
}

type cacheEntry struct {
	elem    *list.Element
	answers []Answer
	stats   Stats
	found   bool
}

func newAnswerCache(capacity int) *answerCache {
	if capacity <= 0 {
		return nil
	}
	return &answerCache{
		cap:   capacity,
		order: list.New(),
		items: map[cacheKey]*cacheEntry{},
	}
}

// get returns a snapshot of the entry for key: the answers are cloned
// under the lock so callers never alias cache-owned slices.
func (c *answerCache) get(key cacheKey) (answers []Answer, stats Stats, found, ok bool) {
	if c == nil {
		return nil, Stats{}, false, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, hit := c.items[key]
	if !hit {
		return nil, Stats{}, false, false
	}
	c.order.MoveToFront(e.elem)
	for _, a := range e.answers {
		answers = append(answers, cloneAnswer(a))
	}
	return answers, e.stats, e.found, true
}

// put stores a snapshot of answers: the slice is deep-cloned here, on both
// the insert and the overwrite path, so the cache never aliases
// caller-visible slices no matter what the caller does with them later.
func (c *answerCache) put(key cacheKey, answers []Answer, stats Stats, found bool) {
	if c == nil {
		return
	}
	var cloned []Answer
	if answers != nil {
		cloned = make([]Answer, 0, len(answers))
		for _, a := range answers {
			cloned = append(cloned, cloneAnswer(a))
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		e.answers, e.stats, e.found = cloned, stats, found
		c.order.MoveToFront(e.elem)
		return
	}
	e := &cacheEntry{answers: cloned, stats: stats, found: found}
	e.elem = c.order.PushFront(key)
	c.items[key] = e
	if c.order.Len() > c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.items, back.Value.(cacheKey))
	}
}

func (c *answerCache) invalidate() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.items = map[cacheKey]*cacheEntry{}
}

// cloneAnswer deep-copies an answer so cache contents never alias
// caller-visible slices.
func cloneAnswer(a Answer) Answer {
	return Answer{
		Users:       append([]int(nil), a.Users...),
		POIs:        append([]int(nil), a.POIs...),
		Anchor:      a.Anchor,
		MaxDistance: a.MaxDistance,
	}
}

// len reports the number of cached entries (tests).
func (c *answerCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
