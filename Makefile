# Verification gate for gpssn. `make check` is the single entry CI runs:
# vet, lint, build, the tier-1 tests, then a race-detector pass (short mode
# so the heavy bench package stays fast). See docs/CONCURRENCY.md §5.

GO ?= go

.PHONY: check vet lint build test race examples docs-lint serve-smoke fuzz-smoke snapshot-matrix churn-suite crash-suite bench-parallel bench-smoke bench-churn bench-serve bench-scale bench-guard

check: vet lint build test race

vet:
	$(GO) vet ./...

# staticcheck when available; skip quietly on machines without it (CI
# installs it in the lint job).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test -timeout 10m ./...

race:
	$(GO) test -race -short -timeout 10m ./...

# Every runnable example end to end; each is a standalone main that
# exits non-zero on failure, so this doubles as a living-docs check.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/tripplanning
	$(GO) run ./examples/marketing
	$(GO) run ./examples/importcsv
	$(GO) run ./examples/serve

# Broken relative links (file or heading anchor) in the markdown docs
# fail the build; CI runs this in the lint job.
docs-lint:
	$(GO) run ./cmd/docs-lint README.md docs/*.md

# End-to-end smoke test of the shipped gpssn-serve binary: build, serve a
# generated dataset, health-check and query over real HTTP, drain on
# SIGTERM (docs/SERVING.md §7). CI runs this on every push.
serve-smoke:
	./scripts/serve-smoke.sh

# Short native-fuzz runs over the hostile-input surfaces (CSV import,
# snapshot decode, WAL replay). ~30s each; CI runs this on every push, and
# longer local runs just raise FUZZTIME. See docs/ROBUSTNESS.md §5.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzImportCSV$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzSnapshotDecode$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzWALReplay$$' -fuzztime $(FUZZTIME) ./internal/wal

# The snapshot round-trip and corruption/torn-write matrix on its own —
# the recovery gates the robustness PR promises (docs/ROBUSTNESS.md §4).
snapshot-matrix:
	$(GO) test -run 'TestSnapshot|TestOpenSnapshot' -count=1 -v .

# The road-churn suite under -race: delta-overlay equality gates across
# all oracle backends (pre/during/post background Compact), the
# concurrent-mutation interleavings, and the rebuild-failure fallback
# (docs/CONCURRENCY.md §7, docs/ROBUSTNESS.md §6).
churn-suite:
	$(GO) test -race -run 'TestRoadChurn|TestDBConcurrentRoadChurn|TestCompact|TestRoadOverlay|TestRoadMutation|TestAddFriendshipInvalid|TestDuplicateFriendship|TestOverlay' -count=1 -v . ./internal/roadnet/

# The WAL crash matrix and durability gates on their own: kill points and
# corruption modes in the write path (torn tails, short writes, bit flips,
# both checkpoint windows) recovered bit-identical to a never-crashed twin
# across all oracle backends, plus the facade durability round-trip,
# rejection atomicity, delta folding, and the wal package's own tests
# (docs/ROBUSTNESS.md §8).
crash-suite:
	$(GO) test -run 'TestWAL|TestSnapshotFoldsPendingDeltas|TestOverlayAutoCompact|TestDBClose' -count=1 -v .
	$(GO) test -count=1 -v ./internal/wal

# The parallel-refinement speedup table (recorded in EXPERIMENTS.md).
bench-parallel:
	$(GO) run ./cmd/gpssn-bench -exp parallel

# Quick distance-oracle smoke benchmarks: CH vs Dijkstra, then hub labels
# vs both, each with query CPU plus the point-to-point microbenchmark on
# the paper-scale road network and a machine-readable report
# (BENCH_choracle.json / BENCH_hublabel.json, recorded in EXPERIMENTS.md).
bench-smoke:
	$(GO) run ./cmd/gpssn-bench -exp choracle -scale 0.05 -queries 4 -jsonout BENCH_choracle.json
	$(GO) run ./cmd/gpssn-bench -exp hublabel -scale 0.05 -queries 4 -jsonout BENCH_hublabel.json

# Road-churn benchmark: query latency against the static oracle, against
# the delta-overlay after a burst of AddRoadVertex/AddRoadEdge writes,
# concurrently with the background Compact re-contraction, and after the
# swap — plus the same churned workload on an oracle-free DB, the
# fallback-to-Dijkstra cliff the overlay removes (BENCH_churn.json,
# recorded in EXPERIMENTS.md).
bench-churn:
	$(GO) run ./cmd/gpssn-bench -exp churn -scale 0.05 -queries 48 -jsonout BENCH_churn.json
	$(GO) run ./cmd/gpssn-bench -exp walchurn -scale 0.05 -jsonout BENCH_wal.json

# The million-scale tier: generate ~1M road vertices / ~1M users with the
# streaming lattice generator, build CH + hub labels, run the default query
# workload, and record latency percentiles plus peak RSS in
# BENCH_scale1m.json (recorded in EXPERIMENTS.md). Deliberately heavy:
# ~18 min and ~11 GB peak on one core at full scale.
bench-scale:
	$(GO) run ./cmd/gpssn-bench -exp scale1m -scale 1.0 -queries 16 -jsonout BENCH_scale1m.json

# Regression guard: re-run the smoke benchmarks and compare p50-class
# latencies against the committed BENCH_*.json; fails past 2x. CI runs it
# as a non-blocking job (shared-runner noise is real).
bench-guard:
	./scripts/bench-guard.sh

# The serving load test: 1000 concurrent zipf-skewed clients against an
# in-process gpssn-serve over loopback TCP; reports p50/p99 latency,
# throughput, shed rate and the coalescing/caching win. -compare drives
# the same load twice — shared-work memo off (BENCH_serve_nomemo.json)
# then on (BENCH_serve.json) — so the two reports are a before/after pair
# for the cross-query batching layer (recorded in docs/SERVING.md).
bench-serve:
	$(GO) run ./cmd/gpssn-bench -exp serve -scale 0.05 -warmup 1000 -compare -jsonout BENCH_serve.json
