# Verification gate for gpssn. `make check` is the single entry CI runs:
# vet, build, the tier-1 tests, then a race-detector pass (short mode so
# the heavy bench package stays fast). See docs/CONCURRENCY.md §5.

GO ?= go

.PHONY: check vet build test race bench-parallel bench-smoke

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# The parallel-refinement speedup table (recorded in EXPERIMENTS.md).
bench-parallel:
	$(GO) run ./cmd/gpssn-bench -exp parallel

# Quick distance-oracle smoke benchmarks: CH vs Dijkstra, then hub labels
# vs both, each with query CPU plus the point-to-point microbenchmark on
# the paper-scale road network and a machine-readable report
# (BENCH_choracle.json / BENCH_hublabel.json, recorded in EXPERIMENTS.md).
bench-smoke:
	$(GO) run ./cmd/gpssn-bench -exp choracle -scale 0.05 -queries 4 -jsonout BENCH_choracle.json
	$(GO) run ./cmd/gpssn-bench -exp hublabel -scale 0.05 -queries 4 -jsonout BENCH_hublabel.json
