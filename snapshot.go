package gpssn

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"gpssn/internal/failpoint"
	"gpssn/internal/model"
	"gpssn/internal/roadnet"
	"gpssn/internal/roadnet/ch"
	"gpssn/internal/roadnet/hl"
	"gpssn/internal/snap"
)

// Snapshots persist a built DB — dataset plus the expensive derived
// distance oracles — into a single file, so reopening skips the
// contraction-hierarchy and hub-label preprocessing. The format
// (docs/ROBUSTNESS.md) is a magic+version header followed by
// length-prefixed, CRC64-checksummed sections: the dataset, then the CH
// and HL oracles, each oracle payload prefixed with a fingerprint of the
// road topology it answers for. Sections are independent failure domains:
// damage to an oracle section is repaired by rebuilding that oracle from
// the dataset (reported via Health, not an error), while a snapshot whose
// header or dataset section is unusable fails with ErrSnapshotCorrupt —
// there is nothing left to rebuild from.

// Snapshot section tags.
const (
	secDataset = "DSET"
	secCH      = "CHOR"
	secHL      = "HLBL"
	// secWAL is the checkpoint marker: the u64 LSN of the newest WAL
	// record whose effect this snapshot contains. OpenSnapshot replays
	// only records past it, so a crash landing between the snapshot
	// rename and the log truncation cannot double-apply (snapshots
	// written before the WAL existed simply lack the section: LSN 0).
	secWAL = "WALM"
)

// SnapshotError is the concrete error behind ErrSnapshotCorrupt: detected
// damage in the one part of a snapshot that cannot be rebuilt.
type SnapshotError struct {
	// Path is the snapshot file.
	Path string
	// Section is the damaged section tag, or "head" for the file header.
	Section string
	// Reason describes the detected damage.
	Reason string
}

func (e *SnapshotError) Error() string {
	return fmt.Sprintf("gpssn: snapshot %s: section %q corrupt: %s", e.Path, e.Section, e.Reason)
}

// Unwrap makes errors.Is(err, ErrSnapshotCorrupt) match.
func (e *SnapshotError) Unwrap() error { return ErrSnapshotCorrupt }

// roadFingerprint identifies the exact road topology an oracle answers
// for. Oracle sections carry it so a snapshot whose oracle was built for
// a different graph (a version-skewed or hand-edited file) is detected as
// stale and rebuilt instead of serving wrong distances.
func roadFingerprint(g *roadnet.Graph) uint64 {
	var e snap.Enc
	e.U32(uint32(g.NumVertices()))
	e.U32(uint32(g.NumEdges()))
	for v := 0; v < g.NumVertices(); v++ {
		p := g.Vertex(roadnet.VertexID(v))
		e.F64(p.X)
		e.F64(p.Y)
	}
	for i := 0; i < g.NumEdges(); i++ {
		ed := g.EdgeAt(roadnet.EdgeID(i))
		e.U32(uint32(ed.U))
		e.U32(uint32(ed.V))
	}
	return snap.Checksum(e.B)
}

// Snapshot writes the DB — dataset and whichever oracles are attached —
// to path, crash-safely: everything is serialized into a temp file in the
// destination directory, fsynced, and atomically renamed over path, so a
// crash at any point leaves either the old file or the new one, never a
// half-written hybrid. Concurrent queries keep running (Snapshot holds
// the read lock); dynamic updates block until it finishes.
//
// Snapshot is also the WAL checkpoint: when the DB has a write-ahead log
// attached, the snapshot records the applied LSN (secWAL) and, once the
// rename has made it durable, truncates the log — every logged record is
// now redundant with the file. A crash between the rename and the
// truncation is benign: replay skips records at or below the recorded
// LSN.
//
// Pending dynamic updates fold into the snapshot by construction: the
// dataset section serializes the *current* network — delta POIs, users,
// friendships, road vertices and edges included — and the oracle sections
// are written only when the attached oracle is a static CH/HL built for
// exactly that topology. Under road churn the oracle is the delta-overlay
// (which is not persistable and whose static core describes a stale
// graph), so no oracle section is written and reopening rebuilds from the
// folded dataset; snapshot_fold_test.go gates that a post-churn
// snapshot→reopen answers bit-identically to the live DB.
func (db *DB) Snapshot(path string) (err error) {
	db.mu.RLock()
	defer db.mu.RUnlock()

	// Serialize fully in memory first: nothing touches the filesystem
	// until every byte that will be written is known good.
	var dsBuf bytes.Buffer
	if err := db.net.ds.Save(&dsBuf); err != nil {
		return fmt.Errorf("gpssn: snapshot: %w", err)
	}
	// The checkpoint LSN: mutations are blocked for the whole RLock, so
	// this is exactly the newest update dsBuf contains.
	applied := db.appliedLSN
	fp := roadFingerprint(db.net.ds.Road)
	var chPayload, hlPayload []byte
	switch o := db.net.ds.Road.Oracle().(type) {
	case *hl.Oracle:
		var ec snap.Enc
		ec.U64(fp)
		o.CH().Encode(&ec)
		chPayload = ec.B
		var eh snap.Enc
		eh.U64(fp)
		o.Encode(&eh)
		hlPayload = eh.B
		if err := ec.Err(); err != nil {
			return fmt.Errorf("gpssn: snapshot: %w", err)
		}
		if err := eh.Err(); err != nil {
			return fmt.Errorf("gpssn: snapshot: %w", err)
		}
	case *ch.Oracle:
		var ec snap.Enc
		ec.U64(fp)
		o.Encode(&ec)
		chPayload = ec.B
		if err := ec.Err(); err != nil {
			return fmt.Errorf("gpssn: snapshot: %w", err)
		}
	}

	if err := failpoint.Error("snapshot.create"); err != nil {
		return fmt.Errorf("gpssn: snapshot: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".gpssn-snap-*")
	if err != nil {
		return fmt.Errorf("gpssn: snapshot: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriter(tmp)
	w, err := snap.NewWriter(bw)
	if err != nil {
		return fmt.Errorf("gpssn: snapshot: %w", err)
	}
	if err = w.Section(secDataset, dsBuf.Bytes()); err != nil {
		return fmt.Errorf("gpssn: snapshot: %w", err)
	}
	var ew snap.Enc
	ew.U64(applied)
	if err = w.Section(secWAL, ew.B); err != nil {
		return fmt.Errorf("gpssn: snapshot: %w", err)
	}
	if chPayload != nil {
		if err = w.Section(secCH, chPayload); err != nil {
			return fmt.Errorf("gpssn: snapshot: %w", err)
		}
	}
	if hlPayload != nil {
		if err = w.Section(secHL, hlPayload); err != nil {
			return fmt.Errorf("gpssn: snapshot: %w", err)
		}
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("gpssn: snapshot: %w", err)
	}
	if err = failpoint.Error("snapshot.sync"); err != nil {
		return fmt.Errorf("gpssn: snapshot: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("gpssn: snapshot: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("gpssn: snapshot: %w", err)
	}
	if err = failpoint.Error("snapshot.rename"); err != nil {
		return fmt.Errorf("gpssn: snapshot: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("gpssn: snapshot: %w", err)
	}
	syncDir(dir)
	// The snapshot is durable; the log's records up to the checkpoint LSN
	// are now redundant. A failure here leaves a perfectly good snapshot
	// and an oversized log — replay skips the duplicated records — so the
	// error reports a degraded checkpoint, not a failed snapshot.
	if db.wal != nil {
		if cerr := db.wal.Checkpoint(applied); cerr != nil {
			return fmt.Errorf("gpssn: snapshot %s written, but truncating the wal failed: %w", path, cerr)
		}
	}
	return nil
}

// syncDir fsyncs a directory so the rename itself is durable. Best
// effort: some filesystems refuse directory syncs, and the rename is
// already atomic for crash-consistency purposes.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// OpenSnapshot opens a DB from a snapshot written by Snapshot. Detected
// damage is handled by failure domain: a file whose header or dataset
// section is unusable fails with an error matching ErrSnapshotCorrupt,
// while damaged, stale, or missing oracle sections are rebuilt from the
// restored dataset — the open succeeds and Health().Notes records what
// was recovered. A cleanly-restored DB answers bit-identically to the DB
// that was saved.
func OpenSnapshot(path string, cfg Config) (*DB, error) {
	c := cfg.withDefaults()
	start := time.Now()

	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("gpssn: open snapshot: %w", err)
	}
	secs, readErr := snap.Read(bufio.NewReader(f))
	f.Close()
	byTag := map[string][]byte{}
	for _, s := range secs {
		byTag[s.Tag] = s.Payload
	}
	var notes []string
	if readErr != nil {
		var ce *snap.CorruptError
		if !errors.As(readErr, &ce) {
			return nil, fmt.Errorf("gpssn: read snapshot: %w", readErr)
		}
		// Damage in the header or the dataset section is unrecoverable;
		// damage confined to oracle sections is repaired below. The
		// checkpoint-LSN section is unrecoverable too: replaying a WAL
		// from a guessed LSN could double-apply acknowledged updates.
		if ce.Section == "head" || ce.Section == secWAL || byTag[secDataset] == nil {
			return nil, &SnapshotError{Path: path, Section: ce.Section, Reason: ce.Reason}
		}
		notes = append(notes, fmt.Sprintf("section %q corrupt (%s); rebuilding derived data", ce.Section, ce.Reason))
	}
	dsBytes, ok := byTag[secDataset]
	if !ok {
		return nil, &SnapshotError{Path: path, Section: secDataset, Reason: "section missing"}
	}
	ds, err := model.Load(bytes.NewReader(dsBytes))
	if err != nil {
		return nil, &SnapshotError{Path: path, Section: secDataset, Reason: err.Error()}
	}
	net := &Network{ds: ds}
	fp := roadFingerprint(ds.Road)

	// Restore the requested oracle from its sections when possible; any
	// failure — missing section, stale fingerprint, decode error — falls
	// back to rebuilding from the dataset via the regular fallback chain.
	health := Health{OracleRequested: c.DistanceOracle}
	attached := false
	switch c.DistanceOracle {
	case "hl":
		if cho := decodeCHSection(byTag[secCH], fp, &notes); cho != nil {
			if hlo := decodeHLSection(byTag[secHL], fp, cho, &notes); hlo != nil {
				ds.Road.SetDistanceOracle(hlo)
				health.OracleActive = "hl"
				attached = true
			}
		}
	case "ch":
		if cho := decodeCHSection(byTag[secCH], fp, &notes); cho != nil {
			ds.Road.SetDistanceOracle(cho)
			health.OracleActive = "ch"
			attached = true
		}
	}
	if !attached {
		health, err = attachOracle(ds, c)
		if err != nil {
			return nil, err
		}
	}
	health.Notes = append(notes, health.Notes...)
	for _, n := range notes {
		c.logf("gpssn: snapshot %s: %s", path, n)
	}

	db, err := buildDB(net, c)
	if err != nil {
		return nil, err
	}
	db.health = health

	// The checkpoint LSN this snapshot was cut at (0 for snapshots from
	// before the WAL existed, or written without one). With a WAL
	// configured, replay brings the restored state forward from there.
	var base uint64
	if wp := byTag[secWAL]; wp != nil {
		d := &snap.Dec{B: wp}
		base = d.U64()
		if d.Err() != nil || !d.Done() {
			return nil, &SnapshotError{Path: path, Section: secWAL, Reason: "malformed checkpoint LSN"}
		}
	}
	if c.WALPath != "" {
		if err := db.openWAL(c, base); err != nil {
			return nil, err
		}
	} else {
		db.appliedLSN = base
	}
	db.BuildTime = time.Since(start)
	return db, nil
}

// decodeCHSection restores a contraction hierarchy from its section, or
// returns nil (with a note) when the section is absent, stale, or does
// not decode to a structurally valid oracle.
func decodeCHSection(payload []byte, fp uint64, notes *[]string) *ch.Oracle {
	if payload == nil {
		*notes = append(*notes, "no CH section; rebuilding oracle from dataset")
		return nil
	}
	d := &snap.Dec{B: payload}
	if got := d.U64(); got != fp {
		*notes = append(*notes, "CH section was built for a different road graph; rebuilding")
		return nil
	}
	o, err := ch.Decode(d)
	if err == nil && !d.Done() {
		err = fmt.Errorf("trailing bytes after oracle payload")
	}
	if err != nil {
		*notes = append(*notes, fmt.Sprintf("CH section invalid (%v); rebuilding", err))
		return nil
	}
	return o
}

// decodeHLSection restores hub labels over an already-restored CH, under
// the same contract as decodeCHSection.
func decodeHLSection(payload []byte, fp uint64, cho *ch.Oracle, notes *[]string) *hl.Oracle {
	if payload == nil {
		*notes = append(*notes, "no HL section; rebuilding oracle from dataset")
		return nil
	}
	d := &snap.Dec{B: payload}
	if got := d.U64(); got != fp {
		*notes = append(*notes, "HL section was built for a different road graph; rebuilding")
		return nil
	}
	o, err := hl.Decode(d, cho)
	if err == nil && !d.Done() {
		err = fmt.Errorf("trailing bytes after label payload")
	}
	if err != nil {
		*notes = append(*notes, fmt.Sprintf("HL section invalid (%v); rebuilding", err))
		return nil
	}
	return o
}
