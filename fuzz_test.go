package gpssn

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// fuzzCSV returns the five readers ImportCSV takes, nil for empty slices
// so the optional-social path is exercised too.
func fuzzCSV(name string, verts, edges, social, users, pois []byte) CSVInput {
	in := CSVInput{
		Name:         name,
		RoadVertices: bytes.NewReader(verts),
		RoadEdges:    bytes.NewReader(edges),
		Users:        bytes.NewReader(users),
		POIs:         bytes.NewReader(pois),
	}
	if len(social) > 0 {
		in.SocialEdges = bytes.NewReader(social)
	}
	return in
}

// FuzzImportCSV asserts the one property importing can promise on hostile
// input: a clean typed error or a dataset that passes validation — never
// a panic, never an invalid network.
func FuzzImportCSV(f *testing.F) {
	f.Add([]byte("0,0,0\n1,1,0\n2,1,1"), []byte("0,1\n1,2"), []byte("0,1"),
		[]byte("0,0.1,0,0.9,0.1\n1,0.9,0,0.8,0.2"), []byte("0,0.5,0,0\n1,0.6,0.5,1"))
	f.Add([]byte("0,NaN,0"), []byte("0,0"), []byte(""), []byte("0,0,0,2.0"), []byte("0,0,0,9"))
	f.Add([]byte("# comment\n0,0,0"), []byte("0,1\n0,1"), []byte("1,1"),
		[]byte("5,0,0,0.5"), []byte("0,0,0,;"))
	f.Add([]byte("0,1e308,1e308\n1,-1e308,0"), []byte("0,1"), []byte{},
		[]byte("0,0,0,1"), []byte("0,0,0,0"))
	f.Fuzz(func(t *testing.T, verts, edges, social, users, pois []byte) {
		net, err := ImportCSV(fuzzCSV("fuzz", verts, edges, social, users, pois))
		if err != nil {
			return
		}
		// An accepted import must be internally consistent enough to
		// re-validate and round-trip through the binary format.
		var buf bytes.Buffer
		if err := net.Save(&buf); err != nil {
			t.Fatalf("accepted network fails to save: %v", err)
		}
		if _, err := Load(&buf); err != nil {
			t.Fatalf("saved network fails to reload: %v", err)
		}
	})
}

// FuzzSnapshotDecode feeds arbitrary bytes to the full OpenSnapshot path
// (framing, section CRCs, dataset decode, oracle decode + rebuild). The
// property: a typed error or a valid DB — never a panic, never an
// unbounded allocation.
func FuzzSnapshotDecode(f *testing.F) {
	// Seed with a real snapshot and structured damage to it.
	net, err := GenerateSynthetic(SyntheticOptions{
		Seed: 7, RoadVertices: 40, Users: 12, POIs: 10, Topics: 3,
	})
	if err != nil {
		f.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.Parallelism = 1
	db, err := Open(net, cfg)
	if err != nil {
		f.Fatal(err)
	}
	dir := f.TempDir()
	snapPath := filepath.Join(dir, "seed.snap")
	if err := db.Snapshot(snapPath); err != nil {
		f.Fatal(err)
	}
	good, err := os.ReadFile(snapPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte("GPSSNAP\x01garbage"))
	f.Add([]byte{})
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/3] ^= 0x10
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "in.snap")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		fcfg := DefaultConfig()
		fcfg.Parallelism = 1
		re, err := OpenSnapshot(p, fcfg)
		if err != nil {
			if errors.Is(err, ErrSnapshotCorrupt) {
				return
			}
			// Non-corruption errors must still be clean dataset/build
			// rejections, not panics (reaching here at all means no panic).
			return
		}
		// An accepted snapshot must produce a queryable DB.
		if re.Network().NumUsers() > 0 {
			_, _, qerr := re.Query(0, Query{GroupSize: 1, Gamma: 0, Theta: 0, Radius: 1})
			if qerr != nil && !errors.Is(qerr, ErrNoAnswer) && !errors.Is(qerr, ErrInvalidInput) {
				t.Fatalf("restored DB query failed: %v", qerr)
			}
		}
	})
}
