package gpssn

import (
	"errors"
	"testing"
)

func TestAnswerCacheHitsAndInvalidation(t *testing.T) {
	net := figure1Network(t)
	db, err := Open(net, Config{
		RoadPivots: 2, SocialPivots: 2, LeafSize: 2, Fanout: 2, CacheSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{GroupSize: 2, Gamma: 0.5, Theta: 0.5, Radius: 1.5}
	a1, _, err := db.Query(0, q)
	if err != nil {
		t.Fatal(err)
	}
	if db.cache.len() != 1 {
		t.Fatalf("cache len = %d, want 1", db.cache.len())
	}
	a2, _, err := db.Query(0, q)
	if err != nil {
		t.Fatal(err)
	}
	if a1.MaxDistance != a2.MaxDistance || a1.Anchor != a2.Anchor {
		t.Error("cached answer differs")
	}
	// Mutating the returned answer must not corrupt the cache.
	a2.Users[0] = 99
	a3, _, _ := db.Query(0, q)
	if a3.Users[0] == 99 {
		t.Error("cache returned aliased answer")
	}

	// "No answer" outcomes are cached too.
	hard := Query{GroupSize: 5, Gamma: 5, Theta: 0.5, Radius: 1}
	if _, _, err := db.Query(0, hard); !errors.Is(err, ErrNoAnswer) {
		t.Fatal("expected no answer")
	}
	if _, _, err := db.Query(0, hard); !errors.Is(err, ErrNoAnswer) {
		t.Fatal("cached no-answer must repeat")
	}
	if db.cache.len() != 2 {
		t.Fatalf("cache len = %d, want 2", db.cache.len())
	}

	// A dynamic update invalidates everything.
	if _, err := db.AddPOI(1.0, 0.5, 0); err != nil {
		t.Fatal(err)
	}
	if db.cache.len() != 0 {
		t.Errorf("cache should be empty after update, len = %d", db.cache.len())
	}
	// And the post-update answer may legitimately differ.
	if _, _, err := db.Query(0, q); err != nil {
		t.Fatal(err)
	}
}

func TestAnswerCacheLRUEviction(t *testing.T) {
	net := figure1Network(t)
	db, err := Open(net, Config{
		RoadPivots: 2, SocialPivots: 2, LeafSize: 2, Fanout: 2, CacheSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{GroupSize: 2, Gamma: 0.1, Theta: 0.1, Radius: 1.5}
	for _, u := range []int{0, 1, 2} {
		if _, _, err := db.Query(u, q); err != nil && !errors.Is(err, ErrNoAnswer) {
			t.Fatal(err)
		}
	}
	if db.cache.len() != 2 {
		t.Errorf("cache len = %d, want 2 (LRU cap)", db.cache.len())
	}
}

// TestAnswerCacheEvictionOrder pins the LRU discipline at capacity: the
// least-recently-used key is the one evicted, and both get hits and put
// updates refresh recency.
func TestAnswerCacheEvictionOrder(t *testing.T) {
	key := func(u int) cacheKey { return cacheKey{user: u, q: Query{GroupSize: 2}, k: 1} }
	c := newAnswerCache(2)
	c.put(key(0), nil, Stats{}, false)
	c.put(key(1), nil, Stats{}, false)
	c.put(key(2), nil, Stats{}, false) // evicts key(0), the least recent
	if _, _, _, ok := c.get(key(0)); ok {
		t.Fatal("least-recent key survived eviction")
	}
	for _, u := range []int{1, 2} {
		if _, _, _, ok := c.get(key(u)); !ok {
			t.Fatalf("key(%d) evicted out of order", u)
		}
	}

	// A get refreshes recency: after touching key(1), inserting key(3)
	// must evict key(2) instead.
	if _, _, _, ok := c.get(key(1)); !ok {
		t.Fatal("key(1) missing")
	}
	c.put(key(3), nil, Stats{}, false)
	if _, _, _, ok := c.get(key(2)); ok {
		t.Fatal("get did not refresh recency: key(2) should have been evicted")
	}
	if _, _, _, ok := c.get(key(1)); !ok {
		t.Fatal("refreshed key(1) was evicted")
	}

	// A put updating an existing key refreshes recency too.
	c.put(key(1), nil, Stats{}, true)
	c.put(key(4), nil, Stats{}, false) // must evict key(3), not key(1)
	if _, _, _, ok := c.get(key(3)); ok {
		t.Fatal("put-update did not refresh recency: key(3) should have been evicted")
	}
	if _, _, found, ok := c.get(key(1)); !ok || !found {
		t.Fatal("updated key(1) lost its refreshed entry")
	}
	if c.len() != 2 {
		t.Fatalf("cache len = %d, want 2", c.len())
	}
}

// TestAnswerCacheInvalidationPerUpdateKind verifies that every dynamic
// update kind — AddPOI, AddUser, AddFriendship, and Compact — wholesale
// invalidates the answer cache (any update can change any answer).
func TestAnswerCacheInvalidationPerUpdateKind(t *testing.T) {
	net := figure1Network(t)
	db, err := Open(net, Config{
		RoadPivots: 2, SocialPivots: 2, LeafSize: 2, Fanout: 2, CacheSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{GroupSize: 2, Gamma: 0.1, Theta: 0.1, Radius: 1.5}
	warm := func() {
		t.Helper()
		if _, _, err := db.Query(0, q); err != nil && !errors.Is(err, ErrNoAnswer) {
			t.Fatal(err)
		}
		if db.cache.len() == 0 {
			t.Fatal("cache not warmed")
		}
	}

	warm()
	userID, err := db.AddUser(0.4, 0.6, []float64{1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if db.cache.len() != 0 {
		t.Fatalf("AddUser left %d cached entries", db.cache.len())
	}

	warm()
	if err := db.AddFriendship(0, userID); err != nil {
		t.Fatal(err)
	}
	if db.cache.len() != 0 {
		t.Fatalf("AddFriendship left %d cached entries", db.cache.len())
	}

	warm()
	if _, err := db.AddPOI(1.0, 0.5, 0); err != nil {
		t.Fatal(err)
	}
	if db.cache.len() != 0 {
		t.Fatalf("AddPOI left %d cached entries", db.cache.len())
	}

	warm()
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if db.cache.len() != 0 {
		t.Fatalf("Compact left %d cached entries", db.cache.len())
	}
}

func TestAnswerCacheDisabledByDefault(t *testing.T) {
	net := figure1Network(t)
	db, err := Open(net, Config{RoadPivots: 2, SocialPivots: 2, LeafSize: 2, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	if db.cache != nil {
		t.Error("cache should be nil when CacheSize is 0")
	}
	q := Query{GroupSize: 2, Gamma: 0.1, Theta: 0.1, Radius: 1.5}
	if _, _, err := db.Query(0, q); err != nil && !errors.Is(err, ErrNoAnswer) {
		t.Fatal(err)
	}
}
