package gpssn

import (
	"errors"
	"testing"
)

func TestAnswerCacheHitsAndInvalidation(t *testing.T) {
	net := figure1Network(t)
	db, err := Open(net, Config{
		RoadPivots: 2, SocialPivots: 2, LeafSize: 2, Fanout: 2, CacheSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{GroupSize: 2, Gamma: 0.5, Theta: 0.5, Radius: 1.5}
	a1, _, err := db.Query(0, q)
	if err != nil {
		t.Fatal(err)
	}
	if db.cache.len() != 1 {
		t.Fatalf("cache len = %d, want 1", db.cache.len())
	}
	a2, _, err := db.Query(0, q)
	if err != nil {
		t.Fatal(err)
	}
	if a1.MaxDistance != a2.MaxDistance || a1.Anchor != a2.Anchor {
		t.Error("cached answer differs")
	}
	// Mutating the returned answer must not corrupt the cache.
	a2.Users[0] = 99
	a3, _, _ := db.Query(0, q)
	if a3.Users[0] == 99 {
		t.Error("cache returned aliased answer")
	}

	// "No answer" outcomes are cached too.
	hard := Query{GroupSize: 5, Gamma: 5, Theta: 0.5, Radius: 1}
	if _, _, err := db.Query(0, hard); !errors.Is(err, ErrNoAnswer) {
		t.Fatal("expected no answer")
	}
	if _, _, err := db.Query(0, hard); !errors.Is(err, ErrNoAnswer) {
		t.Fatal("cached no-answer must repeat")
	}
	if db.cache.len() != 2 {
		t.Fatalf("cache len = %d, want 2", db.cache.len())
	}

	// A dynamic update invalidates everything.
	if _, err := db.AddPOI(1.0, 0.5, 0); err != nil {
		t.Fatal(err)
	}
	if db.cache.len() != 0 {
		t.Errorf("cache should be empty after update, len = %d", db.cache.len())
	}
	// And the post-update answer may legitimately differ.
	if _, _, err := db.Query(0, q); err != nil {
		t.Fatal(err)
	}
}

func TestAnswerCacheLRUEviction(t *testing.T) {
	net := figure1Network(t)
	db, err := Open(net, Config{
		RoadPivots: 2, SocialPivots: 2, LeafSize: 2, Fanout: 2, CacheSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{GroupSize: 2, Gamma: 0.1, Theta: 0.1, Radius: 1.5}
	for _, u := range []int{0, 1, 2} {
		if _, _, err := db.Query(u, q); err != nil && !errors.Is(err, ErrNoAnswer) {
			t.Fatal(err)
		}
	}
	if db.cache.len() != 2 {
		t.Errorf("cache len = %d, want 2 (LRU cap)", db.cache.len())
	}
}

func TestAnswerCacheDisabledByDefault(t *testing.T) {
	net := figure1Network(t)
	db, err := Open(net, Config{RoadPivots: 2, SocialPivots: 2, LeafSize: 2, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	if db.cache != nil {
		t.Error("cache should be nil when CacheSize is 0")
	}
	q := Query{GroupSize: 2, Gamma: 0.1, Theta: 0.1, Radius: 1.5}
	if _, _, err := db.Query(0, q); err != nil && !errors.Is(err, ErrNoAnswer) {
		t.Fatal(err)
	}
}
