package gpssn

import (
	"errors"
	"testing"
)

func TestAnswerCacheHitsAndInvalidation(t *testing.T) {
	net := figure1Network(t)
	db, err := Open(net, Config{
		RoadPivots: 2, SocialPivots: 2, LeafSize: 2, Fanout: 2, CacheSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{GroupSize: 2, Gamma: 0.5, Theta: 0.5, Radius: 1.5}
	a1, _, err := db.Query(0, q)
	if err != nil {
		t.Fatal(err)
	}
	if db.cache.len() != 1 {
		t.Fatalf("cache len = %d, want 1", db.cache.len())
	}
	a2, _, err := db.Query(0, q)
	if err != nil {
		t.Fatal(err)
	}
	if a1.MaxDistance != a2.MaxDistance || a1.Anchor != a2.Anchor {
		t.Error("cached answer differs")
	}
	// Mutating the returned answer must not corrupt the cache.
	a2.Users[0] = 99
	a3, _, _ := db.Query(0, q)
	if a3.Users[0] == 99 {
		t.Error("cache returned aliased answer")
	}

	// "No answer" outcomes are cached too.
	hard := Query{GroupSize: 5, Gamma: 5, Theta: 0.5, Radius: 1}
	if _, _, err := db.Query(0, hard); !errors.Is(err, ErrNoAnswer) {
		t.Fatal("expected no answer")
	}
	if _, _, err := db.Query(0, hard); !errors.Is(err, ErrNoAnswer) {
		t.Fatal("cached no-answer must repeat")
	}
	if db.cache.len() != 2 {
		t.Fatalf("cache len = %d, want 2", db.cache.len())
	}

	// A dynamic update invalidates everything.
	if _, err := db.AddPOI(1.0, 0.5, 0); err != nil {
		t.Fatal(err)
	}
	if db.cache.len() != 0 {
		t.Errorf("cache should be empty after update, len = %d", db.cache.len())
	}
	// And the post-update answer may legitimately differ.
	if _, _, err := db.Query(0, q); err != nil {
		t.Fatal(err)
	}
}

func TestAnswerCacheLRUEviction(t *testing.T) {
	net := figure1Network(t)
	db, err := Open(net, Config{
		RoadPivots: 2, SocialPivots: 2, LeafSize: 2, Fanout: 2, CacheSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{GroupSize: 2, Gamma: 0.1, Theta: 0.1, Radius: 1.5}
	for _, u := range []int{0, 1, 2} {
		if _, _, err := db.Query(u, q); err != nil && !errors.Is(err, ErrNoAnswer) {
			t.Fatal(err)
		}
	}
	if db.cache.len() != 2 {
		t.Errorf("cache len = %d, want 2 (LRU cap)", db.cache.len())
	}
}

// TestAnswerCacheEvictionOrder pins the LRU discipline at capacity: the
// least-recently-used key is the one evicted, and both get hits and put
// updates refresh recency.
func TestAnswerCacheEvictionOrder(t *testing.T) {
	key := func(u int) cacheKey { return cacheKey{user: u, q: Query{GroupSize: 2}, k: 1} }
	c := newAnswerCache(2)
	c.put(key(0), nil, Stats{}, false)
	c.put(key(1), nil, Stats{}, false)
	c.put(key(2), nil, Stats{}, false) // evicts key(0), the least recent
	if _, _, _, ok := c.get(key(0)); ok {
		t.Fatal("least-recent key survived eviction")
	}
	for _, u := range []int{1, 2} {
		if _, _, _, ok := c.get(key(u)); !ok {
			t.Fatalf("key(%d) evicted out of order", u)
		}
	}

	// A get refreshes recency: after touching key(1), inserting key(3)
	// must evict key(2) instead.
	if _, _, _, ok := c.get(key(1)); !ok {
		t.Fatal("key(1) missing")
	}
	c.put(key(3), nil, Stats{}, false)
	if _, _, _, ok := c.get(key(2)); ok {
		t.Fatal("get did not refresh recency: key(2) should have been evicted")
	}
	if _, _, _, ok := c.get(key(1)); !ok {
		t.Fatal("refreshed key(1) was evicted")
	}

	// A put updating an existing key refreshes recency too.
	c.put(key(1), nil, Stats{}, true)
	c.put(key(4), nil, Stats{}, false) // must evict key(3), not key(1)
	if _, _, _, ok := c.get(key(3)); ok {
		t.Fatal("put-update did not refresh recency: key(3) should have been evicted")
	}
	if _, _, found, ok := c.get(key(1)); !ok || !found {
		t.Fatal("updated key(1) lost its refreshed entry")
	}
	if c.len() != 2 {
		t.Fatalf("cache len = %d, want 2", c.len())
	}
}

// TestAnswerCacheInvalidationPerUpdateKind verifies that every dynamic
// update kind — AddPOI, AddUser, AddFriendship, and Compact — wholesale
// invalidates the answer cache (any update can change any answer).
func TestAnswerCacheInvalidationPerUpdateKind(t *testing.T) {
	net := figure1Network(t)
	db, err := Open(net, Config{
		RoadPivots: 2, SocialPivots: 2, LeafSize: 2, Fanout: 2, CacheSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{GroupSize: 2, Gamma: 0.1, Theta: 0.1, Radius: 1.5}
	warm := func() {
		t.Helper()
		if _, _, err := db.Query(0, q); err != nil && !errors.Is(err, ErrNoAnswer) {
			t.Fatal(err)
		}
		if db.cache.len() == 0 {
			t.Fatal("cache not warmed")
		}
	}

	warm()
	userID, err := db.AddUser(0.4, 0.6, []float64{1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if db.cache.len() != 0 {
		t.Fatalf("AddUser left %d cached entries", db.cache.len())
	}

	warm()
	if _, err := db.AddFriendship(0, userID); err != nil {
		t.Fatal(err)
	}
	if db.cache.len() != 0 {
		t.Fatalf("AddFriendship left %d cached entries", db.cache.len())
	}

	warm()
	if _, err := db.AddPOI(1.0, 0.5, 0); err != nil {
		t.Fatal(err)
	}
	if db.cache.len() != 0 {
		t.Fatalf("AddPOI left %d cached entries", db.cache.len())
	}

	warm()
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if db.cache.len() != 0 {
		t.Fatalf("Compact left %d cached entries", db.cache.len())
	}
}

// TestQueryTopKCache verifies that QueryTopK goes through the answer cache
// like Query: hits are keyed by (user, query, k), the empty "nothing
// feasible" outcome is cached too, returned slices never alias the cache,
// and dynamic updates invalidate TopK entries.
func TestQueryTopKCache(t *testing.T) {
	net := figure1Network(t)
	db, err := Open(net, Config{
		RoadPivots: 2, SocialPivots: 2, LeafSize: 2, Fanout: 2, CacheSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{GroupSize: 2, Gamma: 0.5, Theta: 0.5, Radius: 1.5}
	a1, st1, err := db.QueryTopK(0, q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a1) == 0 {
		t.Fatal("expected answers")
	}
	if st1.CacheHit {
		t.Fatal("first TopK call reported a cache hit")
	}
	if db.cache.len() != 1 {
		t.Fatalf("cache len = %d, want 1", db.cache.len())
	}
	a2, st2, err := db.QueryTopK(0, q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.CacheHit {
		t.Error("second TopK call missed the cache")
	}
	if len(a2) != len(a1) || a2[0].MaxDistance != a1[0].MaxDistance {
		t.Error("cached TopK answers differ")
	}
	// Different k is a different entry.
	if _, st, err := db.QueryTopK(0, q, 2); err != nil || st.CacheHit {
		t.Fatalf("k=2 after k=3 must miss (err=%v, hit=%v)", err, st != nil && st.CacheHit)
	}
	if db.cache.len() != 2 {
		t.Fatalf("cache len = %d, want 2", db.cache.len())
	}
	// Mutating a returned slice must not corrupt the cache.
	a2[0].Users[0] = 99
	a3, _, err := db.QueryTopK(0, q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a3[0].Users[0] == 99 {
		t.Error("cache returned aliased TopK answer")
	}

	// The empty outcome is cached: second call hits and stays empty.
	hard := Query{GroupSize: 5, Gamma: 5, Theta: 0.5, Radius: 1}
	e1, st, err := db.QueryTopK(0, hard, 3)
	if err != nil || len(e1) != 0 {
		t.Fatalf("hard query: answers=%v err=%v, want empty, nil", e1, err)
	}
	if st.CacheHit {
		t.Fatal("first hard TopK reported a hit")
	}
	e2, st, err := db.QueryTopK(0, hard, 3)
	if err != nil || len(e2) != 0 {
		t.Fatalf("cached hard query: answers=%v err=%v, want empty, nil", e2, err)
	}
	if !st.CacheHit {
		t.Error("empty TopK outcome was not cached")
	}

	// A dynamic update invalidates TopK entries with everything else.
	if _, err := db.AddPOI(1.0, 0.5, 0); err != nil {
		t.Fatal(err)
	}
	if db.cache.len() != 0 {
		t.Errorf("cache should be empty after update, len = %d", db.cache.len())
	}
	if _, st, err := db.QueryTopK(0, q, 3); err != nil || st.CacheHit {
		t.Fatalf("post-update TopK must recompute (err=%v, hit=%v)", err, st != nil && st.CacheHit)
	}
}

// TestAnswerCachePutClones is the aliasing regression test for the put
// path: the cache must deep-clone on insert AND on overwrite, so a caller
// mutating the slice it passed in — or an answer it got back — can never
// corrupt a cached entry.
func TestAnswerCachePutClones(t *testing.T) {
	key := cacheKey{user: 1, q: Query{GroupSize: 2}, k: 1}
	c := newAnswerCache(4)

	// Insert path: mutate the caller's backing array after put.
	mine := []Answer{{Users: []int{1, 2}, POIs: []int{7}, Anchor: 7, MaxDistance: 1.5}}
	c.put(key, mine, Stats{}, true)
	mine[0].Users[0] = 99
	mine[0].POIs[0] = 99
	got, _, _, ok := c.get(key)
	if !ok || got[0].Users[0] != 1 || got[0].POIs[0] != 7 {
		t.Fatalf("insert path aliased caller slices: %+v", got)
	}

	// Overwrite path (the historical bug): refresh the same key, then
	// mutate what was passed in.
	fresh := []Answer{{Users: []int{3, 4}, POIs: []int{8}, Anchor: 8, MaxDistance: 2.5}}
	c.put(key, fresh, Stats{}, true)
	fresh[0].Users[1] = -1
	got, _, _, ok = c.get(key)
	if !ok || got[0].Users[1] != 4 {
		t.Fatalf("overwrite path aliased caller slices: %+v", got)
	}

	// And mutating an answer handed back by get must not poison a re-get.
	got[0].Users[0] = -7
	again, _, _, _ := c.get(key)
	if again[0].Users[0] != 3 {
		t.Fatalf("get handed out a cache-owned slice: %+v", again)
	}
}

func TestAnswerCacheDisabledByDefault(t *testing.T) {
	net := figure1Network(t)
	db, err := Open(net, Config{RoadPivots: 2, SocialPivots: 2, LeafSize: 2, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	if db.cache != nil {
		t.Error("cache should be nil when CacheSize is 0")
	}
	q := Query{GroupSize: 2, Gamma: 0.1, Theta: 0.1, Radius: 1.5}
	if _, _, err := db.Query(0, q); err != nil && !errors.Is(err, ErrNoAnswer) {
		t.Fatal(err)
	}
}
