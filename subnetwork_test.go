package gpssn

import (
	"errors"
	"testing"
)

func TestSubnetwork(t *testing.T) {
	net := figure1Network(t)
	// Around user 0 within 1 hop: users {0, 1, 2}.
	sub, mapping, err := net.Subnetwork(0, 1)
	if err != nil {
		t.Fatalf("Subnetwork: %v", err)
	}
	if sub.NumUsers() != 3 {
		t.Fatalf("NumUsers = %d, want 3", sub.NumUsers())
	}
	if len(mapping) != 3 {
		t.Fatalf("mapping = %v", mapping)
	}
	// Original ids preserved through the mapping.
	seen := map[int]bool{}
	for _, orig := range mapping {
		seen[orig] = true
	}
	for _, want := range []int{0, 1, 2} {
		if !seen[want] {
			t.Errorf("mapping missing original user %d: %v", want, mapping)
		}
	}
	// Induced friendships: the 0-1-2 triangle survives.
	edges := 0
	for i := 0; i < sub.NumUsers(); i++ {
		for j := i + 1; j < sub.NumUsers(); j++ {
			if sub.AreFriends(i, j) {
				edges++
			}
		}
	}
	if edges != 3 {
		t.Errorf("induced edges = %d, want 3", edges)
	}
	// Full POI set and road retained.
	if sub.NumPOIs() != net.NumPOIs() || sub.NumIntersections() != net.NumIntersections() {
		t.Error("POIs/road should be retained")
	}
	// The subnetwork answers queries.
	db, err := Open(sub, Config{RoadPivots: 2, SocialPivots: 2, LeafSize: 2, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	center := -1
	for newID, orig := range mapping {
		if orig == 0 {
			center = newID
		}
	}
	if center < 0 {
		t.Fatal("center user missing from mapping")
	}
	if _, _, err := db.Query(center, Query{GroupSize: 2, Gamma: 0.3, Theta: 0.3, Radius: 2}); err != nil && !errors.Is(err, ErrNoAnswer) {
		t.Fatalf("query on subnetwork: %v", err)
	}
}

func TestSubnetworkZeroHops(t *testing.T) {
	net := figure1Network(t)
	sub, mapping, err := net.Subnetwork(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumUsers() != 1 || mapping[0] != 3 {
		t.Errorf("zero-hop subnetwork: %d users, mapping %v", sub.NumUsers(), mapping)
	}
}

func TestSubnetworkValidation(t *testing.T) {
	net := figure1Network(t)
	if _, _, err := net.Subnetwork(-1, 1); err == nil {
		t.Error("bad user should fail")
	}
	if _, _, err := net.Subnetwork(0, -1); err == nil {
		t.Error("negative hops should fail")
	}
}
