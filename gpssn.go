// Package gpssn implements Group Planning queries over Spatial-Social
// Networks (GP-SSN), reproducing "Efficient Processing of Group Planning
// Queries Over Spatial-Social Networks" (Al-Baghdadi, Sharma, Lian).
//
// A spatial-social network combines a road network G_r (intersections,
// road segments, POIs on segments) with a social network G_s (users with
// interest vectors, friendships, and homes on the road network). A GP-SSN
// query issued by a user retrieves a group S of τ pairwise-compatible,
// socially connected friends including the issuer, and a set R of spatially
// close POIs matching every group member's interests, minimizing the
// maximum road-network distance between group members and POIs.
//
// Typical use:
//
//	b := gpssn.NewBuilder(4)                    // 4 interest topics
//	a := b.AddIntersection(0, 0)
//	c := b.AddIntersection(1, 0)
//	b.AddRoad(a, c)
//	b.AddPOI(0.5, 0, 0, 2)                      // POI with keywords {0,2}
//	u1 := b.AddUser(0.2, 0, []float64{0.9, 0, 0.5, 0})
//	u2 := b.AddUser(0.7, 0, []float64{0.8, 0, 0.4, 0})
//	b.AddFriendship(u1, u2)
//	net, _ := b.Build()
//
//	db, _ := gpssn.Open(net, gpssn.DefaultConfig())
//	ans, stats, _ := db.Query(u1, gpssn.Query{
//		GroupSize: 2, Gamma: 0.3, Theta: 0.5, Radius: 1,
//	})
//
// # Entry points
//
// Build a Network by hand with NewBuilder, generate one with
// GenerateSynthetic or GenerateRealLike (the paper's evaluation
// datasets), import external data with ImportCSV, or reload one with
// Load. Open indexes a Network into a DB; OpenSnapshot restores a DB
// from a file written by DB.Snapshot, skipping index construction.
//
// A DB answers queries with Query and QueryTopK; the Ctx variants add
// cooperative cancellation and deadlines, and Query.Budget caps the
// work a single query may spend (exceeding it returns the best answer
// found, flagged Answer.Truncated — possibly suboptimal, never wrong).
// A DB is safe for concurrent use: queries run in parallel and dynamic
// updates (AddPOI, AddUser, AddFriendship, AddRoadVertex, AddRoadEdge,
// Compact) serialize against them (docs/CONCURRENCY.md). Road mutations
// keep the distance oracle attached through an exact delta-overlay, and
// Compact re-contracts it in the background without blocking queries.
// DB.Health reports the active distance oracle and any degradation.
//
// # Error contract
//
// Every error returned by the public API matches exactly one of the
// sentinels ErrInvalidInput, ErrNoAnswer, ErrCancelled,
// ErrDeadlineExceeded, ErrSnapshotCorrupt, or ErrInternal via
// errors.Is, so callers branch on failure class without string
// matching; inspect structured detail (SnapshotError, InternalError)
// with errors.As. The full taxonomy, and the guarantee that a DB never
// panics the caller's process and never serves a wrong answer, is
// docs/ROBUSTNESS.md. The HTTP serving layer (cmd/gpssn-serve,
// docs/SERVING.md) maps this contract one-to-one onto status codes.
package gpssn

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gpssn/internal/core"
	"gpssn/internal/failpoint"
	"gpssn/internal/index"
	"gpssn/internal/model"
	"gpssn/internal/pivot"
	"gpssn/internal/roadnet"
	"gpssn/internal/roadnet/ch"
	"gpssn/internal/roadnet/hl"
	"gpssn/internal/socialnet"
	"gpssn/internal/wal"
)

// Metric selects the user-to-user interest similarity.
type Metric int

const (
	// DotProduct is the paper's interest score (Eq. 1), the default.
	DotProduct Metric = iota
	// Jaccard is the weighted Jaccard similarity extension.
	Jaccard
	// Hamming is the support-agreement similarity extension.
	Hamming
)

func (m Metric) internal() core.InterestMetric {
	switch m {
	case Jaccard:
		return core.MetricJaccard
	case Hamming:
		return core.MetricHamming
	default:
		return core.MetricDotProduct
	}
}

// Config controls index construction.
type Config struct {
	// RoadPivots (h) and SocialPivots (l) are the pivot counts; defaults 5.
	RoadPivots, SocialPivots int
	// RMin and RMax bound the query radius served by the index; defaults
	// 0.5 and 4 (the paper's Table 3 range).
	RMin, RMax float64
	// CostModelPivots selects pivots with the Algorithm 1 local search
	// instead of uniformly at random. Slower build, better pruning.
	CostModelPivots bool
	// LeafSize and Fanout shape the social index I_S; defaults 64 and 8.
	LeafSize, Fanout int
	// MaxEntries is the R*-tree node capacity of I_R; default 16.
	MaxEntries int
	// PageSize and PoolPages configure the simulated page store used for
	// the I/O metric; defaults 4096 and 128.
	PageSize, PoolPages int
	// Seed drives pivot selection.
	Seed int64
	// Sampling switches refinement to approximate random-expansion group
	// sampling (the paper's future-work extension).
	Sampling bool
	// Corollary2 enables the second user-pruning pass during refinement.
	Corollary2 bool
	// CacheSize enables an LRU cache of query answers (entries; 0 = off).
	// The cache is invalidated by any dynamic update and by Compact.
	CacheSize int
	// Parallelism is the number of worker goroutines each query's
	// refinement stage fans anchor candidates over. 0 (the default) uses
	// runtime.GOMAXPROCS(0); 1 runs refinement sequentially. Any setting
	// returns identical answers — see docs/CONCURRENCY.md.
	Parallelism int
	// DistanceOracle selects the exact road-distance backend. "hl" (the
	// default) builds a contraction hierarchy at Open time and extracts
	// hub labels from it, turning point-to-point dist_RN evaluations into
	// sub-µs sorted-array merges and switching refinement to the batched
	// label kernel; "ch" stops at the contraction hierarchy (about 4x
	// cheaper preprocessing, slower queries — BENCH_hublabel.json measures
	// both, which is how this default was chosen); "dijkstra" keeps the
	// plain heap searches. All three are exact and return identical
	// answers; see docs/ALGORITHMS.md. Surfaced as the ablation-choracle
	// and hublabel experiments.
	//
	// All three backends return identical answers, so a failure to build
	// the requested one is not fatal: Open falls back down the chain
	// hl → ch → dijkstra (plain Dijkstra always works — it needs no
	// preprocessing) and records the degradation in Health(). Set
	// StrictOracle to turn a fallback into an Open error instead.
	DistanceOracle string
	// StrictOracle makes Open/OpenSnapshot fail when the requested
	// DistanceOracle cannot be built, instead of serving degraded through
	// the fallback chain.
	StrictOracle bool
	// DisableSharedWork turns off the cross-query shared-work memo
	// (anchor balls and per-user sweep state computed once and shared
	// across concurrent queries — docs/CONCURRENCY.md §6). On by default
	// because answers are bit-identical either way; disabling it is
	// mainly useful for A/B measurement (make bench-serve does exactly
	// that) and for memory-constrained embedders.
	DisableSharedWork bool
	// DisableRefineArena turns off the per-worker refinement arenas (the
	// grow-only scratch buffers the hot path reuses across anchors).
	// Answers are bit-identical either way; disabling is an A/B seam for
	// allocation measurement, not a tuning knob.
	DisableRefineArena bool
	// DisableSweepFold turns off folding of refinement's one-to-all
	// sweeps into batched multi-source passes. Folding already excludes
	// itself wherever it could alter an answer or a budget trip point
	// (budgeted queries, label oracles, shared-work engines), so this
	// too exists for A/B measurement.
	DisableSweepFold bool
	// WALPath enables the write-ahead log: every successful dynamic update
	// is appended (and fsynced per WALSync) to this file before it is
	// applied, and Open/OpenSnapshot replay the surviving log so committed
	// updates survive a crash between checkpoints. Empty (the default)
	// means updates are in-memory only until the next Snapshot, as before.
	// See docs/ROBUSTNESS.md §7 for the durability contract.
	WALPath string
	// WALSync selects when appends reach stable storage: "always" (the
	// default — an acknowledged update survives an immediate crash),
	// "batch" (group-commit: appends return after the OS write, a
	// background flusher fsyncs once per WALFlushWindow, bounding loss to
	// one window), or "none" (the OS decides; a crash may lose everything
	// since the last checkpoint). BENCH_wal.json measures the cost of each.
	WALSync string
	// WALFlushWindow is the "batch" group-commit interval; default 2ms.
	WALFlushWindow time.Duration
	// WALAutoCheckpointBytes, when > 0, auto-checkpoints (Snapshot to
	// CheckpointPath, then truncate the log) in the background once the
	// log file outgrows this many bytes. 0 leaves checkpointing to
	// explicit Snapshot calls.
	WALAutoCheckpointBytes int64
	// CheckpointPath is where auto-checkpoints and the serve drain
	// checkpoint write their snapshot. Defaults to WALPath+".ckpt" when a
	// WAL is configured. Reopen with OpenSnapshot(CheckpointPath, cfg) —
	// the WAL pairs with its checkpoint, and Open refuses a log whose
	// records start past the base state's applied LSN.
	CheckpointPath string
	// OverlayCompactPortals, when > 0, auto-runs the background Compact
	// once the road delta-overlay's portal patch exceeds this many portals
	// (the patch costs Portals² per composed distance, so this bounds the
	// per-query overlay overhead). 0 leaves compaction to explicit calls.
	OverlayCompactPortals int
	// Logf, when set, receives diagnostic log lines (oracle fallbacks,
	// snapshot-recovery notes). nil discards them; the same information is
	// always available from Health().
	Logf func(format string, args ...any)
}

// logf forwards to the configured sink, if any.
func (c Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// DefaultConfig returns the paper's default index configuration.
func DefaultConfig() Config {
	return Config{
		RoadPivots: 5, SocialPivots: 5,
		RMin: 0.5, RMax: 4,
		LeafSize: 64, Fanout: 8, MaxEntries: 16,
		PageSize: 4096, PoolPages: 128,
		DistanceOracle: "hl",
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.RoadPivots == 0 {
		c.RoadPivots = d.RoadPivots
	}
	if c.SocialPivots == 0 {
		c.SocialPivots = d.SocialPivots
	}
	if c.RMin == 0 {
		c.RMin = d.RMin
	}
	if c.RMax == 0 {
		c.RMax = d.RMax
	}
	if c.LeafSize == 0 {
		c.LeafSize = d.LeafSize
	}
	if c.Fanout == 0 {
		c.Fanout = d.Fanout
	}
	if c.MaxEntries == 0 {
		c.MaxEntries = d.MaxEntries
	}
	if c.PageSize == 0 {
		c.PageSize = d.PageSize
	}
	if c.PoolPages == 0 {
		c.PoolPages = d.PoolPages
	}
	if c.DistanceOracle == "" {
		c.DistanceOracle = d.DistanceOracle
	}
	if c.CheckpointPath == "" && c.WALPath != "" {
		c.CheckpointPath = c.WALPath + ".ckpt"
	}
	return c
}

// Query is one GP-SSN request (Definition 5).
type Query struct {
	// GroupSize is τ, the size of the returned user group including the
	// issuer. Required, >= 1.
	GroupSize int
	// Gamma is the pairwise interest threshold γ in [0, ∞).
	Gamma float64
	// Theta is the user-POI matching threshold θ.
	Theta float64
	// Radius is r: the returned POI set is the road ball of radius r
	// around an anchor POI, so POIs are pairwise within 2r.
	Radius float64
	// Metric selects the similarity; zero value is the paper's DotProduct.
	Metric Metric
	// Budget caps the work this query may spend; the zero value is
	// unlimited. A budget-truncated query degrades gracefully: it returns
	// the best answer it fully evaluated, flagged Answer.Truncated, and is
	// never silently wrong. Budget participates in the answer-cache key, and
	// truncated results are never cached.
	Budget Budget
}

// Budget caps the work one query may spend. See core.Budget for the
// soundness argument: an interrupted road search yields no partial
// distances, so every figure a truncated answer reports is exact.
type Budget struct {
	// MaxSettledVertices caps road-search work units (settled vertices for
	// Dijkstra/CH scans, merged label entries for the hub-label kernel)
	// across all searches of one query. 0 = unlimited.
	MaxSettledVertices int64
	// MaxRefinedAnchors caps how many anchor candidates refinement fully
	// evaluates. 0 = unlimited.
	MaxRefinedAnchors int
}

func (b Budget) internal() core.Budget {
	return core.Budget{MaxSettledVertices: b.MaxSettledVertices, MaxRefinedAnchors: b.MaxRefinedAnchors}
}

// Answer is a GP-SSN result.
type Answer struct {
	// Users is the group S, sorted, always containing the issuer.
	Users []int
	// POIs is the set R, sorted.
	POIs []int
	// Anchor is the POI whose radius-r ball forms R.
	Anchor int
	// MaxDistance is the minimized max road distance between S and R.
	MaxDistance float64
	// Truncated is set when a Query.Budget cut the search short: the answer
	// is the best fully-evaluated candidate, not necessarily the optimum.
	// Truncated answers are never cached.
	Truncated bool
}

// Stats reports per-query cost, matching the paper's two metrics plus the
// pruning counters behind its effectiveness figures.
type Stats struct {
	// CPUTime is the wall time of the query.
	CPUTime time.Duration
	// PageReads is the number of simulated index page accesses (the
	// paper's I/O metric, cold cache per query).
	PageReads int64
	// CandidateUsers and CandidateAnchors survive the index traversal.
	CandidateUsers, CandidateAnchors int
	// CacheHit is set when the answer came from the answer cache; the cost
	// counters (CPUTime, PageReads) are zeroed on hits so harnesses never
	// mistake a cache lookup for query work.
	CacheHit bool
	// Raw exposes every pruning counter for experiment harnesses.
	Raw core.Stats
}

// DB is a queryable spatial-social network: a dataset plus its two GP-SSN
// indexes. Build one with Open.
//
// A DB is safe for concurrent use: any number of goroutines may call
// Query and QueryTopK simultaneously — each query runs with fully
// isolated per-query state (stats, simulated page-I/O accounting, trace).
// Dynamic updates (AddPOI, AddUser, AddFriendship, AddRoadVertex,
// AddRoadEdge) take an exclusive lock, so they serialize against
// in-flight queries and each other; queries observe either the state
// before an update or after it, never a torn intermediate. Compact
// rebuilds in the background and takes the exclusive lock only to swap.
// The full contract, including lock ordering, is docs/CONCURRENCY.md.
type DB struct {
	// mu orders queries (read side) against dynamic updates and Compact's
	// two short critical sections (write side). Holding it across
	// compute+cache-fill also keeps stale answers out of the cache: an
	// update cannot interleave between a query's engine call and its
	// cache put.
	mu sync.RWMutex
	// upd is the update-class lock, always acquired BEFORE mu (lock order
	// upd → mu, docs/CONCURRENCY.md). Every dynamic update and Compact
	// take it; queries never do. Compact holds it across its whole
	// background rebuild so no mutation can invalidate the cloned
	// topology, while queries keep flowing through mu's read side.
	upd    sync.Mutex
	net    *Network
	engine *core.Engine
	cfg    Config
	cache  *answerCache
	health Health

	// wal is the attached write-ahead log (nil without Config.WALPath);
	// appliedLSN is the newest record applied to the in-memory state, the
	// LSN a checkpoint persists. Both are guarded by mu.
	wal        *wal.Log
	appliedLSN uint64

	// maintTok serializes background auto-maintenance (maybeMaintain) and
	// lets Close wait it out; maintaining mirrors it for observation;
	// closed latches Close's idempotence.
	maintTok    chan struct{}
	maintaining atomic.Bool
	closed      atomic.Bool

	// BuildTime is how long index construction took. It is written by Open
	// and Compact; read it only when no Compact can be running.
	BuildTime time.Duration
}

// Health reports whether the DB is serving in a degraded mode. Degraded
// never means wrong: every distance backend is exact, so a fallback
// changes cost, not answers. Snapshot-recovery notes (sections rebuilt
// after detected damage) land here too.
type Health struct {
	// OracleRequested is the Config.DistanceOracle the DB was opened with.
	OracleRequested string
	// OracleActive is the backend actually serving ("hl", "ch" or
	// "dijkstra").
	OracleActive string
	// Degraded is set when OracleActive is a fallback below
	// OracleRequested in the chain hl → ch → dijkstra.
	Degraded bool
	// Rebuilding is set while a background Compact re-contraction is in
	// flight. Queries keep serving exactly (road mutations compose
	// through the delta-overlay); further updates block until it clears.
	Rebuilding bool
	// Notes records, in order, every fallback and recovery event since the
	// DB was opened (oracle build failures, snapshot sections rebuilt).
	Notes []string
}

// Health returns the DB's current degraded-mode status. Safe for
// concurrent use.
func (db *DB) Health() Health {
	db.mu.RLock()
	defer db.mu.RUnlock()
	h := db.health
	h.Notes = append([]string(nil), db.health.Notes...)
	return h
}

// SharedWorkStats is a snapshot of the cross-query shared-work memo
// counters (ball-memo hits/misses/evictions, sweep-memo occupancy, the
// road-data version observed by invalidation). Zero-valued with Enabled
// false when Config.DisableSharedWork is set. gpssn-serve surfaces it
// under /statsz.
type SharedWorkStats = core.SharedWorkStats

// SharedWorkStats snapshots the shared-work memo. Safe to call
// concurrently with queries and updates; counters reset on Compact (the
// rebuilt engine starts with an empty memo).
func (db *DB) SharedWorkStats() SharedWorkStats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.engine.SharedWorkStats()
}

// MemoryStats reports where a DB's memory lives: the preprocessed oracle
// structures (the dominant resident cost at scale — the capacity table in
// the README is derived from OracleBytes), the refinement arenas, the
// shared-work sweep memo, and the Go heap as the runtime sees it. Safe to
// call concurrently with queries; gpssn-serve surfaces it under /statsz.
type MemoryStats struct {
	// OracleBytes, ArenaBytes and MemoBytes are the engine's own
	// accounting — see core.MemoryStats for exactly what each covers.
	OracleBytes int64
	ArenaBytes  int64
	MemoBytes   int64
	// HeapAlloc and HeapSys are runtime.MemStats.HeapAlloc/HeapSys:
	// live heap bytes and heap address space obtained from the OS.
	HeapAlloc uint64
	HeapSys   uint64
	// NumGC is the completed garbage-collection cycle count.
	NumGC uint32
}

// MemoryStats snapshots the DB's memory accounting.
func (db *DB) MemoryStats() MemoryStats {
	db.mu.RLock()
	es := db.engine.MemoryStats()
	db.mu.RUnlock()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return MemoryStats{
		OracleBytes: es.OracleBytes,
		ArenaBytes:  es.ArenaBytes,
		MemoBytes:   es.MemoBytes,
		HeapAlloc:   m.HeapAlloc,
		HeapSys:     m.HeapSys,
		NumGC:       m.NumGC,
	}
}

// oracleChain returns the fallback order for a requested backend, or nil
// for an unknown one. Plain Dijkstra terminates every chain: it needs no
// preprocessing, so it cannot fail to build.
func oracleChain(kind string) []string {
	switch kind {
	case "hl":
		return []string{"hl", "ch", "dijkstra"}
	case "ch":
		return []string{"ch", "dijkstra"}
	case "dijkstra":
		return []string{"dijkstra"}
	}
	return nil
}

// buildOracle builds one oracle backend, converting a build panic — or an
// armed failpoint at "oracle.build.<kind>" — into an error the fallback
// chain can absorb. A nil oracle with nil error means plain Dijkstra.
func buildOracle(g *roadnet.Graph, kind string) (o roadnet.DistanceOracle, err error) {
	defer func() {
		if r := recover(); r != nil {
			o, err = nil, fmt.Errorf("build panicked: %v", r)
		}
	}()
	if err := failpoint.Error("oracle.build." + kind); err != nil {
		return nil, err
	}
	switch kind {
	case "hl":
		return hl.Build(g), nil
	case "ch":
		return ch.Build(g), nil
	}
	return nil, nil
}

// attachOracle walks the fallback chain for the configured backend and
// attaches the first oracle that builds, reporting what happened through
// the returned Health. With Config.StrictOracle a build failure becomes
// an error instead of a fallback.
func attachOracle(ds *model.Dataset, c Config) (Health, error) {
	h := Health{OracleRequested: c.DistanceOracle}
	chain := oracleChain(c.DistanceOracle)
	if chain == nil {
		return h, fmt.Errorf("gpssn: unknown DistanceOracle %q (want \"ch\", \"hl\" or \"dijkstra\")", c.DistanceOracle)
	}
	for _, kind := range chain {
		o, err := buildOracle(ds.Road, kind)
		if err != nil {
			if c.StrictOracle {
				return h, fmt.Errorf("gpssn: building %s oracle: %w", kind, err)
			}
			note := fmt.Sprintf("%s oracle build failed (%v); falling back", kind, err)
			h.Degraded = true
			h.Notes = append(h.Notes, note)
			c.logf("gpssn: %s", note)
			continue
		}
		ds.Road.SetDistanceOracle(o)
		h.OracleActive = kind
		return h, nil
	}
	return h, fmt.Errorf("gpssn: no distance oracle could be built")
}

// Open builds the I_R and I_S indexes over the network and returns a
// queryable DB.
func Open(net *Network, cfg Config) (*DB, error) {
	if net == nil || net.ds == nil {
		return nil, fmt.Errorf("gpssn: nil network")
	}
	c := cfg.withDefaults()
	start := time.Now()

	// Attach the distance oracle before anything touches road distances so
	// pivot selection and pivot-table construction run through it too. A
	// backend that fails to build degrades down the chain (see Health)
	// rather than failing the open, unless StrictOracle is set.
	health, err := attachOracle(net.ds, c)
	if err != nil {
		return nil, err
	}
	db, err := buildDB(net, c)
	if err != nil {
		return nil, err
	}
	db.health = health
	// Attach the write-ahead log last: replay re-enters the regular
	// update path, which needs the fully built engine. An existing log
	// brings the network's state forward to the last surviving record.
	if c.WALPath != "" {
		if err := db.openWAL(c, 0); err != nil {
			return nil, err
		}
	}
	db.BuildTime = time.Since(start)
	return db, nil
}

// buildDB builds the indexes and engine over a network whose distance
// oracle is already attached (by attachOracle or snapshot restore). The
// caller fills in health and BuildTime.
func buildDB(net *Network, c Config) (*DB, error) {
	ds := net.ds
	roadPivots := pivot.RandomRoad(ds.Road, c.RoadPivots, c.Seed+1)
	socialPivots := pivot.RandomSocial(ds.Social, c.SocialPivots, c.Seed+2)
	if c.CostModelPivots {
		roadPivots = pivot.SelectRoad(ds.Road, attachObjects(ds), c.RoadPivots, pivot.Options{Seed: c.Seed + 1})
		socialPivots = pivot.SelectSocial(ds.Social, c.SocialPivots, pivot.Options{Seed: c.Seed + 2})
	}

	road, err := index.BuildRoad(ds, index.RoadConfig{
		Pivots: roadPivots, RMin: c.RMin, RMax: c.RMax,
		MaxEntries: c.MaxEntries, PageSize: c.PageSize, PoolPages: c.PoolPages,
	})
	if err != nil {
		return nil, fmt.Errorf("gpssn: building road index: %w", err)
	}
	social, err := index.BuildSocial(ds, index.SocialConfig{
		RoadPivots: road.Pivots, SocialPivots: socialPivots,
		LeafSize: c.LeafSize, Fanout: c.Fanout,
		PageSize: c.PageSize, PoolPages: c.PoolPages,
	})
	if err != nil {
		return nil, fmt.Errorf("gpssn: building social index: %w", err)
	}
	engine := core.NewEngine(ds, road, social, core.Options{
		SamplingRefine:     c.Sampling,
		UseCorollary2:      c.Corollary2,
		Parallelism:        c.Parallelism,
		SharedWork:         !c.DisableSharedWork,
		DisableRefineArena: c.DisableRefineArena,
		DisableSweepFold:   c.DisableSweepFold,
	})
	return &DB{
		net: net, engine: engine, cfg: c,
		cache:    newAnswerCache(c.CacheSize),
		maintTok: make(chan struct{}, 1),
	}, nil
}

// Network returns the underlying network. Its accessors are safe to call
// concurrently with queries; coordinate externally before mixing them with
// dynamic updates (updates grow the user and POI sets the accessors read).
// Compact swaps in a rebuilt network, so re-fetch rather than holding the
// pointer across one — a stale pointer stays readable but stops seeing
// later updates.
func (db *DB) Network() *Network {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.net
}

// validate rejects malformed query input with an ErrInvalidInput-matching
// error before any engine state is touched. NaN thresholds are rejected
// here explicitly: NaN slips through ordinary `< 0` comparisons and would
// otherwise poison every pruning bound downstream. Bounds that depend on
// the built index (r within [RMin, RMax]) remain the engine's job.
func (q Query) validate(user, numUsers int) error {
	if user < 0 || user >= numUsers {
		return invalidf("user %d out of range [0,%d)", user, numUsers)
	}
	if q.GroupSize < 1 {
		return invalidf("group size τ=%d must be >= 1", q.GroupSize)
	}
	if math.IsNaN(q.Radius) || q.Radius <= 0 {
		return invalidf("radius r=%v must be positive", q.Radius)
	}
	if math.IsNaN(q.Gamma) || q.Gamma < 0 {
		return invalidf("gamma %v must be a non-negative number", q.Gamma)
	}
	if math.IsNaN(q.Theta) || q.Theta < 0 {
		return invalidf("theta %v must be a non-negative number", q.Theta)
	}
	if q.Budget.MaxSettledVertices < 0 || q.Budget.MaxRefinedAnchors < 0 {
		return invalidf("budget caps must be non-negative")
	}
	return nil
}

// params maps a facade query onto the engine's parameter struct.
func (q Query) params() core.Params {
	return core.Params{
		Gamma: q.Gamma, Tau: q.GroupSize, Theta: q.Theta, R: q.Radius,
		Metric: q.Metric.internal(),
		Budget: q.Budget.internal(),
	}
}

// statsFrom lifts the engine's raw counters into the public Stats.
func statsFrom(raw core.Stats) *Stats {
	return &Stats{
		CPUTime:          raw.CPUTime,
		PageReads:        raw.PageReads,
		CandidateUsers:   raw.CandUsers,
		CandidateAnchors: raw.CandAnchors,
		Raw:              raw,
	}
}

// markCacheHit turns a cached Stats snapshot into a hit report: the flag is
// set (top-level and Raw) and the cost counters are zeroed so a cache
// lookup never masquerades as query work.
func markCacheHit(st *Stats) {
	st.CacheHit = true
	st.CPUTime = 0
	st.PageReads = 0
	st.Raw.CacheHit = true
	st.Raw.CPUTime = 0
	st.Raw.PageReads = 0
}

// answerFrom converts one engine result.
func answerFrom(res core.Result, truncated bool) Answer {
	ans := Answer{Anchor: int(res.Anchor), MaxDistance: res.MaxDist, Truncated: truncated}
	for _, u := range res.S {
		ans.Users = append(ans.Users, int(u))
	}
	for _, o := range res.R {
		ans.POIs = append(ans.POIs, int(o))
	}
	return ans
}

// Query answers a GP-SSN query for the given issuer. It returns
// ErrNoAnswer (wrapped) when no feasible group/POI pair exists. Safe for
// concurrent use: any number of goroutines may call Query on one DB.
func (db *DB) Query(user int, q Query) (*Answer, *Stats, error) {
	return db.QueryCtx(context.Background(), user, q)
}

// QueryCtx is Query with cooperative cancellation: it aborts promptly when
// ctx is cancelled or its deadline passes, returning an error matching
// ErrCancelled/ErrDeadlineExceeded (and the context sentinels) via
// errors.Is, with the partial Stats gathered so far. Cancelled and
// budget-truncated outcomes are never written to the answer cache, so a
// cancelled query cannot poison later ones.
func (db *DB) QueryCtx(ctx context.Context, user int, q Query) (ans *Answer, st *Stats, err error) {
	// The recovery boundary: an internal invariant panic anywhere below —
	// including one captured from a refinement worker goroutine — becomes
	// a typed *InternalError instead of crashing the caller's process.
	defer db.guard("Query", user, q, &err)
	// Check before taking the read lock: Compact can hold the write lock
	// for seconds, and an already-dead context must fail in microseconds.
	if err := core.ContextError(ctx); err != nil {
		return nil, &Stats{}, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if err := q.validate(user, len(db.net.ds.Users)); err != nil {
		return nil, nil, err
	}
	key := cacheKey{user: user, q: q, k: 1}
	if answers, stats, found, ok := db.cache.get(key); ok {
		markCacheHit(&stats)
		if !found {
			return nil, &stats, fmt.Errorf("user %d: %w", user, ErrNoAnswer)
		}
		return &answers[0], &stats, nil
	}
	res, raw, err := db.engine.QueryCtx(ctx, socialnet.UserID(user), q.params())
	st = statsFrom(raw)
	if err != nil {
		return nil, st, engineErr(err)
	}
	if !res.Found {
		if !raw.Truncated {
			db.cache.put(key, nil, *st, false)
		}
		return nil, st, fmt.Errorf("user %d: %w", user, ErrNoAnswer)
	}
	a := answerFrom(res, raw.Truncated)
	if !raw.Truncated {
		db.cache.put(key, []Answer{a}, *st, true)
	}
	return &a, st, nil
}

// QueryTopK returns up to k answers with distinct anchor POIs, cheapest
// first. It returns an empty slice (and no error) when nothing is feasible.
// Safe for concurrent use, like Query. Results go through the same answer
// cache as Query, keyed by (user, query, k); the empty outcome is cached
// too.
func (db *DB) QueryTopK(user int, q Query, k int) ([]Answer, *Stats, error) {
	return db.QueryTopKCtx(context.Background(), user, q, k)
}

// QueryTopKCtx is QueryTopK with cooperative cancellation, under the same
// contract as QueryCtx.
func (db *DB) QueryTopKCtx(ctx context.Context, user int, q Query, k int) (answers []Answer, st *Stats, err error) {
	defer db.guard("QueryTopK", user, q, &err)
	if err := core.ContextError(ctx); err != nil {
		return nil, &Stats{}, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if err := q.validate(user, len(db.net.ds.Users)); err != nil {
		return nil, nil, err
	}
	key := cacheKey{user: user, q: q, k: k}
	if answers, stats, found, ok := db.cache.get(key); ok {
		markCacheHit(&stats)
		if !found {
			return []Answer{}, &stats, nil
		}
		return answers, &stats, nil
	}
	results, raw, err := db.engine.QueryTopKCtx(ctx, socialnet.UserID(user), q.params(), k)
	st = statsFrom(raw)
	if err != nil {
		return nil, st, engineErr(err)
	}
	answers = make([]Answer, 0, len(results))
	for _, res := range results {
		answers = append(answers, answerFrom(res, raw.Truncated))
	}
	if !raw.Truncated {
		db.cache.put(key, answers, *st, len(answers) > 0)
	}
	return answers, st, nil
}

// Engine exposes the internal engine for the benchmark harness. External
// users should stick to Query. The engine itself is concurrent-safe, but
// the pointer is replaced by Compact — do not hold it across a Compact.
func (db *DB) Engine() *core.Engine {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.engine
}

// ErrNoAnswer is returned (wrapped) when a query has no feasible result.
var ErrNoAnswer = fmt.Errorf("gpssn: no feasible answer")

// ErrCancelled is wrapped into the error QueryCtx/QueryTopKCtx return when
// the caller's context is cancelled mid-query; errors.Is also matches
// context.Canceled on the same error.
var ErrCancelled = core.ErrCancelled

// ErrDeadlineExceeded is the ErrCancelled analogue for an expired deadline;
// errors.Is also matches context.DeadlineExceeded.
var ErrDeadlineExceeded = core.ErrDeadlineExceeded
