package gpssn

import (
	"errors"
	"fmt"
	"testing"
)

// openWithOracle generates a fresh copy of the deterministic test network
// and opens it with the given oracle and parallelism. Each DB gets its own
// Network because Open attaches the distance oracle to the network's road
// graph — sharing one network across differently-configured DBs would let
// the last Open win.
func openWithOracle(t *testing.T, seed int64, zipf bool, oracle string, parallelism int) *DB {
	t.Helper()
	net, err := GenerateSynthetic(SyntheticOptions{
		Seed: seed, RoadVertices: 150, Users: 70, POIs: 45, Topics: 6, Zipf: zipf,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.RoadPivots = 4
	cfg.DistanceOracle = oracle
	cfg.Parallelism = parallelism
	db, err := Open(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func answerKey(a *Answer) string {
	return fmt.Sprintf("S=%v R=%v anchor=%d", a.Users, a.POIs, a.Anchor)
}

// sameCost reports whether two costs agree up to floating-point
// association order: CH shortcut weights are precomputed edge-weight sums,
// so the same shortest path can accumulate in a different order than
// Dijkstra's edge-at-a-time sum (observed divergence is 1 ULP).
func sameCost(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	lim := 1e-9
	if a > 1 {
		lim *= a
	}
	return d <= lim
}

// sameAnswer compares two answers. With equal anchors, the group and POI
// set must match exactly and the cost up to sameCost. With different
// anchors, the answers are accepted only as an exact cost tie: the engine
// breaks mathematical ties by anchor id (resultLess in internal/core), and
// a 1-ULP jitter between the oracles can flip which equal-cost anchor the
// tie-break selects. Requiring sameCost on both sides pins that the flip
// really was a tie, not a wrong distance.
func sameAnswer(a, b *Answer) bool {
	if a.Anchor != b.Anchor {
		return sameCost(a.MaxDistance, b.MaxDistance)
	}
	return answerKey(a) == answerKey(b) && sameCost(a.MaxDistance, b.MaxDistance)
}

// TestOracleEqualityQueries is the tentpole equality gate: Query and
// QueryTopK must return identical answers with DistanceOracle=ch and
// =dijkstra, at refinement parallelism 1 and 8, on every small dataset.
// The group, POI set, and anchor must agree exactly; MaxDistance up to
// floating-point association order (see sameAnswer).
func TestOracleEqualityQueries(t *testing.T) {
	queries := []Query{
		{GroupSize: 3, Gamma: 0.3, Theta: 0.4, Radius: 2},
		{GroupSize: 2, Gamma: 0.5, Theta: 0.5, Radius: 1},
		{GroupSize: 4, Gamma: 0.2, Theta: 0.3, Radius: 3},
	}
	for _, zipf := range []bool{false, true} {
		for seed := int64(1); seed <= 2; seed++ {
			ref := openWithOracle(t, seed, zipf, "dijkstra", 1)
			for _, par := range []int{1, 8} {
				db := openWithOracle(t, seed, zipf, "ch", par)
				for _, q := range queries {
					for user := 0; user < 70; user += 7 {
						wantAns, _, wantErr := ref.Query(user, q)
						gotAns, _, gotErr := db.Query(user, q)
						if (wantErr == nil) != (gotErr == nil) {
							t.Fatalf("zipf=%v seed=%d par=%d user=%d q=%+v: err mismatch (dijkstra=%v ch=%v)",
								zipf, seed, par, user, q, wantErr, gotErr)
						}
						if wantErr != nil {
							if !errors.Is(gotErr, ErrNoAnswer) {
								t.Fatalf("unexpected error: %v", gotErr)
							}
							continue
						}
						if !sameAnswer(wantAns, gotAns) {
							t.Fatalf("zipf=%v seed=%d par=%d user=%d q=%+v:\n dijkstra %s maxdist=%x\n ch       %s maxdist=%x",
								zipf, seed, par, user, q, answerKey(wantAns), wantAns.MaxDistance, answerKey(gotAns), gotAns.MaxDistance)
						}
					}
					for user := 0; user < 70; user += 23 {
						wantTop, _, err := ref.QueryTopK(user, q, 3)
						if err != nil {
							t.Fatal(err)
						}
						gotTop, _, err := db.QueryTopK(user, q, 3)
						if err != nil {
							t.Fatal(err)
						}
						if len(wantTop) != len(gotTop) {
							t.Fatalf("zipf=%v seed=%d par=%d user=%d: top-k sizes differ (%d vs %d)",
								zipf, seed, par, user, len(wantTop), len(gotTop))
						}
						for i := range wantTop {
							if !sameAnswer(&wantTop[i], &gotTop[i]) {
								t.Fatalf("zipf=%v seed=%d par=%d user=%d top-k[%d]:\n dijkstra %s maxdist=%x\n ch       %s maxdist=%x",
									zipf, seed, par, user, i, answerKey(&wantTop[i]), wantTop[i].MaxDistance, answerKey(&gotTop[i]), gotTop[i].MaxDistance)
							}
						}
					}
				}
			}
		}
	}
}

// TestOracleConfigValidation covers the DistanceOracle config surface.
func TestOracleConfigValidation(t *testing.T) {
	net, err := GenerateSynthetic(SyntheticOptions{
		Seed: 3, RoadVertices: 60, Users: 25, POIs: 20, Topics: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.DistanceOracle = "bogus"
	if _, err := Open(net, cfg); err == nil {
		t.Fatal("Open accepted an unknown DistanceOracle")
	}
	cfg.DistanceOracle = "" // empty defaults to hl
	db, err := Open(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if db.net.ds.Road.Oracle() == nil {
		t.Fatal("default config did not attach an oracle")
	}
	if !db.net.ds.Road.HasLabels() {
		t.Fatal("default config did not attach the hub-label oracle")
	}
	cfg.DistanceOracle = "ch"
	db, err = Open(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if db.net.ds.Road.Oracle() == nil || db.net.ds.Road.HasLabels() {
		t.Fatal("ch config must attach the label-free CH oracle")
	}
	cfg.DistanceOracle = "dijkstra"
	db, err = Open(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if db.net.ds.Road.Oracle() != nil {
		t.Fatal("dijkstra config left an oracle attached")
	}
}
