// Command gpssn-stats analyses a dataset file: the Table 2 statistics plus
// the structural properties the GP-SSN pruning rules depend on (degree
// distribution, clustering, interest homophily, component structure).
//
// Usage:
//
//	gpssn-stats -data uni.gpssn
package main

import (
	"flag"
	"fmt"
	"os"

	"gpssn"
)

func main() {
	data := flag.String("data", "", "dataset file from gpssn-gen (required)")
	flag.Parse()
	if *data == "" {
		fmt.Fprintln(os.Stderr, "gpssn-stats: -data is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpssn-stats:", err)
		os.Exit(1)
	}
	net, err := gpssn.Load(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpssn-stats:", err)
		os.Exit(1)
	}
	fmt.Println(net.Stats())
	a := net.Analyze()
	fmt.Printf("social: max degree %d, clustering %.3f, largest component %.1f%%\n",
		a.MaxDegree, a.Clustering, 100*a.LargestComponent)
	fmt.Printf("interest homophily (friend sim - stranger sim): %+.3f\n", a.Homophily)
	fmt.Printf("mean hop distance (sampled): %.2f\n", a.MeanHops)
	fmt.Printf("degree histogram (deg: users):")
	for d, c := range a.DegreeHistogram {
		if c > 0 && d <= 20 {
			fmt.Printf(" %d:%d", d, c)
		}
	}
	fmt.Println()
}
