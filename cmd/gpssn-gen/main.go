// Command gpssn-gen generates spatial-social network datasets in the
// library's binary format.
//
// Usage:
//
//	gpssn-gen -kind uni  -out uni.gpssn -vertices 30000 -users 30000 -pois 10000
//	gpssn-gen -kind zipf -out zipf.gpssn -seed 7
//	gpssn-gen -kind brical -scale 0.25 -out brical.gpssn
//	gpssn-gen -kind gowcol -out gowcol.gpssn
//
// Kinds uni/zipf generate the paper's synthetic datasets (Section 6.1);
// brical/gowcol generate the real-like Brightkite+California and
// Gowalla+Colorado stand-ins with Table 2 statistics.
package main

import (
	"flag"
	"fmt"
	"os"

	"gpssn"
)

func main() {
	var (
		kind     = flag.String("kind", "uni", "dataset kind: uni, zipf, brical, gowcol")
		out      = flag.String("out", "", "output file (required)")
		seed     = flag.Int64("seed", 1, "generation seed")
		vertices = flag.Int("vertices", 0, "road vertices (synthetic; 0 = paper default 30000)")
		users    = flag.Int("users", 0, "social users (synthetic; 0 = paper default 30000)")
		pois     = flag.Int("pois", 0, "POIs (synthetic; 0 = paper default 10000)")
		topics   = flag.Int("topics", 0, "vocabulary size (0 = default)")
		scale    = flag.Float64("scale", 1, "size multiplier for real-like datasets")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "gpssn-gen: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	var (
		net *gpssn.Network
		err error
	)
	switch *kind {
	case "uni", "zipf":
		net, err = gpssn.GenerateSynthetic(gpssn.SyntheticOptions{
			Seed: *seed, RoadVertices: *vertices, Users: *users,
			POIs: *pois, Topics: *topics, Zipf: *kind == "zipf",
		})
	case "brical":
		net, err = gpssn.GenerateRealLike(gpssn.BrightkiteCalifornia, *seed, *scale)
	case "gowcol":
		net, err = gpssn.GenerateRealLike(gpssn.GowallaColorado, *seed, *scale)
	default:
		fmt.Fprintf(os.Stderr, "gpssn-gen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpssn-gen:", err)
		os.Exit(1)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpssn-gen:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := net.Save(f); err != nil {
		fmt.Fprintln(os.Stderr, "gpssn-gen:", err)
		os.Exit(1)
	}
	fmt.Println(net.Stats())
	fmt.Printf("wrote %s\n", *out)
}
