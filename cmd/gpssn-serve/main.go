// Command gpssn-serve is a long-running HTTP/JSON GP-SSN query server: it
// loads a dataset (or a prebuilt snapshot, skipping index construction),
// then serves queries with per-request deadlines and budgets, request
// coalescing, bounded-in-flight admission control with load shedding, and
// a graceful drain on SIGTERM/SIGINT.
//
// Usage:
//
//	gpssn-serve -data uni.gpssn -addr :8080
//	gpssn-serve -snapshot uni.snap -max-inflight 64 -default-timeout 2s
//
//	curl localhost:8080/healthz
//	curl -d '{"user":42,"group_size":5,"gamma":0.5,"theta":0.5,"radius":2}' \
//	     localhost:8080/v1/query
//
// Every endpoint, status code, and tuning knob is documented in
// docs/SERVING.md, the operator's handbook.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gpssn"
	"gpssn/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		data     = flag.String("data", "", "dataset file from gpssn-gen (this or -snapshot is required)")
		snapIn   = flag.String("snapshot", "", "open a DB snapshot written by gpssn-query -save-snapshot instead of -data")
		oracle   = flag.String("oracle", "hl", "distance oracle: hl, ch or dijkstra (falls back down the chain unless -strict-oracle)")
		strict   = flag.Bool("strict-oracle", false, "fail startup when the requested oracle cannot be built, instead of serving degraded")
		cache    = flag.Int("cache", 4096, "answer-cache entries (0 disables caching)")
		par      = flag.Int("parallelism", 0, "refinement workers per query (0 = all CPUs)")
		inflight = flag.Int("max-inflight", 128, "admission control: max concurrently executing queries; beyond it requests are shed with 429")
		defTO    = flag.Duration("default-timeout", 5*time.Second, "deadline for requests that carry no timeout_ms (0 = none)")
		maxTO    = flag.Duration("max-timeout", 30*time.Second, "cap on every request's effective deadline (0 = none)")
		retry    = flag.Duration("retry-after", time.Second, "Retry-After hint on shed (429) responses")
		drainTO  = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests before exiting anyway")
		gather   = flag.Duration("gather-window", time.Millisecond, "hold each query up to this long so overlapping requests fold into one shared ball/sweep pass (0 disables)")
		noShared = flag.Bool("no-shared-work", false, "disable the cross-query shared-work memo (answers are identical either way; for A/B measurement)")
		walPath  = flag.String("wal", "", "write-ahead log path: every accepted update is durable before it is acknowledged, and a crash replays the log on restart (see docs/ROBUSTNESS.md)")
		walSync  = flag.String("wal-sync", "always", "WAL fsync policy: always (fsync per update), batch (group commit, see -wal-flush), none (OS page cache only)")
		walFlush = flag.Duration("wal-flush", 0, "group-commit window for -wal-sync batch (0 = the library default)")
		walAuto  = flag.Int64("wal-auto-checkpoint-bytes", 64<<20, "checkpoint in the background once the log exceeds this many bytes (0 disables)")
		ckptPath = flag.String("checkpoint", "", "checkpoint snapshot path for auto- and shutdown checkpoints (default: <wal>.ckpt)")
		portals  = flag.Int("overlay-compact-portals", 0, "auto-Compact in the background once the road delta-overlay exceeds this many portals (0 disables)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "gpssn-serve: ", log.LstdFlags)
	if (*data == "") == (*snapIn == "") {
		fmt.Fprintln(os.Stderr, "gpssn-serve: exactly one of -data and -snapshot is required")
		flag.Usage()
		os.Exit(2)
	}

	cfg := gpssn.DefaultConfig()
	cfg.DistanceOracle = *oracle
	cfg.StrictOracle = *strict
	cfg.CacheSize = *cache
	cfg.Parallelism = *par
	cfg.DisableSharedWork = *noShared
	cfg.Logf = logger.Printf
	cfg.WALPath = *walPath
	cfg.WALSync = *walSync
	cfg.WALFlushWindow = *walFlush
	cfg.WALAutoCheckpointBytes = *walAuto
	cfg.CheckpointPath = *ckptPath
	cfg.OverlayCompactPortals = *portals

	db, err := openDB(*data, *snapIn, cfg)
	if err != nil {
		logger.Fatal(err)
	}
	logger.Printf("%s; indexes ready in %s", db.Network().Stats(), db.BuildTime)
	if h := db.Health(); h.Degraded {
		logger.Printf("degraded: serving with %q oracle (requested %q) — answers stay exact, queries run slower",
			h.OracleActive, h.OracleRequested)
	}

	srv := serve.New(db, serve.Config{
		MaxInFlight:    *inflight,
		DefaultTimeout: *defTO,
		MaxTimeout:     *maxTO,
		RetryAfter:     *retry,
		GatherWindow:   *gather,
		Logf:           logger.Printf,
	})
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	logger.Printf("listening on %s", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		logger.Printf("received %s; draining (up to %s)", s, *drainTO)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
		defer cancel()
		// Reject new queries first, then let the http.Server finish the
		// in-flight connections; Drain's own wait is subsumed by Shutdown
		// but bounds handler completion even for hijacked connections.
		if err := srv.Drain(ctx); err != nil {
			logger.Printf("%v; shutting down with requests in flight", err)
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Printf("shutdown: %v", err)
			os.Exit(1)
		}
		// With the WAL attached and no writes arriving anymore, park the
		// durable state as a checkpoint: the restart opens it and replays
		// an empty log instead of the whole write history.
		if *walPath != "" {
			ckpt := *ckptPath
			if ckpt == "" {
				ckpt = *walPath + ".ckpt"
			}
			if st := db.WALStats(); st.Pending > 0 {
				if err := db.Checkpoint(ckpt); err != nil {
					logger.Printf("shutdown checkpoint: %v (the wal still holds everything; restart will replay it)", err)
				} else {
					logger.Printf("checkpointed %d pending update(s) to %s", st.Pending, ckpt)
				}
			}
		}
		if err := db.Close(); err != nil {
			logger.Printf("close: %v", err)
		}
		logger.Printf("drained; bye")
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Fatal(err)
		}
	}
}

// openDB loads the DB from a dataset file or a snapshot.
func openDB(data, snapshot string, cfg gpssn.Config) (*gpssn.DB, error) {
	if snapshot != "" {
		db, err := gpssn.OpenSnapshot(snapshot, cfg)
		if err != nil && errors.Is(err, gpssn.ErrSnapshotCorrupt) {
			return nil, fmt.Errorf("%w\nthe snapshot is damaged; regenerate it with gpssn-query -data ... -save-snapshot", err)
		}
		return db, err
	}
	f, err := os.Open(data)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	net, err := gpssn.Load(f)
	if err != nil {
		return nil, err
	}
	return gpssn.Open(net, cfg)
}
