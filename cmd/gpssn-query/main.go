// Command gpssn-query answers GP-SSN queries over a dataset file produced
// by gpssn-gen.
//
// Usage:
//
//	gpssn-query -data uni.gpssn -user 42 -tau 5 -gamma 0.5 -theta 0.5 -r 2
//	gpssn-query -data uni.gpssn -user 42 -k 3
//	gpssn-query -data uni.gpssn -save-snapshot uni.snap -user 42
//	gpssn-query -snapshot uni.snap -user 42
//
// -save-snapshot persists the opened DB (dataset plus built distance
// oracles) so later runs with -snapshot skip the index build.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"gpssn"
)

func main() {
	var (
		data    = flag.String("data", "", "dataset file from gpssn-gen (this or -snapshot is required)")
		snapIn  = flag.String("snapshot", "", "open a DB snapshot written by -save-snapshot instead of -data")
		snapOut = flag.String("save-snapshot", "", "after opening, persist the DB (dataset + oracles) here")
		user    = flag.Int("user", 0, "query issuer user id")
		tau     = flag.Int("tau", 5, "group size including the issuer")
		gamma   = flag.Float64("gamma", 0.5, "pairwise interest threshold")
		theta   = flag.Float64("theta", 0.5, "user-POI matching threshold")
		r       = flag.Float64("r", 2, "POI ball radius")
		k       = flag.Int("k", 1, "number of answers (distinct anchors)")
		trace   = flag.Bool("trace", false, "log the query's pruning phases to stderr")
		timeout = flag.Duration("timeout", 0, "abort the query after this long (0 = no limit)")
		walPath = flag.String("wal", "", "attach a write-ahead log: a log left behind by a crashed process is replayed before the query runs (see docs/ROBUSTNESS.md)")
		walSync = flag.String("wal-sync", "always", "WAL fsync policy: always, batch, or none")
	)
	flag.Parse()
	if (*data == "") == (*snapIn == "") {
		fmt.Fprintln(os.Stderr, "gpssn-query: exactly one of -data and -snapshot is required")
		flag.Usage()
		os.Exit(2)
	}

	cfg := gpssn.DefaultConfig()
	cfg.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "gpssn-query: "+format+"\n", args...)
	}
	cfg.WALPath = *walPath
	cfg.WALSync = *walSync
	var db *gpssn.DB
	if *snapIn != "" {
		var err error
		db, err = gpssn.OpenSnapshot(*snapIn, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpssn-query:", err)
			if errors.Is(err, gpssn.ErrSnapshotCorrupt) {
				fmt.Fprintln(os.Stderr, "gpssn-query: the snapshot is damaged; regenerate it with -data ... -save-snapshot")
			}
			os.Exit(1)
		}
	} else {
		f, err := os.Open(*data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpssn-query:", err)
			os.Exit(1)
		}
		net, err := gpssn.Load(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpssn-query:", err)
			os.Exit(1)
		}
		db, err = gpssn.Open(net, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpssn-query:", err)
			os.Exit(1)
		}
	}
	fmt.Println(db.Network().Stats())
	fmt.Printf("indexes built in %s\n", db.BuildTime)
	if h := db.Health(); h.Degraded {
		fmt.Fprintf(os.Stderr, "gpssn-query: degraded: serving with %q oracle (requested %q)\n",
			h.OracleActive, h.OracleRequested)
	}
	if *snapOut != "" {
		if err := db.Snapshot(*snapOut); err != nil {
			fmt.Fprintln(os.Stderr, "gpssn-query:", err)
			os.Exit(1)
		}
		fmt.Printf("snapshot saved to %s\n", *snapOut)
	}
	if *trace {
		db.Engine().Opts.Trace = os.Stderr
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	q := gpssn.Query{GroupSize: *tau, Gamma: *gamma, Theta: *theta, Radius: *r}
	if *k <= 1 {
		ans, stats, err := db.QueryCtx(ctx, *user, q)
		if err != nil {
			if errors.Is(err, gpssn.ErrNoAnswer) {
				fmt.Printf("no feasible answer (CPU %s, %d I/Os)\n", stats.CPUTime, stats.PageReads)
				return
			}
			if errors.Is(err, gpssn.ErrDeadlineExceeded) {
				fmt.Fprintf(os.Stderr, "gpssn-query: timed out after %s\n", *timeout)
				os.Exit(1)
			}
			fmt.Fprintln(os.Stderr, "gpssn-query:", err)
			os.Exit(1)
		}
		printAnswer(*ans)
		fmt.Printf("CPU %s, %d page reads, %d candidate users, %d candidate anchors\n",
			stats.CPUTime, stats.PageReads, stats.CandidateUsers, stats.CandidateAnchors)
		return
	}
	answers, stats, err := db.QueryTopKCtx(ctx, *user, q, *k)
	if err != nil {
		if errors.Is(err, gpssn.ErrDeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "gpssn-query: timed out after %s\n", *timeout)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "gpssn-query:", err)
		os.Exit(1)
	}
	if len(answers) == 0 {
		fmt.Println("no feasible answer")
		return
	}
	for i, ans := range answers {
		fmt.Printf("--- answer %d ---\n", i+1)
		printAnswer(ans)
	}
	fmt.Printf("CPU %s, %d page reads\n", stats.CPUTime, stats.PageReads)
}

func printAnswer(ans gpssn.Answer) {
	fmt.Printf("group S: %v\n", ans.Users)
	fmt.Printf("POI set R (anchor %d): %v\n", ans.Anchor, ans.POIs)
	fmt.Printf("max road distance: %.4f\n", ans.MaxDistance)
	if ans.Truncated {
		fmt.Println("(budget-truncated: best fully-evaluated answer, not necessarily optimal)")
	}
}
