// Command docs-lint checks the repository's markdown documentation for
// broken relative links, so a renamed file or section can't silently rot
// the cross-references that stitch README.md and docs/ together. CI runs
// it (make docs-lint) over README.md and docs/*.md.
//
// Checked: every inline [text](target) link whose target is not an
// external URL (http/https/mailto) or a pure in-page fragment. The
// target path must exist relative to the linking file, and when the
// target is a markdown file with a #fragment, the fragment must match a
// heading in that file under GitHub's anchor rules.
//
// Usage:
//
//	docs-lint README.md docs/*.md
//
// Exits 1 listing every broken link; 0 when all links resolve.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"unicode"
)

// linkRe matches inline markdown links [text](target), skipping images.
// Nested brackets in the text and parentheses in targets are out of
// scope — the repo's docs don't use them.
var linkRe = regexp.MustCompile(`(^|[^!])\[[^\]]*\]\(([^)\s]+)\)`)

var headingRe = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*$`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: docs-lint <file.md> ...")
		os.Exit(2)
	}
	broken := 0
	for _, file := range os.Args[1:] {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docs-lint: %v\n", err)
			os.Exit(2)
		}
		for _, bad := range check(file, string(data)) {
			fmt.Fprintf(os.Stderr, "docs-lint: %s\n", bad)
			broken++
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "docs-lint: %d broken link(s)\n", broken)
		os.Exit(1)
	}
	fmt.Printf("docs-lint: %d file(s) OK\n", len(os.Args)-1)
}

// check returns a message per broken link in one file's content.
func check(file, content string) (bad []string) {
	// Strip fenced code blocks: their brackets aren't links.
	content = regexp.MustCompile("(?s)```.*?```").ReplaceAllString(content, "")
	for _, m := range linkRe.FindAllStringSubmatch(content, -1) {
		target := m[2]
		if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
			continue // external; availability is not this tool's job
		}
		path, frag, _ := strings.Cut(target, "#")
		if path == "" {
			// In-page fragment: check against this file's own headings.
			if !hasAnchor(content, frag) {
				bad = append(bad, fmt.Sprintf("%s: link %q: no heading matches #%s", file, target, frag))
			}
			continue
		}
		resolved := filepath.Join(filepath.Dir(file), path)
		info, err := os.Stat(resolved)
		if err != nil {
			bad = append(bad, fmt.Sprintf("%s: link %q: %s does not exist", file, target, resolved))
			continue
		}
		if frag == "" {
			continue
		}
		if info.IsDir() || !strings.HasSuffix(path, ".md") {
			bad = append(bad, fmt.Sprintf("%s: link %q: fragment on a non-markdown target", file, target))
			continue
		}
		data, err := os.ReadFile(resolved)
		if err != nil {
			bad = append(bad, fmt.Sprintf("%s: link %q: %v", file, target, err))
			continue
		}
		if !hasAnchor(string(data), frag) {
			bad = append(bad, fmt.Sprintf("%s: link %q: no heading in %s matches #%s", file, target, resolved, frag))
		}
	}
	return bad
}

// hasAnchor reports whether any heading in content slugifies to frag.
func hasAnchor(content, frag string) bool {
	for _, h := range headingRe.FindAllStringSubmatch(content, -1) {
		if slug(h[1]) == frag {
			return true
		}
	}
	return false
}

// slug reproduces GitHub's heading-anchor rule: lowercase, spaces to
// hyphens, everything except letters, digits, hyphens and underscores
// dropped (backticks, punctuation, §, arrows, ...).
func slug(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r == ' ':
			b.WriteByte('-')
		case r == '-' || r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(r)
		}
	}
	return b.String()
}
