// Command gpssn-bench regenerates the paper's experimental tables and
// figures (Section 6 plus the DESIGN.md ablations).
//
// Usage:
//
//	gpssn-bench -exp fig8 -scale 0.1 -queries 8
//	gpssn-bench -exp all -scale 0.1 > results.txt
//	gpssn-bench -list
//
// Scale 1.0 reproduces the paper's dataset sizes (30K road vertices, 30K
// users, 10K POIs for the synthetic sweeps; Table 2 sizes for the real-like
// datasets); smaller scales preserve the figures' shapes at a fraction of
// the runtime.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gpssn/internal/bench"
	"gpssn/internal/serve"
)

func main() {
	// The serving load generator and the road-churn benchmark live outside
	// internal/bench (they drive the public facade); register them so
	// -exp serve/churn and -list see them.
	bench.Register(serve.LoadExperiment())
	bench.Register(serve.ChurnExperiment())
	bench.Register(serve.WALChurnExperiment())
	var (
		exp     = flag.String("exp", "all", "experiment name, comma-separated list, or 'all'")
		scale   = flag.Float64("scale", 0.1, "dataset scale relative to the paper (1.0 = published sizes)")
		queries = flag.Int("queries", 8, "query issuers per configuration")
		seed    = flag.Int64("seed", 1, "generation seed")
		samples = flag.Int("samples", 20, "Baseline estimator samples (paper: 100)")
		jsonOut = flag.String("jsonout", "", "file for the JSON report of JSON-capable experiments (e.g. choracle)")
		warmup  = flag.Int("warmup", 0, "serve: leading requests excluded from latency percentiles")
		compare = flag.Bool("compare", false, "serve: run memo-off then memo-on over the same seed and report both")
		list    = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-22s %s\n", e.Name, e.Description)
		}
		return
	}

	cfg := bench.RunConfig{
		Scale: *scale, Queries: *queries, Seed: *seed, BaselineSamples: *samples,
		JSONOut: *jsonOut, Warmup: *warmup, Compare: *compare,
	}
	run := func(e bench.Experiment) error {
		start := time.Now()
		if err := e.Run(os.Stdout, cfg); err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		fmt.Printf("# [%s took %s]\n\n", e.Name, time.Since(start).Round(time.Millisecond))
		return nil
	}

	if *exp == "all" {
		for _, e := range bench.Experiments() {
			if err := run(e); err != nil {
				fmt.Fprintln(os.Stderr, "gpssn-bench:", err)
				os.Exit(1)
			}
		}
		return
	}
	for _, name := range strings.Split(*exp, ",") {
		name = strings.TrimSpace(name)
		e, ok := bench.Find(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "gpssn-bench: unknown experiment %q; available: %v\n", name, bench.SortedNames())
			os.Exit(2)
		}
		if err := run(e); err != nil {
			fmt.Fprintln(os.Stderr, "gpssn-bench:", err)
			os.Exit(1)
		}
	}
}
