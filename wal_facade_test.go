package gpssn

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gpssn/internal/socialnet"
)

// walConfig is the durability test configuration: small pivots for fast
// builds, a WAL in a per-test directory, single-threaded by default so
// answer comparisons are noise-free.
func walConfig(t *testing.T) Config {
	t.Helper()
	cfg := DefaultConfig()
	cfg.RoadPivots = 3
	cfg.SocialPivots = 3
	cfg.Seed = 11
	cfg.Parallelism = 1
	cfg.WALPath = filepath.Join(t.TempDir(), "updates.wal")
	return cfg
}

// walQueries is the small answer-comparison workload used by the
// durability gates.
var walQueries = []Query{
	{GroupSize: 2, Gamma: 0.2, Theta: 0.3, Radius: 2},
	{GroupSize: 3, Gamma: 0.3, Theta: 0.4, Radius: 2.5},
}

// mustMatchDB gates that two DBs answer identically over the comparison
// workload.
func mustMatchDB(t *testing.T, got, want *DB, label string) {
	t.Helper()
	for _, q := range walQueries {
		for user := 0; user < want.Network().NumUsers(); user += 7 {
			ga, _, gerr := got.Query(user, q)
			wa, _, werr := want.Query(user, q)
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("%s user=%d q=%+v: err mismatch (got=%v want=%v)", label, user, q, gerr, werr)
			}
			if gerr != nil {
				if !errors.Is(gerr, ErrNoAnswer) {
					t.Fatalf("%s user=%d: unexpected error %v", label, user, gerr)
				}
				continue
			}
			if !sameAnswer(ga, wa) {
				t.Fatalf("%s user=%d q=%+v:\n got  %s maxdist=%x\n want %s maxdist=%x",
					label, user, q, answerKey(ga), ga.MaxDistance, answerKey(wa), wa.MaxDistance)
			}
		}
	}
}

// TestWALDurabilityRoundTrip is the basic log-then-apply gate: mutate a
// WAL-backed DB, "crash" (no Close, no Snapshot), and reopen the same
// base network against the surviving log. The recovered DB must answer
// bit-identically to the still-running one.
func TestWALDurabilityRoundTrip(t *testing.T) {
	cfg := walConfig(t)
	db, err := Open(churnNetwork(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	churnScript(t, db, 3)
	st := db.WALStats()
	if !st.Enabled || st.LastLSN == 0 || st.AppliedLSN != st.LastLSN {
		t.Fatalf("WAL should have recorded the churn: %+v", st)
	}

	// Crash: the original process never closed its log. SyncAlways means
	// every acknowledged update is already on disk.
	rec, err := Open(churnNetwork(t), cfg)
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	if got := rec.WALStats(); got.AppliedLSN != st.AppliedLSN {
		t.Fatalf("recovered AppliedLSN %d, want %d", got.AppliedLSN, st.AppliedLSN)
	}
	found := false
	for _, n := range rec.Health().Notes {
		if len(n) >= 3 && n[:3] == "wal" {
			found = true
		}
	}
	if !found {
		t.Fatalf("recovery should leave a wal note in Health: %v", rec.Health().Notes)
	}
	mustMatchDB(t, rec, db, "recovered")

	// Recovery must also leave the DB fully updatable: more churn and a
	// Compact on both sides keep them in lockstep.
	churnScript(t, db, 1)
	churnScript(t, rec, 1)
	if err := rec.Compact(); err != nil {
		t.Fatalf("post-recovery Compact: %v", err)
	}
	mustMatchDB(t, rec, db, "recovered+churn+compact")
}

// TestWALCheckpointTruncatesAndPairs: Snapshot is the checkpoint — it
// truncates the log, and the checkpoint+log pair restores the exact
// state. A plain Open against the post-checkpoint log must refuse: its
// records start past the fresh network's applied LSN.
func TestWALCheckpointTruncatesAndPairs(t *testing.T) {
	cfg := walConfig(t)
	ckpt := filepath.Join(filepath.Dir(cfg.WALPath), "state.ckpt")
	db, err := Open(churnNetwork(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	churnScript(t, db, 2)
	preLSN := db.WALStats().AppliedLSN
	if err := db.Snapshot(ckpt); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if st := db.WALStats(); st.Pending != 0 || st.StartLSN != preLSN+1 {
		t.Fatalf("checkpoint should truncate the log: %+v", st)
	}

	// Post-checkpoint updates land in the truncated log.
	churnScript(t, db, 1)
	if st := db.WALStats(); st.Pending == 0 || st.AppliedLSN <= preLSN {
		t.Fatalf("post-checkpoint churn should append: %+v", st)
	}

	// The pair restores everything: checkpoint base + replayed tail.
	rec, err := OpenSnapshot(ckpt, cfg)
	if err != nil {
		t.Fatalf("OpenSnapshot with wal: %v", err)
	}
	if got, want := rec.WALStats().AppliedLSN, db.WALStats().AppliedLSN; got != want {
		t.Fatalf("recovered AppliedLSN %d, want %d", got, want)
	}
	mustMatchDB(t, rec, db, "checkpoint+tail")

	// A fresh network is NOT the base this log pairs with anymore.
	_, err = Open(churnNetwork(t), cfg)
	if !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("Open against a checkpointed log: err=%v, want ErrWALCorrupt", err)
	}
	var we *WALError
	if !errors.As(err, &we) {
		t.Fatalf("error %T is not *WALError", err)
	}
}

// TestWALRejectionAtomicity is the update-path error-atomicity gate:
// every ErrInvalidInput rejection leaves the WAL, the answer cache, and
// the shared-work memo exactly as they were — no record, no flush, no
// memo churn.
func TestWALRejectionAtomicity(t *testing.T) {
	cfg := walConfig(t)
	cfg.CacheSize = 32
	db, err := Open(churnNetwork(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One good update, then a cached answer to watch.
	if _, err := db.AddPOI(0.5, 0.5, 0); err != nil {
		t.Fatal(err)
	}
	q := walQueries[0]
	if _, _, err := db.Query(3, q); err != nil && !errors.Is(err, ErrNoAnswer) {
		t.Fatal(err)
	}

	walBefore := db.WALStats()
	memoBefore := db.SharedWorkStats()

	rejections := []struct {
		name string
		call func() error
	}{
		{"AddPOI/keyword", func() error { _, err := db.AddPOI(0.1, 0.1, 99); return err }},
		{"AddPOI/nokeywords", func() error { _, err := db.AddPOI(0.1, 0.1); return err }},
		{"AddPOI/nan", func() error { _, err := db.AddPOI(math.NaN(), 0, 0); return err }},
		{"AddUser/interest", func() error { _, err := db.AddUser(0.1, 0.1, []float64{2}); return err }},
		{"AddUser/inf", func() error { _, err := db.AddUser(math.Inf(1), 0, nil); return err }},
		{"AddFriendship/self", func() error { _, err := db.AddFriendship(4, 4); return err }},
		{"AddFriendship/range", func() error { _, err := db.AddFriendship(0, 1e6); return err }},
		{"AddRoadVertex/nan", func() error { _, err := db.AddRoadVertex(math.NaN(), 0); return err }},
		{"AddRoadEdge/self", func() error { _, err := db.AddRoadEdge(2, 2); return err }},
		{"AddRoadEdge/range", func() error { _, err := db.AddRoadEdge(-1, 2); return err }},
		{"AddRoadEdge/dup", func() error {
			ed := db.Network().Dataset().Road.EdgeAt(0)
			_, err := db.AddRoadEdge(int(ed.U), int(ed.V))
			return err
		}},
	}
	for _, rj := range rejections {
		if err := rj.call(); !errors.Is(err, ErrInvalidInput) {
			t.Fatalf("%s: err=%v, want ErrInvalidInput", rj.name, err)
		}
		if st := db.WALStats(); st.LastLSN != walBefore.LastLSN || st.Appends != walBefore.Appends {
			t.Fatalf("%s: rejection appended to the WAL: before=%+v after=%+v", rj.name, walBefore, st)
		}
		if memo := db.SharedWorkStats(); memo != memoBefore {
			t.Fatalf("%s: rejection churned the shared-work memo: before=%+v after=%+v", rj.name, memoBefore, memo)
		}
		if _, st, err := db.Query(3, q); err == nil || errors.Is(err, ErrNoAnswer) {
			if !st.CacheHit {
				t.Fatalf("%s: rejection flushed the answer cache", rj.name)
			}
		}
	}

	// A duplicate friendship is a no-op, not an error — and logs nothing.
	ds := db.Network().Dataset()
	var fa, fb = -1, -1
	for a := 0; a < ds.Social.NumUsers() && fa < 0; a++ {
		for b := a + 1; b < ds.Social.NumUsers(); b++ {
			if ds.Social.AreFriends(socialnet.UserID(a), socialnet.UserID(b)) {
				fa, fb = a, b
				break
			}
		}
	}
	if fa < 0 {
		t.Fatal("no existing friendship in the test network")
	}
	added, err := db.AddFriendship(fa, fb)
	if err != nil || added {
		t.Fatalf("duplicate friendship: added=%v err=%v, want no-op", added, err)
	}
	if st := db.WALStats(); st.LastLSN != walBefore.LastLSN {
		t.Fatalf("duplicate friendship appended to the WAL: %+v", st)
	}
}

// TestWALSyncPolicies drives each fsync policy end to end through the
// facade; Close flushes batched appends so the round-trip always holds
// for a clean shutdown.
func TestWALSyncPolicies(t *testing.T) {
	for _, sync := range []string{"always", "batch", "none"} {
		t.Run(sync, func(t *testing.T) {
			cfg := walConfig(t)
			cfg.WALSync = sync
			cfg.WALFlushWindow = time.Millisecond
			db, err := Open(churnNetwork(t), cfg)
			if err != nil {
				t.Fatal(err)
			}
			churnScript(t, db, 2)
			if got := db.WALStats().Sync; got != sync {
				t.Fatalf("WALStats().Sync = %q, want %q", got, sync)
			}
			if err := db.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			rec, err := Open(churnNetwork(t), cfg)
			if err != nil {
				t.Fatalf("reopen after clean Close: %v", err)
			}
			mustMatchDB(t, rec, db, sync)
		})
	}
	t.Run("invalid", func(t *testing.T) {
		cfg := walConfig(t)
		cfg.WALSync = "fsync-sometimes"
		if _, err := Open(churnNetwork(t), cfg); !errors.Is(err, ErrInvalidInput) {
			t.Fatalf("bogus WALSync: err=%v, want ErrInvalidInput", err)
		}
	})
}

// TestWALAutoCheckpoint: once the log outgrows WALAutoCheckpointBytes, a
// background checkpoint writes CheckpointPath and truncates the log —
// without blocking the mutating caller — and the checkpoint+log pair
// keeps restoring the exact state.
func TestWALAutoCheckpoint(t *testing.T) {
	cfg := walConfig(t)
	cfg.WALAutoCheckpointBytes = 256
	cfg.CheckpointPath = filepath.Join(filepath.Dir(cfg.WALPath), "auto.ckpt")
	db, err := Open(churnNetwork(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	churnScript(t, db, 2)
	waitMaintenance(t, db)
	if _, err := os.Stat(cfg.CheckpointPath); err != nil {
		t.Fatalf("auto-checkpoint never wrote %s: %v", cfg.CheckpointPath, err)
	}
	// More churn after the checkpoint, then restore from the pair.
	churnScript(t, db, 1)
	waitMaintenance(t, db)
	rec, err := OpenSnapshot(cfg.CheckpointPath, cfg)
	if err != nil {
		t.Fatalf("OpenSnapshot(auto checkpoint): %v", err)
	}
	mustMatchDB(t, rec, db, "auto-checkpoint")
}

// TestOverlayAutoCompact: with OverlayCompactPortals set, sustained road
// churn triggers the background Compact on its own; queries keep
// answering throughout and the overlay drains.
func TestOverlayAutoCompact(t *testing.T) {
	net := churnNetwork(t)
	cfg := DefaultConfig()
	cfg.RoadPivots = 3
	cfg.SocialPivots = 3
	cfg.Seed = 11
	cfg.Parallelism = 1
	cfg.OverlayCompactPortals = 4
	db, err := Open(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := walQueries[0]
	deadline := time.Now().Add(30 * time.Second)
	drained := false
	for round := 0; !drained && time.Now().Before(deadline); round++ {
		churnScript(t, db, 1)
		for i := 0; i < 5; i++ {
			if _, _, err := db.Query(i*7%60, q); err != nil && !errors.Is(err, ErrNoAnswer) {
				t.Fatalf("query during auto-compact churn: %v", err)
			}
		}
		waitMaintenance(t, db)
		if ov := db.RoadOverlayStats(); !ov.Active {
			drained = true
		}
	}
	if !drained {
		t.Fatalf("overlay never drained under OverlayCompactPortals: %+v", db.RoadOverlayStats())
	}
	compareVsFreshTwin(t, db, "auto-compact")
}

// TestDBCloseSemantics: Close is idempotent, flushes the log, stops
// updates on a WAL-backed DB, and leaves queries working.
func TestDBCloseSemantics(t *testing.T) {
	cfg := walConfig(t)
	db, err := Open(churnNetwork(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	churnScript(t, db, 1)
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := db.AddRoadVertex(9, 9); err == nil {
		t.Fatal("update after Close should fail: its durability cannot be honoured")
	}
	if _, _, err := db.Query(0, walQueries[0]); err != nil && !errors.Is(err, ErrNoAnswer) {
		t.Fatalf("query after Close: %v", err)
	}
	// A DB without a WAL closes trivially.
	cfg2 := walConfig(t)
	cfg2.WALPath = ""
	db2, err := Open(churnNetwork(t), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.Close(); err != nil {
		t.Fatalf("Close without wal: %v", err)
	}
}

// waitMaintenance waits for any in-flight background maintenance pass to
// finish.
func waitMaintenance(t *testing.T, db *DB) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for db.Maintaining() {
		if time.Now().After(deadline) {
			t.Fatal("maintenance pass never finished")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
