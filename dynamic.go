package gpssn

import (
	"fmt"
	"math"

	"gpssn/internal/geo"
	"gpssn/internal/model"
	"gpssn/internal/roadnet"
	"gpssn/internal/socialnet"
	"gpssn/internal/wal"
)

// finite reports whether every coordinate is an ordinary float within
// model.MaxCoord: NaN, ±Inf, and over-magnitude coordinates would silently
// corrupt the snapping search and every downstream distance, so the facade
// rejects them up front.
func finite(vs ...float64) bool {
	for _, v := range vs {
		if !model.CoordOK(v) {
			return false
		}
	}
	return true
}

// Dynamic updates. A DB accepts new POIs, users, friendships, road
// vertices, and road edges after Open. Object additions live in a small
// delta that queries scan exactly (the main+delta design); road
// mutations keep the distance oracle attached through a delta-overlay
// (internal/roadnet/overlay.go) so queries stay oracle-class and exact
// under write traffic. Compact rebuilds the indexes and re-contracts the
// oracle in the background to absorb everything and restore full pruning
// power.
//
// Locking: every updater takes db.upd (the update-class lock) first,
// then db.mu exclusively. Queries take only db.mu's read side, so an
// update serializes against in-flight queries and other updates, and a
// concurrent query sees the network either entirely before or entirely
// after an update. Compact holds db.upd for its whole (possibly long)
// rebuild but db.mu only for two short critical sections — updates wait,
// queries do not (docs/CONCURRENCY.md).
//
// Invalidation is per update kind: a change that provably cannot affect
// any cached answer (an isolated road vertex, a duplicate friendship)
// flushes nothing.
//
// Durability (durable.go): with Config.WALPath set, each mutator splits
// into a check step (all validation and every precondition that could
// fail, run first — a rejected call touches neither the WAL nor any
// state), a WAL append of the mutation's arguments, and an apply step
// (deterministic given the state it runs against, shared verbatim with
// crash-recovery replay). No-ops — a duplicate friendship — are detected
// in the check step and never logged.

// AddPOI adds a POI at (x, y) — snapped onto the nearest road segment —
// with the given keywords, and returns its id. The POI is queryable
// immediately. Safe for concurrent use; blocks until in-flight queries
// drain.
func (db *DB) AddPOI(x, y float64, keywords ...int) (int, error) {
	id, err := db.addPOI(x, y, keywords)
	if err == nil {
		db.maybeMaintain()
	}
	return id, err
}

func (db *DB) addPOI(x, y float64, keywords []int) (int, error) {
	db.upd.Lock()
	defer db.upd.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.checkAddPOI(x, y, keywords); err != nil {
		return 0, err
	}
	lsn, err := db.walAppend(wal.KindAddPOI, encodeAddPOI(x, y, keywords))
	if err != nil {
		return 0, err
	}
	id, err := db.applyAddPOI(x, y, keywords)
	if err != nil {
		db.walRollback(lsn)
		return 0, err
	}
	db.walCommit(lsn)
	return id, nil
}

func (db *DB) checkAddPOI(x, y float64, keywords []int) error {
	if !finite(x, y) {
		return invalidf("POI coordinates (%v, %v) must be finite", x, y)
	}
	if len(keywords) == 0 {
		return invalidf("POI needs at least one keyword")
	}
	for _, k := range keywords {
		if k < 0 || k >= db.net.ds.NumTopics {
			return invalidf("POI keyword %d outside vocabulary [0,%d)", k, db.net.ds.NumTopics)
		}
	}
	if _, ok := db.net.ds.Road.SnapPoint(geo.Pt(x, y)); !ok {
		return fmt.Errorf("gpssn: no road to snap the POI onto")
	}
	return nil
}

func (db *DB) applyAddPOI(x, y float64, keywords []int) (int, error) {
	at, ok := db.net.ds.Road.SnapPoint(geo.Pt(x, y))
	if !ok {
		return 0, fmt.Errorf("gpssn: no road to snap the POI onto")
	}
	id := len(db.net.ds.POIs)
	p := model.POI{
		ID:       model.POIID(id),
		At:       at,
		Loc:      db.net.ds.Road.Location(at),
		Keywords: append([]int(nil), keywords...),
	}
	if err := db.engine.AddPOI(p); err != nil {
		return 0, err
	}
	db.cache.invalidate()
	return id, nil
}

// AddUser adds a user with a home at (x, y) and the given interest vector,
// returning the new id. Add friendships with AddFriendship to make the
// user eligible for groups of size > 1. Safe for concurrent use; blocks
// until in-flight queries drain.
func (db *DB) AddUser(x, y float64, interests []float64) (int, error) {
	id, err := db.addUser(x, y, interests)
	if err == nil {
		db.maybeMaintain()
	}
	return id, err
}

func (db *DB) addUser(x, y float64, interests []float64) (int, error) {
	db.upd.Lock()
	defer db.upd.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.checkAddUser(x, y, interests); err != nil {
		return 0, err
	}
	lsn, err := db.walAppend(wal.KindAddUser, encodeAddUser(x, y, interests))
	if err != nil {
		return 0, err
	}
	id, err := db.applyAddUser(x, y, interests)
	if err != nil {
		db.walRollback(lsn)
		return 0, err
	}
	db.walCommit(lsn)
	return id, nil
}

func (db *DB) checkAddUser(x, y float64, interests []float64) error {
	if !finite(x, y) {
		return invalidf("user coordinates (%v, %v) must be finite", x, y)
	}
	for f, p := range interests {
		if math.IsNaN(p) || p < 0 || p > 1 {
			return invalidf("user interest %d = %v outside [0,1]", f, p)
		}
	}
	if _, ok := db.net.ds.Road.SnapPoint(geo.Pt(x, y)); !ok {
		return fmt.Errorf("gpssn: no road to snap the user onto")
	}
	return nil
}

func (db *DB) applyAddUser(x, y float64, interests []float64) (int, error) {
	at, ok := db.net.ds.Road.SnapPoint(geo.Pt(x, y))
	if !ok {
		return 0, fmt.Errorf("gpssn: no road to snap the user onto")
	}
	id := len(db.net.ds.Users)
	u := model.User{
		ID:        socialnet.UserID(id),
		At:        at,
		Loc:       db.net.ds.Road.Location(at),
		Interests: append([]float64(nil), interests...),
	}
	if err := db.engine.AddUser(u); err != nil {
		return 0, err
	}
	db.cache.invalidate()
	return id, nil
}

// AddFriendship records a friendship between two users (existing or newly
// added). The bool reports whether the social graph actually changed: a
// friendship that already exists is a no-op, returns (false, nil), and —
// because it cannot affect any answer — does not flush the answer cache
// (or log anything). Out-of-range ids and self-friendships return an
// error matching ErrInvalidInput (they used to panic). Safe for
// concurrent use; blocks until in-flight queries drain.
func (db *DB) AddFriendship(a, b int) (bool, error) {
	added, err := db.addFriendship(a, b)
	if err == nil && added {
		db.maybeMaintain()
	}
	return added, err
}

func (db *DB) addFriendship(a, b int) (bool, error) {
	db.upd.Lock()
	defer db.upd.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.checkAddFriendship(a, b); err != nil {
		return false, err
	}
	if db.net.ds.Social.AreFriends(socialnet.UserID(a), socialnet.UserID(b)) {
		return false, nil // no-op: nothing to make durable
	}
	lsn, err := db.walAppend(wal.KindAddFriendship, encodePair(a, b))
	if err != nil {
		return false, err
	}
	if err := db.applyAddFriendship(a, b); err != nil {
		db.walRollback(lsn)
		return false, err
	}
	db.walCommit(lsn)
	return true, nil
}

func (db *DB) checkAddFriendship(a, b int) error {
	n := len(db.net.ds.Users)
	if a < 0 || a >= n || b < 0 || b >= n {
		return invalidf("friendship %d-%d out of range [0,%d)", a, b, n)
	}
	if a == b {
		return invalidf("self-friendship at user %d", a)
	}
	return nil
}

func (db *DB) applyAddFriendship(a, b int) error {
	added, err := db.engine.AddFriendship(socialnet.UserID(a), socialnet.UserID(b))
	if err != nil {
		return err
	}
	if !added {
		// The caller pre-checked AreFriends, so this only happens when a
		// WAL is replayed against a base state that already holds the
		// friendship — a log/state mismatch, not a no-op.
		return fmt.Errorf("gpssn: friendship %d-%d already present", a, b)
	}
	db.cache.invalidate()
	return nil
}

// AddRoadVertex adds a road intersection at (x, y) and returns its id.
// The new vertex is isolated until AddRoadEdge connects it; since an
// isolated vertex cannot change any distance, this update invalidates
// nothing — no cached answer, no memoized work, no pruning state. Safe
// for concurrent use; blocks until in-flight queries drain.
func (db *DB) AddRoadVertex(x, y float64) (int, error) {
	id, err := db.addRoadVertex(x, y)
	if err == nil {
		db.maybeMaintain()
	}
	return id, err
}

func (db *DB) addRoadVertex(x, y float64) (int, error) {
	db.upd.Lock()
	defer db.upd.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.checkAddRoadVertex(x, y); err != nil {
		return 0, err
	}
	lsn, err := db.walAppend(wal.KindAddRoadVertex, encodePoint(x, y))
	if err != nil {
		return 0, err
	}
	id, err := db.applyAddRoadVertex(x, y)
	if err != nil {
		db.walRollback(lsn)
		return 0, err
	}
	db.walCommit(lsn)
	return id, nil
}

func (db *DB) checkAddRoadVertex(x, y float64) error {
	if !finite(x, y) {
		return invalidf("road vertex coordinates (%v, %v) must be finite", x, y)
	}
	return nil
}

func (db *DB) applyAddRoadVertex(x, y float64) (int, error) {
	v, err := db.engine.AddRoadVertex(geo.Pt(x, y))
	if err != nil {
		return 0, err
	}
	return int(v), nil
}

// AddRoadEdge adds a road segment between two existing intersections,
// weighted by their Euclidean distance, and returns its id. The distance
// oracle stays attached — a delta-overlay composes exact answers over
// the mutated topology at oracle speed — so queries never fall back to
// plain Dijkstra under write traffic. Self-loops, out-of-range
// endpoints, and duplicate edges return an error matching
// ErrInvalidInput (the internal roadnet panic is reserved for misuse of
// the internal API). The answer cache and the shared-work memo are
// flushed: a new segment can shorten any distance. Call Compact
// periodically under sustained churn — or set
// Config.OverlayCompactPortals to have it triggered automatically — to
// re-contract the oracle and re-arm pivot-based distance pruning. Safe
// for concurrent use; blocks until in-flight queries drain.
func (db *DB) AddRoadEdge(u, v int) (int, error) {
	id, err := db.addRoadEdge(u, v)
	if err == nil {
		db.maybeMaintain()
	}
	return id, err
}

func (db *DB) addRoadEdge(u, v int) (int, error) {
	db.upd.Lock()
	defer db.upd.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.checkAddRoadEdge(u, v); err != nil {
		return 0, err
	}
	lsn, err := db.walAppend(wal.KindAddRoadEdge, encodePair(u, v))
	if err != nil {
		return 0, err
	}
	id, err := db.applyAddRoadEdge(u, v)
	if err != nil {
		db.walRollback(lsn)
		return 0, err
	}
	db.walCommit(lsn)
	return id, nil
}

func (db *DB) checkAddRoadEdge(u, v int) error {
	n := db.net.ds.Road.NumVertices()
	if u < 0 || u >= n || v < 0 || v >= n {
		return invalidf("road edge %d-%d out of range [0,%d)", u, v, n)
	}
	if u == v {
		return invalidf("self-loop road edge at vertex %d", u)
	}
	if db.net.ds.Road.HasEdge(roadnet.VertexID(u), roadnet.VertexID(v)) {
		return invalidf("duplicate road edge %d-%d", u, v)
	}
	return nil
}

func (db *DB) applyAddRoadEdge(u, v int) (int, error) {
	id, err := db.engine.AddRoadEdge(roadnet.VertexID(u), roadnet.VertexID(v))
	if err != nil {
		return 0, err
	}
	db.cache.invalidate()
	return int(id), nil
}

// RoadOverlayStats describes the delta-overlay currently composing road
// distances, if any: how many vertices/edges have been appended since
// the static oracle was built, the portal count (the patch matrix is
// Portals², so this is the number to watch under sustained churn), and
// how many composed queries it has served. Active is false when the
// oracle is static (no road mutation since Open or the last Compact).
// gpssn-serve surfaces it under /statsz.
type RoadOverlayStats = roadnet.OverlayStats

// RoadOverlayStats snapshots the road delta-overlay state. Safe for
// concurrent use.
func (db *DB) RoadOverlayStats() RoadOverlayStats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.net.ds.Road.OverlayStats()
}

// PendingUpdates returns how many dynamic updates await compaction. Safe
// for concurrent use.
func (db *DB) PendingUpdates() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.engine.PendingUpdates()
}

// cloneDataset copies the dataset for an off-lock rebuild. The road
// graph is deep-cloned (Open attaches a fresh oracle to it, which must
// not race queries reading the live one); the social graph and the
// user/POI slices are shared — db.upd blocks every mutation for the
// duration of the rebuild, and capping the slice headers keeps
// post-swap appends from aliasing the old dataset.
func cloneDataset(ds *model.Dataset) *model.Dataset {
	return &model.Dataset{
		Name:      ds.Name,
		Road:      ds.Road.Clone(),
		Social:    ds.Social,
		Users:     ds.Users[:len(ds.Users):len(ds.Users)],
		POIs:      ds.POIs[:len(ds.POIs):len(ds.POIs)],
		NumTopics: ds.NumTopics,
	}
}

// Compact rebuilds the indexes over the grown dataset and re-contracts
// the distance oracle, absorbing all dynamic updates (the road
// delta-overlay drains into the fresh static oracle) and restoring full
// pruning power. The rebuild runs in the background against a cloned
// topology: queries keep being answered by the live engine for its whole
// duration — exactly, through the overlay — and only the final swap
// takes the exclusive lock, briefly. Other updates block until the
// rebuild finishes (they would invalidate the clone). Health().Rebuilding
// is set while the rebuild is in flight; on failure the live engine
// keeps serving unchanged and the error is also recorded as a Health
// note. Safe for concurrent use.
func (db *DB) Compact() error {
	db.upd.Lock()
	defer db.upd.Unlock()

	// Short critical section 1: clone the topology and mark rebuilding.
	db.mu.Lock()
	snap := cloneDataset(db.net.ds)
	db.health.Rebuilding = true
	db.mu.Unlock()

	// Off-lock rebuild. db.upd guarantees the clone cannot go stale: no
	// mutation can land between the clone and the swap. The rebuild runs
	// without WAL config: the clone already contains every applied update,
	// the live log stays attached across the swap (Compact changes no
	// logical state, so the log still replays onto the same checkpoint),
	// and reopening the log file here would double-apply its records.
	cfg := db.cfg
	cfg.WALPath = ""
	freshNet := &Network{ds: snap}
	fresh, err := Open(freshNet, cfg)

	// Short critical section 2: swap the rebuilt world in, or roll back.
	db.mu.Lock()
	defer db.mu.Unlock()
	db.health.Rebuilding = false
	if err != nil {
		db.health.Notes = append(db.health.Notes,
			fmt.Sprintf("background re-contraction failed (%v); previous engine kept serving", err))
		return fmt.Errorf("gpssn: compaction failed: %w", err)
	}
	db.net = freshNet
	db.engine = fresh.engine
	db.health.OracleRequested = fresh.health.OracleRequested
	db.health.OracleActive = fresh.health.OracleActive
	db.health.Degraded = fresh.health.Degraded
	db.health.Notes = append(db.health.Notes, fresh.health.Notes...)
	db.BuildTime = fresh.BuildTime
	db.cache.invalidate()
	return nil
}
