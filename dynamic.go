package gpssn

import (
	"fmt"
	"math"

	"gpssn/internal/geo"
	"gpssn/internal/model"
	"gpssn/internal/socialnet"
)

// finite reports whether every coordinate is an ordinary float within
// model.MaxCoord: NaN, ±Inf, and over-magnitude coordinates would silently
// corrupt the snapping search and every downstream distance, so the facade
// rejects them up front.
func finite(vs ...float64) bool {
	for _, v := range vs {
		if !model.CoordOK(v) {
			return false
		}
	}
	return true
}

// Dynamic updates. A DB accepts new POIs, users, and friendships after
// Open: additions live in a small delta that queries scan exactly (the
// main+delta design), so answers stay optimal at slightly higher cost.
// Compact rebuilds the indexes to absorb the delta and restore full
// pruning power.
//
// Every updater below takes the DB's exclusive lock, so updates serialize
// against each other and against in-flight queries: a concurrent query
// sees the network either entirely before or entirely after an update.

// AddPOI adds a POI at (x, y) — snapped onto the nearest road segment —
// with the given keywords, and returns its id. The POI is queryable
// immediately. Safe for concurrent use; blocks until in-flight queries
// drain.
func (db *DB) AddPOI(x, y float64, keywords ...int) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !finite(x, y) {
		return 0, invalidf("POI coordinates (%v, %v) must be finite", x, y)
	}
	if len(keywords) == 0 {
		return 0, invalidf("POI needs at least one keyword")
	}
	for _, k := range keywords {
		if k < 0 || k >= db.net.ds.NumTopics {
			return 0, invalidf("POI keyword %d outside vocabulary [0,%d)", k, db.net.ds.NumTopics)
		}
	}
	at, ok := db.net.ds.Road.SnapPoint(geo.Pt(x, y))
	if !ok {
		return 0, fmt.Errorf("gpssn: no road to snap the POI onto")
	}
	id := len(db.net.ds.POIs)
	p := model.POI{
		ID:       model.POIID(id),
		At:       at,
		Loc:      db.net.ds.Road.Location(at),
		Keywords: append([]int(nil), keywords...),
	}
	if err := db.engine.AddPOI(p); err != nil {
		return 0, err
	}
	db.cache.invalidate()
	return id, nil
}

// AddUser adds a user with a home at (x, y) and the given interest vector,
// returning the new id. Add friendships with AddFriendship to make the
// user eligible for groups of size > 1. Safe for concurrent use; blocks
// until in-flight queries drain.
func (db *DB) AddUser(x, y float64, interests []float64) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !finite(x, y) {
		return 0, invalidf("user coordinates (%v, %v) must be finite", x, y)
	}
	for f, p := range interests {
		if math.IsNaN(p) || p < 0 || p > 1 {
			return 0, invalidf("user interest %d = %v outside [0,1]", f, p)
		}
	}
	at, ok := db.net.ds.Road.SnapPoint(geo.Pt(x, y))
	if !ok {
		return 0, fmt.Errorf("gpssn: no road to snap the user onto")
	}
	id := len(db.net.ds.Users)
	u := model.User{
		ID:        socialnet.UserID(id),
		At:        at,
		Loc:       db.net.ds.Road.Location(at),
		Interests: append([]float64(nil), interests...),
	}
	if err := db.engine.AddUser(u); err != nil {
		return 0, err
	}
	db.cache.invalidate()
	return id, nil
}

// AddFriendship records a friendship between two users (existing or newly
// added). Safe for concurrent use; blocks until in-flight queries drain.
func (db *DB) AddFriendship(a, b int) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.engine.AddFriendship(socialnet.UserID(a), socialnet.UserID(b)); err != nil {
		return err
	}
	db.cache.invalidate()
	return nil
}

// PendingUpdates returns how many dynamic updates await compaction. Safe
// for concurrent use.
func (db *DB) PendingUpdates() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.engine.PendingUpdates()
}

// Compact rebuilds the indexes over the grown dataset, absorbing all
// dynamic updates and restoring full pruning power. Safe for concurrent
// use: queries issued during Compact block until the rebuilt indexes are
// swapped in.
func (db *DB) Compact() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	fresh, err := Open(db.net, db.cfg)
	if err != nil {
		return fmt.Errorf("gpssn: compaction failed: %w", err)
	}
	db.engine = fresh.engine
	db.health = fresh.health
	db.BuildTime = fresh.BuildTime
	db.cache.invalidate()
	return nil
}
