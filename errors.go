package gpssn

import (
	"errors"
	"fmt"
	"runtime/debug"

	"gpssn/internal/core"
)

// Typed error taxonomy. Every error a DB returns matches exactly one of
// the sentinels below via errors.Is, so callers can branch on failure
// class without string matching; see the error-contract table in
// README.md and docs/ROBUSTNESS.md.

// ErrInvalidInput is matched (errors.Is) by every error the facade
// returns for malformed caller input: NaN/Inf coordinates or interests,
// out-of-range keyword and user ids, non-positive group sizes or radii.
// Invalid input is always rejected before any state changes.
var ErrInvalidInput = errors.New("gpssn: invalid input")

// ErrSnapshotCorrupt is matched (errors.Is) by the error OpenSnapshot
// returns when a snapshot file is damaged beyond recovery: bad magic,
// version skew, or a torn/corrupt dataset section. Damage confined to the
// derived oracle sections is not an error — those are rebuilt from the
// dataset and reported through Health().
var ErrSnapshotCorrupt = errors.New("gpssn: snapshot corrupt")

// ErrInternal is matched (errors.Is) by the error a query returns when an
// internal invariant was violated (a bug in this library, never the
// caller's fault). The query fails instead of crashing the process; the
// concrete error is an *InternalError carrying the query context and the
// stack of the original panic.
var ErrInternal = errors.New("gpssn: internal error")

// invalidf builds an ErrInvalidInput-matching error.
func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrInvalidInput}, args...)...)
}

// engineErr lifts an engine error into the public taxonomy: parameter
// rejections the engine performs itself (bounds that depend on the built
// index, like r within [RMin, RMax]) must match ErrInvalidInput, not fall
// through as untyped caller-fault-looking internals. Every other engine
// error is already typed (core.ErrCancelled, core.ErrDeadlineExceeded).
func engineErr(err error) error {
	if errors.Is(err, core.ErrInvalidParams) {
		return fmt.Errorf("%w: %w", ErrInvalidInput, err)
	}
	return err
}

// InternalError is the concrete error behind ErrInternal: a recovered
// internal panic converted into a value at the DB boundary, carrying
// enough context to reproduce the failing query.
type InternalError struct {
	// Op is the facade entry point that failed ("Query", "QueryTopK").
	Op string
	// User is the query issuer.
	User int
	// Q is the query being answered when the invariant broke.
	Q Query
	// Panic is the recovered panic value.
	Panic any
	// Stack is the goroutine stack captured where the panic was recovered.
	Stack []byte
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("gpssn: internal error in %s(user=%d, %+v): %v", e.Op, e.User, e.Q, e.Panic)
}

// Unwrap makes errors.Is(err, ErrInternal) match.
func (e *InternalError) Unwrap() error { return ErrInternal }

// guard is the panic-recovery boundary deferred by every query entry
// point: an internal invariant panic — whether raised on the calling
// goroutine or captured from a refinement worker (core.PanicError) —
// becomes a typed *InternalError on the named return instead of crashing
// the caller's process. Input-validation panics never reach here; invalid
// input is rejected with ErrInvalidInput before the engine runs.
func (db *DB) guard(op string, user int, q Query, err *error) {
	r := recover()
	if r == nil {
		return
	}
	ie := &InternalError{Op: op, User: user, Q: q, Panic: r, Stack: debug.Stack()}
	if pe, ok := r.(*core.PanicError); ok {
		ie.Panic = pe.Val
		ie.Stack = pe.Stack
	}
	*err = ie
}
