package gpssn

import (
	"errors"
	"fmt"
	"runtime/debug"

	"gpssn/internal/core"
	"gpssn/internal/wal"
)

// Typed error taxonomy. Every error a DB returns matches exactly one of
// the sentinels below via errors.Is, so callers can branch on failure
// class without string matching; see the error-contract table in
// README.md and docs/ROBUSTNESS.md.

// ErrInvalidInput is matched (errors.Is) by every error the facade
// returns for malformed caller input: NaN/Inf coordinates or interests,
// out-of-range keyword and user ids, non-positive group sizes or radii.
// Invalid input is always rejected before any state changes.
var ErrInvalidInput = errors.New("gpssn: invalid input")

// ErrSnapshotCorrupt is matched (errors.Is) by the error OpenSnapshot
// returns when a snapshot file is damaged beyond recovery: bad magic,
// version skew, or a torn/corrupt dataset section. Damage confined to the
// derived oracle sections is not an error — those are rebuilt from the
// dataset and reported through Health().
var ErrSnapshotCorrupt = errors.New("gpssn: snapshot corrupt")

// ErrWALCorrupt is matched (errors.Is) by the error Open/OpenSnapshot
// return when the write-ahead log at Config.WALPath cannot be replayed:
// mid-log damage (a checksum or LSN-sequence failure before the tail — a
// torn *tail* is repaired silently, never an error), or a log that does
// not pair with the base state being opened (it starts past the state's
// applied LSN, so acknowledged updates would be skipped). The concrete
// error is a *WALError. Refusing is deliberate: every record past the
// damage was acknowledged to a caller, and dropping acknowledged updates
// silently is the one thing a WAL exists to prevent.
var ErrWALCorrupt = errors.New("gpssn: wal corrupt")

// ErrInternal is matched (errors.Is) by the error a query returns when an
// internal invariant was violated (a bug in this library, never the
// caller's fault). The query fails instead of crashing the process; the
// concrete error is an *InternalError carrying the query context and the
// stack of the original panic.
var ErrInternal = errors.New("gpssn: internal error")

// invalidf builds an ErrInvalidInput-matching error.
func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrInvalidInput}, args...)...)
}

// engineErr lifts an engine error into the public taxonomy: parameter
// rejections the engine performs itself (bounds that depend on the built
// index, like r within [RMin, RMax]) must match ErrInvalidInput, not fall
// through as untyped caller-fault-looking internals. Every other engine
// error is already typed (core.ErrCancelled, core.ErrDeadlineExceeded).
func engineErr(err error) error {
	if errors.Is(err, core.ErrInvalidParams) {
		return fmt.Errorf("%w: %w", ErrInvalidInput, err)
	}
	return err
}

// WALError is the concrete error behind ErrWALCorrupt: why the log at
// Path cannot bring the base state forward.
type WALError struct {
	// Path is the log file.
	Path string
	// Offset is the byte offset of the damage (0 when the failure is a
	// base-state mismatch rather than file damage).
	Offset int64
	// LSN is the last usable LSN before the failure: the last intact
	// record for mid-log damage, the base state's applied LSN for a
	// mismatched log, the record being replayed for a replay failure.
	LSN uint64
	// Reason describes the failure.
	Reason string
}

func (e *WALError) Error() string {
	return fmt.Sprintf("gpssn: wal %s: at LSN %d (offset %d): %s", e.Path, e.LSN, e.Offset, e.Reason)
}

// Unwrap makes errors.Is(err, ErrWALCorrupt) match.
func (e *WALError) Unwrap() error { return ErrWALCorrupt }

// walErr lifts a wal package error into the public taxonomy: detected
// mid-log corruption becomes a *WALError; I/O errors pass through.
func walErr(err error) error {
	var ce *wal.CorruptError
	if errors.As(err, &ce) {
		return &WALError{Path: ce.Path, Offset: ce.Offset, LSN: ce.LastLSN, Reason: ce.Reason}
	}
	return fmt.Errorf("gpssn: wal: %w", err)
}

// InternalError is the concrete error behind ErrInternal: a recovered
// internal panic converted into a value at the DB boundary, carrying
// enough context to reproduce the failing query.
type InternalError struct {
	// Op is the facade entry point that failed ("Query", "QueryTopK").
	Op string
	// User is the query issuer.
	User int
	// Q is the query being answered when the invariant broke.
	Q Query
	// Panic is the recovered panic value.
	Panic any
	// Stack is the goroutine stack captured where the panic was recovered.
	Stack []byte
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("gpssn: internal error in %s(user=%d, %+v): %v", e.Op, e.User, e.Q, e.Panic)
}

// Unwrap makes errors.Is(err, ErrInternal) match.
func (e *InternalError) Unwrap() error { return ErrInternal }

// guard is the panic-recovery boundary deferred by every query entry
// point: an internal invariant panic — whether raised on the calling
// goroutine or captured from a refinement worker (core.PanicError) —
// becomes a typed *InternalError on the named return instead of crashing
// the caller's process. Input-validation panics never reach here; invalid
// input is rejected with ErrInvalidInput before the engine runs.
func (db *DB) guard(op string, user int, q Query, err *error) {
	r := recover()
	if r == nil {
		return
	}
	ie := &InternalError{Op: op, User: user, Q: q, Panic: r, Stack: debug.Stack()}
	if pe, ok := r.(*core.PanicError); ok {
		ie.Panic = pe.Val
		ie.Stack = pe.Stack
	}
	*err = ie
}
