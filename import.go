package gpssn

import (
	"io"

	"gpssn/internal/model"
)

// CSVInput bundles the readers for ImportCSV. The formats mirror public
// spatial-social dumps (SNAP friendship edge lists, DIMACS-style road
// files):
//
//   - RoadVertices: "id,x,y" with ids 0..N-1.
//   - RoadEdges: "u,v" undirected road segments. Duplicate edges,
//     self-loops, and endpoints outside the vertex range are rejected
//     with row-numbered errors.
//   - SocialEdges: "u,v" undirected friendships (optional; nil means no
//     friendships), under the same duplicate/self-loop/range checks.
//   - Users: "id,x,y,p0,...,p_{d-1}" — home coordinates (snapped onto the
//     nearest road segment) and the interest vector; d is inferred from
//     the first row.
//   - POIs: "id,x,y,k0[;k1...]" — coordinates (snapped) and a
//     semicolon-separated keyword list.
//
// Lines starting with '#' and blank lines are ignored.
type CSVInput struct {
	Name         string
	RoadVertices io.Reader
	RoadEdges    io.Reader
	SocialEdges  io.Reader
	Users        io.Reader
	POIs         io.Reader
}

// ImportCSV assembles a Network from CSV data, validating every row. Use
// it to load real road networks and check-in datasets instead of the
// built-in generators.
func ImportCSV(in CSVInput) (*Network, error) {
	ds, err := model.LoadCSV(model.CSVInput{
		Name:         in.Name,
		RoadVertices: in.RoadVertices,
		RoadEdges:    in.RoadEdges,
		SocialEdges:  in.SocialEdges,
		Users:        in.Users,
		POIs:         in.POIs,
	})
	if err != nil {
		return nil, err
	}
	return &Network{ds: ds}, nil
}
