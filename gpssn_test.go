package gpssn

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// figure1Network builds a small network in the spirit of the paper's
// Figure 1 / Table 1: five users with the published interest vectors over
// topics {restaurant, shopping mall, cafe}, on a small grid road network
// with a handful of POIs.
func figure1Network(t testing.TB) *Network {
	t.Helper()
	b := NewBuilder(3).SetName("figure1")
	// 3x2 grid of intersections, unit spacing.
	v := make([]int, 6)
	coords := [][2]float64{{0, 0}, {1, 0}, {2, 0}, {0, 1}, {1, 1}, {2, 1}}
	for i, c := range coords {
		v[i] = b.AddIntersection(c[0], c[1])
	}
	b.AddRoad(v[0], v[1]).AddRoad(v[1], v[2])
	b.AddRoad(v[3], v[4]).AddRoad(v[4], v[5])
	b.AddRoad(v[0], v[3]).AddRoad(v[1], v[4]).AddRoad(v[2], v[5])

	// POIs: restaurant, mall, cafe, restaurant+cafe.
	b.AddPOI(0.5, 0, 0)
	b.AddPOI(1.5, 0, 1)
	b.AddPOI(0.5, 1, 2)
	b.AddPOI(1.5, 1, 0, 2)

	// Table 1 interest vectors.
	interests := [][]float64{
		{0.7, 0.3, 0.7},
		{0.2, 0.9, 0.3},
		{0.4, 0.8, 0.8},
		{0.9, 0.7, 0.7},
		{0.1, 0.8, 0.5},
	}
	locs := [][2]float64{{0.1, 0}, {1.2, 0}, {1.9, 0.5}, {0.3, 1}, {1.7, 1}}
	u := make([]int, 5)
	for i := range interests {
		u[i] = b.AddUser(locs[i][0], locs[i][1], interests[i])
	}
	b.AddFriendship(u[0], u[1]).AddFriendship(u[0], u[2]).AddFriendship(u[1], u[2])
	b.AddFriendship(u[2], u[3]).AddFriendship(u[3], u[4])

	net, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return net
}

func TestBuilderAndQueryEndToEnd(t *testing.T) {
	net := figure1Network(t)
	db, err := Open(net, Config{RoadPivots: 2, SocialPivots: 2, RMin: 0.5, RMax: 4, LeafSize: 2, Fanout: 2})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ans, stats, err := db.Query(0, Query{GroupSize: 2, Gamma: 0.5, Theta: 0.5, Radius: 1.5})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(ans.Users) != 2 || ans.Users[0] != 0 && ans.Users[1] != 0 {
		t.Fatalf("answer users = %v, must contain issuer 0", ans.Users)
	}
	if len(ans.POIs) == 0 {
		t.Fatal("answer has no POIs")
	}
	if ans.MaxDistance <= 0 || math.IsInf(ans.MaxDistance, 1) {
		t.Fatalf("MaxDistance = %v", ans.MaxDistance)
	}
	if stats.CPUTime <= 0 || stats.PageReads <= 0 {
		t.Errorf("stats not populated: %+v", stats)
	}
	// Answer consistency through the public accessors.
	for _, u := range ans.Users {
		for _, o := range ans.POIs {
			if d := net.RoadDistance(u, o); d > ans.MaxDistance+1e-9 {
				t.Fatalf("user %d to POI %d distance %v exceeds reported max %v", u, o, d, ans.MaxDistance)
			}
		}
	}
}

func TestQueryNoAnswer(t *testing.T) {
	net := figure1Network(t)
	db, err := Open(net, Config{RoadPivots: 2, SocialPivots: 2, LeafSize: 2, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = db.Query(0, Query{GroupSize: 5, Gamma: 3.0, Theta: 0.5, Radius: 1})
	if !errors.Is(err, ErrNoAnswer) {
		t.Fatalf("want ErrNoAnswer, got %v", err)
	}
}

func TestQueryValidation(t *testing.T) {
	net := figure1Network(t)
	db, err := Open(net, Config{RoadPivots: 2, SocialPivots: 2, LeafSize: 2, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Query(99, Query{GroupSize: 2, Radius: 1}); err == nil {
		t.Error("out-of-range user should error")
	}
	if _, _, err := db.Query(0, Query{GroupSize: 0, Radius: 1}); err == nil {
		t.Error("GroupSize 0 should error")
	}
	if _, _, err := db.Query(0, Query{GroupSize: 2, Radius: 100}); err == nil {
		t.Error("radius above RMax should error")
	}
}

func TestBuilderErrorAccumulation(t *testing.T) {
	b := NewBuilder(2)
	b.AddPOI(0, 0, 0)               // before any road
	b.AddUser(0, 0, []float64{0.5}) // wrong interest length (and no road)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build should report accumulated errors")
	}
	b2 := NewBuilder(0)
	if _, err := b2.Build(); err == nil {
		t.Fatal("zero topics should fail")
	}
	b3 := NewBuilder(2)
	v0 := b3.AddIntersection(0, 0)
	v1 := b3.AddIntersection(1, 0)
	b3.AddRoad(v0, v1)
	b3.AddRoad(v0, v0) // self loop
	if _, err := b3.Build(); err == nil {
		t.Fatal("self-loop road should fail")
	}
	b4 := NewBuilder(2)
	w0 := b4.AddIntersection(0, 0)
	w1 := b4.AddIntersection(1, 0)
	b4.AddRoad(w0, w1)
	b4.AddUser(0, 0, []float64{0.5, 0.5})
	b4.AddFriendship(0, 5) // unknown user
	if _, err := b4.Build(); err == nil {
		t.Fatal("friendship to unknown user should fail")
	}
}

func TestNetworkAccessors(t *testing.T) {
	net := figure1Network(t)
	if net.NumUsers() != 5 || net.NumPOIs() != 4 || net.NumIntersections() != 6 || net.NumTopics() != 3 {
		t.Errorf("sizes wrong: %d users %d POIs %d intersections %d topics",
			net.NumUsers(), net.NumPOIs(), net.NumIntersections(), net.NumTopics())
	}
	if net.Name() != "figure1" {
		t.Errorf("Name = %q", net.Name())
	}
	w := net.UserInterests(0)
	if len(w) != 3 || w[0] != 0.7 {
		t.Errorf("UserInterests = %v", w)
	}
	w[0] = 99 // must be a copy
	if net.UserInterests(0)[0] == 99 {
		t.Error("UserInterests must return a copy")
	}
	if kw := net.POIKeywords(3); len(kw) != 2 {
		t.Errorf("POIKeywords = %v", kw)
	}
	if !net.AreFriends(0, 1) || net.AreFriends(0, 4) {
		t.Error("AreFriends wrong")
	}
	x, y := net.POILocation(0)
	if math.IsNaN(x) || math.IsNaN(y) {
		t.Error("POILocation invalid")
	}
	if net.Stats() == "" {
		t.Error("Stats empty")
	}
}

func TestSaveLoadRoundTripFacade(t *testing.T) {
	net := figure1Network(t)
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.NumUsers() != net.NumUsers() || got.NumPOIs() != net.NumPOIs() {
		t.Error("round trip lost data")
	}
	// The reloaded network must answer queries identically.
	cfg := Config{RoadPivots: 2, SocialPivots: 2, LeafSize: 2, Fanout: 2}
	db1, err := Open(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := Open(got, cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{GroupSize: 2, Gamma: 0.4, Theta: 0.4, Radius: 2}
	a1, _, err1 := db1.Query(0, q)
	a2, _, err2 := db2.Query(0, q)
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("errors differ: %v vs %v", err1, err2)
	}
	if err1 == nil && math.Abs(a1.MaxDistance-a2.MaxDistance) > 1e-9 {
		t.Errorf("answers differ: %v vs %v", a1.MaxDistance, a2.MaxDistance)
	}
}

func TestGenerateSyntheticFacade(t *testing.T) {
	net, err := GenerateSynthetic(SyntheticOptions{
		Seed: 1, RoadVertices: 300, Users: 200, POIs: 150, Topics: 8,
	})
	if err != nil {
		t.Fatalf("GenerateSynthetic: %v", err)
	}
	db, err := Open(net, DefaultConfig())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Run a few queries; at least one should usually find an answer at a
	// permissive threshold, and none may error for structural reasons.
	found := 0
	for u := 0; u < 10; u++ {
		ans, _, err := db.Query(u, Query{GroupSize: 2, Gamma: 0.1, Theta: 0.2, Radius: 3})
		if err != nil && !errors.Is(err, ErrNoAnswer) {
			t.Fatalf("user %d: %v", u, err)
		}
		if err == nil {
			found++
			if len(ans.Users) != 2 {
				t.Fatalf("wrong group size: %v", ans.Users)
			}
		}
	}
	if found == 0 {
		t.Error("no query found any answer at permissive thresholds")
	}
}

func TestGenerateSyntheticZipf(t *testing.T) {
	net, err := GenerateSynthetic(SyntheticOptions{
		Seed: 2, RoadVertices: 200, Users: 100, POIs: 80, Topics: 6, Zipf: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if net.NumUsers() != 100 {
		t.Errorf("NumUsers = %d", net.NumUsers())
	}
}

func TestGenerateRealLikeFacade(t *testing.T) {
	net, err := GenerateRealLike(BrightkiteCalifornia, 3, 0.01)
	if err != nil {
		t.Fatalf("GenerateRealLike: %v", err)
	}
	if net.Name() != "Bri+Cal" {
		t.Errorf("Name = %q", net.Name())
	}
	if _, err := GenerateRealLike(RealLikeKind(99), 1, 0.01); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestOpenNilNetwork(t *testing.T) {
	if _, err := Open(nil, DefaultConfig()); err == nil {
		t.Error("Open(nil) should fail")
	}
}

func TestMetricsThroughFacade(t *testing.T) {
	net := figure1Network(t)
	db, err := Open(net, Config{RoadPivots: 2, SocialPivots: 2, LeafSize: 2, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Metric{DotProduct, Jaccard, Hamming} {
		_, _, err := db.Query(0, Query{GroupSize: 2, Gamma: 0.1, Theta: 0.1, Radius: 2, Metric: m})
		if err != nil && !errors.Is(err, ErrNoAnswer) {
			t.Errorf("metric %d: %v", m, err)
		}
	}
}

func TestAnalyze(t *testing.T) {
	net, err := GenerateSynthetic(SyntheticOptions{
		Seed: 8, RoadVertices: 400, Users: 400, POIs: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := net.Analyze()
	if a.MaxDegree <= 0 {
		t.Error("MaxDegree missing")
	}
	if len(a.DegreeHistogram) != a.MaxDegree+1 {
		t.Error("histogram length inconsistent")
	}
	if a.Homophily <= 0 {
		t.Errorf("generated network should be homophilous, got %v", a.Homophily)
	}
	if a.LargestComponent <= 0 || a.LargestComponent > 1 {
		t.Errorf("LargestComponent = %v", a.LargestComponent)
	}
	if a.MeanHops <= 0 {
		t.Error("MeanHops missing")
	}
}
