package gpssn

import (
	"fmt"

	"gpssn/internal/roadnet"
	"gpssn/internal/socialnet"
)

// RoutePoint is one vertex of a road route.
type RoutePoint struct {
	X, Y float64
}

// Route returns a shortest road route from a user's home to a POI: the
// exact road distance and the polyline to draw, starting at the home
// location and ending at the POI location. Trip-planning frontends call
// this for each (group member, POI) pair of an Answer.
func (n *Network) Route(user, poi int) (float64, []RoutePoint, error) {
	if user < 0 || user >= len(n.ds.Users) {
		return 0, nil, fmt.Errorf("gpssn: user %d out of range [0,%d)", user, len(n.ds.Users))
	}
	if poi < 0 || poi >= len(n.ds.POIs) {
		return 0, nil, fmt.Errorf("gpssn: POI %d out of range [0,%d)", poi, len(n.ds.POIs))
	}
	road := n.ds.Road
	ua := n.ds.Users[user].At
	pa := n.ds.POIs[poi].At

	// Same edge: the direct along-edge route may win.
	dist := road.DistAttach(ua, pa)

	// Choose the endpoint pair realizing the distance and reconstruct the
	// vertex path between them.
	ue := road.EdgeAt(ua.Edge)
	pe := road.EdgeAt(pa.Edge)
	type seed struct {
		v   roadnet.VertexID
		off float64
	}
	uSeeds := []seed{{ue.U, ua.T * ue.Weight}, {ue.V, (1 - ua.T) * ue.Weight}}
	pSeeds := []seed{{pe.U, pa.T * pe.Weight}, {pe.V, (1 - pa.T) * pe.Weight}}

	best := []RoutePoint{pointOf(road, ua), pointOf(road, pa)}
	if ua.Edge == pa.Edge {
		// Direct along-edge route candidate.
		direct := abs(ua.T-pa.T) * ue.Weight
		if direct <= dist+1e-9 {
			return dist, best, nil
		}
	}
	bestTotal := -1.0
	for _, us := range uSeeds {
		for _, ps := range pSeeds {
			d, path := road.ShortestPath(us.v, ps.v)
			if path == nil {
				continue
			}
			total := us.off + d + ps.off
			if bestTotal < 0 || total < bestTotal {
				bestTotal = total
				pts := make([]RoutePoint, 0, len(path)+2)
				pts = append(pts, pointOf(road, ua))
				for _, v := range path {
					p := road.Vertex(v)
					pts = append(pts, RoutePoint{p.X, p.Y})
				}
				pts = append(pts, pointOf(road, pa))
				best = pts
			}
		}
	}
	if bestTotal < 0 {
		return dist, nil, fmt.Errorf("gpssn: user %d and POI %d are not connected", user, poi)
	}
	return dist, best, nil
}

func pointOf(road *roadnet.Graph, a roadnet.Attach) RoutePoint {
	p := road.Location(a)
	return RoutePoint{p.X, p.Y}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// FriendsOf returns the user ids adjacent to the given user in the social
// network.
func (n *Network) FriendsOf(user int) []int {
	out := []int{}
	for _, v := range n.ds.Social.Friends(socialnet.UserID(user)) {
		out = append(out, int(v))
	}
	return out
}
