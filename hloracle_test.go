package gpssn

import (
	"errors"
	"testing"
)

// TestHLOracleEqualityQueries is the hub-label equality gate, mirroring
// TestOracleEqualityQueries: Query and QueryTopK must return identical
// answers with DistanceOracle=hl and =dijkstra, at refinement parallelism
// 1 and 8, on every small dataset. This exercises the whole batched label
// path — attachment labels, per-ball target labels, the one-pass merge
// kernel, and the bounded distance cache — against the plain-search
// Baseline. The group, POI set, and anchor must agree exactly;
// MaxDistance up to floating-point association order (see sameAnswer).
func TestHLOracleEqualityQueries(t *testing.T) {
	queries := []Query{
		{GroupSize: 3, Gamma: 0.3, Theta: 0.4, Radius: 2},
		{GroupSize: 2, Gamma: 0.5, Theta: 0.5, Radius: 1},
		{GroupSize: 4, Gamma: 0.2, Theta: 0.3, Radius: 3},
	}
	for _, zipf := range []bool{false, true} {
		for seed := int64(1); seed <= 2; seed++ {
			ref := openWithOracle(t, seed, zipf, "dijkstra", 1)
			for _, par := range []int{1, 8} {
				db := openWithOracle(t, seed, zipf, "hl", par)
				for _, q := range queries {
					for user := 0; user < 70; user += 7 {
						wantAns, _, wantErr := ref.Query(user, q)
						gotAns, _, gotErr := db.Query(user, q)
						if (wantErr == nil) != (gotErr == nil) {
							t.Fatalf("zipf=%v seed=%d par=%d user=%d q=%+v: err mismatch (dijkstra=%v hl=%v)",
								zipf, seed, par, user, q, wantErr, gotErr)
						}
						if wantErr != nil {
							if !errors.Is(gotErr, ErrNoAnswer) {
								t.Fatalf("unexpected error: %v", gotErr)
							}
							continue
						}
						if !sameAnswer(wantAns, gotAns) {
							t.Fatalf("zipf=%v seed=%d par=%d user=%d q=%+v:\n dijkstra %s maxdist=%x\n hl       %s maxdist=%x",
								zipf, seed, par, user, q, answerKey(wantAns), wantAns.MaxDistance, answerKey(gotAns), gotAns.MaxDistance)
						}
					}
					for user := 0; user < 70; user += 23 {
						wantTop, _, err := ref.QueryTopK(user, q, 3)
						if err != nil {
							t.Fatal(err)
						}
						gotTop, _, err := db.QueryTopK(user, q, 3)
						if err != nil {
							t.Fatal(err)
						}
						if len(wantTop) != len(gotTop) {
							t.Fatalf("zipf=%v seed=%d par=%d user=%d: top-k sizes differ (%d vs %d)",
								zipf, seed, par, user, len(wantTop), len(gotTop))
						}
						for i := range wantTop {
							if !sameAnswer(&wantTop[i], &gotTop[i]) {
								t.Fatalf("zipf=%v seed=%d par=%d user=%d top-k[%d]:\n dijkstra %s maxdist=%x\n hl       %s maxdist=%x",
									zipf, seed, par, user, i, answerKey(&wantTop[i]), wantTop[i].MaxDistance, answerKey(&gotTop[i]), gotTop[i].MaxDistance)
							}
						}
					}
				}
			}
		}
	}
}

// TestHLOracleConfig pins that DistanceOracle=hl attaches a label-exposing
// oracle (so the batched refinement kernel actually engages) and that
// dynamic updates keep working: a road-relevant mutation plus Compact must
// rebuild the labels, with answers still served afterwards.
func TestHLOracleConfig(t *testing.T) {
	net, err := GenerateSynthetic(SyntheticOptions{
		Seed: 3, RoadVertices: 60, Users: 25, POIs: 20, Topics: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.DistanceOracle = "hl"
	db, err := Open(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if db.net.ds.Road.Oracle() == nil {
		t.Fatal("hl config did not attach an oracle")
	}
	if !db.net.ds.Road.HasLabels() {
		t.Fatal("hl config attached an oracle without hub labels")
	}

	q := Query{GroupSize: 2, Gamma: 0.2, Theta: 0.2, Radius: 3}
	var answered int
	for u := 0; u < 25; u++ {
		if _, _, err := db.Query(u, q); err == nil {
			answered++
		}
	}
	if answered == 0 {
		t.Fatal("no query answered under the hl oracle")
	}

	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if !db.net.ds.Road.HasLabels() {
		t.Fatal("Compact dropped the hub-label oracle")
	}
	answered = 0
	for u := 0; u < 25; u++ {
		if _, _, err := db.Query(u, q); err == nil {
			answered++
		}
	}
	if answered == 0 {
		t.Fatal("no query answered after Compact under the hl oracle")
	}
}
