package gpssn

import (
	"fmt"
	"io"

	"gpssn/internal/geo"
	"gpssn/internal/model"
	"gpssn/internal/roadnet"
	"gpssn/internal/socialnet"
)

// Network is an immutable spatial-social network ready for indexing:
// construct one with a Builder, a generator, or Load.
//
// A built Network never mutates itself, so its accessors are safe to
// call from any number of goroutines. The one exception is a Network
// owned by an open DB: dynamic updates (DB.AddPOI, DB.AddUser,
// DB.AddFriendship) grow the underlying user and POI sets, so accessors
// racing with those updates must be coordinated by the caller (or simply
// issued through the DB, whose lock orders them).
type Network struct {
	ds *model.Dataset
}

// NumUsers returns |V(G_s)|.
func (n *Network) NumUsers() int { return n.ds.Social.NumUsers() }

// NumPOIs returns the number of POIs.
func (n *Network) NumPOIs() int { return len(n.ds.POIs) }

// NumIntersections returns |V(G_r)|.
func (n *Network) NumIntersections() int { return n.ds.Road.NumVertices() }

// NumTopics returns the interest/keyword vocabulary size d.
func (n *Network) NumTopics() int { return n.ds.NumTopics }

// Name returns the dataset name.
func (n *Network) Name() string { return n.ds.Name }

// UserInterests returns a copy of a user's interest vector.
func (n *Network) UserInterests(user int) []float64 {
	return append([]float64(nil), n.ds.Users[user].Interests...)
}

// POIKeywords returns a copy of a POI's keyword set.
func (n *Network) POIKeywords(poi int) []int {
	return append([]int(nil), n.ds.POIs[poi].Keywords...)
}

// UserLocation returns the user's home coordinates.
func (n *Network) UserLocation(user int) (x, y float64) {
	p := n.ds.Users[user].Loc
	return p.X, p.Y
}

// POILocation returns the POI's coordinates.
func (n *Network) POILocation(poi int) (x, y float64) {
	p := n.ds.POIs[poi].Loc
	return p.X, p.Y
}

// RoadDistance returns the exact road-network distance between a user's
// home and a POI (the dist_RN of the paper).
func (n *Network) RoadDistance(user, poi int) float64 {
	return n.ds.Road.DistAttach(n.ds.Users[user].At, n.ds.POIs[poi].At)
}

// AreFriends reports whether two users share a friendship edge.
func (n *Network) AreFriends(a, b int) bool {
	return n.ds.Social.AreFriends(socialnet.UserID(a), socialnet.UserID(b))
}

// Stats returns the Table 2 style statistics line for the network.
func (n *Network) Stats() string { return n.ds.Stats().String() }

// Dataset exposes the internal dataset for the benchmark harness.
func (n *Network) Dataset() *model.Dataset { return n.ds }

// Save writes the network in the library's binary format.
func (n *Network) Save(w io.Writer) error { return n.ds.Save(w) }

// Load reads a network written by Save. The returned Network is immutable
// and safe to share across goroutines.
func Load(r io.Reader) (*Network, error) {
	ds, err := model.Load(r)
	if err != nil {
		return nil, err
	}
	return &Network{ds: ds}, nil
}

// NetworkFromDataset wraps an internal dataset (used by generators and the
// benchmark harness).
func NetworkFromDataset(ds *model.Dataset) (*Network, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return &Network{ds: ds}, nil
}

// Builder assembles a spatial-social network programmatically. Add the
// road network first (intersections, then roads), then POIs and users —
// POIs and users are snapped onto the nearest road segment.
//
// A Builder is not safe for concurrent use: assemble the network on one
// goroutine, call Build, and share the resulting immutable Network
// freely.
type Builder struct {
	topics  int
	name    string
	road    *roadnet.Graph
	friends [][2]int
	users   []model.User
	pois    []model.POI
	errs    []error
}

// NewBuilder starts a network over a vocabulary of `topics` interest
// topics (shared by user interests and POI keywords).
func NewBuilder(topics int) *Builder {
	b := &Builder{topics: topics, road: roadnet.NewGraph(16, 16), name: "custom"}
	if topics <= 0 {
		b.errs = append(b.errs, fmt.Errorf("gpssn: topics must be positive, got %d", topics))
	}
	return b
}

// SetName names the dataset.
func (b *Builder) SetName(name string) *Builder {
	b.name = name
	return b
}

// AddIntersection adds a road-network vertex and returns its id.
func (b *Builder) AddIntersection(x, y float64) int {
	return int(b.road.AddVertex(geo.Pt(x, y)))
}

// AddRoad adds a road segment between two intersections.
func (b *Builder) AddRoad(a, c int) *Builder {
	if a < 0 || a >= b.road.NumVertices() || c < 0 || c >= b.road.NumVertices() {
		b.errs = append(b.errs, fmt.Errorf("gpssn: road endpoints %d-%d out of range", a, c))
		return b
	}
	if a == c {
		b.errs = append(b.errs, fmt.Errorf("gpssn: self-loop road at %d", a))
		return b
	}
	b.road.AddEdge(roadnet.VertexID(a), roadnet.VertexID(c))
	return b
}

// AddPOI places a POI at (x, y), snapped onto the nearest road segment,
// with the given keywords. It returns the POI id.
func (b *Builder) AddPOI(x, y float64, keywords ...int) int {
	id := len(b.pois)
	at, ok := b.road.SnapPoint(geo.Pt(x, y))
	if !ok {
		b.errs = append(b.errs, fmt.Errorf("gpssn: POI %d added before any road exists", id))
		b.pois = append(b.pois, model.POI{ID: model.POIID(id), Keywords: append([]int(nil), keywords...)})
		return id
	}
	if len(keywords) == 0 {
		b.errs = append(b.errs, fmt.Errorf("gpssn: POI %d needs at least one keyword", id))
	}
	for _, k := range keywords {
		if k < 0 || k >= b.topics {
			b.errs = append(b.errs, fmt.Errorf("gpssn: POI %d keyword %d outside vocabulary [0,%d)", id, k, b.topics))
		}
	}
	b.pois = append(b.pois, model.POI{
		ID:       model.POIID(id),
		At:       at,
		Loc:      b.road.Location(at),
		Keywords: append([]int(nil), keywords...),
	})
	return id
}

// AddUser adds a user with a home at (x, y) (snapped onto the nearest road
// segment) and the given interest vector of length NumTopics with entries
// in [0,1]. It returns the user id.
func (b *Builder) AddUser(x, y float64, interests []float64) int {
	id := len(b.users)
	at, ok := b.road.SnapPoint(geo.Pt(x, y))
	if !ok {
		b.errs = append(b.errs, fmt.Errorf("gpssn: user %d added before any road exists", id))
		b.users = append(b.users, model.User{ID: socialnet.UserID(id), Interests: append([]float64(nil), interests...)})
		return id
	}
	if len(interests) != b.topics {
		b.errs = append(b.errs, fmt.Errorf("gpssn: user %d has %d interests, want %d", id, len(interests), b.topics))
	}
	for f, p := range interests {
		if p < 0 || p > 1 {
			b.errs = append(b.errs, fmt.Errorf("gpssn: user %d interest %d = %v outside [0,1]", id, f, p))
		}
	}
	b.users = append(b.users, model.User{
		ID:        socialnet.UserID(id),
		At:        at,
		Loc:       b.road.Location(at),
		Interests: append([]float64(nil), interests...),
	})
	return id
}

// AddFriendship records a friendship between two users added earlier.
func (b *Builder) AddFriendship(a, c int) *Builder {
	if a < 0 || a >= len(b.users) || c < 0 || c >= len(b.users) {
		b.errs = append(b.errs, fmt.Errorf("gpssn: friendship %d-%d references unknown user", a, c))
		return b
	}
	if a == c {
		b.errs = append(b.errs, fmt.Errorf("gpssn: self-friendship at %d", a))
		return b
	}
	b.friends = append(b.friends, [2]int{a, c})
	return b
}

// Build validates and freezes the network. All accumulated construction
// errors are reported at once.
func (b *Builder) Build() (*Network, error) {
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("gpssn: %d build errors, first: %w", len(b.errs), b.errs[0])
	}
	social := socialnet.NewGraph(len(b.users))
	for _, f := range b.friends {
		social.AddFriendship(socialnet.UserID(f[0]), socialnet.UserID(f[1]))
	}
	ds := &model.Dataset{
		Name:      b.name,
		Road:      b.road,
		Social:    social,
		Users:     b.users,
		POIs:      b.pois,
		NumTopics: b.topics,
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return &Network{ds: ds}, nil
}

// attachObjects lists every POI and user attachment, the object population
// the road pivot cost model optimizes over.
func attachObjects(ds *model.Dataset) []roadnet.Attach {
	out := make([]roadnet.Attach, 0, len(ds.POIs)+len(ds.Users))
	for i := range ds.POIs {
		out = append(out, ds.POIs[i].At)
	}
	for i := range ds.Users {
		out = append(out, ds.Users[i].At)
	}
	return out
}
