package gpssn

import (
	"fmt"
	"path/filepath"
	"testing"
)

// Satellite gate: a Snapshot taken while road deltas are pending must fold
// them into the persisted dataset. The reopened DB answers bit-identically
// to the live churned DB, and it does so from a *static* oracle — the
// dataset section serialized the grown graph, so the reopen rebuilds over
// the full topology and no overlay survives the round trip.
func TestSnapshotFoldsPendingDeltas(t *testing.T) {
	for _, kind := range []string{"hl", "ch", "dijkstra"} {
		for _, par := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/P%d", kind, par), func(t *testing.T) {
				cfg := DefaultConfig()
				cfg.RoadPivots = 3
				cfg.SocialPivots = 3
				cfg.Seed = 11
				cfg.DistanceOracle = kind
				cfg.Parallelism = par

				db, err := Open(churnNetwork(t), cfg)
				if err != nil {
					t.Fatal(err)
				}
				churnScript(t, db, 3)
				if kind != "dijkstra" {
					if ov := db.RoadOverlayStats(); !ov.Active {
						t.Fatalf("churn should leave the overlay active: %+v", ov)
					}
				}
				if db.PendingUpdates() == 0 {
					t.Fatal("churn should leave updates pending")
				}

				path := filepath.Join(t.TempDir(), "fold.gpssn")
				if err := db.Snapshot(path); err != nil {
					t.Fatalf("Snapshot under pending deltas: %v", err)
				}

				re, err := OpenSnapshot(path, cfg)
				if err != nil {
					t.Fatalf("OpenSnapshot: %v", err)
				}
				if ov := re.RoadOverlayStats(); ov.Active {
					t.Fatalf("reopened DB should have a static oracle, got overlay %+v", ov)
				}
				if re.PendingUpdates() != 0 {
					t.Fatalf("reopened DB reports %d pending updates, want 0", re.PendingUpdates())
				}
				mustMatchDB(t, re, db, "snapshot-fold")

				// The fold is not a fork: both sides accept further churn
				// and still agree.
				churnScript(t, db, 1)
				churnScript(t, re, 1)
				mustMatchDB(t, re, db, "snapshot-fold/post-churn")
			})
		}
	}
}
