module gpssn

go 1.22
