package gpssn

import (
	"errors"
	"math"
	"testing"
)

func TestDynamicFacadeLifecycle(t *testing.T) {
	net := figure1Network(t)
	db, err := Open(net, Config{RoadPivots: 2, SocialPivots: 2, LeafSize: 2, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	if db.PendingUpdates() != 0 {
		t.Fatal("fresh DB should have no pending updates")
	}

	// A new cafe and a new cafe-loving friend of user 0.
	poi, err := db.AddPOI(1.0, 0.5, 2)
	if err != nil {
		t.Fatalf("AddPOI: %v", err)
	}
	user, err := db.AddUser(0.9, 0.4, []float64{0.8, 0.1, 0.9})
	if err != nil {
		t.Fatalf("AddUser: %v", err)
	}
	if _, err := db.AddFriendship(0, user); err != nil {
		t.Fatalf("AddFriendship: %v", err)
	}
	if db.PendingUpdates() == 0 {
		t.Error("updates should be pending")
	}

	// The new user and POI must be visible to queries right away.
	q := Query{GroupSize: 2, Gamma: 0.5, Theta: 0.5, Radius: 1.5}
	ans, _, err := db.Query(0, q)
	if err != nil {
		t.Fatalf("Query after updates: %v", err)
	}
	preCompact := ans.MaxDistance

	// Network accessors see the delta too.
	if db.Network().NumPOIs() != 5 || db.Network().NumUsers() != 6 {
		t.Errorf("network sizes: %d POIs, %d users", db.Network().NumPOIs(), db.Network().NumUsers())
	}
	_ = poi

	// Compaction must not change the answer.
	if err := db.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if db.PendingUpdates() != 0 {
		t.Error("compaction should clear pending updates")
	}
	ans2, _, err := db.Query(0, q)
	if err != nil {
		t.Fatalf("Query after compact: %v", err)
	}
	if math.Abs(ans2.MaxDistance-preCompact) > 1e-9 {
		t.Errorf("compaction changed the answer: %v vs %v", ans2.MaxDistance, preCompact)
	}
}

func TestDynamicNewUserJoinsGroup(t *testing.T) {
	net := figure1Network(t)
	db, err := Open(net, Config{RoadPivots: 2, SocialPivots: 2, LeafSize: 2, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	// User 4 has weak ties; give them a highly compatible new friend and a
	// query that only this pair can satisfy: γ=1.02 excludes user 4's only
	// other friend (sim(3,4) = 1.00) but not the newbie (sim = 1.04).
	newbie, err := db.AddUser(1.6, 1.0, []float64{0.2, 0.9, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddFriendship(4, newbie); err != nil {
		t.Fatal(err)
	}
	q := Query{GroupSize: 2, Gamma: 1.02, Theta: 0.3, Radius: 2}
	ans, _, err := db.Query(4, q)
	if err != nil {
		if errors.Is(err, ErrNoAnswer) {
			t.Fatal("expected the new friend to enable an answer")
		}
		t.Fatal(err)
	}
	hasNewbie := false
	for _, u := range ans.Users {
		if u == newbie {
			hasNewbie = true
		}
	}
	if !hasNewbie {
		t.Errorf("group %v should include the new user %d", ans.Users, newbie)
	}
}

func TestDynamicFacadeValidation(t *testing.T) {
	net := figure1Network(t)
	db, err := Open(net, Config{RoadPivots: 2, SocialPivots: 2, LeafSize: 2, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddPOI(0, 0); err == nil {
		t.Error("POI without keywords should fail")
	}
	if _, err := db.AddPOI(0, 0, 99); err == nil {
		t.Error("out-of-vocabulary keyword should fail")
	}
	if _, err := db.AddUser(0, 0, []float64{0.5}); err == nil {
		t.Error("short interest vector should fail")
	}
	if _, err := db.AddFriendship(0, 0); err == nil {
		t.Error("self-friendship should fail")
	}
	if _, err := db.AddFriendship(0, 999); err == nil {
		t.Error("unknown user should fail")
	}
}
