#!/usr/bin/env bash
# serve-smoke: end-to-end smoke test of cmd/gpssn-serve, run by CI.
#
# Builds the binaries, generates a small dataset, starts the server,
# checks /healthz and one query over real HTTP, then sends SIGTERM and
# asserts a clean graceful-drain exit. Everything deeper (coalescing,
# shedding, error mapping, drain races) is covered by the -race unit
# tests in internal/serve; this script proves the shipped binary wires
# it all together.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

echo "== build"
go build -o "$workdir" ./cmd/gpssn-gen ./cmd/gpssn-serve

echo "== generate dataset"
"$workdir/gpssn-gen" -kind uni -out "$workdir/smoke.gpssn" \
    -vertices 1500 -users 1500 -pois 500 -seed 1

echo "== start server"
addr=127.0.0.1:18080
"$workdir/gpssn-serve" -data "$workdir/smoke.gpssn" -addr "$addr" \
    -max-inflight 16 -default-timeout 5s &
server=$!

# Wait for readiness: /healthz must answer 200 with status "ok".
for i in $(seq 1 100); do
    if health=$(curl -sf "http://$addr/healthz" 2>/dev/null); then
        break
    fi
    if ! kill -0 "$server" 2>/dev/null; then
        echo "server exited before becoming healthy" >&2
        exit 1
    fi
    sleep 0.2
done
echo "healthz: $health"
echo "$health" | grep -q '"status":"ok"'

echo "== query"
answer=$(curl -sf -d '{"user":42,"group_size":3,"gamma":0.3,"theta":0.3,"radius":2}' \
    "http://$addr/v1/query")
echo "query: $answer"
echo "$answer" | grep -q '"found":true'

echo "== topk"
topk=$(curl -sf -d '{"user":42,"group_size":3,"gamma":0.3,"theta":0.3,"radius":2,"k":2}' \
    "http://$addr/v1/topk")
echo "$topk" | grep -q '"answers":'

echo "== shared-work memo is live"
# Re-issue the query as different users so the requests miss the answer
# cache and flight coalescer but overlap in the engine: /statsz must show
# the shared-work memo (ball or sweep) taking hits.
for u in 42 43 44 45; do
    curl -sf -o /dev/null -d '{"user":'"$u"',"group_size":3,"gamma":0.3,"theta":0.3,"radius":2}' \
        "http://$addr/v1/query"
done
statsz=$(curl -sf "http://$addr/statsz")
echo "statsz: $statsz"
echo "$statsz" | grep -q '"shared_work"'
hits=$(echo "$statsz" | sed -n 's/.*"ball_hits_total":\([0-9]*\).*/\1/p')
sweep=$(echo "$statsz" | sed -n 's/.*"sweep_hits_total":\([0-9]*\).*/\1/p')
if [ "${hits:-0}" -eq 0 ] && [ "${sweep:-0}" -eq 0 ]; then
    echo "shared-work memo took no hits (ball=$hits sweep=$sweep)" >&2
    exit 1
fi
echo "memo hits: ball=$hits sweep=$sweep"

echo "== invalid input is 400"
code=$(curl -s -o /dev/null -w '%{http_code}' -d '{"user":42,"bogus":1}' \
    "http://$addr/v1/query")
[ "$code" = 400 ] || { echo "want 400 for unknown field, got $code" >&2; exit 1; }

echo "== graceful shutdown"
kill -TERM "$server"
if ! wait "$server"; then
    echo "server exited non-zero on SIGTERM" >&2
    exit 1
fi

echo "serve-smoke: OK"
