#!/usr/bin/env bash
# bench-guard: re-run the smoke benchmarks and fail if the fresh p50-class
# latencies regress more than 2x against the committed BENCH_*.json.
#
# The committed JSONs are the performance record of the machine that wrote
# them; a fresh run on different hardware moves every number by a constant
# factor, which a 2x gate absorbs. What it catches is the accidental
# algorithmic cliff — a merge kernel gone quadratic, an oracle silently
# falling back to Dijkstra — which shifts the guarded metrics by 10-1000x.
# CI wires this as a non-blocking job: shared-runner noise can exceed 2x
# under co-tenancy, so a red guard is a prompt to look, not a merge block.
#
# Usage: scripts/bench-guard.sh [factor]   (default factor: 2.0)

set -euo pipefail
cd "$(dirname "$0")/.."

FACTOR="${1:-2.0}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Latency-style metrics guarded per report (lower is better). Throughput
# and speedup ratios are deliberately not guarded: they already move when
# a latency does, and double-counting doubles the noise.
guarded_keys() {
  case "$1" in
    BENCH_choracle.json) echo "avg_query_cpu_ch_ms ch_p2p_us_per_op" ;;
    BENCH_hublabel.json) echo "avg_query_cpu_hl_ms hl_p2p_us_per_op" ;;
    BENCH_churn.json)    echo "static_p50_ms overlay_p50_ms post_compact_p50_ms" ;;
    # update_p50_us appears once per fsync policy (off/none/batch/always),
    # guarded index-wise in file order; recovery_ms guards the replay path.
    BENCH_wal.json)      echo "update_p50_us recovery_ms" ;;
  esac
}

echo "bench-guard: fresh smoke run (factor ${FACTOR}x)"
go run ./cmd/gpssn-bench -exp choracle -scale 0.05 -queries 4 -jsonout "$TMP/BENCH_choracle.json"
go run ./cmd/gpssn-bench -exp hublabel -scale 0.05 -queries 4 -jsonout "$TMP/BENCH_hublabel.json"
go run ./cmd/gpssn-bench -exp churn -scale 0.05 -queries 48 -jsonout "$TMP/BENCH_churn.json"
go run ./cmd/gpssn-bench -exp walchurn -scale 0.05 -jsonout "$TMP/BENCH_wal.json"

# extract FILE KEY -> all values of that key, one per line, in file order.
# The reports are the pretty-printed output of encoding/json, so every
# scalar sits alone on its own `"key": value,` line.
extract() {
  sed -n 's/^[[:space:]]*"'"$2"'":[[:space:]]*\([0-9.eE+-]*\),\{0,1\}$/\1/p' "$1"
}

fail=0
for report in BENCH_choracle.json BENCH_hublabel.json BENCH_churn.json BENCH_wal.json; do
  if ! git cat-file -e "HEAD:$report" 2>/dev/null; then
    echo "bench-guard: $report not committed yet, skipping"
    continue
  fi
  git show "HEAD:$report" > "$TMP/committed_$report"
  for key in $(guarded_keys "$report"); do
    old_vals=$(extract "$TMP/committed_$report" "$key")
    new_vals=$(extract "$TMP/$report" "$key")
    if [ -z "$old_vals" ] || [ -z "$new_vals" ]; then
      echo "bench-guard: $report: key $key missing from one side, skipping"
      continue
    fi
    i=0
    while read -r old <&3 && read -r new <&4; do
      i=$((i + 1))
      # Sub-millisecond / sub-microsecond baselines are timer-noise bound;
      # only guard values large enough for a ratio to mean anything.
      verdict=$(awk -v o="$old" -v n="$new" -v f="$FACTOR" \
        'BEGIN { if (o < 0.05) print "tiny"; else if (n > o * f) print "regress"; else print "ok" }')
      case "$verdict" in
        regress)
          echo "bench-guard: FAIL $report $key[$i]: $old -> $new (> ${FACTOR}x)"
          fail=1 ;;
        tiny)
          echo "bench-guard:  ---  $report $key[$i]: baseline $old too small to guard" ;;
        ok)
          echo "bench-guard:  ok   $report $key[$i]: $old -> $new" ;;
      esac
    done 3<<< "$old_vals" 4<<< "$new_vals"
  done
done

if [ "$fail" -ne 0 ]; then
  echo "bench-guard: latency regression past ${FACTOR}x detected"
  exit 1
fi
echo "bench-guard: all guarded metrics within ${FACTOR}x"
