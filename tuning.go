package gpssn

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"gpssn/internal/core"
	"gpssn/internal/socialnet"
)

// SuggestQuery derives query thresholds from the data distributions, the
// way Section 2.2 of the paper proposes tuning the system parameters:
//
//   - Gamma is the given percentile of the pairwise interest-score
//     distribution over sampled friend pairs (friends, not random pairs —
//     the group S is drawn from the issuer's social neighbourhood).
//   - Theta is the percentile of the matching-score distribution between
//     sampled users and sampled radius-r POI balls.
//   - Radius is the percentile of the nearest-neighbour road distance
//     between POIs, scaled so a ball typically holds a handful of POIs.
//
// percentile is in (0, 1); higher percentiles give stricter thresholds and
// smaller, more-compatible answers. The suggestion is deterministic for a
// given network and percentile.
func SuggestQuery(net *Network, groupSize int, percentile float64) (Query, error) {
	if net == nil || net.ds == nil {
		return Query{}, fmt.Errorf("gpssn: nil network")
	}
	if groupSize < 1 {
		return Query{}, fmt.Errorf("gpssn: group size must be >= 1, got %d", groupSize)
	}
	if percentile <= 0 || percentile >= 1 {
		return Query{}, fmt.Errorf("gpssn: percentile must be in (0,1), got %v", percentile)
	}
	ds := net.ds
	rng := rand.New(rand.NewSource(12345))
	const samples = 300

	// Radius first: percentile of POI nearest-neighbour road distance,
	// scaled by 4 so a ball holds ~a handful of POIs.
	var nnDists []float64
	for i := 0; i < samples; i++ {
		a := &ds.POIs[rng.Intn(len(ds.POIs))]
		best := math.Inf(1)
		for j := 0; j < 8; j++ {
			b := &ds.POIs[rng.Intn(len(ds.POIs))]
			if b.ID == a.ID {
				continue
			}
			if d := a.Loc.Dist(b.Loc); d < best {
				best = d // Euclidean lower bound is enough for scaling
			}
		}
		if !math.IsInf(best, 1) {
			nnDists = append(nnDists, best)
		}
	}
	radius := 4 * quantile(nnDists, percentile)
	if radius <= 0 {
		radius = 1
	}

	// Gamma: percentile of friend-pair interest scores.
	var scores []float64
	for i := 0; i < samples; i++ {
		u := socialnet.UserID(rng.Intn(ds.Social.NumUsers()))
		friends := ds.Social.Friends(u)
		if len(friends) == 0 {
			continue
		}
		v := friends[rng.Intn(len(friends))]
		scores = append(scores, core.InterestScore(ds.Users[u].Interests, ds.Users[v].Interests))
	}
	gamma := quantile(scores, percentile) // higher percentile = stricter

	// Theta: percentile of user-vs-ball matching scores.
	var matches []float64
	for i := 0; i < samples/3; i++ {
		anchor := &ds.POIs[rng.Intn(len(ds.POIs))]
		// Euclidean prefilter is enough for threshold estimation.
		kws := core.NewTopicSet(ds.NumTopics)
		for j := range ds.POIs {
			if anchor.Loc.Dist(ds.POIs[j].Loc) <= radius {
				for _, k := range ds.POIs[j].Keywords {
					kws.Add(k)
				}
			}
		}
		for s := 0; s < 3; s++ {
			u := rng.Intn(len(ds.Users))
			matches = append(matches, core.MatchScoreSet(ds.Users[u].Interests, kws))
		}
	}
	theta := quantile(matches, percentile)

	return Query{
		GroupSize: groupSize,
		Gamma:     gamma,
		Theta:     theta,
		Radius:    radius,
	}, nil
}

// quantile returns the q-quantile of the values (nearest-rank).
func quantile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}
