package gpssn

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"gpssn/internal/failpoint"
	"gpssn/internal/roadnet"
	"gpssn/internal/socialnet"
)

// The crash matrix: for every kill point and corruption mode in the WAL
// write path — torn tails at arbitrary byte offsets, injected short
// writes, bit flips at the tail and mid-log, and crashes inside both
// checkpoint windows — recovery must reconstruct exactly the acknowledged
// prefix, gated bit-identical against a never-crashed twin that applied
// the same prefix, across all three oracle backends at refinement
// parallelism 1 and 8, including post-recovery churn and Compact.

// walCrashOps builds the deterministic mutation script. Every op logs
// exactly one WAL record (no-ops and rejections are excluded by
// construction), so after recovery the applied-op count equals the
// recovered LSN. Args are precomputed from the base topology, which both
// the live DB and its twin share.
func walCrashOps(t *testing.T, base *Network) []func(*DB) error {
	t.Helper()
	ds := base.Dataset()
	n0 := ds.Road.NumVertices()
	v7 := ds.Road.Vertex(roadnet.VertexID(7))
	v20 := ds.Road.Vertex(roadnet.VertexID(20))
	fa, fb := -1, -1
	for a := 0; a < ds.Social.NumUsers() && fa < 0; a++ {
		for b := a + 1; b < ds.Social.NumUsers(); b++ {
			if !ds.Social.AreFriends(socialnet.UserID(a), socialnet.UserID(b)) {
				fa, fb = a, b
				break
			}
		}
	}
	ea, eb := -1, -1
	for a := 0; a < n0 && ea < 0; a++ {
		for b := a + 2; b < n0; b += 17 {
			if !ds.Road.HasEdge(roadnet.VertexID(a), roadnet.VertexID(b)) {
				ea, eb = a, b
				break
			}
		}
	}
	if fa < 0 || ea < 0 {
		t.Fatal("test network has no free friendship/edge pair")
	}
	return []func(*DB) error{
		func(db *DB) error { _, err := db.AddRoadVertex(v7.X+0.07, v7.Y+0.04); return err },
		func(db *DB) error { _, err := db.AddRoadEdge(7, n0); return err },
		func(db *DB) error { _, err := db.AddRoadEdge(n0, 20); return err },
		func(db *DB) error { _, err := db.AddPOI(v20.X+0.1, v20.Y+0.05, 1, 3); return err },
		func(db *DB) error {
			_, err := db.AddUser(v7.X+0.02, v7.Y+0.2, []float64{0.9, 0.1, 0.4, 0, 0.2, 0.5})
			return err
		},
		func(db *DB) error { _, err := db.AddFriendship(fa, fb); return err },
		func(db *DB) error { _, err := db.AddRoadEdge(ea, eb); return err },
	}
}

func applyOps(t *testing.T, db *DB, ops []func(*DB) error) {
	t.Helper()
	for i, op := range ops {
		if err := op(db); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
}

// crashTwin opens a never-crashed control: the same base network with the
// first k ops applied in memory, no WAL involved.
func crashTwin(t *testing.T, cfg Config, ops []func(*DB) error, k int) *DB {
	t.Helper()
	tcfg := cfg
	tcfg.WALPath = ""
	twin, err := Open(churnNetwork(t), tcfg)
	if err != nil {
		t.Fatalf("twin Open: %v", err)
	}
	applyOps(t, twin, ops[:k])
	return twin
}

// gateRecovery opens the surviving log against a fresh base and gates it
// bit-identical to the twin holding the expected prefix; with churn true
// it then drives both through one more churn round plus a Compact of the
// recovered side.
func gateRecovery(t *testing.T, cfg Config, walPath string, ops []func(*DB) error, wantOps int, label string, churn bool) {
	t.Helper()
	rcfg := cfg
	rcfg.WALPath = walPath
	rec, err := Open(churnNetwork(t), rcfg)
	if err != nil {
		t.Fatalf("%s: recovery Open: %v", label, err)
	}
	if got := rec.WALStats().AppliedLSN; got != uint64(wantOps) {
		t.Fatalf("%s: recovered %d records, want %d", label, got, wantOps)
	}
	twin := crashTwin(t, cfg, ops, wantOps)
	mustMatchDB(t, rec, twin, label)
	if !churn {
		return
	}
	churnScript(t, rec, 1)
	churnScript(t, twin, 1)
	if err := rec.Compact(); err != nil {
		t.Fatalf("%s: post-recovery Compact: %v", label, err)
	}
	mustMatchDB(t, rec, twin, label+"/churn+compact")
}

// mangleCopy copies a WAL file, truncated to size bytes (and with flip
// applied when >= 0: that byte index gets one bit flipped).
func mangleCopy(t *testing.T, src, dst string, size int64, flip int64) {
	t.Helper()
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if size > int64(len(raw)) {
		t.Fatalf("mangle size %d beyond file %d", size, len(raw))
	}
	raw = raw[:size]
	if flip >= 0 {
		raw[flip] ^= 0x20
	}
	if err := os.WriteFile(dst, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestWALCrashMatrix(t *testing.T) {
	for _, kind := range []string{"hl", "ch", "dijkstra"} {
		for _, par := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/P%d", kind, par), func(t *testing.T) {
				testWALCrashMatrix(t, kind, par)
			})
		}
	}
}

func testWALCrashMatrix(t *testing.T, kind string, par int) {
	t.Cleanup(failpoint.Reset)
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.RoadPivots = 3
	cfg.SocialPivots = 3
	cfg.Seed = 11
	cfg.DistanceOracle = kind
	cfg.Parallelism = par
	ops := walCrashOps(t, churnNetwork(t))

	// One full run whose log the torn-tail cases mangle, recording the
	// frame boundary after every op.
	fullWAL := filepath.Join(dir, "full.wal")
	fcfg := cfg
	fcfg.WALPath = fullWAL
	live, err := Open(churnNetwork(t), fcfg)
	if err != nil {
		t.Fatal(err)
	}
	bounds := []int64{live.WALStats().Bytes} // bounds[k] = bytes after k ops
	for i, op := range ops {
		if err := op(live); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		bounds = append(bounds, live.WALStats().Bytes)
	}
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}
	n := len(ops)

	// Kill point: crash mid-append. Cuts inside the length prefix, mid
	// body, one byte short of complete, and exactly at a frame boundary —
	// recovery keeps the intact prefix and drops the torn frame. The
	// first case also proves recovery leaves a fully live DB (churn +
	// Compact stay in lockstep with the twin).
	tearCases := []struct {
		name    string
		cut     int64
		wantOps int
	}{
		{"tear-mid-last-frame", bounds[n-1] + (bounds[n]-bounds[n-1])/2, n - 1},
		{"tear-almost-complete", bounds[n] - 1, n - 1},
		{"tear-length-prefix", bounds[2] + 2, 2},
		{"tear-at-boundary", bounds[3], 3},
	}
	for _, tc := range tearCases {
		p := filepath.Join(dir, tc.name+".wal")
		mangleCopy(t, fullWAL, p, tc.cut, -1)
		gateRecovery(t, cfg, p, ops, tc.wantOps, tc.name, tc.name == "tear-mid-last-frame")
	}

	// Corruption mode: a flipped bit inside the final record. The tail
	// cannot be distinguished from a torn rewrite, so it is dropped.
	p := filepath.Join(dir, "flip-tail.wal")
	mangleCopy(t, fullWAL, p, bounds[n], bounds[n-1]+9)
	gateRecovery(t, cfg, p, ops, n-1, "flip-tail", false)

	// Corruption mode: a flipped bit before the tail. Acknowledged
	// records follow the damage, so recovery must refuse, typed.
	p = filepath.Join(dir, "flip-mid.wal")
	mangleCopy(t, fullWAL, p, bounds[n], bounds[1]+9)
	rcfg := cfg
	rcfg.WALPath = p
	if _, err := Open(churnNetwork(t), rcfg); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("flip-mid: err=%v, want ErrWALCorrupt", err)
	}

	// Kill point: the process dies inside the append syscall (injected
	// short write). The caller got an error, the log is poisoned like a
	// crashed process's, and recovery recovers the acknowledged prefix.
	shortWAL := filepath.Join(dir, "short.wal")
	scfg := cfg
	scfg.WALPath = shortWAL
	live2, err := Open(churnNetwork(t), scfg)
	if err != nil {
		t.Fatal(err)
	}
	k := 4
	applyOps(t, live2, ops[:k])
	failpoint.Arm("wal.append", failpoint.Failure{Mode: failpoint.ModeShortWrite, N: 7, Count: 1})
	if err := ops[k](live2); err == nil {
		t.Fatal("short-write: op reported success")
	}
	if err := ops[k+1](live2); err == nil {
		t.Fatal("short-write: poisoned log accepted another update")
	}
	failpoint.Reset()
	gateRecovery(t, cfg, shortWAL, ops, k, "short-write", false)

	// Corruption mode: the device flips a bit while acknowledging the
	// write (injected at the append site). The flipped record is the
	// tail, so recovery drops it and keeps the acknowledged prefix.
	flipWAL := filepath.Join(dir, "flip-inject.wal")
	icfg := cfg
	icfg.WALPath = flipWAL
	live3, err := Open(churnNetwork(t), icfg)
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, live3, ops[:k])
	failpoint.Arm("wal.append", failpoint.Failure{Mode: failpoint.ModeBitFlip, N: 13, Count: 1})
	if err := ops[k](live3); err != nil {
		t.Fatalf("bit-flip append should not fail in flight: %v", err)
	}
	failpoint.Reset()
	if err := live3.Close(); err != nil {
		t.Fatal(err)
	}
	gateRecovery(t, cfg, flipWAL, ops, k, "flip-inject", false)

	// Kill point: crash before the checkpoint rename. The snapshot fails
	// whole, the log is untouched, recovery replays everything.
	renameWAL := filepath.Join(dir, "rename.wal")
	rncfg := cfg
	rncfg.WALPath = renameWAL
	live4, err := Open(churnNetwork(t), rncfg)
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, live4, ops)
	failpoint.Arm("snapshot.rename", failpoint.Failure{Mode: failpoint.ModeError, Err: errors.New("injected crash"), Count: 1})
	if err := live4.Snapshot(filepath.Join(dir, "never.ckpt")); err == nil {
		t.Fatal("snapshot should fail at the rename kill point")
	}
	failpoint.Reset()
	if err := live4.Close(); err != nil {
		t.Fatal(err)
	}
	gateRecovery(t, cfg, renameWAL, ops, n, "rename-crash", false)

	// Kill point: crash between the checkpoint rename and the log
	// truncation. The snapshot is durable, the log still holds every
	// record — recovery from the pair skips the double-apply window, and
	// recovery from the base alone still replays the full log.
	truncWAL := filepath.Join(dir, "trunc.wal")
	ckpt := filepath.Join(dir, "trunc.ckpt")
	tccfg := cfg
	tccfg.WALPath = truncWAL
	live5, err := Open(churnNetwork(t), tccfg)
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, live5, ops[:k])
	failpoint.Arm("wal.truncate", failpoint.Failure{Mode: failpoint.ModeError, Err: errors.New("injected crash"), Count: 1})
	if err := live5.Snapshot(ckpt); err == nil {
		t.Fatal("snapshot should report the failed truncation")
	}
	failpoint.Reset()
	if st := live5.WALStats(); st.Pending != int64(k) {
		t.Fatalf("failed truncation must leave the log intact: %+v", st)
	}
	applyOps(t, live5, ops[k:])
	if err := live5.Close(); err != nil {
		t.Fatal(err)
	}
	// Base + full log.
	gateRecovery(t, cfg, truncWAL, ops, n, "trunc-crash-base", false)
	// Checkpoint + full log: records <= the checkpoint LSN are skipped.
	pcfg := cfg
	pcfg.WALPath = truncWAL
	rec, err := OpenSnapshot(ckpt, pcfg)
	if err != nil {
		t.Fatalf("trunc-crash-pair: OpenSnapshot: %v", err)
	}
	if got := rec.WALStats().AppliedLSN; got != uint64(n) {
		t.Fatalf("trunc-crash-pair: applied LSN %d, want %d", got, n)
	}
	twin := crashTwin(t, cfg, ops, n)
	mustMatchDB(t, rec, twin, "trunc-crash-pair")
}
