package gpssn

import (
	"gpssn/internal/core"
	"gpssn/internal/socialnet"
)

// Analysis summarizes the structural properties of a network that the
// GP-SSN pruning rules depend on. Produce one with Network.Analyze.
type Analysis struct {
	// MaxDegree is the largest friendship degree.
	MaxDegree int
	// DegreeHistogram[d] counts users with degree d.
	DegreeHistogram []int
	// Clustering is the mean local clustering coefficient.
	Clustering float64
	// LargestComponent is the fraction of users in the largest connected
	// component.
	LargestComponent float64
	// Homophily is the mean interest score over friend pairs minus the
	// mean over random stranger pairs; positive values mean the
	// interest-region pruning has power.
	Homophily float64
	// MeanHops estimates the mean hop distance between reachable users
	// (sampled from a few BFS sources).
	MeanHops float64
}

// Analyze computes the structural summary of the network. It runs a few
// BFS traversals; on paper-scale networks it takes a moment.
func (n *Network) Analyze() Analysis {
	g := n.ds.Social
	sim := func(a, b socialnet.UserID) float64 {
		return core.InterestScore(n.ds.Users[a].Interests, n.ds.Users[b].Interests)
	}
	var sources []socialnet.UserID
	step := g.NumUsers()/4 + 1
	for u := 0; u < g.NumUsers(); u += step {
		sources = append(sources, socialnet.UserID(u))
	}
	return Analysis{
		MaxDegree:        g.MaxDegree(),
		DegreeHistogram:  g.DegreeHistogram(),
		Clustering:       g.ClusteringCoefficient(),
		LargestComponent: g.LargestComponentFraction(),
		Homophily:        g.Homophily(sim),
		MeanHops:         g.MeanHopDistance(sources),
	}
}
