package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"gpssn/internal/core"
	"gpssn/internal/gen"
	"gpssn/internal/index"
	"gpssn/internal/pivot"
	"gpssn/internal/roadnet/ch"
	"gpssn/internal/roadnet/hl"
)

// scale1mReport is the BENCH_scale1m.json payload: the million-scale tier's
// end-to-end numbers — generation/build wall times, label-store footprint,
// query latency percentiles, and process peak RSS. At -scale 1.0 the dataset
// is ~1M road vertices and ~1M social users, an order of magnitude past the
// paper's evaluation (Section 6 stops at 50K).
type scale1mReport struct {
	Scale        float64 `json:"scale"`
	RoadVertices int     `json:"road_vertices"`
	RoadEdges    int     `json:"road_edges"`
	Users        int     `json:"users"`
	POIs         int     `json:"pois"`
	Queries      int     `json:"queries"`
	Seed         int64   `json:"seed"`

	GenSec     float64 `json:"gen_sec"`
	CHBuildSec float64 `json:"ch_build_sec"`
	HLBuildSec float64 `json:"hl_build_sec"`
	IndexSec   float64 `json:"index_build_sec"`

	AvgLabelSize float64 `json:"avg_label_size"`
	MaxLabelSize int     `json:"max_label_size"`
	OracleBytes  int64   `json:"oracle_bytes"`
	ArenaBytes   int64   `json:"arena_bytes"`

	P50Ms float64 `json:"query_p50_ms"`
	P90Ms float64 `json:"query_p90_ms"`
	P99Ms float64 `json:"query_p99_ms"`
	Found int     `json:"found"`

	PeakRSSBytes   int64  `json:"peak_rss_bytes"`
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
}

// runScale1m generates the million-scale tier with gen.Large, builds the
// CH + hub-label oracle and both indexes, runs the default-parameter query
// workload, and reports latency percentiles plus memory footprint. The
// lattice road network has grid-like treewidth, so hub labels grow ~sqrt(|V|)
// per vertex (~300 entries at 1M) — the rank-space label store holds the
// whole thing in three contiguous arrays. With cfg.JSONOut set the report is
// also written as JSON (the `make bench-scale` BENCH_scale1m.json).
func runScale1m(w io.Writer, cfg RunConfig) error {
	cfg = cfg.withDefaults()
	report := scale1mReport{Scale: cfg.Scale, Queries: cfg.Queries, Seed: cfg.Seed}

	nv := scaleCount(1_000_000, cfg.Scale)
	nu := scaleCount(1_000_000, cfg.Scale)
	np := scaleCount(100_000, cfg.Scale)
	fmt.Fprintf(w, "# scale1m: %d road vertices, %d users, %d POIs (scale=%.2f)\n", nv, nu, np, cfg.Scale)

	start := time.Now()
	ds, err := gen.Large(gen.Config{
		Name: "scale1m", Seed: cfg.Seed,
		RoadVertices: nv, SocialUsers: nu, POIs: np,
	})
	if err != nil {
		return err
	}
	report.GenSec = time.Since(start).Seconds()
	report.RoadVertices = ds.Road.NumVertices()
	report.RoadEdges = ds.Road.NumEdges()
	report.Users = len(ds.Users)
	report.POIs = len(ds.POIs)
	fmt.Fprintf(w, "# generated in %.1fs (%d edges, avg degree %.2f)\n",
		report.GenSec, report.RoadEdges, ds.Road.AvgDegree())

	start = time.Now()
	cho := ch.Build(ds.Road)
	report.CHBuildSec = time.Since(start).Seconds()
	start = time.Now()
	hlo := hl.FromCH(cho)
	report.HLBuildSec = time.Since(start).Seconds()
	ds.Road.SetDistanceOracle(hlo)
	report.AvgLabelSize = hlo.AvgLabelSize()
	report.MaxLabelSize = hlo.MaxLabelSize()
	fmt.Fprintf(w, "# CH %.1fs + HL %.1fs; labels avg %.1f max %d (%d MB)\n",
		report.CHBuildSec, report.HLBuildSec,
		report.AvgLabelSize, report.MaxLabelSize, hlo.MemoryBytes()>>20)

	start = time.Now()
	road, err := index.BuildRoad(ds, index.RoadConfig{
		Pivots: pivot.RandomRoad(ds.Road, 5, cfg.Seed+1), RMin: 0.5, RMax: 4,
	})
	if err != nil {
		return err
	}
	social, err := index.BuildSocial(ds, index.SocialConfig{
		RoadPivots: road.Pivots, SocialPivots: pivot.RandomSocial(ds.Social, 5, cfg.Seed+2),
	})
	if err != nil {
		return err
	}
	engine := core.NewEngine(ds, road, social, core.Options{RefineBudget: 200000})
	report.IndexSec = time.Since(start).Seconds()
	fmt.Fprintf(w, "# indexes built in %.1fs\n", report.IndexSec)

	env := &Env{DS: ds, Engine: engine}
	users := env.QueryUsers(cfg.Queries, cfg.Seed+100)
	lat := make([]time.Duration, 0, len(users))
	for _, u := range users {
		qStart := time.Now()
		res, _, err := engine.Query(u, defaultParams())
		if err != nil {
			return fmt.Errorf("scale1m: query user %d: %w", u, err)
		}
		lat = append(lat, time.Since(qStart))
		if res.Found {
			report.Found++
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pctl := func(p float64) float64 {
		if len(lat) == 0 {
			return 0
		}
		i := int(p * float64(len(lat)-1))
		return float64(lat[i]) / float64(time.Millisecond)
	}
	report.P50Ms, report.P90Ms, report.P99Ms = pctl(0.50), pctl(0.90), pctl(0.99)

	ms := engine.MemoryStats()
	report.OracleBytes = ms.OracleBytes
	report.ArenaBytes = ms.ArenaBytes
	var rt runtime.MemStats
	runtime.ReadMemStats(&rt)
	report.HeapAllocBytes = rt.HeapAlloc
	report.PeakRSSBytes = peakRSSBytes()

	fmt.Fprintf(w, "# %d/%d queries found an answer\n", report.Found, len(users))
	fmt.Fprintf(w, "%-24s %12s %12s %12s\n", "latency", "p50", "p90", "p99")
	fmt.Fprintf(w, "%-24s %10.1fms %10.1fms %10.1fms\n", "query", report.P50Ms, report.P90Ms, report.P99Ms)
	fmt.Fprintf(w, "# memory: oracle %d MB, arenas %d KB, heap %d MB, peak RSS %d MB\n",
		report.OracleBytes>>20, report.ArenaBytes>>10, report.HeapAllocBytes>>20, report.PeakRSSBytes>>20)

	if cfg.JSONOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.JSONOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "# wrote %s\n", cfg.JSONOut)
	}
	return nil
}

// peakRSSBytes reads the process high-water resident set (VmHWM) from
// /proc/self/status; 0 on platforms without procfs.
func peakRSSBytes() int64 {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}
