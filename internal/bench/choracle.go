package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"time"

	"gpssn/internal/model"
	"gpssn/internal/roadnet"
	"gpssn/internal/roadnet/ch"
	"gpssn/internal/socialnet"
)

// choracleReport is the JSON payload the choracle experiment writes when
// RunConfig.JSONOut is set (the `make bench-smoke` BENCH_choracle.json).
type choracleReport struct {
	Scale    float64          `json:"scale"`
	Queries  int              `json:"queries"`
	Seed     int64            `json:"seed"`
	Datasets []choracleRow    `json:"datasets"`
	P2P      choracleP2PStats `json:"p2p"`
}

// choracleRow compares full GP-SSN query workloads under the two oracles.
type choracleRow struct {
	Dataset          string  `json:"dataset"`
	RoadVertices     int     `json:"road_vertices"`
	CHShortcuts      int     `json:"ch_shortcuts"`
	AvgCPUDijkstraMs float64 `json:"avg_query_cpu_dijkstra_ms"`
	AvgCPUCHMs       float64 `json:"avg_query_cpu_ch_ms"`
	QuerySpeedup     float64 `json:"query_speedup"`
	Found            int     `json:"found"`
	AnswersIdentical bool    `json:"answers_identical"`
}

// choracleP2PStats is the point-to-point microbenchmark on the largest
// generated road network (paper-scale |V(G_r)| = 30000, independent of the
// run's dataset scale).
type choracleP2PStats struct {
	RoadVertices     int     `json:"road_vertices"`
	CHBuildMs        float64 `json:"ch_build_ms"`
	CHShortcuts      int     `json:"ch_shortcuts"`
	FullDijkstraUs   float64 `json:"full_dijkstra_us_per_op"`
	CHPointToPointUs float64 `json:"ch_p2p_us_per_op"`
	Speedup          float64 `json:"speedup_vs_full_dijkstra"`
}

// runChoracle compares the CH oracle against plain Dijkstra: full query
// workloads per dataset (answers must agree), then a point-to-point
// microbenchmark on a paper-scale road network. With cfg.JSONOut set the
// numbers are also written as JSON.
func runChoracle(w io.Writer, cfg RunConfig) error {
	cfg = cfg.withDefaults()
	report := choracleReport{Scale: cfg.Scale, Queries: cfg.Queries, Seed: cfg.Seed}

	fmt.Fprintf(w, "# Distance oracle: contraction hierarchy (ch) vs plain searches (dijkstra)\n")
	fmt.Fprintf(w, "%-9s %12s %14s %14s %9s %6s %10s\n",
		"dataset", "shortcuts", "CPU/q dij", "CPU/q ch", "speedup", "found", "identical")
	for _, k := range synthKinds {
		specD := specFor(k, cfg)
		specD.DistanceOracle = "dijkstra"
		specC := specFor(k, cfg)
		specC.DistanceOracle = "ch"
		envD, err := GetEnv(specD)
		if err != nil {
			return err
		}
		envC, err := GetEnv(specC)
		if err != nil {
			return err
		}
		users := envD.QueryUsers(cfg.Queries, cfg.Seed+100)
		var cpuD, cpuC time.Duration
		found := 0
		identical := true
		for _, u := range users {
			resD, stD, err := envD.Engine.Query(u, defaultParams())
			if err != nil {
				return err
			}
			resC, stC, err := envC.Engine.Query(u, defaultParams())
			if err != nil {
				return err
			}
			cpuD += stD.CPUTime
			cpuC += stC.CPUTime
			if resD.Found != resC.Found {
				return fmt.Errorf("choracle: user %d found diverged (dijkstra=%v ch=%v)", u, resD.Found, resC.Found)
			}
			if resD.Found {
				found++
				if resD.Anchor != resC.Anchor {
					// CH sums shortcut weights where Dijkstra sums edges
					// one at a time, so equal-cost anchors can tie-break
					// differently by 1 ULP. Anything beyond a cost tie is
					// a real divergence.
					if !distNear(resD.MaxDist, resC.MaxDist) {
						identical = false
					}
				} else if !equalIDs(resD.S, resC.S) || !equalPOIs(resD.R, resC.R) ||
					!distNear(resD.MaxDist, resC.MaxDist) {
					identical = false
				}
			}
		}
		if !identical {
			return fmt.Errorf("choracle: %s answers diverged between oracles", k)
		}
		n := time.Duration(maxInt(len(users), 1))
		oracle, _ := envC.DS.Road.Oracle().(*ch.Oracle)
		row := choracleRow{
			Dataset:          k.String(),
			RoadVertices:     envC.DS.Road.NumVertices(),
			AvgCPUDijkstraMs: float64(cpuD/n) / float64(time.Millisecond),
			AvgCPUCHMs:       float64(cpuC/n) / float64(time.Millisecond),
			Found:            found,
			AnswersIdentical: identical,
		}
		if oracle != nil {
			row.CHShortcuts = oracle.NumShortcuts()
		}
		if cpuC > 0 {
			row.QuerySpeedup = float64(cpuD) / float64(cpuC)
		}
		report.Datasets = append(report.Datasets, row)
		fmt.Fprintf(w, "%-9s %12d %14s %14s %8.2fx %6d %10v\n",
			k, row.CHShortcuts, (cpuD / n).Round(time.Microsecond),
			(cpuC / n).Round(time.Microsecond), row.QuerySpeedup, found, identical)
	}

	p2p, err := choracleP2P(w, cfg)
	if err != nil {
		return err
	}
	report.P2P = p2p

	if cfg.JSONOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.JSONOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "# wrote %s\n", cfg.JSONOut)
	}
	return nil
}

// choracleP2P measures point-to-point latency on the paper's largest
// synthetic road network (|V(G_r)| = 30000): a full one-to-all Dijkstra
// (the cost the refinement hot path paid per user before the oracle)
// against a CH bidirectional query.
func choracleP2P(w io.Writer, cfg RunConfig) (choracleP2PStats, error) {
	env, err := GetEnv(EnvSpec{
		Kind: UNI, Seed: cfg.Seed,
		// Minimal social side: only the road network matters here.
		RoadVertices: 30000, Users: 20, POIs: 20,
	})
	if err != nil {
		return choracleP2PStats{}, err
	}
	road := env.DS.Road
	prev := road.Oracle()
	defer road.SetDistanceOracle(prev)

	start := time.Now()
	oracle := ch.Build(road)
	buildTime := time.Since(start)

	rng := rand.New(rand.NewSource(cfg.Seed + 17))
	randAttach := func() roadnet.Attach {
		return road.AttachAt(roadnet.EdgeID(rng.Intn(road.NumEdges())), rng.Float64())
	}
	const pairs = 32
	as := make([]roadnet.Attach, pairs)
	bs := make([]roadnet.Attach, pairs)
	for i := range as {
		as[i], bs[i] = randAttach(), randAttach()
	}

	// Full one-to-all Dijkstra per op (the pre-oracle hot-path shape).
	road.SetDistanceOracle(nil)
	fullDists := make([]float64, pairs)
	start = time.Now()
	for i := range as {
		fullDists[i] = road.DistAttachMany(as[i], bs[i:i+1])[0]
	}
	fullPer := time.Since(start) / pairs

	// CH bidirectional point-to-point, many repetitions per pair.
	road.SetDistanceOracle(oracle)
	const reps = 20
	start = time.Now()
	for r := 0; r < reps; r++ {
		for i := range as {
			d := road.DistAttach(as[i], bs[i])
			if r == 0 && !distNear(d, fullDists[i]) {
				return choracleP2PStats{}, fmt.Errorf("choracle: p2p pair %d diverged (ch=%v dijkstra=%v)", i, d, fullDists[i])
			}
		}
	}
	chPer := time.Since(start) / (pairs * reps)

	stats := choracleP2PStats{
		RoadVertices:     road.NumVertices(),
		CHBuildMs:        float64(buildTime) / float64(time.Millisecond),
		CHShortcuts:      oracle.NumShortcuts(),
		FullDijkstraUs:   float64(fullPer) / float64(time.Microsecond),
		CHPointToPointUs: float64(chPer) / float64(time.Microsecond),
	}
	if chPer > 0 {
		stats.Speedup = float64(fullPer) / float64(chPer)
	}
	fmt.Fprintf(w, "# p2p on |V(Gr)|=%d: CH build %s (+%d shortcuts); full Dijkstra %s/op, CH %s/op => %.1fx\n",
		stats.RoadVertices, buildTime.Round(time.Millisecond), stats.CHShortcuts,
		fullPer.Round(time.Microsecond), chPer.Round(time.Nanosecond), stats.Speedup)
	return stats, nil
}

// runAblationChOracle is the ablation-table view of the same comparison.
func runAblationChOracle(w io.Writer, cfg RunConfig) error {
	fmt.Fprintf(w, "# Ablation: CH distance oracle (baseline) vs plain Dijkstra (variant)\n")
	return compare(w, cfg, "distance-oracle", func(k DatasetKind, variant bool) EnvSpec {
		spec := specFor(k, cfg.withDefaults())
		if variant {
			spec.DistanceOracle = "dijkstra"
		} else {
			spec.DistanceOracle = "ch"
		}
		return spec
	})
}

func equalIDs(a, b []socialnet.UserID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalPOIs(a, b []model.POIID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func distNear(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.IsInf(a, 1) && math.IsInf(b, 1)
	}
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(a, b))
}
