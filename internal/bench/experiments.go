package bench

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"gpssn/internal/core"
)

// RunConfig tunes an experiment run.
type RunConfig struct {
	// Scale multiplies the paper's dataset sizes (1.0 = published sizes).
	// Default 0.1, which preserves the figures' shapes at a fraction of
	// the build time.
	Scale float64
	// Queries is the number of query issuers per configuration (default 8).
	Queries int
	// Seed drives dataset generation and issuer selection.
	Seed int64
	// BaselineSamples is the sample count of the Fig. 8 Baseline cost
	// estimator (the paper uses 100; default 20).
	BaselineSamples int
	// JSONOut, when non-empty, is a file path where experiments that
	// support machine-readable output (currently choracle) also write a
	// JSON report. Stdout carries the human tables either way.
	JSONOut string
	// Warmup is the number of leading logical requests excluded from the
	// serve experiment's latency percentiles, so cold-cache and
	// oracle-build transients stop skewing p50/p90/p99. Default 0.
	Warmup int
	// Compare makes the serve experiment run twice on the same seed and
	// workload — shared-work memo off, then on — and report both (the
	// memo-off JSON lands next to JSONOut with a "_nomemo" suffix).
	Compare bool
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Scale == 0 {
		c.Scale = 0.1
	}
	if c.Queries == 0 {
		c.Queries = 8
	}
	if c.BaselineSamples == 0 {
		c.BaselineSamples = 20
	}
	return c
}

// defaultParams are the Table 3 bold defaults.
func defaultParams() core.Params {
	return core.Params{Gamma: 0.5, Tau: 5, Theta: 0.5, R: 2, Metric: core.MetricDotProduct}
}

// Experiment regenerates one table or figure.
type Experiment struct {
	Name        string
	Description string
	Run         func(w io.Writer, cfg RunConfig) error
}

// registered holds experiments contributed from outside this package.
// The serving load generator lives in internal/serve (it drives the
// public gpssn facade, which this package must not import — the root
// package's tests import bench), and cmd/gpssn-bench registers it here.
var registered []Experiment

// Register appends an externally defined experiment to the registry.
// Call it before Experiments/Find; not safe for concurrent use.
func Register(e Experiment) { registered = append(registered, e) }

// Experiments returns the registry of all reproducible tables and figures,
// in presentation order, followed by any Register-ed extras.
func Experiments() []Experiment {
	return append([]Experiment{
		{"table2", "Table 2: dataset statistics", runTable2},
		{"fig7a", "Fig 7(a): index-level vs object-level pruning power", runFig7a},
		{"fig7b", "Fig 7(b): user pruning breakdown on social networks", runFig7b},
		{"fig7c", "Fig 7(c): POI pruning breakdown on road networks", runFig7c},
		{"fig7d", "Fig 7(d): pruning power over user-POI group pairs", runFig7d},
		{"fig8", "Fig 8: GP-SSN vs Baseline (CPU time and I/O)", runFig8},
		{"fig9", "Fig 9: effect of the user group size tau", runFig9},
		{"fig10", "Fig 10: effect of the number of POIs n", runFig10},
		{"fig11", "Fig 11: effect of |V(G_r)|", runFig11},
		{"appP-gamma", "Appendix P: effect of gamma", runAppPGamma},
		{"appP-theta", "Appendix P: effect of theta", runAppPTheta},
		{"appP-r", "Appendix P: effect of the radius r", runAppPR},
		{"appP-pivots", "Appendix P: effect of the number of pivots", runAppPPivots},
		{"appP-vs", "Appendix P: effect of |V(G_s)|", runAppPVs},
		{"ablation-pivots", "Ablation: cost-model pivot selection vs random", runAblationPivots},
		{"ablation-indexpruning", "Ablation: index-level pruning on vs off", runAblationIndexPruning},
		{"ablation-distance", "Ablation: pivot distance pruning on vs off", runAblationDistance},
		{"ablation-rtree", "Ablation: R* split vs quadratic split", runAblationRTree},
		{"ablation-sampling", "Ablation: exact refinement vs sampling", runAblationSampling},
		{"ablation-choracle", "Ablation: CH distance oracle vs plain Dijkstra", runAblationChOracle},
		{"choracle", "Distance oracle: CH vs Dijkstra (query CPU + p2p microbench, JSON-capable)", runChoracle},
		{"hublabel", "Distance oracle: hub labels vs CH vs Dijkstra (query CPU + p2p microbench, JSON-capable)", runHublabel},
		{"scale1m", "Million-scale tier: 1M-vertex/1M-user end-to-end build + query latency + memory (JSON-capable)", runScale1m},
		{"ext-metrics", "Extension: Jaccard/Hamming interest metrics", runExtMetrics},
		{"ext-topk", "Extension: top-k GP-SSN", runExtTopK},
		{"parallel", "Extension: parallel refinement speedup vs worker count", runParallel},
	}, registered...)
}

// Find returns the experiment with the given name.
func Find(name string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// allKinds is the dataset order used by the paper's bar charts.
var allKinds = []DatasetKind{BriCal, GowCol, UNI, ZIPF}

// synthKinds are the datasets used by the parameter sweeps.
var synthKinds = []DatasetKind{UNI, ZIPF}

func specFor(kind DatasetKind, cfg RunConfig) EnvSpec {
	return EnvSpec{Kind: kind, Scale: cfg.Scale, Seed: cfg.Seed}
}

func runTable2(w io.Writer, cfg RunConfig) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "# Table 2: dataset statistics (scale=%.2f)\n", cfg.Scale)
	fmt.Fprintf(w, "%-9s %10s %9s %10s %9s %7s\n",
		"dataset", "|V(Gs)|", "deg(Gs)", "|V(Gr)|", "deg(Gr)", "n")
	for _, k := range allKinds {
		env, err := GetEnv(specFor(k, cfg))
		if err != nil {
			return err
		}
		s := env.DS.Stats()
		fmt.Fprintf(w, "%-9s %10d %9.1f %10d %9.1f %7d\n",
			k, s.SocialUsers, s.SocialDeg, s.RoadVerts, s.RoadDeg, s.NumPOIs)
	}
	return nil
}

// pruningAgg runs the default-parameter queries on a dataset and returns
// the aggregated stats. Results are cached per (dataset, run config):
// Fig. 7(a)-(d) and Fig. 8 all report different views of the same runs.
var (
	aggMu    sync.Mutex
	aggCache = map[aggKey]Agg{}
)

type aggKey struct {
	kind    DatasetKind
	scale   float64
	queries int
	seed    int64
}

func pruningAgg(kind DatasetKind, cfg RunConfig) (Agg, error) {
	key := aggKey{kind, cfg.Scale, cfg.Queries, cfg.Seed}
	aggMu.Lock()
	if agg, ok := aggCache[key]; ok {
		aggMu.Unlock()
		return agg, nil
	}
	aggMu.Unlock()
	env, err := GetEnv(specFor(kind, cfg))
	if err != nil {
		return Agg{}, err
	}
	users := env.QueryUsers(cfg.Queries, cfg.Seed+100)
	agg, err := env.RunQueries(defaultParams(), users)
	if err != nil {
		return Agg{}, err
	}
	aggMu.Lock()
	aggCache[key] = agg
	aggMu.Unlock()
	return agg, nil
}

func pct(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

func runFig7a(w io.Writer, cfg RunConfig) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "# Fig 7(a): pruning power of index-level and object-level pruning (%%)\n")
	fmt.Fprintf(w, "%-9s %12s %12s %12s %12s %12s %12s\n",
		"dataset", "SN-index", "SN-object", "SN-total", "RN-index", "RN-object", "RN-total")
	for _, k := range allKinds {
		agg, err := pruningAgg(k, cfg)
		if err != nil {
			return err
		}
		s := agg.Sum
		snIdx := pct(s.SNIndexPruned, s.SNUsersTotal)
		snObjRel := pct(s.SNObjPruned, s.SNUsersTotal-s.SNIndexPruned)
		snTotal := pct(s.SNIndexPruned+s.SNObjPruned, s.SNUsersTotal)
		rnIdx := pct(s.RNIndexPruned, s.RNPOIsTotal)
		rnObjRel := pct(s.RNObjPruned, s.RNPOIsTotal-s.RNIndexPruned)
		rnTotal := pct(s.RNIndexPruned+s.RNObjPruned, s.RNPOIsTotal)
		fmt.Fprintf(w, "%-9s %11.1f%% %11.1f%% %11.1f%% %11.1f%% %11.1f%% %11.1f%%\n",
			k, snIdx, snObjRel, snTotal, rnIdx, rnObjRel, rnTotal)
	}
	fmt.Fprintln(w, "# paper: SN index 40-50%, SN object 50-58% (overall 94-97%);")
	fmt.Fprintln(w, "#        RN index 48-70%, RN object 30-42% (overall 96-98%)")
	return nil
}

func runFig7b(w io.Writer, cfg RunConfig) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "# Fig 7(b): user pruning on social networks (%% of all users)\n")
	fmt.Fprintf(w, "%-9s %16s %16s\n", "dataset", "SN-distance", "interest-score")
	for _, k := range allKinds {
		agg, err := pruningAgg(k, cfg)
		if err != nil {
			return err
		}
		s := agg.Sum
		dist := pct(s.SNIndexPrunedDist+s.SNObjPrunedDist, s.SNUsersTotal)
		interest := pct(s.SNIndexPrunedInterest+s.SNObjPrunedInterest, s.SNUsersTotal)
		fmt.Fprintf(w, "%-9s %15.1f%% %15.1f%%\n", k, dist, interest)
	}
	fmt.Fprintln(w, "# paper: SN-distance pruning 24-30%, interest score pruning 65-75%")
	return nil
}

func runFig7c(w io.Writer, cfg RunConfig) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "# Fig 7(c): POI pruning on road networks (%% of all POIs)\n")
	fmt.Fprintf(w, "%-9s %16s %16s\n", "dataset", "RN-distance", "matching-score")
	for _, k := range allKinds {
		agg, err := pruningAgg(k, cfg)
		if err != nil {
			return err
		}
		s := agg.Sum
		dist := pct(s.RNIndexPrunedDist+s.RNObjPrunedDist, s.RNPOIsTotal)
		match := pct(s.RNIndexPrunedMatch+s.RNObjPrunedMatch, s.RNPOIsTotal)
		fmt.Fprintf(w, "%-9s %15.1f%% %15.1f%%\n", k, dist, match)
	}
	fmt.Fprintln(w, "# paper: RN-distance pruning 38-58%, matching score pruning 55-68%")
	return nil
}

func runFig7d(w io.Writer, cfg RunConfig) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "# Fig 7(d): overall pruning power over user-POI group pairs\n")
	fmt.Fprintf(w, "%-9s %16s %22s\n", "dataset", "pairs-evaluated", "pruning-power")
	for _, k := range allKinds {
		agg, err := pruningAgg(k, cfg)
		if err != nil {
			return err
		}
		// Total pair space per query is 2^PairsTotalLog2; across queries it
		// is queries x that. Pruning power = 1 - evaluated/total.
		totalLog2 := agg.PairsTotalLog2
		evaluated := float64(agg.PairsEval) / float64(maxInt(agg.Queries, 1))
		perQueryEval := evaluated
		frac := perQueryEval / pow2(totalLog2)
		fmt.Fprintf(w, "%-9s %16.0f   1 - %.3e (>= %.5f%%)\n",
			k, perQueryEval, frac, 100*(1-frac))
	}
	fmt.Fprintln(w, "# paper: 99.9993% - 99.9999%")
	return nil
}

func runFig8(w io.Writer, cfg RunConfig) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "# Fig 8: GP-SSN vs Baseline (per-query averages)\n")
	fmt.Fprintf(w, "%-9s %14s %10s %22s %18s\n",
		"dataset", "GP-SSN CPU", "GP-SSN IO", "Baseline CPU (est.)", "speedup (x)")
	for _, k := range allKinds {
		env, err := GetEnv(specFor(k, cfg))
		if err != nil {
			return err
		}
		agg, err := pruningAgg(k, cfg)
		if err != nil {
			return err
		}
		base := &core.Baseline{DS: env.DS}
		uq := env.QueryUsers(1, cfg.Seed+100)[0]
		est := base.EstimateCost(uq, defaultParams(), cfg.BaselineSamples, cfg.Seed+7)
		speedup := est.EstimatedHours * 3600 / agg.AvgCPU.Seconds()
		fmt.Fprintf(w, "%-9s %14s %10.0f %17.3e hrs %18.3e\n",
			k, agg.AvgCPU.Round(time.Microsecond), agg.AvgIO, est.EstimatedHours, speedup)
	}
	fmt.Fprintln(w, "# paper: GP-SSN 0.017-0.035 s and 201-303 I/Os; Baseline ~1.9e13 days")
	return nil
}

// sweep runs a one-parameter sweep over the synthetic datasets.
func sweep(w io.Writer, cfg RunConfig, header string, values []float64,
	format func(v float64) string,
	mk func(kind DatasetKind, v float64) (EnvSpec, core.Params)) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "%-9s %10s %14s %10s %8s\n", "dataset", header, "CPU", "I/O", "found")
	for _, k := range synthKinds {
		for _, v := range values {
			spec, params := mk(k, v)
			env, err := GetEnv(spec)
			if err != nil {
				return err
			}
			users := env.QueryUsers(cfg.Queries, cfg.Seed+100)
			agg, err := env.RunQueries(params, users)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-9s %10s %14s %10.0f %7d%%\n",
				k, format(v), agg.AvgCPU.Round(time.Microsecond), agg.AvgIO,
				int(pct(agg.Found, agg.Queries)))
		}
	}
	return nil
}

func runFig9(w io.Writer, cfg RunConfig) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "# Fig 9: GP-SSN performance vs user group size tau\n")
	return sweep(w, cfg, "tau", []float64{2, 3, 5, 7, 10},
		func(v float64) string { return fmt.Sprintf("%d", int(v)) },
		func(k DatasetKind, v float64) (EnvSpec, core.Params) {
			p := defaultParams()
			p.Tau = int(v)
			return specFor(k, cfg), p
		})
}

func runFig10(w io.Writer, cfg RunConfig) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "# Fig 10: GP-SSN performance vs number of POIs n\n")
	return sweep(w, cfg, "n", []float64{3000, 5000, 10000, 15000, 30000},
		func(v float64) string { return fmt.Sprintf("%.0fK", v/1000) },
		func(k DatasetKind, v float64) (EnvSpec, core.Params) {
			spec := specFor(k, cfg)
			spec.POIs = scaleCount(v, cfg.Scale)
			return spec, defaultParams()
		})
}

func runFig11(w io.Writer, cfg RunConfig) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "# Fig 11: GP-SSN performance vs |V(G_r)|\n")
	return sweep(w, cfg, "|V(Gr)|", []float64{10000, 20000, 30000, 40000, 50000},
		func(v float64) string { return fmt.Sprintf("%.0fK", v/1000) },
		func(k DatasetKind, v float64) (EnvSpec, core.Params) {
			spec := specFor(k, cfg)
			spec.RoadVertices = scaleCount(v, cfg.Scale)
			return spec, defaultParams()
		})
}

func runAppPGamma(w io.Writer, cfg RunConfig) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "# Appendix P: GP-SSN performance vs gamma\n")
	return sweep(w, cfg, "gamma", []float64{0.2, 0.3, 0.5, 0.7, 0.9},
		func(v float64) string { return fmt.Sprintf("%.1f", v) },
		func(k DatasetKind, v float64) (EnvSpec, core.Params) {
			p := defaultParams()
			p.Gamma = v
			return specFor(k, cfg), p
		})
}

func runAppPTheta(w io.Writer, cfg RunConfig) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "# Appendix P: GP-SSN performance vs theta\n")
	return sweep(w, cfg, "theta", []float64{0.2, 0.3, 0.5, 0.7, 0.9},
		func(v float64) string { return fmt.Sprintf("%.1f", v) },
		func(k DatasetKind, v float64) (EnvSpec, core.Params) {
			p := defaultParams()
			p.Theta = v
			return specFor(k, cfg), p
		})
}

func runAppPR(w io.Writer, cfg RunConfig) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "# Appendix P: GP-SSN performance vs radius r\n")
	return sweep(w, cfg, "r", []float64{0.5, 1, 2, 3, 4},
		func(v float64) string { return fmt.Sprintf("%.1f", v) },
		func(k DatasetKind, v float64) (EnvSpec, core.Params) {
			p := defaultParams()
			p.R = v
			return specFor(k, cfg), p
		})
}

func runAppPPivots(w io.Writer, cfg RunConfig) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "# Appendix P: GP-SSN performance vs number of pivots (l = h)\n")
	return sweep(w, cfg, "pivots", []float64{2, 3, 5, 7, 10},
		func(v float64) string { return fmt.Sprintf("%d", int(v)) },
		func(k DatasetKind, v float64) (EnvSpec, core.Params) {
			spec := specFor(k, cfg)
			spec.RoadPivots = int(v)
			spec.SocialPivots = int(v)
			return spec, defaultParams()
		})
}

func runAppPVs(w io.Writer, cfg RunConfig) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "# Appendix P: GP-SSN performance vs |V(G_s)|\n")
	return sweep(w, cfg, "|V(Gs)|", []float64{10000, 20000, 30000, 40000, 50000},
		func(v float64) string { return fmt.Sprintf("%.0fK", v/1000) },
		func(k DatasetKind, v float64) (EnvSpec, core.Params) {
			spec := specFor(k, cfg)
			spec.Users = scaleCount(v, cfg.Scale)
			return spec, defaultParams()
		})
}

// compare runs the default workload under two specs and prints both rows.
func compare(w io.Writer, cfg RunConfig, label string, mk func(kind DatasetKind, variant bool) EnvSpec) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "%-9s %-22s %14s %10s\n", "dataset", label, "CPU", "I/O")
	for _, k := range synthKinds {
		for _, variant := range []bool{false, true} {
			spec := mk(k, variant)
			env, err := GetEnv(spec)
			if err != nil {
				return err
			}
			users := env.QueryUsers(cfg.Queries, cfg.Seed+100)
			agg, err := env.RunQueries(defaultParams(), users)
			if err != nil {
				return err
			}
			name := "baseline"
			if variant {
				name = "variant"
			}
			fmt.Fprintf(w, "%-9s %-22s %14s %10.0f\n",
				k, name, agg.AvgCPU.Round(time.Microsecond), agg.AvgIO)
		}
	}
	return nil
}

func runAblationPivots(w io.Writer, cfg RunConfig) error {
	fmt.Fprintf(w, "# Ablation: random pivots (baseline) vs Algorithm 1 cost-model pivots (variant)\n")
	return compare(w, cfg, "pivot-selection", func(k DatasetKind, variant bool) EnvSpec {
		spec := specFor(k, cfg.withDefaults())
		spec.CostModelPivots = variant
		return spec
	})
}

func runAblationIndexPruning(w io.Writer, cfg RunConfig) error {
	fmt.Fprintf(w, "# Ablation: index-level pruning on (baseline) vs off (variant)\n")
	return compare(w, cfg, "index-pruning", func(k DatasetKind, variant bool) EnvSpec {
		spec := specFor(k, cfg.withDefaults())
		spec.DisableIndexPruning = variant
		return spec
	})
}

func runAblationDistance(w io.Writer, cfg RunConfig) error {
	fmt.Fprintf(w, "# Ablation: pivot distance pruning on (baseline) vs off (variant)\n")
	return compare(w, cfg, "distance-pruning", func(k DatasetKind, variant bool) EnvSpec {
		spec := specFor(k, cfg.withDefaults())
		spec.DisableDistancePruning = variant
		return spec
	})
}

func runAblationRTree(w io.Writer, cfg RunConfig) error {
	fmt.Fprintf(w, "# Ablation: R* split (baseline) vs quadratic split (variant)\n")
	return compare(w, cfg, "rtree-split", func(k DatasetKind, variant bool) EnvSpec {
		spec := specFor(k, cfg.withDefaults())
		spec.QuadraticSplit = variant
		return spec
	})
}

func runAblationSampling(w io.Writer, cfg RunConfig) error {
	fmt.Fprintf(w, "# Ablation: exact branch-and-bound refinement (baseline) vs random-expansion sampling (variant)\n")
	return compare(w, cfg, "refinement", func(k DatasetKind, variant bool) EnvSpec {
		spec := specFor(k, cfg.withDefaults())
		spec.SamplingRefine = variant
		return spec
	})
}

// scaleCount scales a paper-sized count by the run scale, with a floor.
func scaleCount(v, scale float64) int {
	n := int(v * scale)
	if n < 20 {
		n = 20
	}
	return n
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// pow2 is math.Exp2 with +Inf treated as the intended "astronomically
// large" pair-space size (the fraction then underflows to 0).
func pow2(lg float64) float64 { return math.Exp2(lg) }

// SortedNames lists experiment names (for CLI help).
func SortedNames() []string {
	var names []string
	for _, e := range Experiments() {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	return names
}

// runExtMetrics compares the paper's dot-product interest metric with the
// Jaccard and Hamming extensions (the paper's future work) on cost and
// answer availability.
func runExtMetrics(w io.Writer, cfg RunConfig) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "# Extension: interest metrics (dot product = paper's Eq. 1)\n")
	fmt.Fprintf(w, "%-9s %-9s %14s %10s %8s\n", "dataset", "metric", "CPU", "I/O", "found")
	for _, k := range synthKinds {
		env, err := GetEnv(specFor(k, cfg))
		if err != nil {
			return err
		}
		users := env.QueryUsers(cfg.Queries, cfg.Seed+100)
		for _, m := range []core.InterestMetric{core.MetricDotProduct, core.MetricJaccard, core.MetricHamming} {
			p := defaultParams()
			p.Metric = m
			if m == core.MetricJaccard {
				p.Gamma = 0.3 // Jaccard lives in [0,1]; 0.5 dot ~ 0.3 Jaccard
			}
			if m == core.MetricHamming {
				p.Gamma = 0.8 // agreement fraction
			}
			agg, err := env.RunQueries(p, users)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-9s %-9s %14s %10.0f %7d%%\n",
				k, m, agg.AvgCPU.Round(time.Microsecond), agg.AvgIO,
				int(pct(agg.Found, agg.Queries)))
		}
	}
	return nil
}

// runParallel measures refinement wall time as the per-query worker count
// grows, verifying along the way that every setting returns the same
// answers (the determinism contract of docs/CONCURRENCY.md). Speedup is
// bounded above by min(workers, GOMAXPROCS); on a single-CPU host all
// rows collapse to ~1x by construction.
func runParallel(w io.Writer, cfg RunConfig) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "# Extension: parallel refinement (GOMAXPROCS=%d)\n", runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "%-9s %8s %14s %10s %10s\n", "dataset", "workers", "CPU", "I/O", "speedup")
	workerCounts := []int{1, 2, 4, 0} // 0 = GOMAXPROCS
	for _, k := range synthKinds {
		var seqCPU time.Duration
		var seqFound int
		for _, par := range workerCounts {
			spec := specFor(k, cfg)
			spec.Parallelism = par
			env, err := GetEnv(spec)
			if err != nil {
				return err
			}
			users := env.QueryUsers(cfg.Queries, cfg.Seed+100)
			agg, err := env.RunQueries(defaultParams(), users)
			if err != nil {
				return err
			}
			label := fmt.Sprintf("%d", par)
			if par == 0 {
				label = fmt.Sprintf("auto(%d)", runtime.GOMAXPROCS(0))
			}
			if par == 1 {
				seqCPU = agg.AvgCPU
				seqFound = agg.Found
			} else if agg.Found != seqFound {
				return fmt.Errorf("parallel: found-count diverged at %d workers (%d vs %d)",
					par, agg.Found, seqFound)
			}
			speedup := float64(seqCPU) / float64(agg.AvgCPU)
			fmt.Fprintf(w, "%-9s %8s %14s %10.0f %9.2fx\n",
				k, label, agg.AvgCPU.Round(time.Microsecond), agg.AvgIO, speedup)
		}
	}
	fmt.Fprintln(w, "# answers are identical at every worker count; only wall time moves")
	return nil
}

// runExtTopK measures the top-k extension's cost growth with k.
func runExtTopK(w io.Writer, cfg RunConfig) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "# Extension: top-k GP-SSN (distinct anchors)\n")
	fmt.Fprintf(w, "%-9s %4s %14s %10s %10s\n", "dataset", "k", "CPU", "I/O", "answers")
	for _, kind := range synthKinds {
		env, err := GetEnv(specFor(kind, cfg))
		if err != nil {
			return err
		}
		users := env.QueryUsers(cfg.Queries, cfg.Seed+100)
		for _, k := range []int{1, 3, 5} {
			var cpu time.Duration
			var io int64
			answers := 0
			for _, u := range users {
				res, st, err := env.Engine.QueryTopK(u, defaultParams(), k)
				if err != nil {
					return err
				}
				cpu += st.CPUTime
				io += st.PageReads
				answers += len(res)
			}
			n := len(users)
			fmt.Fprintf(w, "%-9s %4d %14s %10.0f %10.1f\n",
				kind, k, (cpu / time.Duration(n)).Round(time.Microsecond),
				float64(io)/float64(n), float64(answers)/float64(n))
		}
	}
	return nil
}
