package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"gpssn/internal/core"
	"gpssn/internal/socialnet"
)

// tinyCfg keeps harness tests fast: ~1% of the paper's sizes.
func tinyCfg() RunConfig {
	return RunConfig{Scale: 0.01, Queries: 3, Seed: 1, BaselineSamples: 3}
}

func TestGetEnvCaches(t *testing.T) {
	spec := EnvSpec{Kind: UNI, Scale: 0.01, Seed: 5}
	a, err := GetEnv(spec)
	if err != nil {
		t.Fatalf("GetEnv: %v", err)
	}
	b, err := GetEnv(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical specs should share an environment")
	}
	c, err := GetEnv(EnvSpec{Kind: UNI, Scale: 0.01, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seeds must not share an environment")
	}
}

func TestEnvSpecDefaults(t *testing.T) {
	s := EnvSpec{Kind: ZIPF}.withDefaults()
	if s.Scale != 1 || s.RoadVertices != 30000 || s.Users != 30000 || s.POIs != 10000 {
		t.Errorf("defaults wrong: %+v", s)
	}
	if s.RoadPivots != 5 || s.SocialPivots != 5 || s.RMin != 0.5 || s.RMax != 4 {
		t.Errorf("index defaults wrong: %+v", s)
	}
}

func TestQueryUsersHaveFriends(t *testing.T) {
	env, err := GetEnv(EnvSpec{Kind: UNI, Scale: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	users := env.QueryUsers(5, 3)
	if len(users) != 5 {
		t.Fatalf("got %d users", len(users))
	}
	seen := map[socialnet.UserID]bool{}
	for _, u := range users {
		if env.DS.Social.Degree(u) == 0 {
			t.Errorf("user %d has no friends", u)
		}
		if seen[u] {
			t.Errorf("duplicate user %d", u)
		}
		seen[u] = true
	}
}

func TestRunQueriesAggregates(t *testing.T) {
	env, err := GetEnv(EnvSpec{Kind: UNI, Scale: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := defaultParams()
	p.Gamma, p.Theta, p.Tau = 0.2, 0.3, 3 // permissive for a tiny dataset
	agg, err := env.RunQueries(p, env.QueryUsers(4, 9))
	if err != nil {
		t.Fatal(err)
	}
	if agg.Queries != 4 {
		t.Errorf("Queries = %d", agg.Queries)
	}
	if agg.AvgCPU <= 0 {
		t.Error("AvgCPU missing")
	}
	if agg.AvgIO <= 0 {
		t.Error("AvgIO missing")
	}
	if agg.Sum.SNUsersTotal != 4*env.DS.Social.NumUsers() {
		t.Error("stats not aggregated")
	}
}

// TestAggExcludesCacheHits pins the aggregation contract for cached
// queries: a CacheHit stat bumps the hit counter but contributes nothing to
// the cost averages or pruning sums, so cache lookups can never dilute the
// paper's CPU/I-O figures.
func TestAggExcludesCacheHits(t *testing.T) {
	var agg Agg
	agg.Add(true, core.Stats{CPUTime: 100 * time.Millisecond, PageReads: 40, CandUsers: 7})
	agg.Add(true, core.Stats{CPUTime: 300 * time.Millisecond, PageReads: 80, CandUsers: 9})
	// A cache hit: counters zeroed by the facade, flag set.
	agg.Add(true, core.Stats{CacheHit: true})

	if agg.Queries != 3 || agg.Found != 3 {
		t.Errorf("Queries/Found = %d/%d, want 3/3", agg.Queries, agg.Found)
	}
	if agg.CacheHits != 1 {
		t.Errorf("CacheHits = %d, want 1", agg.CacheHits)
	}
	// Averages are over the 2 real queries, not 3.
	if agg.AvgCPU != 200*time.Millisecond {
		t.Errorf("AvgCPU = %s, want 200ms (hit excluded)", agg.AvgCPU)
	}
	if agg.AvgIO != 60 {
		t.Errorf("AvgIO = %v, want 60 (hit excluded)", agg.AvgIO)
	}
	if agg.Sum.CandUsers != 16 {
		t.Errorf("Sum.CandUsers = %d, want 16", agg.Sum.CandUsers)
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	want := []string{
		"table2", "fig7a", "fig7b", "fig7c", "fig7d", "fig8",
		"fig9", "fig10", "fig11",
		"appP-gamma", "appP-theta", "appP-r", "appP-pivots", "appP-vs",
		"ablation-pivots", "ablation-indexpruning", "ablation-distance",
		"ablation-rtree", "ablation-sampling", "ablation-choracle",
		"choracle", "hublabel", "scale1m", "ext-metrics", "ext-topk",
		"parallel",
	}
	for _, name := range want {
		if _, ok := Find(name); !ok {
			t.Errorf("experiment %q missing from registry", name)
		}
	}
	if len(Experiments()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(Experiments()), len(want))
	}
	if len(SortedNames()) != len(want) {
		t.Error("SortedNames incomplete")
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find should miss unknown names")
	}
}

func TestRunTable2(t *testing.T) {
	var buf bytes.Buffer
	if err := runTable2(&buf, tinyCfg()); err != nil {
		t.Fatalf("table2: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"Bri+Cal", "Gow+Col", "UNI", "ZIPF"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFig7Family(t *testing.T) {
	for _, name := range []string{"fig7a", "fig7b", "fig7c", "fig7d"} {
		exp, _ := Find(name)
		var buf bytes.Buffer
		if err := exp.Run(&buf, tinyCfg()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(buf.String(), "UNI") {
			t.Errorf("%s output missing dataset rows:\n%s", name, buf.String())
		}
	}
}

func TestRunFig8(t *testing.T) {
	var buf bytes.Buffer
	if err := runFig8(&buf, tinyCfg()); err != nil {
		t.Fatalf("fig8: %v", err)
	}
	if !strings.Contains(buf.String(), "speedup") {
		t.Errorf("fig8 output:\n%s", buf.String())
	}
}

func TestRunSweepExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps build several environments")
	}
	for _, name := range []string{"fig9", "appP-gamma", "appP-theta", "appP-r"} {
		exp, _ := Find(name)
		var buf bytes.Buffer
		if err := exp.Run(&buf, tinyCfg()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lines := strings.Count(buf.String(), "\n")
		if lines < 11 { // header + 2 datasets x 5 values
			t.Errorf("%s produced %d lines:\n%s", name, lines, buf.String())
		}
	}
}

func TestRunAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations build several environments")
	}
	for _, name := range []string{"ablation-indexpruning", "ablation-sampling"} {
		exp, _ := Find(name)
		var buf bytes.Buffer
		if err := exp.Run(&buf, tinyCfg()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(buf.String(), "variant") {
			t.Errorf("%s output missing variant rows:\n%s", name, buf.String())
		}
	}
}
