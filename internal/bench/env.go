// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Section 6): the dataset statistics of
// Table 2, the pruning-power breakdowns of Fig. 7, the Baseline comparison
// of Fig. 8, the parameter sweeps of Figs. 9-11 and Appendix P, and the
// ablation studies listed in DESIGN.md. Both the root bench_test.go and
// cmd/gpssn-bench drive this package.
package bench

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"gpssn/internal/core"
	"gpssn/internal/gen"
	"gpssn/internal/index"
	"gpssn/internal/model"
	"gpssn/internal/pivot"
	"gpssn/internal/roadnet"
	"gpssn/internal/roadnet/ch"
	"gpssn/internal/roadnet/hl"
	"gpssn/internal/socialnet"
)

// DatasetKind selects one of the four evaluation datasets.
type DatasetKind int

const (
	// UNI is the uniform synthetic dataset.
	UNI DatasetKind = iota
	// ZIPF is the Zipf synthetic dataset.
	ZIPF
	// BriCal is the real-like Brightkite+California dataset.
	BriCal
	// GowCol is the real-like Gowalla+Colorado dataset.
	GowCol
)

// String implements fmt.Stringer.
func (k DatasetKind) String() string {
	switch k {
	case UNI:
		return "UNI"
	case ZIPF:
		return "ZIPF"
	case BriCal:
		return "Bri+Cal"
	case GowCol:
		return "Gow+Col"
	default:
		return fmt.Sprintf("DatasetKind(%d)", int(k))
	}
}

// EnvSpec identifies a prepared experiment environment: a dataset plus its
// indexes and engine. Specs are comparable and cache-keyed.
type EnvSpec struct {
	Kind  DatasetKind
	Scale float64 // scales the paper's object counts; 1.0 = published sizes
	Seed  int64

	// Synthetic overrides (0 = paper default × Scale).
	RoadVertices, Users, POIs int

	// Index parameters.
	RoadPivots, SocialPivots int  // default 5 (Table 3)
	CostModelPivots          bool // Algorithm 1 vs random pivots
	QuadraticSplit           bool // R-tree split ablation
	RMin, RMax               float64

	// Engine options.
	DisableIndexPruning    bool
	DisableDistancePruning bool
	SamplingRefine         bool
	// Parallelism is the refinement worker count (0 = GOMAXPROCS, 1 =
	// sequential). Any value returns identical answers; only CPU time moves.
	Parallelism int
	// DistanceOracle selects the road-distance backend: "ch" (default),
	// "hl" or "dijkstra". All are exact; the ablation-choracle and hublabel
	// experiments compare them.
	DistanceOracle string
}

func (s EnvSpec) withDefaults() EnvSpec {
	if s.Scale == 0 {
		s.Scale = 1
	}
	scaled := func(base int) int {
		v := int(math.Round(float64(base) * s.Scale))
		if v < 20 {
			v = 20
		}
		return v
	}
	if s.RoadVertices == 0 {
		s.RoadVertices = scaled(30000)
	}
	if s.Users == 0 {
		s.Users = scaled(30000)
	}
	if s.POIs == 0 {
		s.POIs = scaled(10000)
	}
	if s.RoadPivots == 0 {
		s.RoadPivots = 5
	}
	if s.SocialPivots == 0 {
		s.SocialPivots = 5
	}
	if s.RMin == 0 {
		s.RMin = 0.5
	}
	if s.RMax == 0 {
		s.RMax = 4
	}
	if s.DistanceOracle == "" {
		s.DistanceOracle = "ch"
	}
	return s
}

// Env is a prepared dataset + engine.
type Env struct {
	Spec      EnvSpec
	DS        *model.Dataset
	Engine    *core.Engine
	BuildTime time.Duration
}

var (
	envMu    sync.Mutex
	envCache = map[EnvSpec]*Env{}
)

// GetEnv builds (or returns a cached) experiment environment.
func GetEnv(spec EnvSpec) (*Env, error) {
	spec = spec.withDefaults()
	envMu.Lock()
	defer envMu.Unlock()
	if env, ok := envCache[spec]; ok {
		return env, nil
	}
	env, err := buildEnv(spec)
	if err != nil {
		return nil, err
	}
	envCache[spec] = env
	return env, nil
}

// DropEnvCache clears the environment cache (tests use it to bound memory).
func DropEnvCache() {
	envMu.Lock()
	defer envMu.Unlock()
	envCache = map[EnvSpec]*Env{}
}

func buildEnv(spec EnvSpec) (*Env, error) {
	start := time.Now()
	var ds *model.Dataset
	var err error
	switch spec.Kind {
	case UNI, ZIPF:
		dist := gen.Uniform
		if spec.Kind == ZIPF {
			dist = gen.Zipf
		}
		ds, err = gen.Synthetic(gen.Config{
			Name: spec.Kind.String(), Seed: spec.Seed,
			RoadVertices: spec.RoadVertices, SocialUsers: spec.Users,
			POIs: spec.POIs, Dist: dist,
		})
	case BriCal:
		ds, err = gen.RealLike(gen.BrightkiteCalifornia(spec.Seed, spec.Scale))
	case GowCol:
		ds, err = gen.RealLike(gen.GowallaColorado(spec.Seed, spec.Scale))
	default:
		return nil, fmt.Errorf("bench: unknown dataset kind %d", int(spec.Kind))
	}
	if err != nil {
		return nil, err
	}

	// Attach the distance oracle before pivot selection so the pivot cost
	// model and pivot-table construction run through it, mirroring Open.
	switch spec.DistanceOracle {
	case "ch":
		ds.Road.SetDistanceOracle(ch.Build(ds.Road))
	case "hl":
		ds.Road.SetDistanceOracle(hl.Build(ds.Road))
	case "dijkstra":
		ds.Road.SetDistanceOracle(nil)
	default:
		return nil, fmt.Errorf("bench: unknown DistanceOracle %q", spec.DistanceOracle)
	}

	roadPivots := pivot.RandomRoad(ds.Road, spec.RoadPivots, spec.Seed+1)
	socialPivots := pivot.RandomSocial(ds.Social, spec.SocialPivots, spec.Seed+2)
	if spec.CostModelPivots {
		roadPivots = pivot.SelectRoad(ds.Road, allAttaches(ds), spec.RoadPivots,
			pivot.Options{Seed: spec.Seed + 1, SamplePairs: 100, SwapIter: 10, GlobalIter: 2})
		socialPivots = pivot.SelectSocial(ds.Social, spec.SocialPivots,
			pivot.Options{Seed: spec.Seed + 2, SamplePairs: 100, SwapIter: 10, GlobalIter: 2})
	}

	road, err := index.BuildRoad(ds, index.RoadConfig{
		Pivots: roadPivots, RMin: spec.RMin, RMax: spec.RMax,
		SplitQuadratic: spec.QuadraticSplit,
	})
	if err != nil {
		return nil, err
	}
	social, err := index.BuildSocial(ds, index.SocialConfig{
		RoadPivots: road.Pivots, SocialPivots: socialPivots,
	})
	if err != nil {
		return nil, err
	}
	engine := core.NewEngine(ds, road, social, core.Options{
		DisableIndexPruning:    spec.DisableIndexPruning,
		DisableDistancePruning: spec.DisableDistancePruning,
		SamplingRefine:         spec.SamplingRefine,
		Parallelism:            spec.Parallelism,
		// The paper's refinement samples candidate groups; a generous
		// branch-and-bound budget is strictly more exact than sampling
		// while bounding worst-case latency on adversarial issuers.
		RefineBudget: 200000,
	})
	return &Env{Spec: spec, DS: ds, Engine: engine, BuildTime: time.Since(start)}, nil
}

// allAttaches lists every POI and user attachment for the road pivot cost
// model.
func allAttaches(ds *model.Dataset) []roadnet.Attach {
	out := make([]roadnet.Attach, 0, len(ds.POIs)+len(ds.Users))
	for i := range ds.POIs {
		out = append(out, ds.POIs[i].At)
	}
	for i := range ds.Users {
		out = append(out, ds.Users[i].At)
	}
	return out
}

// QueryUsers picks n deterministic query issuers that have at least one
// friend (an isolated issuer can never form a group of τ ≥ 2).
func (e *Env) QueryUsers(n int, seed int64) []socialnet.UserID {
	rng := rand.New(rand.NewSource(seed))
	total := e.DS.Social.NumUsers()
	var out []socialnet.UserID
	tried := map[socialnet.UserID]bool{}
	for len(out) < n && len(tried) < total {
		u := socialnet.UserID(rng.Intn(total))
		if tried[u] {
			continue
		}
		tried[u] = true
		if e.DS.Social.Degree(u) > 0 {
			out = append(out, u)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Agg aggregates query statistics across issuers.
type Agg struct {
	Queries int
	Found   int
	// CacheHits counts queries answered from an answer cache. Hits carry
	// zeroed cost counters, so Add excludes them from every cost figure —
	// AvgCPU/AvgIO measure actual query work, never cache lookups.
	CacheHits int
	AvgCPU    time.Duration
	AvgIO     float64
	Sum       core.Stats
	AvgDelta  float64
	PairsEval int64
	// PairsTotalLog2 of the (identical) pair space.
	PairsTotalLog2 float64

	cpu time.Duration
	io  int64
}

// Add folds one query's outcome into the aggregate and refreshes the
// averages. Cache hits bump Queries/Found/CacheHits but contribute nothing
// to the cost sums.
func (agg *Agg) Add(found bool, st core.Stats) {
	agg.Queries++
	if found {
		agg.Found++
	}
	if st.CacheHit {
		agg.CacheHits++
	} else {
		agg.cpu += st.CPUTime
		agg.io += st.PageReads
		addStats(&agg.Sum, st)
		agg.PairsEval += st.PairsEvaluated
		agg.PairsTotalLog2 = st.PairsTotalLog2
	}
	if n := agg.Queries - agg.CacheHits; n > 0 {
		agg.AvgCPU = agg.cpu / time.Duration(n)
		agg.AvgIO = float64(agg.io) / float64(n)
	}
}

// RunQueries executes the parameterized query for every issuer and
// aggregates costs and pruning counters.
func (e *Env) RunQueries(p core.Params, users []socialnet.UserID) (Agg, error) {
	var agg Agg
	for _, u := range users {
		res, st, err := e.Engine.Query(u, p)
		if err != nil {
			return agg, fmt.Errorf("query user %d: %w", u, err)
		}
		agg.Add(res.Found, st)
	}
	return agg, nil
}

func addStats(dst *core.Stats, s core.Stats) {
	dst.SNUsersTotal += s.SNUsersTotal
	dst.SNIndexPruned += s.SNIndexPruned
	dst.SNIndexPrunedInterest += s.SNIndexPrunedInterest
	dst.SNIndexPrunedDist += s.SNIndexPrunedDist
	dst.SNObjPruned += s.SNObjPruned
	dst.SNObjPrunedInterest += s.SNObjPrunedInterest
	dst.SNObjPrunedDist += s.SNObjPrunedDist
	dst.RNPOIsTotal += s.RNPOIsTotal
	dst.RNIndexPruned += s.RNIndexPruned
	dst.RNIndexPrunedMatch += s.RNIndexPrunedMatch
	dst.RNIndexPrunedDist += s.RNIndexPrunedDist
	dst.RNObjPruned += s.RNObjPruned
	dst.RNObjPrunedMatch += s.RNObjPrunedMatch
	dst.RNObjPrunedDist += s.RNObjPrunedDist
	dst.CandUsers += s.CandUsers
	dst.CandAnchors += s.CandAnchors
	dst.PairsEvaluated += s.PairsEvaluated
}
