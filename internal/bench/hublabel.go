package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"gpssn/internal/roadnet"
	"gpssn/internal/roadnet/ch"
	"gpssn/internal/roadnet/hl"
)

// hublabelReport is the JSON payload the hublabel experiment writes when
// RunConfig.JSONOut is set (the `make bench-smoke` BENCH_hublabel.json).
type hublabelReport struct {
	Scale    float64          `json:"scale"`
	Queries  int              `json:"queries"`
	Seed     int64            `json:"seed"`
	Datasets []hublabelRow    `json:"datasets"`
	P2P      hublabelP2PStats `json:"p2p"`
}

// hublabelRow compares full GP-SSN query workloads under the three exact
// oracles. AnswersIdentical covers hl vs dijkstra (the plain-search ground
// truth) with the same ULP-tie tolerance the choracle experiment uses.
type hublabelRow struct {
	Dataset          string  `json:"dataset"`
	RoadVertices     int     `json:"road_vertices"`
	AvgLabelSize     float64 `json:"avg_label_size"`
	AvgCPUDijkstraMs float64 `json:"avg_query_cpu_dijkstra_ms"`
	AvgCPUCHMs       float64 `json:"avg_query_cpu_ch_ms"`
	AvgCPUHLMs       float64 `json:"avg_query_cpu_hl_ms"`
	SpeedupVsCH      float64 `json:"query_speedup_vs_ch"`
	Found            int     `json:"found"`
	AnswersIdentical bool    `json:"answers_identical"`
}

// hublabelP2PStats is the point-to-point microbenchmark on the paper-scale
// road network (|V(G_r)| = 30000): plain Dijkstra vs the CH bidirectional
// search vs a hub-label merge, plus label construction statistics.
type hublabelP2PStats struct {
	RoadVertices      int     `json:"road_vertices"`
	CHBuildMs         float64 `json:"ch_build_ms"`
	HLBuildMs         float64 `json:"hl_build_ms"`
	LabelEntries      int     `json:"label_entries_total"`
	AvgLabelSize      float64 `json:"avg_label_size"`
	MaxLabelSize      int     `json:"max_label_size"`
	FullDijkstraUs    float64 `json:"full_dijkstra_us_per_op"`
	CHPointToPointUs  float64 `json:"ch_p2p_us_per_op"`
	HLPointToPointUs  float64 `json:"hl_p2p_us_per_op"`
	SpeedupVsDijkstra float64 `json:"hl_speedup_vs_full_dijkstra"`
	SpeedupVsCH       float64 `json:"hl_speedup_vs_ch"`
}

// runHublabel compares the hub-label oracle against the CH and plain
// Dijkstra: full query workloads per dataset (answers must agree), then a
// point-to-point microbenchmark with label statistics on a paper-scale
// road network. With cfg.JSONOut set the numbers are also written as JSON.
func runHublabel(w io.Writer, cfg RunConfig) error {
	cfg = cfg.withDefaults()
	report := hublabelReport{Scale: cfg.Scale, Queries: cfg.Queries, Seed: cfg.Seed}

	fmt.Fprintf(w, "# Distance oracle: hub labels (hl) vs contraction hierarchy (ch) vs plain searches (dijkstra)\n")
	fmt.Fprintf(w, "%-9s %9s %13s %13s %13s %9s %6s %10s\n",
		"dataset", "avg|L|", "CPU/q dij", "CPU/q ch", "CPU/q hl", "vs ch", "found", "identical")
	for _, k := range synthKinds {
		specD := specFor(k, cfg)
		specD.DistanceOracle = "dijkstra"
		specC := specFor(k, cfg)
		specC.DistanceOracle = "ch"
		specH := specFor(k, cfg)
		specH.DistanceOracle = "hl"
		envD, err := GetEnv(specD)
		if err != nil {
			return err
		}
		envC, err := GetEnv(specC)
		if err != nil {
			return err
		}
		envH, err := GetEnv(specH)
		if err != nil {
			return err
		}
		users := envD.QueryUsers(cfg.Queries, cfg.Seed+100)
		var cpuD, cpuC, cpuH time.Duration
		found := 0
		identical := true
		for _, u := range users {
			resD, stD, err := envD.Engine.Query(u, defaultParams())
			if err != nil {
				return err
			}
			resC, stC, err := envC.Engine.Query(u, defaultParams())
			if err != nil {
				return err
			}
			resH, stH, err := envH.Engine.Query(u, defaultParams())
			if err != nil {
				return err
			}
			cpuD += stD.CPUTime
			cpuC += stC.CPUTime
			cpuH += stH.CPUTime
			if resD.Found != resH.Found || resC.Found != resH.Found {
				return fmt.Errorf("hublabel: user %d found diverged (dijkstra=%v ch=%v hl=%v)",
					u, resD.Found, resC.Found, resH.Found)
			}
			if resD.Found {
				found++
				if resD.Anchor != resH.Anchor {
					// Label merges associate float sums differently than
					// edge-at-a-time Dijkstra, so equal-cost anchors can
					// tie-break apart by 1 ULP; anything beyond a cost tie
					// is a real divergence.
					if !distNear(resD.MaxDist, resH.MaxDist) {
						identical = false
					}
				} else if !equalIDs(resD.S, resH.S) || !equalPOIs(resD.R, resH.R) ||
					!distNear(resD.MaxDist, resH.MaxDist) {
					identical = false
				}
			}
		}
		if !identical {
			return fmt.Errorf("hublabel: %s answers diverged between oracles", k)
		}
		n := time.Duration(maxInt(len(users), 1))
		row := hublabelRow{
			Dataset:          k.String(),
			RoadVertices:     envH.DS.Road.NumVertices(),
			AvgCPUDijkstraMs: float64(cpuD/n) / float64(time.Millisecond),
			AvgCPUCHMs:       float64(cpuC/n) / float64(time.Millisecond),
			AvgCPUHLMs:       float64(cpuH/n) / float64(time.Millisecond),
			Found:            found,
			AnswersIdentical: identical,
		}
		if oracle, ok := envH.DS.Road.Oracle().(*hl.Oracle); ok {
			row.AvgLabelSize = oracle.AvgLabelSize()
		}
		if cpuH > 0 {
			row.SpeedupVsCH = float64(cpuC) / float64(cpuH)
		}
		report.Datasets = append(report.Datasets, row)
		fmt.Fprintf(w, "%-9s %9.1f %13s %13s %13s %8.2fx %6d %10v\n",
			k, row.AvgLabelSize, (cpuD / n).Round(time.Microsecond), (cpuC / n).Round(time.Microsecond),
			(cpuH / n).Round(time.Microsecond), row.SpeedupVsCH, found, identical)
	}

	p2p, err := hublabelP2P(w, cfg)
	if err != nil {
		return err
	}
	report.P2P = p2p

	if cfg.JSONOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.JSONOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "# wrote %s\n", cfg.JSONOut)
	}
	return nil
}

// hublabelP2P measures point-to-point latency on the paper's largest
// synthetic road network (|V(G_r)| = 30000) under all three oracles, using
// the same pair workload shape as choracleP2P so the numbers line up
// across reports.
func hublabelP2P(w io.Writer, cfg RunConfig) (hublabelP2PStats, error) {
	env, err := GetEnv(EnvSpec{
		Kind: UNI, Seed: cfg.Seed,
		// Minimal social side: only the road network matters here.
		RoadVertices: 30000, Users: 20, POIs: 20,
	})
	if err != nil {
		return hublabelP2PStats{}, err
	}
	road := env.DS.Road
	prev := road.Oracle()
	defer road.SetDistanceOracle(prev)

	start := time.Now()
	cho := ch.Build(road)
	chBuild := time.Since(start)
	start = time.Now()
	hlo := hl.FromCH(cho)
	hlBuild := time.Since(start)

	rng := rand.New(rand.NewSource(cfg.Seed + 17))
	randAttach := func() roadnet.Attach {
		return road.AttachAt(roadnet.EdgeID(rng.Intn(road.NumEdges())), rng.Float64())
	}
	const pairs = 32
	as := make([]roadnet.Attach, pairs)
	bs := make([]roadnet.Attach, pairs)
	for i := range as {
		as[i], bs[i] = randAttach(), randAttach()
	}

	// Full one-to-all Dijkstra per op (the pre-oracle hot-path shape).
	road.SetDistanceOracle(nil)
	fullDists := make([]float64, pairs)
	start = time.Now()
	for i := range as {
		fullDists[i] = road.DistAttachMany(as[i], bs[i:i+1])[0]
	}
	fullPer := time.Since(start) / pairs

	// CH bidirectional point-to-point.
	road.SetDistanceOracle(cho)
	const reps = 20
	start = time.Now()
	for r := 0; r < reps; r++ {
		for i := range as {
			d := road.DistAttach(as[i], bs[i])
			if r == 0 && !distNear(d, fullDists[i]) {
				return hublabelP2PStats{}, fmt.Errorf("hublabel: ch p2p pair %d diverged (ch=%v dijkstra=%v)", i, d, fullDists[i])
			}
		}
	}
	chPer := time.Since(start) / (pairs * reps)

	// Hub-label merge point-to-point: many more repetitions, the per-op
	// cost is small enough for timer noise to matter otherwise.
	road.SetDistanceOracle(hlo)
	const hlReps = 200
	start = time.Now()
	for r := 0; r < hlReps; r++ {
		for i := range as {
			d := road.DistAttach(as[i], bs[i])
			if r == 0 && !distNear(d, fullDists[i]) {
				return hublabelP2PStats{}, fmt.Errorf("hublabel: hl p2p pair %d diverged (hl=%v dijkstra=%v)", i, d, fullDists[i])
			}
		}
	}
	hlPer := time.Since(start) / (pairs * hlReps)

	stats := hublabelP2PStats{
		RoadVertices:     road.NumVertices(),
		CHBuildMs:        float64(chBuild) / float64(time.Millisecond),
		HLBuildMs:        float64(hlBuild) / float64(time.Millisecond),
		LabelEntries:     hlo.NumLabelEntries(),
		AvgLabelSize:     hlo.AvgLabelSize(),
		MaxLabelSize:     hlo.MaxLabelSize(),
		FullDijkstraUs:   float64(fullPer) / float64(time.Microsecond),
		CHPointToPointUs: float64(chPer) / float64(time.Microsecond),
		HLPointToPointUs: float64(hlPer) / float64(time.Microsecond),
	}
	if hlPer > 0 {
		stats.SpeedupVsDijkstra = float64(fullPer) / float64(hlPer)
		stats.SpeedupVsCH = float64(chPer) / float64(hlPer)
	}
	fmt.Fprintf(w, "# p2p on |V(Gr)|=%d: HL build %s on top of CH %s; labels avg %.1f max %d;\n",
		stats.RoadVertices, time.Duration(hlBuild).Round(time.Millisecond),
		time.Duration(chBuild).Round(time.Millisecond), stats.AvgLabelSize, stats.MaxLabelSize)
	fmt.Fprintf(w, "#   full Dijkstra %s/op, CH %s/op, HL %s/op => HL %.1fx vs Dijkstra, %.1fx vs CH\n",
		fullPer.Round(time.Microsecond), chPer.Round(time.Nanosecond), hlPer.Round(time.Nanosecond),
		stats.SpeedupVsDijkstra, stats.SpeedupVsCH)
	return stats, nil
}
