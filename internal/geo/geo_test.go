package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// clampF maps an arbitrary float64 into a well-behaved coordinate range so
// quick.Check inputs do not overflow to Inf in intermediate arithmetic.
func clampF(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1000)
}

func TestPointDist(t *testing.T) {
	tests := []struct {
		p, q Point
		want float64
	}{
		{Pt(0, 0), Pt(3, 4), 5},
		{Pt(1, 1), Pt(1, 1), 0},
		{Pt(-1, -1), Pt(2, 3), 5},
		{Pt(0, 0), Pt(0, 7), 7},
	}
	for _, tc := range tests {
		if got := tc.p.Dist(tc.q); !almostEq(got, tc.want) {
			t.Errorf("Dist(%v,%v) = %v, want %v", tc.p, tc.q, got, tc.want)
		}
		if got := tc.p.Dist2(tc.q); !almostEq(got, tc.want*tc.want) {
			t.Errorf("Dist2(%v,%v) = %v, want %v", tc.p, tc.q, got, tc.want*tc.want)
		}
	}
}

func TestPointDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		ax, ay, bx, by = clampF(ax), clampF(ay), clampF(bx), clampF(by)
		a, b := Pt(ax, ay), Pt(bx, by)
		return almostEq(a.Dist(b), b.Dist(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointArith(t *testing.T) {
	p := Pt(1, 2)
	if got := p.Add(Pt(3, 4)); got != Pt(4, 6) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(Pt(3, 4)); got != Pt(-2, -2) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Lerp(Pt(3, 4), 0.5); got != Pt(2, 3) {
		t.Errorf("Lerp = %v", got)
	}
}

func TestEmptyRect(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Fatal("EmptyRect should be empty")
	}
	if e.Area() != 0 {
		t.Errorf("empty area = %v", e.Area())
	}
	r := Rect{Pt(0, 0), Pt(1, 1)}
	if got := e.Union(r); got != r {
		t.Errorf("empty union r = %v, want %v", got, r)
	}
	if got := r.Union(e); got != r {
		t.Errorf("r union empty = %v, want %v", got, r)
	}
	if e.Intersects(r) {
		t.Error("empty should not intersect anything")
	}
}

func TestRectOf(t *testing.T) {
	r := RectOf(Pt(1, 5), Pt(3, 2), Pt(-1, 4))
	want := Rect{Pt(-1, 2), Pt(3, 5)}
	if r != want {
		t.Errorf("RectOf = %v, want %v", r, want)
	}
	if RectOf().IsEmpty() != true {
		t.Error("RectOf() should be empty")
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{Pt(0, 0), Pt(4, 2)}
	if got := r.Area(); !almostEq(got, 8) {
		t.Errorf("Area = %v", got)
	}
	if got := r.Margin(); !almostEq(got, 6) {
		t.Errorf("Margin = %v", got)
	}
	if got := r.Center(); got != Pt(2, 1) {
		t.Errorf("Center = %v", got)
	}
	if !r.ContainsPoint(Pt(4, 2)) || !r.ContainsPoint(Pt(0, 0)) {
		t.Error("boundary points must be contained")
	}
	if r.ContainsPoint(Pt(4.01, 2)) {
		t.Error("outside point contained")
	}
}

func TestRectContainsRect(t *testing.T) {
	r := Rect{Pt(0, 0), Pt(10, 10)}
	if !r.ContainsRect(Rect{Pt(1, 1), Pt(9, 9)}) {
		t.Error("inner rect should be contained")
	}
	if r.ContainsRect(Rect{Pt(1, 1), Pt(11, 9)}) {
		t.Error("overflowing rect should not be contained")
	}
	if !r.ContainsRect(EmptyRect()) {
		t.Error("every rect contains the empty rect")
	}
}

func TestRectIntersection(t *testing.T) {
	a := Rect{Pt(0, 0), Pt(4, 4)}
	b := Rect{Pt(2, 2), Pt(6, 6)}
	got := a.Intersection(b)
	want := Rect{Pt(2, 2), Pt(4, 4)}
	if got != want {
		t.Errorf("Intersection = %v, want %v", got, want)
	}
	if !almostEq(a.OverlapArea(b), 4) {
		t.Errorf("OverlapArea = %v", a.OverlapArea(b))
	}
	c := Rect{Pt(5, 5), Pt(6, 6)}
	if !a.Intersection(c).IsEmpty() {
		t.Error("disjoint intersection should be empty")
	}
}

func TestRectMinMaxDistPoint(t *testing.T) {
	r := Rect{Pt(0, 0), Pt(2, 2)}
	tests := []struct {
		p        Point
		min, max float64
	}{
		{Pt(1, 1), 0, math.Sqrt(2)},
		{Pt(3, 1), 1, math.Hypot(3, 1)},
		{Pt(5, 6), 5, math.Hypot(5, 6)},
		{Pt(-1, -1), math.Sqrt2, math.Hypot(3, 3)},
	}
	for _, tc := range tests {
		if got := r.MinDistPoint(tc.p); !almostEq(got, tc.min) {
			t.Errorf("MinDistPoint(%v) = %v, want %v", tc.p, got, tc.min)
		}
		if got := r.MaxDistPoint(tc.p); !almostEq(got, tc.max) {
			t.Errorf("MaxDistPoint(%v) = %v, want %v", tc.p, got, tc.max)
		}
	}
}

func TestRectMinDistRect(t *testing.T) {
	a := Rect{Pt(0, 0), Pt(1, 1)}
	b := Rect{Pt(3, 0), Pt(4, 1)}
	if got := a.MinDistRect(b); !almostEq(got, 2) {
		t.Errorf("MinDistRect = %v, want 2", got)
	}
	c := Rect{Pt(3, 5), Pt(4, 6)}
	if got := a.MinDistRect(c); !almostEq(got, math.Hypot(2, 4)) {
		t.Errorf("diagonal MinDistRect = %v", got)
	}
	d := Rect{Pt(0.5, 0.5), Pt(2, 2)}
	if got := a.MinDistRect(d); got != 0 {
		t.Errorf("overlapping MinDistRect = %v, want 0", got)
	}
}

func TestRectMaxDistRect(t *testing.T) {
	a := Rect{Pt(0, 0), Pt(1, 1)}
	b := Rect{Pt(2, 2), Pt(3, 3)}
	if got := a.MaxDistRect(b); !almostEq(got, math.Hypot(3, 3)) {
		t.Errorf("MaxDistRect = %v", got)
	}
}

func TestRectExpand(t *testing.T) {
	r := Rect{Pt(1, 1), Pt(2, 2)}
	e := r.Expand(1)
	if e != (Rect{Pt(0, 0), Pt(3, 3)}) {
		t.Errorf("Expand = %v", e)
	}
	if !r.Expand(-1).IsEmpty() {
		t.Error("over-shrunk rect should be empty")
	}
}

// Property: union contains both inputs and its area is at least each input's.
func TestRectUnionProperties(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		ax, ay, bx, by = clampF(ax), clampF(ay), clampF(bx), clampF(by)
		cx, cy, dx, dy = clampF(cx), clampF(cy), clampF(dx), clampF(dy)
		a := RectOf(Pt(ax, ay), Pt(bx, by))
		b := RectOf(Pt(cx, cy), Pt(dx, dy))
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b) &&
			u.Area() >= a.Area()-1e-9 && u.Area() >= b.Area()-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: MinDistPoint <= Dist(center) <= MaxDistPoint.
func TestRectDistOrderingProperty(t *testing.T) {
	f := func(ax, ay, bx, by, px, py float64) bool {
		ax, ay, bx, by, px, py = clampF(ax), clampF(ay), clampF(bx), clampF(by), clampF(px), clampF(py)
		r := RectOf(Pt(ax, ay), Pt(bx, by))
		p := Pt(px, py)
		min, max := r.MinDistPoint(p), r.MaxDistPoint(p)
		c := r.Center().Dist(p)
		return min <= c+1e-9 && c <= max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: MINDIST between rects is a lower bound on center distance.
func TestMinDistRectLowerBoundProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		ax, ay, bx, by = clampF(ax), clampF(ay), clampF(bx), clampF(by)
		cx, cy, dx, dy = clampF(cx), clampF(cy), clampF(dx), clampF(dy)
		a := RectOf(Pt(ax, ay), Pt(bx, by))
		b := RectOf(Pt(cx, cy), Pt(dx, dy))
		return a.MinDistRect(b) <= a.Center().Dist(b.Center())+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEnlargement(t *testing.T) {
	a := Rect{Pt(0, 0), Pt(2, 2)}
	b := Rect{Pt(1, 1), Pt(3, 3)}
	if got := a.Enlargement(b); !almostEq(got, 5) {
		t.Errorf("Enlargement = %v, want 5", got)
	}
	if got := a.Enlargement(Rect{Pt(0.5, 0.5), Pt(1, 1)}); got != 0 {
		t.Errorf("contained enlargement = %v, want 0", got)
	}
}
