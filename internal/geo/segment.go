package geo

import "math"

// Segment is a directed line segment from A to B. Road-network edges are
// segments; POIs live on them at a parametric offset.
type Segment struct {
	A, B Point
}

// Seg is shorthand for Segment{a, b}.
func Seg(a, b Point) Segment { return Segment{A: a, B: b} }

// Length returns the Euclidean length of s.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// At returns the point a fraction t (clamped to [0,1]) along s from A.
func (s Segment) At(t float64) Point {
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return s.A.Lerp(s.B, t)
}

// Project returns the parameter t in [0,1] of the point on s closest to p.
func (s Segment) Project(p Point) float64 {
	d := s.B.Sub(s.A)
	l2 := d.X*d.X + d.Y*d.Y
	if l2 == 0 {
		return 0
	}
	v := p.Sub(s.A)
	t := (v.X*d.X + v.Y*d.Y) / l2
	if t < 0 {
		return 0
	}
	if t > 1 {
		return 1
	}
	return t
}

// DistPoint returns the Euclidean distance from p to the nearest point of s.
func (s Segment) DistPoint(p Point) float64 {
	return s.At(s.Project(p)).Dist(p)
}

// Bounds returns the MBR of s.
func (s Segment) Bounds() Rect { return RectOf(s.A, s.B) }

// Midpoint returns the midpoint of s.
func (s Segment) Midpoint() Point { return s.At(0.5) }

// Intersects reports whether segments s and t share at least one point.
// It is used by the road-network generator to keep the graph planar
// (no edge crossings except at shared endpoints).
func (s Segment) Intersects(t Segment) bool {
	d1 := orient(t.A, t.B, s.A)
	d2 := orient(t.A, t.B, s.B)
	d3 := orient(s.A, s.B, t.A)
	d4 := orient(s.A, s.B, t.B)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	switch {
	case d1 == 0 && onSegment(t.A, t.B, s.A):
		return true
	case d2 == 0 && onSegment(t.A, t.B, s.B):
		return true
	case d3 == 0 && onSegment(s.A, s.B, t.A):
		return true
	case d4 == 0 && onSegment(s.A, s.B, t.B):
		return true
	}
	return false
}

// ProperlyCrosses reports whether s and t intersect at a point interior to
// both segments (sharing an endpoint does not count). The road-network
// generator rejects candidate edges that properly cross existing roads.
func (s Segment) ProperlyCrosses(t Segment) bool {
	if s.A == t.A || s.A == t.B || s.B == t.A || s.B == t.B {
		return false
	}
	d1 := orient(t.A, t.B, s.A)
	d2 := orient(t.A, t.B, s.B)
	d3 := orient(s.A, s.B, t.A)
	d4 := orient(s.A, s.B, t.B)
	return ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))
}

// orient returns the sign of the cross product (b-a) x (c-a): positive for
// counter-clockwise, negative for clockwise, zero for collinear.
func orient(a, b, c Point) float64 {
	v := (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
	// Snap tiny values to zero so nearly-collinear configurations are
	// treated consistently by the planarity test.
	if math.Abs(v) < 1e-12 {
		return 0
	}
	return v
}

// onSegment reports whether c (known collinear with a-b) lies within the
// bounding box of a-b.
func onSegment(a, b, c Point) bool {
	return math.Min(a.X, b.X) <= c.X && c.X <= math.Max(a.X, b.X) &&
		math.Min(a.Y, b.Y) <= c.Y && c.Y <= math.Max(a.Y, b.Y)
}
