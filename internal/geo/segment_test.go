package geo

import (
	"math"
	"testing"
	"testing/quick"
)

// clampS bounds quick.Check coordinates (see clampF in geo_test.go).
func clampS(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1000)
}

func TestSegmentLengthAt(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(4, 0))
	if !almostEq(s.Length(), 4) {
		t.Errorf("Length = %v", s.Length())
	}
	if got := s.At(0.25); got != Pt(1, 0) {
		t.Errorf("At(0.25) = %v", got)
	}
	if got := s.At(-1); got != Pt(0, 0) {
		t.Errorf("At(-1) = %v, want clamp to A", got)
	}
	if got := s.At(2); got != Pt(4, 0) {
		t.Errorf("At(2) = %v, want clamp to B", got)
	}
	if got := s.Midpoint(); got != Pt(2, 0) {
		t.Errorf("Midpoint = %v", got)
	}
}

func TestSegmentProject(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	tests := []struct {
		p Point
		t float64
	}{
		{Pt(5, 3), 0.5},
		{Pt(-2, 1), 0},
		{Pt(12, -1), 1},
		{Pt(0, 0), 0},
	}
	for _, tc := range tests {
		if got := s.Project(tc.p); !almostEq(got, tc.t) {
			t.Errorf("Project(%v) = %v, want %v", tc.p, got, tc.t)
		}
	}
	// Degenerate segment projects everything to t=0.
	d := Seg(Pt(1, 1), Pt(1, 1))
	if got := d.Project(Pt(5, 5)); got != 0 {
		t.Errorf("degenerate Project = %v", got)
	}
}

func TestSegmentDistPoint(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	if got := s.DistPoint(Pt(5, 3)); !almostEq(got, 3) {
		t.Errorf("DistPoint mid = %v", got)
	}
	if got := s.DistPoint(Pt(13, 4)); !almostEq(got, 5) {
		t.Errorf("DistPoint past end = %v", got)
	}
}

func TestSegmentIntersects(t *testing.T) {
	tests := []struct {
		a, b Segment
		want bool
	}{
		{Seg(Pt(0, 0), Pt(4, 4)), Seg(Pt(0, 4), Pt(4, 0)), true},  // X crossing
		{Seg(Pt(0, 0), Pt(1, 1)), Seg(Pt(2, 2), Pt(3, 3)), false}, // collinear disjoint
		{Seg(Pt(0, 0), Pt(2, 2)), Seg(Pt(1, 1), Pt(3, 3)), true},  // collinear overlap
		{Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(1, 0), Pt(2, 5)), true},  // shared endpoint
		{Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(0, 1), Pt(1, 1)), false}, // parallel
		{Seg(Pt(0, 0), Pt(4, 0)), Seg(Pt(2, -1), Pt(2, 1)), true}, // T crossing
		{Seg(Pt(0, 0), Pt(4, 0)), Seg(Pt(2, 1), Pt(2, 3)), false}, // above
	}
	for i, tc := range tests {
		if got := tc.a.Intersects(tc.b); got != tc.want {
			t.Errorf("case %d: Intersects = %v, want %v", i, got, tc.want)
		}
		if got := tc.b.Intersects(tc.a); got != tc.want {
			t.Errorf("case %d (swapped): Intersects = %v, want %v", i, got, tc.want)
		}
	}
}

func TestSegmentProperlyCrosses(t *testing.T) {
	a := Seg(Pt(0, 0), Pt(4, 4))
	b := Seg(Pt(0, 4), Pt(4, 0))
	if !a.ProperlyCrosses(b) {
		t.Error("X configuration should properly cross")
	}
	c := Seg(Pt(4, 4), Pt(8, 0))
	if a.ProperlyCrosses(c) {
		t.Error("shared endpoint must not count as a proper crossing")
	}
	d := Seg(Pt(2, 2), Pt(2, 10)) // touches interior of a at (2,2) endpoint of d
	if a.ProperlyCrosses(d) {
		t.Error("endpoint touching interior is not a proper crossing")
	}
}

// Property: distance from a point to a segment is never more than the
// distance to either endpoint.
func TestSegmentDistPointProperty(t *testing.T) {
	f := func(ax, ay, bx, by, px, py float64) bool {
		ax, ay, bx, by, px, py = clampS(ax), clampS(ay), clampS(bx), clampS(by), clampS(px), clampS(py)
		s := Seg(Pt(ax, ay), Pt(bx, by))
		p := Pt(px, py)
		d := s.DistPoint(p)
		return d <= p.Dist(s.A)+1e-9 && d <= p.Dist(s.B)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the projected point realizes DistPoint.
func TestSegmentProjectRealizesDist(t *testing.T) {
	f := func(ax, ay, bx, by, px, py float64) bool {
		ax, ay, bx, by, px, py = clampS(ax), clampS(ay), clampS(bx), clampS(by), clampS(px), clampS(py)
		s := Seg(Pt(ax, ay), Pt(bx, by))
		p := Pt(px, py)
		return almostEq(s.At(s.Project(p)).Dist(p), s.DistPoint(p))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSegmentBounds(t *testing.T) {
	s := Seg(Pt(3, 1), Pt(0, 5))
	if got := s.Bounds(); got != (Rect{Pt(0, 1), Pt(3, 5)}) {
		t.Errorf("Bounds = %v", got)
	}
}
