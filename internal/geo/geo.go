// Package geo provides the 2D geometric primitives used throughout the
// GP-SSN system: points, axis-aligned rectangles (minimum bounding
// rectangles), and the distance functions required by the R*-tree and the
// pruning rules of the paper (Euclidean point/rect and rect/rect distances).
//
// All coordinates are float64 in an abstract planar coordinate system; the
// road-network generator decides the units (the paper's radius parameter r
// is expressed in the same units).
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the 2D plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.4f, %.4f)", p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root and is the preferred comparison key in hot loops.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p minus q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Lerp returns the point a fraction t of the way from p to q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Rect is an axis-aligned rectangle (an MBR). A Rect is valid when
// Min.X <= Max.X and Min.Y <= Max.Y. The zero Rect is the empty rectangle
// (see EmptyRect) only by convention; use EmptyRect to start accumulating
// bounds.
type Rect struct {
	Min, Max Point
}

// EmptyRect returns the identity element for Union: a rectangle that
// contains nothing and unions with any rectangle to yield that rectangle.
func EmptyRect() Rect {
	inf := math.Inf(1)
	return Rect{Min: Point{inf, inf}, Max: Point{-inf, -inf}}
}

// RectOf returns the MBR of a set of points. It returns EmptyRect when
// called with no points.
func RectOf(pts ...Point) Rect {
	r := EmptyRect()
	for _, p := range pts {
		r = r.ExtendPoint(p)
	}
	return r
}

// RectFromPoint returns the degenerate rectangle covering exactly p.
func RectFromPoint(p Point) Rect { return Rect{Min: p, Max: p} }

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%s - %s]", r.Min, r.Max)
}

// IsEmpty reports whether r contains no points.
func (r Rect) IsEmpty() bool {
	return r.Min.X > r.Max.X || r.Min.Y > r.Max.Y
}

// Valid reports whether r is a well-formed (possibly degenerate, non-empty)
// rectangle.
func (r Rect) Valid() bool {
	return r.Min.X <= r.Max.X && r.Min.Y <= r.Max.Y &&
		!math.IsNaN(r.Min.X) && !math.IsNaN(r.Min.Y) &&
		!math.IsNaN(r.Max.X) && !math.IsNaN(r.Max.Y)
}

// Width returns the extent of r along the X axis.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the extent of r along the Y axis.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r. Empty rectangles have zero area.
func (r Rect) Area() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Width() * r.Height()
}

// Margin returns half the perimeter of r (the R*-tree "margin" metric).
func (r Rect) Margin() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Width() + r.Height()
}

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// ContainsPoint reports whether p lies inside or on the boundary of r.
func (r Rect) ContainsPoint(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether s lies entirely within r.
func (r Rect) ContainsRect(s Rect) bool {
	if s.IsEmpty() {
		return true
	}
	return r.ContainsPoint(s.Min) && r.ContainsPoint(s.Max)
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Intersection returns the overlapping region of r and s, which is empty
// when they do not intersect.
func (r Rect) Intersection(s Rect) Rect {
	out := Rect{
		Min: Point{math.Max(r.Min.X, s.Min.X), math.Max(r.Min.Y, s.Min.Y)},
		Max: Point{math.Min(r.Max.X, s.Max.X), math.Min(r.Max.Y, s.Max.Y)},
	}
	if out.IsEmpty() {
		return EmptyRect()
	}
	return out
}

// OverlapArea returns the area of the intersection of r and s.
func (r Rect) OverlapArea(s Rect) float64 { return r.Intersection(s).Area() }

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// ExtendPoint returns the smallest rectangle containing r and p.
func (r Rect) ExtendPoint(p Point) Rect {
	return r.Union(RectFromPoint(p))
}

// Enlargement returns the increase in area required for r to absorb s.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// MinDistPoint returns the minimum Euclidean distance from p to any point
// of r (zero when p is inside r). This is the classic MINDIST metric used
// for R-tree best-first search.
func (r Rect) MinDistPoint(p Point) float64 {
	return math.Sqrt(r.MinDist2Point(p))
}

// MinDist2Point returns the squared MINDIST from p to r.
func (r Rect) MinDist2Point(p Point) float64 {
	if r.IsEmpty() {
		return math.Inf(1)
	}
	dx := axisDist(p.X, r.Min.X, r.Max.X)
	dy := axisDist(p.Y, r.Min.Y, r.Max.Y)
	return dx*dx + dy*dy
}

// MaxDistPoint returns the maximum Euclidean distance from p to any point
// of r (the MAXDIST metric, attained at a corner).
func (r Rect) MaxDistPoint(p Point) float64 {
	if r.IsEmpty() {
		return 0
	}
	dx := math.Max(math.Abs(p.X-r.Min.X), math.Abs(p.X-r.Max.X))
	dy := math.Max(math.Abs(p.Y-r.Min.Y), math.Abs(p.Y-r.Max.Y))
	return math.Hypot(dx, dy)
}

// MinDistRect returns the minimum Euclidean distance between any point of r
// and any point of s (zero when they intersect). This is the
// mindist(e_Ri, e_Rj) used by Lemma 7 of the paper.
func (r Rect) MinDistRect(s Rect) float64 {
	if r.IsEmpty() || s.IsEmpty() {
		return math.Inf(1)
	}
	dx := gapDist(r.Min.X, r.Max.X, s.Min.X, s.Max.X)
	dy := gapDist(r.Min.Y, r.Max.Y, s.Min.Y, s.Max.Y)
	return math.Hypot(dx, dy)
}

// MaxDistRect returns the maximum Euclidean distance between any point of r
// and any point of s.
func (r Rect) MaxDistRect(s Rect) float64 {
	if r.IsEmpty() || s.IsEmpty() {
		return 0
	}
	dx := math.Max(math.Abs(r.Max.X-s.Min.X), math.Abs(s.Max.X-r.Min.X))
	dy := math.Max(math.Abs(r.Max.Y-s.Min.Y), math.Abs(s.Max.Y-r.Min.Y))
	return math.Hypot(dx, dy)
}

// Expand returns r grown by d on every side. A negative d shrinks r and may
// produce an empty rectangle.
func (r Rect) Expand(d float64) Rect {
	if r.IsEmpty() {
		return r
	}
	out := Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
	if out.IsEmpty() {
		return EmptyRect()
	}
	return out
}

// axisDist returns the distance from coordinate v to the interval [lo, hi].
func axisDist(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}

// gapDist returns the gap between intervals [a0,a1] and [b0,b1] (zero when
// they overlap).
func gapDist(a0, a1, b0, b1 float64) float64 {
	switch {
	case a1 < b0:
		return b0 - a1
	case b1 < a0:
		return a0 - b1
	default:
		return 0
	}
}
