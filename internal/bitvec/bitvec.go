// Package bitvec implements the fixed-width keyword bit vectors that the
// GP-SSN indexes store in their nodes (Section 4.1 of the paper): each
// keyword in a node's sup_K / sub_K set is hashed to a position in a bit
// vector (V_sup / V_sub) so that membership can be tested without storing
// the full keyword sets.
//
// A Vector of width w behaves like a Bloom filter with one hash function:
// Test may return false positives (a hash collision makes an absent keyword
// look present) but never false negatives. The pruning rules in the core
// package only rely on the superset direction, so collisions cost pruning
// power, never correctness.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

// Vector is a fixed-width bit vector. The zero value is unusable; create
// vectors with New.
type Vector struct {
	width int
	words []uint64
}

// New returns a zeroed Vector with the given width in bits. It panics if
// width is not positive, since a zero-width signature cannot represent any
// keyword set.
func New(width int) *Vector {
	if width <= 0 {
		panic(fmt.Sprintf("bitvec: non-positive width %d", width))
	}
	return &Vector{width: width, words: make([]uint64, (width+63)/64)}
}

// FromKeywords returns a new Vector of the given width with every keyword
// in ks hashed and set.
func FromKeywords(width int, ks []int) *Vector {
	v := New(width)
	for _, k := range ks {
		v.SetKeyword(k)
	}
	return v
}

// Width returns the vector's width in bits.
func (v *Vector) Width() int { return v.width }

// position maps a keyword identifier to a bit position. Keyword IDs are
// small non-negative integers (topic indices), so a multiplicative hash
// spreads consecutive IDs across the vector.
func (v *Vector) position(keyword int) int {
	h := uint64(keyword) * 0x9E3779B97F4A7C15 // Fibonacci hashing
	return int(h % uint64(v.width))
}

// SetKeyword hashes the keyword and sets its bit.
func (v *Vector) SetKeyword(keyword int) {
	v.SetBit(v.position(keyword))
}

// TestKeyword reports whether the keyword's bit is set. False positives are
// possible; false negatives are not.
func (v *Vector) TestKeyword(keyword int) bool {
	return v.Bit(v.position(keyword))
}

// SetBit sets bit i. It panics when i is out of range.
func (v *Vector) SetBit(i int) {
	if i < 0 || i >= v.width {
		panic(fmt.Sprintf("bitvec: bit %d out of range [0,%d)", i, v.width))
	}
	v.words[i>>6] |= 1 << (uint(i) & 63)
}

// Bit reports whether bit i is set. It panics when i is out of range.
func (v *Vector) Bit(i int) bool {
	if i < 0 || i >= v.width {
		panic(fmt.Sprintf("bitvec: bit %d out of range [0,%d)", i, v.width))
	}
	return v.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Or sets v to the bitwise OR of v and u (the index stores a node's V_sup
// as the OR of its children's vectors). It panics when widths differ.
func (v *Vector) Or(u *Vector) {
	if v.width != u.width {
		panic(fmt.Sprintf("bitvec: width mismatch %d != %d", v.width, u.width))
	}
	for i := range v.words {
		v.words[i] |= u.words[i]
	}
}

// Contains reports whether every set bit of u is also set in v, i.e.
// whether v's keyword set (as a signature) is a superset of u's.
func (v *Vector) Contains(u *Vector) bool {
	if v.width != u.width {
		panic(fmt.Sprintf("bitvec: width mismatch %d != %d", v.width, u.width))
	}
	for i := range v.words {
		if u.words[i]&^v.words[i] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether v and u share at least one set bit.
func (v *Vector) Intersects(u *Vector) bool {
	if v.width != u.width {
		panic(fmt.Sprintf("bitvec: width mismatch %d != %d", v.width, u.width))
	}
	for i := range v.words {
		if v.words[i]&u.words[i] != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of set bits.
func (v *Vector) Count() int {
	n := 0
	for _, w := range v.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns an independent copy of v.
func (v *Vector) Clone() *Vector {
	out := &Vector{width: v.width, words: make([]uint64, len(v.words))}
	copy(out.words, v.words)
	return out
}

// Reset clears every bit.
func (v *Vector) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Equal reports whether v and u have identical width and bits.
func (v *Vector) Equal(u *Vector) bool {
	if v.width != u.width {
		return false
	}
	for i := range v.words {
		if v.words[i] != u.words[i] {
			return false
		}
	}
	return true
}

// SizeBytes returns the in-memory size of the vector's payload, used by the
// page simulator to lay index nodes out on pages.
func (v *Vector) SizeBytes() int { return len(v.words) * 8 }

// String renders the vector as a bit string, lowest bit first, for debugging.
func (v *Vector) String() string {
	var b strings.Builder
	b.Grow(v.width)
	for i := 0; i < v.width; i++ {
		if v.Bit(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}
