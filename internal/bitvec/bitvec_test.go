package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadWidth(t *testing.T) {
	for _, w := range []int{0, -1, -64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) should panic", w)
				}
			}()
			New(w)
		}()
	}
}

func TestSetTestBit(t *testing.T) {
	v := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if v.Bit(i) {
			t.Errorf("bit %d should start clear", i)
		}
		v.SetBit(i)
		if !v.Bit(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	if v.Count() != 8 {
		t.Errorf("Count = %d, want 8", v.Count())
	}
}

func TestBitOutOfRangePanics(t *testing.T) {
	v := New(10)
	for _, i := range []int{-1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Bit(%d) should panic", i)
				}
			}()
			v.Bit(i)
		}()
	}
}

func TestKeywordNoFalseNegatives(t *testing.T) {
	// Whatever collisions happen, a set keyword must always test positive.
	f := func(width uint8, kws []uint16) bool {
		w := int(width)%512 + 1
		v := New(w)
		for _, k := range kws {
			v.SetKeyword(int(k))
		}
		for _, k := range kws {
			if !v.TestKeyword(int(k)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOrIsSupersetOfBoth(t *testing.T) {
	f := func(a, b []uint16) bool {
		const w = 256
		va := New(w)
		vb := New(w)
		for _, k := range a {
			va.SetKeyword(int(k))
		}
		for _, k := range b {
			vb.SetKeyword(int(k))
		}
		u := va.Clone()
		u.Or(vb)
		return u.Contains(va) && u.Contains(vb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestContains(t *testing.T) {
	a := FromKeywords(64, []int{1, 2, 3})
	b := FromKeywords(64, []int{2, 3})
	if !a.Contains(b) {
		t.Error("a should contain b")
	}
	if b.Contains(a) && a.Count() != b.Count() {
		t.Error("b should not contain a (unless hashing collapsed them)")
	}
	empty := New(64)
	if !a.Contains(empty) {
		t.Error("everything contains the empty vector")
	}
	if !empty.Contains(empty) {
		t.Error("empty contains empty")
	}
}

func TestIntersects(t *testing.T) {
	a := FromKeywords(256, []int{10, 20})
	b := FromKeywords(256, []int{20, 30})
	c := New(256)
	if !a.Intersects(b) {
		t.Error("a and b share keyword 20")
	}
	if a.Intersects(c) {
		t.Error("nothing intersects the empty vector")
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	a, b := New(64), New(128)
	for name, fn := range map[string]func(){
		"Or":         func() { a.Or(b) },
		"Contains":   func() { a.Contains(b) },
		"Intersects": func() { a.Intersects(b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched widths should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromKeywords(64, []int{5})
	b := a.Clone()
	b.SetKeyword(6)
	if a.Equal(b) && a.Count() != b.Count() {
		t.Error("mutating clone must not affect original")
	}
	if !a.TestKeyword(5) {
		t.Error("original lost its keyword")
	}
}

func TestResetAndEqual(t *testing.T) {
	a := FromKeywords(64, []int{1, 2, 3})
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone should be equal")
	}
	a.Reset()
	if a.Count() != 0 {
		t.Errorf("Count after Reset = %d", a.Count())
	}
	if a.Equal(b) && b.Count() > 0 {
		t.Error("reset vector should differ from populated clone")
	}
	if a.Equal(New(128)) {
		t.Error("different widths are never equal")
	}
}

func TestSizeBytes(t *testing.T) {
	if got := New(1).SizeBytes(); got != 8 {
		t.Errorf("SizeBytes(1-bit) = %d, want 8", got)
	}
	if got := New(64).SizeBytes(); got != 8 {
		t.Errorf("SizeBytes(64-bit) = %d, want 8", got)
	}
	if got := New(65).SizeBytes(); got != 16 {
		t.Errorf("SizeBytes(65-bit) = %d, want 16", got)
	}
}

func TestStringRendering(t *testing.T) {
	v := New(4)
	v.SetBit(1)
	v.SetBit(3)
	if got := v.String(); got != "0101" {
		t.Errorf("String = %q, want 0101", got)
	}
}

func TestFalsePositiveRateReasonable(t *testing.T) {
	// With 64 keywords hashed into 1024 bits, the false-positive rate for a
	// fresh keyword should be well under 20%. This guards the hash function
	// quality; a catastrophic hash (everything to one bit) would destroy
	// the index's pruning power silently.
	rng := rand.New(rand.NewSource(7))
	const width = 1024
	v := New(width)
	present := map[int]bool{}
	for i := 0; i < 64; i++ {
		k := rng.Intn(10000)
		present[k] = true
		v.SetKeyword(k)
	}
	fp, trials := 0, 0
	for k := 10000; k < 12000; k++ {
		trials++
		if v.TestKeyword(k) {
			fp++
		}
	}
	if rate := float64(fp) / float64(trials); rate > 0.2 {
		t.Errorf("false positive rate %.3f too high", rate)
	}
}
