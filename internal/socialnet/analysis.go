package socialnet

// Analysis helpers used to validate generated networks against the
// structural properties real location-based social networks exhibit
// (degree skew, clustering, community structure). The dataset generators'
// tests assert on these, and cmd/gpssn-gen reports them.

// DegreeHistogram returns counts[d] = number of users with degree d.
func (g *Graph) DegreeHistogram() []int {
	maxDeg := 0
	for u := range g.adj {
		if len(g.adj[u]) > maxDeg {
			maxDeg = len(g.adj[u])
		}
	}
	counts := make([]int, maxDeg+1)
	for u := range g.adj {
		counts[len(g.adj[u])]++
	}
	return counts
}

// MaxDegree returns the largest degree.
func (g *Graph) MaxDegree() int {
	m := 0
	for u := range g.adj {
		if len(g.adj[u]) > m {
			m = len(g.adj[u])
		}
	}
	return m
}

// ClusteringCoefficient returns the mean local clustering coefficient over
// users with degree >= 2: the fraction of a user's friend pairs that are
// themselves friends. Real social networks cluster strongly (~0.1-0.3);
// pure random graphs are near deg/n.
func (g *Graph) ClusteringCoefficient() float64 {
	sum, counted := 0.0, 0
	for u := range g.adj {
		friends := g.adj[u]
		if len(friends) < 2 {
			continue
		}
		inSet := make(map[UserID]bool, len(friends))
		for _, v := range friends {
			inSet[v] = true
		}
		links := 0
		for _, v := range friends {
			for _, w := range g.adj[v] {
				if w != UserID(u) && inSet[w] {
					links++
				}
			}
		}
		pairs := len(friends) * (len(friends) - 1) // ordered pairs
		sum += float64(links) / float64(pairs)
		counted++
	}
	if counted == 0 {
		return 0
	}
	return sum / float64(counted)
}

// LargestComponentFraction returns the share of users in the largest
// connected component.
func (g *Graph) LargestComponentFraction() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	labels, n := g.ConnectedComponents()
	sizes := make([]int, n)
	for _, l := range labels {
		sizes[l]++
	}
	max := 0
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	return float64(max) / float64(len(g.adj))
}

// MeanHopDistance estimates the mean hop distance between reachable user
// pairs by running BFS from the given sample of source users.
func (g *Graph) MeanHopDistance(sources []UserID) float64 {
	var sum float64
	var count int
	for _, s := range sources {
		for _, h := range g.BFSHops(s) {
			if h > 0 {
				sum += float64(h)
				count++
			}
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// Homophily returns the mean of sim(u, v) over friendship edges minus the
// mean over an equal number of random non-adjacent pairs, using the given
// similarity function. Positive values mean friends are more similar than
// strangers — the property the GP-SSN interest pruning exploits. The
// random pairs are drawn deterministically from the edge structure.
func (g *Graph) Homophily(sim func(a, b UserID) float64) float64 {
	n := len(g.adj)
	if n < 2 || g.numEdges == 0 {
		return 0
	}
	var friendSum float64
	var friendCount int
	var strangerSum float64
	var strangerCount int
	// Deterministic "random" stranger pairs via a multiplicative stride.
	stride := UserID(2654435761 % uint32(n))
	if stride == 0 {
		stride = 1
	}
	next := UserID(1)
	for u := 0; u < n; u++ {
		for _, v := range g.adj[u] {
			if UserID(u) < v {
				friendSum += sim(UserID(u), v)
				friendCount++
				// One stranger pair per edge.
				a := UserID(u)
				b := (v*stride + next) % UserID(n)
				next++
				if a != b && !g.AreFriends(a, b) {
					strangerSum += sim(a, b)
					strangerCount++
				}
			}
		}
	}
	if friendCount == 0 || strangerCount == 0 {
		return 0
	}
	return friendSum/float64(friendCount) - strangerSum/float64(strangerCount)
}
