package socialnet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// pathGraph builds a path 0-1-2-...-(n-1).
func pathGraph(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i+1 < n; i++ {
		g.AddFriendship(UserID(i), UserID(i+1))
	}
	return g
}

// randomGraph builds a connected random graph: a spanning path plus extra
// random edges.
func randomGraph(n, extra int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := pathGraph(n)
	for i := 0; i < extra; i++ {
		g.AddFriendship(UserID(rng.Intn(n)), UserID(rng.Intn(n)))
	}
	return g
}

func TestAddFriendship(t *testing.T) {
	g := NewGraph(3)
	if !g.AddFriendship(0, 1) {
		t.Error("first edge should succeed")
	}
	if g.AddFriendship(0, 1) || g.AddFriendship(1, 0) {
		t.Error("duplicate edge should be rejected")
	}
	if g.AddFriendship(2, 2) {
		t.Error("self-loop should be rejected")
	}
	if g.NumFriendships() != 1 {
		t.Errorf("NumFriendships = %d", g.NumFriendships())
	}
	if !g.AreFriends(0, 1) || !g.AreFriends(1, 0) {
		t.Error("AreFriends should be symmetric")
	}
	if g.AreFriends(0, 2) {
		t.Error("0 and 2 are not friends")
	}
}

func TestAddUser(t *testing.T) {
	g := NewGraph(0)
	a := g.AddUser()
	b := g.AddUser()
	if a != 0 || b != 1 || g.NumUsers() != 2 {
		t.Errorf("AddUser ids %d,%d users=%d", a, b, g.NumUsers())
	}
}

func TestNewGraphNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewGraph(-1) should panic")
		}
	}()
	NewGraph(-1)
}

func TestDegreeStats(t *testing.T) {
	g := pathGraph(4)
	if g.Degree(0) != 1 || g.Degree(1) != 2 {
		t.Error("path degrees wrong")
	}
	// Path of 4 vertices has 3 edges: avg degree 1.5.
	if got := g.AvgDegree(); got != 1.5 {
		t.Errorf("AvgDegree = %v", got)
	}
	if NewGraph(0).AvgDegree() != 0 {
		t.Error("empty graph AvgDegree should be 0")
	}
}

func TestBFSHopsPath(t *testing.T) {
	g := pathGraph(6)
	hops := g.BFSHops(0)
	for i := 0; i < 6; i++ {
		if hops[i] != int32(i) {
			t.Fatalf("hops[%d] = %d, want %d", i, hops[i], i)
		}
	}
}

func TestBFSHopsBounded(t *testing.T) {
	g := pathGraph(10)
	hops := g.BFSHopsBounded(0, 3)
	for i := 0; i < 10; i++ {
		want := int32(i)
		if i > 3 {
			want = Unreachable
		}
		if hops[i] != want {
			t.Fatalf("bounded hops[%d] = %d, want %d", i, hops[i], want)
		}
	}
}

func TestBFSHopsDisconnected(t *testing.T) {
	g := NewGraph(4)
	g.AddFriendship(0, 1)
	g.AddFriendship(2, 3)
	hops := g.BFSHops(0)
	if hops[2] != Unreachable || hops[3] != Unreachable {
		t.Errorf("cross-component hops = %v", hops)
	}
	if g.HopDist(0, 3) != Unreachable {
		t.Error("HopDist across components should be Unreachable")
	}
	if g.HopDist(0, 1) != 1 {
		t.Error("HopDist(0,1) should be 1")
	}
}

func TestWithinHops(t *testing.T) {
	g := pathGraph(8)
	got := g.WithinHops(3, 2)
	want := map[UserID]bool{1: true, 2: true, 3: true, 4: true, 5: true}
	if len(got) != len(want) {
		t.Fatalf("WithinHops = %v", got)
	}
	for _, u := range got {
		if !want[u] {
			t.Fatalf("unexpected user %d", u)
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	g := NewGraph(5)
	g.AddFriendship(0, 1)
	g.AddFriendship(1, 2)
	g.AddFriendship(3, 4)
	labels, n := g.ConnectedComponents()
	if n != 2 {
		t.Fatalf("n = %d, want 2", n)
	}
	if labels[0] != labels[2] || labels[3] != labels[4] || labels[0] == labels[3] {
		t.Errorf("labels = %v", labels)
	}
}

func TestIsConnectedSet(t *testing.T) {
	g := pathGraph(6)
	if !g.IsConnectedSet([]UserID{1, 2, 3}) {
		t.Error("contiguous path slice should be connected")
	}
	if g.IsConnectedSet([]UserID{0, 2}) {
		t.Error("0 and 2 are not adjacent in a path")
	}
	if !g.IsConnectedSet(nil) {
		t.Error("empty set is trivially connected")
	}
	if !g.IsConnectedSet([]UserID{4}) {
		t.Error("singleton is connected")
	}
}

// Property: BFS hop distances satisfy the triangle inequality along edges:
// |hops[u] - hops[v]| <= 1 for every edge (u,v).
func TestBFSHopsEdgeLipschitzProperty(t *testing.T) {
	f := func(seed int64, nRaw, extraRaw uint8) bool {
		n := int(nRaw)%50 + 2
		g := randomGraph(n, int(extraRaw)%100, seed)
		hops := g.BFSHops(0)
		for u := 0; u < n; u++ {
			for _, v := range g.Friends(UserID(u)) {
				d := hops[u] - hops[v]
				if d < -1 || d > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCheckPanics(t *testing.T) {
	g := NewGraph(2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range user should panic")
		}
	}()
	g.Degree(5)
}
