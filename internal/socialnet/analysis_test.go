package socialnet

import (
	"math"
	"testing"
)

// triangleGraph: 0-1-2 triangle plus pendant 3 attached to 0.
func triangleGraph() *Graph {
	g := NewGraph(4)
	g.AddFriendship(0, 1)
	g.AddFriendship(1, 2)
	g.AddFriendship(0, 2)
	g.AddFriendship(0, 3)
	return g
}

func TestDegreeHistogram(t *testing.T) {
	g := triangleGraph()
	h := g.DegreeHistogram()
	// degrees: 0->3, 1->2, 2->2, 3->1
	if h[1] != 1 || h[2] != 2 || h[3] != 1 {
		t.Errorf("histogram = %v", h)
	}
	if g.MaxDegree() != 3 {
		t.Errorf("MaxDegree = %d", g.MaxDegree())
	}
}

func TestClusteringCoefficient(t *testing.T) {
	g := triangleGraph()
	// User 1: friends {0,2}, linked -> 1.0. User 2: friends {0,1} linked -> 1.0.
	// User 0: friends {1,2,3}: of 6 ordered pairs, (1,2) and (2,1) linked -> 1/3.
	// Mean over users with deg>=2: (1 + 1 + 1/3) / 3.
	want := (1.0 + 1.0 + 1.0/3) / 3
	if got := g.ClusteringCoefficient(); math.Abs(got-want) > 1e-12 {
		t.Errorf("ClusteringCoefficient = %v, want %v", got, want)
	}
	// A path graph has no triangles.
	if got := pathGraph(10).ClusteringCoefficient(); got != 0 {
		t.Errorf("path clustering = %v", got)
	}
	if NewGraph(0).ClusteringCoefficient() != 0 {
		t.Error("empty graph clustering should be 0")
	}
}

func TestLargestComponentFraction(t *testing.T) {
	g := NewGraph(5)
	g.AddFriendship(0, 1)
	g.AddFriendship(1, 2)
	g.AddFriendship(3, 4)
	if got := g.LargestComponentFraction(); got != 0.6 {
		t.Errorf("LargestComponentFraction = %v, want 0.6", got)
	}
	if NewGraph(0).LargestComponentFraction() != 0 {
		t.Error("empty graph fraction should be 0")
	}
}

func TestMeanHopDistance(t *testing.T) {
	g := pathGraph(4) // 0-1-2-3
	// From 0: hops 1+2+3 = 6 over 3 pairs.
	got := g.MeanHopDistance([]UserID{0})
	if math.Abs(got-2.0) > 1e-12 {
		t.Errorf("MeanHopDistance = %v, want 2", got)
	}
	if g.MeanHopDistance(nil) != 0 {
		t.Error("no sources should give 0")
	}
}

func TestHomophily(t *testing.T) {
	// Two cliques with identical internal "interest" labels: friends are
	// always same-label, strangers mostly cross-label.
	g := NewGraph(8)
	label := []float64{0, 0, 0, 0, 1, 1, 1, 1}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddFriendship(UserID(i), UserID(j))
			g.AddFriendship(UserID(i+4), UserID(j+4))
		}
	}
	sim := func(a, b UserID) float64 {
		if label[a] == label[b] {
			return 1
		}
		return 0
	}
	if got := g.Homophily(sim); got <= 0 {
		t.Errorf("Homophily = %v, want positive", got)
	}
	if NewGraph(3).Homophily(sim) != 0 {
		t.Error("no edges should give 0")
	}
}
