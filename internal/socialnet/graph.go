// Package socialnet implements the social network G_s of the paper
// (Definition 3): an undirected friendship graph over users, with BFS hop
// distances (the paper's dist_SN), hop-distance pivot tables for the
// social-network distance pruning of Lemma 4, and a balanced connected
// graph partitioning that forms the leaf nodes of the GP-SSN social index
// I_S (the paper uses METIS [28]; any balanced connected partitioning has
// the same index semantics).
package socialnet

import "fmt"

// UserID identifies a social-network user.
type UserID int32

// Graph is an undirected friendship graph. Create with NewGraph.
type Graph struct {
	adj      [][]UserID
	numEdges int
}

// NewGraph returns a friendship graph over n users with no edges.
func NewGraph(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("socialnet: negative user count %d", n))
	}
	return &Graph{adj: make([][]UserID, n)}
}

// AddUser appends a new user with no friends and returns its id.
func (g *Graph) AddUser() UserID {
	g.adj = append(g.adj, nil)
	return UserID(len(g.adj) - 1)
}

// AddFriendship adds an undirected edge between u and v. Adding a duplicate
// edge or a self-loop is a no-op returning false.
func (g *Graph) AddFriendship(u, v UserID) bool {
	g.check(u)
	g.check(v)
	if u == v {
		return false
	}
	for _, w := range g.adj[u] {
		if w == v {
			return false
		}
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.numEdges++
	return true
}

// AreFriends reports whether u and v share an edge.
func (g *Graph) AreFriends(u, v UserID) bool {
	g.check(u)
	g.check(v)
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// NumUsers returns |V(G_s)|.
func (g *Graph) NumUsers() int { return len(g.adj) }

// NumFriendships returns |E(G_s)|.
func (g *Graph) NumFriendships() int { return g.numEdges }

// Degree returns the number of friends of u.
func (g *Graph) Degree(u UserID) int {
	g.check(u)
	return len(g.adj[u])
}

// AvgDegree returns the average degree (the deg(G_s) statistic of Table 2).
func (g *Graph) AvgDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.numEdges) / float64(len(g.adj))
}

// Friends returns u's adjacency slice. Callers must treat it as read-only.
func (g *Graph) Friends(u UserID) []UserID {
	g.check(u)
	return g.adj[u]
}

// Unreachable is the hop distance reported for users in other components.
const Unreachable int32 = -1

// BFSHops returns the hop distance (dist_SN) from src to every user, with
// Unreachable (-1) for users in other components.
func (g *Graph) BFSHops(src UserID) []int32 {
	return g.BFSHopsBounded(src, int32(len(g.adj)))
}

// BFSHopsBounded returns hop distances from src, exploring at most maxHops
// levels; users farther than maxHops (or unreachable) get Unreachable.
// The GP-SSN social-distance pruning (Lemma 4) only needs hops < τ, so a
// bounded BFS avoids touching the whole graph for small groups.
func (g *Graph) BFSHopsBounded(src UserID, maxHops int32) []int32 {
	g.check(src)
	hops := make([]int32, len(g.adj))
	for i := range hops {
		hops[i] = Unreachable
	}
	hops[src] = 0
	frontier := []UserID{src}
	for d := int32(1); d <= maxHops && len(frontier) > 0; d++ {
		var next []UserID
		for _, u := range frontier {
			for _, v := range g.adj[u] {
				if hops[v] == Unreachable {
					hops[v] = d
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return hops
}

// HopDist returns the hop distance between u and v (Unreachable when they
// are in different components).
func (g *Graph) HopDist(u, v UserID) int32 {
	g.check(v)
	return g.BFSHops(u)[v]
}

// WithinHops returns all users at hop distance <= maxHops from src,
// including src itself (hop 0).
func (g *Graph) WithinHops(src UserID, maxHops int32) []UserID {
	hops := g.BFSHopsBounded(src, maxHops)
	var out []UserID
	for u, h := range hops {
		if h != Unreachable {
			out = append(out, UserID(u))
		}
	}
	return out
}

// ConnectedComponents returns a component label per user and the number of
// components.
func (g *Graph) ConnectedComponents() (labels []int, n int) {
	labels = make([]int, len(g.adj))
	for i := range labels {
		labels[i] = -1
	}
	var stack []UserID
	for start := range g.adj {
		if labels[start] >= 0 {
			continue
		}
		stack = append(stack[:0], UserID(start))
		labels[start] = n
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range g.adj[u] {
				if labels[v] < 0 {
					labels[v] = n
					stack = append(stack, v)
				}
			}
		}
		n++
	}
	return labels, n
}

// IsConnectedSet reports whether the users in set induce a connected
// subgraph of g. GP-SSN's second predicate requires the returned user
// group S to be connected in G_s.
func (g *Graph) IsConnectedSet(set []UserID) bool {
	if len(set) == 0 {
		return true
	}
	in := make(map[UserID]bool, len(set))
	for _, u := range set {
		g.check(u)
		in[u] = true
	}
	seen := map[UserID]bool{set[0]: true}
	stack := []UserID{set[0]}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.adj[u] {
			if in[v] && !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return len(seen) == len(in)
}

func (g *Graph) check(u UserID) {
	if u < 0 || int(u) >= len(g.adj) {
		panic(fmt.Sprintf("socialnet: user %d out of range [0,%d)", u, len(g.adj)))
	}
}
