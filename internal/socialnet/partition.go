package socialnet

import (
	"fmt"
	"sort"
)

// Partition divides the users into balanced groups of roughly targetSize
// users each, preferring connected groups. It stands in for the METIS-style
// partitioner the paper cites for building the leaf nodes of index I_S:
// partitions are grown by BFS from seed users (keeping each group
// connected within its component) and then rebalanced by moving boundary
// users from oversized to undersized neighbouring groups.
//
// Every user is assigned to exactly one group; groups are non-empty; the
// result is deterministic for a given graph.
func Partition(g *Graph, targetSize int) [][]UserID {
	if targetSize <= 0 {
		panic(fmt.Sprintf("socialnet: non-positive partition size %d", targetSize))
	}
	n := g.NumUsers()
	if n == 0 {
		return nil
	}
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	var groups [][]UserID

	// Seed order: highest degree first, so hubs anchor partitions and BFS
	// growth follows community structure.
	order := make([]UserID, n)
	for i := range order {
		order[i] = UserID(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})

	// conn[v] counts edges from unassigned vertex v into the group being
	// grown; growing by maximum connectivity keeps each partition inside
	// one community (the min-cut behaviour METIS provides).
	conn := make([]int, n)
	inFrontier := make([]bool, n)
	for _, seed := range order {
		if assign[seed] >= 0 {
			continue
		}
		gid := len(groups)
		group := []UserID{seed}
		assign[seed] = gid
		var frontier []UserID
		addNeighbors := func(u UserID) {
			for _, v := range g.Friends(u) {
				if assign[v] < 0 {
					conn[v]++
					if !inFrontier[v] {
						inFrontier[v] = true
						frontier = append(frontier, v)
					}
				}
			}
		}
		addNeighbors(seed)
		for len(group) < targetSize && len(frontier) > 0 {
			// Pick the frontier vertex with the most edges into the group.
			bi, bc := -1, -1
			for i, v := range frontier {
				if assign[v] >= 0 {
					continue
				}
				if conn[v] > bc {
					bi, bc = i, conn[v]
				}
			}
			if bi < 0 {
				break
			}
			v := frontier[bi]
			frontier[bi] = frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			inFrontier[v] = false
			assign[v] = gid
			group = append(group, v)
			addNeighbors(v)
		}
		// Reset frontier bookkeeping for the next group.
		for _, v := range frontier {
			inFrontier[v] = false
			conn[v] = 0
		}
		frontier = frontier[:0]
		groups = append(groups, group)
	}

	groups = mergeTinyGroups(g, groups, assign, targetSize)
	return groups
}

// mergeTinyGroups folds groups smaller than half the target into an
// adjacent group (or the smallest group when no adjacency exists, e.g.
// isolated users), so the partition tree does not degenerate into a long
// tail of singleton leaves.
func mergeTinyGroups(g *Graph, groups [][]UserID, assign []int, targetSize int) [][]UserID {
	minSize := targetSize / 2
	if minSize < 1 {
		minSize = 1
	}
	for gi := 0; gi < len(groups); gi++ {
		if len(groups[gi]) >= minSize || len(groups[gi]) == 0 {
			continue
		}
		// Find the smallest adjacent group to merge into.
		best := -1
		for _, u := range groups[gi] {
			for _, v := range g.Friends(u) {
				o := assign[v]
				if o == gi || o < 0 || len(groups[o]) == 0 {
					continue
				}
				if best < 0 || len(groups[o]) < len(groups[best]) {
					best = o
				}
			}
		}
		if best < 0 {
			// No adjacent group (isolated users): merge into the globally
			// smallest other non-empty group.
			for o := range groups {
				if o == gi || len(groups[o]) == 0 {
					continue
				}
				if best < 0 || len(groups[o]) < len(groups[best]) {
					best = o
				}
			}
		}
		if best < 0 {
			continue // only one group overall
		}
		for _, u := range groups[gi] {
			assign[u] = best
		}
		groups[best] = append(groups[best], groups[gi]...)
		groups[gi] = nil
	}
	out := groups[:0]
	for _, grp := range groups {
		if len(grp) > 0 {
			out = append(out, grp)
		}
	}
	return out
}

// HopPivotTable stores BFS hop distances from l pivot users to every user
// (Section 4.1: each user keeps dist_SN(u_j, sp_k) for the social pivots),
// enabling the triangle-inequality hop lower bound of Lemma 4.
type HopPivotTable struct {
	pivots []UserID
	hops   [][]int32
}

// BuildHopPivotTable runs one BFS per pivot.
func BuildHopPivotTable(g *Graph, pivots []UserID) *HopPivotTable {
	if len(pivots) == 0 {
		panic("socialnet: BuildHopPivotTable needs at least one pivot")
	}
	t := &HopPivotTable{
		pivots: append([]UserID(nil), pivots...),
		hops:   make([][]int32, len(pivots)),
	}
	for k, p := range pivots {
		t.hops[k] = g.BFSHops(p)
	}
	return t
}

// NumPivots returns l, the number of social-network pivots.
func (t *HopPivotTable) NumPivots() int { return len(t.pivots) }

// Pivots returns the pivot user ids.
func (t *HopPivotTable) Pivots() []UserID { return t.pivots }

// Hops returns dist_SN(sp_k, u), or Unreachable.
func (t *HopPivotTable) Hops(k int, u UserID) int32 {
	if k < 0 || k >= len(t.pivots) {
		panic(fmt.Sprintf("socialnet: pivot %d out of range [0,%d)", k, len(t.pivots)))
	}
	return t.hops[k][u]
}

// UserVector returns the pivot hop vector of u, in pivot order.
func (t *HopPivotTable) UserVector(u UserID) []int32 {
	out := make([]int32, len(t.pivots))
	for k := range t.pivots {
		out[k] = t.hops[k][u]
	}
	return out
}

// HopLowerBound returns the triangle-inequality lower bound on the hop
// distance between two users given their pivot hop vectors:
//
//	lb_dist_SN(u, q) = max_k |hu[k] - hq[k]|.
//
// Pivots unreachable from exactly one of the two users prove the users are
// in different components, so the bound is "infinite" — represented by the
// returned ok=false. Pivots unreachable from both carry no information.
func HopLowerBound(hu, hq []int32) (lb int32, ok bool) {
	if len(hu) != len(hq) {
		panic(fmt.Sprintf("socialnet: hop vector length mismatch %d != %d", len(hu), len(hq)))
	}
	ok = true
	for k := range hu {
		a, b := hu[k], hq[k]
		switch {
		case a == Unreachable && b == Unreachable:
			continue
		case a == Unreachable || b == Unreachable:
			return 0, false // provably different components
		default:
			d := a - b
			if d < 0 {
				d = -d
			}
			if d > lb {
				lb = d
			}
		}
	}
	return lb, ok
}
