package socialnet

import (
	"testing"
	"testing/quick"
)

func TestPartitionCoversAllUsersOnce(t *testing.T) {
	g := randomGraph(200, 300, 1)
	groups := Partition(g, 25)
	seen := map[UserID]int{}
	for _, grp := range groups {
		if len(grp) == 0 {
			t.Fatal("empty group")
		}
		for _, u := range grp {
			seen[u]++
		}
	}
	if len(seen) != 200 {
		t.Fatalf("covered %d users, want 200", len(seen))
	}
	for u, c := range seen {
		if c != 1 {
			t.Fatalf("user %d assigned %d times", u, c)
		}
	}
}

func TestPartitionGroupSizes(t *testing.T) {
	g := randomGraph(300, 500, 2)
	const target = 30
	groups := Partition(g, target)
	for i, grp := range groups {
		if len(grp) > 2*target {
			t.Errorf("group %d has %d users (> 2x target %d)", i, len(grp), target)
		}
	}
	if len(groups) < 5 {
		t.Errorf("only %d groups for 300 users at target 30", len(groups))
	}
}

func TestPartitionConnectedGroups(t *testing.T) {
	// On a connected graph, BFS-grown groups before merging are connected;
	// after tiny-group merging most groups remain connected. We require at
	// least that every group of a path graph (easy case) is connected.
	g := pathGraph(100)
	groups := Partition(g, 10)
	for i, grp := range groups {
		if !g.IsConnectedSet(grp) {
			t.Errorf("group %d is disconnected: %v", i, grp)
		}
	}
}

func TestPartitionIsolatedUsers(t *testing.T) {
	g := NewGraph(10) // no edges at all
	groups := Partition(g, 3)
	total := 0
	for _, grp := range groups {
		total += len(grp)
	}
	if total != 10 {
		t.Fatalf("covered %d users, want 10", total)
	}
}

func TestPartitionSingleGroup(t *testing.T) {
	g := pathGraph(5)
	groups := Partition(g, 100)
	if len(groups) != 1 || len(groups[0]) != 5 {
		t.Errorf("groups = %v", groups)
	}
}

func TestPartitionEmptyGraph(t *testing.T) {
	if got := Partition(NewGraph(0), 5); got != nil {
		t.Errorf("empty graph partition = %v", got)
	}
}

func TestPartitionBadTargetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("target 0 should panic")
		}
	}()
	Partition(NewGraph(3), 0)
}

// Property: partitioning any random graph covers every user exactly once.
func TestPartitionCoverageProperty(t *testing.T) {
	f := func(seed int64, nRaw, extraRaw, tRaw uint8) bool {
		n := int(nRaw)%150 + 1
		target := int(tRaw)%20 + 1
		g := randomGraph(n, int(extraRaw), seed)
		groups := Partition(g, target)
		seen := map[UserID]bool{}
		for _, grp := range groups {
			for _, u := range grp {
				if seen[u] {
					return false
				}
				seen[u] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHopPivotTable(t *testing.T) {
	g := pathGraph(10)
	pt := BuildHopPivotTable(g, []UserID{0, 9})
	if pt.NumPivots() != 2 {
		t.Fatalf("NumPivots = %d", pt.NumPivots())
	}
	if pt.Hops(0, 4) != 4 || pt.Hops(1, 4) != 5 {
		t.Errorf("hops wrong: %d, %d", pt.Hops(0, 4), pt.Hops(1, 4))
	}
	v := pt.UserVector(4)
	if len(v) != 2 || v[0] != 4 || v[1] != 5 {
		t.Errorf("UserVector = %v", v)
	}
	if got := pt.Pivots(); len(got) != 2 || got[0] != 0 {
		t.Errorf("Pivots = %v", got)
	}
}

func TestBuildHopPivotTableEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty pivot set should panic")
		}
	}()
	BuildHopPivotTable(pathGraph(3), nil)
}

func TestHopLowerBound(t *testing.T) {
	lb, ok := HopLowerBound([]int32{3, 7}, []int32{5, 2})
	if !ok || lb != 5 {
		t.Errorf("lb = %d ok=%v, want 5 true", lb, ok)
	}
	// Pivot unreachable from one side proves different components.
	if _, ok := HopLowerBound([]int32{Unreachable}, []int32{3}); ok {
		t.Error("one-sided unreachable pivot should report ok=false")
	}
	// Unreachable from both sides: no information, trivial bound.
	lb, ok = HopLowerBound([]int32{Unreachable}, []int32{Unreachable})
	if !ok || lb != 0 {
		t.Errorf("both-unreachable: lb=%d ok=%v", lb, ok)
	}
}

func TestHopLowerBoundMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	HopLowerBound([]int32{1}, []int32{1, 2})
}

// Property: the pivot hop lower bound never exceeds the true hop distance.
func TestHopLowerBoundSoundProperty(t *testing.T) {
	f := func(seed int64, nRaw, extraRaw uint8) bool {
		n := int(nRaw)%60 + 2
		g := randomGraph(n, int(extraRaw)%120, seed)
		pt := BuildHopPivotTable(g, []UserID{0, UserID(n / 2)})
		trueHops := g.BFSHops(0)
		hq := pt.UserVector(0)
		for u := 1; u < n; u++ {
			lb, ok := HopLowerBound(pt.UserVector(UserID(u)), hq)
			if !ok {
				// Claimed different components: must really be unreachable.
				if trueHops[u] != Unreachable {
					return false
				}
				continue
			}
			if trueHops[u] != Unreachable && lb > trueHops[u] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBFSHops(b *testing.B) {
	g := randomGraph(5000, 20000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFSHops(UserID(i % 5000))
	}
}

func BenchmarkPartition(b *testing.B) {
	g := randomGraph(5000, 20000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Partition(g, 64)
	}
}
