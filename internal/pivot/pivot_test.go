package pivot

import (
	"math"
	"math/rand"
	"testing"

	"gpssn/internal/geo"
	"gpssn/internal/roadnet"
	"gpssn/internal/socialnet"
)

func gridRoad(n int) *roadnet.Graph {
	g := roadnet.NewGraph(n*n, 2*n*n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			g.AddVertex(geo.Pt(float64(c), float64(r)))
		}
	}
	id := func(r, c int) roadnet.VertexID { return roadnet.VertexID(r*n + c) }
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if c+1 < n {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < n {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

func randAttaches(g *roadnet.Graph, n int, seed int64) []roadnet.Attach {
	rng := rand.New(rand.NewSource(seed))
	out := make([]roadnet.Attach, n)
	for i := range out {
		out[i] = g.AttachAt(roadnet.EdgeID(rng.Intn(g.NumEdges())), rng.Float64())
	}
	return out
}

func TestSelectRoadBasics(t *testing.T) {
	g := gridRoad(8)
	objs := randAttaches(g, 60, 1)
	pivots := SelectRoad(g, objs, 3, Options{Seed: 1})
	if len(pivots) != 3 {
		t.Fatalf("got %d pivots, want 3", len(pivots))
	}
	seen := map[roadnet.VertexID]bool{}
	for _, p := range pivots {
		if p < 0 || int(p) >= g.NumVertices() {
			t.Fatalf("pivot %d out of range", p)
		}
		if seen[p] {
			t.Fatalf("duplicate pivot %d", p)
		}
		seen[p] = true
	}
}

func TestSelectRoadDeterministic(t *testing.T) {
	g := gridRoad(6)
	objs := randAttaches(g, 40, 2)
	a := SelectRoad(g, objs, 3, Options{Seed: 5})
	b := SelectRoad(g, objs, 3, Options{Seed: 5})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("selection not deterministic: %v vs %v", a, b)
		}
	}
}

func TestSelectRoadClampsH(t *testing.T) {
	g := gridRoad(2) // 4 vertices
	objs := randAttaches(g, 10, 3)
	pivots := SelectRoad(g, objs, 10, Options{Seed: 1})
	if len(pivots) != 4 {
		t.Fatalf("got %d pivots, want clamp to 4", len(pivots))
	}
}

func TestSelectRoadPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("h=0 should panic")
		}
	}()
	SelectRoad(gridRoad(2), nil, 0, Options{})
}

// The cost model should beat random pivots on average: the mean pivot
// lower bound over sampled pairs should be at least as tight.
func TestSelectRoadBeatsRandomOnAverage(t *testing.T) {
	g := gridRoad(10)
	objs := randAttaches(g, 80, 4)
	meanLB := func(pivots []roadnet.VertexID) float64 {
		pt := roadnet.BuildPivotTable(g, pivots)
		vecs := make([][]float64, len(objs))
		for i, a := range objs {
			vecs[i] = pt.AttachDistAll(g, a)
		}
		rng := rand.New(rand.NewSource(9))
		sum := 0.0
		const trials = 300
		for i := 0; i < trials; i++ {
			a, b := rng.Intn(len(objs)), rng.Intn(len(objs))
			sum += roadnet.LowerBound(vecs[a], vecs[b])
		}
		return sum / trials
	}
	selected := meanLB(SelectRoad(g, objs, 4, Options{Seed: 10}))
	randomAvg := 0.0
	const R = 5
	for s := int64(0); s < R; s++ {
		randomAvg += meanLB(RandomRoad(g, 4, 100+s))
	}
	randomAvg /= R
	if selected < randomAvg*0.9 {
		t.Errorf("cost-model pivots (lb %.3f) clearly worse than random (lb %.3f)", selected, randomAvg)
	}
}

func socialPath(n int) *socialnet.Graph {
	g := socialnet.NewGraph(n)
	for i := 0; i+1 < n; i++ {
		g.AddFriendship(socialnet.UserID(i), socialnet.UserID(i+1))
	}
	return g
}

func TestSelectSocialBasics(t *testing.T) {
	g := socialPath(50)
	pivots := SelectSocial(g, 3, Options{Seed: 1})
	if len(pivots) != 3 {
		t.Fatalf("got %d pivots", len(pivots))
	}
	seen := map[socialnet.UserID]bool{}
	for _, p := range pivots {
		if seen[p] {
			t.Fatalf("duplicate pivot %d", p)
		}
		seen[p] = true
	}
}

func TestSelectSocialDeterministic(t *testing.T) {
	g := socialPath(40)
	a := SelectSocial(g, 2, Options{Seed: 3})
	b := SelectSocial(g, 2, Options{Seed: 3})
	if a[0] != b[0] || a[1] != b[1] {
		t.Errorf("not deterministic: %v vs %v", a, b)
	}
}

func TestSelectSocialClamp(t *testing.T) {
	g := socialPath(3)
	if got := SelectSocial(g, 9, Options{Seed: 1}); len(got) != 3 {
		t.Errorf("clamp failed: %v", got)
	}
}

func TestSelectSocialPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("l=0 should panic")
		}
	}()
	SelectSocial(socialPath(3), 0, Options{})
}

func TestRandomPivotsDistinct(t *testing.T) {
	g := gridRoad(5)
	rp := RandomRoad(g, 10, 1)
	seen := map[roadnet.VertexID]bool{}
	for _, p := range rp {
		if seen[p] {
			t.Fatalf("duplicate road pivot %d", p)
		}
		seen[p] = true
	}
	sg := socialPath(30)
	sp := RandomSocial(sg, 10, 2)
	seenU := map[socialnet.UserID]bool{}
	for _, p := range sp {
		if seenU[p] {
			t.Fatalf("duplicate social pivot %d", p)
		}
		seenU[p] = true
	}
}

// On a path graph, the best single hop pivot is an endpoint (lower bound
// |h(a)-h(b)| equals the true distance for all pairs). The cost-model
// search should find a pivot whose mean lb is close to that optimum.
func TestSelectSocialQualityOnPath(t *testing.T) {
	g := socialPath(60)
	pivots := SelectSocial(g, 1, Options{Seed: 7, SwapIter: 60, GlobalIter: 4})
	hops := g.BFSHops(pivots[0])
	rng := rand.New(rand.NewSource(8))
	sumLB, sumTrue := 0.0, 0.0
	for i := 0; i < 400; i++ {
		a, b := rng.Intn(60), rng.Intn(60)
		sumLB += math.Abs(float64(hops[a] - hops[b]))
		d := a - b
		if d < 0 {
			d = -d
		}
		sumTrue += float64(d)
	}
	if sumLB < 0.8*sumTrue {
		t.Errorf("pivot quality low: lb mass %.0f vs true %.0f", sumLB, sumTrue)
	}
}
