// Package pivot implements Algorithm 1 of the paper: pivot selection for
// road networks and social networks by random-restart local search. The
// cost model (the paper's Cost_RN / Cost_SN, Eqs. 20-21 in the supplemental
// material) scores a pivot set by the tightness of the triangle-inequality
// distance lower bounds it induces over a sample of object pairs — the
// tighter (larger) the lower bounds, the more pruning power the pivots buy.
// Each iteration swaps one pivot with a random non-pivot and keeps the swap
// when the cost improves; several random restarts avoid local optima.
package pivot

import (
	"math"
	"math/rand"

	"gpssn/internal/roadnet"
	"gpssn/internal/socialnet"
)

// Options tune the local search. Zero values get defaults matching the
// paper's small swap/restart budgets.
type Options struct {
	// GlobalIter is the number of random restarts (default 3).
	GlobalIter int
	// SwapIter is the number of swap attempts per restart (default 20).
	SwapIter int
	// SamplePairs is the number of object pairs the cost model evaluates
	// (default 200).
	SamplePairs int
	// Seed makes selection deterministic.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.GlobalIter == 0 {
		o.GlobalIter = 3
	}
	if o.SwapIter == 0 {
		o.SwapIter = 20
	}
	if o.SamplePairs == 0 {
		o.SamplePairs = 200
	}
	return o
}

// SelectRoad chooses h road-network pivot vertices for the given attachment
// objects (POIs and user homes) using Algorithm 1 with the Cost_RN model:
// maximize the mean pivot lower bound over sampled object pairs.
func SelectRoad(g *roadnet.Graph, objs []roadnet.Attach, h int, opt Options) []roadnet.VertexID {
	o := opt.withDefaults()
	if h <= 0 {
		panic("pivot: need at least one road pivot")
	}
	nv := g.NumVertices()
	if h > nv {
		h = nv
	}
	rng := rand.New(rand.NewSource(o.Seed))

	// Sample object pairs once; all candidate pivot sets are scored on the
	// same sample so costs are comparable.
	pairs := samplePairs(rng, len(objs), o.SamplePairs)

	// Dijkstra rows are the expensive part: cache one row per candidate
	// pivot vertex across the whole search.
	rows := map[roadnet.VertexID][]float64{}
	row := func(v roadnet.VertexID) []float64 {
		r, ok := rows[v]
		if !ok {
			r = g.Dijkstra(v)
			rows[v] = r
		}
		return r
	}
	// objDist[v][i] would be too big; compute per-pivot object distances
	// lazily from the vertex row.
	objDistCache := map[roadnet.VertexID][]float64{}
	objDist := func(v roadnet.VertexID) []float64 {
		d, ok := objDistCache[v]
		if !ok {
			r := row(v)
			d = make([]float64, len(objs))
			for i, a := range objs {
				d[i] = g.DistToVertexVia(a, r)
			}
			objDistCache[v] = d
		}
		return d
	}
	cost := func(pivots []roadnet.VertexID) float64 {
		// Negative mean lower bound: smaller is better.
		sum := 0.0
		for _, pr := range pairs {
			lb := 0.0
			for _, pv := range pivots {
				d := objDist(pv)
				if v := math.Abs(d[pr[0]] - d[pr[1]]); v > lb {
					lb = v
				}
			}
			sum += lb
		}
		return -sum
	}
	randomVertex := func() roadnet.VertexID { return roadnet.VertexID(rng.Intn(nv)) }
	best := localSearch(rng, h, o, cost, func() int { return int(randomVertex()) })
	out := make([]roadnet.VertexID, len(best))
	for i, v := range best {
		out[i] = roadnet.VertexID(v)
	}
	return out
}

// SelectSocial chooses l social-network pivot users using Algorithm 1 with
// the Cost_SN model: maximize the mean hop lower bound over sampled user
// pairs (pairs proven unreachable count as maximally informative).
func SelectSocial(g *socialnet.Graph, l int, opt Options) []socialnet.UserID {
	o := opt.withDefaults()
	if l <= 0 {
		panic("pivot: need at least one social pivot")
	}
	n := g.NumUsers()
	if l > n {
		l = n
	}
	rng := rand.New(rand.NewSource(o.Seed))
	pairs := samplePairs(rng, n, o.SamplePairs)

	rows := map[socialnet.UserID][]int32{}
	row := func(u socialnet.UserID) []int32 {
		r, ok := rows[u]
		if !ok {
			r = g.BFSHops(u)
			rows[u] = r
		}
		return r
	}
	cost := func(pivots []socialnet.UserID) float64 {
		sum := 0.0
		for _, pr := range pairs {
			lb := 0.0
			for _, pv := range pivots {
				h := row(pv)
				a, b := h[pr[0]], h[pr[1]]
				switch {
				case a == socialnet.Unreachable && b == socialnet.Unreachable:
					// no information
				case a == socialnet.Unreachable || b == socialnet.Unreachable:
					lb = math.Max(lb, float64(n)) // proves disconnection
				default:
					lb = math.Max(lb, math.Abs(float64(a-b)))
				}
			}
			sum += lb
		}
		return -sum
	}
	castCost := func(p []socialnet.UserID) float64 { return cost(p) }
	best := localSearchSocial(rng, l, o, castCost, n)
	return best
}

// RandomRoad returns h uniformly random distinct road vertices (the
// ablation baseline for SelectRoad).
func RandomRoad(g *roadnet.Graph, h int, seed int64) []roadnet.VertexID {
	rng := rand.New(rand.NewSource(seed))
	nv := g.NumVertices()
	if h > nv {
		h = nv
	}
	out := make([]roadnet.VertexID, 0, h)
	for _, i := range rng.Perm(nv)[:h] {
		out = append(out, roadnet.VertexID(i))
	}
	return out
}

// RandomSocial returns l uniformly random distinct users.
func RandomSocial(g *socialnet.Graph, l int, seed int64) []socialnet.UserID {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumUsers()
	if l > n {
		l = n
	}
	out := make([]socialnet.UserID, 0, l)
	for _, i := range rng.Perm(n)[:l] {
		out = append(out, socialnet.UserID(i))
	}
	return out
}

// samplePairs draws pair indexes over [0, n).
func samplePairs(rng *rand.Rand, n, count int) [][2]int {
	if n < 2 {
		return nil
	}
	pairs := make([][2]int, 0, count)
	for i := 0; i < count; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			b = (b + 1) % n
		}
		pairs = append(pairs, [2]int{a, b})
	}
	return pairs
}

// localSearch is Algorithm 1 over integer-identified candidates.
func localSearch(rng *rand.Rand, k int, o Options, cost func([]roadnet.VertexID) float64, randomCand func() int) []int {
	globalCost := math.Inf(1)
	var globalBest []int
	for gi := 0; gi < o.GlobalIter; gi++ {
		cur := distinctInts(rng, k, randomCand)
		curPivots := toVertexIDs(cur)
		localCost := cost(curPivots)
		for si := 0; si < o.SwapIter; si++ {
			pos := rng.Intn(k)
			cand := randomCand()
			if containsInt(cur, cand) {
				continue
			}
			old := cur[pos]
			cur[pos] = cand
			if newCost := cost(toVertexIDs(cur)); newCost < localCost {
				localCost = newCost
			} else {
				cur[pos] = old
			}
		}
		if localCost < globalCost {
			globalCost = localCost
			globalBest = append([]int(nil), cur...)
		}
	}
	return globalBest
}

// localSearchSocial mirrors localSearch for social user ids.
func localSearchSocial(rng *rand.Rand, k int, o Options, cost func([]socialnet.UserID) float64, n int) []socialnet.UserID {
	globalCost := math.Inf(1)
	var globalBest []socialnet.UserID
	for gi := 0; gi < o.GlobalIter; gi++ {
		cur := toUserIDs(distinctInts(rng, k, func() int { return rng.Intn(n) }))
		localCost := cost(cur)
		for si := 0; si < o.SwapIter; si++ {
			pos := rng.Intn(k)
			cand := socialnet.UserID(rng.Intn(n))
			if containsUser(cur, cand) {
				continue
			}
			old := cur[pos]
			cur[pos] = cand
			if newCost := cost(cur); newCost < localCost {
				localCost = newCost
			} else {
				cur[pos] = old
			}
		}
		if localCost < globalCost {
			globalCost = localCost
			globalBest = append([]socialnet.UserID(nil), cur...)
		}
	}
	return globalBest
}

func distinctInts(rng *rand.Rand, k int, draw func() int) []int {
	seen := map[int]bool{}
	var out []int
	for len(out) < k {
		v := draw()
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func toVertexIDs(in []int) []roadnet.VertexID {
	out := make([]roadnet.VertexID, len(in))
	for i, v := range in {
		out[i] = roadnet.VertexID(v)
	}
	return out
}

func toUserIDs(in []int) []socialnet.UserID {
	out := make([]socialnet.UserID, len(in))
	for i, v := range in {
		out[i] = socialnet.UserID(v)
	}
	return out
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func containsUser(s []socialnet.UserID, v socialnet.UserID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
