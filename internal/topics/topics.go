// Package topics provides an exact bitset over the GP-SSN topic/keyword
// vocabulary [0, d). Index nodes use topic sets for keyword supersets and
// subsets (sup_K, sub_K of Section 4.1); unlike the hashed bit vectors of
// package bitvec, a Set has no collisions, which the lower-bound side of
// the matching-score pruning requires for soundness.
package topics

import "fmt"

// Set is an exact bitset over the topic vocabulary [0, d). Index
// nodes use Sets for keyword supersets/subsets (sup_K, sub_K); unlike
// the hashed bit vectors of package bitvec, a Set has no collisions,
// which the lower-bound side of the matching-score pruning requires for
// soundness.
type Set struct {
	d     int
	words []uint64
}

// NewSet returns an empty set over a vocabulary of d topics.
func NewSet(d int) Set {
	if d <= 0 {
		panic(fmt.Sprintf("topics: non-positive vocabulary size %d", d))
	}
	return Set{d: d, words: make([]uint64, (d+63)/64)}
}

// SetOf returns the set containing the given topics.
func SetOf(d int, topics ...int) Set {
	s := NewSet(d)
	for _, t := range topics {
		s.Add(t)
	}
	return s
}

// Add inserts topic t.
func (s Set) Add(t int) {
	if t < 0 || t >= s.d {
		panic(fmt.Sprintf("topics: topic %d outside vocabulary [0,%d)", t, s.d))
	}
	s.words[t>>6] |= 1 << (uint(t) & 63)
}

// Has reports whether topic t is in the set.
func (s Set) Has(t int) bool {
	if t < 0 || t >= s.d {
		panic(fmt.Sprintf("topics: topic %d outside vocabulary [0,%d)", t, s.d))
	}
	return s.words[t>>6]&(1<<(uint(t)&63)) != 0
}

// Union merges o into s in place.
func (s Set) Union(o Set) {
	if s.d != o.d {
		panic(fmt.Sprintf("topics: vocabulary mismatch %d != %d", s.d, o.d))
	}
	for i := range s.words {
		s.words[i] |= o.words[i]
	}
}

// Clone returns an independent copy.
func (s Set) Clone() Set {
	out := Set{d: s.d, words: make([]uint64, len(s.words))}
	copy(out.words, s.words)
	return out
}

// IsEmpty reports whether no topic is set.
func (s Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Vocabulary returns d.
func (s Set) Vocabulary() int { return s.d }

// SizeBytes returns the payload size, used for page-layout accounting.
func (s Set) SizeBytes() int { return len(s.words) * 8 }

// Clear removes every topic, keeping the allocation — scratch sets in
// per-worker arenas are reused across anchors this way.
func (s Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}
