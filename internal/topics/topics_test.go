package topics

import (
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	s := NewSet(70)
	for _, f := range []int{0, 63, 64, 69} {
		if s.Has(f) {
			t.Errorf("topic %d should start absent", f)
		}
		s.Add(f)
		if !s.Has(f) {
			t.Errorf("topic %d should be present", f)
		}
	}
	if s.IsEmpty() {
		t.Error("set is not empty")
	}
	if !NewSet(3).IsEmpty() {
		t.Error("fresh set should be empty")
	}
	if s.Vocabulary() != 70 || s.SizeBytes() != 16 {
		t.Errorf("Vocabulary=%d SizeBytes=%d", s.Vocabulary(), s.SizeBytes())
	}
}

func TestSetOfUnionClone(t *testing.T) {
	a := SetOf(10, 1, 2)
	b := SetOf(10, 2, 3)
	c := a.Clone()
	c.Union(b)
	for _, f := range []int{1, 2, 3} {
		if !c.Has(f) {
			t.Errorf("union missing %d", f)
		}
	}
	if a.Has(3) {
		t.Error("Union mutated through Clone")
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"bad vocab":      func() { NewSet(0) },
		"add oob":        func() { NewSet(3).Add(3) },
		"has oob":        func() { NewSet(3).Has(-1) },
		"union mismatch": func() { NewSet(3).Union(NewSet(4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: a union contains exactly the topics of both operands.
func TestUnionProperty(t *testing.T) {
	f := func(as, bs []uint8) bool {
		const d = 200
		a, b := NewSet(d), NewSet(d)
		for _, x := range as {
			a.Add(int(x) % d)
		}
		for _, x := range bs {
			b.Add(int(x) % d)
		}
		u := a.Clone()
		u.Union(b)
		for f := 0; f < d; f++ {
			if u.Has(f) != (a.Has(f) || b.Has(f)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
