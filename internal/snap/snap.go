// Package snap implements the framing layer of the GP-SSN snapshot format
// (docs/ROBUSTNESS.md): a magic+version header followed by a sequence of
// sections, each a 4-byte ASCII tag, a little-endian uint64 payload
// length, the payload, and a CRC64-ECMA checksum of the payload. Every
// kind of damage — bad magic, version skew, a truncated header, a torn
// payload, a checksum mismatch — is detected and reported as a
// *CorruptError naming the damaged section, so the caller can rebuild
// exactly that section from source data instead of failing the open.
//
// The Writer consults the failpoint registry at "snap.section.<tag>" so
// the robustness test matrix can deterministically produce torn and
// bit-flipped files through the real write path.
package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"math"

	"gpssn/internal/failpoint"
)

// ErrCountOverflow reports a declared element count that the platform (or
// the wire format's length prefix) cannot represent. Encoders fail with it
// instead of silently truncating a uint32 length prefix; decoders fail
// with it instead of letting `int(u32)` or an int64 offset wrap on 32-bit
// platforms. Match with errors.Is.
var ErrCountOverflow = errors.New("snap: element count overflows representable bounds")

// Magic identifies a GP-SSN snapshot file; the last byte is the format
// version.
var Magic = [8]byte{'G', 'P', 'S', 'S', 'N', 'A', 'P', 1}

// MaxSectionLen bounds a single section payload (1 GiB). A declared length
// beyond it is treated as corruption, which keeps a damaged or adversarial
// length field from driving a giant allocation.
const MaxSectionLen = 1 << 30

var crcTable = crc64.MakeTable(crc64.ECMA)

// Checksum returns the CRC64-ECMA checksum the format uses.
func Checksum(p []byte) uint64 { return crc64.Checksum(p, crcTable) }

// CorruptError reports detected snapshot damage. Section is the 4-byte tag
// of the damaged section, or "head" when the file header itself (magic or
// version) is unusable.
type CorruptError struct {
	Section string
	Reason  string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("snapshot section %q corrupt: %s", e.Section, e.Reason)
}

// Section is one decoded frame.
type Section struct {
	Tag     string
	Payload []byte
}

// Writer frames sections onto an io.Writer. After a short-write failpoint
// triggers, the writer is torn: the damaged section's payload is cut off
// mid-stream and every later Section call is a silent no-op, which is
// exactly what a crash between two writes leaves on disk.
type Writer struct {
	w    io.Writer
	err  error
	torn bool
}

// NewWriter writes the magic header and returns a section writer.
func NewWriter(w io.Writer) (*Writer, error) {
	sw := &Writer{w: w}
	if _, err := w.Write(Magic[:]); err != nil {
		return nil, err
	}
	return sw, nil
}

// Section writes one framed section. The failpoint site
// "snap.section.<tag>" can inject an I/O error (returned), a short write
// (the payload is cut to N bytes and the writer goes torn), or a bit flip
// (bit N of the payload is inverted before checksumming the original, so
// the CRC catches it on read).
func (sw *Writer) Section(tag string, payload []byte) error {
	if sw.err != nil {
		return sw.err
	}
	if sw.torn {
		return nil
	}
	if len(tag) != 4 {
		return fmt.Errorf("snap: tag %q must be 4 bytes", tag)
	}
	if len(payload) > MaxSectionLen {
		return fmt.Errorf("snap: section %q payload %d exceeds limit", tag, len(payload))
	}
	// The checksum and declared length always describe the payload the
	// caller intended: a short-write failpoint cuts what hits the disk but
	// not what the header promised, exactly like a crash mid-write.
	sum := Checksum(payload)
	declared := uint64(len(payload))
	if f, ok := failpoint.Eval("snap.section." + tag); ok {
		switch f.Mode {
		case failpoint.ModeError:
			sw.err = f.Err
			return sw.err
		case failpoint.ModeShortWrite:
			n := f.N
			if n > len(payload) {
				n = len(payload)
			}
			payload = payload[:n]
			sw.torn = true
		case failpoint.ModeBitFlip:
			if len(payload) > 0 {
				flipped := append([]byte(nil), payload...)
				off := f.N % (len(flipped) * 8)
				flipped[off/8] ^= 1 << (off % 8)
				payload = flipped
			}
		}
	}
	var head [12]byte
	copy(head[:4], tag)
	binary.LittleEndian.PutUint64(head[4:], declared)
	if _, err := sw.w.Write(head[:]); err != nil {
		sw.err = err
		return err
	}
	if _, err := sw.w.Write(payload); err != nil {
		sw.err = err
		return err
	}
	if sw.torn {
		return nil // nothing after the torn payload reaches the disk
	}
	var tail [8]byte
	binary.LittleEndian.PutUint64(tail[:], sum)
	if _, err := sw.w.Write(tail[:]); err != nil {
		sw.err = err
		return err
	}
	return nil
}

// Read decodes every section of a snapshot stream. It returns the sections
// that survived intact; when damage is detected the clean prefix is
// returned together with a *CorruptError naming the first damaged section
// (everything after a torn frame is unrecoverable in a stream format, so
// later sections are simply absent from the result).
func Read(r io.Reader) ([]Section, error) {
	var got [8]byte
	if _, err := io.ReadFull(r, got[:]); err != nil {
		return nil, &CorruptError{Section: "head", Reason: fmt.Sprintf("short magic: %v", err)}
	}
	if got != Magic {
		if string(got[:7]) == string(Magic[:7]) {
			return nil, &CorruptError{Section: "head", Reason: fmt.Sprintf("version %d, want %d", got[7], Magic[7])}
		}
		return nil, &CorruptError{Section: "head", Reason: fmt.Sprintf("bad magic %q", got[:])}
	}
	var out []Section
	for {
		var head [12]byte
		if _, err := io.ReadFull(r, head[:]); err == io.EOF {
			return out, nil // clean end at a section boundary
		} else if err != nil {
			return out, &CorruptError{Section: "head", Reason: fmt.Sprintf("torn section header: %v", err)}
		}
		tag := string(head[:4])
		if !plausibleTag(tag) {
			return out, &CorruptError{Section: tag, Reason: "implausible section tag"}
		}
		n := binary.LittleEndian.Uint64(head[4:])
		if n > MaxSectionLen {
			return out, &CorruptError{Section: tag, Reason: fmt.Sprintf("declared length %d exceeds limit", n)}
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return out, &CorruptError{Section: tag, Reason: fmt.Sprintf("torn payload: %v", err)}
		}
		var tail [8]byte
		if _, err := io.ReadFull(r, tail[:]); err != nil {
			return out, &CorruptError{Section: tag, Reason: fmt.Sprintf("torn checksum: %v", err)}
		}
		if sum := binary.LittleEndian.Uint64(tail[:]); sum != Checksum(payload) {
			return out, &CorruptError{Section: tag, Reason: "checksum mismatch"}
		}
		out = append(out, Section{Tag: tag, Payload: payload})
	}
}

// plausibleTag rejects frame headers that are clearly noise (a torn file
// whose remaining bytes happen to parse as a header). Tags are 4 printable
// ASCII bytes by construction.
func plausibleTag(tag string) bool {
	for i := 0; i < len(tag); i++ {
		if tag[i] < 0x20 || tag[i] > 0x7e {
			return false
		}
	}
	return true
}

// Enc is an append-only little-endian encoder for section payloads. Slice
// writes whose length cannot fit their length prefix record a sticky
// ErrCountOverflow instead of truncating; callers check Err once after
// encoding, before the payload is framed.
type Enc struct {
	B   []byte
	err error
}

// Err returns the sticky encode error, if any.
func (e *Enc) Err() error { return e.err }

// U32 appends a uint32.
func (e *Enc) U32(v uint32) { e.B = binary.LittleEndian.AppendUint32(e.B, v) }

// U64 appends a uint64.
func (e *Enc) U64(v uint64) { e.B = binary.LittleEndian.AppendUint64(e.B, v) }

// F64 appends a float64 bit pattern.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// I32s appends a length-prefixed []int32.
func (e *Enc) I32s(v []int32) {
	if uint64(len(v)) > math.MaxUint32 && e.err == nil {
		e.err = fmt.Errorf("snap: int32 slice length %d: %w", len(v), ErrCountOverflow)
		return
	}
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.U32(uint32(x))
	}
}

// I64s appends a length-prefixed []int64 (uint64 length prefix, so the
// count itself can never truncate).
func (e *Enc) I64s(v []int64) {
	e.U64(uint64(len(v)))
	for _, x := range v {
		e.U64(uint64(x))
	}
}

// F64s appends a length-prefixed []float64.
func (e *Enc) F64s(v []float64) {
	if uint64(len(v)) > math.MaxUint32 && e.err == nil {
		e.err = fmt.Errorf("snap: float64 slice length %d: %w", len(v), ErrCountOverflow)
		return
	}
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.F64(x)
	}
}

// Dec decodes a section payload produced by Enc. Every read is
// bounds-checked; the first failure sticks and poisons all later reads, so
// decoders read straight-line and check Err once. Length-prefixed slices
// verify the declared length against the remaining bytes before
// allocating, so a corrupt length cannot drive a giant allocation.
type Dec struct {
	B   []byte
	off int
	err error
}

// Err returns the sticky decode error, if any.
func (d *Dec) Err() error { return d.err }

// Done reports whether every byte was consumed without error.
func (d *Dec) Done() bool { return d.err == nil && d.off == len(d.B) }

func (d *Dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *Dec) failErr(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.B)-d.off < n {
		d.fail("snap: truncated payload (want %d bytes at offset %d of %d)", n, d.off, len(d.B))
		return nil
	}
	b := d.B[d.off : d.off+n]
	d.off += n
	return b
}

// U32 reads a uint32 (0 after an error).
func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a uint64 (0 after an error).
func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// F64 reads a float64 (0 after an error).
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// I32s reads a length-prefixed []int32 written by Enc.I32s.
func (d *Dec) I32s() []int32 {
	n32 := d.U32()
	if d.err != nil {
		return nil
	}
	if uint64(n32) > uint64(math.MaxInt)/4 {
		d.failErr(fmt.Errorf("snap: int32 slice length %d: %w", n32, ErrCountOverflow))
		return nil
	}
	n := int(n32)
	if len(d.B)-d.off < n*4 {
		d.fail("snap: int32 slice length %d exceeds remaining payload", n)
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(d.U32())
	}
	return out
}

// I64s reads a length-prefixed []int64 written by Enc.I64s. The uint64
// count is bounds-checked against both the platform int and the remaining
// payload before allocating; counts past either fail with a sticky
// ErrCountOverflow.
func (d *Dec) I64s() []int64 {
	n64 := d.U64()
	if d.err != nil {
		return nil
	}
	if n64 > uint64(math.MaxInt)/8 {
		d.failErr(fmt.Errorf("snap: int64 slice length %d: %w", n64, ErrCountOverflow))
		return nil
	}
	n := int(n64)
	if len(d.B)-d.off < n*8 {
		d.fail("snap: int64 slice length %d exceeds remaining payload", n)
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(d.U64())
	}
	return out
}

// F64s reads a length-prefixed []float64 written by Enc.F64s.
func (d *Dec) F64s() []float64 {
	n32 := d.U32()
	if d.err != nil {
		return nil
	}
	if uint64(n32) > uint64(math.MaxInt)/8 {
		d.failErr(fmt.Errorf("snap: float64 slice length %d: %w", n32, ErrCountOverflow))
		return nil
	}
	n := int(n32)
	if len(d.B)-d.off < n*8 {
		d.fail("snap: float64 slice length %d exceeds remaining payload", n)
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.F64()
	}
	return out
}
