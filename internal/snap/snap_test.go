package snap

import (
	"bytes"
	"errors"
	"testing"

	"gpssn/internal/failpoint"
)

func writeTwo(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Section("AAAA", []byte("first payload")); err != nil {
		t.Fatal(err)
	}
	if err := w.Section("BBBB", bytes.Repeat([]byte{7}, 100)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	secs, err := Read(bytes.NewReader(writeTwo(t)))
	if err != nil {
		t.Fatal(err)
	}
	if len(secs) != 2 || secs[0].Tag != "AAAA" || string(secs[0].Payload) != "first payload" ||
		secs[1].Tag != "BBBB" || len(secs[1].Payload) != 100 {
		t.Fatalf("sections = %+v", secs)
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a snapshot file"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	skew := writeTwo(t)
	skew[7] = 99
	var ce *CorruptError
	if _, err := Read(bytes.NewReader(skew)); !errors.As(err, &ce) || ce.Section != "head" {
		t.Fatalf("version skew error = %v", err)
	}
}

// TestEveryTruncationDetected cuts the file at every possible length; Read
// must either return the intact prefix sections or a CorruptError — and
// never an undetected half-section.
func TestEveryTruncationDetected(t *testing.T) {
	full := writeTwo(t)
	for cut := 0; cut < len(full); cut++ {
		secs, err := Read(bytes.NewReader(full[:cut]))
		if err == nil && cut != len(full) {
			// Only legal when the cut lands exactly on a section boundary.
			n := len(Magic)
			for _, s := range secs {
				n += 12 + len(s.Payload) + 8
			}
			if n != cut {
				t.Fatalf("cut=%d: no error but %d sections covering %d bytes", cut, len(secs), n)
			}
			continue
		}
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("cut=%d: error %v is not a CorruptError", cut, err)
			}
		}
	}
}

// TestEveryBitFlipDetected flips each byte of the file in turn; Read must
// report corruption (or, for bytes inside a length field that still parse,
// at worst a CorruptError) — never silently return damaged payloads.
func TestEveryBitFlipDetected(t *testing.T) {
	full := writeTwo(t)
	for i := len(Magic); i < len(full); i++ {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x40
		secs, err := Read(bytes.NewReader(mut))
		if err != nil {
			continue // detected
		}
		for _, s := range secs {
			want := "first payload"
			if s.Tag == "AAAA" && string(s.Payload) != want {
				t.Fatalf("byte %d: damaged payload accepted", i)
			}
			if s.Tag == "BBBB" {
				for _, b := range s.Payload {
					if b != 7 {
						t.Fatalf("byte %d: damaged payload accepted", i)
					}
				}
			}
		}
		if len(secs) == 2 {
			t.Fatalf("byte %d: flip undetected with all sections intact", i)
		}
	}
}

func TestShortWriteFailpointTearsFile(t *testing.T) {
	defer failpoint.Reset()
	failpoint.Arm("snap.section.BBBB", failpoint.Failure{Mode: failpoint.ModeShortWrite, N: 10})
	data := writeTwo(t)
	secs, err := Read(bytes.NewReader(data))
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Section != "BBBB" {
		t.Fatalf("torn section not detected: secs=%d err=%v", len(secs), err)
	}
	if len(secs) != 1 || secs[0].Tag != "AAAA" {
		t.Fatalf("intact prefix lost: %+v", secs)
	}
}

func TestBitFlipFailpointBreaksChecksum(t *testing.T) {
	defer failpoint.Reset()
	failpoint.Arm("snap.section.AAAA", failpoint.Failure{Mode: failpoint.ModeBitFlip, N: 17})
	secs, err := Read(bytes.NewReader(writeTwo(t)))
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Section != "AAAA" {
		t.Fatalf("flipped section not detected: secs=%d err=%v", len(secs), err)
	}
}

func TestErrorFailpointFailsWrite(t *testing.T) {
	defer failpoint.Reset()
	boom := errors.New("disk on fire")
	failpoint.Arm("snap.section.AAAA", failpoint.Failure{Mode: failpoint.ModeError, Err: boom})
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Section("AAAA", []byte("x")); !errors.Is(err, boom) {
		t.Fatalf("Section err = %v", err)
	}
	// The writer is poisoned: later sections fail too.
	if err := w.Section("BBBB", []byte("y")); !errors.Is(err, boom) {
		t.Fatalf("poisoned Section err = %v", err)
	}
}

func TestEncDecRoundTrip(t *testing.T) {
	var e Enc
	e.U32(42)
	e.F64(3.5)
	e.I32s([]int32{-1, 0, 7})
	e.F64s([]float64{1, 2})
	d := Dec{B: e.B}
	if d.U32() != 42 || d.F64() != 3.5 {
		t.Fatal("scalar mismatch")
	}
	is := d.I32s()
	fs := d.F64s()
	if len(is) != 3 || is[0] != -1 || is[2] != 7 || len(fs) != 2 || fs[1] != 2 {
		t.Fatalf("slices = %v %v", is, fs)
	}
	if !d.Done() {
		t.Fatalf("not done: err=%v", d.Err())
	}
	// A lying length prefix must fail before allocating.
	bad := Dec{B: []byte{0xff, 0xff, 0xff, 0x7f}}
	if bad.I32s() != nil || bad.Err() == nil {
		t.Fatal("oversized slice length accepted")
	}
}
