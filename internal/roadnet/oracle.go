package roadnet

// DistanceOracle is a pluggable exact shortest-path backend for a Graph.
// When one is attached (SetDistanceOracle), the attachment-distance queries
// (DistAttach, DistAttachMany, DistAttachWithin) and the full one-to-all
// scans (Dijkstra, DijkstraMulti) delegate to it instead of running plain
// Dijkstra searches. An oracle answers for the graph snapshot it was built
// from; any structural mutation (AddVertex, AddEdge) detaches it.
//
// The contraction-hierarchy implementation lives in internal/roadnet/ch;
// it cannot be referenced from here (it imports this package), which is
// why the seam is an interface.
type DistanceOracle interface {
	// SeedDistances returns, for each target vertex, the exact shortest-path
	// distance from the nearest source seed. Distances strictly greater than
	// bound are reported as +Inf (bound may be +Inf for an unbounded query);
	// distances exactly equal to the bound stay exact, matching the
	// settle-ties-at-the-bound contract of the bounded Dijkstra it replaces.
	// Unreachable targets get +Inf. Implementations must be safe for
	// concurrent use: refinement workers issue queries in parallel.
	SeedDistances(sources []Seed, targets []VertexID, bound float64) []float64

	// OneToAll returns exact shortest-path distances from the nearest seed
	// to every vertex (the DijkstraMulti shape). The returned slice is owned
	// by the caller. Must be safe for concurrent use.
	OneToAll(sources []Seed) []float64
}

// CheckedOracle is the optional extension a DistanceOracle implements to
// participate in cooperative cancellation and work budgeting. The Ck
// variants mirror the base methods but report consumed work (settled
// vertices / merged label entries) to the checkpoint and abort once it
// trips. Results of an aborted call are unspecified — callers must test
// ck.Stopped() and discard them wholesale (the Graph wrappers do this and
// substitute +Inf), so an oracle may return partially-filled slices.
// ck is never nil here: the Graph only takes this path with a live
// checkpoint and otherwise calls the unchecked methods.
type CheckedOracle interface {
	DistanceOracle
	SeedDistancesCk(sources []Seed, targets []VertexID, bound float64, ck *Checkpoint) []float64
	OneToAllCk(sources []Seed, ck *Checkpoint) []float64
}

// BatchOracle is the optional extension a DistanceOracle implements to
// fold several one-to-all scans into one sweep. The CH oracle implements
// it with a shared PHAST pass: each seed set still pays its own upward
// search, but the linear downward sweep over the vertex array — the
// dominant cost at scale — runs once for the whole batch, relaxing every
// result array per vertex visit. Each returned array is bit-identical to
// the corresponding solo OneToAllCk call (per array, relaxations happen in
// exactly the solo order), so callers may mix folded and solo scans
// freely. The abort contract matches OneToAllCk: once ck trips, every
// array is unspecified and must be discarded wholesale.
type BatchOracle interface {
	OneToAllBatchCk(sources [][]Seed, ck *Checkpoint) [][]float64
}

// SetDistanceOracle attaches (or, with nil, detaches) a distance oracle.
// The oracle must answer for this graph's current topology; it is detached
// automatically if the graph mutates afterwards. Attach before building
// indexes so pivot-table construction reuses it too. Not safe to call
// concurrently with queries — attach once, then share the graph.
func (g *Graph) SetDistanceOracle(o DistanceOracle) { g.oracle = o }

// Oracle returns the attached distance oracle, or nil.
func (g *Graph) Oracle() DistanceOracle { return g.oracle }
