//go:build race

package roadnet

// raceEnabled reports whether the race detector instruments this build;
// its allocations make AllocsPerRun counts meaningless.
const raceEnabled = true
