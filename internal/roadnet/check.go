package roadnet

import "sync/atomic"

// Checkpoint is the cooperative cancellation and work-budget hook threaded
// through the long-running searches (bounded Dijkstra, the CH sweeps, the
// HL label-merge kernel). Searches report consumed work units — settled
// vertices for graph searches, walked label entries for the label kernel —
// in batches of checkStride, and abort as soon as the checkpoint trips:
// either because the cancellation signal fired or because the work budget
// ran out. A tripped checkpoint is sticky, so once a query's budget is
// exhausted every later search on the same checkpoint returns immediately.
//
// All methods are safe for concurrent use (refinement workers share one
// checkpoint per query) and nil-safe: a nil *Checkpoint never trips and
// costs one predictable branch per call, which is what keeps the
// no-context/no-budget fast path bit-identical to the unchecked engine.
type Checkpoint struct {
	done  <-chan struct{} // cancellation signal; nil = not cancellable
	cause func() error    // cancellation reason, read only after done fires

	limited   bool
	remaining atomic.Int64 // work units left before the budget trips
	spent     atomic.Int64 // total work units consumed (observability)
	ticks     atomic.Uint32
	state     atomic.Uint32 // ckRunning / ckCancelled / ckBudget, first trip wins
}

const (
	ckRunning uint32 = iota
	ckCancelled
	ckBudget
)

// checkStride is how many work units searches accumulate locally between
// Spend calls: large enough that the atomics vanish in the search cost,
// small enough that a cancel is observed within microseconds.
const checkStride = 256

// NewCheckpoint builds a checkpoint. done is the cancellation signal
// (typically ctx.Done(); nil disables cancellation), cause the error to
// report once it fires (typically wrapping ctx.Err()), and maxWork the
// work-unit budget (0 = unlimited).
func NewCheckpoint(done <-chan struct{}, cause func() error, maxWork int64) *Checkpoint {
	c := &Checkpoint{done: done, cause: cause, limited: maxWork > 0}
	c.remaining.Store(maxWork)
	return c
}

// trip moves the checkpoint into a terminal state; the first cause wins.
func (c *Checkpoint) trip(state uint32) {
	c.state.CompareAndSwap(ckRunning, state)
}

// Spend consumes n work units and reports whether the caller must abort its
// search. It also polls the cancellation signal, so a search that reports
// work regularly needs no separate Cancelled calls.
func (c *Checkpoint) Spend(n int) bool {
	if c == nil {
		return false
	}
	if c.state.Load() != ckRunning {
		return true
	}
	c.spent.Add(int64(n))
	if c.limited && c.remaining.Add(-int64(n)) < 0 {
		c.trip(ckBudget)
		return true
	}
	if c.done != nil {
		select {
		case <-c.done:
			c.trip(ckCancelled)
			return true
		default:
		}
	}
	return false
}

// Cancelled reports whether the cancellation signal has fired. It consumes
// no budget and amortizes the channel poll over ticks, so it is cheap
// enough for per-candidate pruning loops. A budget trip does not make
// Cancelled true — budget exhaustion degrades, it does not error.
func (c *Checkpoint) Cancelled() bool {
	if c == nil {
		return false
	}
	switch c.state.Load() {
	case ckCancelled:
		return true
	case ckBudget:
		return false
	}
	if c.done == nil {
		return false
	}
	if c.ticks.Add(1)%64 != 0 {
		return false
	}
	select {
	case <-c.done:
		c.trip(ckCancelled)
		return true
	default:
		return false
	}
}

// Stopped reports whether the checkpoint has tripped for any reason.
// Searches consult it on entry so a sticky trip short-circuits all later
// work on the same query.
func (c *Checkpoint) Stopped() bool {
	return c != nil && c.state.Load() != ckRunning
}

// Budgeted reports whether the checkpoint enforces a work budget. Folded
// batch searches consult it: a budgeted query runs its sweeps solo so the
// budget trips at exactly the same point in the work sequence it would
// have without folding, keeping truncated answers independent of the
// folding decision.
func (c *Checkpoint) Budgeted() bool {
	return c != nil && c.limited
}

// Exhausted reports whether the trip was caused by the work budget.
func (c *Checkpoint) Exhausted() bool {
	return c != nil && c.state.Load() == ckBudget
}

// CancelErr returns the cancellation cause once the checkpoint tripped on
// cancellation, and nil otherwise (still running, or budget-tripped).
func (c *Checkpoint) CancelErr() error {
	if c == nil || c.state.Load() != ckCancelled {
		return nil
	}
	if c.cause == nil {
		return nil
	}
	return c.cause()
}

// Spent returns the total work units consumed so far.
func (c *Checkpoint) Spent() int64 {
	if c == nil {
		return 0
	}
	return c.spent.Load()
}
