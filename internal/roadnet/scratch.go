package roadnet

import (
	"math"
	"sync"
)

// searchScratch is the reusable per-search state of a (bounded) Dijkstra:
// the dist array, the heap backing slices, and the list of vertices whose
// dist entry was written. Pooling it removes the O(|V|) allocation that
// every DistAttach / DistAttachWithin call used to pay — the refinement
// phase issues one such call per candidate user per anchor, so the
// allocator pressure was the second-largest per-query cost after the
// searches themselves.
//
// Invariant: while a scratch sits in the pool, every entry of its dist
// backing array is +Inf. acquire relies on this to skip the O(|V|) reset;
// release restores it by undoing only the touched entries.
type searchScratch struct {
	dist    []float64
	touched []VertexID
	heap    distHeap
}

var searchPool = sync.Pool{New: func() any { return new(searchScratch) }}

// acquireScratch returns a scratch whose dist slice has length n with every
// entry +Inf, and an empty heap. Call release when done.
func acquireScratch(n int) *searchScratch {
	sc := searchPool.Get().(*searchScratch)
	if cap(sc.dist) < n {
		sc.dist = make([]float64, n)
		for i := range sc.dist {
			sc.dist[i] = math.Inf(1)
		}
	}
	sc.dist = sc.dist[:n]
	return sc
}

// set records distance d for v, maintaining the touched list.
func (sc *searchScratch) set(v VertexID, d float64) {
	if math.IsInf(sc.dist[v], 1) {
		sc.touched = append(sc.touched, v)
	}
	sc.dist[v] = d
}

// release resets the scratch to its pooled state (all-+Inf dist, empty heap)
// and returns it to the pool. The scratch must not be used afterwards.
func (sc *searchScratch) release() {
	inf := math.Inf(1)
	for _, v := range sc.touched {
		sc.dist[v] = inf
	}
	sc.touched = sc.touched[:0]
	sc.heap.v = sc.heap.v[:0]
	sc.heap.d = sc.heap.d[:0]
	searchPool.Put(sc)
}

// heapPool recycles heap backing slices for the full (one-to-all) searches,
// whose result array is returned to the caller and therefore cannot be
// pooled itself.
var heapPool = sync.Pool{New: func() any { return new(distHeap) }}

func acquireHeap() *distHeap { return heapPool.Get().(*distHeap) }

func releaseHeap(h *distHeap) {
	h.v = h.v[:0]
	h.d = h.d[:0]
	heapPool.Put(h)
}
