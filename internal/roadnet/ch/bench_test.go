package ch

import (
	"math/rand"
	"testing"

	"gpssn/internal/geo"
	"gpssn/internal/roadnet"
)

// roadLike builds a perturbed-grid road network of about n vertices with a
// sprinkling of extra chords, mimicking the planar low-degree structure of
// the generated road datasets.
func roadLike(n int, seed int64) *roadnet.Graph {
	side := 1
	for side*side < n {
		side++
	}
	rng := rand.New(rand.NewSource(seed))
	g := roadnet.NewGraph(side*side, 3*side*side)
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			g.AddVertex(geo.Pt(float64(x)+0.3*rng.Float64(), float64(y)+0.3*rng.Float64()))
		}
	}
	id := func(x, y int) roadnet.VertexID { return roadnet.VertexID(y*side + x) }
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			if x+1 < side && rng.Float64() < 0.95 {
				g.AddEdge(id(x, y), id(x+1, y))
			}
			if y+1 < side && rng.Float64() < 0.95 {
				g.AddEdge(id(x, y), id(x, y+1))
			}
			if x+1 < side && y+1 < side && rng.Float64() < 0.05 {
				g.AddEdge(id(x, y), id(x+1, y+1))
			}
		}
	}
	return g
}

// BenchmarkDistanceOracle compares point-to-point attachment distances on
// the largest generated road network size (|V(G_r)| = 30000, the paper's
// synthetic default): CH bidirectional queries versus the full one-to-all
// Dijkstra the refinement hot path ran before the oracle existed. The
// acceptance target is CH >= 5x faster; measured runs land orders of
// magnitude beyond that (see EXPERIMENTS.md).
func BenchmarkDistanceOracle(b *testing.B) {
	g := roadLike(30000, 7)
	oracle := Build(g)
	rng := rand.New(rand.NewSource(99))
	const pairs = 64
	as := make([]roadnet.Attach, pairs)
	bs := make([]roadnet.Attach, pairs)
	for i := range as {
		as[i] = g.AttachAt(roadnet.EdgeID(rng.Intn(g.NumEdges())), rng.Float64())
		bs[i] = g.AttachAt(roadnet.EdgeID(rng.Intn(g.NumEdges())), rng.Float64())
	}

	b.Run("ch-p2p", func(b *testing.B) {
		g.SetDistanceOracle(oracle)
		defer g.SetDistanceOracle(nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.DistAttach(as[i%pairs], bs[i%pairs])
		}
	})

	b.Run("dijkstra-full", func(b *testing.B) {
		g.SetDistanceOracle(nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.DistAttachMany(as[i%pairs], bs[i%pairs:i%pairs+1])
		}
	})

	b.Run("dijkstra-p2p", func(b *testing.B) {
		g.SetDistanceOracle(nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.DistAttach(as[i%pairs], bs[i%pairs])
		}
	})
}

// BenchmarkBuild measures CH preprocessing on the paper-scale road network.
func BenchmarkBuild(b *testing.B) {
	g := roadLike(30000, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(g)
	}
}
