package ch

import (
	"math"

	"gpssn/internal/roadnet"
)

// scratch holds all per-query state: epoch-stamped label arrays for the
// forward and backward upward searches, the shared heap, the per-vertex
// bucket lists of the many-to-many kernel, and the target-slot map.
// Epoch stamping makes reuse O(touched) instead of O(n): a label is valid
// only when its stamp equals the current epoch, so "resetting" an array is
// a single counter increment.
type scratch struct {
	dist  []float64 // forward search labels
	ver   []uint32
	epoch uint32

	bDist  []float64 // backward (per-target) search labels
	bVer   []uint32
	bEpoch uint32

	heap heap64

	bktHead  []int32 // per-vertex head index into entries, or -1
	bktVer   []uint32
	bktEpoch uint32
	entries  []bktEntry

	slotOf    []int32 // target vertex -> slot in slots
	slotVer   []uint32
	slotEpoch uint32
	slots     []int32
	best      []float64 // per-slot minimum meeting distance
}

// bktEntry is one (target-slot, distance) record attached to a vertex
// settled by a backward upward search; next chains entries on the same
// vertex.
type bktEntry struct {
	next int32
	slot int32
	d    float64
}

func (o *Oracle) getScratch() *scratch {
	sc, _ := o.pool.Get().(*scratch)
	if sc == nil || len(sc.dist) < o.n {
		sc = &scratch{
			dist:    make([]float64, o.n),
			ver:     make([]uint32, o.n),
			bDist:   make([]float64, o.n),
			bVer:    make([]uint32, o.n),
			bktHead: make([]int32, o.n),
			bktVer:  make([]uint32, o.n),
			slotOf:  make([]int32, o.n),
			slotVer: make([]uint32, o.n),
		}
	}
	return sc
}

func (o *Oracle) putScratch(sc *scratch) {
	sc.heap.reset()
	sc.entries = sc.entries[:0]
	sc.slots = sc.slots[:0]
	o.pool.Put(sc)
}

// bump advances an epoch counter, clearing its stamp array on the (rare)
// uint32 wrap so stale stamps can never collide with a fresh epoch.
func bump(epoch *uint32, ver []uint32) uint32 {
	*epoch++
	if *epoch == 0 {
		for i := range ver {
			ver[i] = 0
		}
		*epoch = 1
	}
	return *epoch
}

// upwardSearch runs a stall-on-demand Dijkstra over the up-edges from the
// given seeds, invoking onSettle for every settled, non-stalled vertex.
// Labels beyond bound are never pushed: any up-path prefix of a shortest
// path within the bound stays within the bound (weights are non-negative),
// so pruning is exact. Stalling skips a vertex whose popped label is
// provably not a shortest-path distance (a higher-ranked neighbour offers a
// shorter way down to it); the apex of an optimal up-down path always
// carries its exact distance and therefore is never stalled, which keeps
// bucket recording and scanning at settled vertices sound.
// ck may be nil; a checked search charges the checkpoint per settled batch
// and aborts once it trips — callers must then discard the whole result
// (the roadnet.Graph wrappers substitute +Inf).
func (o *Oracle) upwardSearch(sc *scratch, dist []float64, ver []uint32, epoch *uint32, seeds []roadnet.Seed, bound float64, ck *roadnet.Checkpoint, onSettle func(v int32, d float64)) {
	ep := bump(epoch, ver)
	h := &sc.heap
	h.reset()
	for _, s := range seeds {
		v := int32(s.Vertex)
		if s.Dist <= bound && (ver[v] != ep || s.Dist < dist[v]) {
			ver[v] = ep
			dist[v] = s.Dist
			h.push(v, s.Dist)
		}
	}
	sinceCheck := 0
	for h.len() > 0 {
		v, d := h.pop()
		if d > dist[v] {
			continue // stale entry
		}
		if ck != nil {
			if sinceCheck++; sinceCheck >= ckStride {
				if ck.Spend(sinceCheck) {
					return
				}
				sinceCheck = 0
			}
		}
		stalled := false
		for i := o.up.off[v]; i < o.up.off[v+1]; i++ {
			w := o.up.to[i]
			if ver[w] == ep && dist[w]+o.up.w[i] < d {
				stalled = true
				break
			}
		}
		if stalled {
			continue
		}
		onSettle(v, d)
		for i := o.up.off[v]; i < o.up.off[v+1]; i++ {
			w := o.up.to[i]
			nd := d + o.up.w[i]
			if nd <= bound && (ver[w] != ep || nd < dist[w]) {
				ver[w] = ep
				dist[w] = nd
				h.push(w, nd)
			}
		}
	}
	ck.Spend(sinceCheck)
}

// ckStride is the settled-vertex batch size between checkpoint charges in
// the upward searches and the PHAST sweep.
const ckStride = 256

// SeedDistances implements roadnet.DistanceOracle with the bucket-based
// many-to-many kernel (Knopp et al., "Computing Many-to-Many Shortest Paths
// Using Highway Hierarchies"): one backward upward search per distinct
// target vertex records (slot, distance) buckets at the vertices it
// settles; a single forward upward search from the seeds then scans the
// buckets at its own settled vertices, and the meeting minimum
// d_fwd(m) + d_bwd(m) over all m is the exact distance.
func (o *Oracle) SeedDistances(sources []roadnet.Seed, targets []roadnet.VertexID, bound float64) []float64 {
	return o.seedDistances(sources, targets, bound, nil)
}

// SeedDistancesCk implements roadnet.CheckedOracle: the backward and
// forward upward searches charge settled vertices to ck and abort once it
// trips, at which point the result is unspecified and the caller must
// discard it (ck.Stopped()).
func (o *Oracle) SeedDistancesCk(sources []roadnet.Seed, targets []roadnet.VertexID, bound float64, ck *roadnet.Checkpoint) []float64 {
	return o.seedDistances(sources, targets, bound, ck)
}

func (o *Oracle) seedDistances(sources []roadnet.Seed, targets []roadnet.VertexID, bound float64, ck *roadnet.Checkpoint) []float64 {
	inf := math.Inf(1)
	res := make([]float64, len(targets))
	for i := range res {
		res[i] = inf
	}
	if o.n == 0 || len(targets) == 0 || len(sources) == 0 {
		return res
	}
	sc := o.getScratch()
	defer o.putScratch(sc)

	// Deduplicate target vertices into slots: attachment endpoints repeat
	// heavily (every candidate on the same edge shares both endpoints).
	sep := bump(&sc.slotEpoch, sc.slotVer)
	sc.slots = sc.slots[:0]
	for _, t := range targets {
		v := int32(t)
		if sc.slotVer[v] != sep {
			sc.slotVer[v] = sep
			sc.slotOf[v] = int32(len(sc.slots))
			sc.slots = append(sc.slots, v)
		}
	}
	if cap(sc.best) < len(sc.slots) {
		sc.best = make([]float64, len(sc.slots))
	}
	sc.best = sc.best[:len(sc.slots)]
	for i := range sc.best {
		sc.best[i] = inf
	}

	// Backward phase: bucket entries from each distinct target vertex.
	bep := bump(&sc.bktEpoch, sc.bktVer)
	sc.entries = sc.entries[:0]
	seed := make([]roadnet.Seed, 1)
	for si, t := range sc.slots {
		if ck.Stopped() {
			return res
		}
		seed[0] = roadnet.Seed{Vertex: roadnet.VertexID(t)}
		slot := int32(si)
		o.upwardSearch(sc, sc.bDist, sc.bVer, &sc.bEpoch, seed, bound, ck, func(v int32, d float64) {
			head := int32(-1)
			if sc.bktVer[v] == bep {
				head = sc.bktHead[v]
			}
			sc.entries = append(sc.entries, bktEntry{next: head, slot: slot, d: d})
			sc.bktVer[v] = bep
			sc.bktHead[v] = int32(len(sc.entries) - 1)
		})
	}

	// Forward phase: scan buckets at every settled vertex.
	o.upwardSearch(sc, sc.dist, sc.ver, &sc.epoch, sources, bound, ck, func(v int32, d float64) {
		if sc.bktVer[v] != bep {
			return
		}
		for ei := sc.bktHead[v]; ei >= 0; ei = sc.entries[ei].next {
			e := sc.entries[ei]
			if cand := d + e.d; cand < sc.best[e.slot] {
				sc.best[e.slot] = cand
			}
		}
	})

	for i, t := range targets {
		if d := sc.best[sc.slotOf[int32(t)]]; d <= bound {
			res[i] = d
		}
	}
	return res
}

// OneToAll implements roadnet.DistanceOracle with a PHAST-style sweep
// (Delling et al., "PHAST: Hardware-Accelerated Shortest Path Trees"):
// an upward Dijkstra from the seeds writes labels straight into the result
// array, then one linear pass over the vertices in descending rank relaxes
// each vertex's down-edges. Stalled labels may be non-optimal, but the
// sweep repairs every vertex via its shortest path's apex, whose label is
// always exact.
func (o *Oracle) OneToAll(sources []roadnet.Seed) []float64 {
	return o.oneToAll(sources, nil)
}

// OneToAllCk implements roadnet.CheckedOracle: both the upward search and
// the downward sweep charge processed vertices to ck and abort once it
// trips, at which point the result is unspecified and the caller must
// discard it (ck.Stopped()).
func (o *Oracle) OneToAllCk(sources []roadnet.Seed, ck *roadnet.Checkpoint) []float64 {
	return o.oneToAll(sources, ck)
}

func (o *Oracle) oneToAll(sources []roadnet.Seed, ck *roadnet.Checkpoint) []float64 {
	inf := math.Inf(1)
	res := make([]float64, o.n)
	for i := range res {
		res[i] = inf
	}
	if o.n == 0 || len(sources) == 0 {
		return res
	}
	sc := o.getScratch()
	h := &sc.heap
	h.reset()
	for _, s := range sources {
		v := int32(s.Vertex)
		if s.Dist < res[v] {
			res[v] = s.Dist
			h.push(v, s.Dist)
		}
	}
	sinceCheck := 0
	for h.len() > 0 {
		v, d := h.pop()
		if d > res[v] {
			continue
		}
		if ck != nil {
			if sinceCheck++; sinceCheck >= ckStride {
				if ck.Spend(sinceCheck) {
					o.putScratch(sc)
					return res
				}
				sinceCheck = 0
			}
		}
		stalled := false
		for i := o.up.off[v]; i < o.up.off[v+1]; i++ {
			if res[o.up.to[i]]+o.up.w[i] < d {
				stalled = true
				break
			}
		}
		if stalled {
			continue
		}
		for i := o.up.off[v]; i < o.up.off[v+1]; i++ {
			w := o.up.to[i]
			if nd := d + o.up.w[i]; nd < res[w] {
				res[w] = nd
				h.push(w, nd)
			}
		}
	}
	ck.Spend(sinceCheck)
	o.putScratch(sc)
	if ck.Stopped() {
		return res
	}

	// Downward sweep in descending rank: when v is processed every
	// down-edge into it (necessarily from a higher-ranked vertex) has
	// already been relaxed, so res[v] is final.
	sinceCheck = 0
	for _, v := range o.byRankDesc {
		if ck != nil {
			if sinceCheck++; sinceCheck >= ckStride {
				if ck.Spend(sinceCheck) {
					return res
				}
				sinceCheck = 0
			}
		}
		d := res[v]
		if math.IsInf(d, 1) {
			continue
		}
		for i := o.down.off[v]; i < o.down.off[v+1]; i++ {
			w := o.down.to[i]
			if nd := d + o.down.w[i]; nd < res[w] {
				res[w] = nd
			}
		}
	}
	ck.Spend(sinceCheck)
	return res
}

// OneToAllBatchCk implements roadnet.BatchOracle: k one-to-all scans
// folded into one PHAST pass. Each seed set runs its own upward search
// (identical, step for step, to the solo oneToAll upward phase), then a
// single downward sweep walks the rank-descending vertex order once and
// relaxes all k result arrays per vertex visit — the down-adjacency of v
// is read once for the whole batch instead of k times. Per array the
// relaxation order equals the solo sweep's exactly, so every returned
// array is bit-identical to the corresponding OneToAllCk call; only the
// memory traffic changes. Work is charged to ck at solo rates (k per
// swept vertex), keeping budget accounting independent of folding. Once
// ck trips, all arrays are unspecified and the caller must discard them
// (ck.Stopped()), exactly like the solo contract.
func (o *Oracle) OneToAllBatchCk(sources [][]roadnet.Seed, ck *roadnet.Checkpoint) [][]float64 {
	inf := math.Inf(1)
	res := make([][]float64, len(sources))
	for i := range res {
		r := make([]float64, o.n)
		for j := range r {
			r[j] = inf
		}
		res[i] = r
	}
	if o.n == 0 || len(sources) == 0 {
		return res
	}
	sc := o.getScratch()
	for si, seeds := range sources {
		if len(seeds) == 0 {
			continue // solo contract: no seeds ⇒ all-+Inf, no search
		}
		if ck.Stopped() {
			o.putScratch(sc)
			return res
		}
		r := res[si]
		h := &sc.heap
		h.reset()
		for _, s := range seeds {
			v := int32(s.Vertex)
			if s.Dist < r[v] {
				r[v] = s.Dist
				h.push(v, s.Dist)
			}
		}
		sinceCheck := 0
		for h.len() > 0 {
			v, d := h.pop()
			if d > r[v] {
				continue
			}
			if ck != nil {
				if sinceCheck++; sinceCheck >= ckStride {
					if ck.Spend(sinceCheck) {
						o.putScratch(sc)
						return res
					}
					sinceCheck = 0
				}
			}
			stalled := false
			for i := o.up.off[v]; i < o.up.off[v+1]; i++ {
				if r[o.up.to[i]]+o.up.w[i] < d {
					stalled = true
					break
				}
			}
			if stalled {
				continue
			}
			for i := o.up.off[v]; i < o.up.off[v+1]; i++ {
				w := o.up.to[i]
				if nd := d + o.up.w[i]; nd < r[w] {
					r[w] = nd
					h.push(w, nd)
				}
			}
		}
		ck.Spend(sinceCheck)
	}
	o.putScratch(sc)
	if ck.Stopped() {
		return res
	}

	k := len(sources)
	sinceCheck := 0
	for _, v := range o.byRankDesc {
		if ck != nil {
			if sinceCheck += k; sinceCheck >= ckStride {
				if ck.Spend(sinceCheck) {
					return res
				}
				sinceCheck = 0
			}
		}
		lo, hi := o.down.off[v], o.down.off[v+1]
		for _, r := range res {
			d := r[v]
			if math.IsInf(d, 1) {
				continue
			}
			for i := lo; i < hi; i++ {
				w := o.down.to[i]
				if nd := d + o.down.w[i]; nd < r[w] {
					r[w] = nd
				}
			}
		}
	}
	ck.Spend(sinceCheck)
	return res
}

var (
	_ roadnet.DistanceOracle = (*Oracle)(nil)
	_ roadnet.CheckedOracle  = (*Oracle)(nil)
	_ roadnet.BatchOracle    = (*Oracle)(nil)
)
