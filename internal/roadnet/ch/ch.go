// Package ch implements an exact contraction-hierarchy (CH) distance
// oracle for the road network (Geisberger et al., "Contraction
// Hierarchies: Faster and Simpler Hierarchical Routing in Road Networks").
//
// Preprocessing contracts vertices one by one in importance order
// (edge-difference plus deleted-neighbours heuristic, with lazy priority
// re-evaluation), inserting a shortcut (u,w) of weight d(u,v)+d(v,w)
// whenever removing v would break a shortest path that a bounded witness
// search cannot re-certify. The result is stored as two CSR adjacency
// arrays per vertex: "up" edges lead to higher-ranked endpoints and serve
// the bidirectional queries, "down" edges lead to lower-ranked endpoints
// and serve the PHAST-style one-to-all sweep.
//
// Queries (query.go) implement the roadnet.DistanceOracle interface: a
// bucket-based many-to-many kernel with stall-on-demand for the bounded
// attachment-distance shapes, and a PHAST sweep for full distance arrays.
// All query state is pooled and epoch-stamped, so the oracle is safe for
// concurrent use by parallel refinement workers.
//
// Package hl extracts hub labels from a built Oracle for even faster
// point-to-point distances; the facade's fallback chain (hl → ch →
// dijkstra, docs/ROBUSTNESS.md §6) degrades through this package when
// label extraction is unavailable.
package ch

import (
	"sync"

	"gpssn/internal/roadnet"
)

// Options tunes preprocessing. The zero value picks sensible defaults.
type Options struct {
	// WitnessSettleLimit caps the number of vertices a witness search may
	// settle. A smaller cap speeds preprocessing but may insert redundant
	// shortcuts (never incorrect ones: a missed witness only means an
	// unnecessary shortcut). Default 250.
	WitnessSettleLimit int
}

// Oracle is an immutable contraction hierarchy over a road-network
// snapshot. Build once, then query concurrently.
type Oracle struct {
	n          int
	rank       []int32 // contraction order; higher = more important
	up         csr     // edges to higher-ranked endpoints
	down       csr     // edges to lower-ranked endpoints
	byRankDesc []int32 // vertices sorted by descending rank (PHAST order)
	shortcuts  int
	pool       sync.Pool // *scratch (query.go)
}

// NumShortcuts reports how many shortcut edges preprocessing added.
func (o *Oracle) NumShortcuts() int { return o.shortcuts }

// MemoryBytes reports the resident size of the hierarchy (rank array,
// rank order, both CSR adjacencies) for capacity telemetry.
func (o *Oracle) MemoryBytes() int64 {
	csrBytes := func(c *csr) int64 {
		return int64(len(c.off))*4 + int64(len(c.to))*4 + int64(len(c.w))*8
	}
	return int64(len(o.rank))*4 + int64(len(o.byRankDesc))*4 + csrBytes(&o.up) + csrBytes(&o.down)
}

// NumVertices reports the size of the graph snapshot the oracle covers.
func (o *Oracle) NumVertices() int { return o.n }

// Rank returns v's contraction rank (higher = contracted later = more
// important). Hub-label construction consumes it.
func (o *Oracle) Rank(v int32) int32 { return o.rank[v] }

// VerticesByRankDesc returns the vertices in descending rank order. The
// slice is owned by the oracle — callers must treat it as read-only. It is
// the processing order for hub-label extraction (internal/roadnet/hl),
// which needs every higher-ranked label finished before a vertex is
// labelled.
func (o *Oracle) VerticesByRankDesc() []int32 { return o.byRankDesc }

// UpArcs returns the up-edge adjacency of v (arcs to higher-ranked
// endpoints, shortcuts included) as parallel read-only slices.
func (o *Oracle) UpArcs(v int32) (to []int32, w []float64) {
	return o.up.to[o.up.off[v]:o.up.off[v+1]], o.up.w[o.up.off[v]:o.up.off[v+1]]
}

// csr is a compressed sparse row adjacency: arcs of vertex v occupy
// [off[v], off[v+1]) in to/w.
type csr struct {
	off []int32
	to  []int32
	w   []float64
}

// arc is a working-graph edge during preprocessing.
type arc struct {
	to int32
	w  float64
}

// Build preprocesses g into a contraction hierarchy with default options.
func Build(g *roadnet.Graph) *Oracle { return BuildWithOptions(g, Options{}) }

// BuildWithOptions preprocesses g into a contraction hierarchy.
func BuildWithOptions(g *roadnet.Graph, opt Options) *Oracle {
	if opt.WitnessSettleLimit <= 0 {
		opt.WitnessSettleLimit = 250
	}
	n := g.NumVertices()
	b := &builder{
		n:           n,
		adj:         make([][]arc, n),
		contracted:  make([]bool, n),
		rank:        make([]int32, n),
		delNbrs:     make([]int32, n),
		settleLimit: opt.WitnessSettleLimit,
		wDist:       make([]float64, n),
		wVer:        make([]uint32, n),
		tVer:        make([]uint32, n),
	}
	for v := 0; v < n; v++ {
		vid := roadnet.VertexID(v)
		g.Neighbors(vid, func(to roadnet.VertexID, w float64) bool {
			b.addArc(int32(v), int32(to), w) // dedups parallel edges, keeps min
			return true
		})
	}
	shortcuts := b.contractAll()
	return b.finish(shortcuts)
}

type builder struct {
	n           int
	adj         [][]arc // current graph incl. shortcuts; min weight per pair
	contracted  []bool
	rank        []int32
	delNbrs     []int32 // deleted-neighbours term of the priority
	settleLimit int

	// witness-search scratch, epoch-stamped so each search starts clean
	// without an O(n) reset.
	wDist  []float64
	wVer   []uint32
	wEpoch uint32
	wHeap  heap64
	// target stamps let a witness search stop as soon as every remaining
	// neighbour pair is settled instead of running to the settle limit.
	tVer   []uint32
	tEpoch uint32

	// buffers reused across contraction steps.
	scBuf   []shortcut
	nbrsBuf []arc
}

type shortcut struct {
	u, w int32
	wt   float64
}

// addArc records arc from→to with weight wt, keeping the minimum when a
// parallel arc already exists. Callers add both directions.
func (b *builder) addArc(from, to int32, wt float64) {
	for i := range b.adj[from] {
		if b.adj[from][i].to == to {
			if wt < b.adj[from][i].w {
				b.adj[from][i].w = wt
			}
			return
		}
	}
	b.adj[from] = append(b.adj[from], arc{to: to, w: wt})
}

// contractAll runs the lazy-update contraction loop and returns the number
// of shortcuts inserted.
func (b *builder) contractAll() int {
	pq := heap64{}
	for v := 0; v < b.n; v++ {
		pq.push(int32(v), b.priority(int32(v)))
	}
	next := int32(0)
	shortcuts := 0
	for pq.len() > 0 {
		v, _ := pq.pop()
		if b.contracted[v] {
			continue
		}
		// Lazy re-evaluation: the stored priority may be stale because
		// neighbours were contracted since it was pushed. Recompute (keeping
		// the shortcut list the simulation produced); if the vertex no
		// longer beats the queue head, push it back and try again.
		// Priorities are stable between contractions, so two candidates
		// cannot ping-pong forever.
		b.scBuf = b.scBuf[:0]
		needed, deg := b.simulate(v, &b.scBuf)
		cur := 2*float64(needed-deg) + float64(b.delNbrs[v])
		if pq.len() > 0 && cur > pq.topKey()+1e-12 {
			pq.push(v, cur)
			continue
		}
		shortcuts += b.contract(v, next)
		next++
	}
	return shortcuts
}

// priority is the importance heuristic: 2·edgeDifference + deletedNeighbours.
// Edge difference = shortcuts a contraction would add minus arcs it removes;
// deleted neighbours spreads contraction evenly across the network.
func (b *builder) priority(v int32) float64 {
	needed, deg := b.simulate(v, nil)
	return 2*float64(needed-deg) + float64(b.delNbrs[v])
}

// contract removes v from the remaining graph, materializing the shortcuts
// collected in scBuf by the immediately preceding simulate call, and
// assigns v the next rank.
func (b *builder) contract(v, rank int32) int {
	for _, sc := range b.scBuf {
		b.addArc(sc.u, sc.w, sc.wt)
		b.addArc(sc.w, sc.u, sc.wt)
	}
	b.contracted[v] = true
	b.rank[v] = rank
	for _, a := range b.adj[v] {
		if !b.contracted[a.to] {
			b.delNbrs[a.to]++
		}
	}
	return len(b.scBuf)
}

// simulate determines which shortcuts contracting v would require, using a
// bounded witness search per remaining neighbour pair. It returns the
// number of shortcuts and the count of remaining neighbours; when collect
// is non-nil the shortcuts are appended to it.
func (b *builder) simulate(v int32, collect *[]shortcut) (needed, deg int) {
	nbrs := b.nbrsBuf[:0]
	for _, a := range b.adj[v] {
		if !b.contracted[a.to] {
			nbrs = append(nbrs, a)
		}
	}
	b.nbrsBuf = nbrs
	deg = len(nbrs)
	for i, un := range nbrs {
		// One witness search from u covers all pairs (u, w_j), j > i.
		maxT := 0.0
		for _, wn := range nbrs[i+1:] {
			if wn.w > maxT {
				maxT = wn.w
			}
		}
		if len(nbrs[i+1:]) == 0 {
			continue
		}
		b.witnessSearch(un.to, v, un.w+maxT, nbrs[i+1:])
		for _, wn := range nbrs[i+1:] {
			via := un.w + wn.w // d(u,v) + d(v,w)
			if wd, ok := b.witnessDist(wn.to); !ok || wd > via {
				needed++
				if collect != nil {
					*collect = append(*collect, shortcut{u: un.to, w: wn.to, wt: via})
				}
			}
		}
	}
	return needed, deg
}

// witnessSearch runs a bounded Dijkstra from src on the remaining graph
// with `excluded` removed, settling at most settleLimit vertices, ignoring
// labels beyond bound, and stopping as soon as every target is settled.
// Results are read back via witnessDist. Stopping early only means fewer
// witnesses found, which yields extra (redundant, never incorrect)
// shortcuts.
func (b *builder) witnessSearch(src, excluded int32, bound float64, targets []arc) {
	b.wEpoch++
	if b.wEpoch == 0 { // stamp wrap: reset and restart epochs
		for i := range b.wVer {
			b.wVer[i] = 0
		}
		b.wEpoch = 1
	}
	b.tEpoch++
	if b.tEpoch == 0 {
		for i := range b.tVer {
			b.tVer[i] = 0
		}
		b.tEpoch = 1
	}
	remaining := 0
	for _, t := range targets {
		if b.tVer[t.to] != b.tEpoch {
			b.tVer[t.to] = b.tEpoch
			remaining++
		}
	}
	ep := b.wEpoch
	h := &b.wHeap
	h.reset()
	b.wDist[src] = 0
	b.wVer[src] = ep
	h.push(src, 0)
	settled := 0
	for h.len() > 0 && settled < b.settleLimit {
		v, d := h.pop()
		if d > b.wDist[v] {
			continue
		}
		settled++
		if b.tVer[v] == b.tEpoch {
			b.tVer[v] = 0
			remaining--
			if remaining == 0 {
				break
			}
		}
		for _, a := range b.adj[v] {
			if a.to == excluded || b.contracted[a.to] {
				continue
			}
			nd := d + a.w
			if nd > bound {
				continue
			}
			if b.wVer[a.to] != ep || nd < b.wDist[a.to] {
				b.wVer[a.to] = ep
				b.wDist[a.to] = nd
				h.push(a.to, nd)
			}
		}
	}
}

// witnessDist reports the label the last witnessSearch left on v.
func (b *builder) witnessDist(v int32) (float64, bool) {
	if b.wVer[v] != b.wEpoch {
		return 0, false
	}
	return b.wDist[v], true
}

// finish freezes the contracted graph into the up/down CSR arrays.
func (b *builder) finish(shortcuts int) *Oracle {
	o := &Oracle{
		n:         b.n,
		rank:      b.rank,
		shortcuts: shortcuts,
	}
	upDeg := make([]int32, b.n+1)
	downDeg := make([]int32, b.n+1)
	for v := 0; v < b.n; v++ {
		for _, a := range b.adj[v] {
			if b.rank[a.to] > b.rank[v] {
				upDeg[v+1]++
			} else {
				downDeg[v+1]++
			}
		}
	}
	for v := 0; v < b.n; v++ {
		upDeg[v+1] += upDeg[v]
		downDeg[v+1] += downDeg[v]
	}
	o.up = csr{off: upDeg, to: make([]int32, upDeg[b.n]), w: make([]float64, upDeg[b.n])}
	o.down = csr{off: downDeg, to: make([]int32, downDeg[b.n]), w: make([]float64, downDeg[b.n])}
	upPos := make([]int32, b.n)
	downPos := make([]int32, b.n)
	copy(upPos, upDeg[:b.n])
	copy(downPos, downDeg[:b.n])
	for v := 0; v < b.n; v++ {
		for _, a := range b.adj[v] {
			if b.rank[a.to] > b.rank[int32(v)] {
				o.up.to[upPos[v]] = a.to
				o.up.w[upPos[v]] = a.w
				upPos[v]++
			} else {
				o.down.to[downPos[v]] = a.to
				o.down.w[downPos[v]] = a.w
				downPos[v]++
			}
		}
	}
	o.byRankDesc = make([]int32, b.n)
	for v := 0; v < b.n; v++ {
		o.byRankDesc[b.n-1-int(b.rank[v])] = int32(v)
	}
	return o
}

// heap64 is a typed binary min-heap of (vertex, key) pairs, mirroring
// roadnet's distHeap to avoid container/heap interface allocations.
type heap64 struct {
	v []int32
	d []float64
}

func (h *heap64) len() int       { return len(h.v) }
func (h *heap64) reset()         { h.v, h.d = h.v[:0], h.d[:0] }
func (h *heap64) topKey() float64 { return h.d[0] }

func (h *heap64) push(v int32, d float64) {
	h.v = append(h.v, v)
	h.d = append(h.d, d)
	i := len(h.v) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.d[p] <= h.d[i] {
			break
		}
		h.v[p], h.v[i] = h.v[i], h.v[p]
		h.d[p], h.d[i] = h.d[i], h.d[p]
		i = p
	}
}

func (h *heap64) pop() (int32, float64) {
	v, d := h.v[0], h.d[0]
	last := len(h.v) - 1
	h.v[0], h.d[0] = h.v[last], h.d[last]
	h.v, h.d = h.v[:last], h.d[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < len(h.d) && h.d[l] < h.d[s] {
			s = l
		}
		if r < len(h.d) && h.d[r] < h.d[s] {
			s = r
		}
		if s == i {
			break
		}
		h.v[s], h.v[i] = h.v[i], h.v[s]
		h.d[s], h.d[i] = h.d[i], h.d[s]
		i = s
	}
	return v, d
}
