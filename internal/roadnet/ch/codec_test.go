package ch

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"gpssn/internal/roadnet"
	"gpssn/internal/snap"
)

// encodeOracle serializes o the way the snapshot layer does.
func encodeOracle(t *testing.T, o *Oracle) []byte {
	t.Helper()
	var e snap.Enc
	o.Encode(&e)
	if err := e.Err(); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return e.B
}

// TestCodecRoundTrip: a decoded oracle answers bit-identically to the one
// that was saved (same upward searches over the same arrays).
func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	g := randomGraph(t, rng, 120, 1.5, true)
	o := Build(g)
	got, err := Decode(&snap.Dec{B: encodeOracle(t, o)})
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i := 0; i < 50; i++ {
		s := roadnet.VertexID(rng.Intn(g.NumVertices()))
		d := roadnet.VertexID(rng.Intn(g.NumVertices()))
		seeds := []roadnet.Seed{{Vertex: s, Dist: 0}}
		a := o.SeedDistances(seeds, []roadnet.VertexID{d}, 0)[0]
		b := got.SeedDistances(seeds, []roadnet.VertexID{d}, 0)[0]
		if a != b {
			t.Fatalf("dist(%d,%d): decoded %v != original %v", s, d, b, a)
		}
	}
}

// TestCodecRejectsTruncation: every prefix of a valid payload fails to
// decode — no truncation produces a structurally valid oracle.
func TestCodecRejectsTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	o := Build(randomGraph(t, rng, 40, 1.2, true))
	b := encodeOracle(t, o)
	for cut := 0; cut < len(b); cut += 7 {
		d := &snap.Dec{B: b[:cut]}
		dec, err := Decode(d)
		if err == nil && d.Done() {
			t.Fatalf("truncation at %d/%d decoded cleanly: %+v", cut, len(b), dec)
		}
	}
}

// corrupt re-encodes a structurally broken clone of o and returns the
// decode error (the clone shares slices it does not mutate).
func corruptAndDecode(t *testing.T, o *Oracle, mutate func(c *Oracle)) error {
	t.Helper()
	c := &Oracle{
		n: o.n, shortcuts: o.shortcuts,
		rank: append([]int32(nil), o.rank...),
		up:   csr{off: append([]int32(nil), o.up.off...), to: append([]int32(nil), o.up.to...), w: append([]float64(nil), o.up.w...)},
		down: csr{off: append([]int32(nil), o.down.off...), to: append([]int32(nil), o.down.to...), w: append([]float64(nil), o.down.w...)},
	}
	mutate(c)
	_, err := Decode(&snap.Dec{B: encodeOracle(t, c)})
	return err
}

// TestCodecRejectsStructuralDamage: each invariant the queries rely on is
// individually enforced with a descriptive error.
func TestCodecRejectsStructuralDamage(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	o := Build(randomGraph(t, rng, 60, 1.4, true))
	cases := []struct {
		name   string
		mutate func(c *Oracle)
		want   string
	}{
		{"rank-not-permutation", func(c *Oracle) { c.rank[3] = c.rank[4] }, "not a permutation"},
		{"rank-out-of-range", func(c *Oracle) { c.rank[0] = int32(c.n) }, "not a permutation"},
		{"offsets-not-monotone", func(c *Oracle) { c.up.off[1] = c.up.off[len(c.up.off)-1] + 1 }, "not monotone"},
		{"arc-endpoint-wild", func(c *Oracle) { c.up.to[0] = int32(c.n) }, "out of range"},
		{"weight-negative", func(c *Oracle) { c.down.w[0] = -1 }, "finite non-negative"},
		{"weight-nan", func(c *Oracle) { c.up.w[0] = nan() }, "finite non-negative"},
		{"arc-arrays-inconsistent", func(c *Oracle) { c.up.to = c.up.to[:len(c.up.to)-1] }, "inconsistent"},
	}
	for _, tc := range cases {
		err := corruptAndDecode(t, o, tc.mutate)
		if err == nil {
			t.Errorf("%s: corrupt payload decoded cleanly", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// Up-arc direction: swapping two ranks makes some arc point downward.
	err := corruptAndDecode(t, o, func(c *Oracle) {
		c.rank[0], c.rank[1] = c.rank[1], c.rank[0]
	})
	if err == nil {
		t.Error("rank swap decoded cleanly; arc-direction invariants not checked")
	}
}

// TestCodecCountOverflowTyped: a payload declaring a slice too large for
// the platform fails with the typed snap.ErrCountOverflow — callers
// (snapshot recovery) branch on it with errors.Is.
func TestCodecCountOverflowTyped(t *testing.T) {
	var e snap.Enc
	e.U32(2)          // n
	e.U32(0)          // shortcuts
	e.U32(2)          // rank length prefix...
	e.U32(0)          // rank[0]
	e.U32(1)          // rank[1]
	e.U32(0xFFFFFFFF) // up.off declared length: fails the remaining-bytes check at best
	payload := e.B
	if _, err := Decode(&snap.Dec{B: payload}); err == nil {
		t.Fatal("oversized count decoded cleanly")
	}
	// The int64-prefixed path (hl offsets) carries the typed error; here
	// the 32-bit prefix cannot exceed MaxInt on 64-bit platforms, so the
	// decoder reports plain truncation instead. Assert the sticky decode
	// error never panics or allocates past the payload.
	d := &snap.Dec{B: payload}
	if _, err := Decode(d); err == nil || d.Done() {
		t.Fatal("decoder must fail without consuming the payload cleanly")
	}
	// And the snap layer's own overflow guard is typed end to end.
	var big snap.Enc
	big.U64(1 << 62)
	dd := &snap.Dec{B: big.B}
	dd.I64s()
	if err := dd.Err(); !errors.Is(err, snap.ErrCountOverflow) {
		t.Fatalf("I64s with 2^62 declared entries: err = %v, want ErrCountOverflow", err)
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}
