package ch

import (
	"fmt"
	"math"

	"gpssn/internal/snap"
)

// Encode serializes the oracle into a snapshot section payload. The layout
// is the in-memory representation verbatim (rank array plus the two CSR
// adjacencies); byRankDesc is derived on decode.
func (o *Oracle) Encode(e *snap.Enc) {
	e.U32(uint32(o.n))
	e.U32(uint32(o.shortcuts))
	e.I32s(o.rank)
	encodeCSR(e, &o.up)
	encodeCSR(e, &o.down)
}

func encodeCSR(e *snap.Enc, c *csr) {
	e.I32s(c.off)
	e.I32s(c.to)
	e.F64s(c.w)
}

// Decode reconstructs an oracle from a payload written by Encode,
// validating every structural invariant queries rely on: the rank array is
// a permutation, both CSRs are well-formed with in-range endpoints and
// finite non-negative weights, up-arcs lead strictly upward in rank and
// down-arcs strictly downward. A snapshot that decodes cleanly therefore
// answers exactly like the oracle that was saved; anything less fails with
// an error so the caller rebuilds from the road graph instead.
func Decode(d *snap.Dec) (*Oracle, error) {
	n := int(int32(d.U32()))
	shortcuts := int(int32(d.U32()))
	rank := d.I32s()
	up, errUp := decodeCSR(d, n)
	down, errDown := decodeCSR(d, n)
	if err := d.Err(); err != nil {
		return nil, err
	}
	if errUp != nil {
		return nil, fmt.Errorf("ch: up adjacency: %w", errUp)
	}
	if errDown != nil {
		return nil, fmt.Errorf("ch: down adjacency: %w", errDown)
	}
	if n < 0 || shortcuts < 0 {
		return nil, fmt.Errorf("ch: negative size (n=%d shortcuts=%d)", n, shortcuts)
	}
	if len(rank) != n {
		return nil, fmt.Errorf("ch: rank array has %d entries, want %d", len(rank), n)
	}
	seen := make([]bool, n)
	for v, r := range rank {
		if r < 0 || int(r) >= n || seen[r] {
			return nil, fmt.Errorf("ch: rank[%d]=%d is not a permutation entry", v, r)
		}
		seen[r] = true
	}
	for v := 0; v < n; v++ {
		for i := up.off[v]; i < up.off[v+1]; i++ {
			if rank[up.to[i]] <= rank[v] {
				return nil, fmt.Errorf("ch: up-arc %d->%d does not increase rank", v, up.to[i])
			}
		}
		for i := down.off[v]; i < down.off[v+1]; i++ {
			if rank[down.to[i]] > rank[v] {
				return nil, fmt.Errorf("ch: down-arc %d->%d increases rank", v, down.to[i])
			}
		}
	}
	o := &Oracle{n: n, rank: rank, up: up, down: down, shortcuts: shortcuts}
	o.byRankDesc = make([]int32, n)
	for v := 0; v < n; v++ {
		o.byRankDesc[n-1-int(rank[v])] = int32(v)
	}
	return o, nil
}

func decodeCSR(d *snap.Dec, n int) (csr, error) {
	c := csr{off: d.I32s(), to: d.I32s(), w: d.F64s()}
	if d.Err() != nil {
		return c, nil // the sticky decode error is reported by the caller
	}
	if n < 0 || len(c.off) != n+1 {
		return c, fmt.Errorf("offset array has %d entries, want %d", len(c.off), n+1)
	}
	// The in-memory CSR indexes arcs through int32 offsets; a payload
	// declaring more arcs than int32 can address is rejected with the
	// typed overflow error rather than silently wrapping the offsets.
	if int64(len(c.to)) > int64(math.MaxInt32) {
		return c, fmt.Errorf("arc count %d: %w", len(c.to), snap.ErrCountOverflow)
	}
	if c.off[0] != 0 {
		return c, fmt.Errorf("offset array starts at %d", c.off[0])
	}
	for i := 1; i <= n; i++ {
		if c.off[i] < c.off[i-1] {
			return c, fmt.Errorf("offset array not monotone at %d", i)
		}
	}
	if int(c.off[n]) != len(c.to) || len(c.to) != len(c.w) {
		return c, fmt.Errorf("arc arrays inconsistent (off=%d to=%d w=%d)", c.off[n], len(c.to), len(c.w))
	}
	for i, t := range c.to {
		if t < 0 || int(t) >= n {
			return c, fmt.Errorf("arc %d endpoint %d out of range [0,%d)", i, t, n)
		}
		if w := c.w[i]; math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return c, fmt.Errorf("arc %d weight %v not a finite non-negative value", i, w)
		}
	}
	return c, nil
}
