package ch

import (
	"math"
	"math/rand"
	"testing"

	"gpssn/internal/geo"
	"gpssn/internal/roadnet"
)

// randomGraph builds a random road network with n vertices and roughly
// density·n edges. With connect=true a random spanning tree guarantees a
// single component; otherwise the graph usually splits into several,
// exercising the +Inf unreachable paths.
func randomGraph(t *testing.T, rng *rand.Rand, n int, density float64, connect bool) *roadnet.Graph {
	t.Helper()
	g := roadnet.NewGraph(n, int(density*float64(n)))
	for i := 0; i < n; i++ {
		g.AddVertex(geo.Pt(rng.Float64()*100, rng.Float64()*100))
	}
	if connect {
		for i := 1; i < n; i++ {
			g.AddEdge(roadnet.VertexID(rng.Intn(i)), roadnet.VertexID(i))
		}
	}
	extra := int(density * float64(n))
	for i := 0; i < extra; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u != v {
			g.AddEdge(roadnet.VertexID(u), roadnet.VertexID(v))
		}
	}
	return g
}

// near reports approximate equality: CH distances sum shortcut weights in a
// different association order than Dijkstra's left-to-right accumulation,
// so values can differ by a few ULPs on float edge weights.
func near(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.IsInf(a, 1) && math.IsInf(b, 1)
	}
	diff := math.Abs(a - b)
	return diff <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestOracleMatchesDijkstra cross-checks every CH query shape against the
// plain searches on random connected and disconnected graphs.
func TestOracleMatchesDijkstra(t *testing.T) {
	cases := []struct {
		name    string
		n       int
		density float64
		connect bool
	}{
		{"connected-sparse", 60, 1.2, true},
		{"connected-dense", 40, 3.0, true},
		{"disconnected", 80, 0.4, false},
		{"tiny", 3, 1.0, true},
		{"single-vertex", 1, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				rng := rand.New(rand.NewSource(seed*7919 + 13))
				g := randomGraph(t, rng, tc.n, tc.density, tc.connect)
				o := Build(g)
				n := g.NumVertices()

				// OneToAll vs plain DijkstraMulti (oracle detached).
				for trial := 0; trial < 4; trial++ {
					src := roadnet.VertexID(rng.Intn(n))
					want := g.Dijkstra(src)
					got := o.OneToAll([]roadnet.Seed{{Vertex: src}})
					for v := 0; v < n; v++ {
						if !near(want[v], got[v]) {
							t.Fatalf("seed %d OneToAll(%d)[%d] = %v, want %v", seed, src, v, got[v], want[v])
						}
					}
				}

				// SeedDistances (bounded and unbounded) vs ground truth.
				for trial := 0; trial < 4; trial++ {
					src := roadnet.VertexID(rng.Intn(n))
					want := g.Dijkstra(src)
					targets := make([]roadnet.VertexID, 0, 8)
					for i := 0; i < 8; i++ {
						targets = append(targets, roadnet.VertexID(rng.Intn(n)))
					}
					for _, bound := range []float64{math.Inf(1), 40, 5} {
						got := o.SeedDistances([]roadnet.Seed{{Vertex: src}}, targets, bound)
						for i, tv := range targets {
							w := want[tv]
							if w > bound {
								w = math.Inf(1)
							}
							if !near(w, got[i]) {
								t.Fatalf("seed %d SeedDistances(src=%d, t=%d, bound=%v) = %v, want %v",
									seed, src, tv, bound, got[i], w)
							}
						}
					}
				}
			}
		})
	}
}

// TestGraphDelegation verifies the Graph-level attachment shapes produce
// identical answers with and without the oracle attached, covering the
// same-edge direct route and unreachable candidates.
func TestGraphDelegation(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed*104729 + 7))
		connect := seed%2 == 0
		g := randomGraph(t, rng, 50, 1.0, connect)
		o := Build(g)

		randAttach := func() roadnet.Attach {
			return g.AttachAt(roadnet.EdgeID(rng.Intn(g.NumEdges())), rng.Float64())
		}
		a := randAttach()
		sameEdge := roadnet.Attach{Edge: a.Edge, T: rng.Float64()}
		cands := []roadnet.Attach{sameEdge, a}
		for i := 0; i < 12; i++ {
			cands = append(cands, randAttach())
		}

		g.SetDistanceOracle(nil)
		wantAttach := make([]float64, len(cands))
		for i, c := range cands {
			wantAttach[i] = g.DistAttach(a, c)
		}
		wantMany := g.DistAttachMany(a, cands)
		wantWithin := g.DistAttachWithin(a, 12, cands)

		g.SetDistanceOracle(o)
		for i, c := range cands {
			if got := g.DistAttach(a, c); !near(got, wantAttach[i]) {
				t.Fatalf("seed %d DistAttach cand %d = %v, want %v", seed, i, got, wantAttach[i])
			}
		}
		gotMany := g.DistAttachMany(a, cands)
		gotWithin := g.DistAttachWithin(a, 12, cands)
		for i := range cands {
			if !near(gotMany[i], wantMany[i]) {
				t.Fatalf("seed %d DistAttachMany[%d] = %v, want %v", seed, i, gotMany[i], wantMany[i])
			}
			if !near(gotWithin[i], wantWithin[i]) {
				t.Fatalf("seed %d DistAttachWithin[%d] = %v, want %v", seed, i, gotWithin[i], wantWithin[i])
			}
		}
	}
}

// TestOracleExactOnIntegerWeights pins bit-exact equality where float
// association order cannot interfere: on a grid whose edge weights are
// exactly representable, CH must reproduce Dijkstra bit for bit.
func TestOracleExactOnIntegerWeights(t *testing.T) {
	const side = 8
	g := roadnet.NewGraph(side*side, 2*side*side)
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			g.AddVertex(geo.Pt(float64(x), float64(y)))
		}
	}
	id := func(x, y int) roadnet.VertexID { return roadnet.VertexID(y*side + x) }
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			if x+1 < side {
				g.AddEdge(id(x, y), id(x+1, y))
			}
			if y+1 < side {
				g.AddEdge(id(x, y), id(x, y+1))
			}
		}
	}
	o := Build(g)
	for src := 0; src < side*side; src += 5 {
		want := g.Dijkstra(roadnet.VertexID(src))
		got := o.OneToAll([]roadnet.Seed{{Vertex: roadnet.VertexID(src)}})
		for v := range want {
			if want[v] != got[v] {
				t.Fatalf("grid OneToAll(%d)[%d] = %v, want %v (must be bit-exact)", src, v, got[v], want[v])
			}
		}
	}
}

// TestOracleSurvivesMutation ensures structural graph edits keep the
// attached oracle serving — wrapped in the delta-overlay — and that the
// composed distances track the mutated topology instead of going stale.
func TestOracleSurvivesMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randomGraph(t, rng, 20, 1.0, true)
	g.SetDistanceOracle(Build(g))
	if g.Oracle() == nil {
		t.Fatal("oracle not attached")
	}
	v := g.AddVertex(geo.Pt(200, 200))
	if g.Oracle() == nil {
		t.Fatal("AddVertex must keep the oracle attached via the overlay")
	}
	if !g.OverlayStats().Active {
		t.Fatal("mutation must activate the delta-overlay")
	}
	g.AddEdge(v, 0)
	// The new vertex must be reachable through the composed oracle at the
	// exact new-edge distance — a stale oracle would report +Inf.
	d := g.Dijkstra(0)
	if len(d) != g.NumVertices() {
		t.Fatalf("one-to-all length %d, want %d", len(d), g.NumVertices())
	}
	want := g.Vertex(0).Dist(g.Vertex(v))
	if d[v] > want {
		t.Fatalf("composed distance to new vertex %v, want <= direct edge %v", d[v], want)
	}
}
