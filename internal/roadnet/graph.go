// Package roadnet implements the spatial road network G_r of the paper
// (Definition 1): an undirected planar graph whose vertices are road
// intersections, whose edges are road segments weighted by Euclidean
// length, and on whose edges POIs and user homes are attached at parametric
// offsets. It provides exact shortest-path distances (Dijkstra with a
// typed binary heap, plus early-termination point-to-point search), a grid
// index for snapping arbitrary 2D locations onto the nearest road segment,
// and pivot distance tables that power the triangle-inequality distance
// bounds used by the GP-SSN pruning rules (Sections 3.3 and 4).
package roadnet

import (
	"fmt"
	"math"

	"gpssn/internal/geo"
)

// VertexID identifies a road-network vertex (intersection).
type VertexID int32

// EdgeID identifies a road segment.
type EdgeID int32

// halfEdge is one direction of an undirected road segment.
type halfEdge struct {
	to     VertexID
	weight float64
	edge   EdgeID
}

// Edge is a road segment between two intersections.
type Edge struct {
	U, V   VertexID
	Weight float64
}

// Graph is a spatial road network. Create with NewGraph, then add vertices
// and edges; the graph is usable immediately (no finalize step).
type Graph struct {
	pts        []geo.Point
	adj        [][]halfEdge
	edges      []Edge
	grid       *edgeGrid      // lazily built by SnapPoint
	gridBuilds int            // full grid (re)builds — churn regression signal
	oracle     DistanceOracle // optional fast exact-distance backend (see oracle.go)
}

// NewGraph returns an empty road network with capacity hints.
func NewGraph(vertexHint, edgeHint int) *Graph {
	return &Graph{
		pts:   make([]geo.Point, 0, vertexHint),
		adj:   make([][]halfEdge, 0, vertexHint),
		edges: make([]Edge, 0, edgeHint),
	}
}

// AddVertex adds an intersection at p and returns its id. An attached
// distance oracle stays attached: it is wrapped in a delta-overlay (see
// overlay.go) that keeps answers exact over the mutated topology. The
// snap grid indexes edges only, so it is untouched.
func (g *Graph) AddVertex(p geo.Point) VertexID {
	ov := g.ensureOverlay()
	g.pts = append(g.pts, p)
	g.adj = append(g.adj, nil)
	if ov != nil {
		ov.noteAddVertex()
	}
	return VertexID(len(g.pts) - 1)
}

// AddEdge adds an undirected road segment between u and v weighted by their
// Euclidean distance. It returns the new edge's id. Self-loops are
// rejected with a panic since road networks never contain them — callers
// holding untrusted input validate first (the facade road-mutation
// boundary returns typed errors; ImportCSV rejects with row numbers).
// An attached distance oracle stays attached through the delta-overlay,
// and the snap grid absorbs the new segment incrementally.
func (g *Graph) AddEdge(u, v VertexID) EdgeID {
	if u == v {
		panic(fmt.Sprintf("roadnet: self-loop at vertex %d", u))
	}
	g.checkVertex(u)
	g.checkVertex(v)
	ov := g.ensureOverlay()
	w := g.pts[u].Dist(g.pts[v])
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{U: u, V: v, Weight: w})
	g.adj[u] = append(g.adj[u], halfEdge{to: v, weight: w, edge: id})
	g.adj[v] = append(g.adj[v], halfEdge{to: u, weight: w, edge: id})
	if ov != nil {
		ov.noteAddEdge(u, v, w)
	}
	g.gridInsertEdge(id)
	return id
}

// Clone returns a deep copy of the graph's topology and geometry. The
// snap grid and the distance oracle are deliberately not carried over —
// the clone rebuilds its grid lazily and gets its own oracle — so the
// copy shares no mutable state with the original. Background
// re-contraction clones the graph off-lock and rebuilds against the copy
// while the original keeps serving.
func (g *Graph) Clone() *Graph {
	ng := &Graph{
		pts:   append([]geo.Point(nil), g.pts...),
		adj:   make([][]halfEdge, len(g.adj)),
		edges: append([]Edge(nil), g.edges...),
	}
	for i, a := range g.adj {
		ng.adj[i] = append([]halfEdge(nil), a...)
	}
	return ng
}

// HasEdge reports whether an edge between u and v exists.
func (g *Graph) HasEdge(u, v VertexID) bool {
	g.checkVertex(u)
	g.checkVertex(v)
	for _, he := range g.adj[u] {
		if he.to == v {
			return true
		}
	}
	return false
}

// NumVertices returns |V(G_r)|.
func (g *Graph) NumVertices() int { return len(g.pts) }

// NumEdges returns |E(G_r)|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Vertex returns the location of v.
func (g *Graph) Vertex(v VertexID) geo.Point {
	g.checkVertex(v)
	return g.pts[v]
}

// EdgeAt returns the edge with the given id.
func (g *Graph) EdgeAt(id EdgeID) Edge {
	if id < 0 || int(id) >= len(g.edges) {
		panic(fmt.Sprintf("roadnet: edge %d out of range", id))
	}
	return g.edges[id]
}

// EdgeSegment returns the geometry of the edge with the given id.
func (g *Graph) EdgeSegment(id EdgeID) geo.Segment {
	e := g.EdgeAt(id)
	return geo.Seg(g.pts[e.U], g.pts[e.V])
}

// Degree returns the number of edges incident to v.
func (g *Graph) Degree(v VertexID) int {
	g.checkVertex(v)
	return len(g.adj[v])
}

// AvgDegree returns the average vertex degree (the deg(G_r) statistic the
// paper reports in Table 2).
func (g *Graph) AvgDegree() float64 {
	if len(g.pts) == 0 {
		return 0
	}
	return 2 * float64(len(g.edges)) / float64(len(g.pts))
}

// Neighbors calls fn for each neighbour of v with the connecting edge's
// weight. Returning false stops iteration.
func (g *Graph) Neighbors(v VertexID, fn func(to VertexID, weight float64) bool) {
	g.checkVertex(v)
	for _, he := range g.adj[v] {
		if !fn(he.to, he.weight) {
			return
		}
	}
}

// Bounds returns the MBR of all vertices.
func (g *Graph) Bounds() geo.Rect {
	r := geo.EmptyRect()
	for _, p := range g.pts {
		r = r.ExtendPoint(p)
	}
	return r
}

// ConnectedComponents returns a component label per vertex and the number
// of components.
func (g *Graph) ConnectedComponents() (labels []int, n int) {
	labels = make([]int, len(g.pts))
	for i := range labels {
		labels[i] = -1
	}
	var stack []VertexID
	for start := range g.pts {
		if labels[start] >= 0 {
			continue
		}
		stack = append(stack[:0], VertexID(start))
		labels[start] = n
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, he := range g.adj[v] {
				if labels[he.to] < 0 {
					labels[he.to] = n
					stack = append(stack, he.to)
				}
			}
		}
		n++
	}
	return labels, n
}

// IsConnected reports whether the graph is a single connected component.
func (g *Graph) IsConnected() bool {
	if len(g.pts) == 0 {
		return true
	}
	_, n := g.ConnectedComponents()
	return n == 1
}

func (g *Graph) checkVertex(v VertexID) {
	if v < 0 || int(v) >= len(g.pts) {
		panic(fmt.Sprintf("roadnet: vertex %d out of range [0,%d)", v, len(g.pts)))
	}
}

// Attach is a location on the road network: a point on edge Edge at
// parametric offset T from the edge's U endpoint (T in [0,1]). POIs and
// user homes are Attach values; all road-network distances are measured
// between Attach points.
type Attach struct {
	Edge EdgeID
	T    float64
}

// AttachAt returns the attachment on the given edge at offset t (clamped).
func (g *Graph) AttachAt(id EdgeID, t float64) Attach {
	g.EdgeAt(id) // range check
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return Attach{Edge: id, T: t}
}

// AttachVertex returns an attachment exactly at vertex v (using any
// incident edge). It panics when v is isolated, since an isolated vertex
// cannot host POIs or users.
func (g *Graph) AttachVertex(v VertexID) Attach {
	g.checkVertex(v)
	if len(g.adj[v]) == 0 {
		panic(fmt.Sprintf("roadnet: vertex %d is isolated", v))
	}
	he := g.adj[v][0]
	e := g.edges[he.edge]
	if e.U == v {
		return Attach{Edge: he.edge, T: 0}
	}
	return Attach{Edge: he.edge, T: 1}
}

// Location returns the 2D point of attachment a.
func (g *Graph) Location(a Attach) geo.Point {
	return g.EdgeSegment(a.Edge).At(a.T)
}

// attachEnds returns the two endpoint vertices of a's edge along with a's
// distance to each.
func (g *Graph) attachEnds(a Attach) (u, v VertexID, du, dv float64) {
	e := g.EdgeAt(a.Edge)
	return e.U, e.V, a.T * e.Weight, (1 - a.T) * e.Weight
}

// DistToVertexVia returns dist_RN(a, x) given a table of vertex distances
// dist (for example a pivot row or a Dijkstra result array). A table
// shorter than the current vertex count — a pivot row computed before
// vertices were appended — carries no information about the missing
// endpoints, which read as +Inf; callers relying on such stale tables as
// lower bounds must gate on the road-delta being empty (the engine does).
func (g *Graph) DistToVertexVia(a Attach, dist []float64) float64 {
	u, v, du, dv := g.attachEnds(a)
	x, y := math.Inf(1), math.Inf(1)
	if int(u) < len(dist) {
		x = du + dist[u]
	}
	if int(v) < len(dist) {
		y = dv + dist[v]
	}
	return math.Min(x, y)
}
