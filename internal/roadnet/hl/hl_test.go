package hl

import (
	"math"
	"math/rand"
	"testing"

	"gpssn/internal/geo"
	"gpssn/internal/roadnet"
	"gpssn/internal/roadnet/ch"
)

// randomGraph mirrors the CH test generator: n vertices, ~density·n edges,
// optionally spanning-tree connected (disconnected graphs exercise the
// +Inf no-common-hub paths).
func randomGraph(t *testing.T, rng *rand.Rand, n int, density float64, connect bool) *roadnet.Graph {
	t.Helper()
	g := roadnet.NewGraph(n, int(density*float64(n)))
	for i := 0; i < n; i++ {
		g.AddVertex(geo.Pt(rng.Float64()*100, rng.Float64()*100))
	}
	if connect {
		for i := 1; i < n; i++ {
			g.AddEdge(roadnet.VertexID(rng.Intn(i)), roadnet.VertexID(i))
		}
	}
	extra := int(density * float64(n))
	for i := 0; i < extra; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u != v {
			g.AddEdge(roadnet.VertexID(u), roadnet.VertexID(v))
		}
	}
	return g
}

func near(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.IsInf(a, 1) && math.IsInf(b, 1)
	}
	diff := math.Abs(a - b)
	return diff <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestHLMatchesCHAndDijkstra is the randomized three-way property test:
// on random connected and disconnected graphs, every hub-label query shape
// must agree with both the CH oracle and the plain Dijkstra ground truth
// (including +Inf for disconnected pairs).
func TestHLMatchesCHAndDijkstra(t *testing.T) {
	cases := []struct {
		name    string
		n       int
		density float64
		connect bool
	}{
		{"connected-sparse", 60, 1.2, true},
		{"connected-dense", 40, 3.0, true},
		{"disconnected", 80, 0.4, false},
		{"tiny", 3, 1.0, true},
		{"single-vertex", 1, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				rng := rand.New(rand.NewSource(seed*6841 + 31))
				g := randomGraph(t, rng, tc.n, tc.density, tc.connect)
				cho := ch.Build(g)
				o := FromCH(cho)
				n := g.NumVertices()

				// OneToAll vs plain Dijkstra.
				for trial := 0; trial < 4; trial++ {
					src := roadnet.VertexID(rng.Intn(n))
					want := g.Dijkstra(src)
					got := o.OneToAll([]roadnet.Seed{{Vertex: src}})
					for v := 0; v < n; v++ {
						if !near(want[v], got[v]) {
							t.Fatalf("seed %d OneToAll(%d)[%d] = %v, want %v", seed, src, v, got[v], want[v])
						}
					}
				}

				// SeedDistances (bounded and unbounded) vs Dijkstra and CH.
				for trial := 0; trial < 4; trial++ {
					src := roadnet.VertexID(rng.Intn(n))
					want := g.Dijkstra(src)
					targets := make([]roadnet.VertexID, 0, 8)
					for i := 0; i < 8; i++ {
						targets = append(targets, roadnet.VertexID(rng.Intn(n)))
					}
					for _, bound := range []float64{math.Inf(1), 40, 5} {
						got := o.SeedDistances([]roadnet.Seed{{Vertex: src}}, targets, bound)
						fromCH := cho.SeedDistances([]roadnet.Seed{{Vertex: src}}, targets, bound)
						for i, tv := range targets {
							w := want[tv]
							if w > bound {
								w = math.Inf(1)
							}
							if !near(w, got[i]) {
								t.Fatalf("seed %d SeedDistances(src=%d, t=%d, bound=%v) = %v, want %v",
									seed, src, tv, bound, got[i], w)
							}
							if !near(fromCH[i], got[i]) {
								t.Fatalf("seed %d hl vs ch diverged at t=%d bound=%v: hl=%v ch=%v",
									seed, tv, bound, got[i], fromCH[i])
							}
						}
					}
				}
			}
		})
	}
}

// TestHLExactOnIntegerWeights pins bit-exact equality where float
// association order cannot interfere: on an integer-weight grid the label
// merges must reproduce Dijkstra bit for bit.
func TestHLExactOnIntegerWeights(t *testing.T) {
	const side = 8
	g := roadnet.NewGraph(side*side, 2*side*side)
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			g.AddVertex(geo.Pt(float64(x), float64(y)))
		}
	}
	id := func(x, y int) roadnet.VertexID { return roadnet.VertexID(y*side + x) }
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			if x+1 < side {
				g.AddEdge(id(x, y), id(x+1, y))
			}
			if y+1 < side {
				g.AddEdge(id(x, y), id(x, y+1))
			}
		}
	}
	o := Build(g)
	targets := make([]roadnet.VertexID, side*side)
	for v := range targets {
		targets[v] = roadnet.VertexID(v)
	}
	for src := 0; src < side*side; src += 5 {
		want := g.Dijkstra(roadnet.VertexID(src))
		got := o.SeedDistances([]roadnet.Seed{{Vertex: roadnet.VertexID(src)}}, targets, math.Inf(1))
		for v := range want {
			if want[v] != got[v] {
				t.Fatalf("grid SeedDistances(%d)[%d] = %v, want %v (must be bit-exact)", src, v, got[v], want[v])
			}
		}
	}
}

// TestGraphDelegation verifies the attachment-distance shapes agree with
// the plain searches when the HL oracle is attached, covering same-edge
// direct routes and unreachable candidates.
func TestGraphDelegation(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed*99991 + 3))
		connect := seed%2 == 0
		g := randomGraph(t, rng, 50, 1.0, connect)
		o := Build(g)

		randAttach := func() roadnet.Attach {
			return g.AttachAt(roadnet.EdgeID(rng.Intn(g.NumEdges())), rng.Float64())
		}
		a := randAttach()
		sameEdge := roadnet.Attach{Edge: a.Edge, T: rng.Float64()}
		cands := []roadnet.Attach{sameEdge, a}
		for i := 0; i < 12; i++ {
			cands = append(cands, randAttach())
		}

		g.SetDistanceOracle(nil)
		wantAttach := make([]float64, len(cands))
		for i, c := range cands {
			wantAttach[i] = g.DistAttach(a, c)
		}
		wantMany := g.DistAttachMany(a, cands)
		wantWithin := g.DistAttachWithin(a, 12, cands)

		g.SetDistanceOracle(o)
		for i, c := range cands {
			if got := g.DistAttach(a, c); !near(got, wantAttach[i]) {
				t.Fatalf("seed %d DistAttach cand %d = %v, want %v", seed, i, got, wantAttach[i])
			}
		}
		gotMany := g.DistAttachMany(a, cands)
		gotWithin := g.DistAttachWithin(a, 12, cands)
		for i := range cands {
			if !near(gotMany[i], wantMany[i]) {
				t.Fatalf("seed %d DistAttachMany[%d] = %v, want %v", seed, i, gotMany[i], wantMany[i])
			}
			if !near(gotWithin[i], wantWithin[i]) {
				t.Fatalf("seed %d DistAttachWithin[%d] = %v, want %v", seed, i, gotWithin[i], wantWithin[i])
			}
		}
	}
}

// TestLabelKernel exercises the batched label-merge kernel (AttachLabel +
// PrepareTargetLabels + LabelDists) against DistAttachWithin for every
// bound shape, including targets on the source's own edge and unreachable
// ones.
func TestLabelKernel(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed*7121 + 19))
		connect := seed%2 == 0
		g := randomGraph(t, rng, 60, 1.1, connect)
		g.SetDistanceOracle(Build(g))
		if !g.HasLabels() {
			t.Fatal("HL oracle must expose labels")
		}

		randAttach := func() roadnet.Attach {
			return g.AttachAt(roadnet.EdgeID(rng.Intn(g.NumEdges())), rng.Float64())
		}
		src := randAttach()
		atts := []roadnet.Attach{{Edge: src.Edge, T: rng.Float64()}, src}
		for i := 0; i < 15; i++ {
			atts = append(atts, randAttach())
		}
		tl := g.PrepareTargetLabels(atts)
		if tl == nil || tl.NumTargets() != len(atts) {
			t.Fatal("PrepareTargetLabels failed")
		}
		lbl := roadnet.AcquireLabel()
		if !g.AttachLabel(src, lbl) {
			t.Fatal("AttachLabel failed")
		}
		out := make([]float64, len(atts))
		for _, bound := range []float64{math.Inf(1), 30, 4} {
			want := g.DistAttachWithin(src, bound, atts)
			g.LabelDists(lbl, src, tl, bound, out)
			for i := range atts {
				if !near(want[i], out[i]) {
					t.Fatalf("seed %d bound %v LabelDists[%d] = %v, want %v", seed, bound, i, out[i], want[i])
				}
			}
		}
		roadnet.ReleaseLabel(lbl)
	}
}

// TestLabelAPIWithoutOracle pins the graceful degradation: with no oracle
// (or a non-label oracle) attached, the label API reports unsupported.
func TestLabelAPIWithoutOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(t, rng, 20, 1.0, true)
	if g.HasLabels() {
		t.Fatal("plain graph must not claim labels")
	}
	var lbl roadnet.HubLabel
	if g.AttachLabel(g.AttachAt(0, 0.5), &lbl) {
		t.Fatal("AttachLabel must fail without a label oracle")
	}
	if tl := g.PrepareTargetLabels([]roadnet.Attach{g.AttachAt(0, 0.5)}); tl != nil {
		t.Fatal("PrepareTargetLabels must return nil without a label oracle")
	}
	g.SetDistanceOracle(ch.Build(g)) // CH has no labels either
	if g.HasLabels() {
		t.Fatal("CH oracle must not claim labels")
	}
}

// TestHLSurvivesMutation ensures structural edits keep an attached HL
// oracle serving through the delta-overlay, while the label fast paths
// (which assume frozen topology) switch themselves off until the next
// re-contraction.
func TestHLSurvivesMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randomGraph(t, rng, 20, 1.0, true)
	g.SetDistanceOracle(Build(g))
	if g.Oracle() == nil {
		t.Fatal("oracle not attached")
	}
	if !g.HasLabels() {
		t.Fatal("HL oracle must expose labels pre-mutation")
	}
	v := g.AddVertex(geo.Pt(200, 200))
	if g.Oracle() == nil {
		t.Fatal("AddVertex must keep the oracle attached via the overlay")
	}
	if g.HasLabels() {
		t.Fatal("label fast path must deactivate once the overlay wraps the oracle")
	}
	g.AddEdge(v, 0)
	d := g.Dijkstra(0)
	want := g.Vertex(0).Dist(g.Vertex(v))
	if d[v] > want {
		t.Fatalf("composed distance to new vertex %v, want <= direct edge %v", d[v], want)
	}
}

// TestLabelStats sanity-checks the label statistics accessors.
func TestLabelStats(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(t, rng, 40, 1.5, true)
	o := Build(g)
	if o.NumVertices() != 40 {
		t.Fatalf("NumVertices = %d", o.NumVertices())
	}
	if o.NumLabelEntries() < 40 {
		t.Fatalf("labels must at least contain the self entry, got %d total", o.NumLabelEntries())
	}
	if o.AvgLabelSize() < 1 || o.MaxLabelSize() < 1 {
		t.Fatalf("degenerate label stats: avg=%v max=%d", o.AvgLabelSize(), o.MaxLabelSize())
	}
	if o.CH() == nil {
		t.Fatal("CH accessor must return the source hierarchy")
	}
}
