// Package hl implements an exact hub-labeling distance oracle extracted
// from a contraction hierarchy (Abraham et al., "A Hub-Based Labeling
// Algorithm for Shortest Paths in Road Networks" — the CHHL construction).
//
// Every vertex gets a label: a short sorted list of (hub, distance) pairs.
// The defining property (a 2-hop cover) is that for any pair (s, t) the
// labels of s and t share the apex of a shortest s-t path, with exact
// distances on both sides. A distance query is therefore a linear merge of
// two sorted arrays — min over common hubs h of d_s(h) + d_t(h) — with no
// priority queue, no scratch graph, and no per-query search state at all.
//
// Construction processes vertices in descending contraction rank. The
// label of v is seeded with (v, 0) and the min-merge of every up-neighbour
// w's finished label shifted by the arc weight w(v, w); the CH up-down path
// property guarantees this candidate set contains the apex of every
// shortest path leaving v with its exact distance. Candidates are then
// pruned with the bootstrap rule: entry (h, d) is dropped when a hub-label
// query between the candidate label and the finished label of h certifies
// a distance strictly below d. Pruned entries are provably non-optimal
// (the certified distance lower-bounds nothing — it IS a path length — so
// q < d implies d > dist(v, h)), and exact apex entries can never be
// pruned (q >= dist(v, h) = d), which keeps the cover property intact.
// docs/ALGORITHMS.md spells out the full argument.
//
// # Memory layout (rank space)
//
// The store renumbers vertices into rank space: vertex v becomes the rank
// position p = n-1-rank(v), so the highest-ranked vertex is 0. Hubs inside
// labels are stored as rank positions, and the label CSR itself is laid
// out in rank-position order. Two properties follow:
//
//   - Hub ids inside a label are ≤ the owner's position, with the owner's
//     own self-entry exactly at the end. Globally important hubs (small
//     ids, shared by almost every label) cluster at label fronts, so the
//     two-pointer merge finds its common hubs early and label prefixes
//     stay hot in cache across queries.
//   - Construction runs in CSR order. Vertex p's candidates are built from
//     already-finished labels at positions < p, read straight back out of
//     the growing CSR — there is no per-vertex [][]entry intermediate, so
//     peak construction memory is the final store plus one candidate
//     buffer. That is what lets a ~10⁸-entry store at a million vertices
//     build without doubling its footprint.
//
// Offsets are int64: 1M vertices × ~100-entry labels is within a factor of
// 20 of an int32 offset overflow, and the codec guards the conversion
// explicitly instead of truncating (see codec.go).
//
// The oracle keeps the CH it was built from: one-to-all scans still run
// the CH's PHAST sweep (a label-based one-to-all would cost Σ|label| per
// query and lose to PHAST's linear pass), while point-to-point and
// many-to-many shapes use the labels.
package hl

import (
	"math"
	"slices"
	"sort"
	"sync"

	"gpssn/internal/roadnet"
	"gpssn/internal/roadnet/ch"
)

// Oracle is an immutable hub labeling over a road-network snapshot. Build
// once, then query concurrently; queries allocate nothing beyond the
// pooled merge buffers.
type Oracle struct {
	cho *ch.Oracle
	n   int

	// Labels in CSR form, laid out and numbered in rank space: the label
	// of the vertex at rank position p occupies [off[p], off[p+1]) in
	// hub/dist, sorted by ascending rank-space hub id (so its self-entry,
	// id p, is last). pos maps a graph vertex id to its rank position.
	pos  []int32
	off  []int64
	hub  []int32
	dist []float64

	maxLabel int
	pool     sync.Pool // *scratch
}

// Build contracts g and extracts hub labels from the hierarchy.
func Build(g *roadnet.Graph) *Oracle { return FromCH(ch.Build(g)) }

// FromCH extracts hub labels from an already-built contraction hierarchy.
// Construction streams: vertices are processed in rank-position order and
// their pruned labels appended directly to the CSR, which the pruning
// lookups of later vertices then read back — no per-vertex slice table.
func FromCH(c *ch.Oracle) *Oracle {
	n := c.NumVertices()
	o := &Oracle{cho: c, n: n}
	byRank := c.VerticesByRankDesc()
	o.pos = make([]int32, n)
	for p, v := range byRank {
		o.pos[v] = int32(p)
	}
	o.off = make([]int64, n+1)
	o.hub = make([]int32, 0, 8*n)
	o.dist = make([]float64, 0, 8*n)
	var cand []labEntry
	for p, v := range byRank {
		cand = cand[:0]
		to, w := c.UpArcs(v)
		for k := range to {
			hH, hD := o.labelAt(o.pos[to[k]])
			for i, h := range hH {
				cand = append(cand, labEntry{hub: h, d: hD[i] + w[k]})
			}
		}
		sort.Slice(cand, func(i, j int) bool {
			if cand[i].hub != cand[j].hub {
				return cand[i].hub < cand[j].hub
			}
			return cand[i].d < cand[j].d
		})
		// Collapse duplicate hubs to their minimum distance (in place; the
		// sort put the minimum first in each run), then append the
		// self-entry: every candidate hub comes from a finished label at a
		// position < p, so id p is strictly the largest and lands last.
		dedup := cand[:0]
		for _, e := range cand {
			if len(dedup) > 0 && dedup[len(dedup)-1].hub == e.hub {
				continue
			}
			dedup = append(dedup, e)
		}
		dedup = append(dedup, labEntry{hub: int32(p), d: 0})
		// Bootstrap pruning: drop entries a finished higher label already
		// certifies a strictly shorter path for, appending survivors
		// straight onto the CSR.
		for _, e := range dedup {
			if e.hub != int32(p) {
				hH, hD := o.labelAt(e.hub)
				if prunable(dedup, hH, hD, e.d) {
					continue
				}
			}
			o.hub = append(o.hub, e.hub)
			o.dist = append(o.dist, e.d)
		}
		o.off[p+1] = int64(len(o.hub))
		if size := int(o.off[p+1] - o.off[p]); size > o.maxLabel {
			o.maxLabel = size
		}
		cand = dedup
	}
	return o
}

type labEntry struct {
	hub int32
	d   float64
}

// prunable reports whether the (sorted) candidate label and the finished
// label of a hub certify a distance strictly below d. It early-exits on
// the first witness, which is what keeps construction near-linear in the
// label sizes in practice.
func prunable(cand []labEntry, hH []int32, hD []float64, d float64) bool {
	i, j := 0, 0
	for i < len(cand) && j < len(hH) {
		switch {
		case cand[i].hub < hH[j]:
			i++
		case cand[i].hub > hH[j]:
			j++
		default:
			if cand[i].d+hD[j] < d {
				return true
			}
			i++
			j++
		}
	}
	return false
}

// CH returns the contraction hierarchy the labels were extracted from.
func (o *Oracle) CH() *ch.Oracle { return o.cho }

// NumVertices reports the size of the covered graph snapshot.
func (o *Oracle) NumVertices() int { return o.n }

// NumLabelEntries reports the total (hub, dist) pair count across labels.
func (o *Oracle) NumLabelEntries() int { return len(o.hub) }

// AvgLabelSize reports the mean label length.
func (o *Oracle) AvgLabelSize() float64 {
	if o.n == 0 {
		return 0
	}
	return float64(len(o.hub)) / float64(o.n)
}

// MaxLabelSize reports the longest label.
func (o *Oracle) MaxLabelSize() int { return o.maxLabel }

// MemoryBytes reports the resident size of the label store (offsets,
// position map, hubs, distances) for capacity telemetry.
func (o *Oracle) MemoryBytes() int64 {
	return int64(len(o.off))*8 + int64(len(o.pos))*4 + int64(len(o.hub))*4 + int64(len(o.dist))*8
}

// label returns vertex v's entries as read-only subslices.
func (o *Oracle) label(v int32) (hubs []int32, dist []float64) {
	return o.labelAt(o.pos[v])
}

// labelAt returns the entries of the vertex at rank position p.
func (o *Oracle) labelAt(p int32) (hubs []int32, dist []float64) {
	lo, hi := o.off[p], o.off[p+1]
	return o.hub[lo:hi], o.dist[lo:hi]
}

// scratch holds the pooled per-query merge buffers.
type scratch struct {
	src roadnet.HubLabel
	tmp roadnet.HubLabel
	ord []int64 // (rank position << 32 | target index) sort keys
}

func (o *Oracle) getScratch() *scratch {
	sc, _ := o.pool.Get().(*scratch)
	if sc == nil {
		sc = &scratch{}
	}
	return sc
}

func (o *Oracle) putScratch(sc *scratch) {
	sc.src.Reset()
	sc.tmp.Reset()
	o.pool.Put(sc)
}

// SeedLabel implements roadnet.LabelOracle: the merged label of the seed
// set, built by repeated two-pointer min-merges of the seeds' vertex
// labels shifted by their initial distances.
func (o *Oracle) SeedLabel(seeds []roadnet.Seed, dst *roadnet.HubLabel) {
	dst.Reset()
	sc := o.getScratch()
	o.seedLabelInto(seeds, dst, &sc.tmp)
	o.putScratch(sc)
}

// seedLabelInto merges the seeds' labels into dst using tmp as the swap
// buffer. dst must be empty.
func (o *Oracle) seedLabelInto(seeds []roadnet.Seed, dst, tmp *roadnet.HubLabel) {
	for _, s := range seeds {
		hubs, dist := o.label(int32(s.Vertex))
		if len(dst.Hubs) == 0 {
			for i, h := range hubs {
				dst.Hubs = append(dst.Hubs, h)
				dst.Dist = append(dst.Dist, dist[i]+s.Dist)
			}
			continue
		}
		tmp.Reset()
		i, j := 0, 0
		for i < len(dst.Hubs) || j < len(hubs) {
			switch {
			case j == len(hubs) || (i < len(dst.Hubs) && dst.Hubs[i] < hubs[j]):
				tmp.Hubs = append(tmp.Hubs, dst.Hubs[i])
				tmp.Dist = append(tmp.Dist, dst.Dist[i])
				i++
			case i == len(dst.Hubs) || hubs[j] < dst.Hubs[i]:
				tmp.Hubs = append(tmp.Hubs, hubs[j])
				tmp.Dist = append(tmp.Dist, dist[j]+s.Dist)
				j++
			default:
				d := dist[j] + s.Dist
				if dst.Dist[i] < d {
					d = dst.Dist[i]
				}
				tmp.Hubs = append(tmp.Hubs, dst.Hubs[i])
				tmp.Dist = append(tmp.Dist, d)
				i++
				j++
			}
		}
		*dst, *tmp = *tmp, *dst
	}
}

// mergeDist is the hub-label distance query: min over common hubs of the
// two labels' distance sums, +Inf when the labels share no hub (the pair
// is disconnected). The iteration is structured around the hub arrays
// alone — four-byte ids, sixteen per cache line — touching the distance
// arrays only on an id match, with the mismatch branches first because
// matches are the rare case in a two-pointer label merge.
func mergeDist(aH []int32, aD []float64, bH []int32, bD []float64) float64 {
	best := math.Inf(1)
	i, j := 0, 0
	for i < len(aH) && j < len(bH) {
		switch {
		case aH[i] < bH[j]:
			i++
		case aH[i] > bH[j]:
			j++
		default:
			// min() compiles branchless (MINSD): in rank space common hubs
			// arrive most-important-first, so the running minimum improves
			// on most matches and a conditional update would mispredict.
			best = min(best, aD[i]+bD[j])
			i++
			j++
		}
	}
	return best
}

// SeedDistances implements roadnet.DistanceOracle: one merged source label,
// then one two-pointer merge per target. Distances beyond bound are
// reported as +Inf; distances exactly at the bound stay exact.
func (o *Oracle) SeedDistances(sources []roadnet.Seed, targets []roadnet.VertexID, bound float64) []float64 {
	return o.seedDistances(sources, targets, bound, nil)
}

// SeedDistancesCk implements roadnet.CheckedOracle: merged label entries
// are charged to ck in batches and the per-target merge loop stops once it
// trips, at which point the result is unspecified and the caller must
// discard it (ck.Stopped()).
func (o *Oracle) SeedDistancesCk(sources []roadnet.Seed, targets []roadnet.VertexID, bound float64, ck *roadnet.Checkpoint) []float64 {
	return o.seedDistances(sources, targets, bound, ck)
}

// blockTargets is the batch size past which seedDistances re-orders its
// target visits by rank position: the CSR is laid out in rank order, so a
// rank-ordered walk reads the label store sequentially, and duplicate
// target vertices (attachment endpoints repeat heavily) become adjacent
// and merge once. Below it the permutation costs more than it saves.
const blockTargets = 8

func (o *Oracle) seedDistances(sources []roadnet.Seed, targets []roadnet.VertexID, bound float64, ck *roadnet.Checkpoint) []float64 {
	inf := math.Inf(1)
	res := make([]float64, len(targets))
	for i := range res {
		res[i] = inf
	}
	if o.n == 0 || len(targets) == 0 || len(sources) == 0 {
		return res
	}
	sc := o.getScratch()
	o.seedLabelInto(sources, &sc.src, &sc.tmp)
	srcH, srcD := sc.src.Hubs, sc.src.Dist

	// Visit targets in rank-position order when the batch is large enough
	// to pay for the permutation: the label CSR is contiguous in that
	// order, and equal positions (duplicate vertices) land adjacent so the
	// merge runs once per distinct vertex. Work is still charged per
	// target — exactly what the unordered loop would spend — so budget
	// accounting is independent of the visit order.
	ordered := len(targets) >= blockTargets
	if ordered {
		if cap(sc.ord) < len(targets) {
			sc.ord = make([]int64, len(targets))
		}
		sc.ord = sc.ord[:len(targets)]
		for i, t := range targets {
			sc.ord[i] = int64(o.pos[t])<<32 | int64(uint32(i))
		}
		slices.Sort(sc.ord)
	}
	spent := 0
	prevPos := int32(-1)
	prevD := inf
	for k := range targets {
		i := k
		var tH []int32
		var tD []float64
		var p int32
		if ordered {
			key := sc.ord[k]
			p = int32(key >> 32)
			i = int(uint32(key))
			tH, tD = o.labelAt(p)
		} else {
			p = o.pos[targets[k]]
			tH, tD = o.labelAt(p)
		}
		if ck != nil {
			if spent += len(tH) + len(srcH); spent >= 1024 {
				if ck.Spend(spent) {
					break
				}
				spent = 0
			}
		}
		if ordered && p == prevPos {
			if prevD <= bound {
				res[i] = prevD
			}
			continue
		}
		d := mergeDist(srcH, srcD, tH, tD)
		prevPos, prevD = p, d
		if d <= bound {
			res[i] = d
		}
	}
	ck.Spend(spent)
	o.putScratch(sc)
	return res
}

// OneToAll implements roadnet.DistanceOracle by delegating to the CH's
// PHAST sweep: a label-based one-to-all would pay Σ|label(v)| merge work
// per query, strictly worse than PHAST's single linear pass.
func (o *Oracle) OneToAll(sources []roadnet.Seed) []float64 {
	return o.cho.OneToAll(sources)
}

// OneToAllCk implements roadnet.CheckedOracle by delegating to the CH's
// checked PHAST sweep.
func (o *Oracle) OneToAllCk(sources []roadnet.Seed, ck *roadnet.Checkpoint) []float64 {
	return o.cho.OneToAllCk(sources, ck)
}

// OneToAllBatchCk implements roadnet.BatchOracle by delegating to the CH's
// folded PHAST sweep.
func (o *Oracle) OneToAllBatchCk(sources [][]roadnet.Seed, ck *roadnet.Checkpoint) [][]float64 {
	return o.cho.OneToAllBatchCk(sources, ck)
}

var (
	_ roadnet.LabelOracle   = (*Oracle)(nil)
	_ roadnet.CheckedOracle = (*Oracle)(nil)
)
