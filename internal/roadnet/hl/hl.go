// Package hl implements an exact hub-labeling distance oracle extracted
// from a contraction hierarchy (Abraham et al., "A Hub-Based Labeling
// Algorithm for Shortest Paths in Road Networks" — the CHHL construction).
//
// Every vertex gets a label: a short sorted list of (hub, distance) pairs.
// The defining property (a 2-hop cover) is that for any pair (s, t) the
// labels of s and t share the apex of a shortest s-t path, with exact
// distances on both sides. A distance query is therefore a linear merge of
// two sorted arrays — min over common hubs h of d_s(h) + d_t(h) — with no
// priority queue, no scratch graph, and no per-query search state at all.
//
// Construction processes vertices in descending contraction rank. The
// label of v is seeded with (v, 0) and the min-merge of every up-neighbour
// w's finished label shifted by the arc weight w(v, w); the CH up-down path
// property guarantees this candidate set contains the apex of every
// shortest path leaving v with its exact distance. Candidates are then
// pruned with the bootstrap rule: entry (h, d) is dropped when a hub-label
// query between the candidate label and the finished label of h certifies
// a distance strictly below d. Pruned entries are provably non-optimal
// (the certified distance lower-bounds nothing — it IS a path length — so
// q < d implies d > dist(v, h)), and exact apex entries can never be
// pruned (q >= dist(v, h) = d), which keeps the cover property intact.
// docs/ALGORITHMS.md spells out the full argument.
//
// The oracle keeps the CH it was built from: one-to-all scans still run
// the CH's PHAST sweep (a label-based one-to-all would cost Σ|label| per
// query and lose to PHAST's linear pass), while point-to-point and
// many-to-many shapes use the labels.
package hl

import (
	"math"
	"sort"
	"sync"

	"gpssn/internal/roadnet"
	"gpssn/internal/roadnet/ch"
)

// Oracle is an immutable hub labeling over a road-network snapshot. Build
// once, then query concurrently; queries allocate nothing beyond the
// pooled merge buffers.
type Oracle struct {
	cho *ch.Oracle
	n   int

	// Per-vertex labels in CSR form: vertex v's (hub, dist) entries occupy
	// [off[v], off[v+1]) in hub/dist, sorted by ascending hub id.
	off  []int32
	hub  []int32
	dist []float64

	maxLabel int
	pool     sync.Pool // *scratch
}

// Build contracts g and extracts hub labels from the hierarchy.
func Build(g *roadnet.Graph) *Oracle { return FromCH(ch.Build(g)) }

// FromCH extracts hub labels from an already-built contraction hierarchy.
func FromCH(c *ch.Oracle) *Oracle {
	n := c.NumVertices()
	o := &Oracle{cho: c, n: n}
	labels := make([][]labEntry, n)
	var cand []labEntry
	for _, v := range c.VerticesByRankDesc() {
		cand = append(cand[:0], labEntry{hub: v, d: 0})
		to, w := c.UpArcs(v)
		for k := range to {
			for _, e := range labels[to[k]] {
				cand = append(cand, labEntry{hub: e.hub, d: e.d + w[k]})
			}
		}
		sort.Slice(cand, func(i, j int) bool {
			if cand[i].hub != cand[j].hub {
				return cand[i].hub < cand[j].hub
			}
			return cand[i].d < cand[j].d
		})
		// Collapse duplicate hubs to their minimum distance (in place; the
		// sort put the minimum first in each run).
		dedup := cand[:0]
		for _, e := range cand {
			if len(dedup) > 0 && dedup[len(dedup)-1].hub == e.hub {
				continue
			}
			dedup = append(dedup, e)
		}
		// Bootstrap pruning: drop entries a finished higher label already
		// certifies a strictly shorter path for.
		kept := make([]labEntry, 0, len(dedup))
		for _, e := range dedup {
			if e.hub != v && prunable(dedup, labels[e.hub], e.d) {
				continue
			}
			kept = append(kept, e)
		}
		labels[v] = kept
		cand = dedup
	}

	o.off = make([]int32, n+1)
	total := 0
	for v := 0; v < n; v++ {
		total += len(labels[v])
		if len(labels[v]) > o.maxLabel {
			o.maxLabel = len(labels[v])
		}
	}
	o.hub = make([]int32, total)
	o.dist = make([]float64, total)
	pos := int32(0)
	for v := 0; v < n; v++ {
		o.off[v] = pos
		for _, e := range labels[v] {
			o.hub[pos] = e.hub
			o.dist[pos] = e.d
			pos++
		}
	}
	o.off[n] = pos
	return o
}

type labEntry struct {
	hub int32
	d   float64
}

// prunable reports whether the (sorted) candidate label and the finished
// label of a hub certify a distance strictly below d. It early-exits on
// the first witness, which is what keeps construction near-linear in the
// label sizes in practice.
func prunable(cand []labEntry, hubLabel []labEntry, d float64) bool {
	i, j := 0, 0
	for i < len(cand) && j < len(hubLabel) {
		switch {
		case cand[i].hub < hubLabel[j].hub:
			i++
		case cand[i].hub > hubLabel[j].hub:
			j++
		default:
			if cand[i].d+hubLabel[j].d < d {
				return true
			}
			i++
			j++
		}
	}
	return false
}

// CH returns the contraction hierarchy the labels were extracted from.
func (o *Oracle) CH() *ch.Oracle { return o.cho }

// NumVertices reports the size of the covered graph snapshot.
func (o *Oracle) NumVertices() int { return o.n }

// NumLabelEntries reports the total (hub, dist) pair count across labels.
func (o *Oracle) NumLabelEntries() int { return len(o.hub) }

// AvgLabelSize reports the mean label length.
func (o *Oracle) AvgLabelSize() float64 {
	if o.n == 0 {
		return 0
	}
	return float64(len(o.hub)) / float64(o.n)
}

// MaxLabelSize reports the longest label.
func (o *Oracle) MaxLabelSize() int { return o.maxLabel }

// label returns vertex v's entries as read-only subslices.
func (o *Oracle) label(v int32) (hubs []int32, dist []float64) {
	return o.hub[o.off[v]:o.off[v+1]], o.dist[o.off[v]:o.off[v+1]]
}

// scratch holds the pooled per-query merge buffers.
type scratch struct {
	src roadnet.HubLabel
	tmp roadnet.HubLabel
}

func (o *Oracle) getScratch() *scratch {
	sc, _ := o.pool.Get().(*scratch)
	if sc == nil {
		sc = &scratch{}
	}
	return sc
}

func (o *Oracle) putScratch(sc *scratch) {
	sc.src.Reset()
	sc.tmp.Reset()
	o.pool.Put(sc)
}

// SeedLabel implements roadnet.LabelOracle: the merged label of the seed
// set, built by repeated two-pointer min-merges of the seeds' vertex
// labels shifted by their initial distances.
func (o *Oracle) SeedLabel(seeds []roadnet.Seed, dst *roadnet.HubLabel) {
	dst.Reset()
	sc := o.getScratch()
	o.seedLabelInto(seeds, dst, &sc.tmp)
	o.putScratch(sc)
}

// seedLabelInto merges the seeds' labels into dst using tmp as the swap
// buffer. dst must be empty.
func (o *Oracle) seedLabelInto(seeds []roadnet.Seed, dst, tmp *roadnet.HubLabel) {
	for _, s := range seeds {
		hubs, dist := o.label(int32(s.Vertex))
		if len(dst.Hubs) == 0 {
			for i, h := range hubs {
				dst.Hubs = append(dst.Hubs, h)
				dst.Dist = append(dst.Dist, dist[i]+s.Dist)
			}
			continue
		}
		tmp.Reset()
		i, j := 0, 0
		for i < len(dst.Hubs) || j < len(hubs) {
			switch {
			case j == len(hubs) || (i < len(dst.Hubs) && dst.Hubs[i] < hubs[j]):
				tmp.Hubs = append(tmp.Hubs, dst.Hubs[i])
				tmp.Dist = append(tmp.Dist, dst.Dist[i])
				i++
			case i == len(dst.Hubs) || hubs[j] < dst.Hubs[i]:
				tmp.Hubs = append(tmp.Hubs, hubs[j])
				tmp.Dist = append(tmp.Dist, dist[j]+s.Dist)
				j++
			default:
				d := dist[j] + s.Dist
				if dst.Dist[i] < d {
					d = dst.Dist[i]
				}
				tmp.Hubs = append(tmp.Hubs, dst.Hubs[i])
				tmp.Dist = append(tmp.Dist, d)
				i++
				j++
			}
		}
		*dst, *tmp = *tmp, *dst
	}
}

// mergeDist is the hub-label distance query: min over common hubs of the
// two labels' distance sums, +Inf when the labels share no hub (the pair
// is disconnected).
func mergeDist(aH []int32, aD []float64, bH []int32, bD []float64) float64 {
	best := math.Inf(1)
	i, j := 0, 0
	for i < len(aH) && j < len(bH) {
		switch {
		case aH[i] < bH[j]:
			i++
		case aH[i] > bH[j]:
			j++
		default:
			if d := aD[i] + bD[j]; d < best {
				best = d
			}
			i++
			j++
		}
	}
	return best
}

// SeedDistances implements roadnet.DistanceOracle: one merged source label,
// then one two-pointer merge per target. Distances beyond bound are
// reported as +Inf; distances exactly at the bound stay exact.
func (o *Oracle) SeedDistances(sources []roadnet.Seed, targets []roadnet.VertexID, bound float64) []float64 {
	return o.seedDistances(sources, targets, bound, nil)
}

// SeedDistancesCk implements roadnet.CheckedOracle: merged label entries
// are charged to ck in batches and the per-target merge loop stops once it
// trips, at which point the result is unspecified and the caller must
// discard it (ck.Stopped()).
func (o *Oracle) SeedDistancesCk(sources []roadnet.Seed, targets []roadnet.VertexID, bound float64, ck *roadnet.Checkpoint) []float64 {
	return o.seedDistances(sources, targets, bound, ck)
}

func (o *Oracle) seedDistances(sources []roadnet.Seed, targets []roadnet.VertexID, bound float64, ck *roadnet.Checkpoint) []float64 {
	inf := math.Inf(1)
	res := make([]float64, len(targets))
	for i := range res {
		res[i] = inf
	}
	if o.n == 0 || len(targets) == 0 || len(sources) == 0 {
		return res
	}
	sc := o.getScratch()
	o.seedLabelInto(sources, &sc.src, &sc.tmp)
	spent := 0
	for i, t := range targets {
		tH, tD := o.label(int32(t))
		if ck != nil {
			if spent += len(tH) + len(sc.src.Hubs); spent >= 1024 {
				if ck.Spend(spent) {
					break
				}
				spent = 0
			}
		}
		if d := mergeDist(sc.src.Hubs, sc.src.Dist, tH, tD); d <= bound {
			res[i] = d
		}
	}
	ck.Spend(spent)
	o.putScratch(sc)
	return res
}

// OneToAll implements roadnet.DistanceOracle by delegating to the CH's
// PHAST sweep: a label-based one-to-all would pay Σ|label(v)| merge work
// per query, strictly worse than PHAST's single linear pass.
func (o *Oracle) OneToAll(sources []roadnet.Seed) []float64 {
	return o.cho.OneToAll(sources)
}

// OneToAllCk implements roadnet.CheckedOracle by delegating to the CH's
// checked PHAST sweep.
func (o *Oracle) OneToAllCk(sources []roadnet.Seed, ck *roadnet.Checkpoint) []float64 {
	return o.cho.OneToAllCk(sources, ck)
}

var (
	_ roadnet.LabelOracle   = (*Oracle)(nil)
	_ roadnet.CheckedOracle = (*Oracle)(nil)
)
