package hl

import (
	"fmt"
	"math"

	"gpssn/internal/roadnet/ch"
	"gpssn/internal/snap"
)

// Encode serializes the labels into a snapshot section payload. The CH the
// labels were extracted from is serialized separately (the snapshot keeps
// it as its own checksummed section), so the payload is just the
// rank-space CSR label store: the position map is derived from the CH's
// rank array on decode, and the offsets are int64 on the wire (uint64
// length prefix) so an entry count past int32 round-trips without
// truncation. Slice counts that cannot fit their length prefix stick a
// snap.ErrCountOverflow on the encoder instead of writing a wrapped
// prefix; the snapshot writer checks Enc.Err before framing the section.
func (o *Oracle) Encode(e *snap.Enc) {
	e.U32(uint32(o.n))
	e.I64s(o.off)
	e.I32s(o.hub)
	e.F64s(o.dist)
}

// Decode reconstructs a label oracle over an already-restored contraction
// hierarchy, validating the invariants the two-pointer merges rely on:
// offsets monotone with a total that fits the platform, hubs strictly
// ascending rank positions within each label and never above the owner's
// own position, every label closed by its (p, 0) self-entry, and distances
// finite and non-negative. The 2-hop cover property itself is not
// re-provable from the bytes alone — but a label store that passes these
// checks and was written by Encode is bit-identical to the saved oracle,
// and any tampering that survives them is caught by the section CRC first.
// Counts a 32-bit platform cannot index fail with snap.ErrCountOverflow
// (sticky on the decoder), never a silent truncation.
func Decode(d *snap.Dec, c *ch.Oracle) (*Oracle, error) {
	n := int(int32(d.U32()))
	off := d.I64s()
	hub := d.I32s()
	dist := d.F64s()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if c == nil {
		return nil, fmt.Errorf("hl: labels need their contraction hierarchy")
	}
	if n < 0 || n != c.NumVertices() {
		return nil, fmt.Errorf("hl: label store covers %d vertices, CH has %d", n, c.NumVertices())
	}
	if len(off) != n+1 {
		return nil, fmt.Errorf("hl: offset array has %d entries, want %d", len(off), n+1)
	}
	if len(off) == 0 || off[0] != 0 {
		return nil, fmt.Errorf("hl: offset array must start at 0")
	}
	for i := 1; i <= n; i++ {
		if off[i] < off[i-1] {
			return nil, fmt.Errorf("hl: offset array not monotone at %d", i)
		}
	}
	if total := off[n]; total > int64(math.MaxInt) {
		return nil, fmt.Errorf("hl: label store holds %d entries: %w", total, snap.ErrCountOverflow)
	}
	if int(off[n]) != len(hub) || len(hub) != len(dist) {
		return nil, fmt.Errorf("hl: label arrays inconsistent (off=%d hub=%d dist=%d)", off[n], len(hub), len(dist))
	}
	o := &Oracle{cho: c, n: n, off: off, hub: hub, dist: dist}
	o.pos = make([]int32, n)
	for p, v := range c.VerticesByRankDesc() {
		o.pos[v] = int32(p)
	}
	for p := 0; p < n; p++ {
		lo, hi := off[p], off[p+1]
		if lo == hi {
			return nil, fmt.Errorf("hl: rank position %d has an empty label (self-entry missing)", p)
		}
		for i := lo; i < hi; i++ {
			h := hub[i]
			if h < 0 || int(h) > p {
				return nil, fmt.Errorf("hl: rank position %d hub %d outside rank space [0,%d]", p, h, p)
			}
			if i > lo && hub[i-1] >= h {
				return nil, fmt.Errorf("hl: rank position %d label not strictly ascending at entry %d", p, i-lo)
			}
			if dd := dist[i]; math.IsNaN(dd) || math.IsInf(dd, 0) || dd < 0 {
				return nil, fmt.Errorf("hl: rank position %d hub %d distance %v not finite non-negative", p, h, dd)
			}
		}
		if int(hub[hi-1]) != p {
			return nil, fmt.Errorf("hl: rank position %d label lacks its self-entry", p)
		}
		if dist[hi-1] != 0 {
			return nil, fmt.Errorf("hl: rank position %d self-entry distance %v, want 0", p, dist[hi-1])
		}
		if size := int(hi - lo); size > o.maxLabel {
			o.maxLabel = size
		}
	}
	return o, nil
}
