package hl

import (
	"fmt"
	"math"

	"gpssn/internal/roadnet/ch"
	"gpssn/internal/snap"
)

// Encode serializes the labels into a snapshot section payload. The CH the
// labels were extracted from is serialized separately (the snapshot keeps
// it as its own checksummed section), so the payload is just the CSR label
// store.
func (o *Oracle) Encode(e *snap.Enc) {
	e.U32(uint32(o.n))
	e.I32s(o.off)
	e.I32s(o.hub)
	e.F64s(o.dist)
}

// Decode reconstructs a label oracle over an already-restored contraction
// hierarchy, validating the invariants the two-pointer merges rely on:
// offsets monotone, hubs in range and strictly ascending within each
// label, every vertex's own (v, 0) self-entry present, and distances
// finite and non-negative. The 2-hop cover property itself is not
// re-provable from the bytes alone — but a label store that passes these
// checks and was written by Encode is bit-identical to the saved oracle,
// and any tampering that survives them is caught by the section CRC first.
func Decode(d *snap.Dec, c *ch.Oracle) (*Oracle, error) {
	n := int(int32(d.U32()))
	off := d.I32s()
	hub := d.I32s()
	dist := d.F64s()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if c == nil {
		return nil, fmt.Errorf("hl: labels need their contraction hierarchy")
	}
	if n < 0 || n != c.NumVertices() {
		return nil, fmt.Errorf("hl: label store covers %d vertices, CH has %d", n, c.NumVertices())
	}
	if len(off) != n+1 {
		return nil, fmt.Errorf("hl: offset array has %d entries, want %d", len(off), n+1)
	}
	if n >= 0 && (len(off) == 0 || off[0] != 0) {
		return nil, fmt.Errorf("hl: offset array must start at 0")
	}
	for i := 1; i <= n; i++ {
		if off[i] < off[i-1] {
			return nil, fmt.Errorf("hl: offset array not monotone at %d", i)
		}
	}
	if int(off[n]) != len(hub) || len(hub) != len(dist) {
		return nil, fmt.Errorf("hl: label arrays inconsistent (off=%d hub=%d dist=%d)", off[n], len(hub), len(dist))
	}
	o := &Oracle{cho: c, n: n, off: off, hub: hub, dist: dist}
	for v := 0; v < n; v++ {
		self := false
		for i := off[v]; i < off[v+1]; i++ {
			h := hub[i]
			if h < 0 || int(h) >= n {
				return nil, fmt.Errorf("hl: vertex %d hub %d out of range [0,%d)", v, h, n)
			}
			if i > off[v] && hub[i-1] >= h {
				return nil, fmt.Errorf("hl: vertex %d label not strictly ascending at entry %d", v, i-off[v])
			}
			if dd := dist[i]; math.IsNaN(dd) || math.IsInf(dd, 0) || dd < 0 {
				return nil, fmt.Errorf("hl: vertex %d hub %d distance %v not finite non-negative", v, h, dd)
			}
			if int(h) == v {
				if dist[i] != 0 {
					return nil, fmt.Errorf("hl: vertex %d self-entry distance %v, want 0", v, dist[i])
				}
				self = true
			}
		}
		if size := int(off[v+1] - off[v]); size > o.maxLabel {
			o.maxLabel = size
		}
		if !self && off[v+1] > off[v] {
			return nil, fmt.Errorf("hl: vertex %d label lacks its self-entry", v)
		}
	}
	return o, nil
}
