package hl

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"gpssn/internal/roadnet"
	"gpssn/internal/roadnet/ch"
	"gpssn/internal/snap"
)

func encodeOracle(t *testing.T, o *Oracle) []byte {
	t.Helper()
	var e snap.Enc
	o.Encode(&e)
	if err := e.Err(); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return e.B
}

// TestCodecRoundTrip: the decoded label store answers bit-identically —
// same CSR arrays, same merges, same distances.
func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	g := randomGraph(t, rng, 120, 1.5, true)
	o := Build(g)
	got, err := Decode(&snap.Dec{B: encodeOracle(t, o)}, o.CH())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i := 0; i < 50; i++ {
		s := roadnet.VertexID(rng.Intn(g.NumVertices()))
		d := roadnet.VertexID(rng.Intn(g.NumVertices()))
		seeds := []roadnet.Seed{{Vertex: s, Dist: 0}}
		a := o.SeedDistances(seeds, []roadnet.VertexID{d}, 0)[0]
		b := got.SeedDistances(seeds, []roadnet.VertexID{d}, 0)[0]
		if a != b {
			t.Fatalf("dist(%d,%d): decoded %v != original %v", s, d, b, a)
		}
	}
	if got.MaxLabelSize() != o.MaxLabelSize() || got.NumLabelEntries() != o.NumLabelEntries() {
		t.Fatalf("store stats drifted: max %d/%d entries %d/%d",
			got.MaxLabelSize(), o.MaxLabelSize(), got.NumLabelEntries(), o.NumLabelEntries())
	}
}

// TestCodecRejectsTruncation: every prefix fails to decode.
func TestCodecRejectsTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	o := Build(randomGraph(t, rng, 40, 1.2, true))
	b := encodeOracle(t, o)
	for cut := 0; cut < len(b); cut += 7 {
		d := &snap.Dec{B: b[:cut]}
		dec, err := Decode(d, o.CH())
		if err == nil && d.Done() {
			t.Fatalf("truncation at %d/%d decoded cleanly: %+v", cut, len(b), dec)
		}
	}
}

func corruptAndDecode(t *testing.T, o *Oracle, mutate func(c *Oracle)) error {
	t.Helper()
	c := &Oracle{
		cho: o.cho, n: o.n,
		off:  append([]int64(nil), o.off...),
		hub:  append([]int32(nil), o.hub...),
		dist: append([]float64(nil), o.dist...),
	}
	mutate(c)
	_, err := Decode(&snap.Dec{B: encodeOracle(t, c)}, o.CH())
	return err
}

// TestCodecRejectsStructuralDamage: each label-store invariant the
// two-pointer merge kernel relies on is individually enforced.
func TestCodecRejectsStructuralDamage(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	o := Build(randomGraph(t, rng, 60, 1.4, true))
	cases := []struct {
		name   string
		mutate func(c *Oracle)
		want   string
	}{
		{"offsets-not-monotone", func(c *Oracle) { c.off[1] = c.off[len(c.off)-1] + 1 }, "not monotone"},
		{"offsets-wrong-origin", func(c *Oracle) {
			for i := range c.off {
				c.off[i]++
			}
		}, "start at 0"},
		{"arrays-inconsistent", func(c *Oracle) { c.hub = c.hub[:len(c.hub)-1] }, "inconsistent"},
		{"self-entry-missing", func(c *Oracle) { c.hub[c.off[2]-1] = 0 }, ""},
		{"self-entry-nonzero-dist", func(c *Oracle) { c.dist[c.off[1]-1] = 0.5 }, "self-entry"},
		{"hub-above-own-rank", func(c *Oracle) { c.hub[c.off[1]-1] = int32(c.n) }, "rank space"},
		{"distance-negative", func(c *Oracle) { c.dist[c.off[c.n-1]] = -1 }, "finite non-negative"},
	}
	for _, tc := range cases {
		err := corruptAndDecode(t, o, tc.mutate)
		if err == nil {
			t.Errorf("%s: corrupt payload decoded cleanly", tc.name)
			continue
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// A decode against the wrong CH (different vertex count) is stale.
	small := ch.Build(randomGraph(t, rng, 10, 1.0, true))
	if _, err := Decode(&snap.Dec{B: encodeOracle(t, o)}, small); err == nil {
		t.Error("labels decoded against a CH for a different graph")
	}
	if _, err := Decode(&snap.Dec{B: encodeOracle(t, o)}, nil); err == nil {
		t.Error("labels decoded without a contraction hierarchy")
	}
}

// TestCodecCountOverflowTyped: the int64-prefixed offset array is the one
// place a snapshot can declare a count past platform bounds; it must fail
// with the typed snap.ErrCountOverflow so snapshot recovery can treat it
// as section damage (rebuild) rather than a programming error.
func TestCodecCountOverflowTyped(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	o := Build(randomGraph(t, rng, 10, 1.0, true))
	var e snap.Enc
	e.U32(uint32(o.n))
	e.U64(1 << 62) // off declared length: overflows MaxInt/8
	_, err := Decode(&snap.Dec{B: e.B}, o.CH())
	if !errors.Is(err, snap.ErrCountOverflow) {
		t.Fatalf("2^62 offsets: err = %v, want errors.Is ErrCountOverflow", err)
	}
}
