package hl

import (
	"math/rand"
	"testing"

	"gpssn/internal/geo"
	"gpssn/internal/roadnet"
	"gpssn/internal/roadnet/ch"
)

// benchGraph builds a connected road-like network (spanning tree plus a
// sparse sprinkle of extra edges — hierarchy-based oracles degrade on
// dense random graphs, which no road network is) for the package
// microbenchmarks (run with `go test -bench . ./internal/roadnet/hl`; the
// committed BENCH_hublabel.json holds the paper-scale numbers).
func benchGraph(b *testing.B, n int) (*roadnet.Graph, *ch.Oracle) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	g := roadnet.NewGraph(n, 2*n)
	for i := 0; i < n; i++ {
		g.AddVertex(geo.Pt(rng.Float64()*100, rng.Float64()*100))
	}
	for i := 1; i < n; i++ {
		// Window the tree attachment so the graph has road-like locality
		// (a global random tree has none and inflates every label).
		lo := i - 50
		if lo < 0 {
			lo = 0
		}
		g.AddEdge(roadnet.VertexID(lo+rng.Intn(i-lo)), roadnet.VertexID(i))
	}
	for i := 0; i < n/2; i++ {
		u := rng.Intn(n)
		v := u - 100 + rng.Intn(200)
		if v >= 0 && v < n && u != v {
			g.AddEdge(roadnet.VertexID(u), roadnet.VertexID(v))
		}
	}
	return g, ch.Build(g)
}

func BenchmarkBuildFromCH(b *testing.B) {
	_, cho := benchGraph(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromCH(cho)
	}
}

func BenchmarkPointToPointHL(b *testing.B) {
	g, cho := benchGraph(b, 5000)
	benchPointToPoint(b, g, FromCH(cho))
}

func BenchmarkPointToPointCH(b *testing.B) {
	g, cho := benchGraph(b, 5000)
	benchPointToPoint(b, g, cho)
}

func benchPointToPoint(b *testing.B, g *roadnet.Graph, o roadnet.DistanceOracle) {
	b.Helper()
	g.SetDistanceOracle(o)
	rng := rand.New(rand.NewSource(7))
	const pairs = 64
	as := make([]roadnet.Attach, pairs)
	bs := make([]roadnet.Attach, pairs)
	for i := range as {
		as[i] = g.AttachAt(roadnet.EdgeID(rng.Intn(g.NumEdges())), rng.Float64())
		bs[i] = g.AttachAt(roadnet.EdgeID(rng.Intn(g.NumEdges())), rng.Float64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.DistAttach(as[i%pairs], bs[i%pairs])
	}
}

// BenchmarkLabelKernel measures the batched refinement shape: one source
// label against a prepared 32-target label set per op.
func BenchmarkLabelKernel(b *testing.B) {
	g, cho := benchGraph(b, 5000)
	g.SetDistanceOracle(FromCH(cho))
	rng := rand.New(rand.NewSource(9))
	atts := make([]roadnet.Attach, 32)
	for i := range atts {
		atts[i] = g.AttachAt(roadnet.EdgeID(rng.Intn(g.NumEdges())), rng.Float64())
	}
	tl := g.PrepareTargetLabels(atts)
	src := g.AttachAt(roadnet.EdgeID(rng.Intn(g.NumEdges())), rng.Float64())
	lbl := roadnet.AcquireLabel()
	defer roadnet.ReleaseLabel(lbl)
	g.AttachLabel(src, lbl)
	out := make([]float64, tl.NumTargets())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.LabelDists(lbl, src, tl, 1e18, out)
	}
}
