package roadnet

import "math"

// AStar returns the shortest-path distance between two vertices using
// goal-directed A* search with the Euclidean distance heuristic (which is
// admissible because edge weights are Euclidean lengths). On long queries
// over large road networks it settles far fewer vertices than plain
// Dijkstra while returning exactly the same distance.
func (g *Graph) AStar(src, dst VertexID) float64 {
	g.checkVertex(src)
	g.checkVertex(dst)
	if src == dst {
		return 0
	}
	goal := g.pts[dst]
	gScore := make([]float64, len(g.pts))
	closed := make([]bool, len(g.pts))
	for i := range gScore {
		gScore[i] = math.Inf(1)
	}
	gScore[src] = 0
	h := &distHeap{}
	h.push(src, g.pts[src].Dist(goal))
	for h.len() > 0 {
		v, _ := h.pop()
		if closed[v] {
			continue
		}
		if v == dst {
			return gScore[v]
		}
		closed[v] = true
		for _, he := range g.adj[v] {
			if closed[he.to] {
				continue
			}
			nd := gScore[v] + he.weight
			if nd < gScore[he.to] {
				gScore[he.to] = nd
				h.push(he.to, nd+g.pts[he.to].Dist(goal))
			}
		}
	}
	return math.Inf(1)
}

// AStarAttach returns dist_RN between two attachment points via A*.
func (g *Graph) AStarAttach(a, b Attach) float64 {
	au, av, dau, dav := g.attachEnds(a)
	bu, bv, dbu, dbv := g.attachEnds(b)
	best := math.Inf(1)
	if a.Edge == b.Edge {
		e := g.EdgeAt(a.Edge)
		best = math.Abs(a.T-b.T) * e.Weight
	}
	for _, s := range []struct {
		from VertexID
		off  float64
	}{{au, dau}, {av, dav}} {
		for _, t := range []struct {
			to  VertexID
			off float64
		}{{bu, dbu}, {bv, dbv}} {
			if d := s.off + g.AStar(s.from, t.to) + t.off; d < best {
				best = d
			}
		}
	}
	return best
}
