package roadnet

import (
	"fmt"
	"math"
)

// distHeap is a typed binary min-heap of (vertex, dist) pairs. A typed heap
// avoids the interface allocations of container/heap in this hot path; the
// road network runs thousands of Dijkstra searches during index builds.
type distHeap struct {
	v []VertexID
	d []float64
}

func (h *distHeap) len() int { return len(h.v) }

func (h *distHeap) push(v VertexID, d float64) {
	h.v = append(h.v, v)
	h.d = append(h.d, d)
	i := len(h.v) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.d[p] <= h.d[i] {
			break
		}
		h.v[p], h.v[i] = h.v[i], h.v[p]
		h.d[p], h.d[i] = h.d[i], h.d[p]
		i = p
	}
}

func (h *distHeap) pop() (VertexID, float64) {
	v, d := h.v[0], h.d[0]
	last := len(h.v) - 1
	h.v[0], h.d[0] = h.v[last], h.d[last]
	h.v, h.d = h.v[:last], h.d[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < len(h.d) && h.d[l] < h.d[s] {
			s = l
		}
		if r < len(h.d) && h.d[r] < h.d[s] {
			s = r
		}
		if s == i {
			break
		}
		h.v[s], h.v[i] = h.v[i], h.v[s]
		h.d[s], h.d[i] = h.d[i], h.d[s]
		i = s
	}
	return v, d
}

// Seed is a Dijkstra source: a vertex with an initial distance (non-zero
// initial distances arise when searching from an attachment point, which
// seeds the two endpoints of its edge).
type Seed struct {
	Vertex VertexID
	Dist   float64
}

// Dijkstra returns shortest-path distances from src to every vertex.
// Unreachable vertices get +Inf.
func (g *Graph) Dijkstra(src VertexID) []float64 {
	g.checkVertex(src)
	return g.DijkstraMulti([]Seed{{Vertex: src, Dist: 0}})
}

// DijkstraMulti returns shortest-path distances from the nearest seed to
// every vertex. Unreachable vertices get +Inf. When a distance oracle is
// attached the scan is answered by its one-to-all kernel (a PHAST-style
// sweep for the CH oracle) instead of a heap-driven search.
func (g *Graph) DijkstraMulti(seeds []Seed) []float64 {
	return g.DijkstraMultiCk(seeds, nil)
}

// DijkstraMultiCk is DijkstraMulti with a cooperative checkpoint: the scan
// reports settled vertices in checkStride batches and aborts once the
// checkpoint trips. An aborted scan returns all-+Inf — partial distances
// are discarded wholesale so a caller can never mistake an interrupted
// search for "those vertices are unreachable/far" on a per-entry basis;
// every finite distance ever returned is exact. ck may be nil (unchecked).
func (g *Graph) DijkstraMultiCk(seeds []Seed, ck *Checkpoint) []float64 {
	for _, s := range seeds {
		g.checkVertex(s.Vertex)
		if s.Dist < 0 {
			panic(fmt.Sprintf("roadnet: negative seed distance %v", s.Dist))
		}
	}
	dist := make([]float64, len(g.pts))
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	if ck.Stopped() {
		return dist
	}
	if g.oracle != nil {
		var res []float64
		if co, ok := g.oracle.(CheckedOracle); ok && ck != nil {
			res = co.OneToAllCk(seeds, ck)
		} else {
			res = g.oracle.OneToAll(seeds)
		}
		if ck.Stopped() {
			for i := range res {
				res[i] = math.Inf(1)
			}
		}
		return res
	}
	h := acquireHeap()
	for _, s := range seeds {
		if s.Dist < dist[s.Vertex] {
			dist[s.Vertex] = s.Dist
			h.push(s.Vertex, s.Dist)
		}
	}
	aborted := false
	sinceCheck := 0
	for h.len() > 0 {
		v, d := h.pop()
		if d > dist[v] {
			continue // stale entry
		}
		if sinceCheck++; sinceCheck >= checkStride {
			if ck.Spend(sinceCheck) {
				aborted = true
				break
			}
			sinceCheck = 0
		}
		for _, he := range g.adj[v] {
			nd := d + he.weight
			if nd < dist[he.to] {
				dist[he.to] = nd
				h.push(he.to, nd)
			}
		}
	}
	if !aborted {
		ck.Spend(sinceCheck)
	}
	releaseHeap(h)
	if ck.Stopped() {
		for i := range dist {
			dist[i] = math.Inf(1)
		}
	}
	return dist
}

// DijkstraMultiBatchCk answers several DijkstraMulti shapes at once. When
// the attached oracle supports batch folding (BatchOracle) and the batch
// is non-trivial, the whole request runs as one folded sweep — k upward
// searches sharing a single downward pass — otherwise it degrades to one
// DijkstraMultiCk per seed set. Either way every returned array is
// bit-identical to the solo call for the same seed set, and an aborted
// batch reports all-+Inf in every array (the all-or-nothing contract of
// DijkstraMultiCk, applied batch-wide).
func (g *Graph) DijkstraMultiBatchCk(seedSets [][]Seed, ck *Checkpoint) [][]float64 {
	if bo, ok := g.oracle.(BatchOracle); ok && len(seedSets) > 1 {
		for _, seeds := range seedSets {
			for _, s := range seeds {
				g.checkVertex(s.Vertex)
				if s.Dist < 0 {
					panic(fmt.Sprintf("roadnet: negative seed distance %v", s.Dist))
				}
			}
		}
		res := bo.OneToAllBatchCk(seedSets, ck)
		if ck.Stopped() {
			for _, r := range res {
				for i := range r {
					r[i] = math.Inf(1)
				}
			}
		}
		return res
	}
	out := make([][]float64, len(seedSets))
	for i, seeds := range seedSets {
		out[i] = g.DijkstraMultiCk(seeds, ck)
	}
	return out
}

// boundedSearch runs a multi-seed Dijkstra into sc.dist, stopping once every
// target vertex is settled or the heap top exceeds bound. Distances for
// settled vertices are exact; others are +Inf (labels beyond the bound are
// never even pushed). targets may be nil (then bound alone stops the
// search); at most 64 targets are tracked for early exit — extra ones still
// get correct distances, they just stop terminating the scan early.
// Returns the number of vertices settled, which the early-termination
// regression test asserts shrinks with the bound.
//
// ck may be nil. When it trips mid-search the scan stops immediately; the
// caller must treat sc.dist as garbage (check ck.Stopped()) because the
// frontier beyond the last settled vertex is missing.
func (g *Graph) boundedSearch(sc *searchScratch, seeds []Seed, targets []VertexID, bound float64, ck *Checkpoint) int {
	var targetMask uint64 // bit i set ⇒ targets[i] still unsettled
	tracked := len(targets)
	if tracked > 64 {
		tracked = 64
	}
	if tracked > 0 {
		targetMask = (uint64(1) << uint(tracked)) - 1
	}
	h := &sc.heap
	for _, s := range seeds {
		if s.Dist <= bound && s.Dist < sc.dist[s.Vertex] {
			sc.set(s.Vertex, s.Dist)
			h.push(s.Vertex, s.Dist)
		}
	}
	settled := 0
	sinceCheck := 0
	for h.len() > 0 {
		v, d := h.pop()
		if d > sc.dist[v] {
			continue // stale entry
		}
		if d > bound {
			break
		}
		settled++
		if sinceCheck++; sinceCheck >= checkStride {
			if ck.Spend(sinceCheck) {
				return settled
			}
			sinceCheck = 0
		}
		if targetMask != 0 {
			for i := 0; i < tracked; i++ {
				if targets[i] == v {
					targetMask &^= uint64(1) << uint(i)
				}
			}
			if targetMask == 0 && len(targets) <= 64 {
				break
			}
		}
		for _, he := range g.adj[v] {
			nd := d + he.weight
			if nd <= bound && nd < sc.dist[he.to] {
				sc.set(he.to, nd)
				h.push(he.to, nd)
			}
		}
	}
	ck.Spend(sinceCheck)
	return settled
}

// DistAttach returns the exact road-network shortest-path distance between
// two attachment points (the paper's dist_RN). Points on the same edge may
// take the direct along-edge route or detour through either endpoint,
// whichever is shorter.
func (g *Graph) DistAttach(a, b Attach) float64 {
	au, av, dau, dav := g.attachEnds(a)
	bu, bv, dbu, dbv := g.attachEnds(b)

	best := math.Inf(1)
	if a.Edge == b.Edge {
		e := g.EdgeAt(a.Edge)
		best = math.Abs(a.T-b.T) * e.Weight
	}
	seeds := []Seed{{au, dau}, {av, dav}}
	targets := []VertexID{bu, bv}
	var du, dv float64
	if g.oracle != nil {
		d := g.oracle.SeedDistances(seeds, targets, best)
		du, dv = d[0], d[1]
	} else {
		sc := acquireScratch(len(g.pts))
		g.boundedSearch(sc, seeds, targets, best, nil)
		du, dv = sc.dist[bu], sc.dist[bv]
		sc.release()
	}
	if d := du + dbu; d < best {
		best = d
	}
	if d := dv + dbv; d < best {
		best = d
	}
	return best
}

// DistAttachMany returns dist_RN from a to each attachment in bs using a
// single search from a (far cheaper than len(bs) point-to-point runs).
// With an oracle attached the search is the many-to-many bucket kernel over
// just the attachment endpoints instead of a full one-to-all scan.
func (g *Graph) DistAttachMany(a Attach, bs []Attach) []float64 {
	return g.distAttachBatch(a, math.Inf(1), bs, nil)
}

// DistAttachManyCk is DistAttachMany with a cooperative checkpoint; once it
// trips, every candidate distance is reported as +Inf (no partial values).
// ck may be nil.
func (g *Graph) DistAttachManyCk(a Attach, bs []Attach, ck *Checkpoint) []float64 {
	return g.distAttachBatch(a, math.Inf(1), bs, ck)
}

// DistAttachWithin returns dist_RN(a, c) for each candidate c, reported
// only when it is ≤ bound; farther candidates get +Inf. It runs a single
// Dijkstra truncated at bound, so the cost is proportional to the size of
// the ball around a rather than the whole network. The GP-SSN index build
// uses it to materialize the POI balls ⊙(o_i, r_min), and the query
// refinement uses it to materialize answer balls ⊙(o_i, r).
func (g *Graph) DistAttachWithin(a Attach, bound float64, cands []Attach) []float64 {
	return g.distAttachBatch(a, bound, cands, nil)
}

// DistAttachWithinCk is DistAttachWithin with a cooperative checkpoint;
// once it trips, every candidate distance is reported as +Inf (no partial
// values). ck may be nil.
func (g *Graph) DistAttachWithinCk(a Attach, bound float64, cands []Attach, ck *Checkpoint) []float64 {
	return g.distAttachBatch(a, bound, cands, ck)
}

// distAttachBatch is the shared implementation of DistAttachMany
// (bound = +Inf) and DistAttachWithin (finite bound): distances from a to
// each candidate, with values beyond the bound clamped to +Inf. An aborted
// (checkpoint-tripped) batch reports every candidate as +Inf so no caller
// ever consumes a distance from an interrupted search.
func (g *Graph) distAttachBatch(a Attach, bound float64, cands []Attach, ck *Checkpoint) []float64 {
	out := make([]float64, len(cands))
	if ck.Stopped() {
		for i := range out {
			out[i] = math.Inf(1)
		}
		return out
	}
	au, av, dau, dav := g.attachEnds(a)
	seeds := []Seed{{au, dau}, {av, dav}}

	if g.oracle != nil {
		// Query only the candidates' edge endpoints, deduplicated, through
		// the oracle's many-to-many kernel.
		targets := make([]VertexID, 0, 2*len(cands))
		for _, c := range cands {
			cu, cv, _, _ := g.attachEnds(c)
			targets = append(targets, cu, cv)
		}
		var vd []float64
		if co, ok := g.oracle.(CheckedOracle); ok && ck != nil {
			vd = co.SeedDistancesCk(seeds, targets, bound, ck)
		} else {
			vd = g.oracle.SeedDistances(seeds, targets, bound)
		}
		if ck.Stopped() {
			for i := range out {
				out[i] = math.Inf(1)
			}
			return out
		}
		for i, c := range cands {
			_, _, dcu, dcv := g.attachEnds(c)
			d := math.Min(vd[2*i]+dcu, vd[2*i+1]+dcv)
			out[i] = g.finishAttachDist(a, c, d, bound)
		}
		return out
	}

	sc := acquireScratch(len(g.pts))
	g.boundedSearch(sc, seeds, nil, bound, ck)
	if ck.Stopped() {
		sc.release()
		for i := range out {
			out[i] = math.Inf(1)
		}
		return out
	}
	for i, c := range cands {
		out[i] = g.finishAttachDist(a, c, g.DistToVertexVia(c, sc.dist), bound)
	}
	sc.release()
	return out
}

// finishAttachDist applies the same-edge direct route and the bound clamp
// shared by every attachment-distance shape.
func (g *Graph) finishAttachDist(a, c Attach, d, bound float64) float64 {
	if c.Edge == a.Edge {
		e := g.EdgeAt(a.Edge)
		if direct := math.Abs(a.T-c.T) * e.Weight; direct < d {
			d = direct
		}
	}
	if d > bound {
		return math.Inf(1)
	}
	return d
}

// ShortestPath returns the distance and the vertex sequence of a shortest
// path between two vertices, or +Inf and nil when unreachable.
func (g *Graph) ShortestPath(src, dst VertexID) (float64, []VertexID) {
	g.checkVertex(src)
	g.checkVertex(dst)
	dist := make([]float64, len(g.pts))
	prev := make([]VertexID, len(g.pts))
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	h := &distHeap{}
	h.push(src, 0)
	for h.len() > 0 {
		v, d := h.pop()
		if d > dist[v] {
			continue
		}
		if v == dst {
			break
		}
		for _, he := range g.adj[v] {
			nd := d + he.weight
			if nd < dist[he.to] {
				dist[he.to] = nd
				prev[he.to] = v
				h.push(he.to, nd)
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return dist[dst], nil
	}
	var path []VertexID
	for v := dst; v != -1; v = prev[v] {
		path = append(path, v)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return dist[dst], path
}
