package roadnet

import (
	"math"

	"gpssn/internal/geo"
)

// edgeGrid is a uniform spatial hash over edge segments, used to snap
// arbitrary 2D points (user home locations, generated POI coordinates) onto
// the nearest road segment without scanning every edge.
type edgeGrid struct {
	bounds geo.Rect
	cell   float64
	cols   int
	rows   int
	cells  map[int][]EdgeID
}

func buildEdgeGrid(g *Graph) *edgeGrid {
	b := g.Bounds()
	if b.IsEmpty() || len(g.edges) == 0 {
		return &edgeGrid{bounds: b, cell: 1, cols: 1, rows: 1, cells: map[int][]EdgeID{}}
	}
	// A bounding box so large its width, height, or area overflows would
	// make the cell arithmetic below produce NaN column counts and send
	// eachCell walking an unbounded range; degrade to one cell holding
	// every edge (linear-scan snapping) instead.
	if !(b.Width() < math.MaxFloat64 && b.Height() < math.MaxFloat64 && b.Area() < math.MaxFloat64) {
		eg := &edgeGrid{bounds: b, cell: math.MaxFloat64, cols: 1, rows: 1,
			cells: map[int][]EdgeID{}}
		for id := range g.edges {
			eg.cells[0] = append(eg.cells[0], EdgeID(id))
		}
		return eg
	}
	// Aim for ~1 edge per cell on average.
	area := math.Max(b.Area(), 1e-9)
	cell := math.Sqrt(area / float64(len(g.edges)))
	// Avoid pathological tiny cells for clustered graphs.
	minCell := math.Max(b.Width(), b.Height()) / 4096
	if cell < minCell {
		cell = minCell
	}
	eg := &edgeGrid{
		bounds: b,
		cell:   cell,
		cols:   int(b.Width()/cell) + 1,
		rows:   int(b.Height()/cell) + 1,
		cells:  make(map[int][]EdgeID, len(g.edges)),
	}
	for id := range g.edges {
		seg := g.EdgeSegment(EdgeID(id))
		eg.eachCell(seg.Bounds(), func(c int) {
			eg.cells[c] = append(eg.cells[c], EdgeID(id))
		})
	}
	return eg
}

func (eg *edgeGrid) cellIndex(cx, cy int) int { return cy*eg.cols + cx }

func (eg *edgeGrid) cellOf(p geo.Point) (int, int) {
	cx := int((p.X - eg.bounds.Min.X) / eg.cell)
	cy := int((p.Y - eg.bounds.Min.Y) / eg.cell)
	if cx < 0 {
		cx = 0
	} else if cx >= eg.cols {
		cx = eg.cols - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= eg.rows {
		cy = eg.rows - 1
	}
	return cx, cy
}

func (eg *edgeGrid) eachCell(r geo.Rect, fn func(c int)) {
	x0, y0 := eg.cellOf(r.Min)
	x1, y1 := eg.cellOf(r.Max)
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			fn(eg.cellIndex(cx, cy))
		}
	}
}

// nearest returns the edge nearest to p and the parametric offset of the
// closest point, searching outward ring by ring from p's cell.
func (eg *edgeGrid) nearest(g *Graph, p geo.Point) (EdgeID, float64, bool) {
	if len(g.edges) == 0 {
		return 0, 0, false
	}
	cx, cy := eg.cellOf(p)
	bestEdge, bestT := EdgeID(-1), 0.0
	bestDist := math.Inf(1)
	maxRing := eg.cols
	if eg.rows > maxRing {
		maxRing = eg.rows
	}
	for ring := 0; ring <= maxRing; ring++ {
		// Once we have a candidate, stop when the next ring cannot improve.
		if bestEdge >= 0 && float64(ring-1)*eg.cell > bestDist {
			break
		}
		eg.eachRingCell(cx, cy, ring, func(c int) {
			for _, id := range eg.cells[c] {
				seg := g.EdgeSegment(id)
				t := seg.Project(p)
				d := seg.At(t).Dist(p)
				if d < bestDist {
					bestDist, bestEdge, bestT = d, id, t
				}
			}
		})
	}
	if bestEdge < 0 {
		return 0, 0, false
	}
	return bestEdge, bestT, true
}

// eachRingCell visits the cells at Chebyshev distance exactly ring from
// (cx, cy), clipped to the grid.
func (eg *edgeGrid) eachRingCell(cx, cy, ring int, fn func(c int)) {
	if ring == 0 {
		fn(eg.cellIndex(cx, cy))
		return
	}
	x0, x1 := cx-ring, cx+ring
	y0, y1 := cy-ring, cy+ring
	for x := x0; x <= x1; x++ {
		if x < 0 || x >= eg.cols {
			continue
		}
		if y0 >= 0 {
			fn(eg.cellIndex(x, y0))
		}
		if y1 < eg.rows && y1 != y0 {
			fn(eg.cellIndex(x, y1))
		}
	}
	for y := y0 + 1; y <= y1-1; y++ {
		if y < 0 || y >= eg.rows {
			continue
		}
		if x0 >= 0 {
			fn(eg.cellIndex(x0, y))
		}
		if x1 < eg.cols && x1 != x0 {
			fn(eg.cellIndex(x1, y))
		}
	}
}

// gridInsertEdge registers a freshly appended edge with the snap grid so
// mutations do not force the next SnapPoint into an O(V+E) rebuild. A
// nil grid stays nil (lazy build covers it); the 1×1 overflow grid keeps
// every edge in its single cell; an in-bounds segment is appended to
// each covered cell exactly as buildEdgeGrid would have, preserving the
// ring-search termination invariant (every edge is registered in every
// cell its bounding box touches). A segment escaping the built extent
// falls back to dropping the grid — the rebuild re-derives the bounds.
func (g *Graph) gridInsertEdge(id EdgeID) {
	eg := g.grid
	if eg == nil {
		return
	}
	if eg.cell == math.MaxFloat64 {
		eg.cells[0] = append(eg.cells[0], id)
		return
	}
	seg := g.EdgeSegment(id)
	if !eg.bounds.ContainsRect(seg.Bounds()) {
		g.grid = nil
		return
	}
	eg.eachCell(seg.Bounds(), func(c int) {
		eg.cells[c] = append(eg.cells[c], id)
	})
}

// GridBuilds reports how many times the snap grid has been built from
// scratch — the churn benchmark asserts mutations stop forcing rebuilds.
func (g *Graph) GridBuilds() int { return g.gridBuilds }

// SnapPoint returns the attachment on the road segment nearest to p. The
// second return value is false only for a graph with no edges.
func (g *Graph) SnapPoint(p geo.Point) (Attach, bool) {
	if g.grid == nil {
		g.grid = buildEdgeGrid(g)
		g.gridBuilds++
	}
	id, t, ok := g.grid.nearest(g, p)
	if !ok {
		return Attach{}, false
	}
	return Attach{Edge: id, T: t}, true
}
