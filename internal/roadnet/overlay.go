package roadnet

import (
	"math"
	"sync/atomic"
)

// This file is the delta-overlay that keeps a static distance oracle
// (CH or hub labels) attached and *exact* after the graph mutates. The
// static oracle answers for the frozen base graph G0 (the first baseN
// vertices and the edges present when it was built); mutations append
// vertices and edges on top. Every composed distance is
//
//	d_G(s,t) = min( d_G0(s,t),  entry → portal-patch → exit )
//
// where the portals P are the old vertices incident to at least one new
// edge plus every new vertex, and patch[i][j] is the exact shortest-path
// distance between portals p_i and p_j in the *full* mutated graph G.
// A path that uses any new edge must pass through a portal immediately
// before its first new edge and immediately after its last one, and the
// segments outside that window live entirely in G0 — so taking the
// minimum over (entry portal, exit portal) pairs is exact, not a bound.
//
// The patch matrix is the all-pairs closure of the portal graph H:
// a clique over the old portals weighted by exact d_G0 (delegated to the
// base oracle) plus the new edges themselves. It is maintained
// incrementally, never recomputed from scratch:
//
//   - inserting an old vertex as a portal costs one base-oracle
//     many-to-many query plus an O(k) closure row
//     row[j] = min_i d0[i] + patch[i][j]; existing pairs cannot improve
//     because a detour through an old vertex with no new incident edges
//     is already dominated by d_G0's triangle inequality;
//   - inserting a new vertex is a +Inf row with a zero diagonal;
//   - inserting an edge (u,v,w) is one O(k²) relaxation
//     patch[i][j] = min(patch[i][j], ru[i]+w+rv[j], rv[i]+w+ru[j])
//     over copies of u's and v's closed rows. One pass is exact because
//     a shortest path is simple and therefore crosses the new edge at
//     most once.
//
// Queries stay oracle-class: a composed SeedDistances costs at most two
// base-oracle many-to-many calls plus O(k²) portal arithmetic, and a
// composed OneToAll at most two base sweeps. The overlay implements
// CheckedOracle so cancellation and work budgets thread through to the
// base calls, but deliberately not LabelOracle/BatchOracle: label attach
// and batch folding assume frozen topology, so those callers degrade to
// the (still exact, still oracle-backed) array strategies until the next
// re-contraction swaps in a fresh static oracle.
type overlayOracle struct {
	base     DistanceOracle
	baseN    int // |V(G0)|: vertices the base oracle answers for
	newVerts int // vertices appended after the oracle was built
	newEdges int // edges appended after the oracle was built

	portals []VertexID       // portal vertex ids, in insertion order
	idx     map[VertexID]int // vertex id → index into portals/patch
	patch   [][]float64      // closed all-pairs portal distances in G

	queries atomic.Int64 // composed distance calls served
}

func newOverlay(base DistanceOracle, baseN int) *overlayOracle {
	return &overlayOracle{base: base, baseN: baseN, idx: make(map[VertexID]int)}
}

// noteAddVertex records a freshly appended vertex. Every new vertex is a
// portal from birth — even isolated ones — so that seeds and targets
// placed on it (or on its future edges) compose without special cases.
func (o *overlayOracle) noteAddVertex() {
	id := VertexID(o.baseN + o.newVerts)
	o.newVerts++
	o.addNewPortal(id)
}

// noteAddEdge folds a freshly appended edge into the patch closure.
// Both endpoints become portals (costing at most one base-oracle query
// each), then a single O(k²) relaxation closes the matrix over the edge.
func (o *overlayOracle) noteAddEdge(u, v VertexID, w float64) {
	o.newEdges++
	o.ensurePortal(u)
	o.ensurePortal(v)
	iu, iv := o.idx[u], o.idx[v]
	// Relax against copies: the loop writes rows iu and iv, and reading a
	// half-updated row would thread the new edge through itself.
	ru := append([]float64(nil), o.patch[iu]...)
	rv := append([]float64(nil), o.patch[iv]...)
	for i, row := range o.patch {
		a, b := ru[i]+w, rv[i]+w
		for j := range row {
			if d := a + rv[j]; d < row[j] {
				row[j] = d
			}
			if d := b + ru[j]; d < row[j] {
				row[j] = d
			}
		}
	}
}

// ensurePortal makes v a portal if it is not one already. New vertices
// are portals from noteAddVertex; this path is for old (base) vertices
// gaining their first new incident edge.
func (o *overlayOracle) ensurePortal(v VertexID) {
	if _, ok := o.idx[v]; ok {
		return
	}
	// Exact G0 distances from v to every existing old portal, via the
	// base oracle. New-vertex portals are unreachable within G0 (+Inf).
	oldPortals := make([]VertexID, 0, len(o.portals))
	oldPos := make([]int, 0, len(o.portals))
	for i, p := range o.portals {
		if int(p) < o.baseN {
			oldPortals = append(oldPortals, p)
			oldPos = append(oldPos, i)
		}
	}
	d0 := make([]float64, len(o.portals))
	for i := range d0 {
		d0[i] = math.Inf(1)
	}
	if len(oldPortals) > 0 {
		ds := o.base.SeedDistances([]Seed{{Vertex: v, Dist: 0}}, oldPortals, math.Inf(1))
		for j, pos := range oldPos {
			d0[pos] = ds[j]
		}
	}
	k := o.appendPortal(v)
	// Closure row: route from v through any old portal i into the closed
	// matrix. Existing pairs cannot improve through v — v has no new
	// incident edges yet, so any detour through it is a pure-G0 segment
	// already dominated by the clique distances (triangle inequality).
	row := o.patch[k]
	for j := 0; j < k; j++ {
		best := math.Inf(1)
		for _, pos := range oldPos {
			if d := d0[pos] + o.patch[pos][j]; d < best {
				best = d
			}
		}
		row[j] = best
		o.patch[j][k] = best
	}
}

// addNewPortal registers a brand-new vertex: +Inf row, zero diagonal.
// It is unreachable until an edge touches it.
func (o *overlayOracle) addNewPortal(id VertexID) {
	o.appendPortal(id)
}

// appendPortal grows the matrix by one row/column (initialised to +Inf
// off-diagonal, 0 on the diagonal) and returns the new index.
func (o *overlayOracle) appendPortal(v VertexID) int {
	k := len(o.portals)
	o.portals = append(o.portals, v)
	o.idx[v] = k
	for i := range o.patch {
		o.patch[i] = append(o.patch[i], math.Inf(1))
	}
	row := make([]float64, k+1)
	for i := range row {
		row[i] = math.Inf(1)
	}
	row[k] = 0
	o.patch = append(o.patch, row)
	return k
}

// splitSeeds partitions sources into base-graph seeds and portal entry
// distances (seeds sitting on new vertices enter the patch directly).
func (o *overlayOracle) splitSeeds(sources []Seed) (oldSeeds []Seed, entry []float64) {
	entry = make([]float64, len(o.portals))
	for i := range entry {
		entry[i] = math.Inf(1)
	}
	oldSeeds = make([]Seed, 0, len(sources))
	for _, s := range sources {
		if int(s.Vertex) < o.baseN {
			oldSeeds = append(oldSeeds, s)
		} else if d := s.Dist; d < entry[o.idx[s.Vertex]] {
			entry[o.idx[s.Vertex]] = d
		}
	}
	return oldSeeds, entry
}

// arrive folds entry distances through the patch closure: the cheapest
// way to stand at each portal, having started from any seed. The zero
// diagonal makes a portal its own entry point.
func (o *overlayOracle) arrive(entry []float64) []float64 {
	arr := make([]float64, len(o.portals))
	copy(arr, entry)
	for i, e := range entry {
		if math.IsInf(e, 1) {
			continue
		}
		for q, d := range o.patch[i] {
			if t := e + d; t < arr[q] {
				arr[q] = t
			}
		}
	}
	return arr
}

// SeedDistances implements DistanceOracle over the mutated graph.
func (o *overlayOracle) SeedDistances(sources []Seed, targets []VertexID, bound float64) []float64 {
	return o.seedDistances(sources, targets, bound, nil)
}

// SeedDistancesCk implements CheckedOracle; ck is never nil on this path.
func (o *overlayOracle) SeedDistancesCk(sources []Seed, targets []VertexID, bound float64, ck *Checkpoint) []float64 {
	return o.seedDistances(sources, targets, bound, ck)
}

func (o *overlayOracle) seedDistances(sources []Seed, targets []VertexID, bound float64, ck *Checkpoint) []float64 {
	o.queries.Add(1)
	out := make([]float64, len(targets))
	oldSeeds, entry := o.splitSeeds(sources)

	// Old portal positions, queried alongside the caller's targets in the
	// same bounded base call: an entry distance beyond the bound cannot
	// start a within-bound composed path (weights are non-negative), so
	// the shared bound loses nothing and stays exact at equality.
	oldTargets := make([]VertexID, 0, len(targets))
	oldOut := make([]int, 0, len(targets))
	for i, t := range targets {
		if int(t) < o.baseN {
			oldTargets = append(oldTargets, t)
			oldOut = append(oldOut, i)
		}
	}
	oldPortals := make([]VertexID, 0, len(o.portals))
	oldPos := make([]int, 0, len(o.portals))
	for i, p := range o.portals {
		if int(p) < o.baseN {
			oldPortals = append(oldPortals, p)
			oldPos = append(oldPos, i)
		}
	}

	direct := make([]float64, len(oldTargets))
	for i := range direct {
		direct[i] = math.Inf(1)
	}
	if len(oldSeeds) > 0 && len(oldTargets)+len(oldPortals) > 0 {
		baseTargets := make([]VertexID, 0, len(oldTargets)+len(oldPortals))
		baseTargets = append(baseTargets, oldTargets...)
		baseTargets = append(baseTargets, oldPortals...)
		d := o.baseSeedDistances(oldSeeds, baseTargets, bound, ck)
		if ck.Stopped() {
			return out
		}
		copy(direct, d[:len(oldTargets)])
		for j, pos := range oldPos {
			if v := d[len(oldTargets)+j]; v < entry[pos] {
				entry[pos] = v
			}
		}
	}
	if ck.Spend(len(o.portals)) {
		return out
	}
	arr := o.arrive(entry)

	// Exit sweep: re-enter G0 from every reachable old portal.
	seeds2 := make([]Seed, 0, len(oldPortals))
	for j, pos := range oldPos {
		if a := arr[pos]; a <= bound && !math.IsInf(a, 1) {
			seeds2 = append(seeds2, Seed{Vertex: oldPortals[j], Dist: a})
		}
	}
	var exit []float64
	if len(seeds2) > 0 && len(oldTargets) > 0 {
		exit = o.baseSeedDistances(seeds2, oldTargets, bound, ck)
		if ck.Stopped() {
			return out
		}
	}

	for i := range out {
		out[i] = math.Inf(1)
	}
	for j, i := range oldOut {
		d := direct[j]
		if exit != nil && exit[j] < d {
			d = exit[j]
		}
		out[i] = d
	}
	for i, t := range targets {
		if int(t) >= o.baseN {
			if d := arr[o.idx[t]]; d <= bound {
				out[i] = d
			}
		}
	}
	return out
}

// OneToAll implements DistanceOracle: exact distances from the seeds to
// every vertex of the mutated graph (length baseN+newVerts, matching the
// graph's current vertex count — DijkstraMultiCk returns it unchanged).
func (o *overlayOracle) OneToAll(sources []Seed) []float64 {
	return o.oneToAll(sources, nil)
}

// OneToAllCk implements CheckedOracle; ck is never nil on this path.
func (o *overlayOracle) OneToAllCk(sources []Seed, ck *Checkpoint) []float64 {
	return o.oneToAll(sources, ck)
}

func (o *overlayOracle) oneToAll(sources []Seed, ck *Checkpoint) []float64 {
	o.queries.Add(1)
	n := o.baseN + o.newVerts
	oldSeeds, entry := o.splitSeeds(sources)

	var baseRes []float64
	if len(oldSeeds) > 0 {
		baseRes = o.baseOneToAll(oldSeeds, ck)
		if ck.Stopped() {
			return make([]float64, n)
		}
		for i, p := range o.portals {
			if int(p) < o.baseN && baseRes[p] < entry[i] {
				entry[i] = baseRes[p]
			}
		}
	}
	if ck.Spend(len(o.portals)) {
		return make([]float64, n)
	}
	arr := o.arrive(entry)

	// Exit sweep — only from old portals the patch actually improved;
	// when none improved the second sweep cannot beat the first anywhere.
	seeds2 := make([]Seed, 0, len(o.portals))
	for i, p := range o.portals {
		if int(p) >= o.baseN || math.IsInf(arr[i], 1) {
			continue
		}
		if baseRes == nil || arr[i] < baseRes[p] {
			seeds2 = append(seeds2, Seed{Vertex: p, Dist: arr[i]})
		}
	}

	var res []float64
	switch {
	case len(seeds2) == 0 && baseRes != nil:
		res = baseRes
	case len(seeds2) == 0:
		res = make([]float64, o.baseN)
		for i := range res {
			res[i] = math.Inf(1)
		}
	default:
		res = o.baseOneToAll(seeds2, ck)
		if ck.Stopped() {
			return make([]float64, n)
		}
		if baseRes != nil {
			for i, d := range baseRes {
				if d < res[i] {
					res[i] = d
				}
			}
		}
	}

	out := make([]float64, n)
	copy(out, res)
	for i := o.baseN; i < n; i++ {
		out[i] = arr[o.idx[VertexID(i)]]
	}
	return out
}

// baseSeedDistances threads the checkpoint through when the base oracle
// supports it; a plain call otherwise (the checkpoint still gates the
// overlay's own composition steps).
func (o *overlayOracle) baseSeedDistances(sources []Seed, targets []VertexID, bound float64, ck *Checkpoint) []float64 {
	if co, ok := o.base.(CheckedOracle); ok && ck != nil {
		return co.SeedDistancesCk(sources, targets, bound, ck)
	}
	return o.base.SeedDistances(sources, targets, bound)
}

func (o *overlayOracle) baseOneToAll(sources []Seed, ck *Checkpoint) []float64 {
	if co, ok := o.base.(CheckedOracle); ok && ck != nil {
		return co.OneToAllCk(sources, ck)
	}
	return o.base.OneToAll(sources)
}

// MemoryBytes forwards the base oracle's accounting plus the patch
// matrix, so MemoryStats keeps reporting oracle residency after churn.
func (o *overlayOracle) MemoryBytes() int64 {
	var b int64
	if m, ok := o.base.(interface{ MemoryBytes() int64 }); ok {
		b = m.MemoryBytes()
	}
	k := int64(len(o.portals))
	return b + k*k*8 + k*12
}

// OverlayStats is the observable state of a graph's delta-overlay,
// surfaced through DB.RoadOverlayStats and the serve /statsz endpoint.
// Portals² bounds the patch matrix; a growing portal count is the signal
// to schedule a background re-contraction (Compact).
type OverlayStats struct {
	Active   bool  // a delta-overlay is composing answers
	BaseN    int   // vertices the underlying static oracle covers
	NewVerts int   // vertices appended since it was built
	NewEdges int   // edges appended since it was built
	Portals  int   // patch-matrix dimension
	Queries  int64 // composed distance calls served
}

// OverlayStats reports the state of the graph's delta-overlay, or a zero
// value when the attached oracle (if any) is static.
func (g *Graph) OverlayStats() OverlayStats {
	ov, ok := g.oracle.(*overlayOracle)
	if !ok {
		return OverlayStats{}
	}
	return OverlayStats{
		Active:   true,
		BaseN:    ov.baseN,
		NewVerts: ov.newVerts,
		NewEdges: ov.newEdges,
		Portals:  len(ov.portals),
		Queries:  ov.queries.Load(),
	}
}

// ensureOverlay wraps the attached static oracle in a delta-overlay the
// first time the graph mutates, so it stays attached and exact instead
// of being detached. Returns nil when no oracle is attached (plain
// Dijkstra over the mutated adjacency is already exact). Must be called
// BEFORE the mutation is applied: baseN captures the pre-mutation size.
func (g *Graph) ensureOverlay() *overlayOracle {
	if ov, ok := g.oracle.(*overlayOracle); ok {
		return ov
	}
	if g.oracle == nil {
		return nil
	}
	ov := newOverlay(g.oracle, len(g.pts))
	g.oracle = ov
	return ov
}
