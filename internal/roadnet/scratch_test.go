package roadnet

import (
	"math"
	"testing"
)

// TestBoundedSearchSettlesFewer is the early-termination regression test:
// a tight bound must settle strictly fewer vertices than an unbounded scan
// of the same seeds, and labels past the bound must never be pushed.
func TestBoundedSearchSettlesFewer(t *testing.T) {
	g := gridGraph(12) // 12x12 grid, unit edge weights
	seeds := []Seed{{Vertex: 0, Dist: 0}}

	sc := acquireScratch(g.NumVertices())
	all := g.boundedSearch(sc, seeds, nil, math.Inf(1), nil)
	sc.release()
	if all != g.NumVertices() {
		t.Fatalf("unbounded search settled %d of %d vertices", all, g.NumVertices())
	}

	sc = acquireScratch(g.NumVertices())
	tight := g.boundedSearch(sc, seeds, nil, 3, nil)
	// Manhattan ball of radius 3 from the corner of a unit grid: vertices
	// with x+y <= 3, i.e. 10 of them.
	if tight != 10 {
		t.Fatalf("bound 3 settled %d vertices, want 10", tight)
	}
	for _, v := range sc.touched {
		if sc.dist[v] > 3 {
			t.Fatalf("vertex %d labelled %v beyond bound 3", v, sc.dist[v])
		}
	}
	sc.release()

	if tight >= all {
		t.Fatalf("tight bound settled %d vertices, not fewer than %d", tight, all)
	}
}

// TestBoundedSearchTargetsStop verifies the search stops once all tracked
// targets are settled rather than flooding the graph.
func TestBoundedSearchTargetsStop(t *testing.T) {
	g := gridGraph(12)
	seeds := []Seed{{Vertex: 0, Dist: 0}}
	targets := []VertexID{1, 12} // the two neighbours of the corner

	sc := acquireScratch(g.NumVertices())
	settled := g.boundedSearch(sc, seeds, targets, math.Inf(1), nil)
	sc.release()
	if settled >= g.NumVertices()/2 {
		t.Fatalf("target search settled %d vertices, expected early stop", settled)
	}
}

// TestScratchReuseIsClean ensures a released scratch comes back with an
// all-+Inf dist array even after bound- and target-limited searches.
func TestScratchReuseIsClean(t *testing.T) {
	g := gridGraph(6)
	for i := 0; i < 5; i++ {
		sc := acquireScratch(g.NumVertices())
		for v, d := range sc.dist {
			if !math.IsInf(d, 1) {
				t.Fatalf("iteration %d: pooled dist[%d] = %v, want +Inf", i, v, d)
			}
		}
		g.boundedSearch(sc, []Seed{{Vertex: VertexID(i), Dist: 0}}, nil, float64(i), nil)
		sc.release()
	}
}

// TestDistAttachAllocs pins the allocation count of the pooled hot-path
// queries: after warm-up, a DistAttach must not allocate O(|V|) buffers.
func TestDistAttachAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; counts are only meaningful without -race")
	}
	g := gridGraph(16)
	a := g.AttachAt(0, 0.25)
	b := g.AttachAt(EdgeID(g.NumEdges()-1), 0.75)
	for i := 0; i < 3; i++ { // warm the pool
		g.DistAttach(a, b)
	}
	// The two small seed/target slice literals may still escape; what must
	// not appear is the former per-call dist array + target map (which for
	// this 256-vertex grid alone would blow well past this budget).
	avg := testing.AllocsPerRun(50, func() {
		g.DistAttach(a, b)
	})
	if avg > 4 {
		t.Fatalf("DistAttach allocates %.1f objects per call, want <= 4", avg)
	}
}

// TestDistAttachWithinAllocs pins the allocation count of the bounded batch
// query to the output slice plus small constants.
func TestDistAttachWithinAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; counts are only meaningful without -race")
	}
	g := gridGraph(16)
	a := g.AttachAt(0, 0.5)
	cands := []Attach{g.AttachAt(1, 0.5), g.AttachAt(2, 0.5), g.AttachAt(3, 0.5)}
	for i := 0; i < 3; i++ {
		g.DistAttachWithin(a, 4, cands)
	}
	avg := testing.AllocsPerRun(50, func() {
		g.DistAttachWithin(a, 4, cands)
	})
	if avg > 4 {
		t.Fatalf("DistAttachWithin allocates %.1f objects per call, want <= 4", avg)
	}
}
