package roadnet

import (
	"math"
	"math/rand"
	"testing"

	"gpssn/internal/geo"
)

// gridGraph builds an n x n grid road network with unit spacing.
// Vertex (r, c) has id r*n+c.
func gridGraph(n int) *Graph {
	g := NewGraph(n*n, 2*n*n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			g.AddVertex(geo.Pt(float64(c), float64(r)))
		}
	}
	id := func(r, c int) VertexID { return VertexID(r*n + c) }
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if c+1 < n {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < n {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

func TestAddVertexEdge(t *testing.T) {
	g := NewGraph(0, 0)
	a := g.AddVertex(geo.Pt(0, 0))
	b := g.AddVertex(geo.Pt(3, 4))
	e := g.AddEdge(a, b)
	if g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Fatalf("counts: %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	if w := g.EdgeAt(e).Weight; math.Abs(w-5) > 1e-12 {
		t.Errorf("edge weight = %v, want 5", w)
	}
	if !g.HasEdge(a, b) || !g.HasEdge(b, a) {
		t.Error("HasEdge should be symmetric")
	}
	if g.Degree(a) != 1 || g.Degree(b) != 1 {
		t.Error("degrees wrong")
	}
	if got := g.AvgDegree(); math.Abs(got-1) > 1e-12 {
		t.Errorf("AvgDegree = %v, want 1", got)
	}
}

func TestSelfLoopPanics(t *testing.T) {
	g := NewGraph(0, 0)
	v := g.AddVertex(geo.Pt(0, 0))
	defer func() {
		if recover() == nil {
			t.Error("self-loop should panic")
		}
	}()
	g.AddEdge(v, v)
}

func TestDijkstraGrid(t *testing.T) {
	n := 10
	g := gridGraph(n)
	dist := g.Dijkstra(0) // corner (0,0)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			want := float64(r + c) // Manhattan distance on unit grid
			if got := dist[r*n+c]; math.Abs(got-want) > 1e-9 {
				t.Fatalf("dist to (%d,%d) = %v, want %v", r, c, got, want)
			}
		}
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := NewGraph(0, 0)
	a := g.AddVertex(geo.Pt(0, 0))
	b := g.AddVertex(geo.Pt(1, 0))
	g.AddEdge(a, b)
	c := g.AddVertex(geo.Pt(50, 50)) // isolated
	dist := g.Dijkstra(a)
	if !math.IsInf(dist[c], 1) {
		t.Errorf("isolated vertex distance = %v, want +Inf", dist[c])
	}
}

func TestDijkstraMultiSeeds(t *testing.T) {
	g := gridGraph(5)
	// Seeds at two opposite corners with offsets.
	dist := g.DijkstraMulti([]Seed{{Vertex: 0, Dist: 0.5}, {Vertex: 24, Dist: 0}})
	// Vertex 24 is (4,4); vertex 0 is (0,0). Center (2,2) id 12: from 24 it's 4.
	if got := dist[12]; math.Abs(got-4) > 1e-9 {
		t.Errorf("center dist = %v, want 4", got)
	}
	if got := dist[0]; math.Abs(got-0.5) > 1e-9 {
		t.Errorf("seed dist = %v, want 0.5", got)
	}
}

func TestNegativeSeedPanics(t *testing.T) {
	g := gridGraph(2)
	defer func() {
		if recover() == nil {
			t.Error("negative seed distance should panic")
		}
	}()
	g.DijkstraMulti([]Seed{{Vertex: 0, Dist: -1}})
}

func TestShortestPath(t *testing.T) {
	g := gridGraph(4)
	d, path := g.ShortestPath(0, 15) // (0,0) -> (3,3)
	if math.Abs(d-6) > 1e-9 {
		t.Errorf("path dist = %v, want 6", d)
	}
	if len(path) != 7 {
		t.Errorf("path has %d vertices, want 7", len(path))
	}
	if path[0] != 0 || path[len(path)-1] != 15 {
		t.Errorf("path endpoints: %v", path)
	}
	// Verify path edges exist and lengths sum to d.
	sum := 0.0
	for i := 0; i+1 < len(path); i++ {
		if !g.HasEdge(path[i], path[i+1]) {
			t.Fatalf("path uses missing edge %d-%d", path[i], path[i+1])
		}
		sum += g.Vertex(path[i]).Dist(g.Vertex(path[i+1]))
	}
	if math.Abs(sum-d) > 1e-9 {
		t.Errorf("path length %v != dist %v", sum, d)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := NewGraph(0, 0)
	a := g.AddVertex(geo.Pt(0, 0))
	b := g.AddVertex(geo.Pt(9, 9))
	d, path := g.ShortestPath(a, b)
	if !math.IsInf(d, 1) || path != nil {
		t.Errorf("unreachable: d=%v path=%v", d, path)
	}
}

func TestDistAttachSameEdge(t *testing.T) {
	g := NewGraph(0, 0)
	a := g.AddVertex(geo.Pt(0, 0))
	b := g.AddVertex(geo.Pt(10, 0))
	e := g.AddEdge(a, b)
	p := g.AttachAt(e, 0.2)
	q := g.AttachAt(e, 0.7)
	if d := g.DistAttach(p, q); math.Abs(d-5) > 1e-9 {
		t.Errorf("same-edge dist = %v, want 5", d)
	}
	if d := g.DistAttach(p, p); d != 0 {
		t.Errorf("self dist = %v, want 0", d)
	}
}

func TestDistAttachSameEdgeDetour(t *testing.T) {
	// Triangle where the direct edge is long but a detour through the third
	// vertex is shorter: a--b edge of length 10; a--c and c--b both length 1
	// is impossible with Euclidean weights, so instead test that the direct
	// route is correctly chosen on an edge where it is shortest.
	g := NewGraph(0, 0)
	a := g.AddVertex(geo.Pt(0, 0))
	b := g.AddVertex(geo.Pt(10, 0))
	c := g.AddVertex(geo.Pt(5, 1))
	ab := g.AddEdge(a, b)
	g.AddEdge(a, c)
	g.AddEdge(c, b)
	p := g.AttachAt(ab, 0.0)
	q := g.AttachAt(ab, 1.0)
	want := 10.0 // direct along a--b beats a-c-b (~10.2)
	if d := g.DistAttach(p, q); math.Abs(d-want) > 1e-9 {
		t.Errorf("dist = %v, want %v", d, want)
	}
}

func TestDistAttachCrossEdges(t *testing.T) {
	g := gridGraph(4)
	// Edge 0 connects (0,0)-(1,0); find edge between (3,3) area.
	e0 := EdgeID(0)
	p := g.AttachAt(e0, 0.5) // 0.5 along bottom-left horizontal edge
	// Attach exactly at vertex 15 = (3,3).
	q := g.AttachVertex(15)
	d := g.DistAttach(p, q)
	// From (0.5, 0) to (3,3): 0.5 to vertex (1,0), then 2+3 = 5 → 5.5,
	// or 0.5 to vertex (0,0) then 6 → 6.5. Want 5.5.
	if math.Abs(d-5.5) > 1e-9 {
		t.Errorf("cross-edge dist = %v, want 5.5", d)
	}
	// Symmetry.
	if d2 := g.DistAttach(q, p); math.Abs(d-d2) > 1e-9 {
		t.Errorf("asymmetric: %v vs %v", d, d2)
	}
}

func TestDistAttachMany(t *testing.T) {
	g := gridGraph(6)
	rng := rand.New(rand.NewSource(42))
	src := g.AttachAt(EdgeID(rng.Intn(g.NumEdges())), rng.Float64())
	var targets []Attach
	for i := 0; i < 20; i++ {
		targets = append(targets, g.AttachAt(EdgeID(rng.Intn(g.NumEdges())), rng.Float64()))
	}
	many := g.DistAttachMany(src, targets)
	for i, tgt := range targets {
		want := g.DistAttach(src, tgt)
		if math.Abs(many[i]-want) > 1e-9 {
			t.Fatalf("target %d: many=%v single=%v", i, many[i], want)
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	g := NewGraph(0, 0)
	a := g.AddVertex(geo.Pt(0, 0))
	b := g.AddVertex(geo.Pt(1, 0))
	c := g.AddVertex(geo.Pt(5, 5))
	d := g.AddVertex(geo.Pt(6, 5))
	g.AddEdge(a, b)
	g.AddEdge(c, d)
	labels, n := g.ConnectedComponents()
	if n != 2 {
		t.Fatalf("components = %d, want 2", n)
	}
	if labels[a] != labels[b] || labels[c] != labels[d] || labels[a] == labels[c] {
		t.Errorf("labels = %v", labels)
	}
	if g.IsConnected() {
		t.Error("graph should not be connected")
	}
	if !gridGraph(3).IsConnected() {
		t.Error("grid should be connected")
	}
}

func TestAttachVertexAndLocation(t *testing.T) {
	g := gridGraph(3)
	a := g.AttachVertex(4) // center (1,1)
	if loc := g.Location(a); loc.Dist(geo.Pt(1, 1)) > 1e-9 {
		t.Errorf("Location = %v, want (1,1)", loc)
	}
}

func TestAttachVertexIsolatedPanics(t *testing.T) {
	g := NewGraph(0, 0)
	v := g.AddVertex(geo.Pt(0, 0))
	defer func() {
		if recover() == nil {
			t.Error("AttachVertex on isolated vertex should panic")
		}
	}()
	g.AttachVertex(v)
}

func TestSnapPoint(t *testing.T) {
	g := gridGraph(5)
	// A point just above the horizontal edge from (1,2) to (2,2) should snap
	// onto that edge.
	a, ok := g.SnapPoint(geo.Pt(1.5, 2.1))
	if !ok {
		t.Fatal("SnapPoint failed")
	}
	loc := g.Location(a)
	if loc.Dist(geo.Pt(1.5, 2)) > 1e-9 {
		t.Errorf("snapped to %v, want (1.5, 2)", loc)
	}
}

func TestSnapPointMatchesBruteForce(t *testing.T) {
	g := gridGraph(8)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		p := geo.Pt(rng.Float64()*9-1, rng.Float64()*9-1)
		a, ok := g.SnapPoint(p)
		if !ok {
			t.Fatal("SnapPoint failed")
		}
		got := g.Location(a).Dist(p)
		best := math.Inf(1)
		for id := 0; id < g.NumEdges(); id++ {
			if d := g.EdgeSegment(EdgeID(id)).DistPoint(p); d < best {
				best = d
			}
		}
		if math.Abs(got-best) > 1e-9 {
			t.Fatalf("trial %d: snap dist %v, brute force %v", trial, got, best)
		}
	}
}

func TestSnapPointEmptyGraph(t *testing.T) {
	g := NewGraph(0, 0)
	if _, ok := g.SnapPoint(geo.Pt(0, 0)); ok {
		t.Error("SnapPoint on empty graph should fail")
	}
}

func TestBounds(t *testing.T) {
	g := gridGraph(3)
	b := g.Bounds()
	if b != (geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(2, 2)}) {
		t.Errorf("Bounds = %v", b)
	}
}
