package roadnet

import (
	"math"
	"sort"
	"sync"
)

// HubLabel is a compact exact-distance sketch of one location: a list of
// (hub vertex, distance) pairs sorted by ascending hub id. Two locations'
// distance is the minimum of d_a(h) + d_b(h) over their common hubs — a
// linear merge of two short sorted arrays, no priority queue, no per-query
// graph traversal. Labels are produced by a LabelOracle (the hub-labeling
// backend in internal/roadnet/hl) and consumed by the batched refinement
// kernel below.
type HubLabel struct {
	Hubs []int32
	Dist []float64
}

// Len returns the number of (hub, distance) entries.
func (l *HubLabel) Len() int { return len(l.Hubs) }

// Reset empties the label, keeping capacity.
func (l *HubLabel) Reset() {
	l.Hubs = l.Hubs[:0]
	l.Dist = l.Dist[:0]
}

// append records one entry; construction keeps hubs sorted.
func (l *HubLabel) append(hub int32, d float64) {
	l.Hubs = append(l.Hubs, hub)
	l.Dist = append(l.Dist, d)
}

// labelPool recycles HubLabel buffers across queries: refinement computes
// one label per touched user per query and the entries are label-sized
// (tens of pairs), so pooling removes the only allocation on that path.
var labelPool = sync.Pool{New: func() any { return new(HubLabel) }}

// AcquireLabel returns an empty pooled label buffer. Release with
// ReleaseLabel when done.
func AcquireLabel() *HubLabel { return labelPool.Get().(*HubLabel) }

// ReleaseLabel resets l and returns it to the pool. l must not be used
// afterwards.
func ReleaseLabel(l *HubLabel) {
	l.Reset()
	labelPool.Put(l)
}

// LabelOracle is an optional extension of DistanceOracle implemented by
// hub-labeling backends. It exposes the labels themselves so callers with
// a repeated source-vs-fixed-target-set shape (the refinement hot path)
// can precompute the target side once and answer every source with a
// single sorted merge instead of a graph search per pair.
type LabelOracle interface {
	DistanceOracle

	// SeedLabel writes the merged hub label of the seed set into dst
	// (dst is reset first): entry (h, d) means the nearest seed reaches
	// hub h at exact distance d. Hubs ascend. For any target t,
	// min over common hubs of d + label_t(h) is the exact seed-to-t
	// distance. Must be safe for concurrent use.
	SeedLabel(seeds []Seed, dst *HubLabel)
}

// HasLabels reports whether the attached distance oracle exposes hub
// labels (i.e. the batched label kernel below is available).
func (g *Graph) HasLabels() bool {
	_, ok := g.oracle.(LabelOracle)
	return ok
}

// AttachLabel writes the hub label of attachment a into dst: the merged
// label of a's two edge endpoints offset by the along-edge distances. It
// reports false (leaving dst untouched) when the attached oracle does not
// expose labels.
func (g *Graph) AttachLabel(a Attach, dst *HubLabel) bool {
	lo, ok := g.oracle.(LabelOracle)
	if !ok {
		return false
	}
	u, v, du, dv := g.attachEnds(a)
	lo.SeedLabel([]Seed{{Vertex: u, Dist: du}, {Vertex: v, Dist: dv}}, dst)
	return true
}

// TargetLabels is the batched, merge-ready form of a fixed set of target
// attachments: every target's hub label flattened into one array sorted by
// (hub, target), so a single simultaneous walk with a source label computes
// the distance to all targets at once — the k-way sorted merge of the
// refinement kernel. Build once per target set (PrepareTargetLabels), reuse
// for every source. Read-only after construction, so safe to share across
// refinement workers.
type TargetLabels struct {
	atts []Attach  // the targets, for the same-edge direct route
	hubs []int32   // ascending, runs of equal hubs span targets
	slot []int32   // hubs[i] belongs to target atts[slot[i]]
	dist []float64 // distance from target slot[i] to hub hubs[i]
}

// NumTargets returns the number of target attachments.
func (t *TargetLabels) NumTargets() int { return len(t.atts) }

// NumEntries returns the flattened entry count (Σ per-target label sizes).
func (t *TargetLabels) NumEntries() int { return len(t.hubs) }

// PrepareTargetLabels precomputes the merged label structure for a batch of
// target attachments, or nil when the attached oracle does not expose
// labels. The attachment slice is copied.
func (g *Graph) PrepareTargetLabels(atts []Attach) *TargetLabels {
	lo, ok := g.oracle.(LabelOracle)
	if !ok {
		return nil
	}
	t := &TargetLabels{atts: append([]Attach(nil), atts...)}
	lbl := AcquireLabel()
	for i, a := range atts {
		u, v, du, dv := g.attachEnds(a)
		lo.SeedLabel([]Seed{{Vertex: u, Dist: du}, {Vertex: v, Dist: dv}}, lbl)
		for j, h := range lbl.Hubs {
			t.hubs = append(t.hubs, h)
			t.slot = append(t.slot, int32(i))
			t.dist = append(t.dist, lbl.Dist[j])
		}
	}
	ReleaseLabel(lbl)
	sort.Sort((*targetLabelSort)(t))
	return t
}

// targetLabelSort orders the flattened entries by (hub, target slot).
type targetLabelSort TargetLabels

func (s *targetLabelSort) Len() int { return len(s.hubs) }
func (s *targetLabelSort) Less(i, j int) bool {
	if s.hubs[i] != s.hubs[j] {
		return s.hubs[i] < s.hubs[j]
	}
	return s.slot[i] < s.slot[j]
}
func (s *targetLabelSort) Swap(i, j int) {
	s.hubs[i], s.hubs[j] = s.hubs[j], s.hubs[i]
	s.slot[i], s.slot[j] = s.slot[j], s.slot[i]
	s.dist[i], s.dist[j] = s.dist[j], s.dist[i]
}

// LabelDists computes dist_RN from the source attachment (whose hub label
// is src, from AttachLabel) to every prepared target in one pass: the two
// hub-sorted arrays are walked simultaneously and each matching hub relaxes
// its target's running minimum. Same-edge direct routes are applied and
// distances beyond bound are reported as +Inf, matching DistAttachWithin.
// out must have length tl.NumTargets(); it is returned filled. Allocation-
// free, safe for concurrent use (all shared state is read-only).
func (g *Graph) LabelDists(src *HubLabel, srcAt Attach, tl *TargetLabels, bound float64, out []float64) []float64 {
	return g.LabelDistsCk(src, srcAt, tl, bound, out, nil)
}

// LabelDistsCk is LabelDists with a cooperative checkpoint. The merge work
// (source-label entries + flattened target entries walked) is charged up
// front — one Spend call per kernel invocation, keeping the merge loop
// itself branch-free — and a tripped checkpoint yields all-+Inf, never a
// partial merge. ck may be nil.
func (g *Graph) LabelDistsCk(src *HubLabel, srcAt Attach, tl *TargetLabels, bound float64, out []float64, ck *Checkpoint) []float64 {
	inf := math.Inf(1)
	for i := range out {
		out[i] = inf
	}
	if ck != nil && ck.Spend(len(src.Hubs)+len(tl.hubs)) {
		return out
	}
	i, j := 0, 0
	for i < len(src.Hubs) && j < len(tl.hubs) {
		switch {
		case src.Hubs[i] < tl.hubs[j]:
			i++
		case src.Hubs[i] > tl.hubs[j]:
			j++
		default:
			h, ds := src.Hubs[i], src.Dist[i]
			for ; j < len(tl.hubs) && tl.hubs[j] == h; j++ {
				if d := ds + tl.dist[j]; d < out[tl.slot[j]] {
					out[tl.slot[j]] = d
				}
			}
			i++
		}
	}
	for k, c := range tl.atts {
		out[k] = g.finishAttachDist(srcAt, c, out[k], bound)
	}
	return out
}
