package roadnet

import (
	"errors"
	"math"
	"testing"
)

// TestCheckpointNilSafe pins the nil-receiver fast path every search relies
// on: a nil *Checkpoint never trips, never aborts, and costs nothing.
func TestCheckpointNilSafe(t *testing.T) {
	var ck *Checkpoint
	if ck.Spend(1000) {
		t.Error("nil checkpoint Spend reported a trip")
	}
	for i := 0; i < 200; i++ {
		if ck.Cancelled() {
			t.Fatal("nil checkpoint reported cancelled")
		}
	}
	if ck.Stopped() || ck.Exhausted() {
		t.Error("nil checkpoint reported stopped/exhausted")
	}
	if err := ck.CancelErr(); err != nil {
		t.Errorf("nil checkpoint CancelErr = %v", err)
	}
	if ck.Spent() != 0 {
		t.Errorf("nil checkpoint Spent = %d", ck.Spent())
	}
}

// TestCheckpointBudgetTrip verifies the work-budget ledger: spending past
// the cap trips the checkpoint into the exhausted state, which stops
// searches but is not a cancellation (no error, Cancelled stays false).
func TestCheckpointBudgetTrip(t *testing.T) {
	ck := NewCheckpoint(nil, nil, 100)
	if ck.Spend(60) {
		t.Fatal("tripped under budget")
	}
	if ck.Stopped() {
		t.Fatal("stopped under budget")
	}
	if !ck.Spend(60) {
		t.Fatal("no trip when overspending")
	}
	if !ck.Stopped() || !ck.Exhausted() {
		t.Error("overspent checkpoint must be stopped and exhausted")
	}
	if ck.Cancelled() {
		t.Error("budget exhaustion must not read as cancellation")
	}
	if err := ck.CancelErr(); err != nil {
		t.Errorf("budget exhaustion produced an error: %v", err)
	}
	// The ledger keeps counting what was charged.
	if got := ck.Spent(); got != 120 {
		t.Errorf("Spent = %d, want 120", got)
	}
	// Sticky: further spends keep reporting the trip.
	if !ck.Spend(1) {
		t.Error("trip is not sticky")
	}
}

// TestCheckpointCancelTrip verifies cancellation via the done channel: the
// first Spend that observes the closed channel trips the checkpoint, the
// trip is sticky, and CancelErr surfaces the cause.
func TestCheckpointCancelTrip(t *testing.T) {
	done := make(chan struct{})
	cause := errors.New("test cause")
	ck := NewCheckpoint(done, func() error { return cause }, 0)
	if ck.Spend(10) {
		t.Fatal("tripped before cancellation")
	}
	close(done)
	if !ck.Spend(1) {
		t.Fatal("Spend did not observe the closed done channel")
	}
	if !ck.Stopped() || !ck.Cancelled() {
		t.Error("cancelled checkpoint must be stopped and cancelled")
	}
	if ck.Exhausted() {
		t.Error("cancellation must not read as budget exhaustion")
	}
	if err := ck.CancelErr(); !errors.Is(err, cause) {
		t.Errorf("CancelErr = %v, want %v", err, cause)
	}
}

// TestCheckpointCancelledPolling verifies the tick-strided Cancelled poll
// used by allocation-free loops: it observes a closed done channel within
// one polling stride.
func TestCheckpointCancelledPolling(t *testing.T) {
	done := make(chan struct{})
	ck := NewCheckpoint(done, func() error { return errors.New("x") }, 0)
	close(done)
	tripped := false
	for i := 0; i < 128; i++ { // poll stride is 64 ticks
		if ck.Cancelled() {
			tripped = true
			break
		}
	}
	if !tripped {
		t.Fatal("Cancelled never observed the closed done channel within two strides")
	}
	// Once tripped, every later call reports it immediately.
	if !ck.Cancelled() {
		t.Error("cancelled state is not sticky")
	}
}

// TestCheckpointFirstTripWins pins the trip-state discipline: a budget trip
// recorded first is not overwritten by a later cancellation observation.
func TestCheckpointFirstTripWins(t *testing.T) {
	done := make(chan struct{})
	ck := NewCheckpoint(done, func() error { return errors.New("x") }, 10)
	if !ck.Spend(20) {
		t.Fatal("no budget trip")
	}
	close(done)
	for i := 0; i < 128; i++ {
		ck.Cancelled()
	}
	if ck.Cancelled() {
		t.Error("budget trip was overwritten by a later cancellation")
	}
	if !ck.Exhausted() {
		t.Error("budget trip lost")
	}
	if err := ck.CancelErr(); err != nil {
		t.Errorf("budget-tripped checkpoint returned an error: %v", err)
	}
}

// TestDijkstraMultiCkAbort verifies the all-or-nothing abort discipline of
// the checked searches: a tripped checkpoint yields +Inf for every vertex,
// never a partial distance array.
func TestDijkstraMultiCkAbort(t *testing.T) {
	g := gridGraph(8) // 64 vertices
	ck := NewCheckpoint(nil, nil, 4)
	dist := g.DijkstraMultiCk([]Seed{{Vertex: 0, Dist: 0}}, ck)
	if !ck.Stopped() {
		t.Fatal("budget of 4 did not stop a 64-vertex sweep")
	}
	for v, d := range dist {
		if !math.IsInf(d, 1) {
			t.Fatalf("aborted search leaked finite distance %v at vertex %d", d, v)
		}
	}
	// The same search unchecked is exact.
	full := g.DijkstraMulti([]Seed{{Vertex: 0, Dist: 0}})
	if math.IsInf(full[63], 1) {
		t.Fatal("unchecked search did not reach the far end")
	}
}
