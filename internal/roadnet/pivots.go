package roadnet

import (
	"fmt"
	"math"
)

// PivotTable stores exact shortest-path distances from h pivot vertices to
// every vertex of the road network (Section 4.1: each POI and each user
// keeps its distances dist_RN(·, rp_k) to the road-network pivots). The
// table supports the triangle-inequality lower/upper distance bounds of
// Lemma 5 and Eq. (16)/(17).
type PivotTable struct {
	pivots []VertexID
	dist   [][]float64 // dist[k][v] = dist_RN(rp_k, v)
}

// BuildPivotTable runs one Dijkstra per pivot and returns the table.
func BuildPivotTable(g *Graph, pivots []VertexID) *PivotTable {
	if len(pivots) == 0 {
		panic("roadnet: BuildPivotTable needs at least one pivot")
	}
	t := &PivotTable{
		pivots: append([]VertexID(nil), pivots...),
		dist:   make([][]float64, len(pivots)),
	}
	for k, p := range pivots {
		t.dist[k] = g.Dijkstra(p)
	}
	return t
}

// NumPivots returns h, the number of road-network pivots.
func (t *PivotTable) NumPivots() int { return len(t.pivots) }

// Pivots returns the pivot vertex ids.
func (t *PivotTable) Pivots() []VertexID { return t.pivots }

// VertexDist returns dist_RN(rp_k, v).
func (t *PivotTable) VertexDist(k int, v VertexID) float64 {
	t.check(k)
	return t.dist[k][v]
}

// Row returns the full distance array of pivot k. Callers must treat it as
// read-only.
func (t *PivotTable) Row(k int) []float64 {
	t.check(k)
	return t.dist[k]
}

// AttachDist returns dist_RN(a, rp_k) for an attachment point a.
func (t *PivotTable) AttachDist(g *Graph, k int, a Attach) float64 {
	t.check(k)
	return g.DistToVertexVia(a, t.dist[k])
}

// AttachDistAll returns dist_RN(a, rp_k) for every pivot k, in pivot order.
// These are the per-object distance vectors stored in index leaf entries.
func (t *PivotTable) AttachDistAll(g *Graph, a Attach) []float64 {
	out := make([]float64, len(t.pivots))
	for k := range t.pivots {
		out[k] = g.DistToVertexVia(a, t.dist[k])
	}
	return out
}

// LowerBound returns a triangle-inequality lower bound on dist_RN between
// two objects given their pivot-distance vectors:
//
//	lb = max_k |da[k] - db[k]|.
func LowerBound(da, db []float64) float64 {
	if len(da) != len(db) {
		panic(fmt.Sprintf("roadnet: pivot vector length mismatch %d != %d", len(da), len(db)))
	}
	lb := 0.0
	for k := range da {
		if math.IsInf(da[k], 1) || math.IsInf(db[k], 1) {
			continue // pivot unreachable from one side: no information
		}
		if d := math.Abs(da[k] - db[k]); d > lb {
			lb = d
		}
	}
	return lb
}

// UpperBound returns a triangle-inequality upper bound on dist_RN between
// two objects given their pivot-distance vectors:
//
//	ub = min_k (da[k] + db[k]).
func UpperBound(da, db []float64) float64 {
	if len(da) != len(db) {
		panic(fmt.Sprintf("roadnet: pivot vector length mismatch %d != %d", len(da), len(db)))
	}
	ub := math.Inf(1)
	for k := range da {
		if s := da[k] + db[k]; s < ub {
			ub = s
		}
	}
	return ub
}

func (t *PivotTable) check(k int) {
	if k < 0 || k >= len(t.pivots) {
		panic(fmt.Sprintf("roadnet: pivot %d out of range [0,%d)", k, len(t.pivots)))
	}
}
