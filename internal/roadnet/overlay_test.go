package roadnet_test

// Randomized twin test for the delta-overlay: a graph with a static
// oracle attached and an identical twin with no oracle receive the same
// mutation script, and every distance shape must agree bit-for-bit after
// every mutation. The twin's plain Dijkstra over the mutated adjacency
// is exact by construction, so any divergence is an overlay bug. Runs
// against both oracle families (CH and hub labels) because the overlay
// composes through their many-to-many and one-to-all kernels
// differently.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"gpssn/internal/geo"
	"gpssn/internal/roadnet"
	"gpssn/internal/roadnet/ch"
	"gpssn/internal/roadnet/hl"
)

// twinPair builds the same random connected graph twice and attaches an
// oracle to one copy.
func twinPair(t *testing.T, rng *rand.Rand, n int, kind string) (withOracle, plain *roadnet.Graph) {
	t.Helper()
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	type edge struct{ u, v int }
	var edges []edge
	for i := 1; i < n; i++ {
		edges = append(edges, edge{i - 1, i})
	}
	for i := 0; i < n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			edges = append(edges, edge{u, v})
		}
	}
	mk := func() *roadnet.Graph {
		g := roadnet.NewGraph(n, len(edges))
		for _, p := range pts {
			g.AddVertex(p)
		}
		for _, e := range edges {
			g.AddEdge(roadnet.VertexID(e.u), roadnet.VertexID(e.v))
		}
		return g
	}
	withOracle, plain = mk(), mk()
	switch kind {
	case "ch":
		withOracle.SetDistanceOracle(ch.Build(withOracle))
	case "hl":
		withOracle.SetDistanceOracle(hl.Build(withOracle))
	default:
		t.Fatalf("unknown oracle kind %q", kind)
	}
	return withOracle, plain
}

// almostEq compares distances up to the last-ulp association wobble
// between oracle shortcut sums and plain Dijkstra sums (a CH shortcut's
// weight is a build-time sum, so the same route can differ by one ulp).
// Any real overlay bug — a wrong path, a missed portal — is off by the
// length of a road segment, not 1e-12 relative.
func almostEq(a, b float64) bool {
	if a == b || (math.IsInf(a, 1) && math.IsInf(b, 1)) {
		return true
	}
	diff := math.Abs(a - b)
	return diff <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// compareAll checks every distance shape between the oracle-composed
// graph and its plain twin.
func compareAll(t *testing.T, rng *rand.Rand, g, twin *roadnet.Graph, tag string) {
	t.Helper()
	n := g.NumVertices()
	if twin.NumVertices() != n || twin.NumEdges() != g.NumEdges() {
		t.Fatalf("%s: twins diverged structurally", tag)
	}

	randSeeds := func() []roadnet.Seed {
		k := 1 + rng.Intn(3)
		seeds := make([]roadnet.Seed, k)
		for i := range seeds {
			seeds[i] = roadnet.Seed{Vertex: roadnet.VertexID(rng.Intn(n)), Dist: rng.Float64() * 5}
		}
		return seeds
	}

	// One-to-all from mixed old/new seeds.
	for trial := 0; trial < 3; trial++ {
		seeds := randSeeds()
		got := g.DijkstraMulti(seeds)
		want := twin.DijkstraMulti(seeds)
		if len(got) != n {
			t.Fatalf("%s: one-to-all length %d, want %d", tag, len(got), n)
		}
		for v := range want {
			if !almostEq(got[v], want[v]) {
				t.Fatalf("%s: one-to-all seeds=%v vertex %d: got %v want %v", tag, seeds, v, got[v], want[v])
			}
		}
	}

	// Attachment distances, bounded and unbounded, including attaches on
	// freshly added edges.
	randAttach := func() roadnet.Attach {
		return roadnet.Attach{Edge: roadnet.EdgeID(rng.Intn(g.NumEdges())), T: rng.Float64()}
	}
	for trial := 0; trial < 6; trial++ {
		a := randAttach()
		cands := []roadnet.Attach{randAttach(), randAttach(), randAttach()}
		got := g.DistAttachMany(a, cands)
		want := twin.DistAttachMany(a, cands)
		for i := range want {
			if !almostEq(got[i], want[i]) {
				t.Fatalf("%s: DistAttachMany a=%v c=%v: got %v want %v", tag, a, cands[i], got[i], want[i])
			}
		}
		bound := rng.Float64() * 60
		gotB := g.DistAttachWithin(a, bound, cands)
		wantB := twin.DistAttachWithin(a, bound, cands)
		for i := range wantB {
			if !almostEq(gotB[i], wantB[i]) {
				t.Fatalf("%s: DistAttachWithin bound=%v a=%v c=%v: got %v want %v", tag, bound, a, cands[i], gotB[i], wantB[i])
			}
		}
		if d, dw := g.DistAttach(a, cands[0]), twin.DistAttach(a, cands[0]); !almostEq(d, dw) {
			t.Fatalf("%s: DistAttach: got %v want %v", tag, d, dw)
		}
	}
}

func TestOverlayExactUnderChurn(t *testing.T) {
	for _, kind := range []string{"ch", "hl"} {
		t.Run(kind, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			g, twin := twinPair(t, rng, 40, kind)
			if !g.OverlayStats().Active {
				// No mutation yet: the static oracle should still be naked.
				if s := g.OverlayStats(); s.Active {
					t.Fatalf("overlay active before any mutation: %+v", s)
				}
			}
			compareAll(t, rng, g, twin, "pre-mutation")

			// Interleave vertex adds, edge adds (old-old, old-new,
			// new-new, duplicates), and full comparisons.
			for step := 0; step < 25; step++ {
				switch rng.Intn(4) {
				case 0: // new vertex near an existing one
					base := g.Vertex(roadnet.VertexID(rng.Intn(g.NumVertices())))
					p := geo.Pt(base.X+rng.Float64()*4-2, base.Y+rng.Float64()*4-2)
					v1, v2 := g.AddVertex(p), twin.AddVertex(p)
					if v1 != v2 {
						t.Fatalf("vertex ids diverged: %d vs %d", v1, v2)
					}
				case 1, 2: // edge between two random vertices (any age)
					u := roadnet.VertexID(rng.Intn(g.NumVertices()))
					v := roadnet.VertexID(rng.Intn(g.NumVertices()))
					if u == v {
						continue
					}
					g.AddEdge(u, v)
					twin.AddEdge(u, v)
				case 3: // duplicate an existing edge
					e := g.EdgeAt(roadnet.EdgeID(rng.Intn(g.NumEdges())))
					g.AddEdge(e.U, e.V)
					twin.AddEdge(e.U, e.V)
				}
				if step%5 == 4 {
					compareAll(t, rng, g, twin, fmt.Sprintf("%s step %d", kind, step))
				}
			}
			compareAll(t, rng, g, twin, "final")

			s := g.OverlayStats()
			if !s.Active || s.NewEdges == 0 || s.Portals == 0 {
				t.Fatalf("overlay stats not tracking churn: %+v", s)
			}
			if s.BaseN != 40 {
				t.Fatalf("overlay baseN = %d, want 40", s.BaseN)
			}
			if s.Queries == 0 {
				t.Fatalf("overlay served no composed queries")
			}
		})
	}
}

// TestOverlayCheckpointAbort verifies the all-or-nothing abort contract
// survives composition: a cancelled checkpoint yields all-+Inf results
// of the correct (post-mutation) length, never partial distances.
func TestOverlayCheckpointAbort(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g, _ := twinPair(t, rng, 30, "ch")
	v := g.AddVertex(geo.Pt(50, 50))
	g.AddEdge(v, 3)

	done := make(chan struct{})
	close(done)
	ck := roadnet.NewCheckpoint(done, func() error { return fmt.Errorf("cancelled") }, 0)
	res := g.DijkstraMultiCk([]roadnet.Seed{{Vertex: v, Dist: 0}}, ck)
	if len(res) != g.NumVertices() {
		t.Fatalf("aborted one-to-all length %d, want %d", len(res), g.NumVertices())
	}
	for i, d := range res {
		if !math.IsInf(d, 1) {
			t.Fatalf("aborted one-to-all leaked finite distance %v at %d", d, i)
		}
	}

	a := g.AttachVertex(v)
	out := g.DistAttachManyCk(a, []roadnet.Attach{{Edge: 0, T: 0.5}}, ck)
	if !math.IsInf(out[0], 1) {
		t.Fatalf("aborted attach batch leaked finite distance %v", out[0])
	}
}

// TestOverlayIsolatedVertex: a freshly added vertex with no edges is
// reachable only from itself; the overlay must not panic or invent
// paths, and the static oracle must stay attached.
func TestOverlayIsolatedVertex(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, twin := twinPair(t, rng, 20, "hl")
	v1 := g.AddVertex(geo.Pt(500, 500))
	twin.AddVertex(geo.Pt(500, 500))
	if g.Oracle() == nil {
		t.Fatal("AddVertex detached the oracle")
	}
	res := g.Dijkstra(0)
	if len(res) != g.NumVertices() {
		t.Fatalf("one-to-all length %d, want %d", len(res), g.NumVertices())
	}
	if !math.IsInf(res[v1], 1) {
		t.Fatalf("isolated vertex reachable: %v", res[v1])
	}
	self := g.DijkstraMulti([]roadnet.Seed{{Vertex: v1, Dist: 2.5}})
	if self[v1] != 2.5 {
		t.Fatalf("isolated self-distance %v, want 2.5", self[v1])
	}
}

// TestGridIncrementalInsert: mutations no longer force SnapPoint into a
// full rebuild; snapping stays correct against a rebuilt-from-scratch
// twin after every insert.
func TestGridIncrementalInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, twin := twinPair(t, rng, 30, "ch")
	if _, ok := g.SnapPoint(geo.Pt(1, 1)); !ok {
		t.Fatal("snap failed on seeded graph")
	}
	builds := g.GridBuilds()
	if builds != 1 {
		t.Fatalf("expected exactly one lazy grid build, got %d", builds)
	}
	for step := 0; step < 20; step++ {
		u := roadnet.VertexID(rng.Intn(g.NumVertices()))
		v := roadnet.VertexID(rng.Intn(g.NumVertices()))
		if u == v {
			continue
		}
		g.AddEdge(u, v)
		twin.AddEdge(u, v)
		p := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		got, ok1 := g.SnapPoint(p)
		want, ok2 := twin.SnapPoint(p)
		if ok1 != ok2 {
			t.Fatalf("snap ok diverged at step %d", step)
		}
		// The nearest segment can tie; compare resulting locations.
		if !almostEq(g.Location(got).Dist(p), twin.Location(want).Dist(p)) {
			t.Fatalf("step %d: snap dist %v vs rebuilt twin %v", step,
				g.Location(got).Dist(p), twin.Location(want).Dist(p))
		}
	}
	if g.GridBuilds() != builds {
		t.Fatalf("in-bounds edge inserts forced %d grid rebuilds", g.GridBuilds()-builds)
	}
	// An edge escaping the built extent must fall back to a rebuild and
	// still answer correctly.
	far1 := g.AddVertex(geo.Pt(900, 900))
	far2 := g.AddVertex(geo.Pt(905, 905))
	tf1 := twin.AddVertex(geo.Pt(900, 900))
	tf2 := twin.AddVertex(geo.Pt(905, 905))
	g.AddEdge(far1, far2)
	twin.AddEdge(tf1, tf2)
	got, _ := g.SnapPoint(geo.Pt(901, 901))
	if g.Location(got).Dist(geo.Pt(901, 901)) > 5 {
		t.Fatalf("out-of-extent edge not snappable after fallback: %v", got)
	}
	if g.GridBuilds() != builds+1 {
		t.Fatalf("expected exactly one fallback rebuild, got %d total", g.GridBuilds())
	}
}
