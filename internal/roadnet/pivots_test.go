package roadnet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gpssn/internal/geo"
)

func TestBuildPivotTable(t *testing.T) {
	g := gridGraph(6)
	pt := BuildPivotTable(g, []VertexID{0, 35})
	if pt.NumPivots() != 2 {
		t.Fatalf("NumPivots = %d", pt.NumPivots())
	}
	// Pivot 0 at (0,0): distance to vertex 35 = (5,5) is 10.
	if got := pt.VertexDist(0, 35); math.Abs(got-10) > 1e-9 {
		t.Errorf("VertexDist = %v, want 10", got)
	}
	if got := pt.VertexDist(1, 35); got != 0 {
		t.Errorf("pivot self-distance = %v", got)
	}
}

func TestBuildPivotTableEmptyPanics(t *testing.T) {
	g := gridGraph(2)
	defer func() {
		if recover() == nil {
			t.Error("empty pivot set should panic")
		}
	}()
	BuildPivotTable(g, nil)
}

func TestAttachDist(t *testing.T) {
	g := gridGraph(4)
	pt := BuildPivotTable(g, []VertexID{0})
	// Attach 0.5 along edge 0 (between (0,0) and (1,0)): distance to pivot
	// vertex 0 is 0.5.
	a := g.AttachAt(EdgeID(0), 0.5)
	if got := pt.AttachDist(g, 0, a); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("AttachDist = %v, want 0.5", got)
	}
	all := pt.AttachDistAll(g, a)
	if len(all) != 1 || math.Abs(all[0]-0.5) > 1e-9 {
		t.Errorf("AttachDistAll = %v", all)
	}
}

// Property: the pivot-based lower and upper bounds bracket the true
// road-network distance for random attachment pairs.
func TestPivotBoundsBracketTrueDistance(t *testing.T) {
	g := gridGraph(7)
	pivots := []VertexID{0, 24, 48}
	pt := BuildPivotTable(g, pivots)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		a := g.AttachAt(EdgeID(rng.Intn(g.NumEdges())), rng.Float64())
		b := g.AttachAt(EdgeID(rng.Intn(g.NumEdges())), rng.Float64())
		da := pt.AttachDistAll(g, a)
		db := pt.AttachDistAll(g, b)
		lb := LowerBound(da, db)
		ub := UpperBound(da, db)
		d := g.DistAttach(a, b)
		if lb > d+1e-9 {
			t.Fatalf("trial %d: lb %v > true dist %v", trial, lb, d)
		}
		if ub < d-1e-9 {
			t.Fatalf("trial %d: ub %v < true dist %v", trial, ub, d)
		}
	}
}

func TestBoundsMismatchedLengthsPanic(t *testing.T) {
	for name, fn := range map[string]func(){
		"LowerBound": func() { LowerBound([]float64{1}, []float64{1, 2}) },
		"UpperBound": func() { UpperBound([]float64{1}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic on length mismatch", name)
				}
			}()
			fn()
		}()
	}
}

func TestLowerBoundIgnoresUnreachablePivots(t *testing.T) {
	inf := math.Inf(1)
	lb := LowerBound([]float64{inf, 3}, []float64{inf, 7})
	if lb != 4 {
		t.Errorf("lb = %v, want 4", lb)
	}
	// All-unreachable yields the trivial bound 0.
	if lb := LowerBound([]float64{inf}, []float64{inf}); lb != 0 {
		t.Errorf("all-inf lb = %v, want 0", lb)
	}
}

// Property: with a single pivot, LowerBound <= UpperBound for arbitrary
// non-negative values (|a-b| <= a+b). With multiple pivots the ordering is
// only guaranteed for vectors derived from an actual metric, which
// TestPivotBoundsBracketTrueDistance covers.
func TestBoundOrderingSinglePivotProperty(t *testing.T) {
	f := func(a, b float64) bool {
		da := []float64{math.Abs(math.Mod(a, 1000))}
		db := []float64{math.Abs(math.Mod(b, 1000))}
		if math.IsNaN(da[0]) {
			da[0] = 0
		}
		if math.IsNaN(db[0]) {
			db[0] = 0
		}
		return LowerBound(da, db) <= UpperBound(da, db)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPivotRowReadOnlyLength(t *testing.T) {
	g := gridGraph(3)
	pt := BuildPivotTable(g, []VertexID{4})
	if len(pt.Row(0)) != g.NumVertices() {
		t.Errorf("Row length = %d, want %d", len(pt.Row(0)), g.NumVertices())
	}
	if got := pt.Pivots(); len(got) != 1 || got[0] != 4 {
		t.Errorf("Pivots = %v", got)
	}
}

func TestPivotOutOfRangePanics(t *testing.T) {
	g := gridGraph(3)
	pt := BuildPivotTable(g, []VertexID{0})
	defer func() {
		if recover() == nil {
			t.Error("out-of-range pivot index should panic")
		}
	}()
	pt.VertexDist(5, 0)
}

func BenchmarkDijkstraGrid50(b *testing.B) {
	g := gridGraph(50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Dijkstra(0)
	}
}

func BenchmarkDistAttach(b *testing.B) {
	g := gridGraph(40)
	rng := rand.New(rand.NewSource(1))
	p := g.AttachAt(EdgeID(rng.Intn(g.NumEdges())), rng.Float64())
	q := g.AttachAt(EdgeID(rng.Intn(g.NumEdges())), rng.Float64())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.DistAttach(p, q)
	}
}

func BenchmarkSnapPoint(b *testing.B) {
	g := gridGraph(60)
	rng := rand.New(rand.NewSource(2))
	pts := make([]geo.Point, 1000)
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64()*59, rng.Float64()*59)
	}
	g.SnapPoint(pts[0]) // build grid outside the timed loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.SnapPoint(pts[i%len(pts)])
	}
}
