package roadnet

import (
	"math"
	"math/rand"
	"testing"

	"gpssn/internal/geo"
)

func TestAStarMatchesDijkstraOnGrid(t *testing.T) {
	g := gridGraph(12)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		src := VertexID(rng.Intn(g.NumVertices()))
		dst := VertexID(rng.Intn(g.NumVertices()))
		want := g.Dijkstra(src)[dst]
		got := g.AStar(src, dst)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("AStar(%d,%d) = %v, Dijkstra %v", src, dst, got, want)
		}
	}
}

func TestAStarSameVertex(t *testing.T) {
	g := gridGraph(3)
	if got := g.AStar(4, 4); got != 0 {
		t.Errorf("AStar(v,v) = %v", got)
	}
}

func TestAStarUnreachable(t *testing.T) {
	g := NewGraph(0, 0)
	a := g.AddVertex(geo.Pt(0, 0))
	b := g.AddVertex(geo.Pt(1, 0))
	g.AddEdge(a, b)
	c := g.AddVertex(geo.Pt(99, 99))
	d := g.AddVertex(geo.Pt(98, 99))
	g.AddEdge(c, d)
	if got := g.AStar(a, c); !math.IsInf(got, 1) {
		t.Errorf("unreachable AStar = %v", got)
	}
}

func TestAStarAttachMatchesDistAttach(t *testing.T) {
	g := gridGraph(8)
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 30; trial++ {
		a := g.AttachAt(EdgeID(rng.Intn(g.NumEdges())), rng.Float64())
		b := g.AttachAt(EdgeID(rng.Intn(g.NumEdges())), rng.Float64())
		want := g.DistAttach(a, b)
		got := g.AStarAttach(a, b)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("AStarAttach = %v, DistAttach = %v", got, want)
		}
	}
}

func BenchmarkAStarLong(b *testing.B) {
	g := gridGraph(60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.AStar(0, VertexID(g.NumVertices()-1))
	}
}

func BenchmarkDijkstraLong(b *testing.B) {
	g := gridGraph(60)
	dst := VertexID(g.NumVertices() - 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Dijkstra(0)[dst]
	}
}
