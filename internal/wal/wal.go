// Package wal implements the write-ahead log that makes dynamic updates
// durable (docs/ROBUSTNESS.md §7). A log is a single append-only file: a
// versioned magic header carrying the LSN the file starts at, followed by
// length-prefixed records, each framed as
//
//	u32 body length | body | u64 CRC64-ECMA(body)
//	body = u64 LSN | u8 kind | payload
//
// LSNs are assigned monotonically (+1 per record, never reused, never
// reset — a checkpoint truncates the file but the numbering continues), so
// replay after an interrupted checkpoint can skip records the checkpoint
// already made durable by comparing LSNs instead of guessing.
//
// Recovery is torn-tail tolerant: a record cut short by a crash mid-write
// — a partial frame at the end of the file — is discarded and the file is
// physically truncated back to the last intact record, exactly what a
// half-written page deserves. Damage *before* the tail (a CRC mismatch or
// an LSN discontinuity followed by more data) cannot be explained by a
// torn write and is reported as a typed *CorruptError instead: silently
// dropping the suffix would silently drop acknowledged updates.
//
// Appends honour a configurable fsync policy: SyncAlways fsyncs before
// every append returns (an acknowledged update survives an immediate
// crash), SyncBatch group-commits — appends return after the OS write and
// a background flusher fsyncs at most once per FlushWindow, bounding loss
// to one window — and SyncNone leaves persistence to the OS entirely.
//
// The failpoint sites "wal.append", "wal.sync" and "wal.truncate" let the
// crash-matrix tests inject I/O errors, torn frames and bit flips through
// the real write path.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"gpssn/internal/failpoint"
)

// Magic identifies a GP-SSN write-ahead log file; the last byte is the
// format version.
var Magic = [8]byte{'G', 'P', 'S', 'S', 'W', 'A', 'L', 1}

// headerLen is the fixed file header: magic plus the u64 start LSN.
const headerLen = 16

// MaxRecordLen bounds one record body (64 MiB). A declared length beyond
// it cannot come from this writer, so it is treated as frame damage rather
// than driving a giant allocation.
const MaxRecordLen = 1 << 26

// minBodyLen is the smallest legal body: LSN + kind, empty payload.
const minBodyLen = 9

var crcTable = crc64.MakeTable(crc64.ECMA)

// Kind identifies which facade mutation a record replays. Values are part
// of the on-disk format; never renumber.
type Kind uint8

const (
	// KindAddPOI replays DB.AddPOI: x, y, keywords.
	KindAddPOI Kind = 1 + iota
	// KindAddUser replays DB.AddUser: x, y, interests.
	KindAddUser
	// KindAddFriendship replays DB.AddFriendship: a, b.
	KindAddFriendship
	// KindAddRoadVertex replays DB.AddRoadVertex: x, y.
	KindAddRoadVertex
	// KindAddRoadEdge replays DB.AddRoadEdge: u, v.
	KindAddRoadEdge

	kindEnd
)

// Valid reports whether k is a known record kind.
func (k Kind) Valid() bool { return k >= KindAddPOI && k < kindEnd }

func (k Kind) String() string {
	switch k {
	case KindAddPOI:
		return "AddPOI"
	case KindAddUser:
		return "AddUser"
	case KindAddFriendship:
		return "AddFriendship"
	case KindAddRoadVertex:
		return "AddRoadVertex"
	case KindAddRoadEdge:
		return "AddRoadEdge"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs before every Append returns: an acknowledged
	// update survives an immediate crash. The default.
	SyncAlways SyncPolicy = iota
	// SyncBatch group-commits: Append returns after the OS write and a
	// background flusher fsyncs at most once per FlushWindow. A crash
	// loses at most one window of acknowledged updates.
	SyncBatch
	// SyncNone never fsyncs; the OS persists pages at its leisure. A
	// crash may lose everything since the last checkpoint.
	SyncNone
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncBatch:
		return "batch"
	case SyncNone:
		return "none"
	}
	return "always"
}

// ParseSyncPolicy maps the flag/config spelling onto a policy; the empty
// string means SyncAlways.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "always":
		return SyncAlways, nil
	case "batch":
		return SyncBatch, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want \"always\", \"batch\" or \"none\")", s)
}

// ErrCorrupt is matched (errors.Is) by every *CorruptError.
var ErrCorrupt = errors.New("wal: log corrupt")

// CorruptError reports mid-log damage recovery cannot repair: a record
// before the tail whose checksum, length, kind, or LSN sequence is wrong.
// (Tail damage — a torn final frame — is repaired by truncation and never
// surfaces as an error.)
type CorruptError struct {
	// Path is the log file.
	Path string
	// Offset is the byte offset of the damaged frame.
	Offset int64
	// LastLSN is the last intact record's LSN before the damage.
	LastLSN uint64
	// Reason describes the detected damage.
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: %s: offset %d (after LSN %d): %s", e.Path, e.Offset, e.LastLSN, e.Reason)
}

// Unwrap makes errors.Is(err, ErrCorrupt) match.
func (e *CorruptError) Unwrap() error { return ErrCorrupt }

// Record is one decoded update.
type Record struct {
	LSN     uint64
	Kind    Kind
	Payload []byte
}

// Options tunes a Log.
type Options struct {
	// Sync is the fsync policy; zero value SyncAlways.
	Sync SyncPolicy
	// FlushWindow is the SyncBatch group-commit interval; default 2ms.
	FlushWindow time.Duration
}

func (o Options) withDefaults() Options {
	if o.FlushWindow <= 0 {
		o.FlushWindow = 2 * time.Millisecond
	}
	return o
}

// Log is an open write-ahead log. Append/Sync/Checkpoint/Stats are safe
// for concurrent use, though the facade additionally serializes appends
// under its update lock so LSN order matches apply order.
type Log struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	opt      Options
	startLSN uint64 // first LSN this file holds (header)
	nextLSN  uint64
	size     int64 // append offset: header + intact records
	lastSize int64 // append offset before the most recent record (Rollback)
	records  int64
	dirty    bool  // bytes written since the last fsync
	torn     int64 // bytes dropped by tail truncation at Open
	err      error // sticky: a torn append poisons the log like a crash

	fsyncs  atomic.Int64
	appends atomic.Int64

	flushStop chan struct{}
	flushDone chan struct{}
	closed    bool
}

// Stats is an observable snapshot of a Log, surfaced through DB.WALStats
// and the serve /statsz endpoint.
type Stats struct {
	Path string
	// Sync is the fsync policy as configured ("always", "batch", "none").
	Sync string
	// StartLSN is the first LSN this file holds; LastLSN the most recent
	// appended (0 = none ever). Pending records = LastLSN-StartLSN+1.
	StartLSN, LastLSN uint64
	// Records and Bytes describe the file since the last checkpoint.
	Records, Bytes int64
	// Appends and Fsyncs are lifetime counters for this process.
	Appends, Fsyncs int64
	// TornBytesDropped is how many trailing bytes Open discarded as a
	// torn tail (0 = the file ended cleanly).
	TornBytesDropped int64
}

// Open opens (or creates) the log at path and scans every intact record.
// A torn tail is physically truncated away — the scan result is exactly
// what later appends will follow — while mid-log damage fails with a
// *CorruptError. createStart is the LSN a freshly created file begins at
// (appliedLSN+1 of the base state the log pairs with); it is ignored when
// the file already holds a valid header.
func Open(path string, createStart uint64, opt Options) (*Log, []Record, error) {
	opt = opt.withDefaults()
	if createStart == 0 {
		createStart = 1
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l := &Log{f: f, path: path, opt: opt}
	recs, err := l.scan(createStart)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if opt.Sync == SyncBatch {
		l.flushStop = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flusher()
	}
	return l, recs, nil
}

// scan validates the header (initialising a fresh or torn-header file),
// decodes every intact record, and truncates a torn tail.
func (l *Log) scan(createStart uint64) ([]Record, error) {
	fi, err := l.f.Stat()
	if err != nil {
		return nil, fmt.Errorf("wal: stat %s: %w", l.path, err)
	}
	fsize := fi.Size()
	if fsize < headerLen {
		// Empty file, or a crash mid-creation tore the header before any
		// record could exist (the header is fsynced before the first
		// append). Either way: (re)initialise.
		return nil, l.writeHeader(createStart)
	}
	head := make([]byte, headerLen)
	if _, err := l.f.ReadAt(head, 0); err != nil {
		return nil, fmt.Errorf("wal: read header %s: %w", l.path, err)
	}
	if [8]byte(head[:8]) != Magic {
		if string(head[:7]) == string(Magic[:7]) {
			return nil, &CorruptError{Path: l.path, Offset: 0, Reason: fmt.Sprintf("version %d, want %d", head[7], Magic[7])}
		}
		return nil, &CorruptError{Path: l.path, Offset: 0, Reason: fmt.Sprintf("bad magic %q", head[:8])}
	}
	l.startLSN = binary.LittleEndian.Uint64(head[8:])
	if l.startLSN == 0 {
		return nil, &CorruptError{Path: l.path, Offset: 0, Reason: "start LSN 0"}
	}
	l.nextLSN = l.startLSN

	body, err := io.ReadAll(io.NewSectionReader(l.f, headerLen, fsize-headerLen))
	if err != nil {
		return nil, fmt.Errorf("wal: read %s: %w", l.path, err)
	}
	var recs []Record
	off := 0
	for off < len(body) {
		frameStart := int64(headerLen + off)
		rec, n, ok, cerr := l.decodeFrame(body[off:], frameStart)
		if cerr != nil {
			return nil, cerr
		}
		if !ok {
			// Torn tail: drop it on the floor and truncate the file so the
			// next append lands right after the last intact record.
			l.torn = fsize - frameStart
			if err := l.f.Truncate(frameStart); err != nil {
				return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", l.path, err)
			}
			if err := l.f.Sync(); err != nil {
				return nil, fmt.Errorf("wal: sync %s: %w", l.path, err)
			}
			break
		}
		recs = append(recs, rec)
		l.nextLSN = rec.LSN + 1
		off += n
	}
	l.records = int64(len(recs))
	l.size = fsize - l.torn
	l.lastSize = l.size
	return recs, nil
}

// decodeFrame decodes one frame at the start of b (which begins at file
// offset frameStart). ok=false means the frame is a torn tail — the bytes
// cannot hold an intact frame and nothing follows them. A complete frame
// that fails validation with more data after it is mid-log corruption.
func (l *Log) decodeFrame(b []byte, frameStart int64) (rec Record, n int, ok bool, err error) {
	lastLSN := l.nextLSN - 1
	corrupt := func(reason string) (Record, int, bool, error) {
		return Record{}, 0, false, &CorruptError{Path: l.path, Offset: frameStart, LastLSN: lastLSN, Reason: reason}
	}
	if len(b) < 4 {
		return Record{}, 0, false, nil // torn length prefix
	}
	blen := binary.LittleEndian.Uint32(b)
	if blen < minBodyLen || blen > MaxRecordLen {
		// An implausible length cannot be parsed past. If it is the last
		// frame it is indistinguishable from a torn write of the length
		// prefix itself; damage with a full frame's worth of data after
		// the prefix is corruption.
		if len(b) < int(4+blen)+8 || blen > MaxRecordLen {
			return Record{}, 0, false, nil
		}
		return corrupt(fmt.Sprintf("implausible record length %d", blen))
	}
	if len(b) < int(4+blen)+8 {
		return Record{}, 0, false, nil // torn body or checksum
	}
	body := b[4 : 4+blen]
	sum := binary.LittleEndian.Uint64(b[4+blen:])
	if crc64.Checksum(body, crcTable) != sum {
		if len(b) == int(4+blen)+8 {
			// The final frame: a bit flipped in flight and a torn rewrite
			// look the same from here, and dropping the unacknowledgeable
			// tail record is the recovery both deserve.
			return Record{}, 0, false, nil
		}
		return corrupt("checksum mismatch before the tail")
	}
	lsn := binary.LittleEndian.Uint64(body)
	kind := Kind(body[8])
	if lsn != l.nextLSN {
		return corrupt(fmt.Sprintf("LSN %d, want %d (sequence broken)", lsn, l.nextLSN))
	}
	if !kind.Valid() {
		return corrupt(fmt.Sprintf("unknown record kind %d", kind))
	}
	rec = Record{LSN: lsn, Kind: kind, Payload: append([]byte(nil), body[9:]...)}
	return rec, int(4+blen) + 8, true, nil
}

// writeHeader (re)initialises the file to an empty log starting at start.
// The header is always fsynced — whatever the append policy — so a torn
// header can only mean no record was ever appended.
func (l *Log) writeHeader(start uint64) error {
	var head [headerLen]byte
	copy(head[:8], Magic[:])
	binary.LittleEndian.PutUint64(head[8:], start)
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: init %s: %w", l.path, err)
	}
	if _, err := l.f.WriteAt(head[:], 0); err != nil {
		return fmt.Errorf("wal: init %s: %w", l.path, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: init %s: %w", l.path, err)
	}
	l.startLSN = start
	l.nextLSN = start
	l.size = headerLen
	l.lastSize = headerLen
	l.records = 0
	l.dirty = false
	return nil
}

// Append frames one record, writes it at the end of the log, and applies
// the sync policy. It returns the record's LSN. The failpoint site
// "wal.append" can inject an error (nothing written), a torn frame (the
// first N bytes hit the disk and the log is poisoned, as a crash would),
// or a bit flip (the frame is silently corrupted on disk; the checksum
// still describes the intended body, so recovery detects it).
func (l *Log) Append(kind Kind, payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: %s: appending to a closed log", l.path)
	}
	if l.err != nil {
		return 0, l.err
	}
	if len(payload) > MaxRecordLen-minBodyLen {
		return 0, fmt.Errorf("wal: %s: record payload %d exceeds limit", l.path, len(payload))
	}
	lsn := l.nextLSN
	body := make([]byte, minBodyLen+len(payload))
	binary.LittleEndian.PutUint64(body, lsn)
	body[8] = byte(kind)
	copy(body[9:], payload)
	sum := crc64.Checksum(body, crcTable)

	frame := make([]byte, 0, 4+len(body)+8)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(body)))
	frame = append(frame, body...)
	frame = binary.LittleEndian.AppendUint64(frame, sum)

	if f, ok := failpoint.Eval("wal.append"); ok {
		switch f.Mode {
		case failpoint.ModeError:
			return 0, fmt.Errorf("wal: %s: append: %w", l.path, f.Err)
		case failpoint.ModeShortWrite:
			n := f.N
			if n > len(frame) {
				n = len(frame)
			}
			l.f.WriteAt(frame[:n], l.size)
			l.f.Sync()
			l.err = fmt.Errorf("wal: %s: torn append (injected crash); log unusable until reopened", l.path)
			return 0, l.err
		case failpoint.ModeBitFlip:
			off := f.N % (len(body) * 8)
			frame[4+off/8] ^= 1 << (off % 8)
		}
	}
	if _, err := l.f.WriteAt(frame, l.size); err != nil {
		l.err = fmt.Errorf("wal: %s: append: %w", l.path, err)
		return 0, l.err
	}
	l.lastSize = l.size
	l.size += int64(len(frame))
	l.records++
	l.nextLSN = lsn + 1
	l.appends.Add(1)

	switch l.opt.Sync {
	case SyncAlways:
		if err := l.syncLocked(); err != nil {
			// The append is being reported failed, but its frame already
			// hit the OS write path: unwrite it (best effort) so recovery
			// cannot replay a mutation the caller saw rejected. Either
			// way the log is poisoned — an fsync failure means the device
			// is lying and only a reopen re-establishes what is on disk.
			if terr := l.f.Truncate(l.lastSize); terr == nil {
				l.size = l.lastSize
				l.records--
				l.nextLSN = lsn
			}
			l.err = err
			return 0, err
		}
	case SyncBatch:
		l.dirty = true
	}
	return lsn, nil
}

// Rollback undoes the most recent append — and only that one — by
// truncating the file back to the frame's start. The facade uses it when
// an apply step fails after its record was already framed, so the log
// never replays a mutation the live DB rejected. lsn must be the LSN
// Append just returned.
func (l *Log) Rollback(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if lsn != l.nextLSN-1 || l.lastSize >= l.size {
		return fmt.Errorf("wal: %s: rollback of LSN %d is not the most recent append", l.path, lsn)
	}
	if err := l.f.Truncate(l.lastSize); err != nil {
		l.err = fmt.Errorf("wal: %s: rollback: %w", l.path, err)
		return l.err
	}
	l.size = l.lastSize
	l.records--
	l.nextLSN = lsn
	if l.opt.Sync == SyncAlways {
		if err := l.syncLocked(); err != nil {
			l.err = err
			return err
		}
	}
	return nil
}

// Sync forces everything appended so far onto stable storage, whatever
// the policy. The failpoint site "wal.sync" can inject an fsync failure.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.err != nil {
		return l.err
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if err := failpoint.Error("wal.sync"); err != nil {
		return fmt.Errorf("wal: %s: sync: %w", l.path, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %s: sync: %w", l.path, err)
	}
	l.fsyncs.Add(1)
	l.dirty = false
	return nil
}

// Checkpoint truncates the log after a checkpoint made every record with
// LSN <= applied durable elsewhere: the file is reset to an empty log
// whose header starts at applied+1. Safe against a crash at any point —
// a surviving pre-truncation file replays records the checkpoint already
// holds, and the replayer skips them by LSN; a torn header reinitialises.
// The failpoint site "wal.truncate" can inject a failure before the
// truncation, leaving the pre-checkpoint log intact.
func (l *Log) Checkpoint(applied uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: %s: checkpointing a closed log", l.path)
	}
	if l.err != nil {
		return l.err
	}
	if applied+1 < l.nextLSN {
		return fmt.Errorf("wal: %s: checkpoint at LSN %d would drop unapplied records (next LSN %d)", l.path, applied, l.nextLSN)
	}
	if err := failpoint.Error("wal.truncate"); err != nil {
		return fmt.Errorf("wal: %s: checkpoint: %w", l.path, err)
	}
	if err := l.writeHeader(applied + 1); err != nil {
		l.err = err
		return err
	}
	l.fsyncs.Add(1)
	return nil
}

// StartLSN returns the first LSN this file holds.
func (l *Log) StartLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.startLSN
}

// LastLSN returns the most recently appended LSN (StartLSN-1 when the
// file holds no records).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// Size returns the current file size in bytes (header included).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Path:             l.path,
		Sync:             l.opt.Sync.String(),
		StartLSN:         l.startLSN,
		LastLSN:          l.nextLSN - 1,
		Records:          l.records,
		Bytes:            l.size,
		Appends:          l.appends.Load(),
		Fsyncs:           l.fsyncs.Load(),
		TornBytesDropped: l.torn,
	}
}

// Close stops the batch flusher, syncs outstanding bytes (unless the
// policy is SyncNone), and closes the file. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	stop := l.flushStop
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.flushDone
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var err error
	if l.opt.Sync != SyncNone && l.err == nil && l.dirty {
		err = l.syncLocked()
	}
	if cerr := l.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: close %s: %w", l.path, cerr)
	}
	return err
}

// flusher is the SyncBatch group-commit loop: at most one fsync per
// FlushWindow, and only when something was appended since the last one.
func (l *Log) flusher() {
	defer close(l.flushDone)
	t := time.NewTicker(l.opt.FlushWindow)
	defer t.Stop()
	for {
		select {
		case <-l.flushStop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.err == nil && l.dirty {
				l.syncLocked() // best effort; Append surfaces sticky errors
			}
			l.mu.Unlock()
		}
	}
}
