package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeedLog builds a healthy three-record log and returns its raw bytes,
// the base every fuzz mutation starts from.
func fuzzSeedLog(tb testing.TB) []byte {
	tb.Helper()
	path := filepath.Join(tb.TempDir(), "seed.wal")
	l, _, err := Open(path, 1, Options{Sync: SyncNone})
	if err != nil {
		tb.Fatal(err)
	}
	for i, k := range []Kind{KindAddPOI, KindAddRoadEdge, KindAddUser} {
		if _, err := l.Append(k, []byte{byte(i), 0xAB, byte(i * 7)}); err != nil {
			tb.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		tb.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return raw
}

// FuzzWALReplay feeds arbitrary bytes to the replay path. The contract:
// Open never panics; it either reports mid-log damage as a *CorruptError
// (errors.Is ErrCorrupt) or recovers a usable log — and a recovered log
// must really be usable: the file was physically repaired, so a reopen
// yields the identical record sequence, and appends continue from the
// recovered LSN.
func FuzzWALReplay(f *testing.F) {
	seed := fuzzSeedLog(f)
	f.Add(seed)
	f.Add(seed[:0])                 // empty file
	f.Add(seed[:headerLen-3])       // torn header
	f.Add(seed[:headerLen])         // empty log
	f.Add(seed[:headerLen+2])       // torn length prefix
	f.Add(seed[:len(seed)-5])       // torn tail
	flip := append([]byte(nil), seed...)
	flip[headerLen+6] ^= 0x40 // corrupt first record
	f.Add(flip)
	badMagic := append([]byte(nil), seed...)
	badMagic[0] ^= 0xFF
	f.Add(badMagic)
	badVer := append([]byte(nil), seed...)
	badVer[7] = 99
	f.Add(badVer)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, recs, err := Open(path, 1, Options{Sync: SyncNone})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Open returned a non-corruption error for byte salad: %v", err)
			}
			return
		}
		start, last := l.StartLSN(), l.LastLSN()
		if uint64(len(recs)) != last+1-start {
			t.Fatalf("recovered %d records but LSN range is [%d,%d]", len(recs), start, last)
		}
		for i, r := range recs {
			if r.LSN != start+uint64(i) {
				t.Fatalf("record %d has LSN %d, want %d", i, r.LSN, start+uint64(i))
			}
			if !r.Kind.Valid() {
				t.Fatalf("record %d has invalid kind %d", i, r.Kind)
			}
		}
		if _, err := l.Append(KindAddPOI, []byte("post-recovery")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		// Reopen: recovery repaired the file in place, so the second pass
		// sees a clean log — the same records plus the new tail.
		l2, recs2, err := Open(path, 1, Options{Sync: SyncNone})
		if err != nil {
			t.Fatalf("reopen of a recovered log failed: %v", err)
		}
		defer l2.Close()
		if len(recs2) != len(recs)+1 {
			t.Fatalf("reopen found %d records, want %d", len(recs2), len(recs)+1)
		}
		for i, r := range recs {
			if recs2[i].LSN != r.LSN || recs2[i].Kind != r.Kind || string(recs2[i].Payload) != string(r.Payload) {
				t.Fatalf("record %d changed across reopen: %+v vs %+v", i, recs2[i], r)
			}
		}
	})
}
