package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gpssn/internal/failpoint"
)

func tmpLog(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "test.wal")
}

func mustOpen(t *testing.T, path string, start uint64, opt Options) (*Log, []Record) {
	t.Helper()
	l, recs, err := Open(path, start, opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l, recs
}

func appendN(t *testing.T, l *Log, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := l.Append(KindAddPOI, []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
}

func TestWALRoundTrip(t *testing.T) {
	path := tmpLog(t)
	l, recs := mustOpen(t, path, 0, Options{})
	if len(recs) != 0 {
		t.Fatalf("fresh log returned %d records", len(recs))
	}
	kinds := []Kind{KindAddPOI, KindAddUser, KindAddFriendship, KindAddRoadVertex, KindAddRoadEdge}
	for i, k := range kinds {
		lsn, err := l.Append(k, []byte{byte(i), 0xff, byte(i)})
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("LSN %d, want %d", lsn, i+1)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, recs := mustOpen(t, path, 0, Options{})
	if len(recs) != len(kinds) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(kinds))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) || r.Kind != kinds[i] {
			t.Fatalf("record %d = {LSN %d, %s}, want {%d, %s}", i, r.LSN, r.Kind, i+1, kinds[i])
		}
		want := []byte{byte(i), 0xff, byte(i)}
		if string(r.Payload) != string(want) {
			t.Fatalf("record %d payload %v, want %v", i, r.Payload, want)
		}
	}
	if got := l2.LastLSN(); got != uint64(len(kinds)) {
		t.Fatalf("LastLSN %d, want %d", got, len(kinds))
	}
}

func TestWALEmptyPayloadAndContinuedLSN(t *testing.T) {
	path := tmpLog(t)
	l, _ := mustOpen(t, path, 41, Options{})
	lsn, err := l.Append(KindAddRoadVertex, nil)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if lsn != 41 {
		t.Fatalf("first LSN %d, want createStart 41", lsn)
	}
	l.Close()
	_, recs := mustOpen(t, path, 999, Options{}) // createStart ignored: file exists
	if len(recs) != 1 || recs[0].LSN != 41 || len(recs[0].Payload) != 0 {
		t.Fatalf("bad replay: %+v", recs)
	}
}

// Torn tails — a frame cut anywhere, including mid-length-prefix — are
// truncated away, and the file is physically repaired so later appends
// continue from the intact prefix.
func TestWALTornTailTruncated(t *testing.T) {
	for _, cut := range []int{1, 3, 4, 9, 12, 20} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			path := tmpLog(t)
			l, _ := mustOpen(t, path, 0, Options{})
			appendN(t, l, 3)
			fullSize := l.Size()
			appendN(t, l, 1)
			l.Close()

			// Tear the final frame: keep `cut` bytes of it.
			if err := os.Truncate(path, fullSize+int64(cut)); err != nil {
				t.Fatal(err)
			}
			l2, recs := mustOpen(t, path, 0, Options{})
			if len(recs) != 3 {
				t.Fatalf("replayed %d records, want 3", len(recs))
			}
			if st := l2.Stats(); st.TornBytesDropped != int64(cut) {
				t.Fatalf("TornBytesDropped %d, want %d", st.TornBytesDropped, cut)
			}
			if l2.Size() != fullSize {
				t.Fatalf("file not repaired: size %d, want %d", l2.Size(), fullSize)
			}
			// Appends continue cleanly after the repair.
			lsn, err := l2.Append(KindAddUser, []byte("post-repair"))
			if err != nil {
				t.Fatalf("post-repair Append: %v", err)
			}
			if lsn != 4 {
				t.Fatalf("post-repair LSN %d, want 4 (torn record's number reused)", lsn)
			}
			l2.Close()
			_, recs = mustOpen(t, path, 0, Options{})
			if len(recs) != 4 || string(recs[3].Payload) != "post-repair" {
				t.Fatalf("bad final replay: %d records", len(recs))
			}
		})
	}
}

// A flipped bit in the final record is indistinguishable from a torn
// rewrite: recovery drops that record and repairs the file.
func TestWALBitFlipTailDropped(t *testing.T) {
	path := tmpLog(t)
	l, _ := mustOpen(t, path, 0, Options{})
	appendN(t, l, 2)
	prevSize := l.Size()
	appendN(t, l, 1)
	l.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[prevSize+7] ^= 0x10 // inside the last frame's body
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs := mustOpen(t, path, 0, Options{})
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2 (flipped tail dropped)", len(recs))
	}
}

// Damage before the tail cannot be a torn write; recovery must refuse
// with a typed *CorruptError instead of silently dropping later records.
func TestWALMidLogCorruptionTyped(t *testing.T) {
	path := tmpLog(t)
	l, _ := mustOpen(t, path, 0, Options{})
	var offsets []int64
	for i := 0; i < 4; i++ {
		offsets = append(offsets, l.Size())
		appendN(t, l, 1)
	}
	l.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[offsets[1]+9] ^= 0x01 // record 2's body: mid-log, not the tail
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(path, 0, Options{})
	if err == nil {
		t.Fatal("Open accepted mid-log corruption")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("error %v does not match ErrCorrupt", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T is not *CorruptError", err)
	}
	if ce.Offset != offsets[1] || ce.LastLSN != 1 {
		t.Fatalf("CorruptError at offset %d after LSN %d, want offset %d after LSN 1", ce.Offset, ce.LastLSN, offsets[1])
	}
}

// An LSN discontinuity (a deleted or duplicated record) is corruption
// even when every checksum passes.
func TestWALLSNGapCorrupt(t *testing.T) {
	path := tmpLog(t)
	l, _ := mustOpen(t, path, 0, Options{})
	var offsets []int64
	for i := 0; i < 3; i++ {
		offsets = append(offsets, l.Size())
		appendN(t, l, 1)
	}
	end := l.Size()
	l.Close()

	raw, _ := os.ReadFile(path)
	// Excise record 2 wholesale: records 1 and 3 remain, both intact.
	spliced := append(append([]byte(nil), raw[:offsets[1]]...), raw[offsets[2]:end]...)
	if err := os.WriteFile(path, spliced, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(path, 0, Options{})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("LSN gap: got %v, want ErrCorrupt", err)
	}
}

func TestWALBadMagicAndVersion(t *testing.T) {
	path := tmpLog(t)
	if err := os.WriteFile(path, []byte("NOTAWALFILE!!!!!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path, 0, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: got %v, want ErrCorrupt", err)
	}

	head := make([]byte, headerLen)
	copy(head, Magic[:])
	head[7] = 99 // future version
	binary.LittleEndian.PutUint64(head[8:], 1)
	if err := os.WriteFile(path, head, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path, 0, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("version skew: got %v, want ErrCorrupt", err)
	}
}

// A header shorter than headerLen means a crash during creation, before
// any record could have been durable: reinitialise, don't fail.
func TestWALTornHeaderReinitialises(t *testing.T) {
	path := tmpLog(t)
	if err := os.WriteFile(path, Magic[:5], 0o644); err != nil {
		t.Fatal(err)
	}
	l, recs := mustOpen(t, path, 7, Options{})
	if len(recs) != 0 {
		t.Fatalf("%d records from a torn header", len(recs))
	}
	if lsn, err := l.Append(KindAddPOI, nil); err != nil || lsn != 7 {
		t.Fatalf("Append after reinit: lsn %d err %v, want 7 nil", lsn, err)
	}
}

func TestWALCheckpointTruncatesAndContinuesLSN(t *testing.T) {
	path := tmpLog(t)
	l, _ := mustOpen(t, path, 0, Options{})
	appendN(t, l, 5)
	if err := l.Checkpoint(5); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	st := l.Stats()
	if st.Records != 0 || st.Bytes != headerLen || st.StartLSN != 6 {
		t.Fatalf("post-checkpoint stats %+v", st)
	}
	lsn, err := l.Append(KindAddUser, nil)
	if err != nil || lsn != 6 {
		t.Fatalf("post-checkpoint Append: lsn %d err %v, want 6 nil", lsn, err)
	}
	l.Close()
	l2, recs := mustOpen(t, path, 0, Options{})
	if len(recs) != 1 || recs[0].LSN != 6 {
		t.Fatalf("replay after checkpoint: %+v", recs)
	}
	// Checkpointing below the appended range must refuse: it would drop
	// records no checkpoint holds.
	if err := l2.Checkpoint(3); err == nil {
		t.Fatal("Checkpoint(3) below LastLSN 6 accepted")
	}
}

func TestWALRollback(t *testing.T) {
	path := tmpLog(t)
	l, _ := mustOpen(t, path, 0, Options{})
	appendN(t, l, 2)
	lsn, err := l.Append(KindAddRoadEdge, []byte("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Rollback(lsn); err != nil {
		t.Fatalf("Rollback: %v", err)
	}
	if got := l.LastLSN(); got != 2 {
		t.Fatalf("LastLSN after rollback %d, want 2", got)
	}
	// The rolled-back LSN is reused by the next append.
	lsn2, err := l.Append(KindAddPOI, []byte("kept"))
	if err != nil || lsn2 != lsn {
		t.Fatalf("Append after rollback: lsn %d err %v, want %d nil", lsn2, err, lsn)
	}
	// Only the most recent append may roll back.
	if err := l.Rollback(1); err == nil {
		t.Fatal("Rollback of an older LSN accepted")
	}
	l.Close()
	_, recs := mustOpen(t, path, 0, Options{})
	if len(recs) != 3 || string(recs[2].Payload) != "kept" {
		t.Fatalf("replay after rollback: %d records", len(recs))
	}
}

func TestWALSyncPolicies(t *testing.T) {
	t.Run("always", func(t *testing.T) {
		l, _ := mustOpen(t, tmpLog(t), 0, Options{Sync: SyncAlways})
		base := l.Stats().Fsyncs
		appendN(t, l, 3)
		if got := l.Stats().Fsyncs - base; got != 3 {
			t.Fatalf("always: %d fsyncs for 3 appends, want 3", got)
		}
	})
	t.Run("none", func(t *testing.T) {
		l, _ := mustOpen(t, tmpLog(t), 0, Options{Sync: SyncNone})
		base := l.Stats().Fsyncs
		appendN(t, l, 3)
		if got := l.Stats().Fsyncs - base; got != 0 {
			t.Fatalf("none: %d fsyncs for 3 appends, want 0", got)
		}
	})
	t.Run("batch", func(t *testing.T) {
		l, _ := mustOpen(t, tmpLog(t), 0, Options{Sync: SyncBatch, FlushWindow: 5 * time.Millisecond})
		base := l.Stats().Fsyncs
		appendN(t, l, 10)
		deadline := time.Now().Add(2 * time.Second)
		for l.Stats().Fsyncs == base && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		got := l.Stats().Fsyncs - base
		if got == 0 {
			t.Fatal("batch: flusher never synced")
		}
		if got > 5 {
			t.Fatalf("batch: %d fsyncs for 10 appends in one window burst — not group-committing", got)
		}
	})
}

func TestWALParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{"": SyncAlways, "always": SyncAlways, "batch": SyncBatch, "none": SyncNone} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("fsync-maybe"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// Failpoint-driven faults through the real write path.
func TestWALFailpoints(t *testing.T) {
	t.Cleanup(failpoint.Reset)

	t.Run("append-error", func(t *testing.T) {
		l, _ := mustOpen(t, tmpLog(t), 0, Options{})
		failpoint.Arm("wal.append", failpoint.Failure{Mode: failpoint.ModeError, Err: errors.New("disk full"), Count: 1})
		if _, err := l.Append(KindAddPOI, []byte("x")); err == nil {
			t.Fatal("injected append error not surfaced")
		}
		// Nothing written: the next append succeeds with the same LSN.
		if lsn, err := l.Append(KindAddPOI, []byte("x")); err != nil || lsn != 1 {
			t.Fatalf("append after injected error: lsn %d err %v", lsn, err)
		}
	})

	t.Run("short-write-poisons", func(t *testing.T) {
		path := tmpLog(t)
		l, _ := mustOpen(t, path, 0, Options{})
		appendN(t, l, 2)
		failpoint.Arm("wal.append", failpoint.Failure{Mode: failpoint.ModeShortWrite, N: 6, Count: 1})
		if _, err := l.Append(KindAddUser, []byte("torn")); err == nil {
			t.Fatal("torn append reported success")
		}
		// The log is poisoned like a crashed process's would be.
		if _, err := l.Append(KindAddUser, []byte("after")); err == nil {
			t.Fatal("append after torn write accepted")
		}
		l.Close()
		// Recovery sees a torn tail: the two intact records survive.
		_, recs := mustOpen(t, path, 0, Options{})
		if len(recs) != 2 {
			t.Fatalf("replayed %d records after torn append, want 2", len(recs))
		}
	})

	t.Run("bit-flip-detected-on-replay", func(t *testing.T) {
		path := tmpLog(t)
		l, _ := mustOpen(t, path, 0, Options{})
		appendN(t, l, 1)
		failpoint.Arm("wal.append", failpoint.Failure{Mode: failpoint.ModeBitFlip, N: 13, Count: 1})
		if _, err := l.Append(KindAddUser, []byte("flipped")); err != nil {
			t.Fatalf("bit-flip append should succeed silently: %v", err)
		}
		l.Close()
		// The flipped record is the tail: dropped, not fatal.
		_, recs := mustOpen(t, path, 0, Options{})
		if len(recs) != 1 {
			t.Fatalf("replayed %d records, want 1 (flipped tail dropped)", len(recs))
		}
	})

	t.Run("sync-error", func(t *testing.T) {
		l, _ := mustOpen(t, tmpLog(t), 0, Options{Sync: SyncAlways})
		failpoint.Arm("wal.sync", failpoint.Failure{Mode: failpoint.ModeError, Err: errors.New("EIO"), Count: 1})
		if _, err := l.Append(KindAddPOI, []byte("x")); err == nil {
			t.Fatal("injected fsync error not surfaced")
		}
	})

	t.Run("truncate-error", func(t *testing.T) {
		l, _ := mustOpen(t, tmpLog(t), 0, Options{})
		appendN(t, l, 1)
		failpoint.Arm("wal.truncate", failpoint.Failure{Mode: failpoint.ModeError, Err: errors.New("EIO"), Count: 1})
		if err := l.Checkpoint(1); err == nil {
			t.Fatal("injected truncate error not surfaced")
		}
		// The pre-checkpoint log is intact.
		if st := l.Stats(); st.Records != 1 {
			t.Fatalf("records %d after failed checkpoint, want 1", st.Records)
		}
	})
}

func TestWALKindString(t *testing.T) {
	for k := KindAddPOI; k < kindEnd; k++ {
		if !k.Valid() || k.String() == "" {
			t.Fatalf("kind %d invalid or unnamed", k)
		}
	}
	if Kind(0).Valid() || Kind(200).Valid() {
		t.Fatal("out-of-range kind reported valid")
	}
}
