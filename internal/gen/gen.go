// Package gen generates the spatial-social networks of the paper's
// evaluation (Section 6.1): the synthetic UNI and ZIPF datasets, and
// "real-like" stand-ins for the Brightkite+California and Gowalla+Colorado
// datasets that match the published statistics of Table 2 (the real
// check-in dumps are not available offline; see DESIGN.md for the
// substitution argument).
//
// Two structural properties of real location-based social networks are
// modelled explicitly because the paper's pruning-power results depend on
// them: interest homophily (friends cluster into communities with shared
// interest profiles — without it the interest-MBR index pruning of Lemma 8
// cannot fire) and spatial keyword districts (venues of similar type
// cluster geographically — without it every ball's keyword union saturates
// the vocabulary and the matching-score pruning of Lemmas 1/6 cannot
// fire).
//
// All generation is deterministic for a given Config.Seed.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"gpssn/internal/geo"
	"gpssn/internal/model"
	"gpssn/internal/roadnet"
	"gpssn/internal/rtree"
	"gpssn/internal/socialnet"
)

// Distribution selects how degrees, POI counts per edge, keywords, and
// interest probabilities are drawn (the paper's Uniform vs Zipf datasets).
type Distribution int

const (
	// Uniform draws values uniformly from their domain.
	Uniform Distribution = iota
	// Zipf draws values with a Zipf skew (exponent ~1.5).
	Zipf
)

// String implements fmt.Stringer.
func (d Distribution) String() string {
	if d == Zipf {
		return "zipf"
	}
	return "uniform"
}

// Config parameterizes synthetic dataset generation. Zero values are
// replaced by the paper's defaults (Table 3 bold values).
type Config struct {
	Name string
	Seed int64
	// RoadVertices is |V(G_r)| (default 30000).
	RoadVertices int
	// SocialUsers is |V(G_s)| (default 30000).
	SocialUsers int
	// POIs is n, the number of POI objects (default 10000).
	POIs int
	// Topics is d, the interest/keyword vocabulary size (default 32).
	Topics int
	// Dist selects Uniform or Zipf generation.
	Dist Distribution
	// MaxSocialDegree bounds the per-user degree draw (default 10, the
	// paper's range [1,10]).
	MaxSocialDegree int
	// MaxPOIsPerEdge bounds POIs placed per selected edge (default 5, the
	// paper's range [0,5]).
	MaxPOIsPerEdge int
	// MaxKeywordsPerPOI bounds keywords per POI (default 4; at least 1 is
	// always assigned so every POI is matchable).
	MaxKeywordsPerPOI int
	// CommunitySize is the target interest-community size (default 150).
	CommunitySize int
	// IntraProb is the probability a friendship edge stays inside the
	// community (default 0.9).
	IntraProb float64
	// ProfileTopics is how many vocabulary topics a community or venue
	// district is about (default 4).
	ProfileTopics int
	// DistrictSide is the side length of the square venue districts in
	// road-network units. Zero (the default) picks min(32, mapSide/5)
	// clamped to at least 10, so a query ball usually sees one district's
	// vocabulary while small maps still contain several districts.
	DistrictSide float64
	// GeoCohesion is the standard deviation of community member homes
	// around their community's center, as a fraction of the map side
	// (default 0.05). Zero disables cohesion (uniform homes).
	GeoCohesion float64
}

func (c Config) withDefaults() Config {
	if c.RoadVertices == 0 {
		c.RoadVertices = 30000
	}
	if c.SocialUsers == 0 {
		c.SocialUsers = 30000
	}
	if c.POIs == 0 {
		c.POIs = 10000
	}
	if c.Topics == 0 {
		c.Topics = 32
	}
	if c.MaxSocialDegree == 0 {
		c.MaxSocialDegree = 10
	}
	if c.MaxPOIsPerEdge == 0 {
		c.MaxPOIsPerEdge = 5
	}
	if c.MaxKeywordsPerPOI == 0 {
		c.MaxKeywordsPerPOI = 4
	}
	if c.CommunitySize == 0 {
		c.CommunitySize = 150
	}
	if c.IntraProb == 0 {
		c.IntraProb = 0.9
	}
	if c.ProfileTopics == 0 {
		c.ProfileTopics = 4
		if c.ProfileTopics > c.Topics {
			c.ProfileTopics = c.Topics
		}
	}
	// DistrictSide == 0 means auto: chosen from the map size in
	// newDistrictMap so small test maps still have several districts.
	if c.GeoCohesion == 0 {
		c.GeoCohesion = 0.05
	}
	if c.Name == "" {
		c.Name = fmt.Sprintf("%s-v%d-u%d-n%d", c.Dist, c.RoadVertices, c.SocialUsers, c.POIs)
	}
	return c
}

func (c Config) validate() error {
	if c.RoadVertices < 2 {
		return fmt.Errorf("gen: need at least 2 road vertices, got %d", c.RoadVertices)
	}
	if c.SocialUsers < 1 {
		return fmt.Errorf("gen: need at least 1 user, got %d", c.SocialUsers)
	}
	if c.POIs < 1 {
		return fmt.Errorf("gen: need at least 1 POI, got %d", c.POIs)
	}
	if c.Topics < 1 {
		return fmt.Errorf("gen: need at least 1 topic, got %d", c.Topics)
	}
	return nil
}

// Synthetic generates a synthetic spatial-social network per Section 6.1.
func Synthetic(cfg Config) (*model.Dataset, error) {
	c := cfg.withDefaults()
	if err := c.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))

	road := genRoadNetwork(rng, c.RoadVertices)
	districts := newDistrictMap(rng, road.Bounds(), c)
	pois := genPOIs(rng, road, districts, c)

	comms := newCommunities(rng, road.Bounds(), c)
	social := genSocialNetwork(rng, comms, c)
	users := genUsers(rng, road, comms, c)

	d := &model.Dataset{
		Name:      c.Name,
		Road:      road,
		Social:    social,
		Users:     users,
		POIs:      pois,
		NumTopics: c.Topics,
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("gen: generated dataset invalid: %w", err)
	}
	return d, nil
}

// genRoadNetwork builds a connected, planar-ish road network: random
// intersection points in a square with unit vertex density, edges to
// nearest neighbours that do not properly cross existing roads, plus
// connectivity patch-up edges. Average degree lands near the 2.1-2.5 of
// real road networks.
func genRoadNetwork(rng *rand.Rand, nv int) *roadnet.Graph {
	side := math.Sqrt(float64(nv)) // unit density: 1 vertex per unit area
	g := roadnet.NewGraph(nv, nv*3)
	pts := make([]geo.Point, nv)
	tree := rtree.New(rtree.Options{MaxEntries: 16})
	for i := 0; i < nv; i++ {
		pts[i] = geo.Pt(rng.Float64()*side, rng.Float64()*side)
		g.AddVertex(pts[i])
		tree.InsertPoint(pts[i], int32(i))
	}

	// Candidate edges: each vertex to its 3 nearest neighbours, proposed in
	// increasing length order so short local roads win.
	type cand struct {
		u, v roadnet.VertexID
		w    float64
	}
	seen := make(map[[2]int32]bool, nv*3)
	var cands []cand
	for i := 0; i < nv; i++ {
		for _, nb := range tree.Nearest(pts[i], 4) { // self + 3 neighbours
			j := nb.Item.ID
			if int(j) == i {
				continue
			}
			a, b := int32(i), j
			if a > b {
				a, b = b, a
			}
			key := [2]int32{a, b}
			if seen[key] {
				continue
			}
			seen[key] = true
			cands = append(cands, cand{roadnet.VertexID(a), roadnet.VertexID(b), nb.Dist})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].w < cands[j].w })

	crossing := newCrossingIndex(side)
	for _, c := range cands {
		seg := geo.Seg(pts[c.u], pts[c.v])
		if crossing.crosses(seg) {
			continue
		}
		g.AddEdge(c.u, c.v)
		crossing.add(seg)
	}

	// Patch connectivity: link each secondary component to the main one via
	// the closest vertex pair found through the R-tree. These few edges may
	// cross existing roads (real networks have overpasses).
	labels, ncomp := g.ConnectedComponents()
	for ncomp > 1 {
		joined := false
		for i := 0; i < nv && !joined; i++ {
			if labels[i] != labels[0] {
				for _, nb := range tree.Nearest(pts[i], 16) {
					j := nb.Item.ID
					if labels[j] != labels[i] {
						g.AddEdge(roadnet.VertexID(i), roadnet.VertexID(j))
						joined = true
						break
					}
				}
				if !joined {
					g.AddEdge(roadnet.VertexID(i), 0)
					joined = true
				}
			}
		}
		labels, ncomp = g.ConnectedComponents()
	}
	return g
}

// crossingIndex is a coarse grid over segments for proper-crossing tests
// during road generation.
type crossingIndex struct {
	cell  float64
	cols  int
	cells map[int][]geo.Segment
}

func newCrossingIndex(side float64) *crossingIndex {
	cell := math.Max(side/256, 1e-9)
	return &crossingIndex{cell: cell, cols: int(side/cell) + 2, cells: map[int][]geo.Segment{}}
}

func (ci *crossingIndex) cellsOf(s geo.Segment) []int {
	b := s.Bounds()
	x0, y0 := int(b.Min.X/ci.cell), int(b.Min.Y/ci.cell)
	x1, y1 := int(b.Max.X/ci.cell), int(b.Max.Y/ci.cell)
	var out []int
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			out = append(out, y*ci.cols+x)
		}
	}
	return out
}

func (ci *crossingIndex) add(s geo.Segment) {
	for _, c := range ci.cellsOf(s) {
		ci.cells[c] = append(ci.cells[c], s)
	}
}

func (ci *crossingIndex) crosses(s geo.Segment) bool {
	for _, c := range ci.cellsOf(s) {
		for _, t := range ci.cells[c] {
			if s.ProperlyCrosses(t) {
				return true
			}
		}
	}
	return false
}

// districtMap assigns a topical profile to each square venue district of
// the map: POIs draw their keywords mostly from their district's profile,
// giving the spatial keyword clustering real cities exhibit.
type districtMap struct {
	bounds   geo.Rect
	side     float64
	cols     int
	profiles [][]int // district cell -> profile topics
	topics   int
}

func newDistrictMap(rng *rand.Rand, bounds geo.Rect, c Config) *districtMap {
	side := c.DistrictSide
	if side == 0 {
		side = math.Max(bounds.Width(), bounds.Height()) / 5
		if side > 32 {
			side = 32
		}
		if side < 10 {
			side = 10
		}
	}
	cols := int(bounds.Width()/side) + 1
	rows := int(bounds.Height()/side) + 1
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	dm := &districtMap{bounds: bounds, side: side, cols: cols, topics: c.Topics}
	dm.profiles = make([][]int, cols*rows)
	for i := range dm.profiles {
		dm.profiles[i] = randomProfile(rng, c.Topics, c.ProfileTopics)
	}
	return dm
}

// randomProfile draws k distinct topics.
func randomProfile(rng *rand.Rand, topics, k int) []int {
	if k > topics {
		k = topics
	}
	perm := rng.Perm(topics)[:k]
	sort.Ints(perm)
	return perm
}

// cellOf returns the district cell index containing p.
func (dm *districtMap) cellOf(p geo.Point) int {
	cx := int((p.X - dm.bounds.Min.X) / dm.side)
	cy := int((p.Y - dm.bounds.Min.Y) / dm.side)
	if cx < 0 {
		cx = 0
	}
	if cy < 0 {
		cy = 0
	}
	idx := cy*dm.cols + cx
	if idx < 0 || idx >= len(dm.profiles) {
		idx = 0
	}
	return idx
}

func (dm *districtMap) profileAt(p geo.Point) []int {
	return dm.profiles[dm.cellOf(p)]
}

// genPOIs places n POIs: random edges are selected and each receives
// w ∈ [0, MaxPOIsPerEdge] POIs (Uniform or Zipf), until n are placed. Each
// POI draws 1..MaxKeywordsPerPOI keywords, mostly from its district's
// profile (85%) with occasional off-profile venues.
func genPOIs(rng *rand.Rand, road *roadnet.Graph, dm *districtMap, c Config) []model.POI {
	pois := make([]model.POI, 0, c.POIs)
	zipfCount := newZipfInt(rng, c.MaxPOIsPerEdge)
	zipfNKw := newZipfInt(rng, c.MaxKeywordsPerPOI-1)
	for len(pois) < c.POIs {
		e := roadnet.EdgeID(rng.Intn(road.NumEdges()))
		var w int
		if c.Dist == Zipf {
			w = zipfCount.draw()
		} else {
			w = rng.Intn(c.MaxPOIsPerEdge + 1)
		}
		for k := 0; k < w && len(pois) < c.POIs; k++ {
			at := road.AttachAt(e, rng.Float64())
			loc := road.Location(at)
			nk := 1
			if c.MaxKeywordsPerPOI > 1 {
				if c.Dist == Zipf {
					nk = 1 + zipfNKw.draw()
				} else {
					nk = 1 + rng.Intn(c.MaxKeywordsPerPOI)
				}
			}
			kws := drawDistrictKeywords(rng, dm.profileAt(loc), c, nk)
			pois = append(pois, model.POI{
				ID:       model.POIID(len(pois)),
				At:       at,
				Loc:      loc,
				Keywords: kws,
			})
		}
	}
	return pois
}

// drawDistrictKeywords draws nk distinct keywords, preferring the district
// profile.
func drawDistrictKeywords(rng *rand.Rand, profile []int, c Config, nk int) []int {
	if nk > c.Topics {
		nk = c.Topics
	}
	seen := map[int]bool{}
	var kws []int
	for len(kws) < nk {
		var t int
		if rng.Float64() < 0.98 && len(profile) > 0 {
			t = profile[rng.Intn(len(profile))]
		} else {
			t = rng.Intn(c.Topics)
		}
		if !seen[t] {
			seen[t] = true
			kws = append(kws, t)
		}
	}
	sort.Ints(kws)
	return kws
}

// communities carries the interest-homophily structure: each community has
// a topical profile and a geographic center.
type communities struct {
	member   []int       // user -> community
	profiles [][]int     // community -> profile topics
	centers  []geo.Point // community -> home center
	sizes    []int
}

func newCommunities(rng *rand.Rand, bounds geo.Rect, c Config) *communities {
	n := c.SocialUsers
	numComm := n / c.CommunitySize
	if numComm < 2 {
		numComm = 2
	}
	cm := &communities{
		member:   make([]int, n),
		profiles: make([][]int, numComm),
		centers:  make([]geo.Point, numComm),
		sizes:    make([]int, numComm),
	}
	for i := range cm.profiles {
		cm.profiles[i] = randomProfile(rng, c.Topics, c.ProfileTopics)
		cm.centers[i] = geo.Pt(
			bounds.Min.X+rng.Float64()*bounds.Width(),
			bounds.Min.Y+rng.Float64()*bounds.Height(),
		)
	}
	for u := 0; u < n; u++ {
		cm.member[u] = rng.Intn(numComm)
		cm.sizes[cm.member[u]]++
	}
	return cm
}

// genSocialNetwork connects each user with deg ∈ [1, MaxSocialDegree]
// others (Uniform or Zipf degree draw per Section 6.1), preferring
// same-community friends with probability IntraProb.
func genSocialNetwork(rng *rand.Rand, cm *communities, c Config) *socialnet.Graph {
	g := socialnet.NewGraph(c.SocialUsers)
	z := newZipfInt(rng, c.MaxSocialDegree-1)
	// Community member lists for intra-community sampling.
	members := make([][]socialnet.UserID, len(cm.profiles))
	for u := 0; u < c.SocialUsers; u++ {
		ci := cm.member[u]
		members[ci] = append(members[ci], socialnet.UserID(u))
	}
	for u := 0; u < c.SocialUsers; u++ {
		var deg int
		if c.Dist == Zipf {
			deg = 1 + z.draw()
		} else {
			deg = 1 + rng.Intn(c.MaxSocialDegree)
		}
		for k := 0; k < deg; k++ {
			var v socialnet.UserID
			own := members[cm.member[u]]
			if rng.Float64() < c.IntraProb && len(own) > 1 {
				v = own[rng.Intn(len(own))]
			} else {
				v = socialnet.UserID(rng.Intn(c.SocialUsers))
			}
			g.AddFriendship(socialnet.UserID(u), v)
		}
	}
	return g
}

// genUsers assigns each user a home near their community's center (snapped
// onto the road network) and an interest vector drawn from the community
// profile: profile topics are active with probability 0.85 and off-profile
// topics with probability 0.002; active probabilities are Uniform/Zipf in
// (0.3, 1].
func genUsers(rng *rand.Rand, road *roadnet.Graph, cm *communities, c Config) []model.User {
	b := road.Bounds()
	sigma := c.GeoCohesion * math.Max(b.Width(), b.Height())
	users := make([]model.User, c.SocialUsers)
	z := newZipfInt(rng, 9)
	inProfile := make([]bool, c.Topics)
	for i := range users {
		ci := cm.member[i]
		var p geo.Point
		if sigma > 0 {
			p = geo.Pt(
				clamp(cm.centers[ci].X+rng.NormFloat64()*sigma, b.Min.X, b.Max.X),
				clamp(cm.centers[ci].Y+rng.NormFloat64()*sigma, b.Min.Y, b.Max.Y),
			)
		} else {
			p = geo.Pt(b.Min.X+rng.Float64()*b.Width(), b.Min.Y+rng.Float64()*b.Height())
		}
		at, ok := road.SnapPoint(p)
		if !ok {
			panic("gen: road network has no edges")
		}
		w := drawInterestVector(rng, c, cm.profiles[ci], inProfile, z)
		users[i] = model.User{
			ID:        socialnet.UserID(i),
			At:        at,
			Loc:       road.Location(at),
			Interests: w,
		}
	}
	return users
}

// drawInterestVector draws one user's interest vector from their
// community profile: profile topics are active with probability 0.85 and
// off-profile topics 0.002 — interests are strongly profile-driven, which
// is what lets whole index nodes fall below the interest threshold
// (Lemma 8) the way the paper's real data does. inProfile is caller-owned
// scratch of length c.Topics. The rng draw sequence is exactly the loop
// genUsers historically ran, so seeds reproduce the same datasets.
func drawInterestVector(rng *rand.Rand, c Config, profile []int, inProfile []bool, z *zipfInt) []float64 {
	for f := range inProfile {
		inProfile[f] = false
	}
	for _, f := range profile {
		inProfile[f] = true
	}
	w := make([]float64, c.Topics)
	active := 0
	for f := range w {
		pAct := 0.002
		if inProfile[f] {
			pAct = 0.85
		}
		if rng.Float64() < pAct {
			w[f] = drawProb(rng, c.Dist, z)
			active++
		}
	}
	if active == 0 {
		w[profile[rng.Intn(len(profile))]] = drawProb(rng, c.Dist, z)
	}
	return w
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// drawProb draws an interest probability in (0.3, 1].
func drawProb(rng *rand.Rand, dist Distribution, z *zipfInt) float64 {
	if dist == Zipf {
		// Zipf-ranked probability: popular rank -> high probability.
		return 0.3 + 0.7/float64(z.draw()+1)
	}
	return 0.3 + 0.7*rng.Float64()
}

// zipfInt draws integers in [0, imax] with a Zipf(s=1.5) skew toward 0.
type zipfInt struct {
	z    *rand.Zipf
	imax int
}

func newZipfInt(rng *rand.Rand, imax int) *zipfInt {
	if imax <= 0 {
		return &zipfInt{imax: 0}
	}
	return &zipfInt{z: rand.NewZipf(rng, 1.5, 1, uint64(imax)), imax: imax}
}

func (z *zipfInt) draw() int {
	if z.z == nil {
		return 0
	}
	return int(z.z.Uint64())
}
