// Million-scale generation. gen.Synthetic's road builder runs an R-tree
// nearest-neighbour pass, a segment-crossing index, and point snapping —
// all worth it for paper-faithful 30K networks, all far too heavy at 1M
// vertices (the crossing maps alone would hold tens of millions of
// segments). Large swaps the road builder for a perturbed lattice whose
// geometry makes every spatial operation O(1): the cell containing a point
// identifies its road edge by arithmetic, so users and POIs stream onto
// the network with no spatial index at all. Everything above the road
// layer — districts, communities, interest homophily, the social graph —
// is shared with Synthetic, so datasets keep the structural properties the
// pruning lemmas need.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"gpssn/internal/geo"
	"gpssn/internal/model"
	"gpssn/internal/roadnet"
	"gpssn/internal/socialnet"
)

// Large generates a spatial-social network on a perturbed-lattice road
// network. Deterministic for a given Config.Seed — generation is one
// sequential pass over one rng, so the output is independent of
// GOMAXPROCS and host parallelism (pinned by TestLargeDeterministic).
// Intended for the scale1m benchmark tier; Synthetic remains the
// paper-faithful generator at evaluation scales.
func Large(cfg Config) (*model.Dataset, error) {
	c := cfg.withDefaults()
	if err := c.validate(); err != nil {
		return nil, err
	}
	if c.RoadVertices < 4 {
		return nil, fmt.Errorf("gen: lattice generator needs at least 4 road vertices, got %d", c.RoadVertices)
	}
	rng := rand.New(rand.NewSource(c.Seed))

	road, lat := genLatticeRoad(rng, c.RoadVertices)
	districts := newDistrictMap(rng, road.Bounds(), c)
	pois := genPOIs(rng, road, districts, c)

	comms := newCommunities(rng, road.Bounds(), c)
	social := genSocialNetwork(rng, comms, c)
	users := genLatticeUsers(rng, road, lat, comms, c)

	d := &model.Dataset{
		Name:      c.Name,
		Road:      road,
		Social:    social,
		Users:     users,
		POIs:      pois,
		NumTopics: c.Topics,
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("gen: generated dataset invalid: %w", err)
	}
	return d, nil
}

// lattice records the grid geometry and the row-chain edge ids, which is
// all genLatticeUsers needs to snap a point onto the network in O(1).
type lattice struct {
	rows, cols int
	cell       float64
	// rowEdge[i] is the edge from vertex i-1 to vertex i along its row, or
	// -1 in column 0 (no left neighbour).
	rowEdge []roadnet.EdgeID
}

// genLatticeRoad builds a connected road network on a jittered grid at
// unit vertex density (matching Synthetic's density, so radii mean the
// same thing across generators): every row is a chain of road segments,
// column 0 chains the rows together, and ~30% of the remaining vertical
// links exist — average degree lands in the 2.1–2.6 band of real road
// networks. Jitter stays within ±0.3 cells so the lattice arithmetic in
// genLatticeUsers still identifies the containing cell.
func genLatticeRoad(rng *rand.Rand, nv int) (*roadnet.Graph, *lattice) {
	cols := int(math.Ceil(math.Sqrt(float64(nv))))
	if cols < 2 {
		cols = 2
	}
	rows := (nv + cols - 1) / cols
	const cell = 1.0 // unit density
	g := roadnet.NewGraph(nv, nv+nv/3)
	lat := &lattice{rows: rows, cols: cols, cell: cell, rowEdge: make([]roadnet.EdgeID, nv)}
	for i := 0; i < nv; i++ {
		r, c := i/cols, i%cols
		g.AddVertex(geo.Pt(
			(float64(c)+0.5+0.6*(rng.Float64()-0.5))*cell,
			(float64(r)+0.5+0.6*(rng.Float64()-0.5))*cell,
		))
		lat.rowEdge[i] = -1
		if c > 0 {
			lat.rowEdge[i] = g.AddEdge(roadnet.VertexID(i-1), roadnet.VertexID(i))
		}
	}
	for r := 1; r < rows; r++ {
		g.AddEdge(roadnet.VertexID((r-1)*cols), roadnet.VertexID(r*cols))
	}
	for i := cols; i < nv; i++ {
		if i%cols == 0 {
			continue // column 0 is already chained
		}
		if rng.Float64() < 0.3 {
			g.AddEdge(roadnet.VertexID(i-cols), roadnet.VertexID(i))
		}
	}
	return g, lat
}

// edgeNear maps a point to a road edge in O(1) through the lattice: the
// containing cell names a vertex, and that vertex's row-chain edge (or its
// right neighbour's, in column 0) is a road within one cell of the point.
func (lat *lattice) edgeNear(p geo.Point, nv int) roadnet.EdgeID {
	c := int(p.X / lat.cell)
	if c < 0 {
		c = 0
	}
	if c >= lat.cols {
		c = lat.cols - 1
	}
	r := int(p.Y / lat.cell)
	if r < 0 {
		r = 0
	}
	if r >= lat.rows {
		r = lat.rows - 1
	}
	i := r*lat.cols + c
	if i >= nv {
		i = nv - 1
	}
	if e := lat.rowEdge[i]; e >= 0 {
		return e
	}
	if i+1 < nv && lat.rowEdge[i+1] >= 0 {
		return lat.rowEdge[i+1]
	}
	return 0
}

// genLatticeUsers is genUsers with the O(V)-index SnapPoint replaced by
// the lattice's O(1) edge lookup: homes cluster around community centers
// exactly as in Synthetic, then land on the row edge of their cell.
func genLatticeUsers(rng *rand.Rand, road *roadnet.Graph, lat *lattice, cm *communities, c Config) []model.User {
	b := road.Bounds()
	sigma := c.GeoCohesion * math.Max(b.Width(), b.Height())
	users := make([]model.User, c.SocialUsers)
	z := newZipfInt(rng, 9)
	inProfile := make([]bool, c.Topics)
	for i := range users {
		ci := cm.member[i]
		var p geo.Point
		if sigma > 0 {
			p = geo.Pt(
				clamp(cm.centers[ci].X+rng.NormFloat64()*sigma, b.Min.X, b.Max.X),
				clamp(cm.centers[ci].Y+rng.NormFloat64()*sigma, b.Min.Y, b.Max.Y),
			)
		} else {
			p = geo.Pt(b.Min.X+rng.Float64()*b.Width(), b.Min.Y+rng.Float64()*b.Height())
		}
		at := road.AttachAt(lat.edgeNear(p, road.NumVertices()), rng.Float64())
		w := drawInterestVector(rng, c, cm.profiles[ci], inProfile, z)
		users[i] = model.User{
			ID:        socialnet.UserID(i),
			At:        at,
			Loc:       road.Location(at),
			Interests: w,
		}
	}
	return users
}
