package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"gpssn/internal/geo"
	"gpssn/internal/model"
	"gpssn/internal/roadnet"
	"gpssn/internal/socialnet"
)

// RealLikeConfig describes a "real-like" dataset: a stand-in for the
// paper's Bri+Cal and Gow+Col spatial-social networks with matched Table 2
// statistics. The real Brightkite/Gowalla check-in dumps and the
// California/Colorado road files are not available offline, so we generate
// graphs with the same vertex counts, degree statistics (power-law social
// degrees with the published mean; low-degree planar road networks), and
// the same interest-vector construction the paper uses: each user's
// interest in topic f is the fraction of their check-ins at POIs carrying
// keyword f, and the home location is the centroid of their check-ins.
type RealLikeConfig struct {
	Name         string
	Seed         int64
	SocialUsers  int     // |V(G_s)|
	SocialDeg    float64 // target mean degree (power-law distributed)
	RoadVertices int     // |V(G_r)|
	RoadDeg      float64 // target mean road degree
	POIs         int     // POIs to place (check-in venues)
	Topics       int     // keyword vocabulary size
	MaxCheckins  int     // max check-ins per user (Zipf-distributed count)
	Scale        float64 // multiplies user/vertex/POI counts; 0 means 1.0
}

// BrightkiteCalifornia returns the Bri+Cal configuration of Table 2:
// 40K users with mean degree 10.3 over a 21K-vertex road network of mean
// degree 2.1.
func BrightkiteCalifornia(seed int64, scale float64) RealLikeConfig {
	return RealLikeConfig{
		Name:         "Bri+Cal",
		Seed:         seed,
		SocialUsers:  40000,
		SocialDeg:    10.3,
		RoadVertices: 21000,
		RoadDeg:      2.1,
		POIs:         10000,
		Topics:       32,
		MaxCheckins:  50,
		Scale:        scale,
	}
}

// GowallaColorado returns the Gow+Col configuration of Table 2: 40K users
// with mean degree 32.1 over a 30K-vertex road network of mean degree 2.4.
func GowallaColorado(seed int64, scale float64) RealLikeConfig {
	return RealLikeConfig{
		Name:         "Gow+Col",
		Seed:         seed,
		SocialUsers:  40000,
		SocialDeg:    32.1,
		RoadVertices: 30000,
		RoadDeg:      2.4,
		POIs:         10000,
		Topics:       32,
		MaxCheckins:  50,
		Scale:        scale,
	}
}

// RealLike generates a dataset from the config.
func RealLike(cfg RealLikeConfig) (*model.Dataset, error) {
	if cfg.Scale == 0 {
		cfg.Scale = 1
	}
	if cfg.Scale < 0 {
		return nil, fmt.Errorf("gen: negative scale %v", cfg.Scale)
	}
	scaleInt := func(n int) int {
		v := int(math.Round(float64(n) * cfg.Scale))
		if v < 4 {
			v = 4
		}
		return v
	}
	users := scaleInt(cfg.SocialUsers)
	verts := scaleInt(cfg.RoadVertices)
	npois := scaleInt(cfg.POIs)
	if cfg.Topics <= 0 {
		cfg.Topics = 32
	}
	if cfg.MaxCheckins <= 0 {
		cfg.MaxCheckins = 50
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	road := genRoadNetwork(rng, verts)
	trimRoadDegree(rng, road, cfg.RoadDeg, verts)

	// POIs with Zipf keyword popularity (venue categories are skewed) and
	// district-clustered keywords, like real city venues.
	pc := Config{
		Topics: cfg.Topics, MaxPOIsPerEdge: 5, MaxKeywordsPerPOI: 4,
		Dist: Uniform, POIs: npois,
	}.withDefaults()
	pc.POIs = npois
	districts := newDistrictMap(rng, road.Bounds(), pc)
	pois := genPOIs(rng, road, districts, pc)

	// Anchor venue per user, drawn first so both the friendship graph
	// (locality-biased) and the check-in behaviour share it.
	anchors := make([]int, users)
	for i := range anchors {
		anchors[i] = rng.Intn(len(pois))
	}
	social := genPowerLawSocial(rng, users, cfg.SocialDeg, pois, anchors, districts)

	modelUsers := genCheckinUsers(rng, road, pois, anchors, cfg.Topics, cfg.MaxCheckins)

	d := &model.Dataset{
		Name:      cfg.Name,
		Road:      road,
		Social:    social,
		Users:     modelUsers,
		POIs:      pois,
		NumTopics: cfg.Topics,
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("gen: real-like dataset invalid: %w", err)
	}
	return d, nil
}

// trimRoadDegree thins the road network to the target average degree while
// preserving connectivity: a random spanning tree is kept and random extra
// edges are retained up to the target edge count. This cannot go below the
// spanning tree's ~2.0 average degree, matching real road networks.
func trimRoadDegree(rng *rand.Rand, g *roadnet.Graph, targetDeg float64, _ int) {
	if targetDeg <= 0 || g.AvgDegree() <= targetDeg {
		return
	}
	n := g.NumVertices()
	wantEdges := int(targetDeg * float64(n) / 2)
	type edge struct{ u, v roadnet.VertexID }
	all := make([]edge, g.NumEdges())
	for i := range all {
		e := g.EdgeAt(roadnet.EdgeID(i))
		all[i] = edge{e.U, e.V}
	}
	// Union-find spanning forest.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	perm := rng.Perm(len(all))
	var tree, extra []edge
	for _, i := range perm {
		e := all[i]
		ru, rv := find(int(e.u)), find(int(e.v))
		if ru != rv {
			parent[ru] = rv
			tree = append(tree, e)
		} else {
			extra = append(extra, e)
		}
	}
	keepExtra := wantEdges - len(tree)
	if keepExtra < 0 {
		keepExtra = 0
	}
	if keepExtra > len(extra) {
		keepExtra = len(extra)
	}
	// Reset the graph in place: build a fresh one and swap contents.
	fresh := roadnet.NewGraph(n, len(tree)+keepExtra)
	for v := 0; v < n; v++ {
		fresh.AddVertex(g.Vertex(roadnet.VertexID(v)))
	}
	for _, e := range tree {
		fresh.AddEdge(e.u, e.v)
	}
	for _, e := range extra[:keepExtra] {
		fresh.AddEdge(e.u, e.v)
	}
	*g = *fresh
}

// genPowerLawSocial builds a friendship graph whose degree sequence is
// power-law (configuration model with stub matching) scaled to the target
// mean degree, like Brightkite/Gowalla. Stub matching is locality-biased:
// stubs are sorted by their user's anchor-venue position with noise before
// pairing, so friends tend to live near each other (and, since interests
// derive from nearby check-ins, share interests) — the homophily real
// location-based social networks exhibit.
func genPowerLawSocial(rng *rand.Rand, n int, meanDeg float64, pois []model.POI, anchors []int, dm *districtMap) *socialnet.Graph {
	const alpha = 2.5
	raw := make([]float64, n)
	sum := 0.0
	for i := range raw {
		// Pareto draw with xmin=1.
		raw[i] = math.Pow(1-rng.Float64(), -1/(alpha-1))
		if raw[i] > float64(n)/4 {
			raw[i] = float64(n) / 4
		}
		sum += raw[i]
	}
	scale := meanDeg * float64(n) / sum
	type stub struct {
		u   socialnet.UserID
		key float64
	}
	var stubs []stub
	for i, r := range raw {
		deg := int(math.Round(r * scale))
		if deg < 1 {
			deg = 1
		}
		// Locality key: the anchor venue's district cell, so most stub
		// pairs land inside one district (friends share a neighbourhood
		// and, through their check-ins, interests). 5% of stubs get a
		// random key, giving the long-range friendships real networks
		// have.
		base := float64(dm.cellOf(pois[anchors[i]].Loc))
		for k := 0; k < deg; k++ {
			key := base + rng.Float64()
			if rng.Float64() < 0.05 {
				key = rng.Float64() * float64(len(dm.profiles))
			}
			stubs = append(stubs, stub{u: socialnet.UserID(i), key: key})
		}
	}
	sort.Slice(stubs, func(i, j int) bool { return stubs[i].key < stubs[j].key })
	g := socialnet.NewGraph(n)
	for i := 0; i+1 < len(stubs); i += 2 {
		g.AddFriendship(stubs[i].u, stubs[i+1].u) // self-loops/dupes rejected
	}
	return g
}

// genCheckinUsers derives users from simulated check-in behaviour, the way
// the paper builds interest vectors from Brightkite/Gowalla: each user
// checks into POIs clustered around a personal anchor venue; the interest
// in topic f is the fraction of check-ins at POIs carrying keyword f; the
// home location is the centroid of the checked-in POIs snapped onto the
// road network.
func genCheckinUsers(rng *rand.Rand, road *roadnet.Graph, pois []model.POI, anchors []int, topics, maxCheckins int) []model.User {
	n := len(anchors)
	// Sort POIs by X for cheap locality sampling around an anchor.
	order := make([]int, len(pois))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return pois[order[a]].Loc.X < pois[order[b]].Loc.X })
	pos := make([]int, len(pois)) // poi -> rank in order
	for r, i := range order {
		pos[i] = r
	}

	zipfN := rand.NewZipf(rng, 1.5, 1, uint64(maxCheckins-1))
	users := make([]model.User, n)
	for i := range users {
		anchor := anchors[i]
		count := 1 + int(zipfN.Uint64())
		visits := make([]int, 0, count)
		visits = append(visits, anchor)
		for k := 1; k < count; k++ {
			// Check-ins concentrate near the anchor's X-rank (a cheap
			// locality proxy); occasional far venue.
			var j int
			if rng.Float64() < 0.95 {
				span := len(pois)/100 + 1
				r := pos[anchor] + rng.Intn(2*span+1) - span
				if r < 0 {
					r = 0
				} else if r >= len(order) {
					r = len(order) - 1
				}
				j = order[r]
			} else {
				j = rng.Intn(len(pois))
			}
			visits = append(visits, j)
		}
		// Interest vector: fraction of visits with each keyword.
		w := make([]float64, topics)
		var cx, cy float64
		for _, v := range visits {
			p := &pois[v]
			for _, kw := range p.Keywords {
				w[kw] += 1
			}
			cx += p.Loc.X
			cy += p.Loc.Y
		}
		for f := range w {
			w[f] /= float64(len(visits))
			if w[f] > 1 {
				w[f] = 1
			}
			// Noise floor: topics visited only incidentally carry no
			// signal about the user's interests; dropping them keeps the
			// index interest MBRs discriminative, the way the paper's
			// topic-discovery preprocessing would.
			if w[f] < 0.1 {
				w[f] = 0
			}
		}
		nonzero := false
		for _, v := range w {
			if v > 0 {
				nonzero = true
				break
			}
		}
		if !nonzero {
			// Keep the most-visited topic even below the floor.
			bestF, bestV := 0, -1.0
			counts := make([]float64, topics)
			for _, v2 := range visits {
				for _, kw := range pois[v2].Keywords {
					counts[kw]++
				}
			}
			for f, cN := range counts {
				if cN > bestV {
					bestF, bestV = f, cN
				}
			}
			w[bestF] = math.Min(1, bestV/float64(len(visits)))
			if w[bestF] == 0 {
				w[bestF] = 0.2
			}
		}
		centroid := geo.Pt(cx/float64(len(visits)), cy/float64(len(visits)))
		at, ok := road.SnapPoint(centroid)
		if !ok {
			panic("gen: road network has no edges")
		}
		users[i] = model.User{
			ID:        socialnet.UserID(i),
			At:        at,
			Loc:       road.Location(at),
			Interests: w,
		}
	}
	return users
}
