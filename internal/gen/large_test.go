package gen

import (
	"bytes"
	"runtime"
	"testing"

	"gpssn/internal/model"
	"gpssn/internal/snap"
)

// fingerprint serializes the whole dataset and checksums the bytes —
// two datasets fingerprint equal iff every vertex, edge, user, interest
// weight, friendship and POI keyword is bit-identical.
func fingerprint(t *testing.T, d *model.Dataset) uint64 {
	t.Helper()
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	return snap.Checksum(buf.Bytes())
}

func TestLargeProducesValidConnectedNetwork(t *testing.T) {
	d, err := Large(Config{
		Name: "large-test", Seed: 3,
		RoadVertices: 5000, SocialUsers: 2000, POIs: 1000, Topics: 8,
	})
	if err != nil {
		t.Fatalf("Large: %v", err)
	}
	if d.Road.NumVertices() != 5000 || len(d.Users) != 2000 || len(d.POIs) != 1000 {
		t.Fatalf("sizes: %d verts, %d users, %d POIs",
			d.Road.NumVertices(), len(d.Users), len(d.POIs))
	}
	if !d.Road.IsConnected() {
		t.Fatal("lattice road network must be connected")
	}
	if deg := d.Road.AvgDegree(); deg < 2.0 || deg > 3.0 {
		t.Errorf("average road degree %.2f outside the realistic 2.0–3.0 band", deg)
	}
}

func TestLargeZipfAndTinySizes(t *testing.T) {
	if _, err := Large(Config{Seed: 1, RoadVertices: 2, SocialUsers: 1, POIs: 1, Topics: 2}); err == nil {
		t.Error("sub-lattice vertex count must be rejected")
	}
	d, err := Large(Config{Seed: 1, RoadVertices: 9, SocialUsers: 5, POIs: 3, Topics: 4, Dist: Zipf})
	if err != nil {
		t.Fatalf("tiny zipf: %v", err)
	}
	if !d.Road.IsConnected() {
		t.Error("tiny lattice must still be connected")
	}
}

// TestGenDeterministicAcrossGOMAXPROCS is the determinism audit the 1M
// tier depends on: the same seed must produce the bit-identical dataset
// whatever the host's parallelism, because benchmark artifacts
// (BENCH_scale1m.json) are only comparable across machines if the
// underlying data is. Generation is sequential by construction; this test
// keeps it that way. Large runs at 100K vertices (its production shape);
// Synthetic — whose R-tree road builder is costlier — runs smaller.
func TestGenDeterministicAcrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("100K-vertex generation in -short mode")
	}
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	largeCfg := Config{
		Name: "determinism-100k", Seed: 42,
		RoadVertices: 100_000, SocialUsers: 50_000, POIs: 20_000, Topics: 16,
	}
	synCfg := smallCfg(Zipf, 42)

	gen := func(procs int) (uint64, uint64) {
		runtime.GOMAXPROCS(procs)
		dl, err := Large(largeCfg)
		if err != nil {
			t.Fatalf("Large @ GOMAXPROCS=%d: %v", procs, err)
		}
		ds, err := Synthetic(synCfg)
		if err != nil {
			t.Fatalf("Synthetic @ GOMAXPROCS=%d: %v", procs, err)
		}
		return fingerprint(t, dl), fingerprint(t, ds)
	}
	l1, s1 := gen(1)
	l8, s8 := gen(8)
	if l1 != l8 {
		t.Errorf("Large fingerprint differs across GOMAXPROCS: %x vs %x", l1, l8)
	}
	if s1 != s8 {
		t.Errorf("Synthetic fingerprint differs across GOMAXPROCS: %x vs %x", s1, s8)
	}
}
