package gen

import (
	"math"
	"testing"

	"gpssn/internal/socialnet"
)

// smallCfg is a fast configuration for unit tests.
func smallCfg(dist Distribution, seed int64) Config {
	return Config{
		Name:         "test",
		Seed:         seed,
		RoadVertices: 400,
		SocialUsers:  300,
		POIs:         200,
		Topics:       8,
		Dist:         dist,
	}
}

func TestSyntheticUniform(t *testing.T) {
	d, err := Synthetic(smallCfg(Uniform, 1))
	if err != nil {
		t.Fatalf("Synthetic: %v", err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if d.Road.NumVertices() != 400 || len(d.Users) != 300 || len(d.POIs) != 200 {
		t.Errorf("sizes: %d verts, %d users, %d POIs",
			d.Road.NumVertices(), len(d.Users), len(d.POIs))
	}
	if !d.Road.IsConnected() {
		t.Error("road network must be connected")
	}
}

func TestSyntheticZipf(t *testing.T) {
	d, err := Synthetic(smallCfg(Zipf, 2))
	if err != nil {
		t.Fatalf("Synthetic: %v", err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a, err := Synthetic(smallCfg(Uniform, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic(smallCfg(Uniform, 7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Road.NumEdges() != b.Road.NumEdges() ||
		a.Social.NumFriendships() != b.Social.NumFriendships() {
		t.Error("same seed must generate identical datasets")
	}
	for i := range a.Users {
		if a.Users[i].At != b.Users[i].At {
			t.Fatalf("user %d attach differs", i)
		}
		for f := range a.Users[i].Interests {
			if a.Users[i].Interests[f] != b.Users[i].Interests[f] {
				t.Fatalf("user %d interests differ", i)
			}
		}
	}
	c, err := Synthetic(smallCfg(Uniform, 8))
	if err != nil {
		t.Fatal(err)
	}
	if a.Road.NumEdges() == c.Road.NumEdges() && a.Social.NumFriendships() == c.Social.NumFriendships() {
		// Different seed *could* coincide, but both identical is a red flag.
		same := true
		for i := range a.Users {
			if a.Users[i].At != c.Users[i].At {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds generated identical users")
		}
	}
}

func TestSyntheticRoadDegreeRealistic(t *testing.T) {
	d, err := Synthetic(smallCfg(Uniform, 3))
	if err != nil {
		t.Fatal(err)
	}
	deg := d.Road.AvgDegree()
	if deg < 1.5 || deg > 4.5 {
		t.Errorf("road avg degree %v outside road-network-like range", deg)
	}
}

func TestSyntheticSocialDegreeRange(t *testing.T) {
	d, err := Synthetic(smallCfg(Uniform, 4))
	if err != nil {
		t.Fatal(err)
	}
	deg := d.Social.AvgDegree()
	// Each user initiates 1..10 edges; dedup/self-loop rejection keeps the
	// realized average within (1, 11).
	if deg <= 1 || deg >= 11 {
		t.Errorf("social avg degree %v outside (1,11)", deg)
	}
}

func TestSyntheticEveryUserHasInterest(t *testing.T) {
	d, err := Synthetic(smallCfg(Zipf, 5))
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range d.Users {
		sum := 0.0
		for _, p := range u.Interests {
			sum += p
		}
		if sum == 0 {
			t.Fatalf("user %d has an all-zero interest vector", i)
		}
	}
}

func TestSyntheticPOIKeywordsSorted(t *testing.T) {
	d, err := Synthetic(smallCfg(Zipf, 6))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range d.POIs {
		for k := 1; k < len(p.Keywords); k++ {
			if p.Keywords[k-1] >= p.Keywords[k] {
				t.Fatalf("POI %d keywords not strictly sorted: %v", i, p.Keywords)
			}
		}
	}
}

func TestSyntheticRejectsBadConfig(t *testing.T) {
	for name, cfg := range map[string]Config{
		"1 road vertex": {RoadVertices: 1, SocialUsers: 10, POIs: 5, Topics: 4},
		"neg users":     {RoadVertices: 10, SocialUsers: -1, POIs: 5, Topics: 4},
		"neg POIs":      {RoadVertices: 10, SocialUsers: 10, POIs: -2, Topics: 4},
	} {
		if _, err := Synthetic(cfg); err == nil {
			t.Errorf("%s: Synthetic should fail", name)
		}
	}
}

func TestDistributionString(t *testing.T) {
	if Uniform.String() != "uniform" || Zipf.String() != "zipf" {
		t.Error("Distribution names wrong")
	}
}

func TestRealLikeSmallScale(t *testing.T) {
	cfg := BrightkiteCalifornia(1, 0.02) // 800 users, 420 road vertices
	d, err := RealLike(cfg)
	if err != nil {
		t.Fatalf("RealLike: %v", err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if d.Name != "Bri+Cal" {
		t.Errorf("Name = %q", d.Name)
	}
	if !d.Road.IsConnected() {
		t.Error("real-like road network must be connected")
	}
	// Road degree should be near the 2.1 target (trimmed).
	if deg := d.Road.AvgDegree(); deg > 2.6 || deg < 1.8 {
		t.Errorf("road degree %v too far from 2.1 target", deg)
	}
}

func TestRealLikeSocialDegreeNearTarget(t *testing.T) {
	cfg := GowallaColorado(2, 0.02)
	d, err := RealLike(cfg)
	if err != nil {
		t.Fatal(err)
	}
	deg := d.Social.AvgDegree()
	// Stub matching drops duplicate edges, so realized mean is below the
	// 32.1 target but should stay in its neighbourhood.
	if deg < 32.1*0.5 || deg > 32.1*1.2 {
		t.Errorf("social degree %v too far from 32.1 target", deg)
	}
}

func TestRealLikePowerLawTail(t *testing.T) {
	cfg := BrightkiteCalifornia(3, 0.05)
	d, err := RealLike(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Power-law graphs have hubs: max degree should dwarf the mean.
	maxDeg := 0
	for u := 0; u < d.Social.NumUsers(); u++ {
		if deg := d.Social.Degree(socialnet.UserID(u)); deg > maxDeg {
			maxDeg = deg
		}
	}
	if float64(maxDeg) < 3*d.Social.AvgDegree() {
		t.Errorf("max degree %d vs mean %.1f: no power-law tail", maxDeg, d.Social.AvgDegree())
	}
}

func TestRealLikeInterestVectorsFromCheckins(t *testing.T) {
	cfg := BrightkiteCalifornia(4, 0.02)
	d, err := RealLike(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range d.Users {
		sum := 0.0
		for _, p := range u.Interests {
			if p < 0 || p > 1 {
				t.Fatalf("user %d has out-of-range interest %v", i, p)
			}
			sum += p
		}
		if sum == 0 {
			t.Fatalf("user %d checked into POIs but has empty interests", i)
		}
	}
}

func TestRealLikeNegativeScale(t *testing.T) {
	cfg := BrightkiteCalifornia(1, -1)
	if _, err := RealLike(cfg); err == nil {
		t.Error("negative scale should fail")
	}
}

func TestRealLikeHomeOnRoad(t *testing.T) {
	cfg := GowallaColorado(5, 0.02)
	d, err := RealLike(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range d.Users {
		loc := d.Road.Location(u.At)
		if math.IsNaN(loc.X) || math.IsNaN(loc.Y) {
			t.Fatalf("user %d home not on road", i)
		}
		if loc.Dist(u.Loc) > 1e-9 {
			t.Fatalf("user %d Loc %v inconsistent with attachment %v", i, u.Loc, loc)
		}
	}
}
