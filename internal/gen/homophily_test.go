package gen

import (
	"testing"

	"gpssn/internal/core"
	"gpssn/internal/model"
	"gpssn/internal/socialnet"
)

// interestSim adapts the interest score to the analysis helper.
func interestSim(ds *model.Dataset) func(a, b socialnet.UserID) float64 {
	return func(a, b socialnet.UserID) float64 {
		return core.InterestScore(ds.Users[a].Interests, ds.Users[b].Interests)
	}
}

// The generated networks must exhibit interest homophily — friends more
// similar than strangers — because the paper's index-level interest
// pruning (Lemma 8) has no power without it. This is the key calibration
// invariant of the generators.
func TestSyntheticHomophily(t *testing.T) {
	for _, dist := range []Distribution{Uniform, Zipf} {
		d, err := Synthetic(Config{
			Seed: 3, RoadVertices: 1200, SocialUsers: 1200, POIs: 400, Dist: dist,
		})
		if err != nil {
			t.Fatal(err)
		}
		h := d.Social.Homophily(interestSim(d))
		if h < 0.2 {
			t.Errorf("%v: homophily %v too weak for index pruning", dist, h)
		}
	}
}

func TestRealLikeHomophily(t *testing.T) {
	d, err := RealLike(BrightkiteCalifornia(3, 0.04))
	if err != nil {
		t.Fatal(err)
	}
	h := d.Social.Homophily(interestSim(d))
	if h < 0.15 {
		t.Errorf("real-like homophily %v too weak", h)
	}
}

// Degree skew: the real-like generator must produce a power-law-ish tail
// and keep most users in one giant component, like Brightkite/Gowalla.
func TestRealLikeStructure(t *testing.T) {
	d, err := RealLike(GowallaColorado(4, 0.04))
	if err != nil {
		t.Fatal(err)
	}
	if frac := d.Social.LargestComponentFraction(); frac < 0.5 {
		t.Errorf("largest component fraction %v too small", frac)
	}
	if maxDeg := d.Social.MaxDegree(); float64(maxDeg) < 3*d.Social.AvgDegree() {
		t.Errorf("max degree %d vs mean %.1f: missing hub tail", maxDeg, d.Social.AvgDegree())
	}
}

// Spatial keyword districts: POIs that are close must share more keywords
// than far pairs, or the matching-score pruning has no power.
func TestSyntheticKeywordDistricts(t *testing.T) {
	d, err := Synthetic(Config{
		Seed: 5, RoadVertices: 2000, SocialUsers: 500, POIs: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	shareKw := func(a, b *model.POI) bool {
		for _, ka := range a.Keywords {
			for _, kb := range b.Keywords {
				if ka == kb {
					return true
				}
			}
		}
		return false
	}
	nearShared, nearTotal := 0, 0
	farShared, farTotal := 0, 0
	for i := 0; i+1 < len(d.POIs); i += 3 {
		a := &d.POIs[i]
		b := &d.POIs[i+1] // POIs are generated edge by edge: often nearby
		if a.Loc.Dist(b.Loc) < 3 {
			nearTotal++
			if shareKw(a, b) {
				nearShared++
			}
		}
		c := &d.POIs[(i+len(d.POIs)/2)%len(d.POIs)]
		if a.Loc.Dist(c.Loc) > 20 {
			farTotal++
			if shareKw(a, c) {
				farShared++
			}
		}
	}
	if nearTotal == 0 || farTotal == 0 {
		t.Skip("not enough near/far pairs in this layout")
	}
	nearRate := float64(nearShared) / float64(nearTotal)
	farRate := float64(farShared) / float64(farTotal)
	if nearRate <= farRate {
		t.Errorf("near POIs share keywords at %.2f, far at %.2f: no districts", nearRate, farRate)
	}
}
