package gen

import (
	"math"
	"testing"

	"gpssn/internal/socialnet"
)

func TestConfigOverridesRespected(t *testing.T) {
	d, err := Synthetic(Config{
		Seed: 9, RoadVertices: 300, SocialUsers: 300, POIs: 120,
		Topics: 12, CommunitySize: 50, IntraProb: 0.99,
		ProfileTopics: 2, DistrictSide: 5, GeoCohesion: 0.02,
		MaxSocialDegree: 4, MaxPOIsPerEdge: 2, MaxKeywordsPerPOI: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumTopics != 12 {
		t.Errorf("NumTopics = %d", d.NumTopics)
	}
	// MaxSocialDegree caps the per-user edge *initiations*; realized
	// degrees can reach at most 2x the cap (initiated + received).
	if deg := d.Social.AvgDegree(); deg > 8 {
		t.Errorf("avg degree %v exceeds plausible cap for MaxSocialDegree=4", deg)
	}
	for _, p := range d.POIs {
		if len(p.Keywords) > 2 {
			t.Fatalf("POI has %d keywords, cap 2", len(p.Keywords))
		}
		for _, k := range p.Keywords {
			if k >= 12 {
				t.Fatalf("keyword %d outside vocabulary 12", k)
			}
		}
	}
}

func TestHighIntraProbTightensCommunities(t *testing.T) {
	loose, err := Synthetic(Config{Seed: 10, RoadVertices: 400, SocialUsers: 600, POIs: 150, IntraProb: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Synthetic(Config{Seed: 10, RoadVertices: 400, SocialUsers: 600, POIs: 150, IntraProb: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	// Clustering should be markedly higher with near-total intra-community
	// wiring.
	lc := loose.Social.ClusteringCoefficient()
	tc := tight.Social.ClusteringCoefficient()
	if tc <= lc {
		t.Errorf("clustering: intra=0.99 gives %v, intra=0.3 gives %v; expected tighter communities", tc, lc)
	}
}

func TestGeoCohesionShrinksGroupSpread(t *testing.T) {
	spread := func(cohesion float64) float64 {
		d, err := Synthetic(Config{
			Seed: 11, RoadVertices: 900, SocialUsers: 600, POIs: 200,
			GeoCohesion: cohesion,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Mean distance between friends' homes.
		total, n := 0.0, 0
		for u := 0; u < d.Social.NumUsers(); u += 5 {
			for _, v := range d.Social.Friends(socialnet.UserID(u)) {
				total += d.Users[u].Loc.Dist(d.Users[v].Loc)
				n++
			}
		}
		if n == 0 {
			t.Fatal("no friendships")
		}
		return total / float64(n)
	}
	tight := spread(0.02)
	loose := spread(0.3)
	if tight >= loose {
		t.Errorf("friend-home spread: cohesion 0.02 gives %v, 0.3 gives %v", tight, loose)
	}
	if math.IsNaN(tight) || math.IsNaN(loose) {
		t.Fatal("NaN spread")
	}
}
