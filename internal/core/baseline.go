package core

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"time"

	"gpssn/internal/model"
	"gpssn/internal/roadnet"
	"gpssn/internal/socialnet"
)

// Baseline answers a GP-SSN query by brute force, exactly as Section 6.1
// describes the competitor: enumerate every connected user set S of size τ
// containing u_q that satisfies the pairwise interest threshold γ, pair it
// with every POI ball R = ⊙(o_i, r) that θ-matches all of S, and return the
// pair with the smallest maximum road distance. It shares the engine's
// solution space, so on any input Engine.Query must return the same optimal
// cost — the test suite uses Baseline as the correctness oracle. Cost grows
// combinatorially; call it only on small datasets.
type Baseline struct {
	DS *model.Dataset
}

// Query runs the brute-force search. The second return value counts the
// (S, R) pairs evaluated.
func (b *Baseline) Query(uq socialnet.UserID, p Params) (Result, int64) {
	res, pairs := b.QueryTopK(uq, p, 1)
	if len(res) == 0 {
		return Result{MaxDist: math.Inf(1)}, pairs
	}
	return res[0], pairs
}

// QueryCtx is Query with cooperative cancellation, so oracle tests against
// adversarial parameters can be time-bounded. The error matches
// ErrCancelled/ErrDeadlineExceeded and the context sentinels via errors.Is.
func (b *Baseline) QueryCtx(ctx context.Context, uq socialnet.UserID, p Params) (Result, int64, error) {
	res, pairs, err := b.QueryTopKCtx(ctx, uq, p, 1)
	if err != nil || len(res) == 0 {
		return Result{MaxDist: math.Inf(1)}, pairs, err
	}
	return res[0], pairs, nil
}

// QueryTopK brute-forces the k best answers with distinct anchors,
// cheapest first (the oracle for Engine.QueryTopK).
func (b *Baseline) QueryTopK(uq socialnet.UserID, p Params, k int) ([]Result, int64) {
	res, pairs, _ := b.QueryTopKCtx(context.Background(), uq, p, k)
	return res, pairs
}

// QueryTopKCtx is QueryTopK with cooperative cancellation: the group
// enumeration, the per-anchor loop, and the underlying road searches all
// poll the context.
func (b *Baseline) QueryTopKCtx(ctx context.Context, uq socialnet.UserID, p Params, k int) ([]Result, int64, error) {
	ds := b.DS
	var pairs int64
	var ck *roadnet.Checkpoint
	if ctx.Done() != nil {
		ck = roadnet.NewCheckpoint(ctx.Done(), func() error { return ContextError(ctx) }, 0)
	}
	if ck.Cancelled() {
		return nil, 0, ContextError(ctx)
	}

	// All connected τ-subsets containing uq with pairwise similarity >= γ.
	groups := b.enumerateGroups(uq, p, ck)
	if ck.Cancelled() {
		return nil, 0, ContextError(ctx)
	}
	if len(groups) == 0 {
		return nil, 0, nil
	}

	// Exact per-user vertex distances, computed once per involved user.
	distCache := map[socialnet.UserID][]float64{}
	vertexDist := func(u socialnet.UserID) []float64 {
		if dv, ok := distCache[u]; ok {
			return dv
		}
		at := ds.Users[u].At
		edge := ds.Road.EdgeAt(at.Edge)
		dv := ds.Road.DijkstraMultiCk([]roadnet.Seed{
			{Vertex: edge.U, Dist: at.T * edge.Weight},
			{Vertex: edge.V, Dist: (1 - at.T) * edge.Weight},
		}, ck)
		if !ck.Stopped() {
			distCache[u] = dv
		}
		return dv
	}
	attDist := func(u socialnet.UserID, at roadnet.Attach) float64 {
		dv := vertexDist(u)
		d := ds.Road.DistToVertexVia(at, dv)
		if ds.Users[u].At.Edge == at.Edge {
			edge := ds.Road.EdgeAt(at.Edge)
			if direct := math.Abs(ds.Users[u].At.T-at.T) * edge.Weight; direct < d {
				d = direct
			}
		}
		return d
	}

	keeper := &resultKeeper{k: k}
	allAtts := make([]roadnet.Attach, len(ds.POIs))
	for i := range ds.POIs {
		allAtts[i] = ds.POIs[i].At
	}
	for ai := range ds.POIs {
		if ck.Cancelled() {
			return nil, pairs, ContextError(ctx)
		}
		anchor := model.POIID(ai)
		dists := ds.Road.DistAttachWithinCk(ds.POIs[ai].At, p.R, allAtts, ck)
		var ball []model.POIID
		for j := range ds.POIs {
			if !math.IsInf(dists[j], 1) {
				ball = append(ball, model.POIID(j))
			}
		}
		if len(ball) == 0 {
			ball = []model.POIID{anchor}
		}
		kws := NewTopicSet(ds.NumTopics)
		for _, o := range ball {
			for _, k := range ds.POIs[o].Keywords {
				kws.Add(k)
			}
		}
		anchorBest := Result{MaxDist: math.Inf(1)}
		for _, S := range groups {
			if ck.Cancelled() {
				return nil, pairs, ContextError(ctx)
			}
			pairs++
			feasible := true
			for _, u := range S {
				if MatchScoreSet(ds.Users[u].Interests, kws) < p.Theta {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}
			cost := 0.0
			for _, u := range S {
				for _, o := range ball {
					if d := attDist(u, ds.POIs[o].At); d > cost {
						cost = d
					}
				}
			}
			// Canonical per-anchor choice (same rule the engine uses):
			// cheaper cost wins, equal-cost ties go to the
			// lexicographically smallest sorted group.
			if math.IsInf(cost, 1) || cost > anchorBest.MaxDist {
				continue
			}
			sortedS := sortedUsers(S)
			if cost == anchorBest.MaxDist && anchorBest.Found && !lexLessUsers(sortedS, anchorBest.S) {
				continue
			}
			sortedR := append([]model.POIID(nil), ball...)
			sort.Slice(sortedR, func(i, j int) bool { return sortedR[i] < sortedR[j] })
			anchorBest = Result{Found: true, S: sortedS, R: sortedR, Anchor: anchor, MaxDist: cost}
		}
		if anchorBest.Found {
			keeper.add(anchorBest)
		}
	}
	if ck.Cancelled() {
		return nil, pairs, ContextError(ctx)
	}
	return keeper.items, pairs, nil
}

// enumerateGroups lists every connected τ-subset containing uq whose pairs
// all meet the similarity threshold. ck may be nil; a cancelled enumeration
// returns a partial list the caller must discard (it checks ck afterwards).
func (b *Baseline) enumerateGroups(uq socialnet.UserID, p Params, ck *roadnet.Checkpoint) [][]socialnet.UserID {
	ds := b.DS
	var out [][]socialnet.UserID
	cur := []socialnet.UserID{uq}
	calls := 0
	var rec func(ext []socialnet.UserID, forbidden map[socialnet.UserID]bool)
	rec = func(ext []socialnet.UserID, forbidden map[socialnet.UserID]bool) {
		if calls&255 == 0 && ck.Cancelled() {
			return
		}
		calls++
		if len(cur) == p.Tau {
			out = append(out, append([]socialnet.UserID(nil), cur...))
			return
		}
		local := map[socialnet.UserID]bool{}
		for i, v := range ext {
			ok := true
			for _, u := range cur {
				if Similarity(p.Metric, ds.Users[u].Interests, ds.Users[v].Interests) < p.Gamma {
					ok = false
					break
				}
			}
			if !ok {
				local[v] = true
				continue
			}
			cur = append(cur, v)
			inCur := map[socialnet.UserID]bool{}
			for _, u := range cur {
				inCur[u] = true
			}
			seen := map[socialnet.UserID]bool{}
			var newExt []socialnet.UserID
			for _, w := range ext[i+1:] {
				if !local[w] && !forbidden[w] && !seen[w] {
					newExt = append(newExt, w)
					seen[w] = true
				}
			}
			for _, w := range ds.Social.Friends(v) {
				if !inCur[w] && !seen[w] && !forbidden[w] && !local[w] && !inPrefix(ext, i, w) {
					newExt = append(newExt, w)
					seen[w] = true
				}
			}
			rec(newExt, union(forbidden, local))
			cur = cur[:len(cur)-1]
			local[v] = true
		}
	}
	var ext []socialnet.UserID
	for _, v := range ds.Social.Friends(uq) {
		ext = append(ext, v)
	}
	if p.Tau == 1 {
		return [][]socialnet.UserID{{uq}}
	}
	rec(ext, map[socialnet.UserID]bool{})
	return out
}

func inPrefix(ext []socialnet.UserID, i int, w socialnet.UserID) bool {
	for _, u := range ext[:i+1] {
		if u == w {
			return true
		}
	}
	return false
}

func union(a, b map[socialnet.UserID]bool) map[socialnet.UserID]bool {
	if len(b) == 0 {
		return a
	}
	out := make(map[socialnet.UserID]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

// CostEstimate is the sampling-based Baseline cost estimator of Section 6.3
// (Fig. 8): it measures the average per-pair evaluation time over sample
// user groups and extrapolates to the full C(m-1, τ-1)·n pair space.
type CostEstimate struct {
	// SampledPairs is how many (S, R) pairs were actually evaluated.
	SampledPairs int64
	// AvgPairTime is the mean wall time to evaluate one pair.
	AvgPairTime time.Duration
	// TotalPairsLog2 is log2 of the full pair count.
	TotalPairsLog2 float64
	// EstimatedTotal is AvgPairTime scaled to the full pair space, in
	// hours (it overflows time.Duration for realistic inputs).
	EstimatedHours float64
}

// EstimateCost samples `samples` random connected user groups (the paper
// uses 100), times the per-pair work, and extrapolates.
func (b *Baseline) EstimateCost(uq socialnet.UserID, p Params, samples int, seed int64) CostEstimate {
	ds := b.DS
	rng := rand.New(rand.NewSource(seed))
	var est CostEstimate
	est.TotalPairsLog2 = pairsTotalLog2(len(ds.Users)-1, p.Tau-1, len(ds.POIs))

	allAtts := make([]roadnet.Attach, len(ds.POIs))
	for i := range ds.POIs {
		allAtts[i] = ds.POIs[i].At
	}
	start := time.Now()
	for trial := 0; trial < samples; trial++ {
		// Random connected group grown from uq.
		S := []socialnet.UserID{uq}
		in := map[socialnet.UserID]bool{uq: true}
		for len(S) < p.Tau {
			var frontier []socialnet.UserID
			for _, u := range S {
				for _, v := range ds.Social.Friends(u) {
					if !in[v] {
						frontier = append(frontier, v)
					}
				}
			}
			if len(frontier) == 0 {
				break
			}
			v := frontier[rng.Intn(len(frontier))]
			S = append(S, v)
			in[v] = true
		}
		// One random anchor ball; evaluate the pair completely the way the
		// brute force would.
		ai := rng.Intn(len(ds.POIs))
		dists := ds.Road.DistAttachWithin(ds.POIs[ai].At, p.R, allAtts)
		kws := NewTopicSet(ds.NumTopics)
		var ball []roadnet.Attach
		for j := range ds.POIs {
			if !math.IsInf(dists[j], 1) {
				ball = append(ball, ds.POIs[j].At)
				for _, k := range ds.POIs[j].Keywords {
					kws.Add(k)
				}
			}
		}
		for _, u := range S {
			_ = MatchScoreSet(ds.Users[u].Interests, kws)
		}
		for _, u := range S {
			ds.Road.DistAttachMany(ds.Users[u].At, ball)
		}
		est.SampledPairs++
	}
	elapsed := time.Since(start)
	if est.SampledPairs > 0 {
		est.AvgPairTime = elapsed / time.Duration(est.SampledPairs)
	}
	// EstimatedHours = avgPairSeconds * 2^TotalPairsLog2 / 3600.
	est.EstimatedHours = est.AvgPairTime.Seconds() * math.Exp2(est.TotalPairsLog2) / 3600
	return est
}
