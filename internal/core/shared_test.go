package core

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"gpssn/internal/model"
	"gpssn/internal/roadnet"
	"gpssn/internal/roadnet/hl"
	"gpssn/internal/socialnet"
)

// TestBallMemoSingleflight hammers one anchor from many goroutines: the
// build must run exactly once (one miss, the rest hits), every caller must
// receive the same ball as a solo ballAround, and the copy-on-read rule
// must hold — mutating a returned slice cannot leak into the memo.
func TestBallMemoSingleflight(t *testing.T) {
	ds := smallDataset(t, 4)
	e := buildEngine(t, ds, Options{SharedWork: true})
	want := e.ballAround(0, 2, nil) // memo-off ground truth (direct build)

	const callers = 16
	balls := make([][]model.POIID, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			balls[i], _ = e.anchorBall(0, 2, nil)
		}(i)
	}
	wg.Wait()
	for i, b := range balls {
		if !reflect.DeepEqual(b, want) {
			t.Fatalf("caller %d ball = %v, want %v", i, b, want)
		}
	}
	st := e.SharedWorkStats()
	if st.BallMisses != 1 {
		t.Fatalf("ball misses = %d, want 1 (singleflight)", st.BallMisses)
	}
	if st.BallHits != callers-1 {
		t.Fatalf("ball hits = %d, want %d", st.BallHits, callers-1)
	}

	// Copy-on-read: clobber a returned ball, refetch, must be pristine.
	balls[0][0] = -999
	again, _ := e.anchorBall(0, 2, nil)
	if !reflect.DeepEqual(again, want) {
		t.Fatalf("memo poisoned by caller mutation: %v, want %v", again, want)
	}
}

// TestBallMemoInvalidation adds POIs near and far from memoized anchors:
// only balls the new POI could join (Euclidean prefilter) may be evicted,
// the road version must bump on every AddPOI, and a post-update fetch must
// return the fresh ball — the no-stale-ball guarantee.
func TestBallMemoInvalidation(t *testing.T) {
	ds := smallDataset(t, 4)
	e := buildEngine(t, ds, Options{SharedWork: true})
	anchor := model.POIID(0)
	loc := ds.POIs[anchor].Loc
	before, _ := e.anchorBall(anchor, 2, nil)

	// A POI Euclidean-far from the anchor: the memoized ball must survive
	// (no eviction) and stay correct — the new POI cannot be a member.
	// Borrow the attachment of the existing POI farthest from the anchor.
	farSrc, farDist := anchor, 0.0
	for id := range ds.POIs {
		if d := ds.POIs[id].Loc.Dist(loc); d > farDist {
			farSrc, farDist = model.POIID(id), d
		}
	}
	if farDist <= 2 {
		t.Skipf("no POI farther than the radius (max %v)", farDist)
	}
	far := model.POI{
		ID: model.POIID(len(ds.POIs)), At: ds.POIs[farSrc].At,
		Loc: ds.POIs[farSrc].Loc, Keywords: []int{0},
	}
	if err := e.AddPOI(far); err != nil {
		t.Fatalf("AddPOI(far): %v", err)
	}
	st := e.SharedWorkStats()
	if st.RoadVersion != 1 {
		t.Fatalf("road version = %d after one AddPOI, want 1", st.RoadVersion)
	}
	if st.BallEvictions != 0 {
		t.Fatalf("far POI evicted %d balls; Euclidean prefilter should keep them", st.BallEvictions)
	}
	if got, _ := e.anchorBall(anchor, 2, nil); !reflect.DeepEqual(got, before) {
		t.Fatalf("ball changed after far AddPOI: %v, want %v", got, before)
	}

	// A POI right on the anchor: its ball entry must be evicted and the
	// refetched ball must match a fresh solo build (which includes the
	// new POI through the delta scan) — never the stale memo entry.
	near := model.POI{
		ID: model.POIID(len(ds.POIs)), At: ds.POIs[anchor].At,
		Loc: loc, Keywords: []int{0},
	}
	if err := e.AddPOI(near); err != nil {
		t.Fatalf("AddPOI(near): %v", err)
	}
	st = e.SharedWorkStats()
	if st.RoadVersion != 2 {
		t.Fatalf("road version = %d after two AddPOIs, want 2", st.RoadVersion)
	}
	if st.BallEvictions == 0 {
		t.Fatal("near POI evicted nothing; stale ball would be served")
	}
	want := e.ballAround(anchor, 2, nil)
	got, _ := e.anchorBall(anchor, 2, nil)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-update ball = %v, want fresh %v", got, want)
	}
	member := false
	for _, id := range got {
		if id == near.ID {
			member = true
		}
	}
	if !member {
		t.Fatalf("new POI %d missing from its anchor's refetched ball %v", near.ID, got)
	}
}

// TestBallMemoBudgetDiscipline: a memo hit charges the metered build cost,
// and a budget too small for that charge yields the same degenerate
// {anchor} ball a solo tripped build would — never a full ball the query
// didn't pay for, and never a degenerate entry in the memo.
func TestBallMemoBudgetDiscipline(t *testing.T) {
	ds := smallDataset(t, 4)
	e := buildEngine(t, ds, Options{SharedWork: true})
	anchor, full := model.POIID(-1), []model.POIID(nil)
	for a := range ds.POIs {
		if b, _ := e.anchorBall(model.POIID(a), 4, nil); len(b) >= 2 {
			anchor, full = model.POIID(a), b
			break
		}
	}
	if anchor < 0 {
		t.Fatal("no anchor with a non-trivial radius-4 ball")
	}

	tiny := roadnet.NewCheckpoint(nil, nil, 1)
	got, _ := e.anchorBall(anchor, 4, tiny)
	if len(got) != 1 || got[0] != anchor {
		t.Fatalf("budget-tripped hit returned %v, want degenerate [%d]", got, anchor)
	}
	if !tiny.Exhausted() {
		t.Fatal("1-work budget did not trip on the memo charge")
	}
	// The entry itself must still be canonical for the next caller.
	again, _ := e.anchorBall(anchor, 4, roadnet.NewCheckpoint(nil, nil, 1<<40))
	if !reflect.DeepEqual(again, full) {
		t.Fatalf("entry degraded after tripped hit: %v, want %v", again, full)
	}
}

// TestSweepMemoArrays checks the user one-to-all memo against direct
// Dijkstra, the hit accounting, and the reject-on-full path.
func TestSweepMemoArrays(t *testing.T) {
	ds := smallDataset(t, 4)
	e := buildEngine(t, ds, Options{SharedWork: true})

	u := socialnet.UserID(3)
	want := e.userVertexDist(u, nil)
	got, ok := e.sharedUserArray(u, nil)
	if !ok {
		t.Fatal("sharedUserArray miss-path failed")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("memoized array differs from direct Dijkstra")
	}
	if st := e.SharedWorkStats(); st.SweepMisses != 1 || st.SweepHits != 0 {
		t.Fatalf("after first fetch: hits=%d misses=%d, want 0/1", st.SweepHits, st.SweepMisses)
	}
	if again, ok := e.sharedUserArray(u, nil); !ok || &again[0] != &got[0] {
		t.Fatal("second fetch did not share the memoized array")
	}
	if st := e.SharedWorkStats(); st.SweepHits != 1 {
		t.Fatalf("sweep hits = %d, want 1", st.SweepHits)
	}

	// A budget too small for the metered sweep yields all-+Inf (the solo
	// all-or-nothing abort), not the shared exact array.
	tiny := roadnet.NewCheckpoint(nil, nil, 1)
	dv, ok := e.sharedUserArray(u, tiny)
	if !ok {
		t.Fatal("budgeted fetch fell off the memo path")
	}
	for _, d := range dv {
		if !math.IsInf(d, 1) {
			t.Fatal("budget-tripped hit leaked finite distances")
		}
	}

	// Reject-on-full: an entry claiming more bytes than the cap is turned
	// away and counted; the memo stays usable.
	sw := e.shared
	if ent := sw.userSweep(socialnet.UserID(9), sharedUserMaxBytes+1, func(*userEntry) bool { return true }); ent != nil {
		t.Fatal("over-cap sweep entry admitted")
	}
	if st := e.SharedWorkStats(); st.SweepRejected != 1 {
		t.Fatalf("sweep rejected = %d, want 1", st.SweepRejected)
	}
}

// TestSweepMemoLabels: under a hub-label oracle the memo shares attachment
// labels; values must match a freshly computed label and survive
// concurrent fetches.
func TestSweepMemoLabels(t *testing.T) {
	ds := smallDataset(t, 4)
	e := buildEngine(t, ds, Options{SharedWork: true})
	ds.Road.SetDistanceOracle(hl.Build(ds.Road))

	u := socialnet.UserID(5)
	want := roadnet.AcquireLabel()
	defer roadnet.ReleaseLabel(want)
	if !ds.Road.AttachLabel(ds.Users[u].At, want) {
		t.Fatal("no label oracle attached")
	}

	const callers = 8
	labels := make([]*roadnet.HubLabel, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			labels[i], _ = e.sharedUserLabel(u)
		}(i)
	}
	wg.Wait()
	for i, l := range labels {
		if l == nil {
			t.Fatalf("caller %d got no label", i)
		}
		if l != labels[0] {
			t.Fatalf("caller %d got a different label instance (no sharing)", i)
		}
		if !reflect.DeepEqual(l.Hubs, want.Hubs) || !reflect.DeepEqual(l.Dist, want.Dist) {
			t.Fatalf("memoized label differs from direct AttachLabel")
		}
	}
	if st := e.SharedWorkStats(); st.SweepMisses != 1 || st.SweepHits != callers-1 {
		t.Fatalf("label singleflight: hits=%d misses=%d, want %d/1", st.SweepHits, st.SweepMisses, callers-1)
	}
}

// TestSharedWorkDisabled: with Options.SharedWork off the helpers must be
// transparent passthroughs — no memo, zero stats, identical values.
func TestSharedWorkDisabled(t *testing.T) {
	ds := smallDataset(t, 4)
	e := buildEngine(t, ds, Options{})
	ball, tl := e.anchorBall(0, 2, nil)
	if tl != nil {
		t.Fatal("disabled anchorBall returned shared labels")
	}
	if want := e.ballAround(0, 2, nil); !reflect.DeepEqual(ball, want) {
		t.Fatalf("disabled anchorBall = %v, want %v", ball, want)
	}
	if _, ok := e.sharedUserArray(1, nil); ok {
		t.Fatal("disabled sharedUserArray claimed a hit")
	}
	if _, ok := e.sharedUserLabel(1); ok {
		t.Fatal("disabled sharedUserLabel claimed a hit")
	}
	if st := e.SharedWorkStats(); st.Enabled || st.BallMisses != 0 {
		t.Fatalf("disabled stats = %+v, want zero", st)
	}
}
