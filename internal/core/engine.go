package core

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"gpssn/internal/index"
	"gpssn/internal/model"
	"gpssn/internal/pagesim"
	"gpssn/internal/roadnet"
	"gpssn/internal/rtree"
	"gpssn/internal/socialnet"
)

// Options tune the engine; the zero value enables everything the paper
// proposes. The Disable* switches exist for the ablation benchmarks.
type Options struct {
	// DisableIndexPruning skips all node-level pruning (Section 4.2): the
	// traversal descends every node and only object-level pruning applies.
	DisableIndexPruning bool
	// DisableDistancePruning skips the pivot-based distance pruning (δ and
	// Lemma 5/7): candidates are filtered by score predicates only.
	DisableDistancePruning bool
	// UseCorollary2 enables the second user-pruning pass (Corollary 2)
	// during refinement.
	UseCorollary2 bool
	// SamplingRefine replaces the exact branch-and-bound group enumeration
	// with the random-expansion subset sampling the paper sketches as
	// future work; results become approximate.
	SamplingRefine bool
	// SampleCount is the number of random expansions when SamplingRefine
	// is on (default 64).
	SampleCount int
	// Trace, when non-nil, receives a line-oriented log of the query's
	// phases: probe outcome, per-level candidate counts, δ evolution, and
	// refinement effort. For debugging and teaching; adds minor overhead.
	Trace io.Writer
	// RefineBudget caps the branch-and-bound expansions per anchor during
	// refinement (0 = unlimited, the default). On adversarially dense
	// social graphs a cap bounds query latency at the cost of exactness:
	// the answer is still feasible but may not be optimal. With a budget
	// set and Parallelism > 1, where the budget cuts off depends on how
	// fast the shared incumbent tightened, so budget-capped answers may
	// vary slightly across runs (unbudgeted answers never do).
	RefineBudget int
	// Parallelism is the number of worker goroutines refinement fans
	// anchor candidates over (0 = runtime.GOMAXPROCS(0), 1 = sequential).
	// Any setting returns identical answers; see docs/CONCURRENCY.md and
	// docs/ALGORITHMS.md for the soundness and determinism arguments.
	Parallelism int
	// SharedWork enables the cross-query shared-work memo: anchor balls
	// and per-user sweep state (one-to-all arrays / attachment labels)
	// are computed once and shared across concurrent queries instead of
	// once per query. Answers are bit-identical either way; see
	// docs/CONCURRENCY.md §6 for the invalidation and copy-on-read rules.
	SharedWork bool
	// DisableRefineArena turns off the per-worker refinement arenas: every
	// anchor and user evaluation allocates its transient scratch exactly as
	// before (per-anchor makes, pooled labels). The arena only changes
	// where scratch memory lives, never what is computed, so answers are
	// bit-identical either way; the switch exists for A/B measurement and
	// the equality gates.
	DisableRefineArena bool
	// DisableSweepFold turns off the folded batch sweeps: refinement's
	// array-strategy path computes each per-user one-to-all array with its
	// own solo search instead of folding the batch into one shared
	// downward sweep (roadnet.BatchOracle). Folding charges the checkpoint
	// at solo rates and produces bit-identical arrays, so unbudgeted
	// answers are identical either way; budgeted queries skip folding
	// entirely (see Checkpoint.Budgeted), so even truncated answers never
	// depend on this switch.
	DisableSweepFold bool
}

// Engine answers GP-SSN queries over a dataset through the I_R and I_S
// indexes (Algorithm 2 plus the refinement of Section 5).
//
// Concurrency: Query and QueryTopK may be called from any number of
// goroutines — they take the read side of mu and keep all per-query
// mutable state (I/O trackers, stats, trace buffer) in a query context.
// AddPOI, AddUser, and AddFriendship take the write side, so updates are
// serialized against in-flight queries. See docs/CONCURRENCY.md.
type Engine struct {
	DS     *model.Dataset
	Road   *index.RoadIndex
	Social *index.SocialIndex
	Opts   Options

	// mu is the query/update lock: queries hold it shared (indexes, the
	// dataset, and the dyn delta are read-only during a query), dynamic
	// updates hold it exclusively while appending to the delta stores.
	mu sync.RWMutex

	// traceMu serializes flushing per-query trace buffers to Opts.Trace,
	// so concurrent queries interleave whole traces, not lines.
	traceMu sync.Mutex

	// dyn tracks the main+delta boundaries for dynamic updates.
	dyn dynamicState

	// shared is the cross-query shared-work memo (nil when
	// Opts.SharedWork is off). Internally synchronized; invalidated by
	// the per-update-kind hooks in dynamic.go.
	shared *sharedWork

	// arenas recycles the per-worker refinement scratch (see arena.go);
	// unused when Opts.DisableRefineArena is set.
	arenas arenaPool
}

// NewEngine wires a dataset with its two indexes.
func NewEngine(ds *model.Dataset, road *index.RoadIndex, social *index.SocialIndex, opts Options) *Engine {
	if opts.SampleCount == 0 {
		opts.SampleCount = 64
	}
	e := &Engine{DS: ds, Road: road, Social: social, Opts: opts}
	if opts.SharedWork {
		e.shared = newSharedWork()
	}
	e.initDynamic()
	return e
}

// Result is a GP-SSN answer: the user group S (always containing the query
// issuer), the POI set R (the road ball of radius r around Anchor), and the
// minimized maximum user-POI road distance.
type Result struct {
	Found   bool
	S       []socialnet.UserID
	R       []model.POIID
	Anchor  model.POIID
	MaxDist float64
}

// Stats reports per-query cost and pruning-power counters; the experiment
// harness aggregates them into the paper's figures. Every counter —
// including PageReads — is accumulated in per-query state (see qctx), so
// concurrent queries never bleed into each other's numbers and Summary is
// correct by construction regardless of interleaving.
type Stats struct {
	CPUTime   time.Duration
	PageReads int64

	// Social-network side (users).
	SNUsersTotal          int
	SNIndexPruned         int // users under index nodes pruned (Lemmas 8, 9)
	SNIndexPrunedInterest int
	SNIndexPrunedDist     int
	SNObjPruned           int // leaf users pruned (Lemma 3, 4)
	SNObjPrunedInterest   int
	SNObjPrunedDist       int

	// Road-network side (POIs).
	RNPOIsTotal        int
	RNIndexPruned      int // POIs under index nodes pruned (Lemmas 6, 7)
	RNIndexPrunedMatch int
	RNIndexPrunedDist  int
	RNObjPruned        int // leaf POIs pruned (Lemmas 1, 5)
	RNObjPrunedMatch   int
	RNObjPrunedDist    int

	// Candidates surviving the traversal.
	CandUsers   int
	CandAnchors int

	// Refinement effort: user-POI group pairs actually evaluated, and the
	// total pair count C(m-1, τ-1)·n of the brute-force space (Fig 7(d)).
	PairsEvaluated int64
	PairsTotalLog2 float64 // log2 of the total pair count (it overflows)

	// SettledWork is the road-search work this query consumed (settled
	// vertices / merged label entries), counted only when a context or
	// budget armed the query's checkpoint; 0 otherwise.
	SettledWork int64
	// Truncated reports that a Params.Budget cut the search short: the
	// answer is the best fully-evaluated one, not necessarily optimal.
	Truncated bool
	// CacheHit is set by the facade when the answer was served from the
	// answer cache; the cost counters are zeroed then (no work was
	// replayed) and experiment aggregation excludes the query.
	CacheHit bool
}

// qctx is the per-query mutable state: stats, page-I/O trackers with their
// private cold buffer pools, and the trace buffer. One qctx belongs to one
// query; nothing in it is shared, which is what makes concurrent queries
// against a single Engine safe and their I/O accounting exact.
type qctx struct {
	st     *Stats
	road   *pagesim.Tracker
	social *pagesim.Tracker
	trace  *bytes.Buffer

	// Cancellation/budget state (see cancel.go). ctx is the caller's
	// context (context.Background() from the legacy entry points), ck the
	// cooperative checkpoint shared with the road-network searches — nil
	// unless the query is cancellable or budgeted, which keeps the plain
	// query path bit-identical to the unchecked engine.
	ctx        context.Context
	ck         *roadnet.Checkpoint
	maxAnchors int
	truncated  atomic.Bool

	// panicked holds the first panic captured on a refinement worker
	// goroutine (see panic.go); the pool re-raises it on the calling
	// goroutine once it drains.
	panicked atomic.Pointer[PanicError]
}

// newQctx allocates a query context with fresh cold-cache trackers (the
// same per-query I/O semantics the engine previously obtained by resetting
// the shared stores).
func (e *Engine) newQctx(st *Stats) *qctx {
	q := &qctx{
		st:     st,
		road:   e.Road.Store.NewTracker(),
		social: e.Social.Store.NewTracker(),
	}
	if e.Opts.Trace != nil {
		q.trace = &bytes.Buffer{}
	}
	return q
}

// tracef buffers a formatted trace line when tracing is enabled.
func (q *qctx) tracef(format string, args ...interface{}) {
	if q.trace == nil {
		return
	}
	fmt.Fprintf(q.trace, format+"\n", args...)
}

// finish stamps the timing/I/O totals and flushes the trace buffer in one
// piece (so traces of concurrent queries do not interleave line by line).
func (e *Engine) finish(q *qctx, start time.Time, p Params) {
	q.st.CPUTime = time.Since(start)
	q.st.PageReads = q.road.Reads() + q.social.Reads()
	q.st.SettledWork = q.ck.Spent()
	q.st.PairsTotalLog2 = pairsTotalLog2(len(e.DS.Users)-1, p.Tau-1, len(e.DS.POIs))
	if q.trace != nil && e.Opts.Trace != nil {
		e.traceMu.Lock()
		e.Opts.Trace.Write(q.trace.Bytes())
		e.traceMu.Unlock()
	}
}

// Query answers a GP-SSN query for issuer uq under parameters p. Safe for
// concurrent use: any number of goroutines may query one Engine, each call
// gets its own isolated Stats and cold-cache I/O accounting.
func (e *Engine) Query(uq socialnet.UserID, p Params) (Result, Stats, error) {
	return e.QueryCtx(context.Background(), uq, p)
}

// QueryCtx is Query with cooperative cancellation: the traversal checks the
// context at anchor-candidate granularity, refinement per work item, and
// the road-network searches every few hundred settled vertices, so a
// cancel or deadline aborts promptly at any Parallelism. A cancelled query
// returns an error matching both ErrCancelled/ErrDeadlineExceeded and the
// context's own sentinel via errors.Is, with the partial Stats intact.
// A Params.Budget instead degrades gracefully (see Budget). With a
// background context and no budget the answer is bit-identical to Query's.
func (e *Engine) QueryCtx(ctx context.Context, uq socialnet.UserID, p Params) (Result, Stats, error) {
	var st Stats
	if err := p.Validate(e.Road.RMin, e.Road.RMax); err != nil {
		return Result{}, st, err
	}
	if uq < 0 || int(uq) >= len(e.DS.Users) {
		return Result{}, st, fmt.Errorf("core: query user %d out of range", uq)
	}
	if err := ContextError(ctx); err != nil {
		return Result{MaxDist: math.Inf(1)}, st, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	start := time.Now()
	q := e.newQctx(&st)
	q.arm(ctx, p.Budget)

	st.SNUsersTotal = len(e.DS.Users)
	st.RNPOIsTotal = len(e.DS.POIs)

	// A cheap feasibility probe around the issuer's nearest anchors seeds
	// the pruning threshold δ with the cost of a verified feasible
	// solution, so distance pruning is armed from the first index level.
	probe := e.probe(uq, p, q)
	q.tracef("probe: found=%v cost=%.4f", probe.res.Found, probe.res.MaxDist)
	trav := e.traverse(uq, p, 1, probe.res.MaxDist, q)
	q.tracef("traversal: %d candidate users, %d candidate anchors, delta=%.4f",
		len(trav.candUsers), len(trav.candAnchors), trav.delta)
	var res []Result
	if !q.cancelled() {
		res = e.refine(uq, p, 1, trav, probe, q)
		q.tracef("refined: pairs evaluated=%d", st.PairsEvaluated)
	}

	e.finish(q, start, p)
	if err := q.cancelErr(); err != nil {
		return Result{MaxDist: math.Inf(1)}, st, err
	}
	st.Truncated = q.wasTruncated()
	if len(res) == 0 {
		return Result{MaxDist: math.Inf(1)}, st, nil
	}
	return res[0], st, nil
}

// QueryTopK returns up to k GP-SSN answers with distinct anchor POIs, in
// increasing maximum-distance order — the top-k extension listed in
// DESIGN.md. k = 1 is exactly Query. Distance pruning adapts its threshold
// δ to the k-th best known upper bound so no top-k member is lost. Safe
// for concurrent use, like Query.
func (e *Engine) QueryTopK(uq socialnet.UserID, p Params, k int) ([]Result, Stats, error) {
	return e.QueryTopKCtx(context.Background(), uq, p, k)
}

// QueryTopKCtx is QueryTopK with cooperative cancellation and budgeting,
// under the same contract as QueryCtx.
func (e *Engine) QueryTopKCtx(ctx context.Context, uq socialnet.UserID, p Params, k int) ([]Result, Stats, error) {
	var st Stats
	if k < 1 {
		return nil, st, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	if err := p.Validate(e.Road.RMin, e.Road.RMax); err != nil {
		return nil, st, err
	}
	if uq < 0 || int(uq) >= len(e.DS.Users) {
		return nil, st, fmt.Errorf("core: query user %d out of range", uq)
	}
	if err := ContextError(ctx); err != nil {
		return nil, st, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	start := time.Now()
	q := e.newQctx(&st)
	q.arm(ctx, p.Budget)
	st.SNUsersTotal = len(e.DS.Users)
	st.RNPOIsTotal = len(e.DS.POIs)

	probe := e.probe(uq, p, q)
	delta0 := math.Inf(1)
	if k == 1 {
		delta0 = probe.res.MaxDist
	}
	trav := e.traverse(uq, p, k, delta0, q)
	var res []Result
	if !q.cancelled() {
		res = e.refine(uq, p, k, trav, probe, q)
	}

	e.finish(q, start, p)
	if err := q.cancelErr(); err != nil {
		return nil, st, err
	}
	st.Truncated = q.wasTruncated()
	return res, st, nil
}

// traversal is the intermediate state Algorithm 2 hands to refinement.
type traversal struct {
	candUsers   []socialnet.UserID
	candAnchors []model.POIID
	delta       float64
}

// traverse runs Algorithm 2's synchronized index traversal: I_S level by
// level with user pruning, I_R via a min-heap keyed by distance lower
// bounds, maintaining the pruning threshold δ.
func (e *Engine) traverse(uq socialnet.UserID, p Params, k int, initDelta float64, q *qctx) traversal {
	st := q.st
	uqUser := e.DS.User(uq)
	region := NewPruneRegion(uqUser.Interests, p.Gamma)
	uqRD := e.userRDOf(uq)
	// Hop-pivot pruning is sound only while u_q's own stored hop vector is
	// valid (u_q indexed and untouched by new edges).
	uqHopSafe := e.pivotPruningSafe(uq)
	var uqHops []int32
	if uqHopSafe {
		uqHops = e.Social.UserHops(uq)
	}
	h := e.Road.Pivots.NumPivots()

	tr := traversal{delta: math.Inf(1)}
	guardUBs := newKSmallest(k)
	if !e.Opts.DisableDistancePruning && !math.IsInf(initDelta, 1) {
		tr.delta = guardUBs.push(initDelta)
	}

	// The nodes on u_q's root-to-leaf path must never be pruned (u_q ∈ S
	// by definition); mark them once.
	uqPath := map[*index.SNode]bool{}
	markUQPath(e.Social.Root, uq, uqPath)
	// Nodes containing users whose hop bounds were invalidated by new
	// friendship edges must not be distance-pruned.
	hopUnsafePath := map[*index.SNode]bool{}
	for u := range e.dyn.touched {
		markUQPath(e.Social.Root, u, hopUnsafePath)
	}

	// S_cand: current frontier of I_S nodes, plus users already collected
	// from processed leaves. Delta users join up front so every δ-guard
	// evaluation covers them.
	sNodes := []*index.SNode{e.Social.Root}
	e.Social.AccessTracked(e.Social.Root, q.social)
	e.scanDeltaUsers(uq, p, region, &tr)

	// maxUbRD[k] = max over S_cand entries of ub dist_RN(·, rp_k); feeds
	// Eq. (16). Recomputed after every I_S level.
	maxUbRD := make([]float64, h)
	recomputeMaxUb := func() {
		for k := 0; k < h; k++ {
			maxUbRD[k] = uqRD[k] // u_q is always in S
		}
		for _, n := range sNodes {
			for k := 0; k < h; k++ {
				if n.UbRD[k] > maxUbRD[k] {
					maxUbRD[k] = n.UbRD[k]
				}
			}
		}
		for _, u := range tr.candUsers {
			rd := e.userRDOf(u)
			for k := 0; k < h; k++ {
				if rd[k] > maxUbRD[k] {
					maxUbRD[k] = rd[k]
				}
			}
		}
	}
	recomputeMaxUb()

	// guardMatch reports whether every surviving S_cand entry provably
	// θ-matches the ball ⊙(anchor, r) — the feasibility condition that
	// makes δ updates sound (the Eq. 18 lower bound over sub_K).
	guardMatch := func(sub TopicSet) bool {
		if MatchScoreSet(uqUser.Interests, sub) < p.Theta {
			return false
		}
		for _, n := range sNodes {
			if matchLbMBR(n.LbW, sub) < p.Theta {
				return false
			}
		}
		for _, u := range tr.candUsers {
			if MatchScoreSet(e.DS.Users[u].Interests, sub) < p.Theta {
				return false
			}
		}
		return true
	}

	// I_R heap seeded with the root (Algorithm 2 lines 2-3).
	heap := []heapEntry{{node: e.Road.Tree.Root(), key: 0}}
	e.Road.AccessTracked(e.Road.Tree.Root(), q.road)

	// processRNLevel pops every entry of the current heap, applies the
	// node/object pruning, and returns the next level's heap (Algorithm 2
	// lines 11-26).
	processRNLevel := func(cur []heapEntry) []heapEntry {
		sortHeap(cur)
		var next []heapEntry
		// Road pivot LOWER bounds are unsound once a road edge has been
		// appended (new edges only shorten distances, so stored rows can
		// overestimate); every lower-bound prune below gates on roadLB.
		// Upper-bound uses (the δ update) stay sound and stay on.
		roadLB := e.roadPivotSafe()
		for i, he := range cur {
			// Cancellation is polled at anchor-candidate granularity: once
			// per heap entry and per leaf POI below. A cancelled traversal
			// just stops expanding — the query errors out afterwards, so a
			// short candidate list is never observable as an answer.
			if q.cancelled() {
				return nil
			}
			if !e.Opts.DisableDistancePruning && roadLB && he.key > tr.delta {
				// Lines 13-14: everything remaining is prunable.
				for _, rest := range cur[i:] {
					cnt := e.Road.Meta(rest.node).POICount
					st.RNIndexPruned += cnt
					st.RNIndexPrunedDist += cnt
				}
				break
			}
			n := he.node
			if n.IsLeaf() {
				for _, ent := range n.Entries() {
					if q.cancelled() {
						return nil
					}
					id := model.POIID(ent.ID)
					// Both rules are evaluated on every leaf POI — the
					// object is pruned when either fires, and each rule's
					// power is counted independently, which is how
					// Fig. 7(c) reports them. Matching: Lemma 1 via the
					// hashed V_sup signature (a sound overestimate).
					// Distance: Lemma 5 via the pivot lower bound vs δ.
					matchPrune := matchUbVec(uqUser.Interests, e.Road.POISupVec(id)) < p.Theta
					distPrune := false
					if !e.Opts.DisableDistancePruning && roadLB {
						distPrune = roadnet.LowerBound(uqRD, e.Road.POIDist(id)) > tr.delta
					}
					if matchPrune {
						st.RNObjPrunedMatch++
					}
					if distPrune {
						st.RNObjPrunedDist++
					}
					if matchPrune || distPrune {
						st.RNObjPruned++
						continue
					}
					tr.candAnchors = append(tr.candAnchors, id)
					// δ update (line 20), guarded by the Eq. 18
					// feasibility lower bound over sub_K. For top-k, δ is
					// the k-th smallest feasible upper bound seen, so the
					// k best anchors all survive.
					if !e.Opts.DisableDistancePruning && guardMatch(e.Road.POISub(id, p.R)) {
						ub := math.Inf(1)
						pd := e.Road.POIDist(id)
						for kk := 0; kk < h; kk++ {
							if v := maxUbRD[kk] + pd[kk]; v < ub {
								ub = v
							}
						}
						tr.delta = guardUBs.push(ub + p.R)
					}
				}
				continue
			}
			for _, ent := range n.Entries() {
				child := ent.Child
				m := e.Road.Meta(child)
				if !e.Opts.DisableIndexPruning {
					// Lemma 6: matching score pruning for index nodes.
					if matchUbVec(uqUser.Interests, m.SupVec) < p.Theta {
						st.RNIndexPruned += m.POICount
						st.RNIndexPrunedMatch += m.POICount
						continue
					}
					if !e.Opts.DisableDistancePruning && roadLB {
						// Lemma 7 / Eq. 17: distance lower bound vs δ.
						lb := nodeDistLb(uqRD, m.LbDist, m.UbDist)
						if lb > tr.delta {
							st.RNIndexPruned += m.POICount
							st.RNIndexPrunedDist += m.POICount
							continue
						}
					}
				}
				e.Road.AccessTracked(child, q.road)
				next = append(next, heapEntry{node: child, key: nodeDistLb(uqRD, m.LbDist, m.UbDist)})
			}
		}
		return next
	}

	// Synchronized top-down sweep (Algorithm 2 lines 4-26).
	for level := e.Social.Height() - 1; level >= 0; level-- {
		if q.cancelled() {
			return tr
		}
		var nextNodes []*index.SNode
		for _, n := range sNodes {
			if n.IsLeaf() {
				// Object-level user pruning (Section 3.2).
				for _, u := range n.Users {
					if u == uq {
						continue // the issuer is handled separately
					}
					// Both rules are evaluated on every leaf user — the
					// user is pruned when either fires, and each rule's
					// power is counted independently, which is how
					// Fig. 7(b) reports them. Interest: Lemma 3 /
					// Corollary 1. Social distance: Lemma 4.
					interestPrune := interestPrunable(p, region, uqUser.Interests, e.DS.Users[u].Interests)
					distPrune := false
					if uqHopSafe && e.pivotPruningSafe(u) {
						lb, okHop := socialnet.HopLowerBound(e.Social.UserHops(u), uqHops)
						distPrune = !okHop || lb >= int32(p.Tau)
					}
					if interestPrune {
						st.SNObjPrunedInterest++
					}
					if distPrune {
						st.SNObjPrunedDist++
					}
					if interestPrune || distPrune {
						st.SNObjPruned++
						continue
					}
					tr.candUsers = append(tr.candUsers, u)
				}
				continue
			}
			for _, c := range n.Children {
				if !e.Opts.DisableIndexPruning && !uqPath[c] {
					// Lemma 8: interest score pruning for I_S nodes.
					if indexInterestPrunable(p, region, uqUser.Interests, c) {
						st.SNIndexPruned += c.UserCount
						st.SNIndexPrunedInterest += c.UserCount
						continue
					}
					// Lemma 9: social distance pruning for I_S nodes
					// (disabled for nodes holding hop-invalidated users).
					if uqHopSafe && !hopUnsafePath[c] {
						if lb, informative := e.Social.HopLowerBoundToNode(uqHops, c); informative && lb >= int32(p.Tau) {
							st.SNIndexPruned += c.UserCount
							st.SNIndexPrunedDist += c.UserCount
							continue
						}
					}
				}
				e.Social.AccessTracked(c, q.social)
				nextNodes = append(nextNodes, c)
			}
		}
		sNodes = nextNodes
		recomputeMaxUb()
		heap = processRNLevel(heap)
		q.tracef("level %d: S_cand nodes=%d users=%d, H_R entries=%d, delta=%.4f",
			level, len(sNodes), len(tr.candUsers), len(heap), tr.delta)
	}

	// Lines 27-28: finish any remaining I_R levels.
	for len(heap) > 0 && !q.cancelled() {
		heap = processRNLevel(heap)
	}
	// Main+delta: POIs appended after the index build become anchors.
	e.scanDeltaAnchors(&tr)
	return tr
}

// interestPrunable applies the user interest pruning for the configured
// metric: the paper's pruning region for the dot product, and a direct
// similarity threshold test otherwise.
func interestPrunable(p Params, region *PruneRegion, anchor, w []float64) bool {
	if p.Metric == MetricDotProduct {
		return region.Contains(w)
	}
	return Similarity(p.Metric, anchor, w) < p.Gamma
}

// indexInterestPrunable is the node-level form (Lemma 8).
func indexInterestPrunable(p Params, region *PruneRegion, anchor []float64, n *index.SNode) bool {
	if p.Metric == MetricDotProduct {
		return region.ContainsMBR(n.LbW, n.UbW)
	}
	return SimilarityUpperBound(p.Metric, anchor, n.LbW, n.UbW) < p.Gamma
}

// markUQPath marks the nodes on the root-to-leaf path of u_q. It returns
// whether u_q lives under n.
func markUQPath(n *index.SNode, uq socialnet.UserID, path map[*index.SNode]bool) bool {
	if n.IsLeaf() {
		for _, u := range n.Users {
			if u == uq {
				path[n] = true
				return true
			}
		}
		return false
	}
	for _, c := range n.Children {
		if markUQPath(c, uq, path) {
			path[n] = true
			return true
		}
	}
	return false
}

// matchUbVec is Eq. (15): the matching score upper bound through a hashed
// V_sup signature (collisions only raise the bound, keeping it sound).
func matchUbVec(interests []float64, sup interface{ TestKeyword(int) bool }) float64 {
	s := 0.0
	for f, p := range interests {
		if p != 0 && sup.TestKeyword(f) {
			s += p
		}
	}
	return s
}

// matchLbMBR lower-bounds min over users under a node of Match(u, sub):
// Σ_f lbW[f]·χ(f ∈ sub).
func matchLbMBR(lbW []float64, sub TopicSet) float64 {
	s := 0.0
	for f, p := range lbW {
		if p > 0 && sub.Has(f) {
			s += p
		}
	}
	return s
}

// nodeDistLb is Eq. (17): the pivot lower bound of dist_RN between the
// query user and any POI under a node with per-pivot bounds [lb, ub].
func nodeDistLb(uqRD, lb, ub []float64) float64 {
	best := 0.0
	for k := range uqRD {
		d := uqRD[k]
		var v float64
		switch {
		case d < lb[k]:
			v = lb[k] - d
		case d > ub[k]:
			v = d - ub[k]
		default:
			v = 0
		}
		if v > best {
			best = v
		}
	}
	return best
}

// kSmallest tracks the k smallest values pushed; its threshold (the k-th
// smallest, or +Inf until k values arrive) is the top-k pruning bound δ.
type kSmallest struct {
	k    int
	vals []float64 // sorted ascending, at most k
}

func newKSmallest(k int) *kSmallest { return &kSmallest{k: k} }

// push inserts v and returns the current threshold.
func (s *kSmallest) push(v float64) float64 {
	pos := len(s.vals)
	for pos > 0 && s.vals[pos-1] > v {
		pos--
	}
	s.vals = append(s.vals, 0)
	copy(s.vals[pos+1:], s.vals[pos:])
	s.vals[pos] = v
	if len(s.vals) > s.k {
		s.vals = s.vals[:s.k]
	}
	return s.threshold()
}

func (s *kSmallest) threshold() float64 {
	if len(s.vals) < s.k {
		return math.Inf(1)
	}
	return s.vals[s.k-1]
}

// heapEntry is an I_R traversal frontier entry: a node and its distance
// lower bound key (Algorithm 2's min-heap H_R).
type heapEntry struct {
	node *rtree.Node
	key  float64
}

// sortHeap orders heap entries by ascending key (the level-local
// equivalent of popping a min-heap until empty).
func sortHeap(h []heapEntry) {
	// Insertion sort: levels are small and nearly sorted.
	for i := 1; i < len(h); i++ {
		for j := i; j > 0 && h[j].key < h[j-1].key; j-- {
			h[j], h[j-1] = h[j-1], h[j]
		}
	}
}

// pairsTotalLog2 returns log2(C(m, k) · n), the size of the brute-force
// search space of user-POI group pairs.
func pairsTotalLog2(m, k, n int) float64 {
	if k < 0 || k > m {
		return math.Log2(float64(n))
	}
	lg := 0.0
	for i := 0; i < k; i++ {
		lg += math.Log2(float64(m-i)) - math.Log2(float64(i+1))
	}
	return lg + math.Log2(float64(n))
}

// Summary renders the per-query statistics as a compact human-readable
// report (the gpssn-query CLI and debugging sessions print it).
func (s Stats) Summary() string {
	snTotal := s.SNIndexPruned + s.SNObjPruned
	rnTotal := s.RNIndexPruned + s.RNObjPruned
	return fmt.Sprintf(
		"cpu=%v io=%d | users: %d pruned of %d (index %d, object %d) -> %d candidates | "+
			"POIs: %d pruned of %d (index %d, object %d) -> %d anchors | pairs evaluated %d",
		s.CPUTime, s.PageReads,
		snTotal, s.SNUsersTotal, s.SNIndexPruned, s.SNObjPruned, s.CandUsers,
		rnTotal, s.RNPOIsTotal, s.RNIndexPruned, s.RNObjPruned, s.CandAnchors,
		s.PairsEvaluated)
}
