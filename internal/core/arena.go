package core

import (
	"sync"
	"sync/atomic"

	"gpssn/internal/roadnet"
	"gpssn/internal/socialnet"
)

// refineArena is the per-worker grow-only scratch space of the refinement
// hot path. One arena belongs to exactly one goroutine at a time (a probe
// or a refinement worker); everything in it is recycled across the anchors
// that worker processes, so after the first few anchors the steady state
// allocates nothing per anchor and nothing per user evaluation:
//
//   - atts/out back makeMOf's ball attachment list and distance output
//     (previously one make per anchor each),
//   - lbl is the source attachment-label scratch the label kernel merges
//     from (previously a sync.Pool Get/Put per user evaluation),
//   - kws is the ball keyword set (previously one bitset per anchor),
//   - comps/users/prefold back processAnchor's companion bookkeeping.
//
// Arenas are engine-owned (arenaPool) and recycled across queries, so the
// steady-state per-query cost is a pool pop and push. Opts.DisableRefineArena
// turns all of this off — callers then allocate exactly as before — which is
// the A/B seam the equality gates and the benchmarks use; answers are
// bit-identical either way because the arena only changes where scratch
// memory lives, never what is computed.
type refineArena struct {
	atts    []roadnet.Attach
	out     []float64
	lbl     roadnet.HubLabel
	kws     TopicSet
	comps   []anchorComp
	users   []socialnet.UserID
	prefold []socialnet.UserID

	owner    *arenaPool
	retained int64 // bytes currently held by the slices above
}

// anchorComp is one eligible companion for an anchor: the user and their
// evaluated group cost M(u). (Shared by processAnchor and the arena.)
type anchorComp struct {
	u socialnet.UserID
	m float64
}

// account records a capacity change of delta bytes against the pool's
// telemetry gauge.
func (a *refineArena) account(delta int64) {
	a.retained += delta
	a.owner.bytes.Add(delta)
}

// attachBuf returns a zeroed length-n attachment buffer, growing the
// backing array only when n exceeds every previous request.
func (a *refineArena) attachBuf(n int) []roadnet.Attach {
	if cap(a.atts) < n {
		a.account(int64(n-cap(a.atts)) * int64(attachSize))
		a.atts = make([]roadnet.Attach, n)
	}
	return a.atts[:n]
}

// floatBuf returns a length-n float64 buffer under the same contract.
func (a *refineArena) floatBuf(n int) []float64 {
	if cap(a.out) < n {
		a.account(int64(n-cap(a.out)) * 8)
		a.out = make([]float64, n)
	}
	return a.out[:n]
}

// label returns the reusable attachment-label scratch, emptied. The label
// is only valid until the next label() call on the same arena, which is
// exactly the lifetime the evaluation loop needs (one user at a time).
func (a *refineArena) label() *roadnet.HubLabel {
	a.lbl.Reset()
	return &a.lbl
}

// labelGrew re-measures the label scratch after a merge wrote into it
// (SeedLabel appends, so capacity can only grow).
func (a *refineArena) labelGrew(before int) {
	if d := cap(a.lbl.Hubs) - before; d > 0 {
		a.account(int64(d) * 12)
	}
}

// keywords returns the reusable ball keyword set, cleared, for a
// vocabulary of d topics.
func (a *refineArena) keywords(d int) TopicSet {
	if a.kws.Vocabulary() != d {
		a.account(int64((d+63)/64*8) - int64((a.kws.Vocabulary()+63)/64*8))
		a.kws = NewTopicSet(d)
		return a.kws
	}
	a.kws.Clear()
	return a.kws
}

// compsBuf returns the empty companion scratch slice; append to it freely,
// the grown capacity is kept for the next anchor.
func (a *refineArena) compsBuf() []anchorComp {
	return a.comps[:0]
}

// keepComps stores the (possibly reallocated) companion slice back so its
// capacity survives into the next anchor.
func (a *refineArena) keepComps(s []anchorComp) {
	if cap(s) > cap(a.comps) {
		a.account(int64(cap(s)-cap(a.comps)) * int64(anchorCompSize))
	}
	a.comps = s
}

// userBuf returns a length-n user-ID buffer under the attachBuf contract.
func (a *refineArena) userBuf(n int) []socialnet.UserID {
	if cap(a.users) < n {
		a.account(int64(n-cap(a.users)) * int64(userIDSize))
		a.users = make([]socialnet.UserID, n)
	}
	return a.users[:n]
}

// prefoldBuf returns the empty prefold scratch slice (see keepPrefold).
func (a *refineArena) prefoldBuf() []socialnet.UserID {
	return a.prefold[:0]
}

// keepPrefold is keepComps for the prefold user list.
func (a *refineArena) keepPrefold(s []socialnet.UserID) {
	if cap(s) > cap(a.prefold) {
		a.account(int64(cap(s)-cap(a.prefold)) * int64(userIDSize))
	}
	a.prefold = s
}

// Element sizes for the byte gauge. Attach is (EdgeID int32, T float64)
// padded to 16; UserID is an int32; anchorComp is (int32 pad + float64).
const (
	attachSize     = 16
	userIDSize     = 4
	anchorCompSize = 16
)

// arenaPool recycles refineArenas across queries. A bounded free list
// rather than a sync.Pool: arenas hold multi-kilobyte grow-only buffers
// whose total must show up in the memory telemetry, and a sync.Pool's
// GC-driven emptying would silently decouple the gauge from reality.
// Dropped arenas (beyond maxFree) subtract their bytes before going to
// the garbage collector, so bytes always equals the live arena total.
type arenaPool struct {
	mu    sync.Mutex
	free  []*refineArena
	bytes atomic.Int64 // total retained bytes across all live arenas
}

// arenaMaxFree bounds the free list: enough for a full worker fan-out of
// one query plus a concurrent probe, small enough that a transient burst
// of wide queries does not pin its high-water scratch forever.
const arenaMaxFree = 32

// acquire returns a recycled or fresh arena; nil when the arena layer is
// disabled (the caller then allocates per anchor exactly as before).
func (e *Engine) acquireArena() *refineArena {
	if e.Opts.DisableRefineArena {
		return nil
	}
	p := &e.arenas
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		a := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return a
	}
	p.mu.Unlock()
	return &refineArena{owner: p}
}

// releaseArena returns an arena to the free list. nil-safe.
func (e *Engine) releaseArena(a *refineArena) {
	if a == nil {
		return
	}
	p := &e.arenas
	p.mu.Lock()
	if len(p.free) < arenaMaxFree {
		p.free = append(p.free, a)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	p.bytes.Add(-a.retained)
}

// ArenaBytes reports the total bytes retained by the engine's refinement
// arenas (free or checked out), for the memory telemetry.
func (e *Engine) ArenaBytes() int64 {
	return e.arenas.bytes.Load()
}

// MemoryStats is a point-in-time snapshot of where the engine's off-heap-
// invisible memory lives: the structures a heap profile shows only as
// anonymous slices. Surfaced through the facade and /statsz.
type MemoryStats struct {
	// OracleBytes is the resident size of the attached distance oracle's
	// preprocessed structures (CH adjacency, hub-label store). 0 when no
	// oracle is attached or it does not report (plain Dijkstra).
	OracleBytes int64
	// ArenaBytes is the total retained by the refinement arenas.
	ArenaBytes int64
	// MemoBytes is the shared-work sweep memo's byte occupancy (0 when
	// the memo is disabled). The ball memo is entry-capped, not
	// byte-metered, so it is not included here.
	MemoBytes int64
}

// MemoryStats snapshots the engine's memory accounting. Safe for
// concurrent use with queries.
func (e *Engine) MemoryStats() MemoryStats {
	ms := MemoryStats{ArenaBytes: e.ArenaBytes()}
	if o, ok := e.DS.Road.Oracle().(interface{ MemoryBytes() int64 }); ok {
		ms.OracleBytes = o.MemoryBytes()
	}
	if sw := e.shared; sw != nil {
		sw.mu.Lock()
		ms.MemoBytes = sw.userBytes
		sw.mu.Unlock()
	}
	return ms
}
