package core

import (
	"container/list"
	"math"
	"sync"
	"sync/atomic"

	"gpssn/internal/geo"
	"gpssn/internal/model"
	"gpssn/internal/roadnet"
	"gpssn/internal/socialnet"
)

// The shared-work layer memoizes the two expensive building blocks that
// concurrent queries recompute over and over under load: anchor balls
// (ballAround + the ball's prepared target labels) and per-user sweep
// state (one-to-all arrays under plain oracles, attachment hub labels
// under a label oracle). PR 6's singleflight only coalesces bit-identical
// requests; this layer shares work between *different* queries that touch
// the same anchor or user.
//
// Ownership and correctness rules (docs/CONCURRENCY.md §6):
//
//   - The memo lives on the Engine, so Compact (which builds a fresh
//     Engine) starts from an empty memo for the rebuilt dataset.
//   - Entries are built under a fresh metering Checkpoint that never
//     trips, so a memo entry is always canonical — a budget- or
//     cancel-tripped query can never poison the memo with a degenerate
//     ball or an all-+Inf array. The build cost is recorded and charged
//     to every query that consumes the entry (Checkpoint.Spend), so
//     budget exhaustion still reflects logical work consumed.
//   - Ball slices are handed out copy-on-read: refinement sorts result R
//     sets in place, so sharing the backing array across queries would
//     race. Target-label sets and one-to-all arrays are read-only by
//     contract and are shared directly.
//   - Builds are singleflighted: the first query to miss becomes the
//     leader and builds outside the memo lock; waiters block on the
//     entry's done channel. A leader that panics unpublishes the entry
//     and closes the channel, so waiters fall back to a solo compute and
//     the panic surfaces through the leader's own query panic boundary.
//   - Invalidation is per update kind, mirroring the answer cache's
//     discipline but more selective: AddPOI evicts exactly the balls the
//     new POI could join (Euclidean prefilter — sound because road
//     distance never undercuts Euclidean distance, the same argument
//     EuclidBall and deltaBallMembers rely on) and bumps the road
//     version. AddUser/AddFriendship don't touch the memo at all: balls
//     are POI-only, and a user's sweep state depends only on the road
//     topology and their home attachment, neither of which those updates
//     can change. AddRoadEdge is the other extreme — a full reset
//     (noteRoadChange), because every memoized array and ball bakes the
//     old topology in. AddRoadVertex sits in the middle: an isolated
//     vertex changes no distance, so it touches nothing.

// Capacity bounds for the shared memo. Balls are LRU-evicted; user sweep
// entries are reject-on-full like the per-query vertexDistCache (the
// per-query path still works when the memo is full, so occupancy never
// affects answers). Array bytes are checked up front (the size is known
// before the sweep runs); labels are tiny and only bounded by the entry
// cap.
const (
	sharedBallMaxEntries  = 4096
	sharedUserMaxEntries  = 16384
	sharedUserMaxBytes    = 256 << 20
	sharedLabelBytesGuess = 512 // accounting estimate before a label is built
)

type ballKey struct {
	anchor model.POIID
	r      float64
}

// ballEntry is one memoized anchor ball. done is closed when the build
// finishes (ok true) or is abandoned (ok false); every other field is
// written once by the leader before the close and read-only afterwards.
type ballEntry struct {
	done chan struct{}
	elem *list.Element // LRU position; guarded by sharedWork.mu

	ball []model.POIID
	tl   *roadnet.TargetLabels // nil under non-label oracles
	loc  geo.Point             // anchor location, for selective eviction
	work int64                 // metered build cost, charged on every hit
	ok   bool
}

// userEntry is one memoized per-user sweep: the exact one-to-all array
// (plain oracles) or the attachment hub label (label oracles). Same
// write-once-then-close discipline as ballEntry.
type userEntry struct {
	done  chan struct{}
	array []float64
	label *roadnet.HubLabel // owned by the memo, never pooled
	work  int64
	ok    bool
}

type sharedWork struct {
	mu      sync.Mutex
	version uint64 // road-data version; bumped by every AddPOI

	balls   map[ballKey]*ballEntry
	ballLRU *list.List // front = most recently used; values are ballKey

	users     map[socialnet.UserID]*userEntry
	userBytes int64

	ballHits, ballMisses, ballEvict   atomic.Int64
	sweepHits, sweepMisses, sweepFull atomic.Int64
}

func newSharedWork() *sharedWork {
	return &sharedWork{
		balls:   map[ballKey]*ballEntry{},
		ballLRU: list.New(),
		users:   map[socialnet.UserID]*userEntry{},
	}
}

// SharedWorkStats is a point-in-time snapshot of the memo counters,
// surfaced through the facade and /statsz.
type SharedWorkStats struct {
	Enabled     bool
	RoadVersion uint64

	BallHits      int64
	BallMisses    int64
	BallEvictions int64
	BallEntries   int

	SweepHits     int64
	SweepMisses   int64
	SweepRejected int64
	SweepEntries  int
	SweepBytes    int64
}

// SharedWorkStats snapshots the shared-work memo counters. Zero-valued
// (Enabled false) when the layer is disabled.
func (e *Engine) SharedWorkStats() SharedWorkStats {
	sw := e.shared
	if sw == nil {
		return SharedWorkStats{}
	}
	st := SharedWorkStats{
		Enabled:       true,
		BallHits:      sw.ballHits.Load(),
		BallMisses:    sw.ballMisses.Load(),
		BallEvictions: sw.ballEvict.Load(),
		SweepHits:     sw.sweepHits.Load(),
		SweepMisses:   sw.sweepMisses.Load(),
		SweepRejected: sw.sweepFull.Load(),
	}
	sw.mu.Lock()
	st.RoadVersion = sw.version
	st.BallEntries = len(sw.balls)
	st.SweepEntries = len(sw.users)
	st.SweepBytes = sw.userBytes
	sw.mu.Unlock()
	return st
}

// anchorBall returns the ball around anchor (copy-on-read: the caller owns
// the returned slice) plus the ball's prepared target labels when a label
// oracle is attached (shared, read-only). With the memo disabled it is a
// plain ballAround and the labels are nil — callers prepare their own,
// preserving the pre-memo behavior exactly.
//
// Checkpoint discipline matches solo execution: a stopped checkpoint
// yields the degenerate {anchor} ball (solo ballAround degenerates the
// same way when every checked distance comes back +Inf), and a memo hit
// charges the entry's metered build cost, tripping the budget at the same
// logical work a solo build would have consumed.
func (e *Engine) anchorBall(anchor model.POIID, radius float64, ck *roadnet.Checkpoint) ([]model.POIID, *roadnet.TargetLabels) {
	sw := e.shared
	if sw == nil {
		return e.ballAround(anchor, radius, ck), nil
	}
	if ck.Stopped() {
		return []model.POIID{anchor}, nil
	}
	key := ballKey{anchor: anchor, r: radius}

	sw.mu.Lock()
	ent, ok := sw.balls[key]
	if ok {
		sw.ballLRU.MoveToFront(ent.elem)
		sw.mu.Unlock()
		<-ent.done
		if ent.ok {
			sw.ballHits.Add(1)
			if ck.Spend(int(ent.work)) {
				return []model.POIID{anchor}, nil
			}
			return append([]model.POIID(nil), ent.ball...), ent.tl
		}
		// The leader abandoned the build (panic unwound through it);
		// compute solo rather than racing to rebuild.
		return e.ballAround(anchor, radius, ck), nil
	}
	ent = &ballEntry{done: make(chan struct{}), loc: e.DS.POIs[anchor].Loc}
	ent.elem = sw.ballLRU.PushFront(key)
	sw.balls[key] = ent
	for len(sw.balls) > sharedBallMaxEntries {
		oldest := sw.ballLRU.Back()
		sw.removeBallLocked(oldest.Value.(ballKey))
		sw.ballEvict.Add(1)
	}
	sw.mu.Unlock()
	sw.ballMisses.Add(1)

	completed := false
	defer func() {
		if !completed {
			sw.mu.Lock()
			if sw.balls[key] == ent {
				sw.removeBallLocked(key)
			}
			sw.mu.Unlock()
			close(ent.done)
		}
	}()
	mck := roadnet.NewCheckpoint(nil, nil, 0) // metering only: never trips
	ball := e.ballAround(anchor, radius, mck)
	ent.ball = ball
	ent.tl = e.prepareBallLabels(ball)
	ent.work = mck.Spent()
	ent.ok = true
	completed = true
	close(ent.done)

	if ck.Spend(int(ent.work)) {
		return []model.POIID{anchor}, nil
	}
	return append([]model.POIID(nil), ball...), ent.tl
}

// prepareBallLabels flattens the ball's target labels once; nil under
// non-label oracles (same seam makeMOf uses to pick its strategy).
func (e *Engine) prepareBallLabels(ball []model.POIID) *roadnet.TargetLabels {
	atts := make([]roadnet.Attach, len(ball))
	for i, o := range ball {
		atts[i] = e.DS.POIs[o].At
	}
	return e.DS.Road.PrepareTargetLabels(atts)
}

// removeBallLocked unlinks a ball entry; callers hold sw.mu. In-flight
// entries may be evicted too — the leader's completion check compares
// pointers, and waiters already holding the entry still see its result.
func (sw *sharedWork) removeBallLocked(key ballKey) {
	if ent, ok := sw.balls[key]; ok {
		sw.ballLRU.Remove(ent.elem)
		delete(sw.balls, key)
	}
}

// noteAddPOI is the AddPOI invalidation hook, called with the engine lock
// held exclusively (no query is in flight). It evicts exactly the balls
// the new POI could have joined: road distance never undercuts Euclidean
// distance, so a POI Euclidean-farther than r from an anchor can never be
// inside that anchor's radius-r ball. Every AddPOI bumps the road-data
// version so tests (and operators) can observe that the memo noticed.
func (sw *sharedWork) noteAddPOI(loc geo.Point) {
	if sw == nil {
		return
	}
	sw.mu.Lock()
	sw.version++
	for key, ent := range sw.balls {
		if ent.loc.Dist(loc) <= key.r {
			sw.removeBallLocked(key)
			sw.ballEvict.Add(1)
		}
	}
	sw.mu.Unlock()
}

// noteRoadChange is the road-topology invalidation hook (AddRoadEdge),
// called with the engine lock held exclusively. Unlike noteAddPOI's
// selective eviction this is a full reset: memoized one-to-all arrays
// are sized to the vertex count at build time and memoized balls bake in
// old reachability, so after a topology change stale entries would be
// *wrong* — a new-edge attachment indexing past the end of a stale
// array, a ball missing a now-reachable POI — not merely conservative.
// In-flight leaders are unharmed: eviction only unlinks map entries, and
// waiters already holding an entry pointer still see a result computed
// for the pre-change topology their query no longer uses (they were
// serialized before this update by the facade's write lock).
func (sw *sharedWork) noteRoadChange() {
	if sw == nil {
		return
	}
	sw.mu.Lock()
	sw.version++
	for key := range sw.balls {
		sw.removeBallLocked(key)
		sw.ballEvict.Add(1)
	}
	sw.users = map[socialnet.UserID]*userEntry{}
	sw.userBytes = 0
	sw.mu.Unlock()
}

// userSweep returns u's memoized sweep entry, singleflight-building it
// with build on a miss. build runs outside the memo lock and must fill
// the entry and return true; returning false (or panicking) unpublishes
// the entry. A nil return means the memo is at capacity — the caller runs
// the per-query path, exactly as if the memo were disabled.
func (sw *sharedWork) userSweep(u socialnet.UserID, arrayBytes int64, build func(*userEntry) bool) *userEntry {
	sw.mu.Lock()
	ent, ok := sw.users[u]
	if ok {
		sw.mu.Unlock()
		<-ent.done
		if !ent.ok {
			return nil
		}
		sw.sweepHits.Add(1)
		return ent
	}
	nb := arrayBytes
	if nb == 0 {
		nb = sharedLabelBytesGuess
	}
	if len(sw.users) >= sharedUserMaxEntries || sw.userBytes+nb > sharedUserMaxBytes {
		sw.mu.Unlock()
		sw.sweepFull.Add(1)
		return nil
	}
	ent = &userEntry{done: make(chan struct{})}
	sw.users[u] = ent
	sw.userBytes += nb
	sw.mu.Unlock()
	sw.sweepMisses.Add(1)

	completed := false
	defer func() {
		if !completed {
			sw.mu.Lock()
			if sw.users[u] == ent {
				delete(sw.users, u)
				sw.userBytes -= nb
			}
			sw.mu.Unlock()
			close(ent.done)
		}
	}()
	if !build(ent) {
		return nil
	}
	ent.ok = true
	completed = true
	close(ent.done)
	return ent
}

// sharedUserArray returns u's exact one-to-all array through the memo,
// charging the metered sweep cost to ck. ok false means the caller must
// compute per-query (memo disabled, full, or abandoned build). A true
// return with a tripped ck hands back an all-+Inf array, matching the
// solo all-or-nothing abort discipline.
func (e *Engine) sharedUserArray(u socialnet.UserID, ck *roadnet.Checkpoint) ([]float64, bool) {
	sw := e.shared
	if sw == nil {
		return nil, false
	}
	nv := e.DS.Road.NumVertices()
	ent := sw.userSweep(u, int64(8*nv), func(ent *userEntry) bool {
		mck := roadnet.NewCheckpoint(nil, nil, 0)
		ent.array = e.userVertexDist(u, mck)
		ent.work = mck.Spent()
		return true
	})
	if ent == nil {
		return nil, false
	}
	if ck.Spend(int(ent.work)) {
		return allInf(nv), true
	}
	return ent.array, true
}

// sharedUserLabel returns u's attachment hub label through the memo. The
// label is owned by the memo (never returned to the pool). ok false means
// the caller must run the per-query path.
func (e *Engine) sharedUserLabel(u socialnet.UserID) (*roadnet.HubLabel, bool) {
	sw := e.shared
	if sw == nil {
		return nil, false
	}
	ent := sw.userSweep(u, 0, func(ent *userEntry) bool {
		l := new(roadnet.HubLabel)
		e.DS.Road.AttachLabel(e.DS.Users[u].At, l)
		ent.label = l
		return true
	})
	if ent == nil || ent.label == nil {
		return nil, false
	}
	return ent.label, true
}

func allInf(n int) []float64 {
	dv := make([]float64, n)
	for i := range dv {
		dv[i] = math.Inf(1)
	}
	return dv
}
