package core

import (
	"math"
	"testing"

	"gpssn/internal/model"
	"gpssn/internal/roadnet"
	"gpssn/internal/roadnet/hl"
	"gpssn/internal/socialnet"
)

// TestVertexDistCacheCaps is the regression test for the cache bounds: the
// entry cap and the byte accounting must hold under any put sequence, puts
// beyond either cap must be rejected (and counted), and racing writers must
// resolve first-write-wins.
func TestVertexDistCacheCaps(t *testing.T) {
	c := newVertexDistCacheWith(3, 1<<20)
	if !c.putArray(1, make([]float64, 10)) {
		t.Fatal("first put rejected below cap")
	}
	if c.putArray(1, make([]float64, 10)) {
		t.Fatal("duplicate put accepted (must be first-write-wins)")
	}
	c.putArray(2, make([]float64, 10))
	lbl := &roadnet.HubLabel{Hubs: []int32{0, 5}, Dist: []float64{0, 1}}
	if !c.putLabel(3, lbl) {
		t.Fatal("label put rejected below cap")
	}
	if c.putArray(4, make([]float64, 10)) {
		t.Fatal("put accepted beyond the entry cap")
	}
	if c.putLabel(5, lbl) {
		t.Fatal("label put accepted beyond the entry cap")
	}
	if got := c.entries(); got != 3 {
		t.Fatalf("entries = %d, want 3", got)
	}
	if got := c.sizeBytes(); got != 8*10+8*10+12*2 {
		t.Fatalf("sizeBytes = %d, want %d", got, 8*10+8*10+12*2)
	}
	if c.rejected != 2 {
		t.Fatalf("rejected = %d, want 2", c.rejected)
	}

	// Byte cap: a 100-byte budget fits one 80-byte array, then rejects a
	// second while still admitting a 12-byte label.
	c2 := newVertexDistCacheWith(100, 100)
	if !c2.putArray(1, make([]float64, 10)) {
		t.Fatal("80-byte array rejected under 100-byte cap")
	}
	if c2.putArray(2, make([]float64, 10)) {
		t.Fatal("put accepted beyond the byte cap")
	}
	if !c2.putLabel(3, &roadnet.HubLabel{Hubs: []int32{1}, Dist: []float64{2}}) {
		t.Fatal("12-byte label rejected with 20 bytes of headroom")
	}
	if got := c2.sizeBytes(); got > 100 {
		t.Fatalf("sizeBytes = %d exceeds the 100-byte cap", got)
	}
}

// TestMOfHonorsCacheCaps hammers the refinement evaluator with every user
// against a cache far smaller than the user count: the cap must hold
// throughout, rejected entries must be recomputed with identical values,
// and the same holds on the hub-label path.
func TestMOfHonorsCacheCaps(t *testing.T) {
	ds := smallDataset(t, 4)
	e := buildEngine(t, ds, Options{})
	ball := make([]model.POIID, 0, 10)
	for o := 0; o < 10; o++ {
		ball = append(ball, model.POIID(o))
	}

	// Ground truth from uncached full searches (no oracle attached yet).
	want := make([]float64, len(ds.Users))
	for u := range ds.Users {
		want[u] = mFromVertexDist(e, socialnet.UserID(u), ball, e.userVertexDist(socialnet.UserID(u), nil))
	}

	const cap = 8
	cache := newVertexDistCacheWith(cap, 1<<26)
	mOf := e.makeMOf(cache, ball, nil, nil, nil, nil)
	for u := range ds.Users {
		if got := mOf(socialnet.UserID(u)); math.Abs(got-want[u]) > 1e-9 {
			t.Fatalf("array mode: mOf(%d) = %v, want %v", u, got, want[u])
		}
		if got := cache.entries(); got > cap {
			t.Fatalf("array mode: cache grew to %d entries (cap %d)", got, cap)
		}
	}
	if cache.rejected == 0 {
		t.Fatalf("array mode: expected rejected puts with %d users and cap %d", len(ds.Users), cap)
	}

	// Label mode: same values (up to float association order), same caps,
	// and byte usage reflecting label-sized entries rather than O(V) arrays.
	ds.Road.SetDistanceOracle(hl.Build(ds.Road))
	lcache := newVertexDistCacheWith(cap, 1<<26)
	mOfL := e.makeMOf(lcache, ball, nil, nil, nil, nil)
	for u := range ds.Users {
		got := mOfL(socialnet.UserID(u))
		if math.Abs(got-want[u]) > 1e-9*math.Max(1, want[u]) {
			t.Fatalf("label mode: mOf(%d) = %v, want %v", u, got, want[u])
		}
		if n := lcache.entries(); n > cap {
			t.Fatalf("label mode: cache grew to %d entries (cap %d)", n, cap)
		}
	}
	if lcache.rejected == 0 {
		t.Fatal("label mode: expected rejected puts")
	}
	perEntry := lcache.sizeBytes() / int64(lcache.entries())
	if arrayBytes := int64(8 * ds.Road.NumVertices()); perEntry >= arrayBytes {
		t.Fatalf("label entries average %d bytes, not smaller than an O(V) array (%d)", perEntry, arrayBytes)
	}
	ds.Road.SetDistanceOracle(nil)
}
