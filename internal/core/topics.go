// Package core implements the paper's primary contribution: the GP-SSN
// query semantics (Definition 5), the pruning rules of Section 3, the
// index-level pruning of Section 4.2, the query answering algorithm of
// Section 5 (Algorithm 2), and the Baseline competitor of Section 6.
package core

import "gpssn/internal/topics"

// TopicSet is an exact bitset over the topic vocabulary; see package
// topics. The alias keeps the paper's terminology (keyword sets sup_K,
// sub_K) available from the core package.
type TopicSet = topics.Set

// NewTopicSet returns an empty set over a vocabulary of d topics.
func NewTopicSet(d int) TopicSet { return topics.NewSet(d) }

// TopicSetOf returns the set containing the given topics.
func TopicSetOf(d int, ts ...int) TopicSet { return topics.SetOf(d, ts...) }
