package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"gpssn/internal/gen"
	"gpssn/internal/index"
	"gpssn/internal/model"
	"gpssn/internal/pivot"
	"gpssn/internal/socialnet"
)

// smallDataset generates a dataset small enough for the brute-force oracle.
func smallDataset(t testing.TB, seed int64) *model.Dataset {
	t.Helper()
	ds, err := gen.Synthetic(gen.Config{
		Name: "engine-test", Seed: seed,
		RoadVertices: 120, SocialUsers: 60, POIs: 40, Topics: 6,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return ds
}

func buildEngine(t testing.TB, ds *model.Dataset, opts Options) *Engine {
	t.Helper()
	rp := pivot.RandomRoad(ds.Road, 4, 11)
	road, err := index.BuildRoad(ds, index.RoadConfig{Pivots: rp, RMin: 0.5, RMax: 4})
	if err != nil {
		t.Fatalf("BuildRoad: %v", err)
	}
	sp := pivot.RandomSocial(ds.Social, 3, 12)
	social, err := index.BuildSocial(ds, index.SocialConfig{
		RoadPivots: road.Pivots, SocialPivots: sp, LeafSize: 16, Fanout: 4,
	})
	if err != nil {
		t.Fatalf("BuildSocial: %v", err)
	}
	return NewEngine(ds, road, social, opts)
}

// checkFeasible verifies the six predicates of Definition 5 on a result.
func checkFeasible(t *testing.T, ds *model.Dataset, uq socialnet.UserID, p Params, res Result) {
	t.Helper()
	if !res.Found {
		t.Fatal("result not found")
	}
	if len(res.S) != p.Tau {
		t.Fatalf("|S| = %d, want tau = %d", len(res.S), p.Tau)
	}
	hasUq := false
	for _, u := range res.S {
		if u == uq {
			hasUq = true
		}
	}
	if !hasUq {
		t.Fatal("S must contain the query issuer")
	}
	if !ds.Social.IsConnectedSet(res.S) {
		t.Fatalf("S = %v is not connected", res.S)
	}
	for i, u := range res.S {
		for _, v := range res.S[i+1:] {
			if s := Similarity(p.Metric, ds.Users[u].Interests, ds.Users[v].Interests); s < p.Gamma-1e-12 {
				t.Fatalf("pair (%d,%d) similarity %v < gamma %v", u, v, s, p.Gamma)
			}
		}
	}
	// Pairwise POI distance <= 2r.
	for i, a := range res.R {
		for _, b := range res.R[i+1:] {
			d := ds.Road.DistAttach(ds.POIs[a].At, ds.POIs[b].At)
			if d > 2*p.R+1e-9 {
				t.Fatalf("POIs %d,%d are %v apart > 2r=%v", a, b, d, 2*p.R)
			}
		}
	}
	// Matching threshold for every user.
	kws := NewTopicSet(ds.NumTopics)
	for _, o := range res.R {
		for _, k := range ds.POIs[o].Keywords {
			kws.Add(k)
		}
	}
	for _, u := range res.S {
		if m := MatchScoreSet(ds.Users[u].Interests, kws); m < p.Theta-1e-12 {
			t.Fatalf("user %d match %v < theta %v", u, m, p.Theta)
		}
	}
	// Reported MaxDist is the true maximum distance.
	maxd := 0.0
	for _, u := range res.S {
		for _, o := range res.R {
			if d := ds.Road.DistAttach(ds.Users[u].At, ds.POIs[o].At); d > maxd {
				maxd = d
			}
		}
	}
	if math.Abs(maxd-res.MaxDist) > 1e-6 {
		t.Fatalf("reported MaxDist %v != recomputed %v", res.MaxDist, maxd)
	}
}

func TestEngineMatchesBaselineOracle(t *testing.T) {
	params := []Params{
		{Gamma: 0.2, Tau: 2, Theta: 0.3, R: 2, Metric: MetricDotProduct},
		{Gamma: 0.3, Tau: 3, Theta: 0.5, R: 2, Metric: MetricDotProduct},
		{Gamma: 0.1, Tau: 3, Theta: 0.2, R: 1, Metric: MetricDotProduct},
		{Gamma: 0.4, Tau: 4, Theta: 0.4, R: 3, Metric: MetricDotProduct},
		{Gamma: 0.0, Tau: 2, Theta: 0.0, R: 0.5, Metric: MetricDotProduct},
	}
	for seed := int64(1); seed <= 3; seed++ {
		ds := smallDataset(t, seed)
		e := buildEngine(t, ds, Options{})
		oracle := &Baseline{DS: ds}
		for pi, p := range params {
			for _, uq := range []socialnet.UserID{0, 7, 33} {
				got, _, err := e.Query(uq, p)
				if err != nil {
					t.Fatalf("seed %d params %d uq %d: %v", seed, pi, uq, err)
				}
				want, _ := oracle.Query(uq, p)
				if got.Found != want.Found {
					t.Fatalf("seed %d params %d uq %d: found=%v oracle=%v",
						seed, pi, uq, got.Found, want.Found)
				}
				if !got.Found {
					continue
				}
				if math.Abs(got.MaxDist-want.MaxDist) > 1e-6 {
					t.Fatalf("seed %d params %d uq %d: cost %v != oracle %v (S=%v R=%v vs S=%v R=%v)",
						seed, pi, uq, got.MaxDist, want.MaxDist, got.S, got.R, want.S, want.R)
				}
				checkFeasible(t, ds, uq, p, got)
			}
		}
	}
}

func TestEngineAblationsStayExact(t *testing.T) {
	ds := smallDataset(t, 9)
	p := Params{Gamma: 0.25, Tau: 3, Theta: 0.4, R: 2, Metric: MetricDotProduct}
	base := buildEngine(t, ds, Options{})
	variants := map[string]Options{
		"no-index-pruning":    {DisableIndexPruning: true},
		"no-distance-pruning": {DisableDistancePruning: true},
		"corollary2":          {UseCorollary2: true},
		"both-off":            {DisableIndexPruning: true, DisableDistancePruning: true},
	}
	for _, uq := range []socialnet.UserID{2, 19, 44} {
		want, _, err := base.Query(uq, p)
		if err != nil {
			t.Fatal(err)
		}
		for name, opts := range variants {
			e := buildEngine(t, ds, opts)
			got, _, err := e.Query(uq, p)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if got.Found != want.Found {
				t.Fatalf("%s uq %d: found=%v, want %v", name, uq, got.Found, want.Found)
			}
			if got.Found && math.Abs(got.MaxDist-want.MaxDist) > 1e-6 {
				t.Fatalf("%s uq %d: cost %v, want %v", name, uq, got.MaxDist, want.MaxDist)
			}
		}
	}
}

func TestEngineSamplingRefineFeasibleNotBetter(t *testing.T) {
	ds := smallDataset(t, 10)
	p := Params{Gamma: 0.2, Tau: 3, Theta: 0.3, R: 2, Metric: MetricDotProduct}
	exact := buildEngine(t, ds, Options{})
	sampling := buildEngine(t, ds, Options{SamplingRefine: true, SampleCount: 32})
	for _, uq := range []socialnet.UserID{1, 25} {
		want, _, err := exact.Query(uq, p)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := sampling.Query(uq, p)
		if err != nil {
			t.Fatal(err)
		}
		if got.Found {
			checkFeasible(t, ds, uq, p, got)
			if want.Found && got.MaxDist < want.MaxDist-1e-9 {
				t.Fatalf("sampling found a better-than-optimal cost %v < %v", got.MaxDist, want.MaxDist)
			}
		}
	}
}

func TestEngineTauOne(t *testing.T) {
	ds := smallDataset(t, 11)
	e := buildEngine(t, ds, Options{})
	p := Params{Gamma: 0.9, Tau: 1, Theta: 0.1, R: 2, Metric: MetricDotProduct}
	res, _, err := e.Query(5, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		if len(res.S) != 1 || res.S[0] != 5 {
			t.Fatalf("tau=1 group = %v", res.S)
		}
		checkFeasible(t, ds, 5, p, res)
	}
	oracle := &Baseline{DS: ds}
	want, _ := oracle.Query(5, p)
	if res.Found != want.Found || (res.Found && math.Abs(res.MaxDist-want.MaxDist) > 1e-6) {
		t.Fatalf("tau=1 mismatch: %+v vs oracle %+v", res, want)
	}
}

func TestEngineInfeasibleGamma(t *testing.T) {
	ds := smallDataset(t, 12)
	e := buildEngine(t, ds, Options{})
	// Gamma far above any achievable dot product.
	p := Params{Gamma: 50, Tau: 3, Theta: 0.1, R: 2, Metric: MetricDotProduct}
	res, st, err := e.Query(3, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("impossible gamma should find nothing")
	}
	if st.SNObjPruned+st.SNIndexPruned == 0 {
		t.Error("expected heavy user pruning")
	}
}

func TestEngineParamValidation(t *testing.T) {
	ds := smallDataset(t, 13)
	e := buildEngine(t, ds, Options{})
	bad := []Params{
		{Gamma: 0.2, Tau: 0, Theta: 0.2, R: 2},            // tau < 1
		{Gamma: -1, Tau: 2, Theta: 0.2, R: 2},             // gamma < 0
		{Gamma: 0.2, Tau: 2, Theta: -0.5, R: 2},           // theta < 0
		{Gamma: 0.2, Tau: 2, Theta: 0.2, R: 0},            // r = 0
		{Gamma: 0.2, Tau: 2, Theta: 0.2, R: 99},           // r > rmax
		{Gamma: 0.2, Tau: 2, Theta: 0.2, R: 2, Metric: 9}, // bad metric
	}
	for i, p := range bad {
		if _, _, err := e.Query(0, p); err == nil {
			t.Errorf("params %d should be rejected", i)
		}
	}
	if _, _, err := e.Query(socialnet.UserID(len(ds.Users)), DefaultParams()); err == nil {
		t.Error("out-of-range user should be rejected")
	}
}

func TestEngineDeterministic(t *testing.T) {
	ds := smallDataset(t, 14)
	e := buildEngine(t, ds, Options{})
	p := Params{Gamma: 0.2, Tau: 3, Theta: 0.3, R: 2, Metric: MetricDotProduct}
	a, sa, err := e.Query(8, p)
	if err != nil {
		t.Fatal(err)
	}
	b, sb, err := e.Query(8, p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Found != b.Found || (a.Found && (a.MaxDist != b.MaxDist || a.Anchor != b.Anchor)) {
		t.Fatal("engine is not deterministic")
	}
	if sa.PageReads != sb.PageReads {
		t.Errorf("page reads differ across identical queries: %d vs %d", sa.PageReads, sb.PageReads)
	}
}

func TestEngineStatsSanity(t *testing.T) {
	ds := smallDataset(t, 15)
	e := buildEngine(t, ds, Options{})
	p := Params{Gamma: 0.25, Tau: 3, Theta: 0.4, R: 2, Metric: MetricDotProduct}
	res, st, err := e.Query(4, p)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	if st.CPUTime <= 0 {
		t.Error("CPUTime should be positive")
	}
	if st.PageReads <= 0 {
		t.Error("index traversal should incur page reads")
	}
	if st.SNUsersTotal != len(ds.Users) || st.RNPOIsTotal != len(ds.POIs) {
		t.Error("totals wrong")
	}
	if st.SNIndexPruned+st.SNObjPruned > st.SNUsersTotal {
		t.Errorf("pruned more users (%d+%d) than exist (%d)",
			st.SNIndexPruned, st.SNObjPruned, st.SNUsersTotal)
	}
	if st.RNIndexPruned+st.RNObjPruned > st.RNPOIsTotal {
		t.Errorf("pruned more POIs (%d+%d) than exist (%d)",
			st.RNIndexPruned, st.RNObjPruned, st.RNPOIsTotal)
	}
	if st.SNIndexPrunedInterest+st.SNIndexPrunedDist != st.SNIndexPruned {
		t.Error("SN index pruning reasons don't add up")
	}
	// Object-level reason counters are independent measurements (Fig 7(b)
	// and 7(c) semantics): each is bounded by the total, and together they
	// at least cover every pruned object.
	if st.RNObjPrunedMatch+st.RNObjPrunedDist < st.RNObjPruned {
		t.Error("RN object pruning reasons under-cover the pruned count")
	}
	if st.RNObjPrunedMatch > st.RNPOIsTotal || st.RNObjPrunedDist > st.RNPOIsTotal {
		t.Error("RN object reason counter exceeds total")
	}
	if st.PairsTotalLog2 <= 0 {
		t.Error("pair-space size missing")
	}
}

func TestEngineJaccardAndHammingMetrics(t *testing.T) {
	ds := smallDataset(t, 16)
	e := buildEngine(t, ds, Options{})
	oracle := &Baseline{DS: ds}
	for _, m := range []InterestMetric{MetricJaccard, MetricHamming} {
		p := Params{Gamma: 0.3, Tau: 2, Theta: 0.3, R: 2, Metric: m}
		got, _, err := e.Query(6, p)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		want, _ := oracle.Query(6, p)
		if got.Found != want.Found {
			t.Fatalf("%v: found=%v oracle=%v", m, got.Found, want.Found)
		}
		if got.Found {
			if math.Abs(got.MaxDist-want.MaxDist) > 1e-6 {
				t.Fatalf("%v: cost %v != oracle %v", m, got.MaxDist, want.MaxDist)
			}
			checkFeasible(t, ds, 6, p, got)
		}
	}
}

func TestBaselineEstimateCost(t *testing.T) {
	ds := smallDataset(t, 17)
	b := &Baseline{DS: ds}
	p := Params{Gamma: 0.2, Tau: 3, Theta: 0.3, R: 2, Metric: MetricDotProduct}
	est := b.EstimateCost(0, p, 10, 1)
	if est.SampledPairs != 10 {
		t.Errorf("SampledPairs = %d", est.SampledPairs)
	}
	if est.AvgPairTime <= 0 {
		t.Error("AvgPairTime should be positive")
	}
	if est.TotalPairsLog2 <= 0 || est.EstimatedHours <= 0 {
		t.Error("extrapolation missing")
	}
}

func TestStatsSummary(t *testing.T) {
	ds := smallDataset(t, 40)
	e := buildEngine(t, ds, Options{})
	_, st, err := e.Query(2, Params{Gamma: 0.2, Tau: 2, Theta: 0.2, R: 2})
	if err != nil {
		t.Fatal(err)
	}
	sum := st.Summary()
	for _, want := range []string{"cpu=", "io=", "candidates", "anchors", "pairs evaluated"} {
		if !strings.Contains(sum, want) {
			t.Errorf("Summary missing %q: %s", want, sum)
		}
	}
}

func TestQueryTrace(t *testing.T) {
	ds := smallDataset(t, 41)
	var buf bytes.Buffer
	e := buildEngine(t, ds, Options{Trace: &buf})
	if _, _, err := e.Query(3, Params{Gamma: 0.2, Tau: 2, Theta: 0.2, R: 2}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"probe:", "level", "traversal:", "refined:"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	// Tracing must not change the answer.
	plain := buildEngine(t, ds, Options{})
	a, _, _ := plain.Query(3, Params{Gamma: 0.2, Tau: 2, Theta: 0.2, R: 2})
	b, _, _ := e.Query(3, Params{Gamma: 0.2, Tau: 2, Theta: 0.2, R: 2})
	if a.Found != b.Found || (a.Found && a.MaxDist != b.MaxDist) {
		t.Error("tracing changed the result")
	}
}

func TestRefineBudgetBoundsWorkAndStaysFeasible(t *testing.T) {
	ds := smallDataset(t, 42)
	exact := buildEngine(t, ds, Options{})
	budgeted := buildEngine(t, ds, Options{RefineBudget: 3})
	p := Params{Gamma: 0.2, Tau: 3, Theta: 0.3, R: 2, Metric: MetricDotProduct}
	for _, uq := range []socialnet.UserID{2, 17} {
		want, _, err := exact.Query(uq, p)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := budgeted.Query(uq, p)
		if err != nil {
			t.Fatal(err)
		}
		if got.Found {
			checkFeasible(t, ds, uq, p, got)
			if want.Found && got.MaxDist < want.MaxDist-1e-9 {
				t.Fatal("budgeted result beat the optimum")
			}
		}
	}
}
