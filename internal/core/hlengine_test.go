package core

import (
	"math"
	"testing"

	"gpssn/internal/roadnet/hl"
	"gpssn/internal/socialnet"
)

// TestEngineMatchesBaselineUnderHL reruns the engine-vs-Baseline oracle
// gate with the hub-label oracle attached, across every ablation variant:
// the batched label kernel must leave answers exact whichever pruning
// stages are toggled.
func TestEngineMatchesBaselineUnderHL(t *testing.T) {
	params := []Params{
		{Gamma: 0.2, Tau: 2, Theta: 0.3, R: 2, Metric: MetricDotProduct},
		{Gamma: 0.25, Tau: 3, Theta: 0.4, R: 2, Metric: MetricDotProduct},
		{Gamma: 0.0, Tau: 2, Theta: 0.0, R: 0.5, Metric: MetricDotProduct},
	}
	variants := map[string]Options{
		"default":             {},
		"no-index-pruning":    {DisableIndexPruning: true},
		"no-distance-pruning": {DisableDistancePruning: true},
		"corollary2":          {UseCorollary2: true},
		"both-off":            {DisableIndexPruning: true, DisableDistancePruning: true},
		"parallel-8":          {Parallelism: 8},
	}
	ds := smallDataset(t, 9)
	ds.Road.SetDistanceOracle(hl.Build(ds.Road))
	defer ds.Road.SetDistanceOracle(nil)
	oracle := &Baseline{DS: ds}
	for pi, p := range params {
		for _, uq := range []socialnet.UserID{2, 19, 44} {
			want, _ := oracle.Query(uq, p)
			for name, opts := range variants {
				e := buildEngine(t, ds, opts)
				got, _, err := e.Query(uq, p)
				if err != nil {
					t.Fatalf("%s params %d uq %d: %v", name, pi, uq, err)
				}
				if got.Found != want.Found {
					t.Fatalf("%s params %d uq %d: found=%v, baseline %v", name, pi, uq, got.Found, want.Found)
				}
				if got.Found && math.Abs(got.MaxDist-want.MaxDist) > 1e-6 {
					t.Fatalf("%s params %d uq %d: cost %v, baseline %v (S=%v R=%v vs S=%v R=%v)",
						name, pi, uq, got.MaxDist, want.MaxDist, got.S, got.R, want.S, want.R)
				}
				if got.Found {
					checkFeasible(t, ds, uq, p, got)
				}
			}
		}
	}
}
