package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gpssn/internal/model"
)

func TestTopicSetBasics(t *testing.T) {
	s := NewTopicSet(70)
	for _, f := range []int{0, 5, 63, 64, 69} {
		if s.Has(f) {
			t.Errorf("topic %d should start absent", f)
		}
		s.Add(f)
		if !s.Has(f) {
			t.Errorf("topic %d should be present", f)
		}
	}
	if s.IsEmpty() {
		t.Error("set is not empty")
	}
	if NewTopicSet(3).IsEmpty() != true {
		t.Error("fresh set should be empty")
	}
	if s.Vocabulary() != 70 {
		t.Errorf("Vocabulary = %d", s.Vocabulary())
	}
	if s.SizeBytes() != 16 {
		t.Errorf("SizeBytes = %d, want 16", s.SizeBytes())
	}
}

func TestTopicSetUnionClone(t *testing.T) {
	a := TopicSetOf(10, 1, 2)
	b := TopicSetOf(10, 2, 3)
	c := a.Clone()
	c.Union(b)
	for _, f := range []int{1, 2, 3} {
		if !c.Has(f) {
			t.Errorf("union missing %d", f)
		}
	}
	if a.Has(3) {
		t.Error("Union mutated through Clone")
	}
}

func TestTopicSetPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"bad vocab":      func() { NewTopicSet(0) },
		"add oob":        func() { NewTopicSet(3).Add(3) },
		"has oob":        func() { NewTopicSet(3).Has(-1) },
		"union mismatch": func() { NewTopicSet(3).Union(NewTopicSet(4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestInterestScoreTable1(t *testing.T) {
	// Values from the paper's Table 1.
	u1 := []float64{0.7, 0.3, 0.7}
	u2 := []float64{0.2, 0.9, 0.3}
	u4 := []float64{0.9, 0.7, 0.7}
	if got := InterestScore(u1, u2); math.Abs(got-0.62) > 1e-12 {
		t.Errorf("Interest(u1,u2) = %v, want 0.62", got)
	}
	if got := InterestScore(u1, u4); math.Abs(got-1.33) > 1e-12 {
		t.Errorf("Interest(u1,u4) = %v, want 1.33", got)
	}
	if got := InterestScore(u1, u1); math.Abs(got-VecNorm2(u1)) > 1e-12 {
		t.Errorf("self score should equal squared norm")
	}
}

func TestInterestScoreSymmetricProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		n := len(raw) / 2
		a, b := make([]float64, n), make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = sanitize01(raw[i])
			b[i] = sanitize01(raw[n+i])
		}
		return math.Abs(InterestScore(a, b)-InterestScore(b, a)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func sanitize01(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Abs(math.Mod(v, 1))
}

func TestMatchScoreSet(t *testing.T) {
	interests := []float64{0.7, 0.3, 0.7}
	kws := TopicSetOf(3, 0, 2)
	if got := MatchScoreSet(interests, kws); math.Abs(got-1.4) > 1e-12 {
		t.Errorf("MatchScoreSet = %v, want 1.4", got)
	}
	if got := MatchScoreSet(interests, NewTopicSet(3)); got != 0 {
		t.Errorf("empty keyword match = %v", got)
	}
}

func TestMatchScoreMonotoneInKeywords(t *testing.T) {
	// Lemma 2: a keyword superset never lowers the match score.
	f := func(raw []float64, kwsA, kwsB []uint8) bool {
		const d = 16
		interests := make([]float64, d)
		for i := 0; i < d && i < len(raw); i++ {
			interests[i] = sanitize01(raw[i])
		}
		small := NewTopicSet(d)
		for _, k := range kwsA {
			small.Add(int(k) % d)
		}
		big := small.Clone()
		for _, k := range kwsB {
			big.Add(int(k) % d)
		}
		return MatchScoreSet(interests, small) <= MatchScoreSet(interests, big)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestKeywordUnionAndMatchScore(t *testing.T) {
	pois := []*model.POI{
		{Keywords: []int{0}},
		{Keywords: []int{1, 2}},
	}
	u := &model.User{Interests: []float64{0.5, 0.4, 0.0, 0.9}}
	got := MatchScore(u, pois, 4)
	if math.Abs(got-0.9) > 1e-12 { // topics 0,1,2 covered: 0.5+0.4+0.0
		t.Errorf("MatchScore = %v, want 0.9", got)
	}
	ts := KeywordUnion(4, pois)
	if !ts.Has(0) || !ts.Has(1) || !ts.Has(2) || ts.Has(3) {
		t.Errorf("KeywordUnion wrong")
	}
}

func randInterest(rng *rand.Rand, d int) []float64 {
	w := make([]float64, d)
	for i := range w {
		if rng.Float64() < 0.5 {
			w[i] = rng.Float64()
		}
	}
	return w
}

// Property (Corollary 1 soundness): the B/B' distance-form pruning region
// agrees with the direct score test Interest_Score < γ.
func TestPruneRegionMatchesScoreTest(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 2000; trial++ {
		d := 1 + rng.Intn(8)
		anchor := randInterest(rng, d)
		gamma := rng.Float64() * 2
		pr := NewPruneRegion(anchor, gamma)
		w := randInterest(rng, d)
		if VecNorm2(anchor) == 0 {
			continue // degenerate anchor tested separately
		}
		got := pr.Contains(w)
		want := pr.ContainsScore(w)
		if got != want {
			t.Fatalf("trial %d: Contains=%v ContainsScore=%v anchor=%v gamma=%v w=%v",
				trial, got, want, anchor, gamma, w)
		}
	}
}

func TestPruneRegionZeroAnchor(t *testing.T) {
	pr := NewPruneRegion([]float64{0, 0}, 0.5)
	if !pr.Contains([]float64{0.9, 0.9}) {
		t.Error("zero anchor with gamma>0: everything scores 0 < gamma, prune")
	}
	pr0 := NewPruneRegion([]float64{0, 0}, 0)
	if pr0.Contains([]float64{0.9, 0.9}) {
		t.Error("gamma=0: score 0 >= 0, keep")
	}
}

func TestPruneRegionBoundaryKept(t *testing.T) {
	// A vector scoring exactly γ must not be pruned (predicate is >=).
	anchor := []float64{1, 0}
	pr := NewPruneRegion(anchor, 0.5)
	onPlane := []float64{0.5, 0.7}
	if pr.Contains(onPlane) {
		t.Error("boundary vector must be kept")
	}
	if pr.ContainsScore(onPlane) {
		t.Error("boundary vector must be kept by score form too")
	}
}

func TestPruneRegionContainsMBR(t *testing.T) {
	anchor := []float64{0.5, 0.5}
	pr := NewPruneRegion(anchor, 0.6)
	// Box whose best corner scores 0.5*0.4+0.5*0.4 = 0.4 < 0.6: prunable.
	if !pr.ContainsMBR([]float64{0, 0}, []float64{0.4, 0.4}) {
		t.Error("low box should be fully in the pruning region")
	}
	// Box reaching score 1.0: not prunable.
	if pr.ContainsMBR([]float64{0, 0}, []float64{1, 1}) {
		t.Error("high box must not be pruned")
	}
}

// Property (Lemma 8 soundness): if ContainsMBR says prune, every sampled
// vector inside the box is individually prunable.
func TestContainsMBRSoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 500; trial++ {
		d := 1 + rng.Intn(6)
		anchor := randInterest(rng, d)
		gamma := rng.Float64() * 1.5
		pr := NewPruneRegion(anchor, gamma)
		lb, ub := make([]float64, d), make([]float64, d)
		for i := 0; i < d; i++ {
			a, b := rng.Float64(), rng.Float64()
			lb[i], ub[i] = math.Min(a, b), math.Max(a, b)
		}
		if !pr.ContainsMBR(lb, ub) {
			continue
		}
		for s := 0; s < 20; s++ {
			w := make([]float64, d)
			for i := range w {
				w[i] = lb[i] + rng.Float64()*(ub[i]-lb[i])
			}
			if !pr.ContainsScore(w) {
				t.Fatalf("trial %d: MBR pruned but interior vector %v scores >= gamma", trial, w)
			}
		}
	}
}

func TestSimilarityMetrics(t *testing.T) {
	a := []float64{0.5, 0, 0.5}
	b := []float64{0.5, 0.5, 0}
	if got := Similarity(MetricDotProduct, a, b); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("dot = %v", got)
	}
	// Jaccard: min sum = 0.5, max sum = 1.5.
	if got := Similarity(MetricJaccard, a, b); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("jaccard = %v", got)
	}
	// Hamming agreement: topic0 both >0, topic1 disagree, topic2 disagree.
	if got := Similarity(MetricHamming, a, b); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("hamming = %v", got)
	}
	// Identical vectors.
	if Similarity(MetricJaccard, a, a) != 1 || Similarity(MetricHamming, a, a) != 1 {
		t.Error("self-similarity should be 1")
	}
	zero := []float64{0, 0, 0}
	if Similarity(MetricJaccard, zero, zero) != 1 {
		t.Error("empty/empty Jaccard defined as 1")
	}
}

func TestMetricString(t *testing.T) {
	if MetricDotProduct.String() != "dot" || MetricJaccard.String() != "jaccard" ||
		MetricHamming.String() != "hamming" {
		t.Error("metric names wrong")
	}
}

// Property: SimilarityUpperBound is a sound upper bound for vectors in the
// box, for every metric.
func TestSimilarityUpperBoundSound(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	metrics := []InterestMetric{MetricDotProduct, MetricJaccard, MetricHamming}
	for trial := 0; trial < 400; trial++ {
		d := 1 + rng.Intn(6)
		anchor := randInterest(rng, d)
		lb, ub := make([]float64, d), make([]float64, d)
		for i := 0; i < d; i++ {
			a, b := rng.Float64(), rng.Float64()
			lb[i], ub[i] = math.Min(a, b), math.Max(a, b)
			if rng.Float64() < 0.3 {
				lb[i] = 0 // boxes often touch zero in practice
			}
		}
		for _, m := range metrics {
			bound := SimilarityUpperBound(m, anchor, lb, ub)
			for s := 0; s < 10; s++ {
				w := make([]float64, d)
				for i := range w {
					w[i] = lb[i] + rng.Float64()*(ub[i]-lb[i])
				}
				if got := Similarity(m, anchor, w); got > bound+1e-9 {
					t.Fatalf("trial %d metric %v: similarity %v > bound %v", trial, m, got, bound)
				}
			}
		}
	}
}
