package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"gpssn/internal/gen"
	"gpssn/internal/socialnet"
)

// TestEngineOracleFuzz cross-checks the engine against the brute-force
// oracle on many random tiny datasets and random parameters — the widest
// correctness net in the suite. Each failure would print enough to
// reproduce (seed + params + issuer).
func TestEngineOracleFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz sweep")
	}
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 12; trial++ {
		seed := rng.Int63n(1 << 30)
		ds, err := gen.Synthetic(gen.Config{
			Name: "fuzz", Seed: seed,
			RoadVertices: 80 + rng.Intn(80),
			SocialUsers:  30 + rng.Intn(40),
			POIs:         20 + rng.Intn(30),
			Topics:       4 + rng.Intn(6),
		})
		if err != nil {
			t.Fatalf("trial %d seed %d: %v", trial, seed, err)
		}
		e := buildEngine(t, ds, Options{})
		oracle := &Baseline{DS: ds}
		for q := 0; q < 3; q++ {
			p := Params{
				Gamma:  rng.Float64() * 0.6,
				Tau:    1 + rng.Intn(3),
				Theta:  rng.Float64() * 0.6,
				R:      0.5 + rng.Float64()*3,
				Metric: MetricDotProduct,
			}
			uq := socialnet.UserID(rng.Intn(len(ds.Users)))
			got, _, err := e.Query(uq, p)
			if err != nil {
				t.Fatalf("trial %d seed %d uq %d %s: %v", trial, seed, uq, p, err)
			}
			want, _ := oracle.Query(uq, p)
			if got.Found != want.Found {
				t.Fatalf("trial %d seed %d uq %d %s: found=%v oracle=%v",
					trial, seed, uq, p, got.Found, want.Found)
			}
			if got.Found && math.Abs(got.MaxDist-want.MaxDist) > 1e-6 {
				t.Fatalf("trial %d seed %d uq %d %s: cost %v oracle %v",
					trial, seed, uq, p, got.MaxDist, want.MaxDist)
			}
		}
	}
}

// TestEngineRadiusBoundaries exercises the exact RMin/RMax radii, where
// the multi-level sub_K selection and validation edge cases live.
func TestEngineRadiusBoundaries(t *testing.T) {
	ds := smallDataset(t, 31)
	e := buildEngine(t, ds, Options{})
	oracle := &Baseline{DS: ds}
	for _, r := range []float64{0.5, 1.0, 4.0} { // RMin, a sub level, RMax
		p := Params{Gamma: 0.2, Tau: 2, Theta: 0.2, R: r, Metric: MetricDotProduct}
		got, _, err := e.Query(9, p)
		if err != nil {
			t.Fatalf("r=%v: %v", r, err)
		}
		want, _ := oracle.Query(9, p)
		if got.Found != want.Found || (got.Found && math.Abs(got.MaxDist-want.MaxDist) > 1e-6) {
			t.Fatalf("r=%v: %+v vs oracle %+v", r, got, want)
		}
	}
}

// TestEngineIsolatedIssuer: a user with no friends can only form groups of
// size 1.
func TestEngineIsolatedIssuer(t *testing.T) {
	ds := smallDataset(t, 32)
	// Find (or fabricate conceptually) the least-connected user. Synthetic
	// generation guarantees degree >= 1, so test via tau > reachable set:
	// pick any user and ask for an impossible group size within 1 hop.
	e := buildEngine(t, ds, Options{})
	var uq socialnet.UserID
	minDeg := 1 << 30
	for u := 0; u < ds.Social.NumUsers(); u++ {
		if d := ds.Social.Degree(socialnet.UserID(u)); d < minDeg {
			minDeg = d
			uq = socialnet.UserID(u)
		}
	}
	reach := len(ds.Social.WithinHops(uq, 3))
	p := Params{Gamma: 0, Tau: reach + 1, Theta: 0, R: 2, Metric: MetricDotProduct}
	if p.Tau > 12 {
		t.Skip("dataset too connected for this check")
	}
	res, _, err := e.Query(uq, p)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := (&Baseline{DS: ds}).Query(uq, p)
	if res.Found != want.Found {
		t.Fatalf("found=%v oracle=%v", res.Found, want.Found)
	}
}

// TestEngineCorollary2KeepsOptimum: the Corollary 2 filter must never
// remove a user that belongs to the optimal group.
func TestEngineCorollary2KeepsOptimum(t *testing.T) {
	for seed := int64(33); seed < 36; seed++ {
		ds := smallDataset(t, seed)
		plain := buildEngine(t, ds, Options{})
		filtered := buildEngine(t, ds, Options{UseCorollary2: true})
		p := Params{Gamma: 0.3, Tau: 3, Theta: 0.3, R: 2, Metric: MetricDotProduct}
		for _, uq := range []socialnet.UserID{1, 20, 50} {
			a, _, err := plain.Query(uq, p)
			if err != nil {
				t.Fatal(err)
			}
			b, _, err := filtered.Query(uq, p)
			if err != nil {
				t.Fatal(err)
			}
			if a.Found != b.Found || (a.Found && math.Abs(a.MaxDist-b.MaxDist) > 1e-9) {
				t.Fatalf("seed %d uq %d: corollary2 changed the answer: %v vs %v",
					seed, uq, a.MaxDist, b.MaxDist)
			}
		}
	}
}

// TestEngineConcurrentQueries: an Engine may be shared across goroutines
// (queries serialize internally); results must match the sequential run.
func TestEngineConcurrentQueries(t *testing.T) {
	ds := smallDataset(t, 37)
	e := buildEngine(t, ds, Options{})
	p := Params{Gamma: 0.2, Tau: 2, Theta: 0.2, R: 2, Metric: MetricDotProduct}
	users := []socialnet.UserID{0, 5, 10, 15, 20, 25, 30, 35}
	sequential := make([]Result, len(users))
	for i, u := range users {
		r, _, err := e.Query(u, p)
		if err != nil {
			t.Fatal(err)
		}
		sequential[i] = r
	}
	results := make([]Result, len(users))
	errs := make([]error, len(users))
	var wg sync.WaitGroup
	for i, u := range users {
		wg.Add(1)
		go func(i int, u socialnet.UserID) {
			defer wg.Done()
			r, _, err := e.Query(u, p)
			results[i], errs[i] = r, err
		}(i, u)
	}
	wg.Wait()
	for i := range users {
		if errs[i] != nil {
			t.Fatalf("concurrent query %d: %v", i, errs[i])
		}
		if results[i].Found != sequential[i].Found ||
			(results[i].Found && math.Abs(results[i].MaxDist-sequential[i].MaxDist) > 1e-12) {
			t.Fatalf("concurrent result %d diverged", i)
		}
	}
}
