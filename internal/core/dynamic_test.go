package core

import (
	"math"
	"math/rand"
	"testing"

	"gpssn/internal/model"
	"gpssn/internal/roadnet"
	"gpssn/internal/socialnet"
)

// addRandomDelta grows the dataset through the engine: new POIs, new
// users (wired to existing users), and new edges between existing users.
func addRandomDelta(t *testing.T, e *Engine, seed int64, pois, users, edges int) {
	t.Helper()
	ds := e.DS
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < pois; i++ {
		eid := roadnet.EdgeID(rng.Intn(ds.Road.NumEdges()))
		at := ds.Road.AttachAt(eid, rng.Float64())
		kws := []int{rng.Intn(ds.NumTopics)}
		if rng.Float64() < 0.5 {
			kws = append(kws, rng.Intn(ds.NumTopics))
		}
		p := model.POI{
			ID: model.POIID(len(ds.POIs)), At: at,
			Loc: ds.Road.Location(at), Keywords: kws,
		}
		if err := e.AddPOI(p); err != nil {
			t.Fatalf("AddPOI: %v", err)
		}
	}
	for i := 0; i < users; i++ {
		eid := roadnet.EdgeID(rng.Intn(ds.Road.NumEdges()))
		at := ds.Road.AttachAt(eid, rng.Float64())
		w := make([]float64, ds.NumTopics)
		for f := range w {
			if rng.Float64() < 0.4 {
				w[f] = 0.3 + 0.7*rng.Float64()
			}
		}
		u := model.User{
			ID: socialnet.UserID(len(ds.Users)), At: at,
			Loc: ds.Road.Location(at), Interests: w,
		}
		if err := e.AddUser(u); err != nil {
			t.Fatalf("AddUser: %v", err)
		}
		// Wire the new user to an existing one so it is reachable.
		if _, err := e.AddFriendship(u.ID, socialnet.UserID(rng.Intn(int(u.ID)))); err != nil {
			t.Fatalf("AddFriendship: %v", err)
		}
	}
	for i := 0; i < edges; i++ {
		a := socialnet.UserID(rng.Intn(len(ds.Users)))
		b := socialnet.UserID(rng.Intn(len(ds.Users)))
		if a != b {
			if _, err := e.AddFriendship(a, b); err != nil {
				t.Fatalf("AddFriendship: %v", err)
			}
		}
	}
}

// The engine must stay oracle-exact through dynamic updates: after any
// mix of added POIs, users, and friendships, Query equals the brute force
// run over the grown dataset.
func TestDynamicUpdatesStayExact(t *testing.T) {
	for seed := int64(50); seed < 53; seed++ {
		ds := smallDataset(t, seed)
		e := buildEngine(t, ds, Options{})
		addRandomDelta(t, e, seed*7, 8, 6, 5)
		if e.PendingUpdates() == 0 {
			t.Fatal("expected pending updates")
		}
		oracle := &Baseline{DS: ds}
		params := []Params{
			{Gamma: 0.2, Tau: 2, Theta: 0.3, R: 2, Metric: MetricDotProduct},
			{Gamma: 0.3, Tau: 3, Theta: 0.4, R: 1.5, Metric: MetricDotProduct},
		}
		for pi, p := range params {
			for _, uq := range []socialnet.UserID{1, 30, socialnet.UserID(len(ds.Users) - 1)} {
				got, _, err := e.Query(uq, p)
				if err != nil {
					t.Fatalf("seed %d params %d uq %d: %v", seed, pi, uq, err)
				}
				want, _ := oracle.Query(uq, p)
				if got.Found != want.Found {
					t.Fatalf("seed %d params %d uq %d: found=%v oracle=%v",
						seed, pi, uq, got.Found, want.Found)
				}
				if got.Found && math.Abs(got.MaxDist-want.MaxDist) > 1e-6 {
					t.Fatalf("seed %d params %d uq %d: cost %v oracle %v (S=%v R=%v vs S=%v R=%v)",
						seed, pi, uq, got.MaxDist, want.MaxDist, got.S, got.R, want.S, want.R)
				}
			}
		}
	}
}

// A delta user can be the query issuer.
func TestDynamicDeltaIssuer(t *testing.T) {
	ds := smallDataset(t, 54)
	e := buildEngine(t, ds, Options{})
	addRandomDelta(t, e, 99, 3, 4, 0)
	uq := socialnet.UserID(len(ds.Users) - 1) // a delta user
	p := Params{Gamma: 0.1, Tau: 2, Theta: 0.2, R: 2, Metric: MetricDotProduct}
	got, _, err := e.Query(uq, p)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := (&Baseline{DS: ds}).Query(uq, p)
	if got.Found != want.Found || (got.Found && math.Abs(got.MaxDist-want.MaxDist) > 1e-6) {
		t.Fatalf("delta issuer: %+v vs oracle %+v", got, want)
	}
}

// New friendships can create answers that did not exist before.
func TestDynamicFriendshipEnablesAnswer(t *testing.T) {
	ds := smallDataset(t, 55)
	e := buildEngine(t, ds, Options{})
	// Find a pair of non-friends with high similarity, one of them the
	// issuer, such that tau=2 with a sky-high gamma only works through
	// that specific pair.
	var a, b socialnet.UserID = -1, -1
	bestScore := 0.0
	for i := 0; i < len(ds.Users); i++ {
		for j := i + 1; j < len(ds.Users); j++ {
			if ds.Social.AreFriends(socialnet.UserID(i), socialnet.UserID(j)) {
				continue
			}
			s := InterestScore(ds.Users[i].Interests, ds.Users[j].Interests)
			if s > bestScore {
				bestScore, a, b = s, socialnet.UserID(i), socialnet.UserID(j)
			}
		}
	}
	if a < 0 {
		t.Skip("no non-friend pair")
	}
	gamma := bestScore * 0.99
	p := Params{Gamma: gamma, Tau: 2, Theta: 0, R: 2, Metric: MetricDotProduct}
	before, _, err := e.Query(a, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddFriendship(a, b); err != nil {
		t.Fatal(err)
	}
	after, _, err := e.Query(a, p)
	if err != nil {
		t.Fatal(err)
	}
	oracle, _ := (&Baseline{DS: ds}).Query(a, p)
	if after.Found != oracle.Found {
		t.Fatalf("after edge: found=%v oracle=%v", after.Found, oracle.Found)
	}
	if after.Found && math.Abs(after.MaxDist-oracle.MaxDist) > 1e-6 {
		t.Fatalf("after edge: cost %v oracle %v", after.MaxDist, oracle.MaxDist)
	}
	// The new edge can only add answers, never remove them.
	if before.Found && !after.Found {
		t.Error("adding an edge removed an answer")
	}
}

func TestDynamicValidation(t *testing.T) {
	ds := smallDataset(t, 56)
	e := buildEngine(t, ds, Options{})
	if err := e.AddPOI(model.POI{ID: 0}); err == nil {
		t.Error("wrong POI id should fail")
	}
	if err := e.AddPOI(model.POI{ID: model.POIID(len(ds.POIs))}); err == nil {
		t.Error("POI without keywords should fail")
	}
	if err := e.AddUser(model.User{ID: 0}); err == nil {
		t.Error("wrong user id should fail")
	}
	bad := model.User{ID: socialnet.UserID(len(ds.Users)), Interests: []float64{9}}
	if err := e.AddUser(bad); err == nil {
		t.Error("bad interest vector should fail")
	}
	if _, err := e.AddFriendship(0, 0); err == nil {
		t.Error("self-friendship should fail")
	}
	if _, err := e.AddFriendship(0, socialnet.UserID(len(ds.Users)+5)); err == nil {
		t.Error("out-of-range friendship should fail")
	}
	if e.PendingUpdates() != 0 {
		t.Errorf("failed updates must not count as pending: %d", e.PendingUpdates())
	}
}
