package core

import (
	"errors"
	"fmt"
	"math"
)

// ErrInvalidParams is matched (errors.Is) by every Validate rejection, so
// the facade can lift parameter errors into its public ErrInvalidInput
// instead of misclassifying them as internal failures.
var ErrInvalidParams = errors.New("core: invalid parameters")

// Params are the GP-SSN query parameters of Definition 5 and Table 3.
type Params struct {
	// Gamma (γ) is the pairwise interest score threshold between any two
	// users of the returned group S.
	Gamma float64
	// Tau (τ) is the user group size |S|, including the query issuer.
	Tau int
	// Theta (θ) is the matching score threshold between each user in S and
	// the POI set R.
	Theta float64
	// R (r) bounds the POI set's spread: the returned R is the road-network
	// ball of radius r around an anchor POI, so any two members are within
	// road distance 2r as Definition 5 requires.
	R float64
	// Metric selects the user similarity (MetricDotProduct is the paper's
	// Eq. (1); Jaccard/Hamming are the future-work extensions).
	Metric InterestMetric
	// Budget optionally caps the work this query may spend. The zero value
	// is unlimited; see the Budget type for the graceful-degradation
	// semantics of a capped query.
	Budget Budget
}

// DefaultParams returns the paper's default parameter values (the bold
// entries of Table 3).
func DefaultParams() Params {
	return Params{Gamma: 0.5, Tau: 5, Theta: 0.5, R: 2, Metric: MetricDotProduct}
}

// Validate checks the parameters against the index build bounds
// [rmin, rmax] for the radius.
func (p Params) Validate(rmin, rmax float64) error {
	if p.Tau < 1 {
		return fmt.Errorf("%w: tau must be >= 1, got %d", ErrInvalidParams, p.Tau)
	}
	// NaN comparisons are false both ways, so the thresholds are checked
	// with negated >= forms: a NaN gamma/theta/r must be rejected here, not
	// silently disable every pruning rule downstream.
	if !(p.Gamma >= 0) {
		return fmt.Errorf("%w: gamma must be >= 0, got %v", ErrInvalidParams, p.Gamma)
	}
	if !(p.Theta >= 0) {
		return fmt.Errorf("%w: theta must be >= 0, got %v", ErrInvalidParams, p.Theta)
	}
	if !(p.R > 0) || math.IsInf(p.R, 1) {
		return fmt.Errorf("%w: r must be a finite positive value, got %v", ErrInvalidParams, p.R)
	}
	if p.R < rmin || p.R > rmax {
		return fmt.Errorf("%w: r=%v outside the index build range [%v, %v]", ErrInvalidParams, p.R, rmin, rmax)
	}
	switch p.Metric {
	case MetricDotProduct, MetricJaccard, MetricHamming:
	default:
		return fmt.Errorf("%w: unknown interest metric %d", ErrInvalidParams, int(p.Metric))
	}
	return nil
}

// String implements fmt.Stringer.
func (p Params) String() string {
	return fmt.Sprintf("γ=%.2f τ=%d θ=%.2f r=%.2f metric=%s", p.Gamma, p.Tau, p.Theta, p.R, p.Metric)
}
