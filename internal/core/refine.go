package core

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"gpssn/internal/failpoint"
	"gpssn/internal/geo"

	"gpssn/internal/model"
	"gpssn/internal/roadnet"
	"gpssn/internal/socialnet"
)

// probeResult carries the incumbent found by the pre-traversal probe and
// the per-user distance cache it warmed up (reused by refinement).
type probeResult struct {
	res   Result
	cache *vertexDistCache
}

// probe searches for one feasible solution around the issuer's nearest
// anchor POIs by greedy connected group growth. Its cost, when found, is a
// sound upper bound on the optimum (it is the cost of an actual feasible
// pair), so it can seed δ and the refinement incumbent.
func (e *Engine) probe(uq socialnet.UserID, p Params, q *qctx) probeResult {
	pr := probeResult{
		res:   Result{MaxDist: math.Inf(1)},
		cache: newVertexDistCache(),
	}
	ds := e.DS
	uqW := ds.Users[uq].Interests
	ar := e.acquireArena()
	defer e.releaseArena(ar)
	const probeAnchors = 3
	nn := e.Road.Tree.Nearest(ds.Users[uq].Loc, probeAnchors)
	tried := map[model.POIID]bool{}
	tryAnchor := func(anchor model.POIID) {
		if tried[anchor] || q.ck.Stopped() {
			return
		}
		tried[anchor] = true
		ball, tl := e.anchorBall(anchor, p.R, q.ck)
		if q.ck.Stopped() {
			return // degenerate ball (see refine's processAnchor)
		}
		kws := ballKeywords(ds, ball, ar)
		if MatchScoreSet(uqW, kws) < p.Theta {
			return
		}
		mOf := e.makeMOf(pr.cache, ball, tl, nil, q.ck, ar)
		mUq := mOf(uq)
		if mUq >= pr.res.MaxDist {
			return
		}
		cur := []socialnet.UserID{uq}
		inCur := map[socialnet.UserID]bool{uq: true}
		curMax := mUq
		evals := 0
		for len(cur) < p.Tau {
			// Frontier: eligible friends of the current group, cheapest
			// (smallest M) first; cap the per-step distance evaluations so
			// the probe stays cheap on hub users.
			var bestU socialnet.UserID = -1
			bestM := math.Inf(1)
			checked := 0
			for _, u := range cur {
				for _, v := range ds.Social.Friends(u) {
					if inCur[v] || checked >= 16 {
						continue
					}
					compatible := true
					for _, w := range cur {
						if Similarity(p.Metric, ds.Users[w].Interests, ds.Users[v].Interests) < p.Gamma {
							compatible = false
							break
						}
					}
					if !compatible || MatchScoreSet(ds.Users[v].Interests, kws) < p.Theta {
						continue
					}
					checked++
					evals++
					m := mOf(v)
					if m < bestM {
						bestM, bestU = m, v
					}
				}
			}
			if bestU < 0 || evals > 16*p.Tau {
				break
			}
			cur = append(cur, bestU)
			inCur[bestU] = true
			if bestM > curMax {
				curMax = bestM
			}
		}
		if len(cur) == p.Tau && curMax < pr.res.MaxDist {
			s := append([]socialnet.UserID(nil), cur...)
			sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
			r := append([]model.POIID(nil), ball...)
			sort.Slice(r, func(i, j int) bool { return r[i] < r[j] })
			pr.res = Result{Found: true, S: s, R: r, Anchor: anchor, MaxDist: curMax}
		}
	}
	for _, nb := range nn {
		tryAnchor(model.POIID(nb.Item.ID))
	}
	// Second round: anchors near the found group's centroid usually beat
	// anchors near the issuer alone, and a tighter incumbent is the main
	// lever on δ-pruning.
	if pr.res.Found {
		var cx, cy float64
		for _, u := range pr.res.S {
			cx += ds.Users[u].Loc.X
			cy += ds.Users[u].Loc.Y
		}
		n := float64(len(pr.res.S))
		for _, nb := range e.Road.Tree.Nearest(geo.Pt(cx/n, cy/n), probeAnchors) {
			tryAnchor(model.POIID(nb.Item.ID))
		}
	}
	return pr
}

// lexLessUsers compares two sorted user groups lexicographically.
func lexLessUsers(a, b []socialnet.UserID) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// sortedUsers returns a sorted copy of a user group (the canonical form
// results carry).
func sortedUsers(s []socialnet.UserID) []socialnet.UserID {
	out := append([]socialnet.UserID(nil), s...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// resultLess is the canonical total order on results: cost first, then
// anchor id, then the lexicographically smallest sorted user group (r.S is
// always sorted before reaching the keeper). Having no arrival-order
// component is what makes refinement's answers independent of the order
// in which workers report them.
func resultLess(a, b Result) bool {
	if a.MaxDist != b.MaxDist {
		return a.MaxDist < b.MaxDist
	}
	if a.Anchor != b.Anchor {
		return a.Anchor < b.Anchor
	}
	return lexLessUsers(a.S, b.S)
}

// resultKeeper holds the k canonically-best results so far, in resultLess
// order, with distinct anchors. Not safe for concurrent use on its own;
// refinement workers go through sharedKeeper.
type resultKeeper struct {
	k     int
	items []Result
}

// bound returns the current pruning bound: the k-th best cost, or +Inf
// while fewer than k results are known.
func (rk *resultKeeper) bound() float64 {
	if len(rk.items) < rk.k {
		return math.Inf(1)
	}
	return rk.items[len(rk.items)-1].MaxDist
}

// add inserts r, deduplicating by anchor (keeping the canonically better
// result) and trimming to k.
func (rk *resultKeeper) add(r Result) {
	for i := range rk.items {
		if rk.items[i].Anchor == r.Anchor {
			if resultLess(r, rk.items[i]) {
				rk.items = append(rk.items[:i], rk.items[i+1:]...)
				break
			}
			return
		}
	}
	pos := len(rk.items)
	for pos > 0 && resultLess(r, rk.items[pos-1]) {
		pos--
	}
	rk.items = append(rk.items, Result{})
	copy(rk.items[pos+1:], rk.items[pos:])
	rk.items[pos] = r
	if len(rk.items) > rk.k {
		rk.items = rk.items[:rk.k]
	}
}

// sharedKeeper is the concurrent wrapper refinement workers share: the
// result list is mutex-guarded, and the pruning bound is additionally
// published through an atomic so the hot pruning checks never contend on
// the mutex. The bound is monotone non-increasing, so a stale read can
// only under-prune (wasted work), never over-prune (a lost answer) — the
// soundness argument in docs/CONCURRENCY.md.
type sharedKeeper struct {
	mu    sync.Mutex
	rk    resultKeeper
	bound atomic.Uint64 // math.Float64bits of the k-th best cost
}

func newSharedKeeper(k int) *sharedKeeper {
	sk := &sharedKeeper{rk: resultKeeper{k: k}}
	sk.bound.Store(math.Float64bits(math.Inf(1)))
	return sk
}

// Bound returns the published pruning bound. Lock-free.
func (sk *sharedKeeper) Bound() float64 {
	return math.Float64frombits(sk.bound.Load())
}

// add inserts a result and tightens the published bound via a
// compare-and-swap loop that only ever lowers it, so racing publishers
// cannot move the bound backwards.
func (sk *sharedKeeper) add(r Result) {
	sk.mu.Lock()
	sk.rk.add(r)
	b := sk.rk.bound()
	sk.mu.Unlock()
	for {
		old := sk.bound.Load()
		if math.Float64frombits(old) <= b {
			return
		}
		if sk.bound.CompareAndSwap(old, math.Float64bits(b)) {
			return
		}
	}
}

// Capacity bounds for the per-query distance cache. Before these bounds a
// single wide query could pin O(touched-users · V) float64 in memory; with
// a hub-label oracle attached the cache holds label-sized entries (tens of
// pairs per user) instead of O(V) arrays, and either way the caps below
// hold. Rejected puts are benign: callers recompute, and recomputation
// yields bit-identical values, so answers never depend on cache occupancy.
const (
	distCacheMaxEntries = 512
	distCacheMaxBytes   = 32 << 20
)

// vertexDistCache shares per-user distance state across the probe and the
// refinement workers: full one-to-all arrays under plain oracles, hub
// labels (roadnet.HubLabel) under a label oracle. Entries are
// first-write-wins — two workers may race to compute the same user's
// entry; both compute identical values, so keeping the first is benign —
// and puts beyond the entry or byte cap are rejected rather than evicted
// (the cache is per-query and short-lived; eviction bookkeeping would cost
// more than the recomputation it saves).
type vertexDistCache struct {
	mu         sync.Mutex
	arrays     map[socialnet.UserID][]float64
	labels     map[socialnet.UserID]*roadnet.HubLabel
	bytes      int64
	maxEntries int
	maxBytes   int64
	rejected   int64
}

func newVertexDistCache() *vertexDistCache {
	return newVertexDistCacheWith(distCacheMaxEntries, distCacheMaxBytes)
}

func newVertexDistCacheWith(maxEntries int, maxBytes int64) *vertexDistCache {
	return &vertexDistCache{
		arrays:     map[socialnet.UserID][]float64{},
		labels:     map[socialnet.UserID]*roadnet.HubLabel{},
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
	}
}

func (c *vertexDistCache) getArray(u socialnet.UserID) ([]float64, bool) {
	c.mu.Lock()
	dv, ok := c.arrays[u]
	c.mu.Unlock()
	return dv, ok
}

// putArray stores u's one-to-all array unless u is already present or the
// caps would be exceeded. Reports whether the entry was stored.
func (c *vertexDistCache) putArray(u socialnet.UserID, dv []float64) bool {
	nb := int64(8 * len(dv))
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.arrays[u]; ok {
		return false
	}
	if len(c.arrays)+len(c.labels) >= c.maxEntries || c.bytes+nb > c.maxBytes {
		c.rejected++
		return false
	}
	c.arrays[u] = dv
	c.bytes += nb
	return true
}

func (c *vertexDistCache) getLabel(u socialnet.UserID) (*roadnet.HubLabel, bool) {
	c.mu.Lock()
	l, ok := c.labels[u]
	c.mu.Unlock()
	return l, ok
}

// putLabel stores u's attachment label unless u is already present or the
// caps would be exceeded. On true the cache owns l (it must not be
// released to the pool); on false the caller keeps ownership.
func (c *vertexDistCache) putLabel(u socialnet.UserID, l *roadnet.HubLabel) bool {
	nb := int64(12 * l.Len())
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.labels[u]; ok {
		return false
	}
	if len(c.arrays)+len(c.labels) >= c.maxEntries || c.bytes+nb > c.maxBytes {
		c.rejected++
		return false
	}
	c.labels[u] = l
	c.bytes += nb
	return true
}

// putLabelCopy stores an owned copy of l under the same caps as putLabel.
// The copy is made only once admission is certain, so a full cache costs
// nothing. Arena-backed labels go through here: the cache must own its
// entries, and the arena scratch is overwritten by the next evaluation.
func (c *vertexDistCache) putLabelCopy(u socialnet.UserID, l *roadnet.HubLabel) bool {
	nb := int64(12 * l.Len())
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.labels[u]; ok {
		return false
	}
	if len(c.arrays)+len(c.labels) >= c.maxEntries || c.bytes+nb > c.maxBytes {
		c.rejected++
		return false
	}
	c.labels[u] = &roadnet.HubLabel{
		Hubs: append([]int32(nil), l.Hubs...),
		Dist: append([]float64(nil), l.Dist...),
	}
	c.bytes += nb
	return true
}

// arrayCapacityLeft reports how many more one-to-all arrays of nb bytes
// each the cache can admit right now. Advisory under concurrency (putArray
// re-checks under the lock); the fold path uses it to size batches so that
// every folded array is guaranteed a cache slot when workers don't race.
func (c *vertexDistCache) arrayCapacityLeft(nb int64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	left := c.maxEntries - (len(c.arrays) + len(c.labels))
	if byBytes := int((c.maxBytes - c.bytes) / nb); byBytes < left {
		left = byBytes
	}
	if left < 0 {
		left = 0
	}
	return left
}

// entries and sizeBytes report occupancy (for tests and tracing).
func (c *vertexDistCache) entries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.arrays) + len(c.labels)
}

func (c *vertexDistCache) sizeBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// userLabelWith returns u's attachment hub label through the cache,
// computing it on a miss. The second result reports whether the caller
// must release the label back to the pool (true exactly when neither the
// cache, the memo, nor the arena owns it). Only call under a label oracle.
//
// With an arena, the miss path computes into the arena's reusable label
// scratch — no pool traffic at all — and offers the cache an owned copy
// (the scratch itself is overwritten by the next evaluation, so the cache
// can never hold it directly). The returned scratch is valid until the
// next userLabelWith call on the same arena, which is exactly the one-
// user-at-a-time lifetime the evaluation loop needs.
func (e *Engine) userLabelWith(c *vertexDistCache, u socialnet.UserID, ar *refineArena) (*roadnet.HubLabel, bool) {
	if l, ok := c.getLabel(u); ok {
		return l, false
	}
	// Shared sweep memo next: the label is computed once per user across
	// all concurrent queries and owned by the memo (never pooled), so it
	// is read-only here just like a cache-owned label.
	if l, ok := e.sharedUserLabel(u); ok {
		return l, false
	}
	if ar != nil {
		l := ar.label()
		before := cap(l.Hubs)
		e.DS.Road.AttachLabel(e.DS.Users[u].At, l)
		ar.labelGrew(before)
		c.putLabelCopy(u, l)
		return l, false
	}
	l := roadnet.AcquireLabel()
	e.DS.Road.AttachLabel(e.DS.Users[u].At, l)
	if c.putLabel(u, l) {
		return l, false
	}
	return l, true
}

// ballKeywords collects the union of a ball's POI keywords, into the
// arena's reusable bitset when one is available. The set is valid until
// the next ballKeywords call on the same arena (one anchor at a time).
func ballKeywords(ds *model.Dataset, ball []model.POIID, ar *refineArena) TopicSet {
	var kws TopicSet
	if ar != nil {
		kws = ar.keywords(ds.NumTopics)
	} else {
		kws = NewTopicSet(ds.NumTopics)
	}
	for _, o := range ball {
		for _, k := range ds.POIs[o].Keywords {
			kws.Add(k)
		}
	}
	return kws
}

// makeMOf builds the M(u) evaluator for one anchor ball:
// M(u) = max over ball POIs o of dist_RN(u, o).
//
// Under a hub-label oracle it returns the batched label kernel: the ball's
// target labels are flattened and sorted once (PrepareTargetLabels), and
// each evaluation is a single simultaneous merge of the user's pooled
// attachment label against them (roadnet.LabelDists) — no per-pair graph
// search, no O(V) state. Otherwise it falls back to the array strategy:
// exact cached one-to-all arrays while no incumbent exists, bound-truncated
// searches afterwards.
//
// With a keeper, evaluations are clamped at the current shared bound: a
// ball POI beyond the bound proves M(u) > bound, so the user cannot be in
// an answer that survives the keeper and +Inf is a sound stand-in
// (distances exactly at the bound stay exact, so ties survive the strict
// pruning). keeper == nil (the probe) means unbounded exact evaluation.
// The returned closure reuses one output buffer and must not be called
// concurrently; build one evaluator per worker/anchor.
//
// tl, when non-nil, is the ball's prepared target-label set from the
// shared-work memo (anchorBall); nil means prepare one here. Preparing
// locally yields the same flattened label set, so the two paths are
// interchangeable — the memo just skips the rebuild.
//
// ar, when non-nil, is the calling worker's arena: the attachment list,
// the output buffer, and the source-label scratch come from it instead of
// fresh allocations, so the steady state allocates nothing per anchor.
// The evaluator is only valid until the same worker builds its next one
// (they share the arena's buffers), which the one-anchor-at-a-time worker
// loop guarantees.
func (e *Engine) makeMOf(cache *vertexDistCache, ball []model.POIID, tl *roadnet.TargetLabels, keeper *sharedKeeper, ck *roadnet.Checkpoint, ar *refineArena) func(socialnet.UserID) float64 {
	ds := e.DS
	var ballAtts []roadnet.Attach
	if ar != nil {
		ballAtts = ar.attachBuf(len(ball))
	} else {
		ballAtts = make([]roadnet.Attach, len(ball))
	}
	for i, o := range ball {
		ballAtts[i] = ds.POIs[o].At
	}
	bound := func() float64 {
		if keeper == nil {
			return math.Inf(1)
		}
		return keeper.Bound()
	}
	if tl == nil {
		tl = ds.Road.PrepareTargetLabels(ballAtts)
	}
	if tl != nil {
		var out []float64
		if ar != nil {
			out = ar.floatBuf(len(ballAtts))
		} else {
			out = make([]float64, len(ballAtts))
		}
		return func(u socialnet.UserID) float64 {
			lbl, pooled := e.userLabelWith(cache, u, ar)
			ds.Road.LabelDistsCk(lbl, ds.Users[u].At, tl, bound(), out, ck)
			if pooled {
				roadnet.ReleaseLabel(lbl)
			}
			m := 0.0
			for _, d := range out {
				if math.IsInf(d, 1) {
					return math.Inf(1)
				}
				if d > m {
					m = d
				}
			}
			return m
		}
	}
	return func(u socialnet.UserID) float64 {
		if b := bound(); !math.IsInf(b, 1) {
			if dv, ok := cache.getArray(u); ok {
				return mFromVertexDist(e, u, ball, dv)
			}
			dists := ds.Road.DistAttachWithinCk(ds.Users[u].At, b, ballAtts, ck)
			m := 0.0
			for _, d := range dists {
				if math.IsInf(d, 1) {
					return math.Inf(1)
				}
				if d > m {
					m = d
				}
			}
			return m
		}
		return mFromVertexDist(e, u, ball, e.userArray(cache, u, ck))
	}
}

// userArray returns u's exact one-to-all array through the per-query
// cache, then the shared sweep memo, falling back to a solo Dijkstra. On
// a checkpoint trip the result is all-+Inf and is not cached — the
// userVertexDist discipline, which the memo preserves by charging the
// metered sweep cost on hits and handing back all-+Inf when that charge
// trips the budget.
func (e *Engine) userArray(c *vertexDistCache, u socialnet.UserID, ck *roadnet.Checkpoint) []float64 {
	if dv, ok := c.getArray(u); ok {
		return dv
	}
	dv, ok := e.sharedUserArray(u, ck)
	if !ok {
		dv = e.userVertexDist(u, ck)
	}
	if !ck.Stopped() {
		c.putArray(u, dv)
	}
	return dv
}

// prefoldArrays runs the solo one-to-all sweeps the companion loop is
// about to issue — one per θ-matching candidate missing from the cache —
// as a single folded batch (DijkstraMultiBatchCk: k upward frontiers, one
// shared scan), and parks the resulting arrays in the per-query cache so
// the loop's evaluations all hit.
//
// Folding must never change an answer or a budget trip point, so it only
// fires when it provably cannot:
//
//   - only on the no-incumbent array path (no labels attached, keeper
//     bound still +Inf) — exactly the path where the loop would run one
//     full unbounded Dijkstra per user, and where a cached exact array is
//     what the evaluator reads first anyway;
//   - never on budgeted queries: the batch charges the checkpoint k units
//     per swept vertex, the sum of what the solo sweeps would charge, but
//     in a different interleaving — equal totals, different trip points.
//     Unbudgeted checkpoints only trip on cancellation, where the query
//     errors out and no truncated answer exists to compare;
//   - never when the cross-query memo is on (e.shared) — the memo already
//     shares sweeps at user granularity and owns its arrays;
//   - batches are capped to the cache slots actually left, so every folded
//     array is admitted and consumed — no speculative work the solo path
//     would not also have done (the SettledWork-parity argument at P=1).
func (e *Engine) prefoldArrays(cache *vertexDistCache, cand []socialnet.UserID, kws TopicSet, theta float64, keeper *sharedKeeper, ck *roadnet.Checkpoint, ar *refineArena) {
	ds := e.DS
	if e.Opts.DisableSweepFold || e.shared != nil || ck.Budgeted() || ds.Road.HasLabels() {
		return
	}
	if keeper == nil || !math.IsInf(keeper.Bound(), 1) {
		return
	}
	var miss []socialnet.UserID
	if ar != nil {
		miss = ar.prefoldBuf()
		defer func() { ar.keepPrefold(miss) }()
	}
	for _, u := range cand {
		if MatchScoreSet(ds.Users[u].Interests, kws) < theta {
			continue
		}
		if _, ok := cache.getArray(u); ok {
			continue
		}
		miss = append(miss, u)
	}
	if room := cache.arrayCapacityLeft(int64(8 * ds.Road.NumVertices())); len(miss) > room {
		miss = miss[:room]
	}
	if len(miss) < 2 {
		return // nothing to fold; a solo sweep is already optimal
	}
	seeds := make([][]roadnet.Seed, len(miss))
	for i, u := range miss {
		at := ds.Users[u].At
		edge := ds.Road.EdgeAt(at.Edge)
		seeds[i] = []roadnet.Seed{
			{Vertex: edge.U, Dist: at.T * edge.Weight},
			{Vertex: edge.V, Dist: (1 - at.T) * edge.Weight},
		}
	}
	dvs := ds.Road.DijkstraMultiBatchCk(seeds, ck)
	if ck.Stopped() {
		return // all-+Inf arrays must not be cached (userVertexDist rule)
	}
	for i, u := range miss {
		cache.putArray(u, dvs[i])
	}
}

// refine is Algorithm 2 lines 29-31: exact filtering of the candidate sets
// and enumeration of the user-POI group pairs (S, R'(o_i)) to produce the
// actual GP-SSN answers. R is materialized as the road-network ball of
// radius r around each candidate anchor POI; S is found by branch-and-bound
// enumeration of connected τ-subsets containing u_q (or by the
// random-expansion sampling extension when Opts.SamplingRefine is set).
// It returns the best k results with distinct anchors, cheapest first.
//
// Anchors are independent given the shared incumbent, so they are fanned
// out over Opts.Parallelism workers pulling from the duq-sorted list. All
// pruning against the shared bound is strict (>), so candidates tying the
// bound survive, and ties are resolved by the keeper's canonical order —
// that is why any worker schedule returns identical answers (the
// determinism argument in docs/ALGORITHMS.md).
func (e *Engine) refine(uq socialnet.UserID, p Params, k int, tr traversal, probe probeResult, q *qctx) []Result {
	st := q.st
	ds := e.DS
	uqUser := ds.User(uq)

	// Exact user filtering (line 29): hop distance within τ-1 of u_q and
	// exact interest similarity >= γ.
	hops := ds.Social.BFSHopsBounded(uq, int32(p.Tau-1))
	var cand []socialnet.UserID
	for _, u := range tr.candUsers {
		if hops[u] == socialnet.Unreachable {
			st.SNObjPruned++
			st.SNObjPrunedDist++
			continue
		}
		if Similarity(p.Metric, uqUser.Interests, ds.Users[u].Interests) < p.Gamma {
			st.SNObjPruned++
			st.SNObjPrunedInterest++
			continue
		}
		cand = append(cand, u)
	}
	if e.Opts.UseCorollary2 && p.Metric == MetricDotProduct {
		cand = e.corollary2Filter(uq, p, cand, st)
	}
	st.CandUsers = len(cand)
	st.CandAnchors = len(tr.candAnchors)

	// Exact distances from u_q to every candidate anchor (one batched label
	// merge under a label oracle, one cached one-to-all otherwise); anchors
	// are then processed in ascending exact distance so the search can stop
	// as soon as the next anchor's lower bound meets the incumbent.
	distCache := probe.cache
	if distCache == nil {
		distCache = newVertexDistCache()
	}
	duqs := e.anchorDists(distCache, uq, tr.candAnchors, q.ck)
	type anchorCand struct {
		id  model.POIID
		duq float64
	}
	anchors := make([]anchorCand, 0, len(tr.candAnchors))
	for i, a := range tr.candAnchors {
		anchors = append(anchors, anchorCand{id: a, duq: duqs[i]})
	}
	sort.Slice(anchors, func(i, j int) bool {
		if anchors[i].duq != anchors[j].duq {
			return anchors[i].duq < anchors[j].duq
		}
		return anchors[i].id < anchors[j].id
	})

	keeper := newSharedKeeper(k)
	if probe.res.Found {
		keeper.add(probe.res) // feasible: a sound incumbent
	}
	var pairs atomic.Int64

	processAnchor := func(ac anchorCand, ar *refineArena) {
		ball, tl := e.anchorBall(ac.id, p.R, q.ck)
		// A trip during ball construction leaves a degenerate ball; cached
		// exact arrays could still price it finitely, so bail before any
		// result can be built on the wrong R set.
		if q.ck.Stopped() {
			return
		}
		kws := ballKeywords(ds, ball, ar)
		if MatchScoreSet(uqUser.Interests, kws) < p.Theta {
			return
		}
		// M(u) = max_{o in ball} dist_RN(u, o); the group cost is
		// max_{u in S} M(u). See makeMOf for the label-kernel and
		// bound-truncation strategies and their soundness.
		mOf := e.makeMOf(distCache, ball, tl, keeper, q.ck, ar)
		mUq := mOf(uq)
		// Strict comparison: a cost exactly equal to the bound may still
		// tie the k-th best and win the canonical tie-break, so it must
		// survive; +Inf (unreachable ball) never can.
		if math.IsInf(mUq, 1) || mUq > keeper.Bound() {
			return
		}
		// No incumbent yet (the probe failed): grow one greedy feasible
		// group on this anchor first, so every later distance computation
		// runs as a bounded Dijkstra instead of a full one. Sound — the
		// greedy result is feasible and the exact enumeration below still
		// sees this anchor, replacing the greedy entry with the anchor's
		// canonical best (so whether the seeding ran never shows in the
		// answer).
		if math.IsInf(keeper.Bound(), 1) && p.Tau > 1 {
			if S, cost, ok := e.greedyGroup(uq, p, ball, kws, mUq, mOf); ok && !math.IsInf(cost, 1) {
				keeper.add(Result{Found: true, S: sortedUsers(S), R: ball, Anchor: ac.id, MaxDist: cost})
			}
		}
		if p.Tau == 1 {
			pairs.Add(1)
			keeper.add(Result{Found: true, S: []socialnet.UserID{uq}, R: ball, Anchor: ac.id, MaxDist: mUq})
			return
		}

		// Eligible companions for this anchor: θ-match the ball and have a
		// useful group cost.
		var comps []anchorComp
		if ar != nil {
			comps = ar.compsBuf()
			defer func() { ar.keepComps(comps) }()
		}
		anchorRD := e.poiRDOf(ac.id)
		// Cheap feasibility count first: without tau-1 theta-matching
		// candidates the anchor is dead, no distance work needed.
		matching := 0
		for _, u := range cand {
			if MatchScoreSet(ds.Users[u].Interests, kws) >= p.Theta {
				matching++
			}
		}
		if matching < p.Tau-1 {
			return
		}
		// Fold the one-to-all sweeps the loop below is about to run solo
		// into one batched downward pass (no-op except on the unbudgeted
		// no-incumbent array path; see prefoldArrays for the parity rules).
		e.prefoldArrays(distCache, cand, kws, p.Theta, keeper, q.ck, ar)
		for _, u := range cand {
			if MatchScoreSet(ds.Users[u].Interests, kws) < p.Theta {
				continue
			}
			// Pivot lower bound of dist(u, anchor) before paying for the
			// exact per-user Dijkstra: M(u) >= dist(u, anchor). Gated off
			// once road edges have been appended — stored pivot rows then
			// overestimate and the "lower bound" could prune a true
			// companion (roadPivotSafe).
			if e.roadPivotSafe() && roadnet.LowerBound(e.userRDOf(u), anchorRD) > keeper.Bound() {
				continue
			}
			m := mOf(u)
			if math.IsInf(m, 1) || math.Max(m, mUq) > keeper.Bound() {
				continue
			}
			comps = append(comps, anchorComp{u: u, m: m})
		}
		if len(comps) < p.Tau-1 {
			return
		}
		sort.Slice(comps, func(i, j int) bool { return comps[i].m < comps[j].m })
		var users []socialnet.UserID
		if ar != nil {
			users = ar.userBuf(len(comps))
		} else {
			users = make([]socialnet.UserID, len(comps))
		}
		mv := map[socialnet.UserID]float64{uq: mUq}
		for i, c := range comps {
			users[i] = c.u
			mv[c.u] = c.m
		}
		// Sound necessary condition before the exponential search: u_q
		// must reach at least τ-1 eligible companions through eligible
		// users (pairwise-γ can only shrink that set further).
		if !reachableEnough(ds, uq, users, p.Tau) {
			return
		}

		var S []socialnet.UserID
		var cost float64
		if e.Opts.SamplingRefine {
			S, cost = e.sampleGroups(uq, p, users, mv, keeper.Bound(), &pairs, q.ck)
		} else {
			S, cost = e.enumerateGroups(uq, p, users, mv, keeper.Bound(), &pairs, q.ck)
		}
		if S != nil {
			keeper.add(Result{Found: true, S: S, R: ball, Anchor: ac.id, MaxDist: cost})
		}
	}

	// Fan the duq-sorted anchors over the worker pool. Workers pull the
	// next anchor through an atomic index; a worker stops pulling once the
	// next anchor's duq exceeds the bound — duq lower-bounds the group
	// cost (the anchor is in its own ball) and later anchors are farther
	// still, so nothing those anchors could produce survives the keeper.
	par := e.Opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(anchors) {
		par = len(anchors)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A panic on a worker goroutine would kill the process no
			// matter what the caller recovers; capture it instead and
			// re-raise it on the calling goroutine after wg.Wait.
			defer q.capturePanic()
			ar := e.acquireArena()
			defer e.releaseArena(ar)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(anchors) {
					return
				}
				ac := anchors[i]
				if math.IsInf(ac.duq, 1) || ac.duq > keeper.Bound() {
					return
				}
				// Per-work-item cancellation/budget check: every worker
				// stops claiming anchors once the checkpoint trips, so the
				// whole pool drains within one anchor's work. A budget trip
				// is already recorded on the checkpoint; the anchor cap is
				// noted here, and only for an anchor that would otherwise
				// have been processed (the duq guard above ran first).
				if q.ck.Stopped() {
					return
				}
				if q.maxAnchors > 0 && i >= q.maxAnchors {
					q.noteTruncated()
					return
				}
				// Deterministic invariant-panic injection for the
				// robustness matrix: proves worker panics surface as a
				// typed error at the facade, never a process crash.
				if _, ok := failpoint.Eval("core.refine.panic"); ok {
					panic("core: failpoint-injected refinement panic")
				}
				processAnchor(ac, ar)
			}
		}()
	}
	wg.Wait()
	q.rethrow()

	st.PairsEvaluated = pairs.Load()
	items := keeper.rk.items
	for i := range items {
		sort.Slice(items[i].S, func(a, b int) bool { return items[i].S[a] < items[i].S[b] })
		sort.Slice(items[i].R, func(a, b int) bool { return items[i].R[a] < items[i].R[b] })
	}
	return items
}

// mFromVertexDist evaluates M(u) from a full per-user vertex distance
// array.
func mFromVertexDist(e *Engine, u socialnet.UserID, ball []model.POIID, dv []float64) float64 {
	ds := e.DS
	m := 0.0
	for _, o := range ball {
		d := e.attachDistVia(ds.POIs[o].At, dv)
		if ds.Users[u].At.Edge == ds.POIs[o].At.Edge {
			edge := ds.Road.EdgeAt(ds.Users[u].At.Edge)
			if direct := math.Abs(ds.Users[u].At.T-ds.POIs[o].At.T) * edge.Weight; direct < d {
				d = direct
			}
		}
		if d > m {
			m = d
		}
	}
	return m
}

// reachableEnough reports whether at least need-1 of the eligible users
// are in u_q's connected component of the eligible-induced subgraph.
func reachableEnough(ds *model.Dataset, uq socialnet.UserID, eligible []socialnet.UserID, need int) bool {
	if need <= 1 {
		return true
	}
	in := make(map[socialnet.UserID]bool, len(eligible)+1)
	for _, u := range eligible {
		in[u] = true
	}
	in[uq] = true
	seen := map[socialnet.UserID]bool{uq: true}
	stack := []socialnet.UserID{uq}
	count := 0
	for len(stack) > 0 && count < need-1 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range ds.Social.Friends(u) {
			if in[v] && !seen[v] {
				seen[v] = true
				count++
				if count >= need-1 {
					return true
				}
				stack = append(stack, v)
			}
		}
	}
	return count >= need-1
}

// greedyGroup grows one feasible connected τ-group from u_q on the given
// ball, picking the cheapest eligible friend at each step (the same greedy
// the probe uses, against an arbitrary anchor). Returns ok=false when no
// group completes within the evaluation cap.
func (e *Engine) greedyGroup(uq socialnet.UserID, p Params, ball []model.POIID, kws TopicSet, mUq float64, mOf func(socialnet.UserID) float64) ([]socialnet.UserID, float64, bool) {
	ds := e.DS
	cur := []socialnet.UserID{uq}
	inCur := map[socialnet.UserID]bool{uq: true}
	curMax := mUq
	evals := 0
	for len(cur) < p.Tau {
		var bestU socialnet.UserID = -1
		bestM := math.Inf(1)
		checked := 0
		for _, u := range cur {
			for _, v := range ds.Social.Friends(u) {
				if inCur[v] || checked >= 16 {
					continue
				}
				compatible := true
				for _, w := range cur {
					if Similarity(p.Metric, ds.Users[w].Interests, ds.Users[v].Interests) < p.Gamma {
						compatible = false
						break
					}
				}
				if !compatible || MatchScoreSet(ds.Users[v].Interests, kws) < p.Theta {
					continue
				}
				checked++
				evals++
				if m := mOf(v); m < bestM {
					bestM, bestU = m, v
				}
			}
		}
		if bestU < 0 || evals > 16*p.Tau {
			return nil, 0, false
		}
		cur = append(cur, bestU)
		inCur[bestU] = true
		if bestM > curMax {
			curMax = bestM
		}
	}
	return cur, curMax, true
}

// corollary2Filter applies Corollary 2: a candidate u_k lying in the
// pruning regions of at least |S'|-τ+1 other candidates cannot belong to
// any feasible group and is dropped. The pass iterates until fixpoint,
// since removals shrink S'.
func (e *Engine) corollary2Filter(uq socialnet.UserID, p Params, cand []socialnet.UserID, st *Stats) []socialnet.UserID {
	ds := e.DS
	for {
		// S' = {u_q} ∪ cand.
		sPrime := len(cand) + 1
		threshold := sPrime - p.Tau + 1
		if threshold <= 0 {
			return cand
		}
		var kept []socialnet.UserID
		removed := false
		for _, uk := range cand {
			wk := ds.Users[uk].Interests
			inRegions := 0
			// Regions of the query user and of every other candidate.
			if InterestScore(ds.Users[uq].Interests, wk) < p.Gamma {
				inRegions++
			}
			for _, ul := range cand {
				if ul == uk {
					continue
				}
				if InterestScore(ds.Users[ul].Interests, wk) < p.Gamma {
					inRegions++
				}
			}
			if inRegions >= threshold {
				st.SNObjPruned++
				st.SNObjPrunedInterest++
				removed = true
				continue
			}
			kept = append(kept, uk)
		}
		cand = kept
		if !removed {
			return cand
		}
	}
}

// ballAround returns the POIs within road distance radius of the anchor
// (always including the anchor itself). With a tripped checkpoint the
// checked distance batch reports +Inf for everything, so the ball
// degenerates to {anchor} — harmless, because a cancelled query errors out
// and a budget-tripped one can no longer admit results (every M(u) on the
// degenerate ball that involves a road search is +Inf too).
func (e *Engine) ballAround(anchor model.POIID, radius float64, ck *roadnet.Checkpoint) []model.POIID {
	ds := e.DS
	pre := e.Road.EuclidBall(ds.POIs[anchor].Loc, radius)
	pre = append(pre, e.deltaBallMembers(anchor, radius)...)
	atts := make([]roadnet.Attach, len(pre))
	for i, id := range pre {
		atts[i] = ds.POIs[id].At
	}
	dists := ds.Road.DistAttachWithinCk(ds.POIs[anchor].At, radius, atts, ck)
	var ball []model.POIID
	seenAnchor := false
	for i, id := range pre {
		if !math.IsInf(dists[i], 1) {
			ball = append(ball, id)
			if id == anchor {
				seenAnchor = true
			}
		}
	}
	if !seenAnchor {
		ball = append(ball, anchor)
	}
	return ball
}

// anchorDists computes exact dist_RN(u_q, anchor) for every candidate
// anchor. Under a label oracle this is one batched merge of u_q's pooled
// attachment label against the anchors' prepared target labels — no O(V)
// array is ever materialized; otherwise it reads a cached one-to-all array.
// Both paths apply the same-edge direct route, so the value is the true
// network distance and hence a sound lower bound on any group cost the
// anchor can produce (the anchor is in its own ball).
func (e *Engine) anchorDists(cache *vertexDistCache, uq socialnet.UserID, anchors []model.POIID, ck *roadnet.Checkpoint) []float64 {
	ds := e.DS
	atts := make([]roadnet.Attach, len(anchors))
	for i, a := range anchors {
		atts[i] = ds.POIs[a].At
	}
	out := make([]float64, len(anchors))
	if tl := ds.Road.PrepareTargetLabels(atts); tl != nil {
		lbl, pooled := e.userLabelWith(cache, uq, nil)
		ds.Road.LabelDistsCk(lbl, ds.Users[uq].At, tl, math.Inf(1), out, ck)
		if pooled {
			roadnet.ReleaseLabel(lbl)
		}
		return out
	}
	uqDist, ok := cache.getArray(uq)
	if !ok {
		uqDist = e.userArray(cache, uq, ck)
		if ck.Stopped() {
			for i := range out {
				out[i] = math.Inf(1)
			}
			return out
		}
	}
	uqAt := ds.Users[uq].At
	for i, at := range atts {
		d := e.attachDistVia(at, uqDist)
		if uqAt.Edge == at.Edge {
			edge := ds.Road.EdgeAt(at.Edge)
			if direct := math.Abs(uqAt.T-at.T) * edge.Weight; direct < d {
				d = direct
			}
		}
		out[i] = d
	}
	return out
}

// userVertexDist returns exact road distances from the user's home to every
// vertex (one Dijkstra). With a tripped checkpoint the result is all-+Inf
// and must not be cached.
func (e *Engine) userVertexDist(u socialnet.UserID, ck *roadnet.Checkpoint) []float64 {
	at := e.DS.Users[u].At
	edge := e.DS.Road.EdgeAt(at.Edge)
	return e.DS.Road.DijkstraMultiCk([]roadnet.Seed{
		{Vertex: edge.U, Dist: at.T * edge.Weight},
		{Vertex: edge.V, Dist: (1 - at.T) * edge.Weight},
	}, ck)
}

// attachDistVia evaluates dist_RN from the Dijkstra source to an attachment
// through its edge endpoints.
func (e *Engine) attachDistVia(at roadnet.Attach, dist []float64) float64 {
	return e.DS.Road.DistToVertexVia(at, dist)
}

// enumerateGroups finds the connected τ-subset S containing u_q with
// pairwise similarity >= γ minimizing max M(u), by ESU-style enumeration of
// connected induced subgraphs with branch-and-bound on the incumbent. It
// returns (nil, +Inf) when no feasible group has cost <= bound. All
// pruning is strict and equal-cost groups are tie-broken to the
// lexicographically smallest sorted S, so the returned group is the
// anchor's canonical optimum — independent of the bound snapshot the
// caller passed (as long as it is >= the optimum) and hence of worker
// timing. The group is returned sorted.
func (e *Engine) enumerateGroups(uq socialnet.UserID, p Params, users []socialnet.UserID, mv map[socialnet.UserID]float64, bound float64, pairs *atomic.Int64, ck *roadnet.Checkpoint) ([]socialnet.UserID, float64) {
	ds := e.DS
	eligible := make(map[socialnet.UserID]bool, len(users)+1)
	for _, u := range users {
		eligible[u] = true
	}
	eligible[uq] = true

	bestCost := bound
	var bestS []socialnet.UserID

	// neighbors restricted to eligible users, sorted by M ascending so the
	// cheapest extensions come first.
	nbrs := func(u socialnet.UserID) []socialnet.UserID {
		var out []socialnet.UserID
		for _, v := range ds.Social.Friends(u) {
			if eligible[v] {
				out = append(out, v)
			}
		}
		sort.Slice(out, func(i, j int) bool { return mv[out[i]] < mv[out[j]] })
		return out
	}

	cur := []socialnet.UserID{uq}
	curMax := mv[uq]
	expansions := 0

	var rec func(ext []socialnet.UserID, forbidden map[socialnet.UserID]bool)
	rec = func(ext []socialnet.UserID, forbidden map[socialnet.UserID]bool) {
		if e.Opts.RefineBudget > 0 && expansions > e.Opts.RefineBudget {
			return // budget exhausted: keep the best found so far
		}
		// Cancellation poll every 256 expansions: the enumeration is pure
		// CPU (no road searches), so without this a dense social ball could
		// delay a cancel by seconds. The partial best is discarded anyway —
		// a cancelled query returns an error, not a result.
		if expansions&255 == 0 && ck.Cancelled() {
			return
		}
		expansions++
		if curMax > bestCost {
			return // strictly worse than the incumbent: no extension helps
		}
		if len(cur) == p.Tau {
			pairs.Add(1)
			if !math.IsInf(curMax, 1) {
				if curMax < bestCost {
					bestCost = curMax
					bestS = sortedUsers(cur)
				} else if curMax == bestCost {
					// Equal-cost tie: keep the canonical (lex-smallest
					// sorted) group so the choice is order-independent.
					if s := sortedUsers(cur); bestS == nil || lexLessUsers(s, bestS) {
						bestS = s
					}
				}
			}
			return
		}
		localForbidden := map[socialnet.UserID]bool{}
		for i, v := range ext {
			if mv[v] > bestCost {
				// Any group containing v costs at least mv[v]; exclude it
				// from this whole subtree.
				localForbidden[v] = true
				continue
			}
			// Pairwise similarity with everything already chosen.
			ok := true
			for _, u := range cur {
				if Similarity(p.Metric, ds.Users[u].Interests, ds.Users[v].Interests) < p.Gamma {
					ok = false
					break
				}
			}
			if !ok {
				localForbidden[v] = true
				continue
			}
			// Extend.
			oldMax := curMax
			cur = append(cur, v)
			if mv[v] > curMax {
				curMax = mv[v]
			}
			// New extension: remaining ext plus v's eligible neighbours not
			// already excluded, in cur, or in ext.
			inExt := map[socialnet.UserID]bool{}
			var newExt []socialnet.UserID
			for _, w := range ext[i+1:] {
				if !localForbidden[w] && !forbidden[w] {
					newExt = append(newExt, w)
					inExt[w] = true
				}
			}
			inCur := map[socialnet.UserID]bool{}
			for _, u := range cur {
				inCur[u] = true
			}
			for _, w := range nbrs(v) {
				if !inCur[w] && !inExt[w] && !forbidden[w] && !localForbidden[w] && !containsUserBefore(ext, i, w) {
					newExt = append(newExt, w)
					inExt[w] = true
				}
			}
			sort.Slice(newExt, func(a, b int) bool { return mv[newExt[a]] < mv[newExt[b]] })
			rec(newExt, mergeForbidden(forbidden, localForbidden))
			cur = cur[:len(cur)-1]
			curMax = oldMax
			localForbidden[v] = true
		}
	}
	rec(nbrs(uq), map[socialnet.UserID]bool{})
	if bestS == nil {
		return nil, math.Inf(1)
	}
	return bestS, bestCost
}

func containsUserBefore(ext []socialnet.UserID, i int, w socialnet.UserID) bool {
	for _, u := range ext[:i+1] {
		if u == w {
			return true
		}
	}
	return false
}

func mergeForbidden(a, b map[socialnet.UserID]bool) map[socialnet.UserID]bool {
	if len(b) == 0 {
		return a
	}
	out := make(map[socialnet.UserID]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

// sampleGroups is the random-expansion subset sampling the paper sketches
// as future work: grow SampleCount random connected groups from u_q and
// keep the best feasible one. Approximate. The rng is seeded from (uq, τ)
// only and ties are tie-broken canonically, so the trial sequence and the
// returned group do not depend on which worker runs the anchor. The group
// is returned sorted.
func (e *Engine) sampleGroups(uq socialnet.UserID, p Params, users []socialnet.UserID, mv map[socialnet.UserID]float64, bound float64, pairs *atomic.Int64, ck *roadnet.Checkpoint) ([]socialnet.UserID, float64) {
	ds := e.DS
	eligible := make(map[socialnet.UserID]bool, len(users)+1)
	for _, u := range users {
		eligible[u] = true
	}
	eligible[uq] = true
	rng := rand.New(rand.NewSource(int64(uq)*1000003 + int64(p.Tau)))

	bestCost := bound
	var bestS []socialnet.UserID
	for trial := 0; trial < e.Opts.SampleCount; trial++ {
		if ck.Cancelled() {
			break
		}
		cur := []socialnet.UserID{uq}
		inCur := map[socialnet.UserID]bool{uq: true}
		curMax := mv[uq]
		for len(cur) < p.Tau {
			// Random eligible, compatible neighbour of the current set.
			var frontier []socialnet.UserID
			for _, u := range cur {
				for _, v := range ds.Social.Friends(u) {
					if !eligible[v] || inCur[v] {
						continue
					}
					compatible := true
					for _, w := range cur {
						if Similarity(p.Metric, ds.Users[w].Interests, ds.Users[v].Interests) < p.Gamma {
							compatible = false
							break
						}
					}
					if compatible {
						frontier = append(frontier, v)
					}
				}
			}
			if len(frontier) == 0 {
				break
			}
			v := frontier[rng.Intn(len(frontier))]
			cur = append(cur, v)
			inCur[v] = true
			if mv[v] > curMax {
				curMax = mv[v]
			}
		}
		if len(cur) == p.Tau {
			pairs.Add(1)
			if !math.IsInf(curMax, 1) {
				if curMax < bestCost {
					bestCost = curMax
					bestS = sortedUsers(cur)
				} else if curMax == bestCost {
					if s := sortedUsers(cur); bestS == nil || lexLessUsers(s, bestS) {
						bestS = s
					}
				}
			}
		}
	}
	if bestS == nil {
		return nil, math.Inf(1)
	}
	return bestS, bestCost
}
