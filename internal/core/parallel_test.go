package core

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"gpssn/internal/socialnet"
)

// oracleParams is the parameter grid shared by the parallel-refinement
// tests: small enough for the brute-force oracle, varied enough to cover
// tau=1, loose and tight thresholds.
var oracleParams = []Params{
	{Gamma: 0.2, Tau: 2, Theta: 0.3, R: 2, Metric: MetricDotProduct},
	{Gamma: 0.3, Tau: 3, Theta: 0.5, R: 2, Metric: MetricDotProduct},
	{Gamma: 0.1, Tau: 3, Theta: 0.2, R: 1, Metric: MetricDotProduct},
	{Gamma: 0.9, Tau: 1, Theta: 0.1, R: 2, Metric: MetricDotProduct},
}

// TestParallelRefinementMatchesOracle pins the headline determinism claim:
// the engine returns the exact optimal cost at Parallelism 1 and 8, and
// the two settings return byte-identical answers (not merely equal-cost
// ones), per the canonical total order documented in docs/ALGORITHMS.md.
func TestParallelRefinementMatchesOracle(t *testing.T) {
	for seed := int64(21); seed <= 23; seed++ {
		ds := smallDataset(t, seed)
		seq := buildEngine(t, ds, Options{Parallelism: 1})
		par := buildEngine(t, ds, Options{Parallelism: 8})
		oracle := &Baseline{DS: ds}
		for pi, p := range oracleParams {
			for _, uq := range []socialnet.UserID{0, 13, 41} {
				a, _, err := seq.Query(uq, p)
				if err != nil {
					t.Fatalf("seed %d params %d uq %d seq: %v", seed, pi, uq, err)
				}
				b, _, err := par.Query(uq, p)
				if err != nil {
					t.Fatalf("seed %d params %d uq %d par: %v", seed, pi, uq, err)
				}
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("seed %d params %d uq %d: parallelism changed the answer:\n  P=1: %+v\n  P=8: %+v",
						seed, pi, uq, a, b)
				}
				want, _ := oracle.Query(uq, p)
				if a.Found != want.Found {
					t.Fatalf("seed %d params %d uq %d: found=%v oracle=%v",
						seed, pi, uq, a.Found, want.Found)
				}
				if a.Found {
					if math.Abs(a.MaxDist-want.MaxDist) > 1e-6 {
						t.Fatalf("seed %d params %d uq %d: cost %v != oracle %v",
							seed, pi, uq, a.MaxDist, want.MaxDist)
					}
					checkFeasible(t, ds, uq, p, a)
				}
			}
		}
	}
}

// TestParallelTopKDeterministic extends the determinism check to top-k:
// the full ranked result lists must be deep-equal across parallelism
// settings, including per-result S and R contents.
func TestParallelTopKDeterministic(t *testing.T) {
	ds := smallDataset(t, 24)
	seq := buildEngine(t, ds, Options{Parallelism: 1})
	par := buildEngine(t, ds, Options{Parallelism: 8})
	p := Params{Gamma: 0.2, Tau: 3, Theta: 0.3, R: 2, Metric: MetricDotProduct}
	for _, uq := range []socialnet.UserID{3, 28} {
		for _, k := range []int{1, 3, 5} {
			a, _, err := seq.QueryTopK(uq, p, k)
			if err != nil {
				t.Fatal(err)
			}
			b, _, err := par.QueryTopK(uq, p, k)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("uq %d k %d: top-k differs across parallelism:\n  P=1: %+v\n  P=8: %+v", uq, k, a, b)
			}
		}
	}
}

// TestConcurrentQueriesIsolateStats is the regression test for the Stats
// aggregation fix: two queries running interleaved on one engine must each
// report exactly the page reads they report when run back to back. Before
// per-query trackers, concurrent queries shared one LRU pool and one
// counter set, so interleaving corrupted both numbers.
func TestConcurrentQueriesIsolateStats(t *testing.T) {
	ds := smallDataset(t, 25)
	e := buildEngine(t, ds, Options{})
	pA := Params{Gamma: 0.2, Tau: 2, Theta: 0.3, R: 2, Metric: MetricDotProduct}
	pB := Params{Gamma: 0.3, Tau: 3, Theta: 0.4, R: 1.5, Metric: MetricDotProduct}

	resA, seqA, err := e.Query(1, pA)
	if err != nil {
		t.Fatal(err)
	}
	resB, seqB, err := e.Query(9, pB)
	if err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 8; round++ {
		var wg sync.WaitGroup
		var gotA, gotB Result
		var stA, stB Stats
		var errA, errB error
		wg.Add(2)
		go func() { defer wg.Done(); gotA, stA, errA = e.Query(1, pA) }()
		go func() { defer wg.Done(); gotB, stB, errB = e.Query(9, pB) }()
		wg.Wait()
		if errA != nil || errB != nil {
			t.Fatalf("round %d: %v / %v", round, errA, errB)
		}
		if !reflect.DeepEqual(gotA, resA) || !reflect.DeepEqual(gotB, resB) {
			t.Fatalf("round %d: concurrent answers differ from sequential", round)
		}
		if stA.PageReads != seqA.PageReads {
			t.Fatalf("round %d: query A reports %d page reads interleaved, %d sequential",
				round, stA.PageReads, seqA.PageReads)
		}
		if stB.PageReads != seqB.PageReads {
			t.Fatalf("round %d: query B reports %d page reads interleaved, %d sequential",
				round, stB.PageReads, seqB.PageReads)
		}
	}
}

// TestConcurrentEngineStress hammers one engine from many goroutines with
// a mix of Query and QueryTopK. Answers must match the ones computed
// sequentially up front. Run under -race this doubles as the engine-level
// data-race check.
func TestConcurrentEngineStress(t *testing.T) {
	ds := smallDataset(t, 26)
	e := buildEngine(t, ds, Options{})
	users := []socialnet.UserID{0, 5, 11, 23, 37, 52}
	want := make([]Result, len(users))
	wantK := make([][]Result, len(users))
	p := Params{Gamma: 0.2, Tau: 2, Theta: 0.3, R: 2, Metric: MetricDotProduct}
	for i, uq := range users {
		r, _, err := e.Query(uq, p)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
		rk, _, err := e.QueryTopK(uq, p, 3)
		if err != nil {
			t.Fatal(err)
		}
		wantK[i] = rk
	}

	const goroutines = 8
	const iters = 10
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (g + it) % len(users)
				if it%2 == 0 {
					r, _, err := e.Query(users[i], p)
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(r, want[i]) {
						t.Errorf("goroutine %d iter %d: Query(%d) diverged", g, it, users[i])
						return
					}
				} else {
					rk, _, err := e.QueryTopK(users[i], p, 3)
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(rk, wantK[i]) {
						t.Errorf("goroutine %d iter %d: QueryTopK(%d) diverged", g, it, users[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
