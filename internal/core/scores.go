package core

import (
	"fmt"
	"math"

	"gpssn/internal/model"
)

// InterestScore returns the common-interest score of Eq. (1):
//
//	Interest_Score(u_j, u_k) = Σ_l w_l^(j).p · w_l^(k).p,
//
// the dot product of the two interest vectors.
func InterestScore(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("core: interest vector length mismatch %d != %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// MatchScoreSet returns the matching score of Eq. (2) against a keyword
// union represented as a TopicSet:
//
//	Match_Score(u_j, R) = Σ_l w_l^(j).p · χ(w_l^(j) ∈ ∪_{o∈R} o.K).
func MatchScoreSet(interests []float64, kws TopicSet) float64 {
	if len(interests) != kws.Vocabulary() {
		panic(fmt.Sprintf("core: interests length %d != vocabulary %d", len(interests), kws.Vocabulary()))
	}
	s := 0.0
	for f, p := range interests {
		if p != 0 && kws.Has(f) {
			s += p
		}
	}
	return s
}

// KeywordUnion returns the TopicSet ∪_{o∈R} o.K over the given POIs.
func KeywordUnion(d int, pois []*model.POI) TopicSet {
	ts := NewTopicSet(d)
	for _, p := range pois {
		for _, k := range p.Keywords {
			ts.Add(k)
		}
	}
	return ts
}

// MatchScore returns Match_Score(u, R) for a user and a POI set.
func MatchScore(u *model.User, pois []*model.POI, d int) float64 {
	return MatchScoreSet(u.Interests, KeywordUnion(d, pois))
}

// VecNorm2 returns ||w||², the squared length of an interest vector.
func VecNorm2(w []float64) float64 {
	s := 0.0
	for _, v := range w {
		s += v * v
	}
	return s
}

// PruneRegion is the user pruning region PR(u_j) of Section 3.2: the
// halfplane of interest vectors w with Interest_Score(u_j, w) < γ, which
// can be pruned safely (Lemma 3 / Corollary 1). The region is materialized
// the way the paper constructs it, through the point B = u_j.w and its
// mirror B' across the separating hyperplane, so that membership is a
// distance comparison between w and the pair (B, B'):
//
//	Case 1 (||B||² ≥ γ):  prune w iff dist(w, B') < dist(w, B)
//	Case 2 (||B||² < γ):  prune w iff dist(w, B') > dist(w, B)
//
// with B'[i] = B[i] · (2γ − ||B||²) / ||B||². Both cases are equivalent to
// the direct test Interest_Score(B, w) < γ; the distance form is what the
// index evaluates against node MBRs.
type PruneRegion struct {
	gamma float64
	b     []float64
	bp    []float64
	norm2 float64
	case1 bool
}

// NewPruneRegion builds PR(anchor) for the given interest vector and
// threshold γ. A zero anchor vector makes every score zero; the region then
// covers everything when γ > 0 and nothing otherwise.
func NewPruneRegion(anchor []float64, gamma float64) *PruneRegion {
	b := append([]float64(nil), anchor...)
	n2 := VecNorm2(b)
	pr := &PruneRegion{gamma: gamma, b: b, norm2: n2, case1: n2 >= gamma}
	if n2 > 0 {
		scale := (2*gamma - n2) / n2
		pr.bp = make([]float64, len(b))
		for i := range b {
			pr.bp[i] = b[i] * scale
		}
	}
	return pr
}

// Gamma returns the region's interest threshold.
func (pr *PruneRegion) Gamma() float64 { return pr.gamma }

// Contains reports whether w falls in the pruning region, i.e. whether a
// user with interest vector w can be pruned with respect to the anchor
// (Corollary 1). Implemented with the paper's B/B' distance comparison.
func (pr *PruneRegion) Contains(w []float64) bool {
	if len(w) != len(pr.b) {
		panic(fmt.Sprintf("core: vector length mismatch %d != %d", len(w), len(pr.b)))
	}
	if pr.norm2 == 0 {
		return pr.gamma > 0 // all scores are 0
	}
	dB := dist2(w, pr.b)
	dBp := dist2(w, pr.bp)
	if pr.case1 {
		return dBp < dB
	}
	return dBp > dB
}

// ContainsScore is the direct algebraic form of Contains: the score test
// Interest_Score(anchor, w) < γ. Contains and ContainsScore agree except
// exactly on the hyperplane (score == γ), where neither prunes.
func (pr *PruneRegion) ContainsScore(w []float64) bool {
	return InterestScore(pr.b, w) < pr.gamma
}

// ContainsMBR reports whether the whole interest MBR [lb, ub] lies in the
// pruning region, i.e. every vector in the box has score < γ (Lemma 8).
// Because the anchor has non-negative entries, the maximum score over the
// box is attained at ub, so the test reduces to Score(anchor, ub) < γ.
// This corresponds to the paper's maxdist/mindist comparison between the
// node MBR e_S.w and the points B, B'.
func (pr *PruneRegion) ContainsMBR(lb, ub []float64) bool {
	if len(ub) != len(pr.b) || len(lb) != len(pr.b) {
		panic("core: MBR dimensionality mismatch")
	}
	s := 0.0
	for i, bi := range pr.b {
		if bi >= 0 {
			s += bi * ub[i]
		} else {
			s += bi * lb[i] // defensive: anchors are non-negative in GP-SSN
		}
	}
	return s < pr.gamma
}

func dist2(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// InterestMetric selects how user similarity is computed. DotProduct is the
// paper's Eq. (1); Jaccard and Hamming are the extensions the paper leaves
// as future work (supported by threshold checks in refinement; the pruning
// region applies to DotProduct only).
type InterestMetric int

const (
	// MetricDotProduct is Eq. (1), the default.
	MetricDotProduct InterestMetric = iota
	// MetricJaccard treats interests as weighted sets:
	// Σ min(a,b) / Σ max(a,b).
	MetricJaccard
	// MetricHamming is 1 − (normalized Hamming distance) over interest
	// supports: the fraction of topics on which both vectors agree about
	// being interested (p > 0) or not.
	MetricHamming
)

// String implements fmt.Stringer.
func (m InterestMetric) String() string {
	switch m {
	case MetricDotProduct:
		return "dot"
	case MetricJaccard:
		return "jaccard"
	case MetricHamming:
		return "hamming"
	default:
		return fmt.Sprintf("InterestMetric(%d)", int(m))
	}
}

// Similarity computes the selected metric between two interest vectors.
func Similarity(m InterestMetric, a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("core: interest vector length mismatch %d != %d", len(a), len(b)))
	}
	switch m {
	case MetricDotProduct:
		return InterestScore(a, b)
	case MetricJaccard:
		num, den := 0.0, 0.0
		for i := range a {
			num += math.Min(a[i], b[i])
			den += math.Max(a[i], b[i])
		}
		if den == 0 {
			return 1 // two empty interest profiles are identical
		}
		return num / den
	case MetricHamming:
		agree := 0
		for i := range a {
			if (a[i] > 0) == (b[i] > 0) {
				agree++
			}
		}
		return float64(agree) / float64(len(a))
	default:
		panic(fmt.Sprintf("core: unknown interest metric %d", int(m)))
	}
}

// SimilarityUpperBound returns an upper bound of the metric between the
// anchor and any vector in the interest MBR [lb, ub]; used for index-level
// pruning under the non-default metrics.
func SimilarityUpperBound(m InterestMetric, anchor, lb, ub []float64) float64 {
	switch m {
	case MetricDotProduct:
		s := 0.0
		for i := range anchor {
			s += anchor[i] * ub[i]
		}
		return s
	case MetricJaccard:
		// num maximized at min(anchor, ub); den minimized at
		// max(anchor, lb).
		num, den := 0.0, 0.0
		for i := range anchor {
			num += math.Min(anchor[i], ub[i])
			den += math.Max(anchor[i], lb[i])
		}
		if den == 0 {
			return 1
		}
		return num / den
	case MetricHamming:
		agree := 0
		for i := range anchor {
			// A vector in the box can agree with the anchor on topic i
			// unless the box forces disagreement.
			if anchor[i] > 0 {
				if ub[i] > 0 {
					agree++
				}
			} else {
				if lb[i] == 0 {
					agree++
				}
			}
		}
		return float64(agree) / float64(len(anchor))
	default:
		panic(fmt.Sprintf("core: unknown interest metric %d", int(m)))
	}
}
