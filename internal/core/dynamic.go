package core

import (
	"fmt"

	"gpssn/internal/geo"
	"gpssn/internal/model"
	"gpssn/internal/roadnet"
	"gpssn/internal/socialnet"
)

// Dynamic updates use the classic main+delta design: the indexes cover the
// dataset as it was at engine construction; objects appended later form a
// small delta that queries scan exactly (no pruning, which is trivially
// sound). Friendship edges added between already-indexed users would make
// the stored hop-pivot bounds overestimate (new edges only shorten
// distances), so both endpoints are marked "touched" and excluded from
// pivot-based social pruning. Compact (rebuild the indexes over the grown
// dataset) restores full pruning power; the facade exposes it.

// dynamicState tracks the delta boundaries; zero value = no delta.
type dynamicState struct {
	indexedUsers int
	indexedPOIs  int
	touched      map[socialnet.UserID]bool
	roadVerts    int // road vertices appended since construction
	roadEdges    int // road edges appended since construction
}

// initDynamic records the indexed prefix sizes at engine construction.
func (e *Engine) initDynamic() {
	e.dyn = dynamicState{
		indexedUsers: len(e.DS.Users),
		indexedPOIs:  len(e.DS.POIs),
		touched:      map[socialnet.UserID]bool{},
	}
}

// PendingUpdates returns how many delta objects await compaction.
func (e *Engine) PendingUpdates() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return (len(e.DS.Users) - e.dyn.indexedUsers) +
		(len(e.DS.POIs) - e.dyn.indexedPOIs) +
		len(e.dyn.touched) +
		e.dyn.roadVerts + e.dyn.roadEdges
}

// AddPOI appends a POI to the dataset; it becomes queryable immediately
// through the delta scan.
func (e *Engine) AddPOI(p model.POI) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if int(p.ID) != len(e.DS.POIs) {
		return fmt.Errorf("core: new POI id %d must be %d", p.ID, len(e.DS.POIs))
	}
	if len(p.Keywords) == 0 {
		return fmt.Errorf("core: POI needs at least one keyword")
	}
	for _, k := range p.Keywords {
		if k < 0 || k >= e.DS.NumTopics {
			return fmt.Errorf("core: keyword %d outside vocabulary [0,%d)", k, e.DS.NumTopics)
		}
	}
	e.DS.POIs = append(e.DS.POIs, p)
	// Selective shared-work invalidation: only balls the new POI could
	// have joined. AddUser/AddFriendship leave the memo alone (balls are
	// POI-only; sweep state is per-user and immutable) — the
	// per-update-kind discipline from docs/CONCURRENCY.md §6.
	e.shared.noteAddPOI(p.Loc)
	return nil
}

// AddUser appends a user (with no friendships yet).
func (e *Engine) AddUser(u model.User) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if int(u.ID) != len(e.DS.Users) {
		return fmt.Errorf("core: new user id %d must be %d", u.ID, len(e.DS.Users))
	}
	if len(u.Interests) != e.DS.NumTopics {
		return fmt.Errorf("core: interest vector length %d, want %d", len(u.Interests), e.DS.NumTopics)
	}
	for _, p := range u.Interests {
		// The negated form also rejects NaN, which would otherwise slip
		// through both comparisons and poison interest-score pruning.
		if !(p >= 0 && p <= 1) {
			return fmt.Errorf("core: interest %v outside [0,1]", p)
		}
	}
	e.DS.Users = append(e.DS.Users, u)
	if got := e.DS.Social.AddUser(); got != u.ID {
		return fmt.Errorf("core: social graph id %d diverged from dataset id %d", got, u.ID)
	}
	return nil
}

// AddFriendship adds an edge; indexed endpoints lose pivot-based social
// pruning until the next compaction (their stored hop bounds may now
// overestimate). The bool reports whether the graph actually changed: a
// duplicate edge is a no-op and leaves the pruning state — and therefore
// every cached answer — untouched, so callers can skip invalidation.
func (e *Engine) AddFriendship(a, b socialnet.UserID) (bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := e.DS.Social.NumUsers()
	if a < 0 || int(a) >= n || b < 0 || int(b) >= n {
		return false, fmt.Errorf("core: friendship %d-%d out of range [0,%d)", a, b, n)
	}
	if a == b {
		return false, fmt.Errorf("core: self-friendship at %d", a)
	}
	if !e.DS.Social.AddFriendship(a, b) {
		return false, nil
	}
	if int(a) < e.dyn.indexedUsers {
		e.dyn.touched[a] = true
	}
	if int(b) < e.dyn.indexedUsers {
		e.dyn.touched[b] = true
	}
	return true, nil
}

// AddRoadVertex appends an isolated road intersection. It cannot change
// any distance (no incident edges yet), so no pruning state, memo entry,
// or cached answer is invalidated — the cheapest possible update.
func (e *Engine) AddRoadVertex(p geo.Point) (roadnet.VertexID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !model.CoordOK(p.X) || !model.CoordOK(p.Y) {
		return 0, fmt.Errorf("core: road vertex coordinate (%v, %v) outside the finite range", p.X, p.Y)
	}
	v := e.DS.Road.AddVertex(p)
	e.dyn.roadVerts++
	return v, nil
}

// AddRoadEdge appends a road segment between two existing intersections.
// Distances can only shrink, and the delta-overlay keeps the attached
// oracle exact (roadnet.Graph.AddEdge), but two classes of derived state
// go stale and are handled here: pivot-table road *lower* bounds (gated
// off engine-wide via roadPivotSafe until the next compaction — stored
// upper bounds remain sound because shrinking true distances only widen
// their slack) and the shared-work memo (fully reset: its one-to-all
// arrays are sized to the old vertex count and its balls assume frozen
// reachability, so stale entries would be wrong, not just loose).
func (e *Engine) AddRoadEdge(u, v roadnet.VertexID) (roadnet.EdgeID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := e.DS.Road.NumVertices()
	if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
		return 0, fmt.Errorf("core: road edge %d-%d out of range [0,%d)", u, v, n)
	}
	if u == v {
		return 0, fmt.Errorf("core: self-loop road edge at vertex %d", u)
	}
	if e.DS.Road.HasEdge(u, v) {
		return 0, fmt.Errorf("core: duplicate road edge %d-%d", u, v)
	}
	id := e.DS.Road.AddEdge(u, v)
	e.dyn.roadEdges++
	e.shared.noteRoadChange()
	return id, nil
}

// roadPivotSafe reports whether pivot-table road distances are still
// sound as LOWER bounds: true iff no road edge has been appended since
// the indexes were built. New edges only shorten distances, so stored
// pivot rows can overestimate — upper-bound uses stay sound and are not
// gated. Appending isolated vertices changes nothing (attachments can
// only sit on edges), so roadVerts does not participate.
func (e *Engine) roadPivotSafe() bool { return e.dyn.roadEdges == 0 }

// pivotPruningSafe reports whether the stored hop-pivot vector of an
// indexed user is still a sound lower bound.
func (e *Engine) pivotPruningSafe(u socialnet.UserID) bool {
	return int(u) < e.dyn.indexedUsers && !e.dyn.touched[u]
}

// userRDOf returns the road pivot distance vector of any user, computing
// it on the fly for delta users.
func (e *Engine) userRDOf(u socialnet.UserID) []float64 {
	if int(u) < e.dyn.indexedUsers {
		return e.Social.UserRoadDist(u)
	}
	return e.Road.Pivots.AttachDistAll(e.DS.Road, e.DS.Users[u].At)
}

// poiRDOf returns the road pivot distance vector of any POI, computing it
// on the fly for delta POIs.
func (e *Engine) poiRDOf(id model.POIID) []float64 {
	if int(id) < e.dyn.indexedPOIs {
		return e.Road.POIDist(id)
	}
	return e.Road.Pivots.AttachDistAll(e.DS.Road, e.DS.POIs[id].At)
}

// scanDeltaUsers appends the interest-compatible delta users to the
// candidate set. It MUST run before the index traversal so the Eq. 18
// feasibility guard (which certifies every surviving candidate before an
// anchor may tighten δ) covers the delta; hop filtering happens exactly in
// refinement. Indexed users touched by new edges stay in the index
// traversal — only their hop-pivot rule is disabled there.
func (e *Engine) scanDeltaUsers(uq socialnet.UserID, p Params, region *PruneRegion, tr *traversal) {
	ds := e.DS
	uqW := ds.Users[uq].Interests
	for id := e.dyn.indexedUsers; id < len(ds.Users); id++ {
		u := socialnet.UserID(id)
		if u == uq {
			continue
		}
		if interestPrunable(p, region, uqW, ds.Users[u].Interests) {
			continue
		}
		tr.candUsers = append(tr.candUsers, u)
	}
}

// scanDeltaAnchors appends every delta POI as a candidate anchor. Without
// a sup_K superset no matching bound exists for them, so they skip both
// score and distance pruning — trivially sound.
func (e *Engine) scanDeltaAnchors(tr *traversal) {
	for id := e.dyn.indexedPOIs; id < len(e.DS.POIs); id++ {
		tr.candAnchors = append(tr.candAnchors, model.POIID(id))
	}
}

// deltaBallMembers returns the delta POIs within Euclidean radius of a
// point (the R*-tree only covers the indexed prefix).
func (e *Engine) deltaBallMembers(anchor model.POIID, radius float64) []model.POIID {
	var out []model.POIID
	loc := e.DS.POIs[anchor].Loc
	for id := e.dyn.indexedPOIs; id < len(e.DS.POIs); id++ {
		if e.DS.POIs[id].Loc.Dist(loc) <= radius {
			out = append(out, model.POIID(id))
		}
	}
	return out
}
