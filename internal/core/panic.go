package core

import (
	"fmt"
	"runtime/debug"
)

// PanicError wraps a panic captured on a refinement worker goroutine. The
// worker pool cannot let a panic unwind its own goroutine — that would
// kill the whole process regardless of any recover the caller installed —
// so each worker records the first panic here and the pool re-raises it
// on the calling goroutine after the pool drains. The facade's recovery
// boundary then converts it into a typed error.
type PanicError struct {
	// Val is the original panic value.
	Val any
	// Stack is the worker goroutine's stack at the point of the panic.
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("core: internal panic: %v", e.Val) }

// capturePanic is deferred at the top of every worker goroutine. It keeps
// the first panic (later ones are reported in the first one's shadow
// anyway) and lets the worker exit normally so wg.Wait returns.
func (q *qctx) capturePanic() {
	if r := recover(); r != nil {
		q.panicked.CompareAndSwap(nil, &PanicError{Val: r, Stack: debug.Stack()})
	}
}

// rethrow re-raises a captured worker panic on the calling goroutine. It
// must run after the pool's wg.Wait, where a panic unwinds through the
// engine into the facade's recovery boundary.
func (q *qctx) rethrow() {
	if pe := q.panicked.Load(); pe != nil {
		panic(pe)
	}
}
