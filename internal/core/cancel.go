package core

import (
	"context"
	"errors"
	"fmt"

	"gpssn/internal/roadnet"
)

// ErrCancelled is wrapped into the error QueryCtx/QueryTopKCtx return when
// the caller's context is cancelled mid-query. errors.Is matches both this
// sentinel and context.Canceled on the returned error.
var ErrCancelled = errors.New("core: query cancelled")

// ErrDeadlineExceeded is the ErrCancelled analogue for a context whose
// deadline passed. errors.Is matches both this sentinel and
// context.DeadlineExceeded on the returned error.
var ErrDeadlineExceeded = errors.New("core: query deadline exceeded")

// ContextError maps a context's termination reason onto the engine's typed
// sentinels, wrapping the context error so errors.Is works for either. It
// returns nil while ctx is live.
func ContextError(ctx context.Context) error {
	err := ctx.Err()
	if err == nil {
		return nil
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrDeadlineExceeded, err)
	}
	return fmt.Errorf("%w: %w", ErrCancelled, err)
}

// Budget caps the work one query may spend. Unlike cancellation — which
// aborts with an error — an exhausted budget degrades gracefully: the query
// returns the best answer it fully evaluated before the cap, flagged
// Stats.Truncated, and never a silently-wrong "optimal". Soundness comes
// from the abort discipline of the checked road-network searches: an
// interrupted search yields +Inf for every output rather than partial
// values, so every finite distance a truncated query reports is exact and
// every returned group is genuinely feasible.
type Budget struct {
	// MaxSettledVertices caps the road-search work units one query may
	// consume across all of its searches: settled vertices for
	// Dijkstra/CH-style scans, merged label entries for the hub-label
	// kernel. 0 = unlimited.
	MaxSettledVertices int64
	// MaxRefinedAnchors caps how many anchor candidates refinement fully
	// evaluates (in the pruning-optimal duq order). 0 = unlimited.
	MaxRefinedAnchors int
}

// IsZero reports whether the budget imposes no limit at all.
func (b Budget) IsZero() bool { return b.MaxSettledVertices == 0 && b.MaxRefinedAnchors == 0 }

// arm equips the query context with a cooperative checkpoint when the
// caller supplied a cancellable/deadlined context or a search budget; with
// neither, q.ck stays nil and every checked code path collapses to the
// original unchecked behavior (bit-identical answers).
func (q *qctx) arm(ctx context.Context, b Budget) {
	q.ctx = ctx
	q.maxAnchors = b.MaxRefinedAnchors
	if ctx.Done() == nil && b.MaxSettledVertices == 0 {
		return
	}
	q.ck = roadnet.NewCheckpoint(ctx.Done(), func() error { return ContextError(ctx) }, b.MaxSettledVertices)
}

// cancelled reports whether the query should abort with an error. Budget
// exhaustion does not count — it truncates instead.
func (q *qctx) cancelled() bool { return q.ck.Cancelled() }

// cancelErr returns the typed cancellation error once the checkpoint (or a
// final context poll) observed cancellation, and nil otherwise.
func (q *qctx) cancelErr() error {
	if err := q.ck.CancelErr(); err != nil {
		return err
	}
	if q.ctx != nil && q.ck.Cancelled() {
		return ContextError(q.ctx)
	}
	return nil
}

// noteTruncated records that the query's search space was cut short by the
// budget; the flag is sticky and safe to set from refinement workers.
func (q *qctx) noteTruncated() { q.truncated.Store(true) }

// wasTruncated reports whether any part of the query was budget-truncated:
// either a checkpoint budget trip (settled-vertex cap) or an explicit
// anchor-cap note from refinement.
func (q *qctx) wasTruncated() bool { return q.ck.Exhausted() || q.truncated.Load() }
