package core

import (
	"testing"

	"gpssn/internal/model"
	"gpssn/internal/roadnet"
	"gpssn/internal/roadnet/ch"
	"gpssn/internal/roadnet/hl"
	"gpssn/internal/socialnet"
)

// sameResults compares two top-k answer lists bit-for-bit: identical
// costs (exact float equality, not tolerance), anchors, groups and balls.
// This is the contract the arena and fold layers must meet — they move
// scratch memory and batch searches, they never change a computed value.
func sameResults(t *testing.T, label string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Found != w.Found || g.Anchor != w.Anchor || g.MaxDist != w.MaxDist {
			t.Fatalf("%s: result %d = {found %v anchor %d cost %v}, want {found %v anchor %d cost %v}",
				label, i, g.Found, g.Anchor, g.MaxDist, w.Found, w.Anchor, w.MaxDist)
		}
		if len(g.S) != len(w.S) || len(g.R) != len(w.R) {
			t.Fatalf("%s: result %d sizes |S|=%d |R|=%d, want %d/%d",
				label, i, len(g.S), len(g.R), len(w.S), len(w.R))
		}
		for j := range w.S {
			if g.S[j] != w.S[j] {
				t.Fatalf("%s: result %d S=%v, want %v", label, i, g.S, w.S)
			}
		}
		for j := range w.R {
			if g.R[j] != w.R[j] {
				t.Fatalf("%s: result %d R=%v, want %v", label, i, g.R, w.R)
			}
		}
	}
}

// TestArenaFoldTogglesBitIdentical is the PR's equality gate: every
// combination of {arena on/off} x {fold on/off} x {P=1, P=8} must return
// byte-identical top-k answers under each oracle family (plain Dijkstra,
// CH, HL). The reference is the everything-off sequential engine.
func TestArenaFoldTogglesBitIdentical(t *testing.T) {
	ds := smallDataset(t, 23)
	p := Params{Gamma: 0.2, Tau: 3, Theta: 0.3, R: 2, Metric: MetricDotProduct}
	queryUsers := []socialnet.UserID{2, 19, 44}

	oracles := []struct {
		name   string
		attach func()
	}{
		{"dijkstra", func() { ds.Road.SetDistanceOracle(nil) }},
		{"ch", func() { ds.Road.SetDistanceOracle(ch.Build(ds.Road)) }},
		{"hl", func() { ds.Road.SetDistanceOracle(hl.Build(ds.Road)) }},
	}
	variants := []struct {
		name string
		opts Options
	}{
		{"arena+fold", Options{}},
		{"arena-only", Options{DisableSweepFold: true}},
		{"fold-only", Options{DisableRefineArena: true}},
		{"arena+fold-p8", Options{Parallelism: 8}},
		{"none-p8", Options{Parallelism: 8, DisableRefineArena: true, DisableSweepFold: true}},
		{"arena+fold+memo", Options{SharedWork: true}},
	}
	defer ds.Road.SetDistanceOracle(nil)
	for _, o := range oracles {
		o.attach()
		ref := buildEngine(t, ds, Options{
			Parallelism: 1, DisableRefineArena: true, DisableSweepFold: true,
		})
		for _, uq := range queryUsers {
			want, _, err := ref.QueryTopK(uq, p, 2)
			if err != nil {
				t.Fatalf("%s ref uq %d: %v", o.name, uq, err)
			}
			for _, v := range variants {
				e := buildEngine(t, ds, v.opts)
				got, _, err := e.QueryTopK(uq, p, 2)
				if err != nil {
					t.Fatalf("%s/%s uq %d: %v", o.name, v.name, uq, err)
				}
				sameResults(t, o.name+"/"+v.name, got, want)
			}
		}
	}
}

// TestLabelEvalZeroAllocsWithArena pins the arena's core claim with the
// allocator's own counter: once the per-query cache holds a user's
// attachment label, evaluating M(u) through the arena-backed label kernel
// allocates nothing at all.
func TestLabelEvalZeroAllocsWithArena(t *testing.T) {
	ds := smallDataset(t, 24)
	ds.Road.SetDistanceOracle(hl.Build(ds.Road))
	defer ds.Road.SetDistanceOracle(nil)
	e := buildEngine(t, ds, Options{})

	cache := newVertexDistCache()
	ar := e.acquireArena()
	defer e.releaseArena(ar)
	ball := []model.POIID{0, 1, 2, 3, 4}
	mOf := e.makeMOf(cache, ball, nil, nil, nil, ar)
	users := []socialnet.UserID{1, 5, 9, 13, 17}
	for _, u := range users {
		mOf(u) // warm: every label is admitted to the cache
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, u := range users {
			mOf(u)
		}
	})
	if allocs != 0 {
		t.Errorf("warm label evaluation allocates %.1f objects per run, want 0", allocs)
	}
}

// TestQueryAllocsDropWithArena compares whole-query allocation counts with
// the arena on and off over the same engine state: the arena path must
// allocate measurably less, and rebuilding the evaluator per anchor must
// not allocate per ball entry.
func TestQueryAllocsDropWithArena(t *testing.T) {
	ds := smallDataset(t, 25)
	ds.Road.SetDistanceOracle(hl.Build(ds.Road))
	defer ds.Road.SetDistanceOracle(nil)
	p := Params{Gamma: 0.2, Tau: 3, Theta: 0.3, R: 2, Metric: MetricDotProduct}

	measure := func(opts Options) float64 {
		e := buildEngine(t, ds, opts)
		if _, _, err := e.Query(19, p); err != nil { // warm arenas + pools
			t.Fatal(err)
		}
		return testing.AllocsPerRun(10, func() {
			if _, _, err := e.Query(19, p); err != nil {
				t.Fatal(err)
			}
		})
	}
	with := measure(Options{Parallelism: 1})
	without := measure(Options{Parallelism: 1, DisableRefineArena: true})
	if with >= without {
		t.Errorf("arena query allocates %.0f objects, no-arena %.0f: arena must allocate less", with, without)
	}
	t.Logf("allocs per query: arena=%.0f no-arena=%.0f", with, without)
}

// TestArenaByteAccounting checks the telemetry gauge against hand-computed
// buffer sizes, through growth, recycling, and the free-list drop path.
func TestArenaByteAccounting(t *testing.T) {
	ds := smallDataset(t, 26)
	e := buildEngine(t, ds, Options{})
	ar := e.acquireArena()
	if ar == nil {
		t.Fatal("arena disabled by default options")
	}
	ar.attachBuf(10)
	ar.floatBuf(10)
	ar.userBuf(4)
	ar.keywords(6)
	want := int64(10*attachSize + 10*8 + 4*userIDSize + 8)
	if got := e.ArenaBytes(); got != want {
		t.Fatalf("ArenaBytes = %d, want %d", got, want)
	}
	// Growth only: a smaller request keeps the larger buffer.
	ar.attachBuf(3)
	if got := e.ArenaBytes(); got != want {
		t.Fatalf("ArenaBytes after smaller request = %d, want %d", got, want)
	}
	// Releasing keeps the bytes (free list retains the arena)...
	e.releaseArena(ar)
	if got := e.ArenaBytes(); got != want {
		t.Fatalf("ArenaBytes after release = %d, want %d", got, want)
	}
	// ...and reacquiring hands the same arena back with buffers intact.
	ar2 := e.acquireArena()
	if ar2 != ar {
		t.Fatal("free list did not recycle the arena")
	}
	if got := e.ArenaBytes(); got != want {
		t.Fatalf("ArenaBytes after reacquire = %d, want %d", got, want)
	}

	// Overflow the free list: the dropped arena's bytes leave the gauge.
	extra := make([]*refineArena, 0, arenaMaxFree)
	for i := 0; i < arenaMaxFree; i++ {
		a := e.acquireArena()
		a.floatBuf(2)
		extra = append(extra, a)
	}
	total := e.ArenaBytes()
	for _, a := range extra {
		e.releaseArena(a)
	}
	e.releaseArena(ar2) // free list already full: ar2's bytes must be subtracted
	if got := e.ArenaBytes(); got != total-want {
		t.Fatalf("ArenaBytes after overflow drop = %d, want %d", got, total-want)
	}
}

// TestEngineMemoryStats checks the engine-level rollup: oracle bytes only
// when an oracle reports them, arena bytes after a query warmed the pool.
func TestEngineMemoryStats(t *testing.T) {
	ds := smallDataset(t, 27)
	e := buildEngine(t, ds, Options{})
	if ms := e.MemoryStats(); ms.OracleBytes != 0 {
		t.Errorf("OracleBytes = %d without an oracle, want 0", ms.OracleBytes)
	}
	ds.Road.SetDistanceOracle(hl.Build(ds.Road))
	defer ds.Road.SetDistanceOracle(nil)
	if _, _, err := e.Query(2, Params{Gamma: 0.2, Tau: 2, Theta: 0.2, R: 2}); err != nil {
		t.Fatal(err)
	}
	ms := e.MemoryStats()
	if ms.OracleBytes <= 0 {
		t.Errorf("OracleBytes = %d with hub labels attached, want > 0", ms.OracleBytes)
	}
	if ms.ArenaBytes <= 0 {
		t.Errorf("ArenaBytes = %d after a query, want > 0", ms.ArenaBytes)
	}
	if ms.ArenaBytes != e.ArenaBytes() {
		t.Errorf("MemoryStats.ArenaBytes %d != ArenaBytes() %d", ms.ArenaBytes, e.ArenaBytes())
	}
}

// TestPrefoldRespectsCacheCaps forces a cache with almost no room and
// checks the fold still never overfills it — folded arrays are capped to
// the slots left, and answers are unchanged (covered by the gate above).
func TestPrefoldRespectsCacheCaps(t *testing.T) {
	ds := smallDataset(t, 28)
	e := buildEngine(t, ds, Options{})
	cache := newVertexDistCacheWith(3, 1<<30)
	keeper := newSharedKeeper(1)
	kws := NewTopicSet(ds.NumTopics)
	for o := range ds.POIs {
		for _, k := range ds.POIs[o].Keywords {
			kws.Add(k)
		}
	}
	var cand []socialnet.UserID
	for u := range ds.Users {
		cand = append(cand, socialnet.UserID(u))
	}
	e.prefoldArrays(cache, cand, kws, 0, keeper, nil, nil)
	if got := cache.entries(); got > 3 {
		t.Fatalf("fold overfilled the cache: %d entries, cap 3", got)
	}
	if got := cache.entries(); got != 3 {
		t.Fatalf("fold should fill the remaining %d slots, stored %d", 3, got)
	}
	// Folded arrays must equal the solo sweeps bit for bit.
	for u, dv := range cache.arrays {
		solo := e.userVertexDist(u, nil)
		for v := range solo {
			if dv[v] != solo[v] {
				t.Fatalf("user %d vertex %d: folded %v != solo %v", u, v, dv[v], solo[v])
			}
		}
	}
}

var _ = roadnet.Seed{} // keep the roadnet import when builds strip tests
