package core

import (
	"math"
	"testing"

	"gpssn/internal/socialnet"
)

func TestQueryTopKMatchesOracle(t *testing.T) {
	for seed := int64(20); seed <= 21; seed++ {
		ds := smallDataset(t, seed)
		e := buildEngine(t, ds, Options{})
		oracle := &Baseline{DS: ds}
		p := Params{Gamma: 0.2, Tau: 3, Theta: 0.3, R: 2, Metric: MetricDotProduct}
		for _, uq := range []socialnet.UserID{3, 27} {
			for _, k := range []int{1, 3, 5} {
				got, _, err := e.QueryTopK(uq, p, k)
				if err != nil {
					t.Fatalf("seed %d uq %d k %d: %v", seed, uq, k, err)
				}
				want, _ := oracle.QueryTopK(uq, p, k)
				if len(got) != len(want) {
					t.Fatalf("seed %d uq %d k %d: %d results, oracle %d",
						seed, uq, k, len(got), len(want))
				}
				for i := range got {
					if math.Abs(got[i].MaxDist-want[i].MaxDist) > 1e-6 {
						t.Fatalf("seed %d uq %d k %d: result %d cost %v, oracle %v",
							seed, uq, k, i, got[i].MaxDist, want[i].MaxDist)
					}
					if i > 0 && got[i].MaxDist < got[i-1].MaxDist-1e-12 {
						t.Fatal("top-k results not sorted by cost")
					}
				}
				// Anchors must be distinct.
				seen := map[interface{}]bool{}
				for _, r := range got {
					if seen[r.Anchor] {
						t.Fatalf("duplicate anchor %d in top-k", r.Anchor)
					}
					seen[r.Anchor] = true
				}
			}
		}
	}
}

func TestQueryTopKConsistentWithQuery(t *testing.T) {
	ds := smallDataset(t, 22)
	e := buildEngine(t, ds, Options{})
	p := Params{Gamma: 0.25, Tau: 3, Theta: 0.3, R: 2, Metric: MetricDotProduct}
	for _, uq := range []socialnet.UserID{4, 40} {
		single, _, err := e.Query(uq, p)
		if err != nil {
			t.Fatal(err)
		}
		topk, _, err := e.QueryTopK(uq, p, 4)
		if err != nil {
			t.Fatal(err)
		}
		if single.Found != (len(topk) > 0) {
			t.Fatalf("uq %d: Query found=%v but top-k returned %d", uq, single.Found, len(topk))
		}
		if single.Found && math.Abs(single.MaxDist-topk[0].MaxDist) > 1e-9 {
			t.Fatalf("uq %d: Query cost %v != top-1 cost %v", uq, single.MaxDist, topk[0].MaxDist)
		}
	}
}

func TestQueryTopKValidatesK(t *testing.T) {
	ds := smallDataset(t, 23)
	e := buildEngine(t, ds, Options{})
	if _, _, err := e.QueryTopK(0, DefaultParams(), 0); err == nil {
		t.Error("k=0 should be rejected")
	}
}

func TestKSmallest(t *testing.T) {
	s := newKSmallest(3)
	if got := s.threshold(); !math.IsInf(got, 1) {
		t.Errorf("empty threshold = %v", got)
	}
	s.push(5)
	s.push(2)
	if got := s.threshold(); !math.IsInf(got, 1) {
		t.Errorf("threshold with 2/3 values = %v", got)
	}
	if got := s.push(8); got != 8 {
		t.Errorf("threshold = %v, want 8", got)
	}
	if got := s.push(1); got != 5 {
		t.Errorf("threshold after better value = %v, want 5", got)
	}
	if got := s.push(100); got != 5 {
		t.Errorf("threshold after worse value = %v, want 5", got)
	}
}

func TestResultKeeper(t *testing.T) {
	rk := &resultKeeper{k: 2}
	if !math.IsInf(rk.bound(), 1) {
		t.Error("empty keeper bound should be +Inf")
	}
	rk.add(Result{Found: true, Anchor: 1, MaxDist: 5})
	rk.add(Result{Found: true, Anchor: 2, MaxDist: 3})
	if rk.bound() != 5 {
		t.Errorf("bound = %v, want 5", rk.bound())
	}
	// Same anchor, better cost replaces.
	rk.add(Result{Found: true, Anchor: 1, MaxDist: 2})
	if rk.items[0].Anchor != 1 || rk.items[0].MaxDist != 2 {
		t.Errorf("dedupe failed: %+v", rk.items)
	}
	// Same anchor, worse cost ignored.
	rk.add(Result{Found: true, Anchor: 1, MaxDist: 9})
	if rk.items[0].MaxDist != 2 {
		t.Error("worse duplicate should be ignored")
	}
	// Better third anchor evicts the worst.
	rk.add(Result{Found: true, Anchor: 3, MaxDist: 1})
	if len(rk.items) != 2 || rk.items[0].Anchor != 3 || rk.items[1].Anchor != 1 {
		t.Errorf("eviction wrong: %+v", rk.items)
	}
}
