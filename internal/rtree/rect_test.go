package rtree

import (
	"math/rand"
	"testing"

	"gpssn/internal/geo"
)

// Rectangle (non-point) items: road edges and MBRs are stored as boxes in
// several places; the tree must handle extended geometry identically.
func randRects(n int, seed int64) []geo.Rect {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geo.Rect, n)
	for i := range out {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		out[i] = geo.Rect{
			Min: geo.Pt(x, y),
			Max: geo.Pt(x+rng.Float64()*20, y+rng.Float64()*20),
		}
	}
	return out
}

func TestRectItemsSearch(t *testing.T) {
	rects := randRects(500, 51)
	tr := New(Options{MaxEntries: 8})
	for i, r := range rects {
		tr.Insert(Item{Rect: r, ID: int32(i)})
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 20; trial++ {
		x, y := rng.Float64()*900, rng.Float64()*900
		q := geo.Rect{Min: geo.Pt(x, y), Max: geo.Pt(x+100, y+100)}
		want := map[int32]bool{}
		for i, r := range rects {
			if q.Intersects(r) {
				want[int32(i)] = true
			}
		}
		got := map[int32]bool{}
		for _, it := range tr.SearchAll(q) {
			got[it.ID] = true
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d hits, want %d", trial, len(got), len(want))
		}
	}
}

func TestRectItemsDelete(t *testing.T) {
	rects := randRects(200, 53)
	tr := New(Options{MaxEntries: 6})
	for i, r := range rects {
		tr.Insert(Item{Rect: r, ID: int32(i)})
	}
	for i := 0; i < len(rects); i += 2 {
		if !tr.Delete(rects[i], int32(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after deletes: %v", err)
	}
	if tr.Len() != 100 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestBulkLoadRects(t *testing.T) {
	rects := randRects(1000, 54)
	items := make([]Item, len(rects))
	for i, r := range rects {
		items[i] = Item{Rect: r, ID: int32(i)}
	}
	tr := New(Options{MaxEntries: 16})
	tr.BulkLoad(items)
	q := geo.Rect{Min: geo.Pt(250, 250), Max: geo.Pt(500, 500)}
	want := 0
	for _, r := range rects {
		if q.Intersects(r) {
			want++
		}
	}
	if got := len(tr.SearchAll(q)); got != want {
		t.Errorf("bulk rect search = %d, want %d", got, want)
	}
}

// Mixed degenerate and extended rectangles in one tree.
func TestMixedPointAndRectItems(t *testing.T) {
	tr := New(Options{MaxEntries: 5})
	rng := rand.New(rand.NewSource(55))
	n := 300
	boxes := make([]geo.Rect, n)
	for i := 0; i < n; i++ {
		p := geo.Pt(rng.Float64()*100, rng.Float64()*100)
		if i%2 == 0 {
			boxes[i] = geo.RectFromPoint(p)
		} else {
			boxes[i] = geo.Rect{Min: p, Max: geo.Pt(p.X+5, p.Y+5)}
		}
		tr.Insert(Item{Rect: boxes[i], ID: int32(i)})
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	q := geo.Rect{Min: geo.Pt(20, 20), Max: geo.Pt(60, 60)}
	want := 0
	for _, b := range boxes {
		if q.Intersects(b) {
			want++
		}
	}
	if got := len(tr.SearchAll(q)); got != want {
		t.Errorf("mixed search = %d, want %d", got, want)
	}
}
