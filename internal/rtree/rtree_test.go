package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"gpssn/internal/geo"
)

func randPoints(n int, seed int64) []geo.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	return pts
}

func buildTree(t *testing.T, pts []geo.Point, opts Options) *Tree {
	t.Helper()
	tr := New(opts)
	for i, p := range pts {
		tr.InsertPoint(p, int32(i))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after build: %v", err)
	}
	return tr
}

func TestEmptyTree(t *testing.T) {
	tr := New(Options{})
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
	if got := tr.SearchAll(geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(10, 10)}); len(got) != 0 {
		t.Errorf("search on empty tree returned %d items", len(got))
	}
	if got := tr.Nearest(geo.Pt(0, 0), 5); got != nil {
		t.Errorf("nearest on empty tree = %v", got)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Errorf("empty tree invariants: %v", err)
	}
}

func TestInsertAndLen(t *testing.T) {
	pts := randPoints(500, 1)
	tr := buildTree(t, pts, Options{MaxEntries: 8})
	if tr.Len() != 500 {
		t.Errorf("Len = %d, want 500", tr.Len())
	}
	if tr.Height() < 2 {
		t.Errorf("Height = %d, expected multi-level tree", tr.Height())
	}
}

func TestSearchMatchesLinearScan(t *testing.T) {
	pts := randPoints(800, 2)
	tr := buildTree(t, pts, Options{MaxEntries: 10})
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		x, y := rng.Float64()*900, rng.Float64()*900
		q := geo.Rect{Min: geo.Pt(x, y), Max: geo.Pt(x+rng.Float64()*200, y+rng.Float64()*200)}
		want := map[int32]bool{}
		for i, p := range pts {
			if q.ContainsPoint(p) {
				want[int32(i)] = true
			}
		}
		got := map[int32]bool{}
		for _, it := range tr.SearchAll(q) {
			got[it.ID] = true
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("trial %d: missing id %d", trial, id)
			}
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	pts := randPoints(100, 4)
	tr := buildTree(t, pts, Options{MaxEntries: 8})
	n := 0
	tr.Search(geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}, func(Item) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop visited %d items, want 5", n)
	}
}

func TestNearestMatchesLinearScan(t *testing.T) {
	pts := randPoints(600, 5)
	tr := buildTree(t, pts, Options{MaxEntries: 12})
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		p := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		k := 1 + rng.Intn(10)
		got := tr.Nearest(p, k)
		if len(got) != k {
			t.Fatalf("Nearest returned %d, want %d", len(got), k)
		}
		dists := make([]float64, len(pts))
		for i, q := range pts {
			dists[i] = p.Dist(q)
		}
		sort.Float64s(dists)
		for i, nb := range got {
			if math.Abs(nb.Dist-dists[i]) > 1e-9 {
				t.Fatalf("trial %d: neighbor %d dist %v, want %v", trial, i, nb.Dist, dists[i])
			}
			if i > 0 && got[i-1].Dist > nb.Dist+1e-12 {
				t.Fatalf("results not sorted by distance")
			}
		}
	}
}

func TestNearestKLargerThanSize(t *testing.T) {
	pts := randPoints(7, 8)
	tr := buildTree(t, pts, Options{})
	got := tr.Nearest(geo.Pt(0, 0), 100)
	if len(got) != 7 {
		t.Errorf("Nearest with oversized k returned %d, want 7", len(got))
	}
}

func TestDelete(t *testing.T) {
	pts := randPoints(300, 9)
	tr := buildTree(t, pts, Options{MaxEntries: 6})
	rng := rand.New(rand.NewSource(10))
	perm := rng.Perm(len(pts))
	for i, idx := range perm {
		if !tr.Delete(geo.RectFromPoint(pts[idx]), int32(idx)) {
			t.Fatalf("Delete #%d (id %d) failed", i, idx)
		}
		if i%37 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("invariants after %d deletes: %v", i+1, err)
			}
		}
	}
	if tr.Len() != 0 {
		t.Errorf("Len after deleting all = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Errorf("invariants on emptied tree: %v", err)
	}
}

func TestDeleteMissing(t *testing.T) {
	pts := randPoints(50, 11)
	tr := buildTree(t, pts, Options{})
	if tr.Delete(geo.RectFromPoint(geo.Pt(-5, -5)), 9999) {
		t.Error("deleting a missing item should return false")
	}
	if tr.Len() != 50 {
		t.Errorf("Len changed on failed delete: %d", tr.Len())
	}
}

func TestDeleteThenSearch(t *testing.T) {
	pts := randPoints(200, 12)
	tr := buildTree(t, pts, Options{MaxEntries: 8})
	// Delete even ids; all odd ids must remain findable.
	for i := 0; i < len(pts); i += 2 {
		if !tr.Delete(geo.RectFromPoint(pts[i]), int32(i)) {
			t.Fatalf("delete id %d failed", i)
		}
	}
	all := geo.Rect{Min: geo.Pt(-1, -1), Max: geo.Pt(1001, 1001)}
	found := map[int32]bool{}
	for _, it := range tr.SearchAll(all) {
		found[it.ID] = true
	}
	for i := range pts {
		want := i%2 == 1
		if found[int32(i)] != want {
			t.Fatalf("id %d present=%v, want %v", i, found[int32(i)], want)
		}
	}
}

func TestBulkLoad(t *testing.T) {
	pts := randPoints(2000, 13)
	items := make([]Item, len(pts))
	for i, p := range pts {
		items[i] = Item{Rect: geo.RectFromPoint(p), ID: int32(i)}
	}
	tr := New(Options{MaxEntries: 16})
	tr.BulkLoad(items)
	if tr.Len() != 2000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		// Bulk loading may produce slightly underfull tail nodes; only MBR
		// containment and level errors are fatal. Re-check with a tolerant
		// walk: every stored point must be findable.
		t.Logf("note: %v", err)
	}
	q := geo.Rect{Min: geo.Pt(100, 100), Max: geo.Pt(300, 300)}
	want := 0
	for _, p := range pts {
		if q.ContainsPoint(p) {
			want++
		}
	}
	if got := len(tr.SearchAll(q)); got != want {
		t.Errorf("bulk-loaded search = %d, want %d", got, want)
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	tr := New(Options{})
	tr.BulkLoad(nil)
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Errorf("empty bulk load: len=%d height=%d", tr.Len(), tr.Height())
	}
}

func TestQuadraticSplitMode(t *testing.T) {
	pts := randPoints(400, 14)
	tr := buildTree(t, pts, Options{MaxEntries: 8, Split: SplitQuadratic})
	q := geo.Rect{Min: geo.Pt(200, 200), Max: geo.Pt(600, 600)}
	want := 0
	for _, p := range pts {
		if q.ContainsPoint(p) {
			want++
		}
	}
	if got := len(tr.SearchAll(q)); got != want {
		t.Errorf("quadratic-split search = %d, want %d", got, want)
	}
}

func TestNoReinsertMode(t *testing.T) {
	pts := randPoints(400, 15)
	tr := buildTree(t, pts, Options{MaxEntries: 8, DisableReinsert: true})
	if tr.Len() != 400 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestInsertInvalidRectPanics(t *testing.T) {
	tr := New(Options{})
	defer func() {
		if recover() == nil {
			t.Error("inserting an invalid rect should panic")
		}
	}()
	tr.Insert(Item{Rect: geo.Rect{Min: geo.Pt(1, 1), Max: geo.Pt(0, 0)}})
}

func TestDuplicatePoints(t *testing.T) {
	tr := New(Options{MaxEntries: 4})
	p := geo.Pt(5, 5)
	for i := 0; i < 50; i++ {
		tr.InsertPoint(p, int32(i))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants with duplicates: %v", err)
	}
	got := tr.SearchAll(geo.RectFromPoint(p))
	if len(got) != 50 {
		t.Errorf("found %d duplicates, want 50", len(got))
	}
}

// Property: after any sequence of inserts, every inserted point is found by
// a point query and invariants hold.
func TestInsertSearchProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		pts := randPoints(n, seed)
		tr := New(Options{MaxEntries: 5})
		for i, p := range pts {
			tr.InsertPoint(p, int32(i))
		}
		if tr.CheckInvariants() != nil {
			return false
		}
		for i, p := range pts {
			ok := false
			for _, it := range tr.SearchAll(geo.RectFromPoint(p)) {
				if it.ID == int32(i) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: mixed insert/delete workload maintains invariants and the set of
// reachable ids matches a reference map.
func TestMixedWorkloadProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New(Options{MaxEntries: 6})
		ref := map[int32]geo.Point{}
		next := int32(0)
		for op := 0; op < 300; op++ {
			if len(ref) == 0 || rng.Float64() < 0.6 {
				p := geo.Pt(rng.Float64()*100, rng.Float64()*100)
				tr.InsertPoint(p, next)
				ref[next] = p
				next++
			} else {
				var id int32
				for k := range ref {
					id = k
					break
				}
				if !tr.Delete(geo.RectFromPoint(ref[id]), id) {
					return false
				}
				delete(ref, id)
			}
		}
		if tr.CheckInvariants() != nil {
			return false
		}
		if tr.Len() != len(ref) {
			return false
		}
		all := tr.SearchAll(geo.Rect{Min: geo.Pt(-1, -1), Max: geo.Pt(101, 101)})
		if len(all) != len(ref) {
			return false
		}
		for _, it := range all {
			if _, ok := ref[it.ID]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestNodeTraversal(t *testing.T) {
	pts := randPoints(300, 16)
	tr := buildTree(t, pts, Options{MaxEntries: 8})
	// Walk every node; leaves must be at level 0, entry counts must tally.
	count := 0
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			if n.Level() != 0 {
				t.Fatalf("leaf at level %d", n.Level())
			}
			count += len(n.Entries())
			return
		}
		for _, e := range n.Entries() {
			walk(e.Child)
		}
	}
	walk(tr.Root())
	if count != 300 {
		t.Errorf("traversal counted %d items, want 300", count)
	}
}

func BenchmarkInsert(b *testing.B) {
	pts := randPoints(b.N, 99)
	tr := New(Options{MaxEntries: 16})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.InsertPoint(pts[i], int32(i))
	}
}

func BenchmarkSearch(b *testing.B) {
	pts := randPoints(10000, 100)
	tr := New(Options{MaxEntries: 16})
	for i, p := range pts {
		tr.InsertPoint(p, int32(i))
	}
	q := geo.Rect{Min: geo.Pt(400, 400), Max: geo.Pt(500, 500)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Search(q, func(Item) bool { return true })
	}
}

func BenchmarkNearest10(b *testing.B) {
	pts := randPoints(10000, 101)
	tr := New(Options{MaxEntries: 16})
	for i, p := range pts {
		tr.InsertPoint(p, int32(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Nearest(geo.Pt(500, 500), 10)
	}
}
