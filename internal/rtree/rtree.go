// Package rtree implements an R*-tree (Beckmann, Kriegel, Schneider, Seeger;
// SIGMOD 1990) over 2D points and rectangles. It is the spatial substrate
// for the GP-SSN road-network index I_R: the paper inserts POI locations
// into an R*-tree and augments its nodes with keyword signatures and
// pivot-distance bounds (done by package index on top of this tree).
//
// The implementation provides the full R* insertion algorithm — subtree
// choice by minimum overlap enlargement at the leaf level, forced
// reinsertion on first overflow per level, and the R* topological split
// (axis selection by minimum margin sum, distribution selection by minimum
// overlap) — plus deletion with tree condensation, range search, and
// best-first nearest-neighbour search. A plain quadratic split mode is
// available for the ablation benchmarks.
package rtree

import (
	"fmt"
	"math"
	"sort"

	"gpssn/internal/geo"
)

// SplitPolicy selects the node-splitting algorithm.
type SplitPolicy int

const (
	// SplitRStar is the R*-tree topological split (default).
	SplitRStar SplitPolicy = iota
	// SplitQuadratic is Guttman's quadratic split, kept for ablation.
	SplitQuadratic
)

// Options configure a Tree.
type Options struct {
	// MaxEntries is the node capacity M. Minimum fill m is MaxEntries*2/5
	// per the R* paper recommendation. Default 16.
	MaxEntries int
	// Split selects the split algorithm. Default SplitRStar.
	Split SplitPolicy
	// DisableReinsert turns off forced reinsertion (ablation). Default off.
	DisableReinsert bool
}

func (o Options) withDefaults() Options {
	if o.MaxEntries <= 0 {
		o.MaxEntries = 16
	}
	if o.MaxEntries < 4 {
		o.MaxEntries = 4
	}
	return o
}

// Item is a spatial object stored in the tree: a bounding rectangle (a
// degenerate rectangle for points) and an opaque integer identifier that
// callers map back to their own objects.
type Item struct {
	Rect geo.Rect
	ID   int32
}

// Entry is one slot of a node: either an item (leaf level) or a child
// pointer with its MBR (internal level).
type Entry struct {
	Rect  geo.Rect
	ID    int32 // valid when the owning node is a leaf
	Child *Node // valid when the owning node is internal
}

// Node is an R*-tree node. Nodes are exported read-only so that the GP-SSN
// index can traverse the structure and attach per-node aggregates; mutating
// a node outside this package corrupts the tree.
type Node struct {
	leaf    bool
	level   int // 0 for leaves
	entries []Entry
	parent  *Node
}

// IsLeaf reports whether n is a leaf node.
func (n *Node) IsLeaf() bool { return n.leaf }

// Level returns n's height above the leaf level (leaves are level 0).
func (n *Node) Level() int { return n.level }

// Entries returns n's entry slice. Callers must treat it as read-only.
func (n *Node) Entries() []Entry { return n.entries }

// Bounds returns the MBR of all entries in n.
func (n *Node) Bounds() geo.Rect {
	r := geo.EmptyRect()
	for i := range n.entries {
		r = r.Union(n.entries[i].Rect)
	}
	return r
}

// Tree is an R*-tree. The zero value is not usable; create trees with New.
type Tree struct {
	opts Options
	minE int
	root *Node
	size int

	// reinsertedAt tracks which levels already did a forced reinsert during
	// the current insertion (R* does at most one reinsert per level per
	// insertion).
	reinsertedAt map[int]bool
}

// New returns an empty tree with the given options.
func New(opts Options) *Tree {
	o := opts.withDefaults()
	return &Tree{
		opts: o,
		minE: maxInt(2, o.MaxEntries*2/5),
		root: &Node{leaf: true, level: 0},
	}
}

// Len returns the number of items stored.
func (t *Tree) Len() int { return t.size }

// Root returns the root node for read-only traversal.
func (t *Tree) Root() *Node { return t.root }

// Height returns the number of levels in the tree (1 for a root-only tree).
func (t *Tree) Height() int { return t.root.level + 1 }

// Insert adds an item to the tree.
func (t *Tree) Insert(it Item) {
	if !it.Rect.Valid() {
		panic(fmt.Sprintf("rtree: inserting invalid rect %v", it.Rect))
	}
	t.reinsertedAt = map[int]bool{}
	t.insertEntry(Entry{Rect: it.Rect, ID: it.ID}, 0)
	t.size++
}

// InsertPoint adds a point item.
func (t *Tree) InsertPoint(p geo.Point, id int32) {
	t.Insert(Item{Rect: geo.RectFromPoint(p), ID: id})
}

// BulkLoad builds the tree from scratch using sort-tile-recursive packing,
// which produces well-clustered nodes much faster than repeated insertion.
// Any existing contents are discarded.
func (t *Tree) BulkLoad(items []Item) {
	t.size = len(items)
	if len(items) == 0 {
		t.root = &Node{leaf: true, level: 0}
		return
	}
	// Leaf level: STR packing.
	sorted := make([]Item, len(items))
	copy(sorted, items)
	leaves := t.strPack(sorted)
	level := 0
	nodes := leaves
	for len(nodes) > 1 {
		level++
		nodes = t.packParents(nodes, level)
	}
	t.root = nodes[0]
	t.root.parent = nil
}

// strPack groups items into leaf nodes using sort-tile-recursive order.
func (t *Tree) strPack(items []Item) []*Node {
	cap := t.opts.MaxEntries
	n := len(items)
	numLeaves := (n + cap - 1) / cap
	numSlices := int(math.Ceil(math.Sqrt(float64(numLeaves))))
	sort.Slice(items, func(i, j int) bool {
		return items[i].Rect.Center().X < items[j].Rect.Center().X
	})
	perSlice := (n + numSlices - 1) / numSlices
	var leaves []*Node
	for s := 0; s < n; s += perSlice {
		e := minInt(s+perSlice, n)
		slice := items[s:e]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].Rect.Center().Y < slice[j].Rect.Center().Y
		})
		for o := 0; o < len(slice); o += cap {
			oe := minInt(o+cap, len(slice))
			leaf := &Node{leaf: true, level: 0}
			for _, it := range slice[o:oe] {
				leaf.entries = append(leaf.entries, Entry{Rect: it.Rect, ID: it.ID})
			}
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

// packParents groups child nodes into parents at the given level.
func (t *Tree) packParents(children []*Node, level int) []*Node {
	cap := t.opts.MaxEntries
	sort.Slice(children, func(i, j int) bool {
		return children[i].Bounds().Center().X < children[j].Bounds().Center().X
	})
	n := len(children)
	numParents := (n + cap - 1) / cap
	numSlices := int(math.Ceil(math.Sqrt(float64(numParents))))
	perSlice := (n + numSlices - 1) / numSlices
	var parents []*Node
	for s := 0; s < n; s += perSlice {
		e := minInt(s+perSlice, n)
		slice := make([]*Node, e-s)
		copy(slice, children[s:e])
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].Bounds().Center().Y < slice[j].Bounds().Center().Y
		})
		for o := 0; o < len(slice); o += cap {
			oe := minInt(o+cap, len(slice))
			p := &Node{leaf: false, level: level}
			for _, c := range slice[o:oe] {
				c.parent = p
				p.entries = append(p.entries, Entry{Rect: c.Bounds(), Child: c})
			}
			parents = append(parents, p)
		}
	}
	return parents
}

// insertEntry inserts e at the given target level (0 = leaf).
func (t *Tree) insertEntry(e Entry, level int) {
	n := t.chooseSubtree(e.Rect, level)
	if e.Child != nil {
		e.Child.parent = n
	}
	n.entries = append(n.entries, e)
	t.adjustUpward(n)
	if len(n.entries) > t.opts.MaxEntries {
		t.overflowTreatment(n)
	}
}

// chooseSubtree descends from the root to the node at targetLevel that best
// accommodates r: minimum overlap enlargement among leaf parents, minimum
// area enlargement higher up (ties by area).
func (t *Tree) chooseSubtree(r geo.Rect, targetLevel int) *Node {
	n := t.root
	for n.level > targetLevel {
		best := -1
		if n.level == 1 {
			// Children are leaves: minimize overlap enlargement.
			bestOverlap, bestEnl, bestArea := math.Inf(1), math.Inf(1), math.Inf(1)
			for i := range n.entries {
				er := n.entries[i].Rect
				union := er.Union(r)
				var before, after float64
				for j := range n.entries {
					if j == i {
						continue
					}
					before += er.OverlapArea(n.entries[j].Rect)
					after += union.OverlapArea(n.entries[j].Rect)
				}
				dOverlap := after - before
				enl := er.Enlargement(r)
				area := er.Area()
				if dOverlap < bestOverlap ||
					(dOverlap == bestOverlap && enl < bestEnl) ||
					(dOverlap == bestOverlap && enl == bestEnl && area < bestArea) {
					best, bestOverlap, bestEnl, bestArea = i, dOverlap, enl, area
				}
			}
		} else {
			bestEnl, bestArea := math.Inf(1), math.Inf(1)
			for i := range n.entries {
				enl := n.entries[i].Rect.Enlargement(r)
				area := n.entries[i].Rect.Area()
				if enl < bestEnl || (enl == bestEnl && area < bestArea) {
					best, bestEnl, bestArea = i, enl, area
				}
			}
		}
		n = n.entries[best].Child
	}
	return n
}

// overflowTreatment handles a node that exceeds capacity: forced reinsert
// the first time a level overflows during this insertion, split otherwise.
func (t *Tree) overflowTreatment(n *Node) {
	if !t.opts.DisableReinsert && n != t.root && !t.reinsertedAt[n.level] {
		t.reinsertedAt[n.level] = true
		t.reinsert(n)
		return
	}
	t.split(n)
}

// reinsert removes the p entries of n farthest from its center and inserts
// them again from the top (R* forced reinsertion, p = 30% of M).
func (t *Tree) reinsert(n *Node) {
	p := maxInt(1, t.opts.MaxEntries*30/100)
	c := n.Bounds().Center()
	sort.Slice(n.entries, func(i, j int) bool {
		return n.entries[i].Rect.Center().Dist2(c) < n.entries[j].Rect.Center().Dist2(c)
	})
	cut := len(n.entries) - p
	removed := make([]Entry, p)
	copy(removed, n.entries[cut:])
	n.entries = n.entries[:cut]
	t.adjustUpward(n)
	// Close reinsert: nearest first.
	for i := len(removed) - 1; i >= 0; i-- {
		t.insertEntry(removed[i], n.level)
	}
}

// split divides an overflowing node into two and propagates upward.
func (t *Tree) split(n *Node) {
	var left, right []Entry
	switch t.opts.Split {
	case SplitQuadratic:
		left, right = quadraticSplit(n.entries, t.minE)
	default:
		left, right = rstarSplit(n.entries, t.minE)
	}
	sib := &Node{leaf: n.leaf, level: n.level}
	n.entries = left
	sib.entries = right
	if !n.leaf {
		for i := range n.entries {
			n.entries[i].Child.parent = n
		}
		for i := range sib.entries {
			sib.entries[i].Child.parent = sib
		}
	}
	if n == t.root {
		newRoot := &Node{leaf: false, level: n.level + 1}
		newRoot.entries = []Entry{
			{Rect: n.Bounds(), Child: n},
			{Rect: sib.Bounds(), Child: sib},
		}
		n.parent, sib.parent = newRoot, newRoot
		t.root = newRoot
		return
	}
	parent := n.parent
	sib.parent = parent
	for i := range parent.entries {
		if parent.entries[i].Child == n {
			parent.entries[i].Rect = n.Bounds()
			break
		}
	}
	parent.entries = append(parent.entries, Entry{Rect: sib.Bounds(), Child: sib})
	t.adjustUpward(parent)
	if len(parent.entries) > t.opts.MaxEntries {
		t.overflowTreatment(parent)
	}
}

// adjustUpward refreshes MBRs from n to the root.
func (t *Tree) adjustUpward(n *Node) {
	for cur := n; cur.parent != nil; cur = cur.parent {
		p := cur.parent
		for i := range p.entries {
			if p.entries[i].Child == cur {
				p.entries[i].Rect = cur.Bounds()
				break
			}
		}
	}
}

// rstarSplit implements the R* topological split: pick the axis with the
// smallest total margin over all candidate distributions, then the
// distribution with the smallest overlap (ties by combined area).
func rstarSplit(entries []Entry, minE int) (left, right []Entry) {
	type distribution struct {
		sorted []Entry
		k      int // split position
	}
	axisCost := func(sorted []Entry) (marginSum float64, best distribution) {
		bestOverlap, bestArea := math.Inf(1), math.Inf(1)
		m := len(sorted)
		prefix := make([]geo.Rect, m+1)
		suffix := make([]geo.Rect, m+1)
		prefix[0], suffix[m] = geo.EmptyRect(), geo.EmptyRect()
		for i := 0; i < m; i++ {
			prefix[i+1] = prefix[i].Union(sorted[i].Rect)
			suffix[m-1-i] = suffix[m-i].Union(sorted[m-1-i].Rect)
		}
		for k := minE; k <= m-minE; k++ {
			l, r := prefix[k], suffix[k]
			marginSum += l.Margin() + r.Margin()
			overlap := l.OverlapArea(r)
			area := l.Area() + r.Area()
			if overlap < bestOverlap || (overlap == bestOverlap && area < bestArea) {
				bestOverlap, bestArea = overlap, area
				best = distribution{sorted: sorted, k: k}
			}
		}
		return marginSum, best
	}

	byX := make([]Entry, len(entries))
	copy(byX, entries)
	sort.Slice(byX, func(i, j int) bool {
		if byX[i].Rect.Min.X != byX[j].Rect.Min.X {
			return byX[i].Rect.Min.X < byX[j].Rect.Min.X
		}
		return byX[i].Rect.Max.X < byX[j].Rect.Max.X
	})
	byY := make([]Entry, len(entries))
	copy(byY, entries)
	sort.Slice(byY, func(i, j int) bool {
		if byY[i].Rect.Min.Y != byY[j].Rect.Min.Y {
			return byY[i].Rect.Min.Y < byY[j].Rect.Min.Y
		}
		return byY[i].Rect.Max.Y < byY[j].Rect.Max.Y
	})

	mx, dx := axisCost(byX)
	my, dy := axisCost(byY)
	chosen := dx
	if my < mx {
		chosen = dy
	}
	left = append([]Entry(nil), chosen.sorted[:chosen.k]...)
	right = append([]Entry(nil), chosen.sorted[chosen.k:]...)
	return left, right
}

// quadraticSplit implements Guttman's quadratic split (ablation baseline).
func quadraticSplit(entries []Entry, minE int) (left, right []Entry) {
	// Pick the pair wasting the most area as seeds.
	si, sj, worst := 0, 1, math.Inf(-1)
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			d := entries[i].Rect.Union(entries[j].Rect).Area() -
				entries[i].Rect.Area() - entries[j].Rect.Area()
			if d > worst {
				worst, si, sj = d, i, j
			}
		}
	}
	left = []Entry{entries[si]}
	right = []Entry{entries[sj]}
	lr, rr := entries[si].Rect, entries[sj].Rect
	rest := make([]Entry, 0, len(entries)-2)
	for i := range entries {
		if i != si && i != sj {
			rest = append(rest, entries[i])
		}
	}
	for len(rest) > 0 {
		// If one side must take all remaining entries to reach minE, give it.
		if len(left)+len(rest) == minE {
			left = append(left, rest...)
			break
		}
		if len(right)+len(rest) == minE {
			right = append(right, rest...)
			break
		}
		// Pick the entry with the greatest enlargement preference.
		bi, bd := 0, math.Inf(-1)
		for i, e := range rest {
			d := math.Abs(lr.Enlargement(e.Rect) - rr.Enlargement(e.Rect))
			if d > bd {
				bd, bi = d, i
			}
		}
		e := rest[bi]
		rest = append(rest[:bi], rest[bi+1:]...)
		dl, dr := lr.Enlargement(e.Rect), rr.Enlargement(e.Rect)
		if dl < dr || (dl == dr && lr.Area() < rr.Area()) ||
			(dl == dr && lr.Area() == rr.Area() && len(left) <= len(right)) {
			left = append(left, e)
			lr = lr.Union(e.Rect)
		} else {
			right = append(right, e)
			rr = rr.Union(e.Rect)
		}
	}
	return left, right
}

// Delete removes one item with the given id whose stored rectangle equals
// rect. It returns false when no such item exists.
func (t *Tree) Delete(rect geo.Rect, id int32) bool {
	leaf, idx := t.findLeaf(t.root, rect, id)
	if leaf == nil {
		return false
	}
	leaf.entries = append(leaf.entries[:idx], leaf.entries[idx+1:]...)
	t.size--
	t.condense(leaf)
	// Shrink the root when it has a single child.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].Child
		t.root.parent = nil
	}
	return true
}

func (t *Tree) findLeaf(n *Node, rect geo.Rect, id int32) (*Node, int) {
	if n.leaf {
		for i := range n.entries {
			if n.entries[i].ID == id && n.entries[i].Rect == rect {
				return n, i
			}
		}
		return nil, -1
	}
	for i := range n.entries {
		if n.entries[i].Rect.ContainsRect(rect) {
			if leaf, idx := t.findLeaf(n.entries[i].Child, rect, id); leaf != nil {
				return leaf, idx
			}
		}
	}
	return nil, -1
}

// condense removes underfull nodes along the path from n to the root and
// reinserts their orphaned entries.
func (t *Tree) condense(n *Node) {
	type orphan struct {
		e     Entry
		level int
	}
	var orphans []orphan
	for cur := n; cur.parent != nil; {
		p := cur.parent
		if len(cur.entries) < t.minE {
			for i := range p.entries {
				if p.entries[i].Child == cur {
					p.entries = append(p.entries[:i], p.entries[i+1:]...)
					break
				}
			}
			for _, e := range cur.entries {
				orphans = append(orphans, orphan{e: e, level: cur.level})
			}
		} else {
			for i := range p.entries {
				if p.entries[i].Child == cur {
					p.entries[i].Rect = cur.Bounds()
					break
				}
			}
		}
		cur = p
	}
	for _, o := range orphans {
		t.reinsertedAt = map[int]bool{}
		t.insertEntry(o.e, o.level)
	}
}

// Search calls fn for every item whose rectangle intersects q. Returning
// false from fn stops the search.
func (t *Tree) Search(q geo.Rect, fn func(Item) bool) {
	t.search(t.root, q, fn)
}

func (t *Tree) search(n *Node, q geo.Rect, fn func(Item) bool) bool {
	for i := range n.entries {
		e := &n.entries[i]
		if !e.Rect.Intersects(q) {
			continue
		}
		if n.leaf {
			if !fn(Item{Rect: e.Rect, ID: e.ID}) {
				return false
			}
		} else if !t.search(e.Child, q, fn) {
			return false
		}
	}
	return true
}

// SearchAll returns all items intersecting q.
func (t *Tree) SearchAll(q geo.Rect) []Item {
	var out []Item
	t.Search(q, func(it Item) bool {
		out = append(out, it)
		return true
	})
	return out
}

// Neighbor is a nearest-neighbour result.
type Neighbor struct {
	Item Item
	Dist float64
}

// Nearest returns the k items nearest to p in increasing distance order
// (MINDIST best-first search).
func (t *Tree) Nearest(p geo.Point, k int) []Neighbor {
	if k <= 0 || t.size == 0 {
		return nil
	}
	type qe struct {
		dist float64
		node *Node
		item Item
		leaf bool
	}
	h := &nnHeap{}
	h.push(qe{dist: 0, node: t.root})
	var out []Neighbor
	for h.len() > 0 && len(out) < k {
		top := h.pop()
		if top.leaf {
			out = append(out, Neighbor{Item: top.item, Dist: top.dist})
			continue
		}
		n := top.node
		for i := range n.entries {
			e := &n.entries[i]
			d := e.Rect.MinDistPoint(p)
			if n.leaf {
				h.push(qe{dist: d, item: Item{Rect: e.Rect, ID: e.ID}, leaf: true})
			} else {
				h.push(qe{dist: d, node: e.Child})
			}
		}
	}
	return out
}

// nnHeap is a small hand-rolled binary min-heap for Nearest; using a typed
// heap avoids container/heap interface allocations in this hot path.
type nnHeap struct {
	items []struct {
		dist float64
		node *Node
		item Item
		leaf bool
	}
}

func (h *nnHeap) len() int { return len(h.items) }

func (h *nnHeap) push(e struct {
	dist float64
	node *Node
	item Item
	leaf bool
}) {
	h.items = append(h.items, e)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.items[p].dist <= h.items[i].dist {
			break
		}
		h.items[p], h.items[i] = h.items[i], h.items[p]
		i = p
	}
}

func (h *nnHeap) pop() struct {
	dist float64
	node *Node
	item Item
	leaf bool
} {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.items) && h.items[l].dist < h.items[small].dist {
			small = l
		}
		if r < len(h.items) && h.items[r].dist < h.items[small].dist {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}

// CheckInvariants validates structural invariants (MBR containment, entry
// counts, level consistency, parent pointers) and returns a descriptive
// error for the first violation. Tests call this after mutation sequences.
func (t *Tree) CheckInvariants() error {
	count := 0
	var walk func(n *Node, isRoot bool) error
	walk = func(n *Node, isRoot bool) error {
		if len(n.entries) > t.opts.MaxEntries {
			return fmt.Errorf("node at level %d has %d entries > max %d", n.level, len(n.entries), t.opts.MaxEntries)
		}
		if !isRoot && len(n.entries) < t.minE {
			return fmt.Errorf("non-root node at level %d underfull: %d < %d", n.level, len(n.entries), t.minE)
		}
		if n.leaf {
			if n.level != 0 {
				return fmt.Errorf("leaf at level %d", n.level)
			}
			count += len(n.entries)
			return nil
		}
		for i := range n.entries {
			e := &n.entries[i]
			if e.Child == nil {
				return fmt.Errorf("internal entry %d at level %d has nil child", i, n.level)
			}
			if e.Child.parent != n {
				return fmt.Errorf("child at level %d has wrong parent pointer", e.Child.level)
			}
			if e.Child.level != n.level-1 {
				return fmt.Errorf("child level %d under node level %d", e.Child.level, n.level)
			}
			cb := e.Child.Bounds()
			if !e.Rect.ContainsRect(cb) {
				return fmt.Errorf("entry MBR %v does not contain child bounds %v", e.Rect, cb)
			}
			if err := walk(e.Child, false); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, true); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("item count %d != size %d", count, t.size)
	}
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
