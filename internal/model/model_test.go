package model

import (
	"bytes"
	"strings"
	"testing"

	"gpssn/internal/geo"
	"gpssn/internal/roadnet"
	"gpssn/internal/socialnet"
)

// tinyDataset builds the 5-user network resembling the paper's Figure 1:
// a 6-vertex road network with POIs, and 5 users with the Table 1 interest
// vectors (topics: restaurant, shopping mall, cafe).
func tinyDataset() *Dataset {
	road := roadnet.NewGraph(6, 8)
	v := make([]roadnet.VertexID, 6)
	coords := []geo.Point{
		geo.Pt(0, 0), geo.Pt(2, 0), geo.Pt(4, 0),
		geo.Pt(0, 2), geo.Pt(2, 2), geo.Pt(4, 2),
	}
	for i, c := range coords {
		v[i] = road.AddVertex(c)
	}
	edges := []roadnet.EdgeID{
		road.AddEdge(v[0], v[1]),
		road.AddEdge(v[1], v[2]),
		road.AddEdge(v[3], v[4]),
		road.AddEdge(v[4], v[5]),
		road.AddEdge(v[0], v[3]),
		road.AddEdge(v[1], v[4]),
		road.AddEdge(v[2], v[5]),
	}

	social := socialnet.NewGraph(5)
	social.AddFriendship(0, 1)
	social.AddFriendship(0, 2)
	social.AddFriendship(1, 2)
	social.AddFriendship(2, 3)
	social.AddFriendship(3, 4)

	interests := [][]float64{
		{0.7, 0.3, 0.7},
		{0.2, 0.9, 0.3},
		{0.4, 0.8, 0.8},
		{0.9, 0.7, 0.7},
		{0.1, 0.8, 0.5},
	}
	d := &Dataset{
		Name:      "tiny",
		Road:      road,
		Social:    social,
		NumTopics: 3,
	}
	for i, w := range interests {
		at := road.AttachAt(edges[i%len(edges)], 0.25)
		d.Users = append(d.Users, User{
			ID:        socialnet.UserID(i),
			At:        at,
			Loc:       road.Location(at),
			Interests: w,
		})
	}
	poiKw := [][]int{{0}, {1, 2}, {2}, {0, 1}}
	for i, kw := range poiKw {
		at := road.AttachAt(edges[(i*2+1)%len(edges)], 0.6)
		d.POIs = append(d.POIs, POI{
			ID:       POIID(i),
			At:       at,
			Loc:      road.Location(at),
			Keywords: kw,
		})
	}
	return d
}

func TestValidateOK(t *testing.T) {
	if err := tinyDataset().Validate(); err != nil {
		t.Fatalf("Validate = %v", err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	cases := map[string]func(*Dataset){
		"nil road":         func(d *Dataset) { d.Road = nil },
		"bad topic count":  func(d *Dataset) { d.NumTopics = 0 },
		"user id mismatch": func(d *Dataset) { d.Users[1].ID = 7 },
		"short interests":  func(d *Dataset) { d.Users[0].Interests = []float64{0.5} },
		"interest > 1":     func(d *Dataset) { d.Users[0].Interests[0] = 1.5 },
		"interest < 0":     func(d *Dataset) { d.Users[0].Interests[0] = -0.1 },
		"poi id mismatch":  func(d *Dataset) { d.POIs[0].ID = 3 },
		"empty keywords":   func(d *Dataset) { d.POIs[0].Keywords = nil },
		"keyword too big":  func(d *Dataset) { d.POIs[0].Keywords = []int{99} },
		"bad attach edge":  func(d *Dataset) { d.Users[0].At.Edge = 99 },
		"bad attach t":     func(d *Dataset) { d.POIs[0].At.T = 1.5 },
		"user count":       func(d *Dataset) { d.Users = d.Users[:3] },
	}
	for name, corrupt := range cases {
		d := tinyDataset()
		corrupt(d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: Validate should fail", name)
		}
	}
}

func TestStats(t *testing.T) {
	d := tinyDataset()
	s := d.Stats()
	if s.SocialUsers != 5 || s.RoadVerts != 6 || s.NumPOIs != 4 || s.NumTopics != 3 {
		t.Errorf("Stats = %+v", s)
	}
	if s.SocialDeg != 2.0 { // 5 edges, 5 users
		t.Errorf("SocialDeg = %v, want 2.0", s.SocialDeg)
	}
	if s.AvgKeywords != 1.5 { // (1+2+1+2)/4
		t.Errorf("AvgKeywords = %v, want 1.5", s.AvgKeywords)
	}
	if !strings.Contains(s.String(), "tiny") {
		t.Errorf("String = %q", s.String())
	}
}

func TestSortedKeywords(t *testing.T) {
	p := &POI{Keywords: []int{3, 1, 2}}
	got := p.SortedKeywords()
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("SortedKeywords = %v", got)
	}
	if p.Keywords[0] != 3 {
		t.Error("SortedKeywords must not mutate the POI")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := tinyDataset()
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Name != d.Name || got.NumTopics != d.NumTopics {
		t.Errorf("header mismatch: %q/%d", got.Name, got.NumTopics)
	}
	if got.Road.NumVertices() != d.Road.NumVertices() || got.Road.NumEdges() != d.Road.NumEdges() {
		t.Errorf("road mismatch")
	}
	if got.Social.NumUsers() != d.Social.NumUsers() || got.Social.NumFriendships() != d.Social.NumFriendships() {
		t.Errorf("social mismatch")
	}
	for i := range d.Users {
		if got.Users[i].At != d.Users[i].At {
			t.Errorf("user %d attach mismatch", i)
		}
		for f := range d.Users[i].Interests {
			if got.Users[i].Interests[f] != d.Users[i].Interests[f] {
				t.Errorf("user %d interest %d mismatch", i, f)
			}
		}
	}
	for i := range d.POIs {
		if got.POIs[i].At != d.POIs[i].At || len(got.POIs[i].Keywords) != len(d.POIs[i].Keywords) {
			t.Errorf("POI %d mismatch", i)
		}
	}
	// Friendship structure preserved.
	if !got.Social.AreFriends(0, 1) || got.Social.AreFriends(0, 4) {
		t.Error("friendships not preserved")
	}
}

func TestSaveDeterministic(t *testing.T) {
	d := tinyDataset()
	var a, b bytes.Buffer
	if err := d.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := d.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("Save is not deterministic")
	}
}

func TestSaveRejectsInvalid(t *testing.T) {
	d := tinyDataset()
	d.NumTopics = 0
	if err := d.Save(&bytes.Buffer{}); err == nil {
		t.Error("Save should reject an invalid dataset")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a dataset at all")); err == nil {
		t.Error("Load should reject garbage")
	}
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Error("Load should reject empty input")
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	d := tinyDataset()
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every strict prefix must fail cleanly, never panic.
	for _, frac := range []int{2, 3, 4, 10} {
		cut := len(full) / frac * (frac - 1)
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("Load of %d/%d prefix should fail", frac-1, frac)
		}
	}
}

func TestAccessors(t *testing.T) {
	d := tinyDataset()
	if d.User(2).ID != 2 {
		t.Error("User accessor broken")
	}
	if d.POI(1).ID != 1 {
		t.Error("POI accessor broken")
	}
}
