package model

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gpssn/internal/geo"
	"gpssn/internal/roadnet"
	"gpssn/internal/socialnet"
)

// finiteCoords rejects NaN/Inf and over-magnitude coordinates: they parse
// fine but would corrupt snapping and every downstream distance (beyond
// MaxCoord, squared distances overflow to +Inf).
func finiteCoords(x, y float64) bool {
	return CoordOK(x) && CoordOK(y)
}

// CSVInput bundles the readers for LoadCSV. The formats mirror the public
// dumps the paper used (SNAP edge lists for Brightkite/Gowalla, the
// DIMACS/Utah road files for California/Colorado):
//
//   - RoadVertices: "id,x,y" — intersection coordinates, ids must be
//     0..N-1 in any order.
//   - RoadEdges: "u,v" — undirected road segments between vertex ids.
//   - SocialEdges: "u,v" — undirected friendships between user ids
//     0..M-1; M is taken from the Users file.
//   - Users: "id,x,y,p0,p1,...,p_{d-1}" — home coordinates (snapped onto
//     the nearest road segment) and the interest vector.
//   - POIs: "id,x,y,k0[;k1;k2...]" — POI coordinates (snapped) and a
//     semicolon-separated keyword list.
//
// Lines starting with '#' and blank lines are ignored. The vocabulary
// size d is inferred from the first user row.
type CSVInput struct {
	Name         string
	RoadVertices io.Reader
	RoadEdges    io.Reader
	SocialEdges  io.Reader
	Users        io.Reader
	POIs         io.Reader
}

// LoadCSV assembles a dataset from CSV inputs and validates it.
func LoadCSV(in CSVInput) (*Dataset, error) {
	if in.RoadVertices == nil || in.RoadEdges == nil || in.Users == nil || in.POIs == nil {
		return nil, fmt.Errorf("model: RoadVertices, RoadEdges, Users, and POIs readers are required")
	}

	// Road vertices.
	rows, err := readCSV(in.RoadVertices)
	if err != nil {
		return nil, fmt.Errorf("model: road vertices: %w", err)
	}
	type vrec struct{ x, y float64 }
	verts := map[int]vrec{}
	maxID := -1
	for i, row := range rows {
		if len(row) != 3 {
			return nil, fmt.Errorf("model: road vertex row %d: want id,x,y got %d fields", i+1, len(row))
		}
		id, err1 := strconv.Atoi(row[0])
		x, err2 := strconv.ParseFloat(row[1], 64)
		y, err3 := strconv.ParseFloat(row[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("model: road vertex row %d: bad numbers", i+1)
		}
		if !finiteCoords(x, y) {
			return nil, fmt.Errorf("model: road vertex row %d: coordinates must be finite", i+1)
		}
		if _, dup := verts[id]; dup {
			return nil, fmt.Errorf("model: duplicate road vertex id %d", id)
		}
		verts[id] = vrec{x, y}
		if id > maxID {
			maxID = id
		}
	}
	if len(verts) == 0 {
		return nil, fmt.Errorf("model: no road vertices")
	}
	if maxID != len(verts)-1 {
		return nil, fmt.Errorf("model: road vertex ids must be 0..%d, max seen %d", len(verts)-1, maxID)
	}
	road := roadnet.NewGraph(len(verts), len(verts)*2)
	for id := 0; id < len(verts); id++ {
		v := verts[id]
		road.AddVertex(geo.Pt(v.x, v.y))
	}

	// Road edges.
	rows, err = readCSV(in.RoadEdges)
	if err != nil {
		return nil, fmt.Errorf("model: road edges: %w", err)
	}
	for i, row := range rows {
		u, v, err := edgeRow(row)
		if err != nil {
			return nil, fmt.Errorf("model: road edge row %d: %w", i+1, err)
		}
		if u < 0 || u >= len(verts) || v < 0 || v >= len(verts) {
			return nil, fmt.Errorf("model: road edge row %d references missing vertex", i+1)
		}
		if u == v {
			return nil, fmt.Errorf("model: road edge row %d is a self-loop", i+1)
		}
		if road.HasEdge(roadnet.VertexID(u), roadnet.VertexID(v)) {
			return nil, fmt.Errorf("model: road edge row %d: duplicate edge %d-%d", i+1, u, v)
		}
		road.AddEdge(roadnet.VertexID(u), roadnet.VertexID(v))
	}
	if road.NumEdges() == 0 {
		return nil, fmt.Errorf("model: no road edges")
	}

	// Users.
	rows, err = readCSV(in.Users)
	if err != nil {
		return nil, fmt.Errorf("model: users: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("model: no users")
	}
	d := len(rows[0]) - 3
	if d < 1 {
		return nil, fmt.Errorf("model: user rows need id,x,y plus at least one interest")
	}
	users := make([]User, len(rows))
	seenU := make([]bool, len(rows))
	for i, row := range rows {
		if len(row) != d+3 {
			return nil, fmt.Errorf("model: user row %d has %d fields, want %d", i+1, len(row), d+3)
		}
		id, err := strconv.Atoi(row[0])
		if err != nil || id < 0 || id >= len(rows) {
			return nil, fmt.Errorf("model: user row %d: id must be 0..%d", i+1, len(rows)-1)
		}
		if seenU[id] {
			return nil, fmt.Errorf("model: duplicate user id %d", id)
		}
		seenU[id] = true
		x, err1 := strconv.ParseFloat(row[1], 64)
		y, err2 := strconv.ParseFloat(row[2], 64)
		if err1 != nil || err2 != nil || !finiteCoords(x, y) {
			return nil, fmt.Errorf("model: user row %d: bad coordinates", i+1)
		}
		w := make([]float64, d)
		for f := 0; f < d; f++ {
			p, err := strconv.ParseFloat(row[3+f], 64)
			if err != nil {
				return nil, fmt.Errorf("model: user row %d: bad interest %d", i+1, f)
			}
			w[f] = p
		}
		at, ok := road.SnapPoint(geo.Pt(x, y))
		if !ok {
			return nil, fmt.Errorf("model: user row %d: cannot snap onto road network", i+1)
		}
		users[id] = User{
			ID: socialnet.UserID(id), At: at, Loc: road.Location(at), Interests: w,
		}
	}

	// Social edges.
	social := socialnet.NewGraph(len(users))
	if in.SocialEdges != nil {
		rows, err = readCSV(in.SocialEdges)
		if err != nil {
			return nil, fmt.Errorf("model: social edges: %w", err)
		}
		for i, row := range rows {
			u, v, err := edgeRow(row)
			if err != nil {
				return nil, fmt.Errorf("model: social edge row %d: %w", i+1, err)
			}
			if u < 0 || u >= len(users) || v < 0 || v >= len(users) {
				return nil, fmt.Errorf("model: social edge row %d references missing user", i+1)
			}
			if u == v {
				return nil, fmt.Errorf("model: social edge row %d is a self-loop", i+1)
			}
			if social.AreFriends(socialnet.UserID(u), socialnet.UserID(v)) {
				return nil, fmt.Errorf("model: social edge row %d: duplicate friendship %d-%d", i+1, u, v)
			}
			social.AddFriendship(socialnet.UserID(u), socialnet.UserID(v))
		}
	}

	// POIs.
	rows, err = readCSV(in.POIs)
	if err != nil {
		return nil, fmt.Errorf("model: POIs: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("model: no POIs")
	}
	pois := make([]POI, len(rows))
	seenP := make([]bool, len(rows))
	for i, row := range rows {
		if len(row) != 4 {
			return nil, fmt.Errorf("model: POI row %d: want id,x,y,keywords got %d fields", i+1, len(row))
		}
		id, err := strconv.Atoi(row[0])
		if err != nil || id < 0 || id >= len(rows) {
			return nil, fmt.Errorf("model: POI row %d: id must be 0..%d", i+1, len(rows)-1)
		}
		if seenP[id] {
			return nil, fmt.Errorf("model: duplicate POI id %d", id)
		}
		seenP[id] = true
		x, err1 := strconv.ParseFloat(row[1], 64)
		y, err2 := strconv.ParseFloat(row[2], 64)
		if err1 != nil || err2 != nil || !finiteCoords(x, y) {
			return nil, fmt.Errorf("model: POI row %d: bad coordinates", i+1)
		}
		var kws []int
		for _, part := range strings.Split(row[3], ";") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			k, err := strconv.Atoi(part)
			if err != nil {
				return nil, fmt.Errorf("model: POI row %d: bad keyword %q", i+1, part)
			}
			kws = append(kws, k)
		}
		at, ok := road.SnapPoint(geo.Pt(x, y))
		if !ok {
			return nil, fmt.Errorf("model: POI row %d: cannot snap onto road network", i+1)
		}
		pois[id] = POI{ID: POIID(id), At: at, Loc: road.Location(at), Keywords: kws}
	}

	name := in.Name
	if name == "" {
		name = "csv-import"
	}
	ds := &Dataset{
		Name: name, Road: road, Social: social,
		Users: users, POIs: pois, NumTopics: d,
	}
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("model: imported dataset invalid: %w", err)
	}
	return ds, nil
}

// readCSV parses rows, dropping comment and blank lines.
func readCSV(r io.Reader) ([][]string, error) {
	cr := csv.NewReader(r)
	cr.Comment = '#'
	cr.FieldsPerRecord = -1
	cr.TrimLeadingSpace = true
	var out [][]string
	for {
		row, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if len(row) == 1 && strings.TrimSpace(row[0]) == "" {
			continue
		}
		out = append(out, row)
	}
}

func edgeRow(row []string) (int, int, error) {
	if len(row) != 2 {
		return 0, 0, fmt.Errorf("want u,v got %d fields", len(row))
	}
	u, err1 := strconv.Atoi(strings.TrimSpace(row[0]))
	v, err2 := strconv.Atoi(strings.TrimSpace(row[1]))
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("bad vertex ids %q,%q", row[0], row[1])
	}
	return u, v, nil
}
