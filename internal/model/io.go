package model

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"gpssn/internal/geo"
	"gpssn/internal/roadnet"
	"gpssn/internal/socialnet"
)

// magic identifies the dataset file format; the trailing byte is a format
// version so future layouts can coexist.
var magic = [8]byte{'G', 'P', 'S', 'S', 'N', 'D', 'S', 1}

// maxCount bounds every element count read from a dataset file. Counts
// beyond it are treated as corruption so a damaged length field cannot
// drive a giant allocation or an unbounded read loop.
const maxCount = 1 << 26

// Save writes the dataset in the library's binary format. The format is
// self-contained (graph topology, users, POIs) and deterministic: saving
// the same dataset twice yields identical bytes.
func (d *Dataset) Save(w io.Writer) error {
	if err := d.Validate(); err != nil {
		return fmt.Errorf("model: refusing to save invalid dataset: %w", err)
	}
	bw := bufio.NewWriter(w)
	e := &binWriter{w: bw}

	e.bytes(magic[:])
	e.str(d.Name)
	e.u32(uint32(d.NumTopics))

	// Road network.
	e.u32(uint32(d.Road.NumVertices()))
	for v := 0; v < d.Road.NumVertices(); v++ {
		p := d.Road.Vertex(roadnet.VertexID(v))
		e.f64(p.X)
		e.f64(p.Y)
	}
	e.u32(uint32(d.Road.NumEdges()))
	for i := 0; i < d.Road.NumEdges(); i++ {
		edge := d.Road.EdgeAt(roadnet.EdgeID(i))
		e.u32(uint32(edge.U))
		e.u32(uint32(edge.V))
	}

	// Social network: each undirected edge once (u < v).
	e.u32(uint32(d.Social.NumUsers()))
	e.u32(uint32(d.Social.NumFriendships()))
	written := 0
	for u := 0; u < d.Social.NumUsers(); u++ {
		for _, v := range d.Social.Friends(socialnet.UserID(u)) {
			if socialnet.UserID(u) < v {
				e.u32(uint32(u))
				e.u32(uint32(v))
				written++
			}
		}
	}
	if written != d.Social.NumFriendships() {
		return fmt.Errorf("model: wrote %d friendships, expected %d", written, d.Social.NumFriendships())
	}

	// Users.
	for i := range d.Users {
		u := &d.Users[i]
		e.u32(uint32(u.At.Edge))
		e.f64(u.At.T)
		e.f64(u.Loc.X)
		e.f64(u.Loc.Y)
		for _, p := range u.Interests {
			e.f64(p)
		}
	}

	// POIs.
	e.u32(uint32(len(d.POIs)))
	for i := range d.POIs {
		p := &d.POIs[i]
		e.u32(uint32(p.At.Edge))
		e.f64(p.At.T)
		e.f64(p.Loc.X)
		e.f64(p.Loc.Y)
		e.u32(uint32(len(p.Keywords)))
		for _, k := range p.Keywords {
			e.u32(uint32(k))
		}
	}

	if e.err != nil {
		return e.err
	}
	return bw.Flush()
}

// Load reads a dataset written by Save and validates it.
func Load(r io.Reader) (*Dataset, error) {
	dec := &binReader{r: bufio.NewReader(r)}

	var got [8]byte
	dec.bytes(got[:])
	if dec.err != nil {
		return nil, dec.err
	}
	if got != magic {
		return nil, fmt.Errorf("model: bad magic %q (not a GP-SSN dataset or wrong version)", got)
	}

	d := &Dataset{}
	d.Name = dec.str()
	d.NumTopics = int(dec.u32())
	if d.NumTopics < 0 || d.NumTopics > maxCount {
		return nil, fmt.Errorf("model: implausible topic count %d", d.NumTopics)
	}

	// Every count read below is capped before it sizes an allocation or
	// bounds a loop: a corrupt or adversarial file must fail with an error,
	// never drive a multi-gigabyte allocation or a near-endless read loop.
	nv := int(dec.u32())
	if nv < 0 || nv > maxCount {
		return nil, fmt.Errorf("model: implausible vertex count %d", nv)
	}
	d.Road = roadnet.NewGraph(nv, nv*2)
	for i := 0; i < nv; i++ {
		x, y := dec.f64(), dec.f64()
		if dec.err != nil {
			return nil, dec.err
		}
		d.Road.AddVertex(geo.Pt(x, y))
	}
	ne := int(dec.u32())
	if ne < 0 || ne > maxCount {
		return nil, fmt.Errorf("model: implausible edge count %d", ne)
	}
	for i := 0; i < ne; i++ {
		u, v := dec.u32(), dec.u32()
		if dec.err != nil {
			return nil, dec.err
		}
		if int(u) >= nv || int(v) >= nv {
			return nil, fmt.Errorf("model: edge %d references vertex out of range", i)
		}
		if u == v {
			return nil, fmt.Errorf("model: edge %d is a self-loop at %d", i, u)
		}
		d.Road.AddEdge(roadnet.VertexID(u), roadnet.VertexID(v))
	}

	nu := int(dec.u32())
	nf := int(dec.u32())
	if nu < 0 || nu > maxCount || nf < 0 || nf > maxCount {
		return nil, fmt.Errorf("model: implausible user/friendship counts %d/%d", nu, nf)
	}
	d.Social = socialnet.NewGraph(nu)
	for i := 0; i < nf; i++ {
		u, v := dec.u32(), dec.u32()
		if dec.err != nil {
			return nil, dec.err
		}
		if int(u) >= nu || int(v) >= nu {
			return nil, fmt.Errorf("model: friendship %d references user out of range", i)
		}
		d.Social.AddFriendship(socialnet.UserID(u), socialnet.UserID(v))
	}

	// Users and POIs are appended one record at a time rather than
	// allocated up front from the declared counts: a lying count then fails
	// at the first truncated record instead of reserving gigabytes.
	d.Users = make([]User, 0, min(nu, 1<<16))
	for i := 0; i < nu; i++ {
		var u User
		u.ID = socialnet.UserID(i)
		u.At = roadnet.Attach{Edge: roadnet.EdgeID(dec.u32()), T: dec.f64()}
		u.Loc = geo.Pt(dec.f64(), dec.f64())
		u.Interests = make([]float64, d.NumTopics)
		for f := range u.Interests {
			u.Interests[f] = dec.f64()
		}
		if dec.err != nil {
			return nil, dec.err
		}
		d.Users = append(d.Users, u)
	}

	np := int(dec.u32())
	if np < 0 || np > maxCount {
		return nil, fmt.Errorf("model: implausible POI count %d", np)
	}
	d.POIs = make([]POI, 0, min(np, 1<<16))
	for i := 0; i < np; i++ {
		var p POI
		p.ID = POIID(i)
		p.At = roadnet.Attach{Edge: roadnet.EdgeID(dec.u32()), T: dec.f64()}
		p.Loc = geo.Pt(dec.f64(), dec.f64())
		nk := int(dec.u32())
		if dec.err != nil {
			return nil, dec.err
		}
		if nk < 0 || nk > 1<<20 {
			return nil, fmt.Errorf("model: POI %d has implausible keyword count %d", i, nk)
		}
		p.Keywords = make([]int, nk)
		for k := range p.Keywords {
			p.Keywords[k] = int(dec.u32())
		}
		if dec.err != nil {
			return nil, dec.err
		}
		d.POIs = append(d.POIs, p)
	}

	if dec.err != nil {
		return nil, dec.err
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("model: loaded dataset invalid: %w", err)
	}
	return d, nil
}

// binWriter accumulates the first write error and turns subsequent writes
// into no-ops, so Save reads as straight-line code.
type binWriter struct {
	w   io.Writer
	err error
	buf [8]byte
}

func (e *binWriter) bytes(b []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(b)
}

func (e *binWriter) u32(v uint32) {
	binary.LittleEndian.PutUint32(e.buf[:4], v)
	e.bytes(e.buf[:4])
}

func (e *binWriter) f64(v float64) {
	binary.LittleEndian.PutUint64(e.buf[:8], math.Float64bits(v))
	e.bytes(e.buf[:8])
}

func (e *binWriter) str(s string) {
	e.u32(uint32(len(s)))
	e.bytes([]byte(s))
}

type binReader struct {
	r   io.Reader
	err error
	buf [8]byte
}

func (d *binReader) bytes(b []byte) {
	if d.err != nil {
		for i := range b {
			b[i] = 0
		}
		return
	}
	_, d.err = io.ReadFull(d.r, b)
}

func (d *binReader) u32() uint32 {
	d.bytes(d.buf[:4])
	return binary.LittleEndian.Uint32(d.buf[:4])
}

func (d *binReader) f64() float64 {
	d.bytes(d.buf[:8])
	return math.Float64frombits(binary.LittleEndian.Uint64(d.buf[:8]))
}

func (d *binReader) str() string {
	n := d.u32()
	if d.err != nil || n > 1<<20 {
		if d.err == nil {
			d.err = fmt.Errorf("model: implausible string length %d", n)
		}
		return ""
	}
	b := make([]byte, n)
	d.bytes(b)
	return string(b)
}
