package model

import (
	"strings"
	"testing"
)

// goodCSV returns a minimal valid CSV input set.
func goodCSV() CSVInput {
	return CSVInput{
		Name: "csvtest",
		RoadVertices: strings.NewReader(`# id,x,y
0,0,0
1,1,0
2,1,1
3,0,1`),
		RoadEdges: strings.NewReader(`0,1
1,2
2,3
3,0`),
		SocialEdges: strings.NewReader(`0,1
1,2`),
		Users: strings.NewReader(`0,0.1,0.0,0.9,0.1
1,0.9,0.0,0.8,0.2
2,0.5,1.0,0.1,0.9`),
		POIs: strings.NewReader(`0,0.5,0.0,0
1,0.5,1.0,0;1`),
	}
}

func TestLoadCSVGood(t *testing.T) {
	ds, err := LoadCSV(goodCSV())
	if err != nil {
		t.Fatalf("LoadCSV: %v", err)
	}
	if ds.Name != "csvtest" {
		t.Errorf("Name = %q", ds.Name)
	}
	if ds.Road.NumVertices() != 4 || ds.Road.NumEdges() != 4 {
		t.Errorf("road %d/%d", ds.Road.NumVertices(), ds.Road.NumEdges())
	}
	if ds.Social.NumUsers() != 3 || ds.Social.NumFriendships() != 2 {
		t.Errorf("social %d/%d", ds.Social.NumUsers(), ds.Social.NumFriendships())
	}
	if ds.NumTopics != 2 {
		t.Errorf("NumTopics = %d", ds.NumTopics)
	}
	if len(ds.POIs) != 2 || len(ds.POIs[1].Keywords) != 2 {
		t.Errorf("POIs wrong: %+v", ds.POIs)
	}
	// Users snapped onto the road.
	for i, u := range ds.Users {
		if got := ds.Road.Location(u.At); got.Dist(u.Loc) > 1e-9 {
			t.Errorf("user %d not snapped consistently", i)
		}
	}
}

func TestLoadCSVDuplicateRoadEdgeRejected(t *testing.T) {
	// The reversed duplicate must be caught too (the graph is undirected),
	// and the error must carry the offending row number.
	for _, dup := range []string{"0,1\n0,1\n1,2", "0,1\n1,0\n1,2"} {
		in := goodCSV()
		in.RoadEdges = strings.NewReader(dup)
		_, err := LoadCSV(in)
		if err == nil {
			t.Fatalf("duplicate road edge %q accepted", dup)
		}
		if !strings.Contains(err.Error(), "row 2") {
			t.Errorf("error %q does not name row 2", err)
		}
	}
}

func TestLoadCSVErrors(t *testing.T) {
	cases := map[string]func(*CSVInput){
		"missing readers": func(in *CSVInput) { in.RoadVertices = nil },
		"bad vertex row":  func(in *CSVInput) { in.RoadVertices = strings.NewReader("0,0") },
		"bad vertex num":  func(in *CSVInput) { in.RoadVertices = strings.NewReader("0,x,0") },
		"dup vertex":      func(in *CSVInput) { in.RoadVertices = strings.NewReader("0,0,0\n0,1,1") },
		"gap vertex ids":  func(in *CSVInput) { in.RoadVertices = strings.NewReader("0,0,0\n2,1,1") },
		"edge to missing": func(in *CSVInput) { in.RoadEdges = strings.NewReader("0,9") },
		"edge self loop":  func(in *CSVInput) { in.RoadEdges = strings.NewReader("1,1") },
		"edge bad ids":    func(in *CSVInput) { in.RoadEdges = strings.NewReader("a,b") },
		"no road edges":   func(in *CSVInput) { in.RoadEdges = strings.NewReader("# nothing") },
		"no users":        func(in *CSVInput) { in.Users = strings.NewReader("# nothing") },
		"short user row":  func(in *CSVInput) { in.Users = strings.NewReader("0,1,1") },
		"user id gap":     func(in *CSVInput) { in.Users = strings.NewReader("5,0,0,0.5,0.5") },
		"dup user":        func(in *CSVInput) { in.Users = strings.NewReader("0,0,0,0.5,0.5\n0,1,1,0.5,0.5") },
		"bad interest":    func(in *CSVInput) { in.Users = strings.NewReader("0,0,0,x,0.5") },
		"interest > 1":    func(in *CSVInput) { in.Users = strings.NewReader("0,0,0,2.0,0.5") },
		"social missing":  func(in *CSVInput) { in.SocialEdges = strings.NewReader("0,99") },
		"social selfloop": func(in *CSVInput) { in.SocialEdges = strings.NewReader("1,1") },
		"social dup":      func(in *CSVInput) { in.SocialEdges = strings.NewReader("0,1\n1,0") },
		"NaN vertex":      func(in *CSVInput) { in.RoadVertices = strings.NewReader("0,NaN,0\n1,1,0") },
		"Inf user coord":  func(in *CSVInput) { in.Users = strings.NewReader("0,+Inf,0,0.5,0.5") },
		"NaN POI coord":   func(in *CSVInput) { in.POIs = strings.NewReader("0,NaN,0,0") },
		"NaN interest":    func(in *CSVInput) { in.Users = strings.NewReader("0,0,0,NaN,0.5") },
		"no POIs":         func(in *CSVInput) { in.POIs = strings.NewReader("# nothing") },
		"bad POI kw":      func(in *CSVInput) { in.POIs = strings.NewReader("0,0,0,x") },
		"POI kw too big":  func(in *CSVInput) { in.POIs = strings.NewReader("0,0,0,9") },
		"dup POI":         func(in *CSVInput) { in.POIs = strings.NewReader("0,0,0,0\n0,1,1,1") },
		"POI no keywords": func(in *CSVInput) { in.POIs = strings.NewReader("0,0,0,;") },
	}
	for name, corrupt := range cases {
		in := goodCSV()
		corrupt(&in)
		if _, err := LoadCSV(in); err == nil {
			t.Errorf("%s: LoadCSV should fail", name)
		}
	}
}

func TestLoadCSVNoSocialEdgesReader(t *testing.T) {
	in := goodCSV()
	in.SocialEdges = nil // optional: a network with no friendships
	ds, err := LoadCSV(in)
	if err != nil {
		t.Fatalf("LoadCSV: %v", err)
	}
	if ds.Social.NumFriendships() != 0 {
		t.Error("expected no friendships")
	}
}

func TestLoadCSVDefaultName(t *testing.T) {
	in := goodCSV()
	in.Name = ""
	ds, err := LoadCSV(in)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name != "csv-import" {
		t.Errorf("Name = %q", ds.Name)
	}
}
