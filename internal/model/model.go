// Package model defines the spatial-social network data model shared by the
// GP-SSN indexes, query engine, generators, and benchmarks: the combined
// G_rs = G_r ∪ G_s of Definition 4, with POIs on road edges (Definition 2)
// and users carrying interest vectors and home locations on the road
// network (Definition 3).
package model

import (
	"fmt"
	"sort"

	"gpssn/internal/geo"
	"gpssn/internal/roadnet"
	"gpssn/internal/socialnet"
)

// MaxCoord bounds coordinate magnitude. Beyond it squared distances and
// bounding-box areas overflow to +Inf, which breaks spatial snapping and
// every downstream distance, so such coordinates are rejected alongside
// NaN and ±Inf.
const MaxCoord = 1e150

// CoordOK reports whether v is usable as a coordinate: finite and within
// ±MaxCoord. The negated-comparison form also rejects NaN.
func CoordOK(v float64) bool {
	return v >= -MaxCoord && v <= MaxCoord
}

// POIID identifies a point of interest; it is the POI's index in
// Dataset.POIs.
type POIID int32

// POI is a point of interest on a road-network edge (Definition 2): an id,
// a 2D location, and a keyword set drawn from the topic vocabulary
// [0, NumTopics).
type POI struct {
	ID       POIID
	At       roadnet.Attach
	Loc      geo.Point
	Keywords []int
}

// User is a social-network user: a friendship-graph vertex carrying an
// interest vector u.w over the topic vocabulary (each entry a probability
// in [0,1]) and a home location attached to the road network.
type User struct {
	ID        socialnet.UserID
	At        roadnet.Attach
	Loc       geo.Point
	Interests []float64
}

// Dataset is a complete spatial-social network: the road network G_r, the
// social network G_s, the users (one per social vertex, in id order), the
// POIs (in id order), and the size of the shared topic vocabulary.
type Dataset struct {
	Name      string
	Road      *roadnet.Graph
	Social    *socialnet.Graph
	Users     []User
	POIs      []POI
	NumTopics int
}

// Validate checks the structural invariants that every other package
// assumes: one user per social vertex, ids equal to slice positions,
// interest vectors of NumTopics probabilities in [0,1], keywords within the
// vocabulary, and attachments pointing at existing road edges.
func (d *Dataset) Validate() error {
	if d.Road == nil || d.Social == nil {
		return fmt.Errorf("model: nil road or social network")
	}
	if d.NumTopics <= 0 {
		return fmt.Errorf("model: non-positive NumTopics %d", d.NumTopics)
	}
	if len(d.Users) != d.Social.NumUsers() {
		return fmt.Errorf("model: %d users but %d social vertices", len(d.Users), d.Social.NumUsers())
	}
	for v := 0; v < d.Road.NumVertices(); v++ {
		p := d.Road.Vertex(roadnet.VertexID(v))
		if !CoordOK(p.X) || !CoordOK(p.Y) {
			return fmt.Errorf("model: road vertex %d at unusable (%v, %v)", v, p.X, p.Y)
		}
	}
	for i, u := range d.Users {
		if int(u.ID) != i {
			return fmt.Errorf("model: user at position %d has id %d", i, u.ID)
		}
		if len(u.Interests) != d.NumTopics {
			return fmt.Errorf("model: user %d has %d interests, want %d", i, len(u.Interests), d.NumTopics)
		}
		for f, p := range u.Interests {
			// The negated form also rejects NaN (both plain comparisons
			// are false for it).
			if !(p >= 0 && p <= 1) {
				return fmt.Errorf("model: user %d interest %d = %v outside [0,1]", i, f, p)
			}
		}
		if err := d.checkAttach(u.At); err != nil {
			return fmt.Errorf("model: user %d: %w", i, err)
		}
	}
	for i, p := range d.POIs {
		if int(p.ID) != i {
			return fmt.Errorf("model: POI at position %d has id %d", i, p.ID)
		}
		if len(p.Keywords) == 0 {
			return fmt.Errorf("model: POI %d has no keywords", i)
		}
		for _, k := range p.Keywords {
			if k < 0 || k >= d.NumTopics {
				return fmt.Errorf("model: POI %d keyword %d outside vocabulary [0,%d)", i, k, d.NumTopics)
			}
		}
		if err := d.checkAttach(p.At); err != nil {
			return fmt.Errorf("model: POI %d: %w", i, err)
		}
	}
	return nil
}

func (d *Dataset) checkAttach(a roadnet.Attach) error {
	if a.Edge < 0 || int(a.Edge) >= d.Road.NumEdges() {
		return fmt.Errorf("attachment edge %d out of range [0,%d)", a.Edge, d.Road.NumEdges())
	}
	if !(a.T >= 0 && a.T <= 1) { // negated form: NaN must fail too
		return fmt.Errorf("attachment offset %v outside [0,1]", a.T)
	}
	return nil
}

// User returns the user with the given id.
func (d *Dataset) User(id socialnet.UserID) *User { return &d.Users[id] }

// POI returns the POI with the given id.
func (d *Dataset) POI(id POIID) *POI { return &d.POIs[id] }

// Stats summarizes a dataset the way the paper's Table 2 does.
type Stats struct {
	Name        string
	SocialUsers int
	SocialDeg   float64
	RoadVerts   int
	RoadDeg     float64
	NumPOIs     int
	NumTopics   int
	AvgKeywords float64
}

// Stats computes the Table 2 statistics for the dataset.
func (d *Dataset) Stats() Stats {
	kw := 0
	for _, p := range d.POIs {
		kw += len(p.Keywords)
	}
	avgKw := 0.0
	if len(d.POIs) > 0 {
		avgKw = float64(kw) / float64(len(d.POIs))
	}
	return Stats{
		Name:        d.Name,
		SocialUsers: d.Social.NumUsers(),
		SocialDeg:   d.Social.AvgDegree(),
		RoadVerts:   d.Road.NumVertices(),
		RoadDeg:     d.Road.AvgDegree(),
		NumPOIs:     len(d.POIs),
		NumTopics:   d.NumTopics,
		AvgKeywords: avgKw,
	}
}

// String renders the stats as a Table 2 style row.
func (s Stats) String() string {
	return fmt.Sprintf("%s: |V(Gs)|=%d deg(Gs)=%.1f |V(Gr)|=%d deg(Gr)=%.1f n=%d d=%d avgKw=%.1f",
		s.Name, s.SocialUsers, s.SocialDeg, s.RoadVerts, s.RoadDeg, s.NumPOIs, s.NumTopics, s.AvgKeywords)
}

// SortedKeywords returns the POI's keywords in ascending order without
// mutating the POI (several index builders want canonical order).
func (p *POI) SortedKeywords() []int {
	ks := append([]int(nil), p.Keywords...)
	sort.Ints(ks)
	return ks
}
