package failpoint

import (
	"errors"
	"sync"
	"testing"
)

func TestDisarmedFastPath(t *testing.T) {
	Reset()
	if _, ok := Eval("nowhere"); ok {
		t.Fatal("disarmed site triggered")
	}
	if err := Error("nowhere"); err != nil {
		t.Fatalf("disarmed Error = %v", err)
	}
}

func TestArmEvalDisarm(t *testing.T) {
	defer Reset()
	want := errors.New("boom")
	Arm("a", Failure{Mode: ModeError, Err: want})
	if err := Error("a"); !errors.Is(err, want) {
		t.Fatalf("Error = %v, want %v", err, want)
	}
	// Unlimited failures keep triggering.
	if err := Error("a"); !errors.Is(err, want) {
		t.Fatalf("second Error = %v, want %v", err, want)
	}
	// Other sites are unaffected.
	if err := Error("b"); err != nil {
		t.Fatalf("unarmed site Error = %v", err)
	}
	Disarm("a")
	if err := Error("a"); err != nil {
		t.Fatalf("disarmed Error = %v", err)
	}
}

func TestCountedFailureSelfDisarms(t *testing.T) {
	defer Reset()
	Arm("c", Failure{Mode: ModeBitFlip, N: 9, Count: 2})
	for i := 0; i < 2; i++ {
		f, ok := Eval("c")
		if !ok || f.Mode != ModeBitFlip || f.N != 9 {
			t.Fatalf("eval %d = %+v ok=%v", i, f, ok)
		}
	}
	if _, ok := Eval("c"); ok {
		t.Fatal("counted failure survived its count")
	}
	if armed.Load() != 0 {
		t.Fatalf("armed count = %d after self-disarm", armed.Load())
	}
}

func TestRearmReplacesWithoutLeak(t *testing.T) {
	defer Reset()
	Arm("r", Failure{Mode: ModeShortWrite, N: 1})
	Arm("r", Failure{Mode: ModeShortWrite, N: 7})
	if got := armed.Load(); got != 1 {
		t.Fatalf("armed count = %d after re-arm", got)
	}
	f, _ := Eval("r")
	if f.N != 7 {
		t.Fatalf("re-arm did not replace: N = %d", f.N)
	}
}

func TestConcurrentEval(t *testing.T) {
	defer Reset()
	Arm("p", Failure{Mode: ModeError, Err: errors.New("x"), Count: 100})
	var wg sync.WaitGroup
	hits := make([]int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, ok := Eval("p"); ok {
					hits[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, h := range hits {
		total += h
	}
	if total != 100 {
		t.Fatalf("counted failure triggered %d times, want 100", total)
	}
}
