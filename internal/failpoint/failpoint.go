// Package failpoint provides deterministic fault injection at named sites
// for the robustness test matrix (docs/ROBUSTNESS.md). Production code
// calls Eval/Error at well-known sites ("snap.section.DSET",
// "oracle.build.hl", ...); unless a test armed that site the call is a
// single atomic load and a nil return, so the instrumentation is free in
// production builds. Tests arm a site with a Failure describing what to
// inject — an error, a short (torn) write, or a single-bit flip — and the
// site's package applies it deterministically.
//
// The package is concurrency-safe: arming, disarming, and evaluation may
// race (queries run on worker pools). A Failure with Count > 0 triggers on
// exactly that many evaluations and then disarms itself, which is how the
// torn-write tests produce exactly one damaged section.
package failpoint

import (
	"sync"
	"sync/atomic"
)

// Mode selects what a triggered failpoint injects.
type Mode int

const (
	// ModeError makes the site return Failure.Err.
	ModeError Mode = iota
	// ModeShortWrite makes a writing site persist only the first N bytes
	// of the payload (and nothing after it), simulating a torn write that
	// still reached the disk.
	ModeShortWrite
	// ModeBitFlip makes a writing site XOR bit N (counted from the start
	// of the payload) before persisting, simulating silent corruption.
	ModeBitFlip
)

// Failure describes one injected fault.
type Failure struct {
	Mode Mode
	// Err is returned by the site under ModeError.
	Err error
	// N is the byte count for ModeShortWrite and the bit offset for
	// ModeBitFlip.
	N int
	// Count limits how many evaluations trigger before the site disarms
	// itself; 0 means every evaluation triggers until Disarm.
	Count int
}

var (
	armed atomic.Int32 // number of armed sites; 0 = fast path
	mu    sync.Mutex
	sites map[string]*Failure
)

// Arm injects f at the named site until Disarm (or, with f.Count > 0, for
// that many evaluations).
func Arm(site string, f Failure) {
	mu.Lock()
	defer mu.Unlock()
	if sites == nil {
		sites = map[string]*Failure{}
	}
	if _, ok := sites[site]; !ok {
		armed.Add(1)
	}
	cp := f
	sites[site] = &cp
}

// Disarm removes any failure armed at the site.
func Disarm(site string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := sites[site]; ok {
		delete(sites, site)
		armed.Add(-1)
	}
}

// Reset disarms every site. Tests call it in cleanup so a failed test
// cannot leak faults into the next one.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(-int32(len(sites)))
	sites = nil
}

// Eval reports the failure armed at the site, if any, consuming one
// triggered evaluation of a counted failure. The production fast path —
// nothing armed anywhere — is a single atomic load.
func Eval(site string) (Failure, bool) {
	if armed.Load() == 0 {
		return Failure{}, false
	}
	mu.Lock()
	defer mu.Unlock()
	f, ok := sites[site]
	if !ok {
		return Failure{}, false
	}
	if f.Count > 0 {
		f.Count--
		if f.Count == 0 {
			delete(sites, site)
			armed.Add(-1)
		}
	}
	return *f, true
}

// Error returns the error armed at the site under ModeError, or nil. It is
// the one-liner used by pure control-flow sites (oracle builds, fsync,
// rename) that have no payload to corrupt.
func Error(site string) error {
	f, ok := Eval(site)
	if !ok || f.Mode != ModeError {
		return nil
	}
	return f.Err
}
