// Package pagesim simulates a disk page store with an LRU buffer pool. The
// paper reports query cost as the number of page accesses during index
// traversal; the GP-SSN indexes register each node here with its byte size,
// nodes are packed onto fixed-size pages, and every node access is charged
// the page reads that miss the buffer pool. This reproduces the I/O metric
// without a real disk.
//
// Concurrency: a Store's placement is written only during index build
// (Place) and is read-only afterwards, so any number of goroutines may
// call AccessTracked concurrently once building is done — each goroutine
// charges its own Tracker, which owns a private buffer pool and counters.
// The legacy Store-level Access/Reads/ResetStats/DropPool API shares one
// pool and one counter set and is NOT safe for concurrent use; it remains
// for single-threaded callers (index build accounting, tools).
package pagesim

import "fmt"

// PageID identifies a simulated disk page.
type PageID int32

// ObjectID identifies a stored object (an index node). Callers allocate
// their own ids; ids must be unique within a Store.
type ObjectID int64

// Store is a simulated paged object store. The zero value is unusable;
// create stores with NewStore.
type Store struct {
	pageSize  int
	pool      *lruPool
	placement map[ObjectID][]PageID
	nextPage  PageID
	pageUsed  int // bytes used on the current (open) page
	reads     int64
	accesses  int64
}

// NewStore returns a store with the given page size in bytes and buffer
// pool capacity in pages. poolPages = 0 disables caching (every access is
// charged).
func NewStore(pageSize, poolPages int) *Store {
	if pageSize <= 0 {
		panic(fmt.Sprintf("pagesim: non-positive page size %d", pageSize))
	}
	if poolPages < 0 {
		panic(fmt.Sprintf("pagesim: negative pool size %d", poolPages))
	}
	return &Store{
		pageSize:  pageSize,
		pool:      newLRUPool(poolPages),
		placement: make(map[ObjectID][]PageID),
	}
}

// PageSize returns the configured page size.
func (s *Store) PageSize() int { return s.pageSize }

// NumPages returns the number of pages allocated so far.
func (s *Store) NumPages() int {
	n := int(s.nextPage)
	if s.pageUsed > 0 {
		n++
	}
	return n
}

// Place registers an object of the given byte size, packing it onto disk
// pages. Small objects share pages (sequential packing, as in a real index
// file); objects larger than a page span multiple pages. Placing the same
// id twice panics.
func (s *Store) Place(id ObjectID, size int) {
	if size <= 0 {
		panic(fmt.Sprintf("pagesim: non-positive object size %d", size))
	}
	if _, dup := s.placement[id]; dup {
		panic(fmt.Sprintf("pagesim: object %d placed twice", id))
	}
	var pages []PageID
	remaining := size
	// If the object does not fit in the remainder of the open page, start a
	// fresh page (index nodes are never split across a page boundary unless
	// they exceed a full page).
	if s.pageUsed > 0 && remaining > s.pageSize-s.pageUsed {
		s.nextPage++
		s.pageUsed = 0
	}
	for remaining > 0 {
		pages = append(pages, s.nextPage)
		room := s.pageSize - s.pageUsed
		if remaining <= room {
			s.pageUsed += remaining
			remaining = 0
			if s.pageUsed == s.pageSize {
				s.nextPage++
				s.pageUsed = 0
			}
		} else {
			remaining -= room
			s.nextPage++
			s.pageUsed = 0
		}
	}
	s.placement[id] = pages
}

// Access simulates reading the object: each of its pages is fetched
// through the buffer pool, and misses are charged as page reads. Accessing
// an unplaced object panics — that is a bookkeeping bug in the index.
func (s *Store) Access(id ObjectID) {
	pages, ok := s.placement[id]
	if !ok {
		panic(fmt.Sprintf("pagesim: access to unplaced object %d", id))
	}
	s.accesses++
	for _, p := range pages {
		if !s.pool.touch(p) {
			s.reads++
		}
	}
}

// Reads returns the number of page reads (buffer pool misses) since the
// last ResetStats.
func (s *Store) Reads() int64 { return s.reads }

// Accesses returns the number of object accesses since the last ResetStats.
func (s *Store) Accesses() int64 { return s.accesses }

// ResetStats zeroes the read and access counters. The buffer pool contents
// are kept (a warm pool across queries, like a real database); call
// DropPool for a cold-cache measurement.
func (s *Store) ResetStats() {
	s.reads = 0
	s.accesses = 0
}

// DropPool empties the buffer pool so the next accesses hit "disk".
func (s *Store) DropPool() { s.pool.reset() }

// PagesOf returns the pages assigned to an object (nil if unplaced).
func (s *Store) PagesOf(id ObjectID) []PageID { return s.placement[id] }

// Tracker is a per-query I/O accountant: it owns a private buffer pool
// (same capacity as the store's) plus read/access counters. Each query
// starts with a fresh Tracker, so every query is measured against a cold
// cache — the same semantics the engine previously obtained by calling
// ResetStats+DropPool on the shared store, but without mutating shared
// state. A Tracker must not be shared across goroutines; one goroutine
// per query owns its Tracker, while any number of Trackers may access
// the same Store concurrently.
type Tracker struct {
	pool     *lruPool
	reads    int64
	accesses int64
}

// NewTracker returns a fresh cold-cache tracker sized like the store's
// buffer pool.
func (s *Store) NewTracker() *Tracker {
	return &Tracker{pool: newLRUPool(s.pool.cap)}
}

// AccessTracked simulates reading the object through the tracker's private
// buffer pool, charging misses to the tracker's counters. The store's
// placement map is only read, so concurrent calls with distinct trackers
// are safe once index build is complete.
func (s *Store) AccessTracked(id ObjectID, t *Tracker) {
	pages, ok := s.placement[id]
	if !ok {
		panic(fmt.Sprintf("pagesim: access to unplaced object %d", id))
	}
	t.accesses++
	for _, p := range pages {
		if !t.pool.touch(p) {
			t.reads++
		}
	}
}

// Reads returns the page reads (pool misses) charged to this tracker.
func (t *Tracker) Reads() int64 { return t.reads }

// Accesses returns the object accesses charged to this tracker.
func (t *Tracker) Accesses() int64 { return t.accesses }

// lruPool is a fixed-capacity LRU set of pages, hand-rolled with an
// intrusive doubly-linked list over a slice to avoid per-touch allocations.
type lruPool struct {
	cap   int
	nodes map[PageID]*lruNode
	head  *lruNode // most recently used
	tail  *lruNode // least recently used
}

type lruNode struct {
	page       PageID
	prev, next *lruNode
}

func newLRUPool(capacity int) *lruPool {
	return &lruPool{cap: capacity, nodes: make(map[PageID]*lruNode)}
}

// touch marks the page used, returning true on a hit (page was resident).
func (p *lruPool) touch(pg PageID) bool {
	if p.cap == 0 {
		return false
	}
	if n, ok := p.nodes[pg]; ok {
		p.moveToFront(n)
		return true
	}
	n := &lruNode{page: pg}
	p.nodes[pg] = n
	p.pushFront(n)
	if len(p.nodes) > p.cap {
		evict := p.tail
		p.unlink(evict)
		delete(p.nodes, evict.page)
	}
	return false
}

func (p *lruPool) reset() {
	p.nodes = make(map[PageID]*lruNode)
	p.head, p.tail = nil, nil
}

func (p *lruPool) pushFront(n *lruNode) {
	n.prev = nil
	n.next = p.head
	if p.head != nil {
		p.head.prev = n
	}
	p.head = n
	if p.tail == nil {
		p.tail = n
	}
}

func (p *lruPool) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		p.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		p.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (p *lruPool) moveToFront(n *lruNode) {
	if p.head == n {
		return
	}
	p.unlink(n)
	p.pushFront(n)
}
