package pagesim

import (
	"testing"
	"testing/quick"
)

func TestPlacePacking(t *testing.T) {
	s := NewStore(100, 0)
	s.Place(1, 40)
	s.Place(2, 40)
	s.Place(3, 40) // does not fit on page 0 (80 used): starts page 1
	if got := s.PagesOf(1); len(got) != 1 || got[0] != 0 {
		t.Errorf("obj 1 pages = %v", got)
	}
	if got := s.PagesOf(2); len(got) != 1 || got[0] != 0 {
		t.Errorf("obj 2 pages = %v", got)
	}
	if got := s.PagesOf(3); len(got) != 1 || got[0] != 1 {
		t.Errorf("obj 3 pages = %v", got)
	}
	if s.NumPages() != 2 {
		t.Errorf("NumPages = %d, want 2", s.NumPages())
	}
}

func TestPlaceLargeObjectSpansPages(t *testing.T) {
	s := NewStore(100, 0)
	s.Place(1, 250)
	if got := s.PagesOf(1); len(got) != 3 {
		t.Errorf("large object pages = %v, want 3 pages", got)
	}
	// Exactly full page.
	s2 := NewStore(100, 0)
	s2.Place(1, 100)
	if got := s2.PagesOf(1); len(got) != 1 {
		t.Errorf("full-page object pages = %v", got)
	}
	s2.Place(2, 1)
	if got := s2.PagesOf(2); len(got) != 1 || got[0] != 1 {
		t.Errorf("object after full page = %v, want page 1", got)
	}
}

func TestPlaceDuplicatePanics(t *testing.T) {
	s := NewStore(100, 0)
	s.Place(1, 10)
	defer func() {
		if recover() == nil {
			t.Error("duplicate Place should panic")
		}
	}()
	s.Place(1, 10)
}

func TestAccessCountsWithoutPool(t *testing.T) {
	s := NewStore(100, 0)
	s.Place(1, 50)
	s.Place(2, 250)
	s.Access(1)
	s.Access(1)
	s.Access(2)
	// obj1: 1 page x 2 accesses = 2 reads; obj2: 3 pages = 3 reads.
	if s.Reads() != 5 {
		t.Errorf("Reads = %d, want 5", s.Reads())
	}
	if s.Accesses() != 3 {
		t.Errorf("Accesses = %d, want 3", s.Accesses())
	}
}

func TestAccessUnplacedPanics(t *testing.T) {
	s := NewStore(100, 0)
	defer func() {
		if recover() == nil {
			t.Error("access to unplaced object should panic")
		}
	}()
	s.Access(42)
}

func TestLRUPoolHits(t *testing.T) {
	s := NewStore(100, 2)
	s.Place(1, 100)
	s.Place(2, 100)
	s.Place(3, 100)
	s.Access(1) // miss
	s.Access(1) // hit
	if s.Reads() != 1 {
		t.Fatalf("Reads = %d, want 1", s.Reads())
	}
	s.Access(2) // miss (pool: 2,1)
	s.Access(3) // miss, evicts 1 (pool: 3,2)
	s.Access(2) // hit
	s.Access(1) // miss again (was evicted)
	if s.Reads() != 4 {
		t.Errorf("Reads = %d, want 4", s.Reads())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	s := NewStore(10, 2)
	s.Place(1, 10)
	s.Place(2, 10)
	s.Place(3, 10)
	s.Access(1)
	s.Access(2)
	s.Access(1) // refresh 1: LRU order now (1 MRU, 2 LRU)
	s.Access(3) // evicts 2
	s.ResetStats()
	s.Access(1)
	if s.Reads() != 0 {
		t.Errorf("page 1 should still be resident; reads = %d", s.Reads())
	}
	s.Access(2)
	if s.Reads() != 1 {
		t.Errorf("page 2 should have been evicted; reads = %d", s.Reads())
	}
}

func TestResetStatsKeepsPool(t *testing.T) {
	s := NewStore(10, 4)
	s.Place(1, 10)
	s.Access(1)
	s.ResetStats()
	if s.Reads() != 0 || s.Accesses() != 0 {
		t.Error("ResetStats should zero counters")
	}
	s.Access(1)
	if s.Reads() != 0 {
		t.Error("pool should stay warm across ResetStats")
	}
	s.DropPool()
	s.Access(1)
	if s.Reads() != 1 {
		t.Error("DropPool should cold the cache")
	}
}

func TestBadConstructionPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"pageSize0": func() { NewStore(0, 0) },
		"poolNeg":   func() { NewStore(10, -1) },
		"sizeZero":  func() { NewStore(10, 0).Place(1, 0) },
		"sizeNeg":   func() { NewStore(10, 0).Place(1, -5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: total pages spanned by placements is consistent — an object of
// size z on pages of size p spans between ceil(z/p) and ceil(z/p)+1 pages
// (the +1 never happens because objects start on a fresh page when they
// don't fit, so exactly ceil(z/p)).
func TestPlacementSpanProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		s := NewStore(512, 0)
		for i, raw := range sizes {
			size := int(raw)%2000 + 1
			s.Place(ObjectID(i), size)
			want := (size + 511) / 512
			if len(s.PagesOf(ObjectID(i))) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: reads never exceed accesses x max pages per object, and a
// second identical pass with a big enough pool is free.
func TestWarmPoolProperty(t *testing.T) {
	f := func(n uint8) bool {
		count := int(n)%50 + 1
		s := NewStore(64, 10000)
		for i := 0; i < count; i++ {
			s.Place(ObjectID(i), 64)
		}
		for i := 0; i < count; i++ {
			s.Access(ObjectID(i))
		}
		first := s.Reads()
		s.ResetStats()
		for i := 0; i < count; i++ {
			s.Access(ObjectID(i))
		}
		return first == int64(count) && s.Reads() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAccessWarm(b *testing.B) {
	s := NewStore(4096, 1024)
	for i := 0; i < 1000; i++ {
		s.Place(ObjectID(i), 200)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Access(ObjectID(i % 1000))
	}
}
