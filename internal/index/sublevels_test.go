package index

import (
	"testing"

	"gpssn/internal/model"
)

// sub_K levels must be nested: a larger radius level contains every
// keyword of a smaller one (monotonicity of the ball union, Lemma 2's
// engine-side counterpart).
func TestPOISubLevelsNested(t *testing.T) {
	ds := dataset(t)
	ix := buildRoad(t, ds)
	radii := ix.SubRadii()
	if len(radii) < 2 {
		t.Fatalf("expected multiple sub levels for [%v, %v], got %v", ix.RMin, ix.RMax, radii)
	}
	for i := 1; i < len(radii); i++ {
		if radii[i] <= radii[i-1] {
			t.Fatalf("radii not increasing: %v", radii)
		}
	}
	for i := 0; i < len(ds.POIs); i += 17 {
		id := model.POIID(i)
		for li := 1; li < len(radii); li++ {
			small := ix.POISub(id, radii[li-1])
			big := ix.POISub(id, radii[li])
			for f := 0; f < ds.NumTopics; f++ {
				if small.Has(f) && !big.Has(f) {
					t.Fatalf("POI %d: sub(%v) has topic %d missing from sub(%v)",
						id, radii[li-1], f, radii[li])
				}
			}
		}
	}
}

// POISub must select the largest stored level not exceeding the query
// radius.
func TestPOISubLevelSelection(t *testing.T) {
	ds := dataset(t)
	ix := buildRoad(t, ds)
	radii := ix.SubRadii() // 0.5, 1, 2, 4 with the test config
	id := model.POIID(0)
	// A radius between two levels picks the lower one.
	mid := (radii[0] + radii[1]) / 2
	got := ix.POISub(id, mid)
	want := ix.POISub(id, radii[0])
	for f := 0; f < ds.NumTopics; f++ {
		if got.Has(f) != want.Has(f) {
			t.Fatalf("POISub(%v) != level-%v set at topic %d", mid, radii[0], f)
		}
	}
	// Exactly at a level picks that level.
	got = ix.POISub(id, radii[1])
	want = ix.poiSub[id][1]
	for f := 0; f < ds.NumTopics; f++ {
		if got.Has(f) != want.Has(f) {
			t.Fatalf("POISub at exact level differs at topic %d", f)
		}
	}
}

// The anchor POI's own keywords are always in every sub level (distance 0).
func TestPOISubContainsOwnKeywords(t *testing.T) {
	ds := dataset(t)
	ix := buildRoad(t, ds)
	for i := 0; i < len(ds.POIs); i += 23 {
		sub := ix.POISub(model.POIID(i), ix.RMin)
		for _, k := range ds.POIs[i].Keywords {
			if !sub.Has(k) {
				t.Fatalf("POI %d sub missing its own keyword %d", i, k)
			}
		}
	}
}
